package rad_test

// Full-campaign acceptance tests for the tracedb storage lifecycle: the
// compactor must be invisible to queries (byte-identical results over the
// whole 128,785-record campaign), and an age policy must trim the store
// without tearing a sequence boundary.

import (
	"bytes"
	"testing"
	"time"

	"rad"
)

// ingestSmallFlushes writes records through small AppendBatch calls, the
// fragmentation pattern a chatty middlebox Batcher leaves on disk.
func ingestSmallFlushes(t *testing.T, db *rad.TraceDB, recs []rad.TraceRecord, flush int) {
	t.Helper()
	for i := 0; i < len(recs); i += flush {
		j := i + flush
		if j > len(recs) {
			j = len(recs)
		}
		if err := db.AppendBatch(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
}

// jsonlBytes renders records with the canonical JSONL sink — the
// byte-identity oracle for before/after comparisons.
func jsonlBytes(t *testing.T, recs []rad.TraceRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := rad.NewJSONLWriter(&buf)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCompactFullCampaignByteIdentical(t *testing.T) {
	scale := 1.0
	if testing.Short() {
		scale = 0.05
	}
	ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: 11, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.Store.All()
	if !testing.Short() && len(recs) != rad.TotalTraceObjects {
		t.Fatalf("campaign has %d records, want %d", len(recs), rad.TotalTraceObjects)
	}

	dir := t.TempDir()
	// Small write segments so the ingest seals several of them even at the
	// -short scale; compaction only ever touches sealed segments.
	opts := rad.TraceDBOptions{SegmentBytes: 256 << 10}
	db, err := rad.OpenTraceDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestSmallFlushes(t, db, recs, 64)

	queries := []rad.TraceQuery{
		{},
		{Device: "Quantos"},
		{Key: "Quantos.start_dosing"},
		{Run: "2021-12-16_run1"},
	}
	if r := recs[len(recs)/2]; r.Run != "" {
		queries[3] = rad.TraceQuery{Run: r.Run}
	}
	before := make([][]byte, len(queries))
	for i, q := range queries {
		got, err := db.Collect(q)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = jsonlBytes(t, got)
	}

	stats, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compactions == 0 || stats.BlocksOut >= stats.BlocksIn {
		t.Fatalf("campaign ingest did not compact: %+v", stats)
	}
	for i, q := range queries {
		got, err := db.Collect(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before[i], jsonlBytes(t, got)) {
			t.Fatalf("query %+v differs after compaction", q)
		}
	}

	// Durability: the compacted store reopens to the same bytes.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := rad.OpenTraceDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i, q := range queries {
		got, err := db2.Collect(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before[i], jsonlBytes(t, got)) {
			t.Fatalf("query %+v differs after reopening the compacted store", q)
		}
	}
	t.Logf("campaign compaction: %d segments -> %d, %d blocks -> %d, %d bytes -> %d",
		stats.SegmentsIn, stats.SegmentsOut, stats.BlocksIn, stats.BlocksOut,
		stats.BytesIn, stats.BytesOut)
}

// TestRetainFullCampaignAgeTrim runs the paper-shaped retention scenario: a
// virtual clock sits past the campaign's midpoint, an age policy trims the
// old half, and the survivors are exactly the newest records with no torn
// sequence boundary.
func TestRetainFullCampaignAgeTrim(t *testing.T) {
	scale := 0.2
	if testing.Short() {
		scale = 0.05
	}
	ds, err := rad.GenerateDataset(rad.GenerateConfig{Seed: 11, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.Store.All()
	first, last := recs[0].Time, recs[len(recs)-1].Time
	mid := first.Add(last.Sub(first) / 2)

	clock := rad.NewVirtualClock(last.Add(time.Hour))
	db, err := rad.OpenTraceDB(t.TempDir(), rad.TraceDBOptions{
		SegmentBytes: 256 << 10,
		Clock:        clock,
		Lifecycle:    rad.TraceLifecycleOptions{RetainMaxAge: last.Add(time.Hour).Sub(mid)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestSmallFlushes(t, db, recs, 64)
	beforeAll, err := db.Collect(rad.TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}

	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired == 0 || stats.RecordsDropped == 0 {
		t.Fatalf("age policy trimmed nothing: %+v", stats)
	}
	after, err := db.Collect(rad.TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after)+stats.RecordsDropped != len(recs) {
		t.Fatalf("dropped %d + kept %d != %d", stats.RecordsDropped, len(after), len(recs))
	}
	// Survivors are the exact suffix of the pre-trim store.
	suffix := beforeAll[len(beforeAll)-len(after):]
	if !bytes.Equal(jsonlBytes(t, suffix), jsonlBytes(t, after)) {
		t.Fatal("retention survivors are not the newest-records suffix")
	}
	// Whole-segment granularity: nothing younger than the horizon minus one
	// segment span was dropped, and the newest record always survives.
	if after[len(after)-1].Seq != uint64(len(recs)-1) {
		t.Fatalf("newest record lost: %d, want %d", after[len(after)-1].Seq, len(recs)-1)
	}
	t.Logf("age trim at %s: %d segments retired, %d records dropped, %d bytes reclaimed",
		mid.UTC().Format(time.RFC3339), stats.SegmentsRetired, stats.RecordsDropped, stats.BytesReclaimed)
}
