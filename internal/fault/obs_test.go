package fault

import (
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/obs"
	"rad/internal/serial"
	"rad/internal/simclock"
	"rad/internal/store"
)

// injectedByKind flattens a registry snapshot's rad_fault_injected_total
// children into "target/kind" keys.
func injectedByKind(reg *obs.Registry) map[string]uint64 {
	out := make(map[string]uint64)
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "rad_fault_injected_total" {
			out[c.Labels["target"]+"/"+c.Labels["kind"]] += c.Value
		}
	}
	return out
}

// TestObsFaultInjectedCounters: every injection branch bumps its
// {target,kind} counter, and an unobserved wrapper stays silent.
func TestObsFaultInjectedCounters(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()

	fd := WrapDevice(&scriptDev{name: "C9"}, clock, Profile{ResetProb: 1}, 1)
	fd.Observe(reg)
	for i := 0; i < 4; i++ {
		fd.Exec(device.Command{Device: "C9", Name: "MVNG"})
	}

	sink := WrapSink(store.NewMemStore(), Profile{SinkErrProb: 1}, 2)
	sink.Observe(reg)
	for i := 0; i < 3; i++ {
		sink.Append(store.Record{Device: "C9", Name: "MVNG"})
	}

	got := injectedByKind(reg)
	if got["C9/reset"] != 4 {
		t.Errorf("C9/reset = %d, want 4", got["C9/reset"])
	}
	if got["sink/sink_error"] != 3 {
		t.Errorf("sink/sink_error = %d, want 3", got["sink/sink_error"])
	}

	// An unobserved wrapper must not register or count anything.
	quiet := WrapDevice(&scriptDev{name: "IKA"}, clock, Profile{ResetProb: 1}, 3)
	quiet.Exec(device.Command{Device: "IKA", Name: "IN_PV_4"})
	if _, ok := injectedByKind(reg)["IKA/reset"]; ok {
		t.Error("unobserved wrapper leaked metrics into the registry")
	}
}

// TestObsFaultLineCounters: line-level drop injections count under the
// line's label (a dropped line is swallowed, so no reader is needed).
func TestObsFaultLineCounters(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	a, _ := serial.Pipe(clock, clock, serial.DefaultBaud)
	defer a.Close()
	fl := WrapLine(a, "lab-uplink", Profile{DropProb: 1}, 7)
	fl.Observe(reg)
	for i := 0; i < 5; i++ {
		if err := fl.WriteLine("PING"); err != nil {
			t.Fatal(err)
		}
	}
	if got := injectedByKind(reg)["lab-uplink/drop"]; got != 5 {
		t.Errorf("lab-uplink/drop = %d, want 5", got)
	}
}
