package fault

import (
	"math/rand/v2"
	"sync"
	"time"

	"rad/internal/device"
	"rad/internal/serial"
	"rad/internal/simclock"
	"rad/internal/store"
)

// decider is the shared deterministic decision source: one seeded PRNG per
// wrapper, with a fixed number of draws per operation so the decision
// stream depends only on the seed and the wrapper's own operation order —
// never on the profile's probabilities or on other wrappers.
type decider struct {
	mu  sync.Mutex
	rng *rand.Rand
	p   Profile
}

func newDecider(p Profile, seed uint64) *decider {
	return &decider{rng: rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909)), p: p}
}

// decision is one operation's fault plan.
type decision struct {
	latency time.Duration // extra latency to charge (0 = none)
	reset   bool
	hang    bool
	hangFor time.Duration
	drop    bool
	garble  bool
	sinkErr bool
	mangle  float64 // garble entropy, always drawn
}

// next draws the fixed per-operation roll vector and maps it onto the
// current profile. At most one of reset/hang/drop/garble fires per
// operation (checked in that severity order); a latency spike composes
// with any of them.
func (d *decider) next() decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	rLat, rMag := d.rng.Float64(), d.rng.Float64()
	rFault, rMangle := d.rng.Float64(), d.rng.Float64()
	p := d.p
	var out decision
	out.mangle = rMangle
	if rLat < p.LatencyProb && p.LatencyMax > 0 {
		span := p.LatencyMax - p.LatencyMin
		if span < 0 {
			span = 0
		}
		out.latency = p.LatencyMin + time.Duration(rMag*float64(span))
	}
	// One cumulative roll selects among the exclusive fault classes, so a
	// single draw covers them all and the stream stays profile-independent.
	switch {
	case rFault < p.ResetProb:
		out.reset = true
	case rFault < p.ResetProb+p.HangProb:
		out.hang = true
		out.hangFor = p.HangFor
	case rFault < p.ResetProb+p.HangProb+p.DropProb:
		out.drop = true
	case rFault < p.ResetProb+p.HangProb+p.DropProb+p.GarbleProb:
		out.garble = true
	}
	out.sinkErr = rFault < p.SinkErrProb
	return out
}

// setProfile swaps the profile without disturbing the roll stream.
func (d *decider) setProfile(p Profile) {
	d.mu.Lock()
	d.p = p
	d.mu.Unlock()
}

// garbleString deterministically corrupts s using entropy r in [0,1).
func garbleString(s string, r float64) string {
	if s == "" {
		return "\x00?"
	}
	b := []byte(s)
	i := int(r*float64(len(b))) % len(b)
	b[i] ^= 0x5a
	if b[i] == '\n' || b[i] == '\r' {
		// Corrupt the payload, not the line framing.
		b[i] ^= 0x24
	}
	return string(b)
}

// FaultyDevice wraps a device.Device with the device-level fault classes:
// latency spikes, resets, hangs, dropped responses, garbled responses.
// A hang charges Profile.HangFor to the clock before reporting, so under a
// real clock it blocks like real silent hardware (and trips the exec
// deadline), while under a virtual clock it returns promptly having
// advanced simulated time — keeping chaos tests fast and deterministic.
type FaultyDevice struct {
	dev   device.Device
	clock simclock.Clock
	dec   *decider
	obs   *injObs // nil unless Observe was called
}

var _ device.Device = (*FaultyDevice)(nil)

// WrapDevice wraps d with the profile's device-level faults, drawing its
// decisions from a PRNG seeded with seed.
func WrapDevice(d device.Device, clock simclock.Clock, p Profile, seed uint64) *FaultyDevice {
	return &FaultyDevice{dev: d, clock: clock, dec: newDecider(p, seed)}
}

// Name implements device.Device.
func (f *FaultyDevice) Name() string { return f.dev.Name() }

// Unwrap returns the wrapped device.
func (f *FaultyDevice) Unwrap() device.Device { return f.dev }

// SetProfile swaps the fault profile (e.g. to heal a device mid-test so a
// half-open breaker probe can succeed). The decision stream position is
// preserved.
func (f *FaultyDevice) SetProfile(p Profile) { f.dec.setProfile(p) }

// Exec implements device.Device, injecting at most one exclusive fault per
// command plus an optional latency spike.
func (f *FaultyDevice) Exec(cmd device.Command) (string, error) {
	d := f.dec.next()
	o := f.obs
	if d.latency > 0 {
		if o != nil {
			o.latency.Inc()
		}
		f.clock.Sleep(d.latency)
	}
	switch {
	case d.reset:
		// The command never reaches the device.
		if o != nil {
			o.reset.Inc()
		}
		return "", &Fault{Kind: KindReset, Target: f.dev.Name()}
	case d.hang:
		// The device goes silent; the caller only learns after HangFor.
		if o != nil {
			o.hang.Inc()
		}
		f.clock.Sleep(d.hangFor)
		return "", &Fault{Kind: KindHang, Target: f.dev.Name()}
	}
	value, err := f.dev.Exec(cmd)
	switch {
	case d.drop:
		// The device executed (state may have changed) but the response
		// was lost — the reason only idempotent commands retry.
		if o != nil {
			o.drop.Inc()
		}
		return "", &Fault{Kind: KindDrop, Target: f.dev.Name()}
	case d.garble && err == nil:
		if o != nil {
			o.garble.Inc()
		}
		return "", &Fault{Kind: KindGarble, Target: f.dev.Name(), Detail: garbleString(value, d.mangle)}
	}
	return value, err
}

// FlakySink wraps a store.Sink with injected write errors, for exercising
// sink failover. It forwards batches as batches (preserving tracedb block
// boundaries) and passes commit-hook installation through to the wrapped
// sink, so a broker attached above a FlakySink still sees authoritative
// sequence numbers.
type FlakySink struct {
	sink store.Sink
	dec  *decider
	obs  *injObs // nil unless Observe was called
}

var (
	_ store.Sink      = (*FlakySink)(nil)
	_ store.BatchSink = (*FlakySink)(nil)
)

// WrapSink wraps sink with Profile.SinkErrProb write failures.
func WrapSink(sink store.Sink, p Profile, seed uint64) *FlakySink {
	return &FlakySink{sink: sink, dec: newDecider(p, seed)}
}

// SetProfile swaps the fault profile.
func (f *FlakySink) SetProfile(p Profile) { f.dec.setProfile(p) }

// Append implements store.Sink.
func (f *FlakySink) Append(r store.Record) error {
	if f.dec.next().sinkErr {
		if o := f.obs; o != nil {
			o.sinkErr.Inc()
		}
		return &Fault{Kind: KindSink, Target: "sink"}
	}
	return f.sink.Append(r)
}

// AppendBatch implements store.BatchSink. A fault fails the whole batch
// (the failure unit the dead-letter queue spills).
func (f *FlakySink) AppendBatch(recs []store.Record) error {
	if f.dec.next().sinkErr {
		if o := f.obs; o != nil {
			o.sinkErr.Inc()
		}
		return &Fault{Kind: KindSink, Target: "sink"}
	}
	return store.AppendAll(f.sink, recs)
}

// SetOnCommit implements store.Notifier when the wrapped sink does;
// otherwise it is a no-op.
func (f *FlakySink) SetOnCommit(fn func(recs []store.Record)) {
	if n, ok := f.sink.(store.Notifier); ok {
		n.SetOnCommit(fn)
	}
}

// FaultyLine wraps a serial.Line with wire-level faults on the transmit
// side: written lines are dropped (the peer never sees the request, so the
// reader's deadline is what saves the caller) or garbled in transit.
// Reads pass through — the peer's transmit side owns its own faults.
type FaultyLine struct {
	line  serial.Line
	label string
	dec   *decider
	obs   *injObs // nil unless Observe was called
}

var _ serial.Line = (*FaultyLine)(nil)

// WrapLine wraps line with the profile's drop/garble faults.
func WrapLine(line serial.Line, label string, p Profile, seed uint64) *FaultyLine {
	return &FaultyLine{line: line, label: label, dec: newDecider(p, seed)}
}

// SetProfile swaps the fault profile.
func (f *FaultyLine) SetProfile(p Profile) { f.dec.setProfile(p) }

// ReadLine implements serial.Line.
func (f *FaultyLine) ReadLine() (string, error) { return f.line.ReadLine() }

// WriteLine implements serial.Line, dropping or garbling the outgoing
// line when the respective fault fires.
func (f *FaultyLine) WriteLine(s string) error {
	d := f.dec.next()
	switch {
	case d.drop:
		if o := f.obs; o != nil {
			o.drop.Inc()
		}
		return nil // swallowed: the peer never hears the request
	case d.garble:
		if o := f.obs; o != nil {
			o.garble.Inc()
		}
		return f.line.WriteLine(garbleString(s, d.mangle))
	}
	return f.line.WriteLine(s)
}
