// Package fault is a deterministic, seedable fault-injection framework for
// the virtual lab: composable injectors that wrap a device.Device, a
// serial line, or a store.Sink and make them misbehave the way real CPS
// hardware does — latency spikes, dropped or garbled serial responses,
// device hangs, wire-connection resets, and sink write errors.
//
// Everything is driven by the injected simclock.Clock and a per-wrapper
// seeded PRNG, so a fault campaign is reproducible: the same seed and the
// same per-wrapper operation order produce the same fault schedule, in
// real time or virtual time. Each wrapper draws a fixed number of rolls
// per operation regardless of the profile's probabilities, so tuning one
// probability never shifts the decisions of the other fault classes.
//
// The package also provides the resilience primitives the hardened
// middlebox exec path is built from: the per-device circuit breaker
// (closed → open → half-open) and the jittered exponential backoff used
// between idempotent retries. IsInfra classifies an error as an
// infrastructure failure (injected fault, exec deadline, serial timeout,
// dead link) as opposed to a device-reported command error; only
// infrastructure failures feed the breaker and qualify for retry.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"time"

	"rad/internal/serial"
)

// Profile configures the injectors: one probability (and, where relevant,
// a magnitude) per fault class. The zero value injects nothing.
type Profile struct {
	// LatencyProb is the chance of an extra latency spike in
	// [LatencyMin, LatencyMax] charged to the clock before the operation.
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// DropProb is the chance the command executes but its response is lost
	// in transit (the dangerous one: state may have changed, so only
	// idempotent commands are safe to retry).
	DropProb float64
	// GarbleProb is the chance the response arrives corrupted.
	GarbleProb float64
	// HangProb is the chance the device goes silent for HangFor before the
	// caller sees an error — the fault that exec deadlines and circuit
	// breakers exist for.
	HangProb float64
	HangFor  time.Duration
	// ResetProb is the chance the wire connection resets before the command
	// reaches the device (the command does not execute).
	ResetProb float64
	// SinkErrProb is the chance a trace-sink write fails (FlakySink).
	SinkErrProb float64
}

// Active reports whether the profile injects any fault at all.
func (p Profile) Active() bool {
	return p.LatencyProb > 0 || p.DropProb > 0 || p.GarbleProb > 0 ||
		p.HangProb > 0 || p.ResetProb > 0 || p.SinkErrProb > 0
}

// None is the empty profile: every wrapper becomes a transparent proxy.
func None() Profile { return Profile{} }

// Flaky models a mildly unhealthy lab: occasional latency spikes, rare
// drops and garbles, a hang every few hundred commands.
func Flaky() Profile {
	return Profile{
		LatencyProb: 0.02, LatencyMin: 5 * time.Millisecond, LatencyMax: 50 * time.Millisecond,
		DropProb:   0.01,
		GarbleProb: 0.005,
		HangProb:   0.002, HangFor: 45 * time.Second,
		ResetProb:   0.005,
		SinkErrProb: 0.01,
	}
}

// Chaos models a lab falling apart: the profile the chaos soak runs under.
func Chaos() Profile {
	return Profile{
		LatencyProb: 0.10, LatencyMin: 10 * time.Millisecond, LatencyMax: 250 * time.Millisecond,
		DropProb:   0.05,
		GarbleProb: 0.03,
		HangProb:   0.02, HangFor: 45 * time.Second,
		ResetProb:   0.03,
		SinkErrProb: 0.10,
	}
}

// ParseProfile parses a profile spec of the form
//
//	NAME[,key=value,...]
//
// where NAME is none, flaky, or chaos, and the optional key=value pairs
// override individual fields: latency, latmin, latmax, drop, garble, hang,
// hangfor, reset, sink. Probabilities are floats in [0,1]; durations use
// Go syntax (e.g. hangfor=30s). An empty spec is "none".
func ParseProfile(spec string) (Profile, error) {
	parts := strings.Split(spec, ",")
	var p Profile
	switch strings.TrimSpace(parts[0]) {
	case "", "none":
		p = None()
	case "flaky":
		p = Flaky()
	case "chaos":
		p = Chaos()
	default:
		return Profile{}, fmt.Errorf("fault: unknown profile %q (want none, flaky, or chaos)", parts[0])
	}
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Profile{}, fmt.Errorf("fault: malformed profile override %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "latency":
			p.LatencyProb, err = parseProb(val)
		case "latmin":
			p.LatencyMin, err = time.ParseDuration(val)
		case "latmax":
			p.LatencyMax, err = time.ParseDuration(val)
		case "drop":
			p.DropProb, err = parseProb(val)
		case "garble":
			p.GarbleProb, err = parseProb(val)
		case "hang":
			p.HangProb, err = parseProb(val)
		case "hangfor":
			p.HangFor, err = time.ParseDuration(val)
		case "reset":
			p.ResetProb, err = parseProb(val)
		case "sink":
			p.SinkErrProb, err = parseProb(val)
		default:
			return Profile{}, fmt.Errorf("fault: unknown profile key %q", key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("fault: profile key %s: %w", key, err)
		}
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", f)
	}
	return f, nil
}

// Kind identifies a fault class.
type Kind uint8

const (
	// KindDrop: the command executed but the response was lost.
	KindDrop Kind = iota
	// KindGarble: the response arrived corrupted.
	KindGarble
	// KindHang: the device went silent.
	KindHang
	// KindReset: the wire connection reset before delivery.
	KindReset
	// KindSink: a trace-sink write failed.
	KindSink
)

func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "dropped response"
	case KindGarble:
		return "garbled response"
	case KindHang:
		return "device hang"
	case KindReset:
		return "connection reset"
	case KindSink:
		return "sink write error"
	default:
		return "unknown fault"
	}
}

// Fault is the error an injector reports when a fault fires. It is always
// classified as an infrastructure failure by IsInfra.
type Fault struct {
	Kind   Kind
	Target string // device name, line label, or sink description
	Detail string // e.g. the garbled payload
}

func (f *Fault) Error() string {
	msg := fmt.Sprintf("%s: injected fault: %s", f.Target, f.Kind)
	if f.Detail != "" {
		msg += " (" + f.Detail + ")"
	}
	return msg
}

// ErrDeadline is the error the hardened exec path reports when a command
// attempt exceeds its per-exec deadline. It lives here (not in middlebox)
// so injectors, the breaker, and IsInfra agree on the classification
// without an import cycle.
var ErrDeadline = errors.New("exec deadline exceeded")

// IsInfra reports whether err is an infrastructure failure — an injected
// fault, an exceeded exec deadline, a serial read timeout, or a dead
// link — rather than a device-reported command error (bad arguments,
// hardware fault, collision). Only infrastructure failures feed the
// circuit breaker and qualify for retry: a device that answers "ERR bad
// args" is a healthy device.
func IsInfra(err error) bool {
	if err == nil {
		return false
	}
	var f *Fault
	return errors.As(err, &f) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, serial.ErrTimeout) ||
		errors.Is(err, serial.ErrClosed)
}

// Backoff returns the delay before retry attempt (0-based): an exponential
// base<<attempt capped at max, jittered uniformly in [d/2, 3d/2) so
// synchronized retry storms decorrelate. The jitter is drawn from rng, so
// a seeded caller gets a reproducible schedule. Non-positive base or max
// fall back to 50ms / 2s.
func Backoff(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rng.Int64N(int64(d)))
}
