package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/serial"
	"rad/internal/simclock"
	"rad/internal/store"
)

// scriptDev is a minimal healthy device: it answers every command and
// counts how many actually reached it.
type scriptDev struct {
	name  string
	calls int
}

func (d *scriptDev) Name() string { return d.name }
func (d *scriptDev) Exec(cmd device.Command) (string, error) {
	d.calls++
	return "OK:" + cmd.Name, nil
}

func TestParseProfile(t *testing.T) {
	cases := []struct {
		spec    string
		want    Profile
		wantErr bool
	}{
		{spec: "", want: None()},
		{spec: "none", want: None()},
		{spec: "flaky", want: Flaky()},
		{spec: "chaos", want: Chaos()},
		{spec: "none,drop=0.25,hangfor=30s", want: Profile{DropProb: 0.25, HangFor: 30 * time.Second}},
		{spec: "chaos,sink=0", want: func() Profile { p := Chaos(); p.SinkErrProb = 0; return p }()},
		{spec: "flaky,latmin=1ms,latmax=2ms", want: func() Profile {
			p := Flaky()
			p.LatencyMin, p.LatencyMax = time.Millisecond, 2*time.Millisecond
			return p
		}()},
		{spec: "storm", wantErr: true},          // unknown profile
		{spec: "none,drop=1.5", wantErr: true},  // probability out of range
		{spec: "none,drop", wantErr: true},      // malformed override
		{spec: "none,latency=x", wantErr: true}, // unparseable float
		{spec: "none,bogus=1", wantErr: true},   // unknown key
	}
	for _, tc := range cases {
		got, err := ParseProfile(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseProfile(%q): expected an error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseProfile(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	if None().Active() {
		t.Error("None() must not be active")
	}
	if !Chaos().Active() {
		t.Error("Chaos() must be active")
	}
}

// faultSchedule runs n commands through a fresh wrapper and records which
// command indices produced which fault kinds.
func faultSchedule(t *testing.T, p Profile, seed uint64, n int) map[int]Kind {
	t.Helper()
	clock := simclock.NewVirtual(time.Unix(0, 0))
	dev := WrapDevice(&scriptDev{name: "C9"}, clock, p, seed)
	out := make(map[int]Kind)
	for i := 0; i < n; i++ {
		_, err := dev.Exec(device.Command{Device: "C9", Name: "POSN"})
		if err == nil {
			continue
		}
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("cmd %d: non-Fault error %v", i, err)
		}
		out[i] = f.Kind
	}
	return out
}

func TestInjectorDeterminism(t *testing.T) {
	p := Profile{DropProb: 0.2, ResetProb: 0.1, HangProb: 0.05, HangFor: time.Second}
	a := faultSchedule(t, p, 42, 500)
	b := faultSchedule(t, p, 42, 500)
	if len(a) == 0 {
		t.Fatal("profile injected nothing in 500 commands")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if c := faultSchedule(t, p, 43, 500); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestDecisionStreamIndependence pins the fixed-roll-vector contract:
// enabling one fault class must not shift the decisions of the classes
// before it in the cumulative band (reset < hang < drop < garble).
func TestDecisionStreamIndependence(t *testing.T) {
	base := Profile{DropProb: 0.2}
	withGarble := Profile{DropProb: 0.2, GarbleProb: 0.3}
	a := faultSchedule(t, base, 7, 500)
	b := faultSchedule(t, withGarble, 7, 500)
	for i, k := range a {
		if k == KindDrop && b[i] != KindDrop {
			t.Fatalf("cmd %d: drop decision shifted when garble was enabled (%v -> %v)", i, k, b[i])
		}
	}
	// And the garble-enabled run must have injected garbles on top.
	garbles := 0
	for _, k := range b {
		if k == KindGarble {
			garbles++
		}
	}
	if garbles == 0 {
		t.Fatal("garble probability 0.3 injected no garbles in 500 commands")
	}
}

func TestFaultyDeviceLatencyAndHang(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	inner := &scriptDev{name: "IKA"}
	p := Profile{LatencyProb: 1, LatencyMin: 10 * time.Millisecond, LatencyMax: 10 * time.Millisecond}
	dev := WrapDevice(inner, clock, p, 1)
	start := clock.Now()
	if _, err := dev.Exec(device.Command{Device: "IKA", Name: "IN_PV_4"}); err != nil {
		t.Fatalf("latency-only profile errored: %v", err)
	}
	if got := clock.Now().Sub(start); got != 10*time.Millisecond {
		t.Errorf("latency spike advanced %v, want 10ms", got)
	}

	dev.SetProfile(Profile{HangProb: 1, HangFor: 45 * time.Second})
	start = clock.Now()
	_, err := dev.Exec(device.Command{Device: "IKA", Name: "IN_PV_4"})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != KindHang {
		t.Fatalf("hang profile returned %v, want KindHang fault", err)
	}
	if got := clock.Now().Sub(start); got != 45*time.Second {
		t.Errorf("hang advanced %v, want 45s", got)
	}
	callsBeforeReset := inner.calls
	dev.SetProfile(Profile{ResetProb: 1})
	if _, err := dev.Exec(device.Command{Device: "IKA", Name: "IN_PV_4"}); err == nil {
		t.Fatal("reset profile did not error")
	}
	if inner.calls != callsBeforeReset {
		t.Error("a reset fault must not reach the device")
	}
	if dev.Name() != "IKA" || dev.Unwrap() != device.Device(inner) {
		t.Error("wrapper identity broken")
	}
}

func TestFlakySink(t *testing.T) {
	mem := store.NewMemStore()
	sink := WrapSink(mem, Profile{SinkErrProb: 1}, 5)
	rec := store.Record{Device: "C9", Name: "POSN"}
	if err := sink.Append(rec); err == nil {
		t.Fatal("SinkErrProb=1 Append succeeded")
	} else if !IsInfra(err) {
		t.Fatalf("sink fault %v not classified as infra", err)
	}
	if err := sink.AppendBatch([]store.Record{rec, rec}); err == nil {
		t.Fatal("SinkErrProb=1 AppendBatch succeeded")
	}
	if mem.Len() != 0 {
		t.Fatalf("failed writes still landed %d records", mem.Len())
	}
	sink.SetProfile(None())
	if err := sink.Append(rec); err != nil {
		t.Fatalf("healed sink Append: %v", err)
	}
	if err := sink.AppendBatch([]store.Record{rec, rec}); err != nil {
		t.Fatalf("healed sink AppendBatch: %v", err)
	}
	if mem.Len() != 3 {
		t.Fatalf("healed sink holds %d records, want 3", mem.Len())
	}
}

func TestFaultyLineDropAndGarble(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	a, b := serial.Pipe(clock, clock, serial.DefaultBaud)
	defer a.Close()
	line := WrapLine(a, "lab-wire", Profile{DropProb: 1}, 9)

	// Dropped request: the peer never hears it; its read deadline is what
	// rescues the reader.
	b.SetReadTimeout(30 * time.Millisecond)
	if err := line.WriteLine("POSN 0"); err != nil {
		t.Fatalf("dropped WriteLine reported %v", err)
	}
	if _, err := b.ReadLine(); !errors.Is(err, serial.ErrTimeout) {
		t.Fatalf("read after a dropped request returned %v, want ErrTimeout", err)
	}

	line.SetProfile(Profile{GarbleProb: 1})
	if err := line.WriteLine("POSN 0"); err != nil {
		t.Fatalf("garbled WriteLine: %v", err)
	}
	got, err := b.ReadLine()
	if err != nil {
		t.Fatalf("ReadLine after garbled write: %v", err)
	}
	if got == "POSN 0" || len(got) != len("POSN 0") {
		t.Fatalf("garble produced %q (same length, different bytes expected)", got)
	}

	line.SetProfile(None())
	if err := line.WriteLine("POSN 0"); err != nil {
		t.Fatalf("healed WriteLine: %v", err)
	}
	if got, err := b.ReadLine(); err != nil || got != "POSN 0" {
		t.Fatalf("healed line delivered %q, %v", got, err)
	}
}

func TestIsInfra(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&Fault{Kind: KindHang, Target: "C9"}, true},
		{fmt.Errorf("middlebox: C9: %w (timeout 5s)", ErrDeadline), true},
		{serial.ErrTimeout, true},
		{serial.ErrClosed, true},
		{errors.New("C9: unknown command FOO"), false},
		{fmt.Errorf("wrapped: %w", &Fault{Kind: KindSink}), true},
	}
	for _, tc := range cases {
		if got := IsInfra(tc.err); got != tc.want {
			t.Errorf("IsInfra(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
