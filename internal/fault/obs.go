package fault

import "rad/internal/obs"

// injObs holds one injector's prebuilt fault counters
// (rad_fault_injected_total{target,kind}), one per fault class the
// injector can fire, so the injection branches pay a nil check and one
// sharded counter increment — nothing is registered at fire time.
type injObs struct {
	latency *obs.Counter
	reset   *obs.Counter
	hang    *obs.Counter
	drop    *obs.Counter
	garble  *obs.Counter
	sinkErr *obs.Counter
}

const injectedTotal = "rad_fault_injected_total"

func injCounter(reg *obs.Registry, target, kind string) *obs.Counter {
	reg.SetHelp(injectedTotal, "Faults injected, by target and fault class.")
	return reg.Counter(injectedTotal, "target", target, "kind", kind)
}

// Observe registers the device wrapper's injected-fault counters into reg.
// Call before serving traffic.
func (f *FaultyDevice) Observe(reg *obs.Registry) {
	target := f.dev.Name()
	f.obs = &injObs{
		latency: injCounter(reg, target, "latency"),
		reset:   injCounter(reg, target, "reset"),
		hang:    injCounter(reg, target, "hang"),
		drop:    injCounter(reg, target, "drop"),
		garble:  injCounter(reg, target, "garble"),
	}
}

// Observe registers the sink wrapper's injected-fault counter into reg.
// Call before serving traffic.
func (f *FlakySink) Observe(reg *obs.Registry) {
	f.obs = &injObs{sinkErr: injCounter(reg, "sink", "sink_error")}
}

// Observe registers the line wrapper's injected-fault counters into reg.
// Call before serving traffic.
func (f *FaultyLine) Observe(reg *obs.Registry) {
	f.obs = &injObs{
		drop:   injCounter(reg, f.label, "drop"),
		garble: injCounter(reg, f.label, "garble"),
	}
}
