package fault

import (
	"math/rand/v2"
	"testing"
	"time"

	"rad/internal/simclock"
)

// step is one scripted breaker interaction: an Allow check (with its
// expected admission), an optional reported outcome, or a clock advance.
type step struct {
	op      string        // "allow", "done-ok", "done-infra", "advance"
	want    bool          // for "allow": expected admission
	advance time.Duration // for "advance"
	state   BreakerState  // expected state after the step
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{Threshold: 3, Cooldown: time.Minute, Probes: 1}
	cases := []struct {
		name  string
		cfg   BreakerConfig
		steps []step
	}{
		{
			name: "stays closed below threshold",
			cfg:  cfg,
			steps: []step{
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "allow", want: true, state: BreakerClosed},
			},
		},
		{
			name: "success resets the failure streak",
			cfg:  cfg,
			steps: []step{
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "done-ok", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed}, // streak is 2, not 4
				{op: "allow", want: true, state: BreakerClosed},
			},
		},
		{
			name: "threshold consecutive failures trip it open",
			cfg:  cfg,
			steps: []step{
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerOpen},
				{op: "allow", want: false, state: BreakerOpen}, // shed during cooldown
				{op: "allow", want: false, state: BreakerOpen},
			},
		},
		{
			name: "cooldown admits exactly one half-open probe",
			cfg:  cfg,
			steps: []step{
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerOpen},
				{op: "advance", advance: time.Minute, state: BreakerOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},  // the probe
				{op: "allow", want: false, state: BreakerHalfOpen}, // probe in flight
			},
		},
		{
			name: "probe success closes",
			cfg:  cfg,
			steps: []step{
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerOpen},
				{op: "advance", advance: time.Minute, state: BreakerOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "done-ok", state: BreakerClosed},
				{op: "allow", want: true, state: BreakerClosed},
			},
		},
		{
			name: "probe failure re-opens and restarts the cooldown",
			cfg:  cfg,
			steps: []step{
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerClosed},
				{op: "done-infra", state: BreakerOpen},
				{op: "advance", advance: time.Minute, state: BreakerOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "done-infra", state: BreakerOpen},
				{op: "allow", want: false, state: BreakerOpen}, // cooldown restarted
				{op: "advance", advance: time.Minute, state: BreakerOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "done-ok", state: BreakerClosed},
			},
		},
		{
			name: "two probes required when configured",
			cfg:  BreakerConfig{Threshold: 1, Cooldown: time.Minute, Probes: 2},
			steps: []step{
				{op: "done-infra", state: BreakerOpen},
				{op: "advance", advance: time.Minute, state: BreakerOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "done-ok", state: BreakerHalfOpen}, // 1 of 2
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "done-ok", state: BreakerClosed}, // 2 of 2
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := simclock.NewVirtual(time.Unix(0, 0))
			b := NewBreaker("C9", clock, tc.cfg)
			for i, s := range tc.steps {
				switch s.op {
				case "allow":
					if got := b.Allow(); got != s.want {
						t.Fatalf("step %d: Allow() = %v, want %v", i, got, s.want)
					}
				case "done-ok":
					b.Done(false)
				case "done-infra":
					b.Done(true)
				case "advance":
					clock.Advance(s.advance)
				default:
					t.Fatalf("step %d: bad op %q", i, s.op)
				}
				if got := b.State(); got != s.state {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.op, got, s.state)
				}
			}
		})
	}
}

func TestBreakerStatsCounters(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := NewBreaker("IKA", clock, BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	b.Done(true)
	b.Done(true) // trips
	if !b.Allow() == false {
		t.Fatal("expected shed while open")
	}
	b.Allow() // another shed
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("expected the probe to be admitted")
	}
	b.Done(true) // probe fails: re-open
	st := b.Stats()
	if st.Device != "IKA" || st.State != "open" {
		t.Errorf("stats identity = %+v", st)
	}
	if st.Opens != 2 {
		t.Errorf("opens = %d, want 2 (trip + probe failure)", st.Opens)
	}
	if st.Probes != 1 {
		t.Errorf("probes = %d, want 1", st.Probes)
	}
	if st.Sheds != 2 {
		t.Errorf("sheds = %d, want 2", st.Sheds)
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if b := NewBreaker("C9", clock, BreakerConfig{}); b != nil {
		t.Fatal("zero threshold should disable the breaker")
	}
	var b *Breaker
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatal("nil breaker must admit everything")
		}
		b.Done(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Errorf("nil breaker state = %v", got)
	}
	if st := b.Stats(); st.State != "closed" {
		t.Errorf("nil breaker stats = %+v", st)
	}
}

// TestBackoffTiming pins the retry schedule against the simclock contract:
// exponential growth from base, capped at max, jittered within [d/2, 3d/2),
// and byte-for-byte reproducible for a fixed seed.
func TestBackoffTiming(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	mk := func() *rand.Rand { return rand.New(rand.NewPCG(7, 7)) }

	rng := mk()
	var seq []time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		d := Backoff(attempt, base, max, rng)
		seq = append(seq, d)
		raw := base << attempt
		if raw > max || raw <= 0 {
			raw = max
		}
		if d < raw/2 || d >= raw/2+raw {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, raw/2, raw/2+raw)
		}
	}
	// Capped tail: attempts past the cap draw from the same [max/2, 3max/2) band.
	for i := 4; i < 8; i++ { // 100ms<<4 = 1.6s > max
		if seq[i] < max/2 || seq[i] >= max/2+max {
			t.Errorf("capped attempt %d: %v outside cap band", i, seq[i])
		}
	}
	// Determinism: a fresh identically-seeded stream reproduces the schedule.
	rng2 := mk()
	for attempt := 0; attempt < 8; attempt++ {
		if d := Backoff(attempt, base, max, rng2); d != seq[attempt] {
			t.Fatalf("attempt %d: %v != %v (schedule not reproducible)", attempt, d, seq[attempt])
		}
	}
	// Virtual-clock integration: charging the schedule to a simclock
	// advances it by exactly the summed delays.
	clock := simclock.NewVirtual(time.Unix(0, 0))
	var total time.Duration
	rng3 := mk()
	for attempt := 0; attempt < 8; attempt++ {
		d := Backoff(attempt, base, max, rng3)
		clock.Sleep(d)
		total += d
	}
	if got := clock.Now().Sub(time.Unix(0, 0)); got != total {
		t.Errorf("virtual clock advanced %v, want %v", got, total)
	}
	// Defaults kick in for non-positive bounds.
	if d := Backoff(0, 0, 0, mk()); d < 25*time.Millisecond || d >= 75*time.Millisecond {
		t.Errorf("default backoff %v outside [25ms, 75ms)", d)
	}
}
