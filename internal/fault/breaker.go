package fault

import (
	"sync"
	"sync/atomic"
	"time"

	"rad/internal/simclock"
)

// BreakerConfig tunes a circuit breaker. The zero value of Threshold
// disables the breaker entirely (NewBreaker returns nil).
type BreakerConfig struct {
	// Threshold is the number of consecutive infrastructure failures that
	// trips the breaker open. <= 0 disables the breaker.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Defaults to DefaultCooldown.
	Cooldown time.Duration
	// Probes is the number of consecutive successful half-open probes
	// required to close the breaker again. Defaults to 1.
	Probes int
}

// DefaultCooldown is the open→half-open delay when the config leaves
// Cooldown unset.
const DefaultCooldown = 30 * time.Second

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are shed until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe at a time is admitted; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// Breaker is a per-device circuit breaker: closed → open after Threshold
// consecutive infrastructure failures, open → half-open after Cooldown,
// half-open → closed after Probes successful probes (or back to open on a
// probe failure). Safe for concurrent use; the closed-state fast path is
// one atomic load, so a healthy device pays almost nothing.
type Breaker struct {
	name  string
	clock simclock.Clock
	cfg   BreakerConfig

	// status packs the position (high 32 bits) and the consecutive
	// infra-failure count while closed (low 32 bits) into one word, so
	// "closed with a clean streak" — the Done fast path — is a single
	// atomic load compared against zero, cheap enough that Allow and Done
	// inline into the middlebox exec hot path. Writes happen under mu.
	status atomic.Uint64

	mu        sync.Mutex // guards transitions and the slow-path fields
	reopenAt  time.Time  // when an open breaker admits a probe
	probing   bool       // a half-open probe is in flight
	successes int        // consecutive successful probes while half-open
	opens     uint64     // transitions into the open state
	probes    uint64     // half-open probes admitted
	sheds     uint64     // requests rejected while open/half-open
}

// NewBreaker builds a breaker for the named device. A non-positive
// Threshold returns nil; a nil *Breaker admits everything and records
// nothing, so callers can hold one unconditionally.
func NewBreaker(name string, clock simclock.Clock, cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	return &Breaker{name: name, clock: clock, cfg: cfg}
}

// Allow reports whether a request may proceed. When the breaker is open
// past its cooldown it transitions to half-open and admits the caller as
// the probe; while a probe is in flight (or the cooldown is still
// running) requests are shed.
func (b *Breaker) Allow() bool {
	// Kept to a nil check and one atomic load so it inlines into the exec
	// hot path; everything stateful lives in allowSlow.
	if b == nil || BreakerState(b.status.Load()>>32) == BreakerClosed {
		return true
	}
	return b.allowSlow()
}

func (b *Breaker) allowSlow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed: // raced with a close; admit
		return true
	case BreakerOpen:
		if b.clock.Now().Before(b.reopenAt) {
			b.sheds++
			return false
		}
		b.setLocked(BreakerHalfOpen, 0)
		b.successes = 0
		fallthrough
	default: // half-open
		if b.probing {
			b.sheds++
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Done reports an admitted request's outcome: infra is true when the
// request failed with an infrastructure error (IsInfra), false for a
// success or a device-reported command error (a device that answers is a
// healthy device).
func (b *Breaker) Done(infra bool) {
	// Fast path — healthy device, closed breaker, clean streak — shaped
	// to inline into the exec hot path like Allow: status == 0 is exactly
	// "closed with zero consecutive failures".
	if b == nil || (!infra && b.status.Load() == 0) {
		return
	}
	b.doneSlow(infra)
}

func (b *Breaker) doneSlow(infra bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		if !infra {
			b.setLocked(BreakerClosed, 0)
			return
		}
		f := b.failuresLocked() + 1
		b.setLocked(BreakerClosed, f)
		if f >= int32(b.cfg.Threshold) {
			b.tripLocked()
		}
	case BreakerHalfOpen:
		b.probing = false
		if infra {
			b.tripLocked()
			return
		}
		b.successes++
		if b.successes >= b.cfg.Probes {
			b.setLocked(BreakerClosed, 0)
		}
	case BreakerOpen:
		// A stale attempt admitted before the trip finished; its outcome
		// no longer matters.
	}
}

// stateLocked, failuresLocked, and setLocked unpack and pack the status
// word; callers hold b.mu (plain loads of status are safe anywhere, but
// read-modify-write must be serialized).
func (b *Breaker) stateLocked() BreakerState { return BreakerState(b.status.Load() >> 32) }
func (b *Breaker) failuresLocked() int32     { return int32(uint32(b.status.Load())) }
func (b *Breaker) setLocked(s BreakerState, failures int32) {
	b.status.Store(uint64(s)<<32 | uint64(uint32(failures)))
}

// tripLocked moves the breaker to open and starts the cooldown. The
// failure count carries over (it reads as Threshold while open; a close
// resets it).
func (b *Breaker) tripLocked() {
	b.setLocked(BreakerOpen, b.failuresLocked())
	b.reopenAt = b.clock.Now().Add(b.cfg.Cooldown)
	b.probing = false
	b.opens++
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return BreakerState(b.status.Load() >> 32)
}

// BreakerStats is one breaker's observability snapshot.
type BreakerStats struct {
	Device   string
	State    string
	Opens    uint64 // transitions into open (including re-opens from half-open)
	Probes   uint64 // half-open probes admitted
	Sheds    uint64 // requests rejected while open/half-open
	Failures int    // current consecutive-failure count while closed
}

// Stats snapshots the breaker's counters. A nil breaker reports a zero
// value.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: BreakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Device:   b.name,
		State:    b.stateLocked().String(),
		Opens:    b.opens,
		Probes:   b.probes,
		Sheds:    b.sheds,
		Failures: int(b.failuresLocked()),
	}
}
