package middlebox

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
	"rad/internal/fault"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/tracedb"
)

// chaosOutcome is everything one chaos campaign produced that the soak
// asserts on: the accounting totals, the resilience counters, and a digest
// of the complete post-recovery trace store.
type chaosOutcome struct {
	requests int
	dbLen    int
	reingest int
	digest   string
	res      Resilience
	failover store.FailoverStats
}

// chaosCommands is the per-device command mix the driver draws from: a
// blend of read-only (retriable) and mutating commands from each device's
// real catalog.
var chaosCommands = map[string][][]string{
	"C9":      {{"MVNG"}, {"POSN", "0"}, {"CURR", "0"}, {"SPED", "20"}, {"GRIP", "1"}, {"HOME"}},
	"IKA":     {{"IN_NAME"}, {"IN_PV_4"}, {"IN_SP_4"}, {"OUT_SP_4", "300"}, {"START_4"}, {"STOP_4"}},
	"Tecan":   {{"Q"}, {"V", "1000"}, {"I", "1"}, {"O", "1"}, {"Z"}},
	"Quantos": {{"zero"}, {"target_mass", "12.5"}, {"home_z_stage"}, {"move_z_axis", "10"}},
	"UR3e":    {{"open_gripper"}, {"close_gripper"}, {"move_joints", "10", "20", "30", "40", "50", "60"}},
}

var chaosDevices = []string{"C9", "IKA", "Quantos", "Tecan", "UR3e"}

// runChaosCampaign builds a full middlebox — five fault-wrapped devices, a
// flaky tracedb sink behind dead-letter failover, the hardened exec
// policy — and drives `requests` commands through it from one seeded
// driver, then heals the store and re-ingests the dead letters.
//
// The driver is deliberately single-threaded: the devices share one
// virtual clock, so concurrent drivers would make every timestamp depend
// on goroutine interleaving and the soak could not promise byte-equal
// reruns. Concurrency is exercised separately (and under -race) by the
// live middlebox tests; what the soak pins is the failure-path accounting.
func runChaosCampaign(t *testing.T, seed uint64, requests int) chaosOutcome {
	t.Helper()
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))

	db, err := tracedb.Open(t.TempDir(), tracedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dlq, err := store.OpenDLQ(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flaky := fault.WrapSink(db, fault.Profile{SinkErrProb: 0.10}, seed^0xa5a5)
	sink := store.NewFailoverSink(flaky, dlq)

	core := NewCore(clock, sink)
	faulties := make(map[string]*fault.FaultyDevice, len(chaosDevices))
	profile := fault.Chaos()
	profile.SinkErrProb = 0 // the sink has its own wrapper
	for i, name := range chaosDevices {
		env := device.NewEnv(clock, seed+uint64(i))
		var dev device.Device
		switch name {
		case "C9":
			dev = c9.New(env)
		case "IKA":
			dev = ika.New(env)
		case "Tecan":
			dev = tecan.New(env)
		case "Quantos":
			dev = quantos.New(env)
		case "UR3e":
			dev = ur3e.New(env, nil)
		}
		f := fault.WrapDevice(dev, clock, fault.None(), seed+100+uint64(i))
		faulties[name] = f
		core.Register(f)
	}
	core.SetExecPolicy(ExecPolicy{
		Timeout:   20 * time.Second,
		Retries:   2,
		RetrySeed: seed,
		Breaker:   fault.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Minute, Probes: 1},
	})

	// Init every device while the lab is still healthy, then unleash chaos.
	total := 0
	for _, name := range chaosDevices {
		if r := rexec(core, uint64(total), name, device.Init); r.Error != "" {
			t.Fatalf("%s init: %s", name, r.Error)
		}
		total++
	}
	for _, f := range faulties {
		f.SetProfile(profile)
	}

	driver := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	for i := 0; i < requests; i++ {
		name := chaosDevices[driver.IntN(len(chaosDevices))]
		cmds := chaosCommands[name]
		cmd := cmds[driver.IntN(len(cmds))]
		rexec(core, uint64(total), name, cmd[0], cmd[1:]...)
		total++
	}

	// The storm passes: heal the store and fold the dead letters back in.
	flaky.SetProfile(fault.None())
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	reingested, err := db.Reingest(dlq)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := db.Collect(tracedb.Query{})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, r := range recs {
		fmt.Fprintf(h, "%d|%d|%d|%s|%s|%v|%s|%s|%s|%s\n",
			r.Seq, r.Time.UnixNano(), r.EndTime.UnixNano(),
			r.Device, r.Name, r.Args, r.Response, r.Exception, r.Mode, r.Run)
	}
	return chaosOutcome{
		requests: total,
		dbLen:    db.Len(),
		reingest: reingested,
		digest:   hex.EncodeToString(h.Sum(nil)),
		res:      core.Snapshot().Resilience,
		failover: sink.Stats(),
	}
}

// TestChaosSoakCampaign is the issue's acceptance soak: a sustained
// campaign under the chaos fault profile must lose zero accepted records
// (every request is accounted for in the recovered store), exercise every
// resilience mechanism, be byte-reproducible for a fixed seed, and leak no
// goroutines.
func TestChaosSoakCampaign(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const seed, requests = 1022, 2000
	a := runChaosCampaign(t, seed, requests)

	// Zero lost accepted records: every exec request — answered, failed,
	// retried, or shed — left exactly one record, and after re-ingest they
	// are all queryable in the primary store.
	if a.dbLen != a.requests {
		t.Fatalf("store holds %d records for %d requests (lost %d)",
			a.dbLen, a.requests, a.requests-a.dbLen)
	}

	// The storm actually exercised the machinery end to end.
	if a.res.Timeouts == 0 || a.res.Retries == 0 || a.res.InfraErrors == 0 {
		t.Errorf("resilience counters flat: %+v", a.res)
	}
	if a.res.Shed == 0 {
		t.Errorf("no requests shed — breakers never opened: %+v", a.res.Breakers)
	}
	opens := uint64(0)
	for _, b := range a.res.Breakers {
		opens += b.Opens
	}
	if opens == 0 {
		t.Error("no breaker ever opened under the chaos profile")
	}
	if a.failover.PrimaryErrors == 0 || a.failover.SpilledRecords == 0 {
		t.Errorf("sink failover idle: %+v", a.failover)
	}
	if a.reingest == 0 || uint64(a.reingest) != a.failover.SpilledRecords {
		t.Errorf("re-ingested %d records, spilled %d", a.reingest, a.failover.SpilledRecords)
	}
	t.Logf("soak: %d requests → %d records; %d timeouts, %d retries, %d shed, %d infra errors, %d breaker opens; %d spilled to DLQ, %d re-ingested",
		a.requests, a.dbLen, a.res.Timeouts, a.res.Retries, a.res.Shed, a.res.InfraErrors,
		opens, a.failover.SpilledRecords, a.reingest)

	// Byte-reproducible per seed; a different seed is a different storm.
	b := runChaosCampaign(t, seed, requests)
	if a.digest != b.digest {
		t.Fatalf("same seed produced different campaigns:\n  %s\n  %s", a.digest, b.digest)
	}
	if fmt.Sprintf("%+v", a.res) != fmt.Sprintf("%+v", b.res) {
		t.Errorf("same seed produced different resilience stats:\n  %+v\n  %+v", a.res, b.res)
	}
	c := runChaosCampaign(t, seed+1, requests)
	if c.digest == a.digest {
		t.Error("different seeds produced identical campaigns")
	}

	// No goroutine leaks: everything the soak started has wound down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after soak", baseline, runtime.NumGoroutine())
}
