package middlebox

import (
	"rad/internal/device"
	"rad/internal/fault"
	"rad/internal/obs"
)

// Observe registers the middlebox's metrics into reg and arms per-exec
// latency measurement. Call before serving traffic, after the devices are
// registered (devices registered later are picked up automatically).
//
// The request/resilience counters are exported as pull-based mirrors of
// the Core's existing atomics, so enabling them adds nothing to the hot
// path; the only per-exec cost is one latency-histogram observe
// (rad_middlebox_exec_seconds{device,command}), whose duration comes from
// the injected clock — a virtual-clock campaign renders deterministic
// histograms, a real-clock server measures wall time.
func (c *Core) Observe(reg *obs.Registry) {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	c.obsReg = reg

	reg.SetHelp("rad_middlebox_requests_total", "Requests served, by middlebox protocol op.")
	reg.CounterFunc("rad_middlebox_requests_total", c.execs.Load, "op", "exec")
	reg.CounterFunc("rad_middlebox_requests_total", c.traces.Load, "op", "trace")
	reg.CounterFunc("rad_middlebox_requests_total", c.pings.Load, "op", "ping")
	reg.SetHelp("rad_middlebox_errors_total", "Requests that produced an error reply.")
	reg.CounterFunc("rad_middlebox_errors_total", c.errors.Load)
	reg.SetHelp("rad_middlebox_exec_seconds", "REMOTE-mode exec latency as the client sees it, retries included.")

	// Hardened exec path activity (all zero when no ExecPolicy is set).
	reg.CounterFunc("rad_middlebox_exec_timeouts_total", c.timeouts.Load)
	reg.CounterFunc("rad_middlebox_exec_retries_total", c.retries.Load)
	reg.CounterFunc("rad_middlebox_exec_shed_total", c.shed.Load)
	reg.CounterFunc("rad_middlebox_exec_infra_errors_total", c.infraErrs.Load)

	// Live-stream fan-out, folded in from the attached broker (zero-valued
	// when none is attached; resolved at render time so AttachBroker may
	// come after Observe).
	reg.CounterFunc("rad_middlebox_stream_published_total", func() uint64 { return c.broker.Published() })

	for name, e := range c.table() {
		c.observeDeviceLocked(name, e)
	}
}

// observeDeviceLocked builds one device's latency histograms (prebuilt
// from the command catalog so the exec hot path never registers anything)
// and its breaker observability. The breaker metrics resolve the breaker
// at render time, so SetExecPolicy rebuilding the breakers — or Register
// replacing a device — never leaves them pointing at a stale one. Caller
// holds c.cfgMu; e is not yet published (Register) or published before any
// traffic (Observe's call-before-serving contract).
func (c *Core) observeDeviceLocked(name string, e *deviceEntry) {
	reg := c.obsReg
	hist := make(map[string]*obs.Histogram)
	for _, spec := range device.CatalogByKey() {
		if spec.Device == name {
			hist[spec.Name] = reg.Histogram("rad_middlebox_exec_seconds", nil, "device", name, "command", spec.Name)
		}
	}
	e.hist = hist
	e.histOther = reg.Histogram("rad_middlebox_exec_seconds", nil, "device", name, "command", "other")

	reg.SetHelp("rad_middlebox_breaker_state", "Circuit breaker position: 0 closed, 1 open, 2 half-open.")
	reg.GaugeFunc("rad_middlebox_breaker_state", func() float64 {
		return float64(c.breakerFor(name).State())
	}, "device", name)
	reg.CounterFunc("rad_middlebox_breaker_opens_total", func() uint64 {
		return c.breakerFor(name).Stats().Opens
	}, "device", name)
	reg.CounterFunc("rad_middlebox_breaker_sheds_total", func() uint64 {
		return c.breakerFor(name).Stats().Sheds
	}, "device", name)
	reg.CounterFunc("rad_middlebox_breaker_probes_total", func() uint64 {
		return c.breakerFor(name).Stats().Probes
	}, "device", name)
}

// breakerFor resolves a device's current breaker; nil (which reads as a
// permanently closed breaker) when the device is unknown or not hardened.
// Lock-free, so a fleet-wide metrics render never serializes tenants.
func (c *Core) breakerFor(name string) *fault.Breaker {
	if e := c.table()[name]; e != nil {
		return e.breaker
	}
	return nil
}
