package middlebox

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"rad/internal/store"
	"rad/internal/wire"
)

// TestWireMixedVersionFleet runs a fleet of v1, v2, and auto-negotiating
// clients against one listener concurrently. Every client uploads the same
// DIRECT-mode trace set, so the store must end up holding one record per
// (client, upload) — and for each upload index, every client's copy must be
// byte-identical modulo the store-assigned sequence number. Any field the
// binary codec drops, mangles, or re-encodes differently from JSON shows up
// as a mismatch inside an index group.
func TestWireMixedVersionFleet(t *testing.T) {
	core, sink, _ := newTestCore(t)
	srv := NewServer(core, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const uploads = 8
	protos := []wire.Proto{wire.ProtoV1, wire.ProtoV1, wire.ProtoV2, wire.ProtoV2, wire.ProtoAuto}
	wantVersion := []wire.Version{wire.V1, wire.V1, wire.V2, wire.V2, wire.V2}

	var wg sync.WaitGroup
	errs := make(chan error, len(protos))
	for ci, proto := range protos {
		wg.Add(1)
		go func(ci int, proto wire.Proto) {
			defer wg.Done()
			conn, wc, err := wire.Dial(addr, proto, nil)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", ci, err)
				return
			}
			defer conn.Close()
			if wc.Version() != wantVersion[ci] {
				errs <- fmt.Errorf("client %d: negotiated %s, want %s", ci, wc.Version(), wantVersion[ci])
				return
			}
			for i := 0; i < uploads; i++ {
				req := wire.Request{
					Op:         wire.OpTrace,
					Device:     "C9",
					Name:       "ARM",
					Args:       []string{fmt.Sprintf("%d", i), "ünïcödé", ""},
					Value:      "ok",
					StartNanos: int64(1000 + i),
					EndNanos:   int64(2000 + i),
					Procedure:  "P3",
					Run:        "mixed-fleet",
				}
				if i%3 == 0 {
					req.Error = "front door crashed"
				}
				if err := wc.WriteFrame(req); err != nil {
					errs <- fmt.Errorf("client %d upload %d: %w", ci, i, err)
					return
				}
				var rep wire.Reply
				if err := wc.ReadFrame(&rep); err != nil {
					errs <- fmt.Errorf("client %d upload %d: read reply: %w", ci, i, err)
					return
				}
				if rep.Error != "" {
					errs <- fmt.Errorf("client %d upload %d: server error %q", ci, i, rep.Error)
					return
				}
			}
		}(ci, proto)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	records := sink.All()
	if len(records) != len(protos)*uploads {
		t.Fatalf("store holds %d records, want %d", len(records), len(protos)*uploads)
	}
	// Group by upload index (recoverable from StartNanos) and require every
	// group to be one identical record seen len(protos) times.
	groups := make(map[int64][]store.Record)
	for _, r := range records {
		groups[r.Time.UnixNano()] = append(groups[r.Time.UnixNano()], r)
	}
	if len(groups) != uploads {
		t.Fatalf("%d distinct uploads in store, want %d", len(groups), uploads)
	}
	for nanos, group := range groups {
		if len(group) != len(protos) {
			t.Fatalf("upload at %d has %d copies, want %d", nanos, len(group), len(protos))
		}
		want := canonical(t, group[0])
		for _, r := range group[1:] {
			if got := canonical(t, r); got != want {
				t.Errorf("upload at %d diverges across protocols:\n got %s\nwant %s", nanos, got, want)
			}
		}
	}
}

// canonical renders a record as JSON with the store-assigned Seq zeroed —
// the byte-identity the mixed-fleet guarantee is stated in.
func canonical(t *testing.T, r store.Record) string {
	t.Helper()
	r.Seq = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWireMiddleboxPinnedProtocols pins SetProtocol's two restricted modes:
// a v1-pinned listener serves v1 clients and never upgrades, a v2-pinned
// listener rejects v1 clients outright.
func TestWireMiddleboxPinnedProtocols(t *testing.T) {
	t.Run("v1 pin", func(t *testing.T) {
		core, _, _ := newTestCore(t)
		srv := NewServer(core, NetworkProfile{}, 1)
		srv.SetProtocol(wire.ProtoV1)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		// An auto dialer's v2 handshake dies (pinned server reads the
		// preamble as a broken v1 frame) and falls back to v1.
		conn, wc, err := wire.Dial(addr, wire.ProtoAuto, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if wc.Version() != wire.V1 {
			t.Fatalf("auto against v1-pinned server negotiated %s", wc.Version())
		}
		if err := wc.WriteFrame(wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
			t.Fatal(err)
		}
		var rep wire.Reply
		if err := wc.ReadFrame(&rep); err != nil || rep.Value != "pong" {
			t.Fatalf("ping over fallback v1: %+v, %v", rep, err)
		}
	})
	t.Run("v2 pin", func(t *testing.T) {
		core, _, _ := newTestCore(t)
		srv := NewServer(core, NetworkProfile{}, 1)
		srv.SetProtocol(wire.ProtoV2)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		conn, wc, err := wire.Dial(addr, wire.ProtoV2, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := wc.WriteFrame(wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
			t.Fatal(err)
		}
		var rep wire.Reply
		if err := wc.ReadFrame(&rep); err != nil || rep.Value != "pong" {
			t.Fatalf("ping over pinned v2: %+v, %v", rep, err)
		}

		// A v1 client's first frame is rejected at negotiation: the
		// connection just dies, and the client sees EOF on the reply read.
		conn2, wc2, err := wire.Dial(addr, wire.ProtoV1, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer conn2.Close()
		_ = wc2.WriteFrame(wire.Request{ID: 1, Op: wire.OpPing})
		if err := wc2.ReadFrame(&rep); err == nil {
			t.Fatal("v1 client got a reply from a v2-pinned listener")
		}
	})
}
