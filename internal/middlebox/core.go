// Package middlebox implements the trusted middlebox of Fig. 1: the
// component that sits between the (untrusted) lab computer and the CPS
// devices, accepts only the restricted RPC command set, executes or records
// device commands, and continuously logs every command, response, and
// exception to its trace sinks.
//
// The package splits the middlebox into a transport-independent Core (device
// registry, command execution, trace logging) and a TCP Server wrapping it.
// The split lets the same middlebox logic run over real sockets for the
// latency experiments (Fig. 4) and over an in-process transport under a
// virtual clock for generating the three-month dataset campaign.
package middlebox

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"rad/internal/device"
	"rad/internal/fault"
	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/wire"
)

// deviceEntry bundles everything the exec hot path needs about one
// registered device behind a single registry lookup: the device itself,
// its circuit breaker (nil unless hardened — a nil breaker admits
// everything), and its latency histograms (nil unless Observe was called).
// Entries are immutable after the configuration phase (Register /
// SetExecPolicy / Observe, all documented call-before-serving), so the hot
// path reads them without further synchronization.
type deviceEntry struct {
	dev     device.Device
	breaker *fault.Breaker
	// hist maps a command name to its latency histogram
	// (rad_middlebox_exec_seconds{device,command}), prebuilt from the
	// command catalog so the hot path pays one map read, never a
	// registration. histOther absorbs commands outside the catalog.
	// lastHist caches the most recent lookup: robot command streams repeat
	// the same command in long runs (homing loops, polling), so the common
	// case is an atomic load plus one string compare instead of a map
	// access. A stale entry is harmless — it just misses into the map.
	hist      map[string]*obs.Histogram
	histOther *obs.Histogram
	lastHist  atomic.Pointer[cmdHist]
}

// cmdHist is one immutable (command name, histogram) pair for
// deviceEntry.lastHist.
type cmdHist struct {
	name string
	h    *obs.Histogram
}

// observeSlow is the exec path's histogram lookup miss path: resolve the
// command's histogram in the map, refresh the last-command cache, record
// (with a trace-id exemplar when the exec was traced). The hit path is
// spelled out inline in handleExec.
func (e *deviceEntry) observeSlow(name string, d time.Duration, traceID uint64) {
	h, ok := e.hist[name]
	if !ok {
		h = e.histOther
	}
	e.lastHist.Store(&cmdHist{name: name, h: h})
	if traceID != 0 {
		h.ObserveExemplar(d, traceID)
	} else {
		h.Observe(d)
	}
}

// Core is the transport-independent middlebox: it owns the device
// connections (REMOTE mode) and the trace log. Safe for concurrent use.
type Core struct {
	clock simclock.Clock
	// sink is immutable after NewCore; the logging hot path reads it
	// without taking any lock.
	sink store.Sink

	// cfgMu serializes the configuration phase (Register / SetExecPolicy /
	// Observe — all documented call-before-serving). The device registry
	// itself is a copy-on-write map behind an atomic pointer: writers
	// clone-and-publish under cfgMu, while the exec hot path, Snapshot, and
	// the obs render callbacks read it with one atomic load and no lock —
	// so fleet-wide aggregation across hundreds of tenant Cores never
	// serializes any of them (ISSUE 7 satellite).
	cfgMu   sync.Mutex
	entries atomic.Pointer[map[string]*deviceEntry]
	// obsReg, when set by Observe, receives every metric the middlebox
	// exports; per-device histograms live in the entries.
	obsReg *obs.Registry

	// Resilience machinery (see exec.go). policy/hardened/virtual are
	// immutable after SetExecPolicy; the zero policy keeps the seed-exact
	// single-attempt exec path.
	policy   ExecPolicy
	hardened bool
	virtual  bool // clock advances without blocking (simclock.Virtual)
	// realDeadline: attempts need the goroutine-and-timer guard of
	// execDeadlined (real clock with a timeout configured); otherwise the
	// deadline is a post-hoc virtual-elapsed check.
	realDeadline bool

	idempotent map[string]bool // "Device.Name" -> safe to retry

	retryMu  sync.Mutex
	retryRng *rand.Rand

	// broker, when attached, fans every committed trace record out to live
	// subscribers (radwatch tails, the online IDS). Immutable after
	// AttachBroker; nil means no live feed. brokerWired reports that the sink
	// publishes into the broker itself (through its commit hook), so the
	// logging path must not double-publish.
	broker      *stream.Broker
	brokerWired bool

	// spans, when attached, is the request-tracing flight recorder: one root
	// span per request with children for exec attempts and store appends
	// (internal/obs/span). Immutable after SetSpans; nil keeps tracing off
	// at the price of one nil check per request. spanTenant tags every span
	// with the owning tenant in fleet deployments.
	spans      *span.Recorder
	spanTenant string

	// Request counters are atomics so that concurrent device sessions never
	// serialize on the registry lock just to bump a statistic.
	execs  atomic.Uint64
	traces atomic.Uint64
	pings  atomic.Uint64
	errors atomic.Uint64

	// Resilience counters (hardened exec path only).
	timeouts  atomic.Uint64 // attempts that exceeded the exec deadline
	retries   atomic.Uint64 // extra attempts made for idempotent commands
	shed      atomic.Uint64 // requests rejected by an open breaker
	infraErrs atomic.Uint64 // infra-classified attempt failures
}

// Stats counts the requests a middlebox has served.
type Stats struct {
	Execs  uint64 // REMOTE-mode command executions
	Traces uint64 // DIRECT-mode trace uploads
	Pings  uint64
	Errors uint64 // requests that produced an error reply
	// Subscribers holds per-subscriber live-stream delivery accounting when a
	// broker is attached (nil otherwise).
	Subscribers []stream.SubscriberStats
	// Resilience reports the hardened exec path's activity (zero when no
	// ExecPolicy is set).
	Resilience Resilience
}

// NewCore builds a middlebox core logging to sink (which may be nil to
// disable logging, e.g. in pure latency benchmarks). A Core is cheap enough
// to instantiate per tenant: the command catalogs are shared process-wide
// and the wire buffers are pooled, so per-tenant cost is the device
// registry and the counters.
func NewCore(clock simclock.Clock, sink store.Sink) *Core {
	c := &Core{clock: clock, sink: sink}
	m := make(map[string]*deviceEntry)
	c.entries.Store(&m)
	return c
}

// table returns the current device registry: one atomic load, no lock.
func (c *Core) table() map[string]*deviceEntry { return *c.entries.Load() }

// publishEntry clones the registry with name→e added and publishes the new
// map. Caller holds cfgMu.
func (c *Core) publishEntry(name string, e *deviceEntry) {
	old := c.table()
	next := make(map[string]*deviceEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = e
	c.entries.Store(&next)
}

// AttachBroker connects a live-stream broker to the middlebox. When the trace
// sink assigns sequence numbers (implements store.Notifier), the broker is
// wired to its commit hook so subscribers see records with their
// authoritative sequence numbers, in commit order; otherwise records are
// published directly from the logging path (with whatever Seq they carry).
// Call before serving traffic.
func (c *Core) AttachBroker(b *stream.Broker) {
	c.broker = b
	if n, ok := c.sink.(store.Notifier); ok {
		b.AttachStore(n)
		c.brokerWired = true
	}
}

// SetSpans attaches a span flight recorder; tenant (may be empty) tags
// every span this core records, which is how fleet routers get per-tenant
// trace rollups. Call before serving traffic.
func (c *Core) SetSpans(r *span.Recorder, tenant string) {
	c.spans = r
	c.spanTenant = tenant
}

// Spans returns the attached span recorder (nil when tracing is off).
func (c *Core) Spans() *span.Recorder { return c.spans }

// Register connects a device to the middlebox. Registering a device with a
// name already in use replaces the previous registration (and resets its
// circuit breaker when one is configured).
func (c *Core) Register(d device.Device) {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	e := &deviceEntry{dev: d}
	if c.hardened {
		e.breaker = fault.NewBreaker(d.Name(), c.clock, c.policy.Breaker)
	}
	if c.obsReg != nil {
		c.observeDeviceLocked(d.Name(), e)
	}
	// The entry is built completely before the map carrying it is published,
	// so lock-free readers only ever see finished entries.
	c.publishEntry(d.Name(), e)
}

// Device returns the registered device with the given name, if any.
func (c *Core) Device(name string) (device.Device, bool) {
	e, ok := c.table()[name]
	if !ok {
		return nil, false
	}
	return e.dev, true
}

// Snapshot returns a consistent point-in-time copy of the request counters
// without taking any lock — the registry walk behind Resilience reads the
// copy-on-write device table with one atomic load. Each counter is itself
// exact; a request that completes concurrently with Snapshot may or may not
// be included, but no counter ever goes backwards between snapshots. A
// fleet aggregating Snapshot across hundreds of tenants therefore never
// stops, or even slows, any of them.
func (c *Core) Snapshot() Stats {
	return Stats{
		Execs:       c.execs.Load(),
		Traces:      c.traces.Load(),
		Pings:       c.pings.Load(),
		Errors:      c.errors.Load(),
		Subscribers: c.broker.Stats(), // nil-safe: nil broker reports nil
		Resilience:  c.resilience(),
	}
}

// Stats returns a snapshot of the request counters.
//
// Deprecated: use Snapshot, which this aliases. Stats survives only so
// pre-PR-1 callers keep compiling.
func (c *Core) Stats() Stats { return c.Snapshot() }

// Handle processes one request and produces its reply. It implements the
// middlebox protocol:
//
//   - exec: execute the command on the target device (REMOTE mode), log the
//     trace record, reply with the device's response.
//   - trace: log a trace record observed by the client (DIRECT mode).
//   - ping: liveness/RTT probe.
func (c *Core) Handle(req wire.Request) wire.Reply {
	switch req.Op {
	case wire.OpPing:
		c.pings.Add(1)
		return wire.Reply{ID: req.ID, Value: "pong"}
	case wire.OpExec:
		return c.handleExec(req)
	case wire.OpTrace:
		return c.handleTrace(req)
	default:
		c.errors.Add(1)
		return wire.Reply{ID: req.ID, Error: fmt.Sprintf("middlebox: unknown op %q", req.Op)}
	}
}

func (c *Core) handleExec(req wire.Request) wire.Reply {
	e, ok := c.lookup(req.Device)
	if !ok {
		c.errors.Add(1)
		return wire.Reply{ID: req.ID, Error: fmt.Sprintf("middlebox: device %q not registered", req.Device)}
	}
	d, br := e.dev, e.breaker
	// Adopt the caller's trace context (or start a fresh trace) before any
	// outcome branches, so shed requests trace too. On a nil recorder this
	// is a nil check returning the zero context, and every span site below
	// is skipped.
	sctx, parent := c.spans.Adopt(span.Context{TraceID: req.TraceID, SpanID: req.SpanID})
	if !br.Allow() {
		return c.shedExec(req, sctx, parent)
	}
	cmd := device.Command{Device: req.Device, Name: req.Name, Args: req.Args}
	start := c.clock.Now()
	var value string
	var err error
	var end time.Time
	if !c.hardened {
		value, err = d.Exec(cmd)
		end = c.clock.Now()
	} else {
		// First attempt, inlined (see execAttempt): the fault-free hot
		// path pays only the breaker's two-atomic-load bookkeeping and
		// one deadline comparison over the legacy path above.
		if c.realDeadline {
			value, end, err = c.execDeadlined(d, cmd)
		} else {
			value, err = d.Exec(cmd)
			end = c.clock.Now()
			if t := c.policy.Timeout; t > 0 && end.Sub(start) > t {
				c.timeouts.Add(1)
				value = ""
				err = fmt.Errorf("middlebox: %s: %w (timeout %s)", cmd.Device, fault.ErrDeadline, t)
			}
		}
		if infra := err != nil && fault.IsInfra(err); infra {
			br.Done(true)
			c.infraErrs.Add(1)
			// The first attempt failed into the retry path: record its span
			// (the fault-free path records only the root, keeping its span
			// cost to one ring write), then continue the attempt loop.
			c.recordAttempt(sctx, 1, br, start, end, err)
			value, end, err = c.execRetry(d, br, cmd, sctx, value, end, err)
		} else {
			br.Done(false)
		}
	}
	if e.hist != nil {
		// Client-visible exec latency, retries and backoff included. The
		// duration comes from the injected clock, so virtual-clock
		// campaigns produce deterministic histograms. The last-command
		// cache hit path is spelled out here so the common case pays one
		// atomic load and a string compare, not a map access. Traced execs
		// stamp the landing bucket's exemplar with their trace id, linking
		// rad_middlebox_exec_seconds buckets to /debug/spans trees.
		d := end.Sub(start)
		if last := e.lastHist.Load(); last != nil && last.name == req.Name {
			if sctx.TraceID != 0 {
				last.h.ObserveExemplar(d, sctx.TraceID)
			} else {
				last.h.Observe(d)
			}
		} else {
			e.observeSlow(req.Name, d, sctx.TraceID)
		}
	}

	rec := store.Record{
		Time: start, EndTime: end,
		Device: req.Device, Name: req.Name, Args: req.Args,
		Response:  value,
		Procedure: procedureLabel(req.Procedure),
		Run:       req.Run,
		Mode:      "REMOTE",
	}
	reply := wire.Reply{ID: req.ID, Value: value}
	c.execs.Add(1)
	if err != nil {
		rec.Exception = err.Error()
		reply.Error = err.Error()
		c.errors.Add(1)
	}
	if sctx.Valid() {
		// Stamp the record with the exec root's context so downstream span
		// sites (store append, DLQ spill, stream delivery) attach under it;
		// the fields are json:"-" so the persisted dataset is unchanged.
		rec.TraceID, rec.SpanID = sctx.TraceID, sctx.SpanID
		s := span.Span{TraceID: sctx.TraceID, SpanID: sctx.SpanID, ParentID: parent,
			Name: "middlebox.exec", Tenant: c.spanTenant, Start: start, End: end}
		s.SetAttr("device", req.Device)
		s.SetAttr("command", req.Name)
		if err != nil {
			s.Outcome = outcomeOf(err)
		}
		c.spans.Record(s)
	}
	c.log(rec)
	return reply
}

func (c *Core) handleTrace(req wire.Request) wire.Reply {
	rec := store.Record{
		Time:    time.Unix(0, req.StartNanos),
		EndTime: time.Unix(0, req.EndNanos),
		Device:  req.Device, Name: req.Name, Args: req.Args,
		Response: req.Value, Exception: req.Error,
		Procedure: procedureLabel(req.Procedure),
		Run:       req.Run,
		Mode:      "DIRECT",
	}
	c.traces.Add(1)
	if sctx, parent := c.spans.Adopt(span.Context{TraceID: req.TraceID, SpanID: req.SpanID}); sctx.Valid() {
		rec.TraceID, rec.SpanID = sctx.TraceID, sctx.SpanID
		s := span.Span{TraceID: sctx.TraceID, SpanID: sctx.SpanID, ParentID: parent,
			Name: "middlebox.trace", Tenant: c.spanTenant, Start: rec.Time, End: rec.EndTime}
		s.SetAttr("device", req.Device)
		s.SetAttr("command", req.Name)
		if req.Error != "" {
			s.Outcome = span.OutcomeError
		}
		c.spans.Record(s)
	}
	c.log(rec)
	return wire.Reply{ID: req.ID, Value: "ok"}
}

func (c *Core) log(rec store.Record) {
	if c.sink == nil {
		// No sink assigns sequence numbers, but live tailers may still want
		// the feed (e.g. a logging-disabled latency rig).
		if c.broker != nil && !c.brokerWired {
			c.broker.Publish(rec)
		}
		return
	}
	// Trace logging must never fail the command path; the middlebox drops
	// the record if the sink errors (a full disk must not stop the lab).
	// Traced records get a store-append child span bracketing the write —
	// under a virtual clock the bracket is zero-width and deterministic.
	if rec.TraceID != 0 {
		start := c.clock.Now()
		err := c.sink.Append(rec)
		s := span.Span{TraceID: rec.TraceID, SpanID: c.spans.NewID(), ParentID: rec.SpanID,
			Name: "store.append", Tenant: c.spanTenant, Start: start, End: c.clock.Now()}
		if err != nil {
			s.Outcome = span.OutcomeError
		}
		c.spans.Record(s)
	} else {
		_ = c.sink.Append(rec)
	}
	// Sinks that sequence records publish from their own commit hook; for
	// plain sinks the logging path publishes directly.
	if c.broker != nil && !c.brokerWired {
		c.broker.Publish(rec)
	}
}

// procedureLabel applies the paper's labelling rule: commands from
// supervised runs keep their procedure label, everything else is labelled
// "unknown procedure".
func procedureLabel(p string) string {
	if p == "" {
		return store.UnknownProcedure
	}
	return p
}
