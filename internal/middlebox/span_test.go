package middlebox

import (
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/fault"
	"rad/internal/obs/span"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// findChild returns the first child span with the given name, depth 1 only.
func findChild(tr *span.Tree, name string) *span.Tree {
	for _, c := range tr.Children {
		if c.Span.Name == name {
			return c
		}
	}
	return nil
}

func attr(s span.Span, key string) string {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestSpanExecRetryAttemptTree drives a hardened exec through two injected
// infrastructure failures and asserts the resulting trace tree: the
// middlebox.exec root adopts the remote trace context, each attempt on the
// retry path is its own child span annotated with attempt number, breaker
// state, and fault class, and the store append hangs off the root.
func TestSpanExecRetryAttemptTree(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	dev := &flakyNTimes{name: "C9", n: 2, answer: "0"}
	core.Register(dev)
	core.SetExecPolicy(ExecPolicy{Retries: 3, RetrySeed: 11, Breaker: fault.BreakerConfig{Threshold: 5, Cooldown: time.Minute, Probes: 1}})
	rec := span.NewRecorder(span.Config{Seed: 3})
	core.SetSpans(rec, "lab-a")

	reply := core.Handle(wire.Request{
		ID: 1, Op: wire.OpExec, Device: "C9", Name: "MVNG",
		TraceID: 0x77, SpanID: 0x88,
	})
	if reply.Error != "" {
		t.Fatalf("exec failed: %s", reply.Error)
	}

	roots := rec.Roots(span.Filter{})
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1: %+v", len(roots), roots)
	}
	root := roots[0]
	if root.Span.Name != "middlebox.exec" || root.Span.TraceID != 0x77 || root.Span.ParentID != 0x88 {
		t.Fatalf("root = %+v, want middlebox.exec under remote context 77/88", root.Span)
	}
	if root.Span.Tenant != "lab-a" {
		t.Fatalf("root tenant = %q, want lab-a", root.Span.Tenant)
	}
	if root.Span.Outcome != "" {
		t.Fatalf("successful exec root outcome = %q, want ok (empty)", root.Span.Outcome)
	}

	var attempts []*span.Tree
	for _, c := range root.Children {
		if c.Span.Name == "exec.attempt" {
			attempts = append(attempts, c)
		}
	}
	if len(attempts) != 3 {
		t.Fatalf("got %d exec.attempt children, want 3 (2 failures + success)", len(attempts))
	}
	for i, a := range attempts {
		wantOutcome := span.OutcomeError
		if i == 2 {
			wantOutcome = "" // the healed attempt
		}
		if a.Span.Outcome != wantOutcome {
			t.Errorf("attempt %d outcome = %q, want %q", i+1, a.Span.Outcome, wantOutcome)
		}
		if got := attr(a.Span, "attempt"); got == "" {
			t.Errorf("attempt %d missing attempt attr", i+1)
		}
		if got := attr(a.Span, "breaker"); got == "" {
			t.Errorf("attempt %d missing breaker attr", i+1)
		}
	}
	if got := attr(attempts[0].Span, "fault"); got != "connection reset" {
		t.Errorf("failed attempt fault attr = %q, want %q", got, "connection reset")
	}
	if findChild(root, "store.append") == nil {
		t.Fatalf("no store.append child under the exec root: %+v", root.Children)
	}
}

// TestSpanShedExecOutcome opens a device's breaker and asserts the shed
// request's zero-width root span carries outcome "shed" with the breaker
// attr, answering /debug/spans?outcome=shed precisely.
func TestSpanShedExecOutcome(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	core.Register(&flakyNTimes{name: "C9", n: 1 << 30})
	core.SetExecPolicy(ExecPolicy{Breaker: fault.BreakerConfig{Threshold: 1, Cooldown: time.Hour, Probes: 1}})
	rec := span.NewRecorder(span.Config{Seed: 3})
	core.SetSpans(rec, "")

	// First exec fails and trips the breaker; the second is shed.
	core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: "MVNG", TraceID: 1, SpanID: 2})
	core.Handle(wire.Request{ID: 2, Op: wire.OpExec, Device: "C9", Name: "MVNG", TraceID: 3, SpanID: 4})

	shed := rec.Roots(span.Filter{Outcome: span.OutcomeShed})
	if len(shed) != 1 {
		t.Fatalf("got %d shed roots, want 1", len(shed))
	}
	s := shed[0].Span
	if s.TraceID != 3 || attr(s, "breaker") != "open" {
		t.Fatalf("shed span = %+v, want trace 3 with breaker=open", s)
	}
	if s.Duration() != 0 {
		t.Errorf("shed span duration = %v, want 0 (no device contact)", s.Duration())
	}
}

// TestSpanServerWireTree serves a traced exec over real TCP (v2 binary,
// remote trace context on the frame) and asserts the server-side tree:
// server.request root parented by the client's span, with wire.decode,
// wire.encode, and middlebox.exec children — decode/encode bracketed
// codec-only, so they are far shorter than the request.
func TestSpanServerWireTree(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	core.Register(c9.New(device.NewEnv(clock, 1)))
	rec := span.NewRecorder(span.Config{Seed: 9})
	core.SetSpans(rec, "")

	srv := NewServer(core, NetworkProfile{}, 1)
	srv.SetSpans(rec)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, wc, err := wire.Dial(addr, wire.ProtoV2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init,
		TraceID: 0xabc, SpanID: 0xdef}
	if err := wc.WriteFrame(req); err != nil {
		t.Fatal(err)
	}
	var rep wire.Reply
	if err := wc.ReadFrame(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error != "" {
		t.Fatalf("exec error: %s", rep.Error)
	}

	roots := rec.Roots(span.Filter{})
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Span.Name != "server.request" || root.Span.TraceID != 0xabc || root.Span.ParentID != 0xdef {
		t.Fatalf("root = %+v, want server.request under client context abc/def", root.Span)
	}
	for _, name := range []string{"wire.decode", "wire.encode", "middlebox.exec"} {
		c := findChild(root, name)
		if c == nil {
			t.Fatalf("root missing %s child: %+v", name, root.Children)
		}
		if c.Span.TraceID != 0xabc {
			t.Errorf("%s child on trace %x, want abc", name, c.Span.TraceID)
		}
	}
	// Codec-only capture: the decode span must not include the socket wait
	// (the time before the frame arrived), so it is a sliver of the request.
	dec := findChild(root, "wire.decode").Span
	if dec.Duration() > root.Span.Duration() {
		t.Errorf("decode (%v) longer than the whole request (%v) — socket wait leaked in",
			dec.Duration(), root.Span.Duration())
	}
	// The exec child of the server root is the core's span, proving the
	// server rewrote the request's context before handing it down.
	exec := findChild(root, "middlebox.exec").Span
	if exec.ParentID != root.Span.SpanID {
		t.Errorf("exec parent = %x, want the server root %x", exec.ParentID, root.Span.SpanID)
	}
}

// TestSpanUntracedRequestsRecordNothing pins the zero-cost contract: with
// no recorder attached, traced fields stay zero and nothing is buffered;
// with a recorder but an untraced (v1-style) request, the server still
// roots a fresh trace — zero-value trace context is "no context", never
// "trace zero".
func TestSpanUntracedRequestsRecordNothing(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	sink := store.NewMemStore()
	core := NewCore(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, 1)))

	// No recorder: nothing recorded, record carries no trace id.
	if r := rexec(core, 1, "C9", device.Init); r.Error != "" {
		t.Fatalf("init: %s", r.Error)
	}
	if recs := sink.All(); recs[len(recs)-1].TraceID != 0 {
		t.Fatal("untraced record got a trace id")
	}

	// Recorder attached, request without remote context: a fresh trace.
	rec := span.NewRecorder(span.Config{Seed: 5})
	core.SetSpans(rec, "")
	if r := rexec(core, 2, "C9", "MVNG"); r.Error != "" {
		t.Fatalf("exec: %s", r.Error)
	}
	roots := rec.Roots(span.Filter{})
	if len(roots) != 1 || roots[0].Span.ParentID != 0 {
		t.Fatalf("fresh trace not rooted: %+v", roots)
	}
	if recs := sink.All(); recs[len(recs)-1].TraceID == 0 {
		t.Fatal("traced record lost its trace id")
	}
}
