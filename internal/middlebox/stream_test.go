package middlebox

import (
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/wire"
)

func execReq(name string) wire.Request {
	return wire.Request{Op: wire.OpExec, Device: "C9", Name: name}
}

// TestAttachBrokerPublishesWithStoreSeqs checks the notifier wiring: with a
// sequencing sink, every handled exec reaches a subscriber exactly once,
// carrying the store's sequence number.
func TestAttachBrokerPublishesWithStoreSeqs(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	sink := store.NewMemStore()
	core := NewCore(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, 1)))

	broker := stream.NewBroker()
	defer broker.Close()
	core.AttachBroker(broker)
	sub := broker.Subscribe(stream.SubOptions{Policy: stream.Block, Buffer: 64})

	for _, name := range []string{device.Init, "MVNG", "MVNG"} {
		if rep := core.Handle(execReq(name)); rep.Error != "" {
			t.Fatal(rep.Error)
		}
	}
	for want := uint64(0); want < 3; want++ {
		ev, ok := sub.TryRecv()
		if !ok {
			t.Fatalf("missing event %d", want)
		}
		if ev.Record.Seq != want {
			t.Errorf("event seq %d, want %d (store numbering)", ev.Record.Seq, want)
		}
	}
	if _, ok := sub.TryRecv(); ok {
		t.Error("record published twice (hook and logging path both fired)")
	}
}

// TestAttachBrokerWithPlainSink covers the fallback: a sink without a commit
// hook still feeds subscribers, directly from the logging path.
func TestAttachBrokerWithPlainSink(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, plainSink{})
	core.Register(c9.New(device.NewEnv(clock, 1)))

	broker := stream.NewBroker()
	defer broker.Close()
	core.AttachBroker(broker)
	sub := broker.Subscribe(stream.SubOptions{})

	if rep := core.Handle(execReq(device.Init)); rep.Error != "" {
		t.Fatal(rep.Error)
	}
	if _, ok := sub.TryRecv(); !ok {
		t.Error("plain-sink middlebox published nothing")
	}
}

// TestSnapshotIncludesSubscriberStats is the per-subscriber accounting
// satellite: Core.Snapshot must expose each live subscriber's delivery
// counters alongside the request counters.
func TestSnapshotIncludesSubscriberStats(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	core.Register(c9.New(device.NewEnv(clock, 1)))

	if got := core.Snapshot().Subscribers; got != nil {
		t.Fatalf("no broker attached but Subscribers = %v", got)
	}

	broker := stream.NewBroker()
	defer broker.Close()
	core.AttachBroker(broker)
	sub := broker.Subscribe(stream.SubOptions{Name: "watcher", Buffer: 2})

	for _, name := range []string{device.Init, "MVNG", "MVNG", "MVNG"} {
		if rep := core.Handle(execReq(name)); rep.Error != "" {
			t.Fatal(rep.Error)
		}
	}
	sub.Recv() // deliver one

	stats := core.Snapshot()
	if len(stats.Subscribers) != 1 {
		t.Fatalf("%d subscriber stats, want 1", len(stats.Subscribers))
	}
	s := stats.Subscribers[0]
	if s.Name != "watcher" {
		t.Errorf("stats name %q", s.Name)
	}
	if s.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", s.Delivered)
	}
	// Four publishes into a two-slot ring, one consumed: exact accounting.
	if s.Delivered+s.Dropped+uint64(s.Buffered) != 4 {
		t.Errorf("delivered %d + dropped %d + buffered %d != 4 published",
			s.Delivered, s.Dropped, s.Buffered)
	}
	if !s.Lagging {
		t.Error("subscriber with drops not marked lagging")
	}
}

type plainSink struct{}

func (plainSink) Append(store.Record) error { return nil }
