package middlebox

import (
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/fault"
	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/simclock"
	"rad/internal/wire"
)

// BenchmarkExecObserved prices the observability layer on the fault-free
// hot path: "baseline" is the hardened exec path (deadline + retry
// eligibility + closed breaker, no metrics), "observed" adds the full
// Observe wiring — whose only per-exec cost is one sharded
// latency-histogram observe (two LOCK XADDs plus a last-command cache
// hit); every counter is a pull-based mirror. The budget is observed ≤
// 1.05× the PR 4 BenchmarkExecWithBreaker baseline: consolidating the
// device and breaker maps into one entry lookup bought back more than the
// histogram costs, so "observed" lands below the PR 4 numbers even though
// it carries ~26ns of instrumentation over today's faster baseline
// (EXPERIMENTS.md records both comparisons).
func BenchmarkExecObserved(b *testing.B) {
	build := func(b *testing.B, observe bool) *Core {
		b.Helper()
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		core := NewCore(clock, nil) // no sink: isolate the exec path
		core.Register(c9.New(device.NewEnv(clock, 1)))
		core.SetExecPolicy(ExecPolicy{
			Timeout: 20 * time.Second,
			Retries: 2,
			Breaker: fault.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Minute},
		})
		if observe {
			core.Observe(obs.NewRegistry())
		}
		if r := core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init}); r.Error != "" {
			b.Fatalf("init: %s", r.Error)
		}
		return core
	}
	req := wire.Request{ID: 2, Op: wire.OpExec, Device: "C9", Name: "MVNG"}

	b.Run("baseline", func(b *testing.B) {
		core := build(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Handle(req); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
	b.Run("observed", func(b *testing.B) {
		core := build(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Handle(req); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
	// The tracing acceptance budget is on the two sub-benchmarks above:
	// with the span recorder threaded through the exec path, "baseline"
	// and "observed" must stay within 5% of their PR 5 numbers — i.e. the
	// nil-recorder hooks (one pointer check per span site, trace fields on
	// Request/Record) must be free. "traced" then prices the opt-in
	// recorder itself: one trace-context adopt (a single counter bump plus
	// two splitmix rounds, ~13ns), span construction (~21ns, dominated by
	// zeroing the inline attr array), one ring write under the sharded
	// mutex (~29ns incl. the by-value copy), and the histogram exemplar
	// store — ~75ns total on the harshest denominator (no sink, virtual
	// clock), under 7% of the realistic ~1.1µs exec path with a tracedb
	// sink (EXPERIMENTS.md records the decomposition).
	b.Run("traced", func(b *testing.B) {
		core := build(b, true)
		core.SetSpans(span.NewRecorder(span.Config{Seed: 1}), "")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Handle(req); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
	// "traced-sampled" is the production relief valve: with 1-in-1024
	// sampling, non-kept traces skip the ring write entirely.
	b.Run("traced-sampled", func(b *testing.B) {
		core := build(b, true)
		core.SetSpans(span.NewRecorder(span.Config{Seed: 1, SampleEvery: 1024}), "")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Handle(req); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
}
