package middlebox

import (
	"net"
	"sync"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// TestServerSurvivesGarbageBytes: the middlebox is the trusted component; a
// misbehaving client must only lose its own connection.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	clock := simclock.Real{}
	core := NewCore(clock, store.NewMemStore())
	core.Register(c9.New(device.NewEnv(clock, 1)))
	srv := NewServer(core, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Client 1 sends garbage: an absurd length prefix.
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection.
	_ = bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := bad.Read(buf); err == nil {
		t.Error("server replied to a garbage frame instead of dropping the connection")
	}
	_ = bad.Close()

	// Client 2 works fine afterwards.
	good, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := wire.WriteFrame(good, wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	var reply wire.Reply
	if err := wire.ReadFrame(good, &reply); err != nil {
		t.Fatalf("healthy client after garbage client: %v", err)
	}
	if reply.Value != "pong" {
		t.Errorf("reply = %+v", reply)
	}
}

// TestServerSurvivesNonJSONPayload: a well-framed but non-JSON payload also
// only drops that connection.
func TestServerSurvivesNonJSONPayload(t *testing.T) {
	clock := simclock.Real{}
	core := NewCore(clock, nil)
	srv := NewServer(core, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("definitely not json")
	frame := append([]byte{0, 0, 0, byte(len(payload))}, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil && n > 0 {
		t.Error("server replied to non-JSON payload")
	}
	_ = conn.Close()
}

// TestServerConcurrentClients: many clients hammering one middlebox; every
// request gets its reply and every command is logged exactly once.
func TestServerConcurrentClients(t *testing.T) {
	clock := simclock.Real{}
	sink := store.NewMemStore()
	core := NewCore(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	srv := NewServer(core, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, perClient = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if err := wire.WriteFrame(conn, wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init}); err != nil {
				errs <- err
				return
			}
			var reply wire.Reply
			if err := wire.ReadFrame(conn, &reply); err != nil {
				errs <- err
				return
			}
			for i := 0; i < perClient; i++ {
				req := wire.Request{ID: uint64(i + 2), Op: wire.OpExec, Device: "C9", Name: "MVNG"}
				if err := wire.WriteFrame(conn, req); err != nil {
					errs <- err
					return
				}
				if err := wire.ReadFrame(conn, &reply); err != nil {
					errs <- err
					return
				}
				if reply.ID != req.ID {
					t.Errorf("client %d: reply id %d for request %d", id, reply.ID, req.ID)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := clients * (perClient + 1)
	if got := sink.Len(); got != want {
		t.Errorf("logged %d records, want %d", got, want)
	}
}

// TestCoreStatsUnderConcurrency checks the counters stay consistent.
func TestCoreStatsUnderConcurrency(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, nil)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				core.Handle(wire.Request{Op: wire.OpPing})
			}
		}()
	}
	wg.Wait()
	if got := core.Stats().Pings; got != 400 {
		t.Errorf("pings = %d, want 400", got)
	}
}
