package middlebox

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"time"

	"rad/internal/device"
	"rad/internal/fault"
	"rad/internal/obs/span"
	"rad/internal/store"
	"rad/internal/wire"
)

// DeviceUnavailable prefixes the error a shed request gets and the
// synthetic Exception the middlebox traces for it, so IDS consumers see
// failure-mode traffic instead of silence when a breaker opens.
const DeviceUnavailable = "DEVICE_UNAVAILABLE"

// ExecPolicy hardens the REMOTE-mode exec path against flaky devices: a
// per-attempt deadline, jittered exponential-backoff retries for
// idempotent (non-mutating) command types, and a per-device circuit
// breaker that sheds load instead of hanging on a dead device. The zero
// value disables all of it and keeps the seed-exact single-attempt path.
type ExecPolicy struct {
	// Timeout is the per-attempt exec deadline; 0 disables. Under a real
	// clock the attempt is abandoned when the deadline fires (the device
	// goroutine is left to finish into a buffered channel); under a
	// virtual clock the attempt's virtual elapsed time is checked after
	// the fact, which keeps campaigns deterministic.
	Timeout time.Duration
	// Retries is the number of extra attempts granted to idempotent
	// commands after an infrastructure failure. Mutating commands never
	// retry: a dropped response may mean the command executed.
	Retries int
	// RetryBase and RetryMax bound the jittered exponential backoff
	// between attempts (defaults 50ms and 2s, charged to the clock).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter stream (0 selects 1).
	RetrySeed uint64
	// Breaker configures the per-device circuit breaker; a zero Threshold
	// disables it.
	Breaker fault.BreakerConfig
}

// SetExecPolicy installs the resilience policy. Call before serving
// traffic: it rebuilds the per-device breakers and is not synchronized
// with in-flight execs.
func (c *Core) SetExecPolicy(p ExecPolicy) {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	if p.RetryBase <= 0 {
		p.RetryBase = 50 * time.Millisecond
	}
	if p.RetryMax <= 0 {
		p.RetryMax = 2 * time.Second
	}
	seed := p.RetrySeed
	if seed == 0 {
		seed = 1
	}
	c.policy = p
	c.hardened = p.Timeout > 0 || p.Retries > 0 || p.Breaker.Threshold > 0
	_, c.virtual = c.clock.(interface{ Advance(time.Duration) })
	c.realDeadline = !c.virtual && p.Timeout > 0
	c.retryRng = rand.New(rand.NewPCG(seed, seed^0xbf58476d1ce4e5b9))
	if c.hardened && c.idempotent == nil {
		c.idempotent = sharedIdempotent()
	}
	// Rebuild the registry copy-on-write: entries are immutable once
	// published, so the breaker swap constructs fresh entries rather than
	// mutating ones a lock-free reader may hold.
	old := c.table()
	next := make(map[string]*deviceEntry, len(old))
	for name, e := range old {
		ne := &deviceEntry{dev: e.dev, hist: e.hist, histOther: e.histOther}
		if c.hardened {
			ne.breaker = fault.NewBreaker(name, c.clock, p.Breaker)
		}
		next[name] = ne
	}
	c.entries.Store(&next)
}

// sharedIdempotent builds the "Device.Name" → idempotent catalog once per
// process and shares the (read-only) map across every Core — a fleet of
// hundreds of tenant Cores pays for one copy, not N.
var sharedIdempotent = sync.OnceValue(idempotentCatalog)

// idempotentCatalog maps "Device.Name" to true for the catalog's
// non-mutating (read-only) command types — the ones safe to re-issue when
// a response is lost. Unknown commands are conservatively non-idempotent.
func idempotentCatalog() map[string]bool {
	m := make(map[string]bool)
	for key, spec := range device.CatalogByKey() {
		if !spec.Mutating {
			m[key] = true
		}
	}
	return m
}

// lookup resolves a device's entry — device, breaker, histograms — with one
// atomic load and one map access; no lock.
func (c *Core) lookup(name string) (*deviceEntry, bool) {
	e, ok := c.table()[name]
	return e, ok
}

// shedExec rejects a request whose breaker is open: no device contact, an
// immediate DEVICE_UNAVAILABLE reply, and a synthetic trace record so the
// outage is visible in the dataset instead of being a silence. Sheds trace
// like any other outcome (a zero-width root span with outcome "shed"), so
// /debug/spans?outcome=shed answers "which tenants are we rejecting".
func (c *Core) shedExec(req wire.Request, sctx span.Context, parent uint64) wire.Reply {
	c.shed.Add(1)
	c.errors.Add(1)
	now := c.clock.Now()
	msg := fmt.Sprintf("%s: %s: circuit open", DeviceUnavailable, req.Device)
	rec := store.Record{
		Time: now, EndTime: now,
		Device: req.Device, Name: req.Name, Args: req.Args,
		Exception: msg,
		Procedure: procedureLabel(req.Procedure),
		Run:       req.Run,
		Mode:      "REMOTE",
	}
	if sctx.Valid() {
		rec.TraceID, rec.SpanID = sctx.TraceID, sctx.SpanID
		s := span.Span{TraceID: sctx.TraceID, SpanID: sctx.SpanID, ParentID: parent,
			Name: "middlebox.exec", Tenant: c.spanTenant, Outcome: span.OutcomeShed,
			Start: now, End: now}
		s.SetAttr("device", req.Device)
		s.SetAttr("command", req.Name)
		s.SetAttr("breaker", "open")
		c.spans.Record(s)
	}
	c.log(rec)
	return wire.Reply{ID: req.ID, Error: msg}
}

// outcomeOf classifies an exec error for its span.
func outcomeOf(err error) string {
	if errors.Is(err, fault.ErrDeadline) {
		return span.OutcomeTimeout
	}
	return span.OutcomeError
}

// recordAttempt records one hardened exec attempt's span, annotated with
// the attempt number, the breaker's state after the attempt was charged,
// and — when an injector fired — the fault class. Only attempts on the
// retry path reach here; the fault-free single attempt is represented by
// the root exec span itself.
func (c *Core) recordAttempt(sctx span.Context, attempt int, br *fault.Breaker, start, end time.Time, err error) {
	if !sctx.Valid() {
		return
	}
	s := span.Span{TraceID: sctx.TraceID, SpanID: c.spans.NewID(), ParentID: sctx.SpanID,
		Name: "exec.attempt", Tenant: c.spanTenant, Start: start, End: end}
	s.SetAttr("attempt", strconv.Itoa(attempt))
	if br != nil {
		s.SetAttr("breaker", br.State().String())
	}
	if err != nil {
		s.Outcome = outcomeOf(err)
		var f *fault.Fault
		if errors.As(err, &f) {
			s.SetAttr("fault", f.Kind.String())
		}
	}
	c.spans.Record(s)
}

// execAttempt runs one deadline-bounded attempt. Under a real clock the
// attempt is abandoned when the deadline fires (execDeadlined); under a
// virtual clock a hang advances simulated time and returns promptly, so
// the deadline is a post-hoc elapsed-time check — no goroutine, no
// nondeterminism. handleExec inlines the virtual-clock body of this
// function for the first attempt: the fault-free hot path must not pay a
// call frame (cmd alone is seven words), and its overhead budget over the
// seed's plain exec path is tight.
func (c *Core) execAttempt(d device.Device, cmd device.Command, start time.Time) (string, time.Time, error) {
	if c.realDeadline {
		return c.execDeadlined(d, cmd)
	}
	value, err := d.Exec(cmd)
	end := c.clock.Now()
	if t := c.policy.Timeout; t > 0 && end.Sub(start) > t {
		c.timeouts.Add(1)
		return "", end, fmt.Errorf("middlebox: %s: %w (timeout %s)", cmd.Device, fault.ErrDeadline, t)
	}
	return value, end, err
}

// execRetry continues the attempt loop after the first attempt hit an
// infrastructure failure (already charged to the breaker by the caller):
// idempotent commands earn backoff-spaced extra attempts, every outcome
// feeds the breaker, and device-reported command errors return immediately
// — they are answers, not outages. The idempotency map key is built here,
// off the hot path, so the fault-free path never constructs it.
func (c *Core) execRetry(d device.Device, br *fault.Breaker, cmd device.Command, sctx span.Context, value string, end time.Time, err error) (string, time.Time, error) {
	attempts := 1
	if c.policy.Retries > 0 && c.idempotent[cmd.Device+"."+cmd.Name] {
		attempts += c.policy.Retries
	}
	for attempt := 1; attempt < attempts; attempt++ {
		c.retries.Add(1)
		c.clock.Sleep(c.backoff(attempt - 1))
		start := c.clock.Now()
		value, end, err = c.execAttempt(d, cmd, start)
		infra := err != nil && fault.IsInfra(err)
		br.Done(infra)
		c.recordAttempt(sctx, attempt+1, br, start, end, err)
		if !infra {
			return value, end, err
		}
		c.infraErrs.Add(1)
	}
	return value, end, err
}

// backoff draws the next jittered retry delay from the policy's seeded
// stream.
func (c *Core) backoff(attempt int) time.Duration {
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	return fault.Backoff(attempt, c.policy.RetryBase, c.policy.RetryMax, c.retryRng)
}

// execDeadlined runs one attempt under a real-clock deadline: the attempt
// runs in a goroutine and is abandoned when the timer fires; the late
// result lands in a buffered channel, so nothing leaks.
func (c *Core) execDeadlined(d device.Device, cmd device.Command) (string, time.Time, error) {
	t := c.policy.Timeout
	type result struct {
		value string
		err   error
	}
	done := make(chan result, 1)
	go func() {
		v, err := d.Exec(cmd)
		done <- result{v, err}
	}()
	timer := time.NewTimer(t)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.value, c.clock.Now(), r.err
	case <-timer.C:
		c.timeouts.Add(1)
		return "", c.clock.Now(), fmt.Errorf("middlebox: %s: %w (timeout %s)", cmd.Device, fault.ErrDeadline, t)
	}
}

// Resilience is the hardened exec path's observability: retry/timeout/shed
// totals plus every per-device breaker's state and transition counters.
type Resilience struct {
	Timeouts    uint64 // attempts that exceeded the exec deadline
	Retries     uint64 // extra attempts made for idempotent commands
	Shed        uint64 // requests rejected by an open breaker
	InfraErrors uint64 // infra-classified attempt failures (includes retried ones)
	Breakers    []fault.BreakerStats
}

// resilience snapshots the counters and the breakers (sorted by device so
// snapshots are stable). Lock-free: the registry walk reads the
// copy-on-write table.
func (c *Core) resilience() Resilience {
	r := Resilience{
		Timeouts:    c.timeouts.Load(),
		Retries:     c.retries.Load(),
		Shed:        c.shed.Load(),
		InfraErrors: c.infraErrs.Load(),
	}
	for _, e := range c.table() {
		if e.breaker != nil {
			r.Breakers = append(r.Breakers, e.breaker.Stats())
		}
	}
	sort.Slice(r.Breakers, func(i, j int) bool { return r.Breakers[i].Device < r.Breakers[j].Device })
	return r
}
