package middlebox

// Graceful-drain tests for the exec listener. Test names deliberately
// match the CI resilience shakeout's -run filter
// (Resume|Reconnect|Drain|Heartbeat).

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"rad/internal/wire"
)

// slowHandler answers after a fixed delay; release-gated variants block
// until allowed.
type slowHandler struct {
	delay time.Duration
	gate  chan struct{} // when non-nil, Handle blocks on it
}

func (h *slowHandler) Handle(req wire.Request) wire.Reply {
	if h.gate != nil {
		<-h.gate
	}
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	return wire.Reply{ID: req.ID, Value: "ok"}
}

// TestDrainFlushesInFlightReply: a request already being handled when
// Drain starts still gets its reply — drain severs only the read
// direction, never a reply mid-flight.
func TestDrainFlushesInFlightReply(t *testing.T) {
	srv := NewHandlerServer(&slowHandler{delay: 50 * time.Millisecond}, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	nc, wc, err := wire.Dial(addr, wire.ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wc.WriteFrame(wire.Request{ID: 7, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the handler pick the request up

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	var reply wire.Reply
	if err := wc.ReadFrame(&reply); err != nil {
		t.Fatalf("in-flight reply lost to drain: %v", err)
	}
	if reply.ID != 7 || reply.Value != "ok" {
		t.Fatalf("reply = %+v", reply)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The connection is gone afterwards: the drained server reads no more.
	if err := wc.WriteFrame(wire.Request{ID: 8, Op: wire.OpPing}); err == nil {
		if err := wc.ReadFrame(&reply); err == nil {
			t.Fatal("drained server answered a post-drain request")
		}
	}
}

// TestDrainTimeoutSeversStragglers: a handler that never returns within
// the budget is cut off Close-style and Drain reports the deadline.
func TestDrainTimeoutSeversStragglers(t *testing.T) {
	gate := make(chan struct{})
	srv := NewHandlerServer(&slowHandler{gate: gate}, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(gate)

	nc, wc, err := wire.Dial(addr, wire.ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wc.WriteFrame(wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // the handler is now stuck on the gate

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck handler returned %v, want deadline exceeded", err)
	}
}

// TestDrainReleasesGoroutines: repeated serve/drain cycles with live
// connections and an idle timeout return to the baseline goroutine count.
func TestDrainReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		srv := NewHandlerServer(&slowHandler{}, NetworkProfile{}, uint64(round+1))
		srv.SetIdleTimeout(time.Second)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			nc, wc, err := wire.Dial(addr, wire.ProtoAuto, nil)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				defer nc.Close()
				if err := wc.WriteFrame(wire.Request{ID: id, Op: wire.OpPing}); err != nil {
					return
				}
				var reply wire.Reply
				_ = wc.ReadFrame(&reply)
			}(uint64(i))
		}
		wg.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Drain(ctx); err != nil {
			t.Fatalf("round %d drain: %v", round, err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestHeartbeatIdleTimeoutReapsHalfOpenConn: a connection that goes silent
// past the idle deadline is reaped even though its peer never closed —
// the half-open case SetIdleTimeout exists for.
func TestHeartbeatIdleTimeoutReapsHalfOpenConn(t *testing.T) {
	srv := NewHandlerServer(&slowHandler{}, NetworkProfile{}, 1)
	srv.SetIdleTimeout(30 * time.Millisecond)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	nc, wc, err := wire.Dial(addr, wire.ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// One healthy round trip, then total silence.
	if err := wc.WriteFrame(wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	var reply wire.Reply
	if err := wc.ReadFrame(&reply); err != nil {
		t.Fatal(err)
	}

	// The server must reap the silent connection: a read on our side
	// eventually sees EOF rather than blocking forever.
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := wc.ReadFrame(&reply); err == nil {
		t.Fatal("idle connection still served a frame")
	} else if ne, ok := err.(interface{ Timeout() bool }); ok && ne.Timeout() {
		t.Fatal("idle connection never reaped: read timed out on our side, not closed by the server")
	}
}
