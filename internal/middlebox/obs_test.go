package middlebox

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/fault"
	"rad/internal/obs"
	"rad/internal/simclock"
	"rad/internal/wire"
)

// obsCore builds an observed, hardened core over a virtual clock with the
// C9 and IKA simulators seeded from seed.
func obsCore(t testing.TB, seed uint64) (*Core, *obs.Registry, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	core := NewCore(clock, nil)
	core.Register(c9.New(device.NewEnv(clock, seed)))
	core.Register(ika.New(device.NewEnv(clock, seed+1)))
	core.SetExecPolicy(ExecPolicy{
		Timeout: time.Hour,
		Retries: 1,
		Breaker: fault.BreakerConfig{Threshold: 3, Cooldown: time.Minute},
	})
	reg := obs.NewRegistry()
	core.Observe(reg)
	return core, reg, clock
}

// driveObs executes a deterministic command mix and returns the rendered
// Prometheus exposition.
func driveObs(t testing.TB, core *Core, reg *obs.Registry) string {
	t.Helper()
	script := []wire.Request{
		{Op: wire.OpExec, Device: device.C9, Name: device.Init},
		{Op: wire.OpExec, Device: device.IKA, Name: device.Init},
		{Op: wire.OpPing},
	}
	for i := 0; i < 40; i++ {
		script = append(script,
			wire.Request{Op: wire.OpExec, Device: device.C9, Name: "MVNG"},
			wire.Request{Op: wire.OpExec, Device: device.IKA, Name: "IN_PV_4"},
		)
	}
	// One off-catalog command exercises the fallback histogram.
	script = append(script, wire.Request{Op: wire.OpExec, Device: device.C9, Name: "NOT_IN_CATALOG"})
	for i, req := range script {
		req.ID = uint64(i + 1)
		core.Handle(req)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestObsExecHistogramDeterminism: under a virtual clock the latency
// histograms are a pure function of the seed — two identical campaigns
// render byte-identical expositions, for every seed tried.
func TestObsExecHistogramDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			coreA, regA, _ := obsCore(t, seed)
			coreB, regB, _ := obsCore(t, seed)
			a := driveObs(t, coreA, regA)
			b := driveObs(t, coreB, regB)
			if a != b {
				t.Fatalf("virtual-clock renders differ for seed %d:\n--- a ---\n%s\n--- b ---\n%s", seed, a, b)
			}
			if !strings.Contains(a, `rad_middlebox_exec_seconds_bucket{command="MVNG",device="C9",`) {
				t.Fatalf("per-command histogram missing:\n%s", a)
			}
		})
	}
}

// TestObsCountersMirrorSnapshot: the pull-based counters must agree with
// Core.Snapshot exactly — they read the same atomics.
func TestObsCountersMirrorSnapshot(t *testing.T) {
	core, reg, _ := obsCore(t, 7)
	driveObs(t, core, reg)
	core.Handle(wire.Request{ID: 999, Op: wire.OpExec, Device: "nope", Name: "X"}) // an error reply

	stats := core.Snapshot()
	snap := reg.Snapshot()
	got := make(map[string]uint64)
	for _, c := range snap.Counters {
		key := c.Name
		if op := c.Labels["op"]; op != "" {
			key += ":" + op
		}
		if c.Labels["device"] == "" || !strings.Contains(c.Name, "breaker") {
			got[key] = c.Value
		}
	}
	for key, want := range map[string]uint64{
		"rad_middlebox_requests_total:exec": stats.Execs,
		"rad_middlebox_requests_total:ping": stats.Pings,
		"rad_middlebox_errors_total":        stats.Errors,
		"rad_middlebox_exec_shed_total":     stats.Resilience.Shed,
	} {
		if got[key] != want {
			t.Errorf("%s = %d, want %d (Core.Snapshot)", key, got[key], want)
		}
	}
	if stats.Errors == 0 {
		t.Fatal("script produced no error replies; the mirror test lost its teeth")
	}

	// The per-exec histogram count must equal the number of execs that
	// reached a device (all execs here — nothing was shed).
	var histCount uint64
	for _, h := range snap.Histograms {
		if h.Name == "rad_middlebox_exec_seconds" {
			histCount += h.Count
		}
	}
	if histCount != stats.Execs {
		t.Fatalf("histogram observations = %d, want %d execs", histCount, stats.Execs)
	}
}

// TestObsBreakerGaugeFlips: a device that always resets trips its breaker;
// the state gauge and shed counters must show the flip live.
func TestObsBreakerGaugeFlips(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	core := NewCore(clock, nil)
	dead := fault.WrapDevice(c9.New(device.NewEnv(clock, 1)), clock, fault.Profile{ResetProb: 1}, 42)
	core.Register(dead)
	core.SetExecPolicy(ExecPolicy{Breaker: fault.BreakerConfig{Threshold: 2, Cooldown: time.Hour}})
	reg := obs.NewRegistry()
	core.Observe(reg)

	for i := 0; i < 5; i++ {
		core.Handle(wire.Request{ID: uint64(i + 1), Op: wire.OpExec, Device: device.C9, Name: "MVNG"})
	}
	snap := reg.Snapshot()
	vals := map[string]float64{}
	counts := map[string]uint64{}
	for _, g := range snap.Gauges {
		vals[g.Name] = g.Value
	}
	for _, c := range snap.Counters {
		counts[c.Name] += c.Value
	}
	if vals["rad_middlebox_breaker_state"] != float64(fault.BreakerOpen) {
		t.Fatalf("breaker state gauge = %v, want open (%d)", vals["rad_middlebox_breaker_state"], fault.BreakerOpen)
	}
	if counts["rad_middlebox_breaker_opens_total"] == 0 {
		t.Fatal("breaker opens counter never moved")
	}
	if counts["rad_middlebox_exec_shed_total"] == 0 {
		t.Fatal("shed counter never moved despite an open breaker")
	}
}

// TestObsRegisterAfterObserve: devices registered after Observe still get
// their histograms and breaker gauges.
func TestObsRegisterAfterObserve(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	core := NewCore(clock, nil)
	reg := obs.NewRegistry()
	core.Observe(reg)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: device.C9, Name: device.Init})
	core.Handle(wire.Request{ID: 2, Op: wire.OpExec, Device: device.C9, Name: "MVNG"})

	var seen bool
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "rad_middlebox_exec_seconds" && h.Labels["device"] == device.C9 && h.Count > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("late-registered device produced no observations")
	}
}
