package middlebox

import (
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/fault"
	"rad/internal/simclock"
	"rad/internal/wire"
)

// BenchmarkExecWithBreaker measures what the hardened exec path costs when
// nothing is failing — the overhead budget the issue caps at 5% over the
// seed's plain exec path. "baseline" is a zero-policy core; "hardened" adds
// the per-exec deadline, retry eligibility check, and a closed circuit
// breaker (its Allow/Done fast path is two atomic loads).
func BenchmarkExecWithBreaker(b *testing.B) {
	build := func(b *testing.B, harden bool) *Core {
		b.Helper()
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		core := NewCore(clock, nil) // no sink: isolate the exec path
		core.Register(c9.New(device.NewEnv(clock, 1)))
		if harden {
			core.SetExecPolicy(ExecPolicy{
				Timeout: 20 * time.Second,
				Retries: 2,
				Breaker: fault.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Minute},
			})
		}
		if r := core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init}); r.Error != "" {
			b.Fatalf("init: %s", r.Error)
		}
		return core
	}
	req := wire.Request{ID: 2, Op: wire.OpExec, Device: "C9", Name: "MVNG"}

	b.Run("baseline", func(b *testing.B) {
		core := build(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Handle(req); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
	b.Run("hardened", func(b *testing.B) {
		core := build(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Handle(req); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
}
