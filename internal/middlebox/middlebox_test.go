package middlebox

import (
	"net"
	"strings"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

func newTestCore(t *testing.T) (*Core, *store.MemStore, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	sink := store.NewMemStore()
	core := NewCore(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	return core, sink, clock
}

func TestCorePing(t *testing.T) {
	core, _, _ := newTestCore(t)
	reply := core.Handle(wire.Request{ID: 5, Op: wire.OpPing})
	if reply.ID != 5 || reply.Value != "pong" || reply.Error != "" {
		t.Errorf("ping reply = %+v", reply)
	}
	if core.Stats().Pings != 1 {
		t.Errorf("pings = %d", core.Stats().Pings)
	}
}

func TestCoreExecLogsRecord(t *testing.T) {
	core, sink, _ := newTestCore(t)
	init := core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init})
	if init.Error != "" {
		t.Fatalf("init error: %s", init.Error)
	}
	reply := core.Handle(wire.Request{
		ID: 2, Op: wire.OpExec, Device: "C9", Name: "ARM",
		Args: []string{"10", "20", "30"}, Procedure: "Joystick", Run: "run-3",
	})
	if reply.Error != "" || reply.Value != "ok" {
		t.Fatalf("exec reply = %+v", reply)
	}
	recs := sink.All()
	if len(recs) != 2 {
		t.Fatalf("logged %d records, want 2", len(recs))
	}
	r := recs[1]
	if r.Device != "C9" || r.Name != "ARM" || r.Mode != "REMOTE" {
		t.Errorf("record = %+v", r)
	}
	if r.Procedure != "Joystick" || r.Run != "run-3" {
		t.Errorf("labels = %q/%q", r.Procedure, r.Run)
	}
	if r.Latency() <= 0 {
		t.Errorf("latency = %v, want > 0 (device processing time)", r.Latency())
	}
}

func TestCoreExecUnknownDevice(t *testing.T) {
	core, sink, _ := newTestCore(t)
	reply := core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "Toaster", Name: "pop"})
	if reply.Error == "" || !strings.Contains(reply.Error, "not registered") {
		t.Errorf("reply = %+v", reply)
	}
	if sink.Len() != 0 {
		t.Error("unknown-device request should not be logged as a trace")
	}
	if core.Stats().Errors != 1 {
		t.Errorf("errors = %d", core.Stats().Errors)
	}
}

func TestCoreExecDeviceErrorLoggedAsException(t *testing.T) {
	core, sink, _ := newTestCore(t)
	core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init})
	reply := core.Handle(wire.Request{ID: 2, Op: wire.OpExec, Device: "C9", Name: "ARM", Args: []string{"bogus", "1", "2"}})
	if reply.Error == "" {
		t.Fatal("want error for bad args")
	}
	recs := sink.All()
	if len(recs) != 2 || recs[1].Exception == "" {
		t.Errorf("device error not recorded as exception: %+v", recs[1])
	}
}

func TestCoreTraceUpload(t *testing.T) {
	core, sink, _ := newTestCore(t)
	start := time.Date(2021, 10, 2, 14, 0, 0, 0, time.UTC)
	reply := core.Handle(wire.Request{
		ID: 9, Op: wire.OpTrace, Device: "UR3e", Name: "move_joints",
		Value:      "ok",
		StartNanos: start.UnixNano(), EndNanos: start.Add(2 * time.Second).UnixNano(),
	})
	if reply.Error != "" {
		t.Fatalf("trace reply = %+v", reply)
	}
	recs := sink.All()
	if len(recs) != 1 {
		t.Fatalf("logged %d records", len(recs))
	}
	r := recs[0]
	if r.Mode != "DIRECT" {
		t.Errorf("mode = %q", r.Mode)
	}
	if r.Procedure != store.UnknownProcedure {
		t.Errorf("unsupervised trace labelled %q, want %q", r.Procedure, store.UnknownProcedure)
	}
	if r.Latency() != 2*time.Second {
		t.Errorf("latency = %v", r.Latency())
	}
}

func TestCoreUnknownOp(t *testing.T) {
	core, _, _ := newTestCore(t)
	reply := core.Handle(wire.Request{ID: 1, Op: "teleport"})
	if reply.Error == "" {
		t.Error("want error for unknown op")
	}
}

func TestCoreNilSink(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, nil)
	core.Register(c9.New(device.NewEnv(clock, 1)))
	reply := core.Handle(wire.Request{ID: 1, Op: wire.OpExec, Device: "C9", Name: device.Init})
	if reply.Error != "" {
		t.Errorf("exec with nil sink: %+v", reply)
	}
}

func TestServerServesOverTCP(t *testing.T) {
	core, sink, _ := newTestCore(t)
	srv := NewServer(core, NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(req wire.Request) wire.Reply {
		t.Helper()
		if err := wire.WriteFrame(conn, req); err != nil {
			t.Fatal(err)
		}
		var reply wire.Reply
		if err := wire.ReadFrame(conn, &reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}

	if r := send(wire.Request{ID: 1, Op: wire.OpPing}); r.Value != "pong" {
		t.Errorf("ping = %+v", r)
	}
	if r := send(wire.Request{ID: 2, Op: wire.OpExec, Device: "C9", Name: device.Init}); r.Error != "" {
		t.Errorf("init = %+v", r)
	}
	if r := send(wire.Request{ID: 3, Op: wire.OpExec, Device: "C9", Name: "MVNG"}); r.Value != "0 0 0 0" {
		t.Errorf("MVNG = %+v", r)
	}
	if sink.Len() != 2 {
		t.Errorf("server logged %d records, want 2", sink.Len())
	}
}

func TestServerAppliesNetworkDelay(t *testing.T) {
	core, _, _ := newTestCore(t)
	profile := NetworkProfile{OneWayDelay: 10 * time.Millisecond}
	srv := NewServer(core, profile, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	if err := wire.WriteFrame(conn, wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	var reply wire.Reply
	if err := wire.ReadFrame(conn, &reply); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 20*time.Millisecond {
		t.Errorf("rtt = %v, want >= 20ms with 10ms one-way delay", rtt)
	}
}

func TestServerCloseIdempotentAndRejectsLateStart(t *testing.T) {
	core, _, _ := newTestCore(t)
	srv := NewServer(core, NetworkProfile{}, 1)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("start after close should fail")
	}
}

func TestNetworkProfilesShape(t *testing.T) {
	lan, cloud := LANProfile(), CloudProfile()
	if lan.OneWayDelay >= cloud.OneWayDelay {
		t.Error("LAN delay should be far below cloud delay")
	}
	if cloud.OneWayDelay < 20*time.Millisecond {
		t.Errorf("cloud one-way %v too small for ~60ms RTT", cloud.OneWayDelay)
	}
}
