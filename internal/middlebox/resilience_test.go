package middlebox

import (
	"strings"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/fault"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// flakyNTimes fails its first n Execs with an infrastructure fault, then
// answers normally. It stands in for a link that heals mid-retry-loop.
type flakyNTimes struct {
	name    string
	n       int
	calls   int
	answer  string
	devErr  error // non-infra error to return instead of answering (optional)
	infraAt func(call int) bool
}

func (d *flakyNTimes) Name() string { return d.name }
func (d *flakyNTimes) Exec(cmd device.Command) (string, error) {
	d.calls++
	if d.calls <= d.n {
		return "", &fault.Fault{Kind: fault.KindReset, Target: d.name}
	}
	if d.devErr != nil {
		return "", d.devErr
	}
	return d.answer, nil
}

func rexec(core *Core, id uint64, dev, name string, args ...string) wire.Reply {
	return core.Handle(wire.Request{ID: id, Op: wire.OpExec, Device: dev, Name: name, Args: args})
}

func TestExecDeadlineVirtualClock(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	sink := store.NewMemStore()
	core := NewCore(clock, sink)
	inner := c9.New(device.NewEnv(clock, 1))
	faulty := fault.WrapDevice(inner, clock, fault.None(), 1)
	core.Register(faulty)
	core.SetExecPolicy(ExecPolicy{Timeout: 5 * time.Second})

	if r := rexec(core, 1, "C9", device.Init); r.Error != "" {
		t.Fatalf("init: %s", r.Error)
	}
	faulty.SetProfile(fault.Profile{HangProb: 1, HangFor: 45 * time.Second})
	start := clock.Now()
	reply := rexec(core, 2, "C9", "MVNG")
	if !strings.Contains(reply.Error, "exec deadline exceeded") {
		t.Fatalf("hung exec reply = %+v", reply)
	}
	// The hang charged its full virtual duration (the device really was
	// silent that long in simulated time) but the caller got an error.
	if got := clock.Now().Sub(start); got != 45*time.Second {
		t.Errorf("virtual hang advanced %v, want 45s", got)
	}
	res := core.Snapshot().Resilience
	if res.Timeouts != 1 || res.InfraErrors != 1 {
		t.Errorf("resilience = %+v, want 1 timeout / 1 infra error", res)
	}
	recs := sink.All()
	last := recs[len(recs)-1]
	if !strings.Contains(last.Exception, "exec deadline exceeded") {
		t.Errorf("trace exception = %q", last.Exception)
	}
}

func TestExecDeadlineRealClock(t *testing.T) {
	clock := simclock.Real{}
	core := NewCore(clock, store.NewMemStore())
	core.Register(&hangingDev{name: "C9", hang: 200 * time.Millisecond})
	core.SetExecPolicy(ExecPolicy{Timeout: 20 * time.Millisecond})

	start := time.Now()
	reply := rexec(core, 1, "C9", "MVNG")
	if !strings.Contains(reply.Error, "exec deadline exceeded") {
		t.Fatalf("reply = %+v", reply)
	}
	if waited := time.Since(start); waited > 150*time.Millisecond {
		t.Errorf("deadline returned after %v, want ~20ms", waited)
	}
	if core.Snapshot().Resilience.Timeouts != 1 {
		t.Error("timeout not counted")
	}
}

// hangingDev sleeps in real time before answering.
type hangingDev struct {
	name string
	hang time.Duration
}

func (d *hangingDev) Name() string { return d.name }
func (d *hangingDev) Exec(cmd device.Command) (string, error) {
	time.Sleep(d.hang)
	return "late", nil
}

func TestIdempotentCommandsRetry(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	dev := &flakyNTimes{name: "C9", n: 2, answer: "0"}
	core.Register(dev)
	core.SetExecPolicy(ExecPolicy{Retries: 3, RetrySeed: 11})

	start := clock.Now()
	// MVNG is read-only in the catalog: two infra failures, then success.
	reply := rexec(core, 1, "C9", "MVNG")
	if reply.Error != "" || reply.Value != "0" {
		t.Fatalf("retried exec reply = %+v", reply)
	}
	if dev.calls != 3 {
		t.Fatalf("device saw %d attempts, want 3", dev.calls)
	}
	// Backoff between attempts is charged to the (virtual) clock.
	if clock.Now().Sub(start) <= 0 {
		t.Error("retry backoff charged no time")
	}
	res := core.Snapshot().Resilience
	if res.Retries != 2 || res.InfraErrors != 2 {
		t.Errorf("resilience = %+v, want 2 retries / 2 infra errors", res)
	}
}

func TestMutatingCommandsNeverRetry(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	dev := &flakyNTimes{name: "C9", n: 1, answer: "ok"}
	core.Register(dev)
	core.SetExecPolicy(ExecPolicy{Retries: 3, RetrySeed: 11})

	// MOVE mutates arm state: a lost response may mean it executed, so the
	// single infra failure must surface instead of being retried.
	reply := rexec(core, 1, "C9", "MOVE", "10", "20", "30", "40")
	if reply.Error == "" || !strings.Contains(reply.Error, "injected fault") {
		t.Fatalf("mutating exec reply = %+v", reply)
	}
	if dev.calls != 1 {
		t.Fatalf("device saw %d attempts, want exactly 1", dev.calls)
	}
	if res := core.Snapshot().Resilience; res.Retries != 0 {
		t.Errorf("retries = %d, want 0", res.Retries)
	}
}

func TestDeviceErrorsDoNotRetryOrTripBreaker(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	core := NewCore(clock, store.NewMemStore())
	core.Register(c9.New(device.NewEnv(clock, 1)))
	core.SetExecPolicy(ExecPolicy{
		Retries: 3,
		Breaker: fault.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
	})
	if r := rexec(core, 1, "C9", device.Init); r.Error != "" {
		t.Fatalf("init: %s", r.Error)
	}
	// An unknown command is a device-reported answer, not an outage: the
	// device rejects it every time, with no retries and no breaker damage.
	for i := 0; i < 5; i++ {
		if r := rexec(core, uint64(2+i), "C9", "BOGUS"); r.Error == "" {
			t.Fatal("BOGUS accepted")
		}
	}
	res := core.Snapshot().Resilience
	if res.Retries != 0 || res.InfraErrors != 0 {
		t.Errorf("device errors leaked into resilience accounting: %+v", res)
	}
	if len(res.Breakers) != 1 || res.Breakers[0].State != "closed" {
		t.Errorf("breaker = %+v, want closed", res.Breakers)
	}
}

// TestBreakerOpensAndRecovers drives the full outage arc the issue
// describes: sustained hangs trip the breaker, shed requests produce
// synthetic DEVICE_UNAVAILABLE trace records, and after the cooldown a
// half-open probe against the healed device closes it again — all visible
// through Core.Snapshot.
func TestBreakerOpensAndRecovers(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	sink := store.NewMemStore()
	core := NewCore(clock, sink)
	inner := c9.New(device.NewEnv(clock, 1))
	faulty := fault.WrapDevice(inner, clock, fault.None(), 3)
	core.Register(faulty)
	core.SetExecPolicy(ExecPolicy{
		Timeout: 5 * time.Second,
		Breaker: fault.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Minute, Probes: 1},
	})
	if r := rexec(core, 1, "C9", device.Init); r.Error != "" {
		t.Fatalf("init: %s", r.Error)
	}

	// The device goes silent: three straight deadline blowouts trip the
	// breaker.
	faulty.SetProfile(fault.Profile{HangProb: 1, HangFor: 45 * time.Second})
	for i := 0; i < 3; i++ {
		if r := rexec(core, uint64(10+i), "C9", "MVNG"); !strings.Contains(r.Error, "exec deadline exceeded") {
			t.Fatalf("hang %d reply = %+v", i, r)
		}
	}
	res := core.Snapshot().Resilience
	if len(res.Breakers) != 1 || res.Breakers[0].State != "open" {
		t.Fatalf("after 3 hangs breaker = %+v, want open", res.Breakers)
	}

	// While open, requests shed instantly — no 45s hang, an immediate
	// DEVICE_UNAVAILABLE reply, and a synthetic trace record.
	before := clock.Now()
	recsBefore := sink.Len()
	reply := rexec(core, 20, "C9", "MVNG")
	if !strings.Contains(reply.Error, DeviceUnavailable) {
		t.Fatalf("shed reply = %+v", reply)
	}
	if clock.Now() != before {
		t.Error("shed request consumed device time")
	}
	recs := sink.All()
	if len(recs) != recsBefore+1 {
		t.Fatalf("shed request logged %d records, want 1", len(recs)-recsBefore)
	}
	synthetic := recs[len(recs)-1]
	if !strings.Contains(synthetic.Exception, DeviceUnavailable) || synthetic.Mode != "REMOTE" {
		t.Errorf("synthetic record = %+v", synthetic)
	}
	if synthetic.Time != synthetic.EndTime {
		t.Error("synthetic record should be zero-latency")
	}
	if res := core.Snapshot().Resilience; res.Shed != 1 {
		t.Errorf("shed = %d, want 1", res.Shed)
	}

	// The device heals; once the cooldown passes, the next request is the
	// half-open probe, it succeeds, and the breaker closes.
	faulty.SetProfile(fault.None())
	clock.Advance(2 * time.Minute)
	if r := rexec(core, 30, "C9", "MVNG"); r.Error != "" {
		t.Fatalf("probe reply = %+v", r)
	}
	res = core.Snapshot().Resilience
	if res.Breakers[0].State != "closed" {
		t.Fatalf("after probe success breaker = %+v, want closed", res.Breakers[0])
	}
	if res.Breakers[0].Opens != 1 || res.Breakers[0].Probes != 1 {
		t.Errorf("breaker counters = %+v", res.Breakers[0])
	}
	// And normal traffic flows again.
	if r := rexec(core, 31, "C9", "MVNG"); r.Error != "" {
		t.Fatalf("post-recovery exec: %+v", r)
	}
}

// TestZeroPolicyKeepsLegacyPath pins the golden-hash guarantee: a core
// without SetExecPolicy must not consult breakers, retries, or deadlines.
func TestZeroPolicyKeepsLegacyPath(t *testing.T) {
	core, sink, _ := newTestCore(t)
	if r := rexec(core, 1, "C9", device.Init); r.Error != "" {
		t.Fatalf("init: %s", r.Error)
	}
	if r := rexec(core, 2, "C9", "MVNG"); r.Error != "" {
		t.Fatalf("exec: %+v", r)
	}
	res := core.Snapshot().Resilience
	if res.Timeouts != 0 || res.Retries != 0 || res.Shed != 0 || res.InfraErrors != 0 || len(res.Breakers) != 0 {
		t.Errorf("legacy core reported resilience activity: %+v", res)
	}
	if sink.Len() != 2 {
		t.Errorf("logged %d records, want 2", sink.Len())
	}
}
