package middlebox

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/wire"
)

// NetworkProfile emulates the network between the lab computer and the
// middlebox by delaying each request before it is processed and each reply
// before it is sent. The zero value is a perfect network.
//
// Profiles let one loopback deployment reproduce the paper's three Fig. 4
// configurations: DIRECT/REMOTE on the lab LAN (sub-millisecond one-way
// delay with occasional jitter spikes) and the Azure F16s v2 cloud replay
// (~30 ms each way for a ~60 ms average response time).
type NetworkProfile struct {
	// OneWayDelay is the base one-way latency added in each direction.
	OneWayDelay time.Duration
	// Jitter is the upper bound of uniform extra delay per direction.
	Jitter time.Duration
	// SpikeProb is the probability that a direction experiences a latency
	// spike of SpikeDelay (the paper's occasional >30 ms REMOTE outliers).
	SpikeProb  float64
	SpikeDelay time.Duration
}

// LANProfile models the lab's switched Ethernet between the lab computer and
// the middlebox: ~1 ms one way with rare multi-ms spikes.
func LANProfile() NetworkProfile {
	return NetworkProfile{
		OneWayDelay: 800 * time.Microsecond,
		Jitter:      400 * time.Microsecond,
		SpikeProb:   0.01,
		SpikeDelay:  28 * time.Millisecond,
	}
}

// CloudProfile models the Azure F16s v2 replay of footnote 1: a WAN RTT
// placing average response times around 60 ms.
func CloudProfile() NetworkProfile {
	return NetworkProfile{
		OneWayDelay: 27 * time.Millisecond,
		Jitter:      5 * time.Millisecond,
		SpikeProb:   0.01,
		SpikeDelay:  40 * time.Millisecond,
	}
}

// Delay samples one direction's delay using rng.
func (p NetworkProfile) Delay(rng *rand.Rand) time.Duration {
	d := p.OneWayDelay
	if p.Jitter > 0 {
		d += time.Duration(rng.Int64N(int64(p.Jitter)))
	}
	if p.SpikeProb > 0 && rng.Float64() < p.SpikeProb {
		d += p.SpikeDelay
	}
	return d
}

// Handler processes one middlebox request into its reply. Core implements
// it for a single lab; fleet.Router implements it by routing on the
// request's Tenant field — either serves behind the same Server.
type Handler interface {
	Handle(wire.Request) wire.Reply
}

// Server exposes a Handler over TCP using the wire protocol. One goroutine
// per connection; requests on a connection are served in order.
//
// Each connection's protocol version is negotiated on accept (wire.Accept):
// by default the listener serves v1 JSON clients and v2 binary clients side
// by side, distinguished by the connection preamble. SetProtocol pins the
// listener to one version instead.
type Server struct {
	core    Handler
	profile NetworkProfile
	proto   wire.Proto
	wireM   *wire.Metrics
	spans   *span.Recorder

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	rng    *rand.Rand
	closed bool
	idle   time.Duration

	wg sync.WaitGroup
}

// NewServer wraps core with the given emulated network profile.
func NewServer(core *Core, profile NetworkProfile, seed uint64) *Server {
	return NewHandlerServer(core, profile, seed)
}

// NewHandlerServer wraps any Handler — a single-tenant Core or a
// fleet.Router multiplexing hundreds of them — with the given emulated
// network profile.
func NewHandlerServer(h Handler, profile NetworkProfile, seed uint64) *Server {
	return &Server{
		core:    h,
		profile: profile,
		conns:   make(map[net.Conn]struct{}),
		rng:     rand.New(rand.NewPCG(seed, seed^0xa0761d6478bd642f)),
	}
}

// SetProtocol restricts which wire protocol versions the listener accepts;
// the default (wire.ProtoAuto) negotiates per connection. Call before
// Start.
func (s *Server) SetProtocol(p wire.Proto) { s.proto = p }

// Observe registers per-protocol wire metrics (frame counters,
// encode/decode latency histograms) in reg. Call before Start.
func (s *Server) Observe(reg *obs.Registry) { s.wireM = wire.NewMetrics(reg) }

// SetSpans attaches a span flight recorder: every request served gets a
// "server.request" root span (stitched under the client's span when the
// request carries trace context) with wire decode/encode child spans
// measured codec-only via the connection's latency capture. Call before
// Start. Pass the same recorder to the Core (or tenant Cores) behind this
// server so exec spans land in the same trees.
func (s *Server) SetSpans(r *span.Recorder) { s.spans = r }

// Draining reports whether Drain (or Close) has begun — the middlebox
// contribution to a drain-aware /healthz.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// SetIdleTimeout bounds how long a connection may sit between requests
// before it is reaped. The exec protocol is strict request/reply, so a
// peer that goes quiet past the deadline is either gone or half-open
// (crashed without a FIN); without the deadline such a connection holds
// its goroutine and socket until process exit. Zero (the default) never
// times out. Call before Start.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idle = d }

// Start listens on addr (e.g. "127.0.0.1:0") and begins serving in the
// background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("middlebox: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("middlebox: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	wc, err := wire.Accept(conn, s.proto, s.wireM)
	if err != nil {
		return // dead or protocol-confused peer: drop the connection
	}
	if s.spans.Enabled() {
		wc.CaptureCodecLatency()
	}
	for {
		// The closed check and any deadline reset share the mutex with
		// Drain, so a drain nudge (an expired read deadline) can never be
		// overwritten by this connection's own idle deadline.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		s.mu.Unlock()
		var req wire.Request
		if err := wc.ReadFrame(&req); err != nil {
			return // EOF, idle timeout, or a broken/odd frame: drop the connection
		}
		var sctx span.Context
		var parent uint64
		var reqStart time.Time
		if s.spans.Enabled() {
			// Adopt the peer's trace context (stitching this server's tree
			// under the client's span) and rewrite the request's context to
			// the server root, so the Core's exec span lands under it. The
			// decode child is bracketed from the connection's codec-latency
			// capture — marshal time only, never the idle socket wait, so
			// min-duration filters stay meaningful.
			sctx, parent = s.spans.Adopt(span.Context{TraceID: req.TraceID, SpanID: req.SpanID})
			reqStart = time.Now()
			dec, _ := wc.LastCodecLatency()
			s.spans.Record(span.Span{TraceID: sctx.TraceID, SpanID: s.spans.NewID(), ParentID: sctx.SpanID,
				Name: "wire.decode", Tenant: req.Tenant, Start: reqStart.Add(-dec), End: reqStart})
			req.TraceID, req.SpanID = sctx.TraceID, sctx.SpanID
		}
		s.sleep(s.sampleDelay()) // inbound network
		reply := s.core.Handle(req)
		s.sleep(s.sampleDelay()) // outbound network
		werr := wc.WriteFrame(reply)
		if sctx.Valid() {
			end := time.Now()
			if werr == nil {
				_, enc := wc.LastCodecLatency()
				s.spans.Record(span.Span{TraceID: sctx.TraceID, SpanID: s.spans.NewID(), ParentID: sctx.SpanID,
					Name: "wire.encode", Tenant: req.Tenant, Start: end.Add(-enc), End: end})
			}
			root := span.Span{TraceID: sctx.TraceID, SpanID: sctx.SpanID, ParentID: parent,
				Name: "server.request", Tenant: req.Tenant, Start: reqStart, End: end}
			root.SetAttr("op", string(req.Op))
			if reply.Error != "" {
				root.Outcome = span.OutcomeError
			}
			s.spans.Record(root)
		}
		if werr != nil {
			return
		}
	}
}

func (s *Server) sampleDelay() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profile.Delay(s.rng)
}

func (s *Server) sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Close stops the listener, closes all live connections, and waits for the
// connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Drain is graceful shutdown: stop accepting, let every in-flight request
// finish and its reply flush, then close. Idle connections are nudged with
// an expired read deadline (which ends their blocked ReadFrame without
// touching the write direction, so a reply mid-flight still goes out), and
// the connection goroutines are awaited up to ctx's deadline, after which
// the stragglers are severed Close-style and Drain returns ctx.Err()
// without waiting further (a Handler stuck in user code cannot be
// unblocked by a dead socket; like net/http's Shutdown, its goroutine is
// abandoned to finish on its own). Returns nil when everything flushed in
// time. Close afterwards is a harmless no-op that waits for any
// stragglers.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// ensure interface-style usage stays honest.
var _ io.Closer = (*Server)(nil)
