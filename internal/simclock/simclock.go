// Package simclock provides the clock abstraction used throughout the
// repository. All components that need to read or spend time (device
// simulators, the power monitor, the dataset campaign generator) accept a
// Clock rather than calling time.Now directly, so the same code paths can run
// either in real time (for the latency experiments, Fig. 4) or in virtual
// time (for generating a simulated three-month collection campaign in
// milliseconds, §IV).
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used by the simulators.
//
// Sleep advances time by d: a real clock blocks the goroutine, a virtual
// clock simply moves its internal instant forward.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Sleep blocks the calling goroutine for d.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Virtual is a deterministic Clock whose time only moves when Sleep or
// Advance is called. It is safe for concurrent use.
//
// The zero value is not ready to use; construct with NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the clock's current instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the clock by d without blocking. Negative durations are
// ignored so that callers can pass raw jitter samples.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// Advance moves the clock forward by d. It is Sleep under a name that reads
// better at generation sites that are not simulating a blocking operation.
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Set jumps the clock to the given instant. Time never moves backwards: if t
// is before the current instant, Set is a no-op.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
}
