package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2021, 9, 1, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now() = %v, want %v", v.Now(), start)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Sleep(3 * time.Second)
	v.Sleep(500 * time.Millisecond)
	if got := v.Now().UnixMilli(); got != 3500 {
		t.Errorf("after sleeps, now = %dms", got)
	}
}

func TestVirtualNegativeSleepIgnored(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	v.Sleep(-time.Hour)
	if got := v.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Errorf("negative sleep moved the clock to %v", got)
	}
}

func TestVirtualSetNeverMovesBackwards(t *testing.T) {
	v := NewVirtual(time.Unix(1000, 0))
	v.Set(time.Unix(500, 0))
	if got := v.Now(); !got.Equal(time.Unix(1000, 0)) {
		t.Errorf("Set moved clock backwards to %v", got)
	}
	v.Set(time.Unix(2000, 0))
	if got := v.Now(); !got.Equal(time.Unix(2000, 0)) {
		t.Errorf("Set forward: %v", got)
	}
}

func TestVirtualAdvanceAliasesSleep(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Advance(time.Minute)
	if got := v.Now(); !got.Equal(time.Unix(60, 0)) {
		t.Errorf("Advance: %v", got)
	}
}

func TestVirtualConcurrentUse(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Sleep(time.Millisecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(8, 0)) {
		t.Errorf("after 8000 concurrent 1ms sleeps, now = %v, want 1970-01-01T00:00:08Z", got)
	}
}

func TestRealClockMonotoneAndSleeps(t *testing.T) {
	var r Real
	a := r.Now()
	r.Sleep(5 * time.Millisecond)
	b := r.Now()
	if d := b.Sub(a); d < 5*time.Millisecond {
		t.Errorf("Real.Sleep(5ms) elapsed only %v", d)
	}
	r.Sleep(-time.Second) // must not block or panic
}
