package serial

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"rad/internal/device"
)

// The wire protocol is the newline-delimited request/response format the
// Hein Lab's low-level drivers use:
//
//	request:  NAME [arg1 arg2 ...]\n
//	response: OK [value]\n   |   ERR message\n
//
// Command names and arguments must not contain whitespace or newlines;
// response values may contain spaces (e.g. the C9's "0 0 0 0").

// ErrBadFrame is returned for malformed protocol lines.
var ErrBadFrame = errors.New("serial: malformed protocol line")

// encodeRequest renders a command as a request line.
func encodeRequest(cmd device.Command) (string, error) {
	if cmd.Name == "" || strings.ContainsAny(cmd.Name, " \n") {
		return "", fmt.Errorf("serial: invalid command name %q: %w", cmd.Name, ErrBadFrame)
	}
	parts := []string{cmd.Name}
	for _, a := range cmd.Args {
		if a == "" || strings.ContainsAny(a, " \n") {
			return "", fmt.Errorf("serial: invalid argument %q: %w", a, ErrBadFrame)
		}
		parts = append(parts, a)
	}
	return strings.Join(parts, " "), nil
}

// decodeRequest parses a request line.
func decodeRequest(line string) (name string, args []string, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, ErrBadFrame
	}
	return fields[0], fields[1:], nil
}

// Firmware serves one simulated device over a serial port: the device-side
// microcontroller loop. Run Serve in its own goroutine; it exits when the
// link closes.
type Firmware struct {
	dev  device.Device
	port Line

	mu   sync.Mutex
	reqs uint64
	errs uint64
}

// NewFirmware binds a device to the device end of a serial link (any Line,
// so fault injectors can sit between the firmware and its port).
func NewFirmware(dev device.Device, port Line) *Firmware {
	return &Firmware{dev: dev, port: port}
}

// Serve processes requests until the link closes. Malformed lines produce
// ERR responses; the loop only stops on transport errors.
func (f *Firmware) Serve() {
	for {
		line, err := f.port.ReadLine()
		if err != nil {
			return
		}
		name, args, err := decodeRequest(line)
		var resp string
		if err != nil {
			resp = "ERR " + err.Error()
			f.count(true)
		} else {
			value, execErr := f.dev.Exec(device.Command{Device: f.dev.Name(), Name: name, Args: args})
			if execErr != nil {
				resp = "ERR " + strings.ReplaceAll(execErr.Error(), "\n", " ")
				f.count(true)
			} else {
				resp = strings.TrimRight("OK "+value, " ")
				f.count(false)
			}
		}
		if err := f.port.WriteLine(resp); err != nil {
			return
		}
	}
}

// Stats returns (requests served, error responses).
func (f *Firmware) Stats() (reqs, errs uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reqs, f.errs
}

func (f *Firmware) count(isErr bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reqs++
	if isErr {
		f.errs++
	}
}

// RemoteDeviceError is the client-side form of a device error reported over
// the serial protocol.
type RemoteDeviceError struct{ Msg string }

func (e *RemoteDeviceError) Error() string { return e.Msg }

// Client implements device.Device across a serial link: the lab computer's
// driver class for a serially attached instrument. Requests are serialized;
// the link is strictly request/response.
type Client struct {
	name string
	mu   sync.Mutex
	port Line
}

var _ device.Device = (*Client)(nil)

// NewClient wraps the lab-computer end of a serial link for the named
// device (any Line, so fault injectors can sit between driver and port).
func NewClient(name string, port Line) *Client {
	return &Client{name: name, port: port}
}

// Name implements device.Device.
func (c *Client) Name() string { return c.name }

// Exec implements device.Device by one request/response exchange.
func (c *Client) Exec(cmd device.Command) (string, error) {
	line, err := encodeRequest(cmd)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.port.WriteLine(line); err != nil {
		return "", fmt.Errorf("serial: send %s: %w", cmd.Name, err)
	}
	resp, err := c.port.ReadLine()
	if err != nil {
		return "", fmt.Errorf("serial: response to %s: %w", cmd.Name, err)
	}
	switch {
	case resp == "OK":
		return "", nil
	case strings.HasPrefix(resp, "OK "):
		return resp[3:], nil
	case strings.HasPrefix(resp, "ERR "):
		return "", &RemoteDeviceError{Msg: resp[4:]}
	default:
		return "", fmt.Errorf("serial: response %q: %w", resp, ErrBadFrame)
	}
}

// FTDI wraps a serial port with the byte-oriented read/write API of the
// proprietary FTDI driver — the exact class boundary (class FtdiDevice,
// Fig. 3) RATracer virtualizes. ReadWrite sends a payload and returns the
// device's next line-delimited reply, mirroring the Hein Lab's ftdi_serial
// wrapper.
type FTDI struct {
	mu   sync.Mutex
	port *Port
}

// NewFTDI wraps the lab-computer end of a link.
func NewFTDI(port *Port) *FTDI { return &FTDI{port: port} }

// ReadWrite writes data and reads the next reply line (with terminator
// stripped), the shape of ftdi_serial's api_read_write.
func (f *FTDI) ReadWrite(data []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.port.Write(data); err != nil {
		return nil, err
	}
	line, err := f.port.ReadLine()
	if err != nil {
		return nil, err
	}
	return []byte(line), nil
}
