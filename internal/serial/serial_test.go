package serial

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/simclock"
)

func TestPipeByteTransfer(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	a, b := Pipe(clock, clock, DefaultBaud)
	done := make(chan string, 1)
	go func() {
		line, err := b.ReadLine()
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- line
	}()
	if err := a.WriteLine("hello device"); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != "hello device" {
		t.Errorf("got %q", got)
	}
}

func TestWriteChargesBaudTime(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	a, _ := Pipe(clock, clock, 9600)
	payload := make([]byte, 960) // 9600 bits at 9600 baud = 1 s
	before := clock.Now()
	if _, err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(before); got != time.Second {
		t.Errorf("960 bytes at 9600 baud charged %v, want 1s", got)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	clock := simclock.Real{}
	a, b := Pipe(clock, clock, 0)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.ReadLine()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("reader got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader still blocked after close")
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	_ = b.Close() // double close harmless
}

func TestProtocolEncodeValidation(t *testing.T) {
	bad := []device.Command{
		{Name: ""},
		{Name: "has space"},
		{Name: "ok", Args: []string{""}},
		{Name: "ok", Args: []string{"with space"}},
		{Name: "ok\nnewline"},
	}
	for _, cmd := range bad {
		if _, err := encodeRequest(cmd); !errors.Is(err, ErrBadFrame) {
			t.Errorf("encode %+v: want ErrBadFrame, got %v", cmd, err)
		}
	}
	line, err := encodeRequest(device.Command{Name: "ARM", Args: []string{"1", "2", "3"}})
	if err != nil || line != "ARM 1 2 3" {
		t.Errorf("encode: %q, %v", line, err)
	}
}

// endToEnd drives a real device simulator through its full serial stack.
func endToEnd(t *testing.T, dev device.Device) (*Client, *Firmware, func()) {
	t.Helper()
	clock := simclock.NewVirtual(time.Unix(0, 0))
	labEnd, devEnd := Pipe(clock, clock, DefaultBaud)
	fw := NewFirmware(dev, devEnd)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fw.Serve()
	}()
	client := NewClient(dev.Name(), labEnd)
	return client, fw, func() {
		_ = labEnd.Close()
		wg.Wait()
	}
}

func TestC9OverSerial(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	client, fw, stop := endToEnd(t, c9.New(device.NewEnv(clock, 1)))
	defer stop()

	if v, err := client.Exec(device.Command{Name: device.Init}); err != nil || v != "ok" {
		t.Fatalf("init over serial: %q, %v", v, err)
	}
	if v, err := client.Exec(device.Command{Name: "MVNG"}); err != nil || v != "0 0 0 0" {
		t.Fatalf("MVNG over serial: %q, %v (multi-word values must survive)", v, err)
	}
	if _, err := client.Exec(device.Command{Name: "ARM", Args: []string{"10", "20", "30"}}); err != nil {
		t.Fatalf("ARM over serial: %v", err)
	}
	// Device errors arrive as RemoteDeviceError.
	_, err := client.Exec(device.Command{Name: "SPED", Args: []string{"-1"}})
	var rde *RemoteDeviceError
	if !errors.As(err, &rde) {
		t.Fatalf("want RemoteDeviceError, got %v", err)
	}
	if !strings.Contains(rde.Msg, "bad arguments") {
		t.Errorf("error message %q", rde.Msg)
	}
	reqs, errs := fw.Stats()
	if reqs != 4 || errs != 1 {
		t.Errorf("firmware stats = %d reqs, %d errs", reqs, errs)
	}
}

func TestIKAOverSerial(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	client, _, stop := endToEnd(t, ika.New(device.NewEnv(clock, 1)))
	defer stop()
	if _, err := client.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	v, err := client.Exec(device.Command{Name: "IN_NAME"})
	if err != nil || v != "C-MAG HS7" {
		t.Fatalf("IN_NAME = %q, %v", v, err)
	}
}

func TestFirmwareRejectsGarbage(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	labEnd, devEnd := Pipe(clock, clock, 0)
	fw := NewFirmware(c9.New(device.NewEnv(clock, 1)), devEnd)
	go fw.Serve()
	defer labEnd.Close()

	// An empty request line is malformed.
	if err := labEnd.WriteLine(""); err != nil {
		t.Fatal(err)
	}
	resp, err := labEnd.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("garbage line produced %q", resp)
	}
}

func TestFTDIReadWrite(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	labEnd, devEnd := Pipe(clock, clock, 0)
	fw := NewFirmware(c9.New(device.NewEnv(clock, 1)), devEnd)
	go fw.Serve()
	defer labEnd.Close()

	ftdi := NewFTDI(labEnd)
	reply, err := ftdi.ReadWrite([]byte("__init__\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "OK ok" {
		t.Errorf("raw FTDI reply %q", reply)
	}
	reply, err = ftdi.ReadWrite([]byte("MVNG\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "OK 0 0 0 0" {
		t.Errorf("raw FTDI reply %q", reply)
	}
}

func TestClientConcurrentExecSerialized(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	client, _, stop := endToEnd(t, c9.New(device.NewEnv(clock, 1)))
	defer stop()
	if _, err := client.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := client.Exec(device.Command{Name: "MVNG"}); err != nil {
					t.Errorf("concurrent MVNG: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestReadLineHonorsReadTimeout(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	a, b := Pipe(clock, clock, DefaultBaud)
	defer a.Close()

	// A silent peer must not hang the reader forever: the deadline fires
	// even though virtual time never advances.
	b.SetReadTimeout(30 * time.Millisecond)
	start := time.Now()
	if _, err := b.ReadLine(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent peer: ReadLine = %v, want ErrTimeout", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not honored", waited)
	}

	// The port recovers: once data arrives the next read succeeds.
	if err := a.WriteLine("IN_PV_4"); err != nil {
		t.Fatal(err)
	}
	if got, err := b.ReadLine(); err != nil || got != "IN_PV_4" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}

	// A partial line counts as data, but a never-arriving terminator still
	// trips the deadline — the driver's mid-exchange silence case.
	if _, err := a.Write([]byte("IN_P")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadLine(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("mid-line silence: ReadLine = %v, want ErrTimeout", err)
	}

	// Zero restores block-forever semantics.
	b.SetReadTimeout(0)
	got := make(chan string, 1)
	go func() {
		line, _ := b.ReadLine()
		got <- line
	}()
	if err := a.WriteLine("V_4"); err != nil {
		t.Fatal(err)
	}
	select {
	case line := <-got:
		if line != "V_4" {
			t.Fatalf("post-reset read = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking read never completed")
	}
}
