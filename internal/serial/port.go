// Package serial emulates the serial links that connect most of the Hein
// Lab's devices (Fig. 2): the C9 controller, IKA, Tecan, and the Quantos
// z-stage all speak line protocols over USB-serial behind the FTDI driver.
// The paper's RATracer intercepts at exactly this boundary (class
// FtdiDevice, Fig. 3); this package provides the boundary itself — an
// in-memory duplex serial port with baud-rate timing, a firmware adapter
// that exposes a simulated device over a newline-delimited wire protocol,
// and a client that implements device.Device across the link, so a device
// can be driven end to end through its serial stack.
package serial

import (
	"errors"
	"sync"
	"time"

	"rad/internal/simclock"
)

// DefaultBaud is the usual 115200-baud device link.
const DefaultBaud = 115200

// ErrClosed is returned on reads and writes to a closed port.
var ErrClosed = errors.New("serial: port closed")

// ErrTimeout is returned by Read/ReadLine when a read deadline set with
// SetReadTimeout expires before any data arrives — the error a driver sees
// when its device goes silent mid-exchange.
var ErrTimeout = errors.New("serial: read timed out")

// Line is the line-oriented half of a serial endpoint: what the Firmware
// loop and the driver Client actually speak. *Port implements it; fault
// injectors wrap it.
type Line interface {
	ReadLine() (string, error)
	WriteLine(s string) error
}

// Port is one end of an emulated serial link. Writes charge transmission
// time (10 bits per byte at the link's baud rate) to the writer's clock and
// deliver bytes to the peer; reads block until data or close.
type Port struct {
	clock simclock.Clock
	baud  int

	mu     *sync.Mutex
	cond   *sync.Cond
	peer   *buffer
	local  *buffer
	closed *bool

	readTimeout time.Duration // 0 = block forever (guarded by mu)
}

var _ Line = (*Port)(nil)

// buffer is a byte queue shared between the two ends.
type buffer struct {
	data []byte
}

// Pipe creates a connected pair of ports at the given baud rate. Each end
// charges its transmission time to its own clock (the two ends may share a
// clock, as the virtual lab does). A non-positive baud selects DefaultBaud.
func Pipe(a, b simclock.Clock, baud int) (*Port, *Port) {
	if baud <= 0 {
		baud = DefaultBaud
	}
	mu := &sync.Mutex{}
	cond := sync.NewCond(mu)
	ab := &buffer{} // bytes flowing a -> b
	ba := &buffer{} // bytes flowing b -> a
	closed := false
	pa := &Port{clock: a, baud: baud, mu: mu, cond: cond, peer: ab, local: ba, closed: &closed}
	pb := &Port{clock: b, baud: baud, mu: mu, cond: cond, peer: ba, local: ab, closed: &closed}
	return pa, pb
}

// transmissionTime returns how long n bytes take on the wire (8 data bits +
// start + stop per byte).
func (p *Port) transmissionTime(n int) time.Duration {
	bits := float64(n * 10)
	return time.Duration(bits / float64(p.baud) * float64(time.Second))
}

// Write sends data to the peer, charging transmission time to this end's
// clock first (the UART clocks bytes out before the peer sees them).
func (p *Port) Write(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, nil
	}
	p.clock.Sleep(p.transmissionTime(len(data)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if *p.closed {
		return 0, ErrClosed
	}
	p.peer.data = append(p.peer.data, data...)
	p.cond.Broadcast()
	return len(data), nil
}

// SetReadTimeout bounds how long a Read (and therefore ReadLine) waits for
// data before returning ErrTimeout; 0 restores the default of blocking
// forever. The deadline is wall-clock time — like the FTDI driver's
// timeout, it protects the reading goroutine from a silent peer even in
// virtual-time rigs, where a hung peer never advances the simulated clock.
func (p *Port) SetReadTimeout(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readTimeout = d
}

// Read fills buf with available bytes, blocking until at least one byte
// arrives, the link closes, or the port's read timeout (if set) expires.
func (p *Port) Read(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var deadline time.Time
	if p.readTimeout > 0 {
		deadline = time.Now().Add(p.readTimeout)
		// The waker re-checks the deadline; Broadcast is safe without the
		// lock, and Stop below cuts the timer loose on the happy path.
		t := time.AfterFunc(p.readTimeout, p.cond.Broadcast)
		defer t.Stop()
	}
	for len(p.local.data) == 0 {
		if *p.closed {
			return 0, ErrClosed
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return 0, ErrTimeout
		}
		p.cond.Wait()
	}
	n := copy(buf, p.local.data)
	p.local.data = p.local.data[n:]
	return n, nil
}

// ReadLine reads up to and including the next '\n', returning the line
// without the terminator.
func (p *Port) ReadLine() (string, error) {
	var line []byte
	one := make([]byte, 1)
	for {
		if _, err := p.Read(one); err != nil {
			return "", err
		}
		if one[0] == '\n' {
			return string(line), nil
		}
		line = append(line, one[0])
	}
}

// WriteLine writes s followed by '\n'.
func (p *Port) WriteLine(s string) error {
	_, err := p.Write(append([]byte(s), '\n'))
	return err
}

// Close tears the link down; both ends see ErrClosed. Closing twice is
// harmless.
func (p *Port) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	*p.closed = true
	p.cond.Broadcast()
	return nil
}
