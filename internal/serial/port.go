// Package serial emulates the serial links that connect most of the Hein
// Lab's devices (Fig. 2): the C9 controller, IKA, Tecan, and the Quantos
// z-stage all speak line protocols over USB-serial behind the FTDI driver.
// The paper's RATracer intercepts at exactly this boundary (class
// FtdiDevice, Fig. 3); this package provides the boundary itself — an
// in-memory duplex serial port with baud-rate timing, a firmware adapter
// that exposes a simulated device over a newline-delimited wire protocol,
// and a client that implements device.Device across the link, so a device
// can be driven end to end through its serial stack.
package serial

import (
	"errors"
	"sync"
	"time"

	"rad/internal/simclock"
)

// DefaultBaud is the usual 115200-baud device link.
const DefaultBaud = 115200

// ErrClosed is returned on reads and writes to a closed port.
var ErrClosed = errors.New("serial: port closed")

// Port is one end of an emulated serial link. Writes charge transmission
// time (10 bits per byte at the link's baud rate) to the writer's clock and
// deliver bytes to the peer; reads block until data or close.
type Port struct {
	clock simclock.Clock
	baud  int

	mu     *sync.Mutex
	cond   *sync.Cond
	peer   *buffer
	local  *buffer
	closed *bool
}

// buffer is a byte queue shared between the two ends.
type buffer struct {
	data []byte
}

// Pipe creates a connected pair of ports at the given baud rate. Each end
// charges its transmission time to its own clock (the two ends may share a
// clock, as the virtual lab does). A non-positive baud selects DefaultBaud.
func Pipe(a, b simclock.Clock, baud int) (*Port, *Port) {
	if baud <= 0 {
		baud = DefaultBaud
	}
	mu := &sync.Mutex{}
	cond := sync.NewCond(mu)
	ab := &buffer{} // bytes flowing a -> b
	ba := &buffer{} // bytes flowing b -> a
	closed := false
	pa := &Port{clock: a, baud: baud, mu: mu, cond: cond, peer: ab, local: ba, closed: &closed}
	pb := &Port{clock: b, baud: baud, mu: mu, cond: cond, peer: ba, local: ab, closed: &closed}
	return pa, pb
}

// transmissionTime returns how long n bytes take on the wire (8 data bits +
// start + stop per byte).
func (p *Port) transmissionTime(n int) time.Duration {
	bits := float64(n * 10)
	return time.Duration(bits / float64(p.baud) * float64(time.Second))
}

// Write sends data to the peer, charging transmission time to this end's
// clock first (the UART clocks bytes out before the peer sees them).
func (p *Port) Write(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, nil
	}
	p.clock.Sleep(p.transmissionTime(len(data)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if *p.closed {
		return 0, ErrClosed
	}
	p.peer.data = append(p.peer.data, data...)
	p.cond.Broadcast()
	return len(data), nil
}

// Read fills buf with available bytes, blocking until at least one byte
// arrives or the link closes.
func (p *Port) Read(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.local.data) == 0 {
		if *p.closed {
			return 0, ErrClosed
		}
		p.cond.Wait()
	}
	n := copy(buf, p.local.data)
	p.local.data = p.local.data[n:]
	return n, nil
}

// ReadLine reads up to and including the next '\n', returning the line
// without the terminator.
func (p *Port) ReadLine() (string, error) {
	var line []byte
	one := make([]byte, 1)
	for {
		if _, err := p.Read(one); err != nil {
			return "", err
		}
		if one[0] == '\n' {
			return string(line), nil
		}
		line = append(line, one[0])
	}
}

// WriteLine writes s followed by '\n'.
func (p *Port) WriteLine(s string) error {
	_, err := p.Write(append([]byte(s), '\n'))
	return err
}

// Close tears the link down; both ends see ErrClosed. Closing twice is
// harmless.
func (p *Port) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	*p.closed = true
	p.cond.Broadcast()
	return nil
}
