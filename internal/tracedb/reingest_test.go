package tracedb

import (
	"testing"

	"rad/internal/store"
)

func TestReingestFoldsDLQIntoDB(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	q, err := store.OpenDLQ(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Some records made it into the store, some batches were spilled while
	// the disk was refusing writes.
	direct := []store.Record{testRecord(0), testRecord(1)}
	if err := db.AppendBatch(direct); err != nil {
		t.Fatal(err)
	}
	if err := q.Spill([]store.Record{testRecord(2), testRecord(3)}); err != nil {
		t.Fatal(err)
	}
	if err := q.Spill([]store.Record{testRecord(4)}); err != nil {
		t.Fatal(err)
	}

	n, err := db.Reingest(q)
	if err != nil || n != 3 {
		t.Fatalf("Reingest = %d, %v", n, err)
	}
	if db.Len() != 5 {
		t.Fatalf("db holds %d records, want 5", db.Len())
	}
	if pending, _ := q.Pending(); len(pending) != 0 {
		t.Fatalf("spills survived re-ingest: %v", pending)
	}
	// The re-ingested records are queryable with fresh sequence numbers.
	recs, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d, want contiguous resequencing", i, r.Seq)
		}
	}
	// Draining an empty queue is a no-op.
	if n, err := db.Reingest(q); err != nil || n != 0 {
		t.Fatalf("second Reingest = %d, %v", n, err)
	}
}
