package tracedb

import (
	"math"

	"rad/internal/store"
)

// Purity bits: set when every record in a block shares one value of the
// field, making the block's sole* field authoritative for coverage checks.
const (
	pureDevice = 1 << iota
	pureKey
	pureRun
	pureProc
)

// blockMeta is one entry of a segment's sparse index: enough to locate,
// verify, and time-prune a block without decoding it, plus the per-field
// sole values that let the planner prove a block matches a filter in full
// (the Iterator fast path that skips the per-record re-filter).
type blockMeta struct {
	off        int64 // file offset of the block's 8-byte header
	payloadLen int32
	crc        uint32
	count      int32
	minTimeN   int64 // min/max Record.Time over the block, UnixNano
	maxTimeN   int64
	minSeq     uint64 // min/max Record.Seq over the block, for resume scans
	maxSeq     uint64

	pure       uint8 // pure* bits; sole* is meaningful only when its bit is set
	soleDevice string
	soleKey    string
	soleRun    string
	soleProc   string
}

// covers reports whether every record in the block provably satisfies q:
// each set equality filter is backed by a pure sole value and the block's
// time bounds sit inside the query window. A covered block can be emitted
// without re-running Query.Match per record.
func (m *blockMeta) covers(q Query, fromN, toN int64) bool {
	if m.minTimeN < fromN || m.maxTimeN > toN {
		return false
	}
	if m.minSeq < q.MinSeq {
		return false
	}
	if q.Device != "" && (m.pure&pureDevice == 0 || m.soleDevice != q.Device) {
		return false
	}
	if q.Key != "" && (m.pure&pureKey == 0 || m.soleKey != q.Key) {
		return false
	}
	if q.Run != "" && (m.pure&pureRun == 0 || m.soleRun != q.Run) {
		return false
	}
	if q.Procedure != "" && (m.pure&pureProc == 0 || m.soleProc != q.Procedure) {
		return false
	}
	return true
}

// segmentIndex is the in-memory index of one segment, built block-by-block
// at write time and rebuilt by the recovery scan on Open. Posting lists map
// a filter value to the (sorted, deduplicated) indexes of the blocks that
// contain at least one matching record, so an indexed scan touches only the
// blocks that can match instead of the whole segment.
type segmentIndex struct {
	blocks   []blockMeta
	byDevice map[string][]int32
	byKey    map[string][]int32 // command type, Record.Key() = "Device.Name"
	byRun    map[string][]int32
	byProc   map[string][]int32

	// Per-value record counts answer the distribution queries (Fig. 5a
	// counts per command type / device) straight from the index.
	deviceCounts map[string]int
	keyCounts    map[string]int

	count  int
	maxSeq uint64
}

func newSegmentIndex() segmentIndex {
	return segmentIndex{
		byDevice:     make(map[string][]int32),
		byKey:        make(map[string][]int32),
		byRun:        make(map[string][]int32),
		byProc:       make(map[string][]int32),
		deviceCounts: make(map[string]int),
		keyCounts:    make(map[string]int),
	}
}

// addBlock indexes one committed block. recs must be the block's records in
// on-disk order.
func (ix *segmentIndex) addBlock(off int64, payloadLen int, crc uint32, recs []store.Record) {
	bi := int32(len(ix.blocks))
	m := blockMeta{off: off, payloadLen: int32(payloadLen), crc: crc, count: int32(len(recs))}
	for i := range recs {
		r := &recs[i]
		n := r.Time.UnixNano()
		key := r.Key()
		if i == 0 {
			m.minTimeN, m.maxTimeN = n, n
			m.minSeq, m.maxSeq = r.Seq, r.Seq
			m.pure = pureDevice | pureKey | pureRun | pureProc
			m.soleDevice, m.soleKey, m.soleRun, m.soleProc = r.Device, key, r.Run, r.Procedure
		} else {
			if n < m.minTimeN {
				m.minTimeN = n
			}
			if n > m.maxTimeN {
				m.maxTimeN = n
			}
			if r.Seq < m.minSeq {
				m.minSeq = r.Seq
			}
			if r.Seq > m.maxSeq {
				m.maxSeq = r.Seq
			}
			if m.soleDevice != r.Device {
				m.pure &^= pureDevice
			}
			if m.soleKey != key {
				m.pure &^= pureKey
			}
			if m.soleRun != r.Run {
				m.pure &^= pureRun
			}
			if m.soleProc != r.Procedure {
				m.pure &^= pureProc
			}
		}
		post(ix.byDevice, r.Device, bi)
		post(ix.byKey, key, bi)
		if r.Run != "" {
			post(ix.byRun, r.Run, bi)
		}
		post(ix.byProc, r.Procedure, bi)
		ix.deviceCounts[r.Device]++
		ix.keyCounts[key]++
		if r.Seq > ix.maxSeq {
			ix.maxSeq = r.Seq
		}
	}
	ix.count += len(recs)
	ix.blocks = append(ix.blocks, m)
}

// post appends bi to the posting list unless it is already the tail entry —
// blocks are indexed in order, so the list stays sorted and deduplicated.
func post(m map[string][]int32, k string, bi int32) {
	l := m[k]
	if len(l) > 0 && l[len(l)-1] == bi {
		return
	}
	m[k] = append(m[k], bi)
}

// fieldList is one set equality filter's posting list, labelled with the
// field that produced it — the planner's unit of selectivity estimation.
type fieldList struct {
	field string // "device", "key", "run", or "procedure"
	list  []int32
}

// postingLists collects the posting lists of q's set filters in selectivity
// order (shortest list — the most selective filter — first; ties broken by
// field name order for determinism). ok is false when a filter value is
// absent from the segment entirely, which prunes the whole segment.
func (ix *segmentIndex) postingLists(q Query) (lists []fieldList, ok bool) {
	use := func(m map[string][]int32, field, k string) bool {
		if k == "" {
			return true
		}
		l, present := m[k]
		if !present {
			return false
		}
		lists = append(lists, fieldList{field: field, list: l})
		return true
	}
	if !use(ix.byDevice, "device", q.Device) || !use(ix.byKey, "key", q.Key) ||
		!use(ix.byRun, "run", q.Run) || !use(ix.byProc, "procedure", q.Procedure) {
		return nil, false
	}
	// Insertion order is device, key, run, procedure — a stable tie-break.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j].list) < len(lists[j-1].list); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	return lists, true
}

// intersect merges two sorted posting lists.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// timeSpan returns the segment's overall [min, max] Record.Time bounds in
// UnixNano, valid only when the segment holds records.
func (ix *segmentIndex) timeSpan() (minN, maxN int64) {
	minN, maxN = math.MaxInt64, math.MinInt64
	for i := range ix.blocks {
		if ix.blocks[i].count == 0 {
			continue
		}
		if ix.blocks[i].minTimeN < minN {
			minN = ix.blocks[i].minTimeN
		}
		if ix.blocks[i].maxTimeN > maxN {
			maxN = ix.blocks[i].maxTimeN
		}
	}
	return minN, maxN
}
