package tracedb

import (
	"math"

	"rad/internal/store"
)

// blockMeta is one entry of a segment's sparse index: enough to locate,
// verify, and time-prune a block without decoding it.
type blockMeta struct {
	off        int64 // file offset of the block's 8-byte header
	payloadLen int32
	crc        uint32
	count      int32
	minTimeN   int64 // min/max Record.Time over the block, UnixNano
	maxTimeN   int64
}

// segmentIndex is the in-memory index of one segment, built block-by-block
// at write time and rebuilt by the recovery scan on Open. Posting lists map
// a filter value to the (sorted, deduplicated) indexes of the blocks that
// contain at least one matching record, so an indexed scan touches only the
// blocks that can match instead of the whole segment.
type segmentIndex struct {
	blocks   []blockMeta
	byDevice map[string][]int32
	byKey    map[string][]int32 // command type, Record.Key() = "Device.Name"
	byRun    map[string][]int32
	byProc   map[string][]int32

	// Per-value record counts answer the distribution queries (Fig. 5a
	// counts per command type / device) straight from the index.
	deviceCounts map[string]int
	keyCounts    map[string]int

	count  int
	maxSeq uint64
}

func newSegmentIndex() segmentIndex {
	return segmentIndex{
		byDevice:     make(map[string][]int32),
		byKey:        make(map[string][]int32),
		byRun:        make(map[string][]int32),
		byProc:       make(map[string][]int32),
		deviceCounts: make(map[string]int),
		keyCounts:    make(map[string]int),
	}
}

// addBlock indexes one committed block. recs must be the block's records in
// on-disk order.
func (ix *segmentIndex) addBlock(off int64, payloadLen int, crc uint32, recs []store.Record) {
	bi := int32(len(ix.blocks))
	m := blockMeta{off: off, payloadLen: int32(payloadLen), crc: crc, count: int32(len(recs))}
	for i := range recs {
		r := &recs[i]
		n := r.Time.UnixNano()
		if i == 0 || n < m.minTimeN {
			m.minTimeN = n
		}
		if i == 0 || n > m.maxTimeN {
			m.maxTimeN = n
		}
		post(ix.byDevice, r.Device, bi)
		key := r.Key()
		post(ix.byKey, key, bi)
		if r.Run != "" {
			post(ix.byRun, r.Run, bi)
		}
		post(ix.byProc, r.Procedure, bi)
		ix.deviceCounts[r.Device]++
		ix.keyCounts[key]++
		if r.Seq > ix.maxSeq {
			ix.maxSeq = r.Seq
		}
	}
	ix.count += len(recs)
	ix.blocks = append(ix.blocks, m)
}

// post appends bi to the posting list unless it is already the tail entry —
// blocks are indexed in order, so the list stays sorted and deduplicated.
func post(m map[string][]int32, k string, bi int32) {
	l := m[k]
	if len(l) > 0 && l[len(l)-1] == bi {
		return
	}
	m[k] = append(m[k], bi)
}

// candidates returns copies of the block metas that can contain a record
// matching q: the intersection of the posting lists of every set equality
// filter, pruned by the per-block time bounds. A nil result means the
// segment cannot match at all.
func (ix *segmentIndex) candidates(q Query) []blockMeta {
	var lists [][]int32
	use := func(m map[string][]int32, k string) bool {
		if k == "" {
			return true
		}
		l, ok := m[k]
		if !ok {
			return false
		}
		lists = append(lists, l)
		return true
	}
	if !use(ix.byDevice, q.Device) || !use(ix.byKey, q.Key) ||
		!use(ix.byRun, q.Run) || !use(ix.byProc, q.Procedure) {
		return nil
	}

	fromN, toN := q.timeBounds()
	var out []blockMeta
	emit := func(bi int32) {
		m := ix.blocks[bi]
		if m.maxTimeN < fromN || m.minTimeN > toN {
			return
		}
		out = append(out, m)
	}
	if len(lists) == 0 {
		for bi := range ix.blocks {
			emit(int32(bi))
		}
		return out
	}
	ids := lists[0]
	for _, l := range lists[1:] {
		ids = intersect(ids, l)
		if len(ids) == 0 {
			return nil
		}
	}
	for _, bi := range ids {
		emit(bi)
	}
	return out
}

// intersect merges two sorted posting lists.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// timeSpan returns the segment's overall [min, max] Record.Time bounds in
// UnixNano, valid only when the segment holds records.
func (ix *segmentIndex) timeSpan() (minN, maxN int64) {
	minN, maxN = math.MaxInt64, math.MinInt64
	for i := range ix.blocks {
		if ix.blocks[i].count == 0 {
			continue
		}
		if ix.blocks[i].minTimeN < minN {
			minN = ix.blocks[i].minTimeN
		}
		if ix.blocks[i].maxTimeN > maxN {
			maxN = ix.blocks[i].maxTimeN
		}
	}
	return minN, maxN
}
