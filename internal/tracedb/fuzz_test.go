package tracedb

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"
	"time"

	"rad/internal/store"
)

// FuzzCompactRoundTrip pins the compactor's identity contract: for any
// record batch, flush shape, and segment size, compacting the store changes
// neither the canonical encoding of a full scan nor what a reopen recovers.
// The fuzzer shapes the records (data), the flush granularity (perBlock),
// and the write-segment size (segKB), hunting for batch boundaries where
// re-blocking could drop, duplicate, or reorder a record.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte("C9MVNG hello world some trace bytes"), uint8(1), uint8(1))
	f.Add(bytes.Repeat([]byte{0x41, 0x07, 0xff, 0x00}, 200), uint8(3), uint8(2))
	f.Add(bytes.Repeat([]byte("Quantos.start_dosing DIRECT run-p2 "), 40), uint8(2), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, perBlock, segKB uint8) {
		recs := recordsFromFuzz(data)
		if len(recs) == 0 {
			return
		}
		dir := t.TempDir()
		opts := Options{SegmentBytes: (int64(segKB%8) + 1) << 10}
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		per := int(perBlock%8) + 1
		for i := 0; i < len(recs); i += per {
			j := i + per
			if j > len(recs) {
				j = len(recs)
			}
			if err := db.AppendBatch(recs[i:j]); err != nil {
				t.Fatal(err)
			}
		}
		before, err := db.Collect(Query{})
		if err != nil {
			t.Fatal(err)
		}
		want := encodePayload(nil, before)

		if _, err := db.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		after, err := db.Collect(Query{})
		if err != nil {
			t.Fatal(err)
		}
		if got := encodePayload(nil, after); !bytes.Equal(want, got) {
			t.Fatalf("compaction changed the store: %d records -> %d", len(before), len(after))
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db2, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("reopen after compaction: %v", err)
		}
		defer db2.Close()
		reopened, err := db2.Collect(Query{})
		if err != nil {
			t.Fatal(err)
		}
		if got := encodePayload(nil, reopened); !bytes.Equal(want, got) {
			t.Fatalf("reopen after compaction changed the store: %d records -> %d",
				len(before), len(reopened))
		}
	})
}

// recordsFromFuzz derives a deterministic batch of records from raw fuzz
// bytes: the input is consumed as a stream of field lengths and contents, so
// the fuzzer can shape devices, args, times, and batch sizes freely.
func recordsFromFuzz(data []byte) []store.Record {
	var recs []store.Record
	next := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		b := data[:n]
		data = data[n:]
		return b
	}
	nextStr := func() string {
		if len(data) == 0 {
			return ""
		}
		n := int(data[0]) % 16
		data = data[1:]
		return string(next(n))
	}
	for len(data) > 0 && len(recs) < 256 {
		var r store.Record
		tb := next(8)
		var nanos int64
		for _, b := range tb {
			nanos = nanos<<8 | int64(b)
		}
		r.Time = time.Unix(0, nanos)
		r.EndTime = time.Unix(0, nanos+int64(len(tb)))
		r.Device = nextStr()
		r.Name = nextStr()
		if len(data) > 0 {
			nargs := int(data[0]) % 4
			data = data[1:]
			for i := 0; i < nargs; i++ {
				r.Args = append(r.Args, nextStr())
			}
		}
		r.Response = nextStr()
		r.Exception = nextStr()
		r.Procedure = nextStr()
		r.Run = nextStr()
		r.Mode = nextStr()
		recs = append(recs, r)
	}
	return recs
}

// FuzzSegmentRoundTrip pins the two core durability contracts:
//
//  1. Canonical codec: any record batch encodes and decodes
//     byte-identically (encode → decode → re-encode is the identity).
//  2. Torn-tail recovery: truncating or flipping bytes anywhere in a
//     segment file never panics Open, recovers exactly the records of every
//     block untouched by the damage, and drops only the torn tail.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint16(0))
	f.Add([]byte("C9MVNG hello world some trace bytes"), uint8(1), uint16(3))
	f.Add(bytes.Repeat([]byte{0x41, 0x07, 0xff, 0x00}, 200), uint8(2), uint16(91))
	f.Add([]byte{0x80, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09}, uint8(1), uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, action uint8, arg uint16) {
		recs := recordsFromFuzz(data)
		for i := range recs {
			recs[i].Seq = uint64(i)
		}

		// Contract 1: canonical payload codec.
		payload := encodePayload(nil, recs)
		decoded, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if re := encodePayload(nil, decoded); !bytes.Equal(re, payload) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(payload))
		}

		// Contract 2: build a real store in two batches, then damage it.
		if len(recs) == 0 {
			return
		}
		dir := t.TempDir()
		db, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		split := len(recs) / 2
		if err := db.AppendBatch(recs[:split]); err != nil {
			t.Fatal(err)
		}
		if err := db.AppendBatch(recs[split:]); err != nil {
			t.Fatal(err)
		}
		segPath := db.segs[0].path
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		raw, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		// Walk the pristine file to learn the block boundaries: frameEnds[i]
		// is the offset just past block i, cum[i] the records up to it.
		var frameEnds []int64
		var cum []int
		off, n := int64(len(segMagic)), 0
		for off+blockHeaderSize <= int64(len(raw)) {
			plen := int64(binary.BigEndian.Uint32(raw[off : off+4]))
			blockRecs, err := decodePayload(raw[off+blockHeaderSize : off+blockHeaderSize+plen])
			if err != nil {
				t.Fatalf("pristine block undecodable: %v", err)
			}
			off += blockHeaderSize + plen
			n += len(blockRecs)
			frameEnds = append(frameEnds, off)
			cum = append(cum, n)
		}
		if n != len(recs) {
			t.Fatalf("pristine store holds %d records, want %d", n, len(recs))
		}

		// Damage the file at a fuzzer-chosen position.
		pos := int64(arg) % int64(len(raw))
		switch action % 3 {
		case 0: // no damage
			pos = int64(len(raw))
		case 1: // torn write: cut the file at pos
			raw = raw[:pos]
		case 2: // bit rot: flip a bit at pos
			raw[pos] ^= 0x10
		}
		if err := os.WriteFile(segPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		// Every block that ends at or before the damage survives; the torn
		// block and everything after it is dropped.
		want := 0
		for i, end := range frameEnds {
			if end <= pos {
				want = cum[i]
			}
		}

		db2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after damage: %v", err)
		}
		defer db2.Close()
		got, err := db2.Collect(Query{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("recovered %d records, want %d (damage action %d at %d)",
				len(got), want, action%3, pos)
		}
		for i := range got {
			if got[i].Seq != uint64(i) {
				t.Fatalf("recovered record %d has seq %d", i, got[i].Seq)
			}
			if re := encodePayload(nil, got[i:i+1]); !bytes.Equal(re, encodePayload(nil, recs[i:i+1])) {
				t.Fatalf("recovered record %d differs from the flushed one", i)
			}
		}
	})
}
