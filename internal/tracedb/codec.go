// Package tracedb implements the repository's persistent trace store: an
// embedded, log-structured database that replaces the in-memory MemStore as
// the middlebox's primary sink. The paper's RATracer logs every command
// instance to a MongoDB document store (§III, Fig. 3); tracedb is that
// component made durable without an external server — append-only on-disk
// segments of checksummed record blocks, a sparse in-segment time index,
// per-segment posting lists keyed by device and command type, and a query
// API whose shapes match the analyses' sliced reads (per-device, per-run,
// per-window).
//
// # On-disk format
//
// A store is a directory of segment files named seg-00000000.seg,
// seg-00000001.seg, … Each segment starts with an 8-byte magic header and is
// followed by a sequence of blocks:
//
//	+----------------+----------------+-------------------+
//	| 4-byte big-    | 4-byte big-    | payload           |
//	| endian length  | endian CRC32C  | (length bytes)    |
//	+----------------+----------------+-------------------+
//
// One block is one flush boundary: a store.Batcher flush, an AppendBatch
// call, or the automatic flush of BlockRecords staged per-record appends
// lands as exactly one block (split only when it would exceed the block
// size cap). The payload is a record count followed by that many records in
// the canonical binary encoding below. Integers are varints, strings are
// length-prefixed bytes, timestamps are UnixNano:
//
//	uvarint seq
//	varint  timeNanos, endTimeNanos
//	string  device, name
//	uvarint nargs, then nargs strings
//	string  response, exception, procedure, run, mode
//
// The encoding is canonical — encoding any decoded batch reproduces the
// original bytes — which is what FuzzSegmentRoundTrip pins down.
//
// # Crash safety
//
// A block is committed once its frame is fully written; readers only ever
// see committed offsets. On Open every segment is scanned: each block's
// length is bounds-checked and its CRC32C verified, and the scan stops at
// the first torn or corrupted block, truncating the file there. Everything
// up to the last fully-flushed block survives a crash; sequence numbers
// resume from the highest recovered record.
package tracedb

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"time"

	"rad/internal/store"
)

const (
	// segMagic opens every segment file; a file without it holds no
	// committed records.
	segMagic = "RADTDB1\n"
	// blockHeaderSize is the length + checksum prefix of every block.
	blockHeaderSize = 8
	// MaxBlockBytes bounds a single block payload so a corrupted length
	// field can never force an unbounded allocation during recovery.
	MaxBlockBytes = 16 << 20
	// targetBlockBytes is the soft payload size at which a large batch is
	// split across several blocks; it keeps every block far under
	// MaxBlockBytes and bounds the unit of read amplification.
	targetBlockBytes = 1 << 20
)

// castagnoli is the CRC32C polynomial table used for block checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt marks a block whose payload fails structural validation; the
// recovery scan treats it exactly like a failed checksum.
var errCorrupt = errors.New("tracedb: corrupt block payload")

// encodePayload appends the canonical block payload for recs to buf.
func encodePayload(buf []byte, recs []store.Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for i := range recs {
		buf = appendRecord(buf, recs[i])
	}
	return buf
}

// appendRecord appends one record in the canonical encoding.
func appendRecord(buf []byte, r store.Record) []byte {
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendVarint(buf, r.Time.UnixNano())
	buf = binary.AppendVarint(buf, r.EndTime.UnixNano())
	buf = appendString(buf, r.Device)
	buf = appendString(buf, r.Name)
	buf = binary.AppendUvarint(buf, uint64(len(r.Args)))
	for _, a := range r.Args {
		buf = appendString(buf, a)
	}
	buf = appendString(buf, r.Response)
	buf = appendString(buf, r.Exception)
	buf = appendString(buf, r.Procedure)
	buf = appendString(buf, r.Run)
	buf = appendString(buf, r.Mode)
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// recordSizeEstimate upper-bounds a record's encoded size, used to split
// oversized batches at block boundaries before encoding.
func recordSizeEstimate(r store.Record) int {
	n := 3*binary.MaxVarintLen64 + 8*binary.MaxVarintLen32
	n += len(r.Device) + len(r.Name) + len(r.Response) + len(r.Exception)
	n += len(r.Procedure) + len(r.Run) + len(r.Mode)
	for _, a := range r.Args {
		n += binary.MaxVarintLen32 + len(a)
	}
	return n
}

// decodePayload parses a block payload. It never panics on corrupt input:
// every length is checked against the remaining bytes before any allocation,
// and trailing garbage after the last record is rejected so that a decoded
// payload always re-encodes byte-identically.
func decodePayload(b []byte) ([]store.Record, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return nil, errCorrupt
	}
	recs := make([]store.Record, 0, count)
	pos := n
	for i := uint64(0); i < count; i++ {
		r, adv, err := decodeRecord(b[pos:])
		if err != nil {
			return nil, err
		}
		pos += adv
		recs = append(recs, r)
	}
	if pos != len(b) {
		return nil, errCorrupt
	}
	return recs, nil
}

// decodeRecord parses one record, returning the bytes consumed.
func decodeRecord(b []byte) (store.Record, int, error) {
	var r store.Record
	pos := 0

	u, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return r, 0, errCorrupt
	}
	r.Seq = u
	pos += n

	v, n := binary.Varint(b[pos:])
	if n <= 0 {
		return r, 0, errCorrupt
	}
	r.Time = time.Unix(0, v)
	pos += n

	v, n = binary.Varint(b[pos:])
	if n <= 0 {
		return r, 0, errCorrupt
	}
	r.EndTime = time.Unix(0, v)
	pos += n

	readString := func() (string, bool) {
		l, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return "", false
		}
		pos += n
		if l > uint64(len(b)-pos) {
			return "", false
		}
		s := string(b[pos : pos+int(l)])
		pos += int(l)
		return s, true
	}

	var ok bool
	if r.Device, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	if r.Name, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	nargs, n := binary.Uvarint(b[pos:])
	if n <= 0 || nargs > uint64(len(b)-pos) {
		return r, 0, errCorrupt
	}
	pos += n
	if nargs > 0 {
		r.Args = make([]string, 0, nargs)
		for i := uint64(0); i < nargs; i++ {
			a, ok := readString()
			if !ok {
				return r, 0, errCorrupt
			}
			r.Args = append(r.Args, a)
		}
	}
	if r.Response, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	if r.Exception, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	if r.Procedure, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	if r.Run, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	if r.Mode, ok = readString(); !ok {
		return r, 0, errCorrupt
	}
	return r, pos, nil
}
