package tracedb

import (
	"strings"
	"testing"
	"time"

	"rad/internal/obs"
	"rad/internal/simclock"
	"rad/internal/store"
)

// TestObsTracedbMetrics: the write path feeds the append/flush histograms
// and block totals, and the size gauges mirror the store's own accessors.
func TestObsTracedbMetrics(t *testing.T) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	db, err := Open(t.TempDir(), Options{BlockRecords: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reg := obs.NewRegistry()
	db.Observe(reg)

	base := time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if err := db.Append(store.Record{Time: base, Device: "C9", Name: "MVNG"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AppendBatch([]store.Record{
		{Time: base, Device: "IKA", Name: "IN_PV_4"},
		{Time: base, Device: "IKA", Name: "IN_PV_4"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	hist := make(map[string]uint64)
	for _, h := range snap.Histograms {
		hist[h.Name+"/"+h.Labels["op"]] += h.Count
	}
	if hist["rad_tracedb_append_seconds/record"] != 10 {
		t.Errorf("append record observations = %d, want 10", hist["rad_tracedb_append_seconds/record"])
	}
	if hist["rad_tracedb_append_seconds/batch"] != 1 {
		t.Errorf("append batch observations = %d, want 1", hist["rad_tracedb_append_seconds/batch"])
	}
	if hist["rad_tracedb_flush_seconds/"] == 0 {
		t.Error("flush histogram never observed")
	}

	gauges := make(map[string]float64)
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if got, want := gauges["rad_tracedb_records"], float64(db.Len()); got != want {
		t.Errorf("records gauge = %v, want %v", got, want)
	}
	if got, want := gauges["rad_tracedb_segments"], float64(db.Segments()); got != want {
		t.Errorf("segments gauge = %v, want %v", got, want)
	}
	if gauges["rad_tracedb_bytes"] <= 0 || gauges["rad_tracedb_index_blocks"] <= 0 {
		t.Errorf("size gauges not populated: bytes=%v index_blocks=%v",
			gauges["rad_tracedb_bytes"], gauges["rad_tracedb_index_blocks"])
	}

	counters := make(map[string]uint64)
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["rad_tracedb_blocks_written_total"] == 0 || counters["rad_tracedb_bytes_written_total"] == 0 {
		t.Errorf("block write totals not populated: %v", counters)
	}

	// The exposition names every tracedb family (the CLI's /metrics
	// coverage check relies on this rendering).
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"rad_tracedb_append_seconds_bucket",
		"rad_tracedb_recovery_seconds",
		"rad_tracedb_pending_records",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestObsTracedbUnobservedPathUnchanged: a DB without Observe behaves
// identically (guard against the refactor of Append into appendLocked).
func TestObsTracedbUnobservedPathUnchanged(t *testing.T) {
	db, err := Open(t.TempDir(), Options{BlockRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 5 {
		t.Fatalf("Len = %d, want 5", db.Len())
	}
	if db.Recovery() < 0 {
		t.Fatal("negative recovery duration")
	}
}
