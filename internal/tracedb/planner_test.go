package tracedb

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rad/internal/store"
)

// plannerFixture builds a store with deliberately skewed selectivity: device
// "Bulk" dominates, device "Rare" appears in a handful of records, and one
// command key is rarer still. Batches are homogeneous per device so the
// block purity metadata can prove coverage.
func plannerFixture(t testing.TB) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	base := time.Unix(1_000_000, 0)
	seq := 0
	appendHomogeneous := func(dev, name, run string, n int) {
		recs := make([]store.Record, n)
		for i := range recs {
			recs[i] = store.Record{
				Time:      base.Add(time.Duration(seq) * time.Second),
				Device:    dev,
				Name:      name,
				Args:      []string{fmt.Sprintf("a%d", seq)},
				Response:  "ok",
				Procedure: "P1",
				Run:       run,
				Mode:      "DIRECT",
			}
			seq++
		}
		if err := db.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		appendHomogeneous("Bulk", fmt.Sprintf("cmd%d", i%5), "run-bulk", 20)
		if i%10 == 0 {
			appendHomogeneous("Rare", "probe", "run-rare", 3)
		}
	}
	appendHomogeneous("Rare", "unique", "run-rare", 1)
	return db
}

func TestExplainPicksMostSelectiveDriver(t *testing.T) {
	db := plannerFixture(t)

	// A rare-device filter: its posting list is far shorter than any other.
	pl := db.Explain(Query{Device: "Rare"})
	if pl.Drivers["device"] == 0 {
		t.Fatalf("rare-device query not driven by the device list: %+v", pl.Drivers)
	}
	if pl.CandidateBlocks >= pl.TotalBlocks {
		t.Fatalf("planner read every block (%d of %d) for a rare device",
			pl.CandidateBlocks, pl.TotalBlocks)
	}
	// Homogeneous batches mean the purity metadata proves full coverage.
	if pl.CoveredBlocks == 0 {
		t.Fatalf("no covered blocks for a pure-device query: %+v", pl)
	}

	// Device and key both filter; "Bulk.cmd0" appears in a fifth of the
	// Bulk blocks, so its posting list is strictly shorter than the device
	// list in every segment and must drive.
	pl = db.Explain(Query{Device: "Bulk", Key: "Bulk.cmd0"})
	if pl.Drivers["key"] == 0 {
		t.Fatalf("rarest filter did not drive the plan: %+v", pl.Drivers)
	}
	if dev, key := pl.FilterBlocks["device"], pl.FilterBlocks["key"]; key >= dev {
		t.Fatalf("key list (%d blocks) not shorter than device list (%d)", key, dev)
	}

	// No set filter: every segment is a raw scan.
	pl = db.Explain(Query{})
	if pl.Drivers["scan"] != pl.Segments-pl.SegmentsPruned {
		t.Fatalf("unfiltered query not planned as scans: %+v", pl.Drivers)
	}

	// A value absent from every posting list prunes all segments without
	// reading a block.
	pl = db.Explain(Query{Device: "NoSuchDevice"})
	if pl.SegmentsPruned != pl.Segments || pl.CandidateBlocks != 0 {
		t.Fatalf("absent value did not prune everything: %+v", pl)
	}
}

func TestExplainTimePruning(t *testing.T) {
	db := plannerFixture(t)
	all := db.Explain(Query{})
	base := time.Unix(1_000_000, 0)
	narrow := db.Explain(Query{From: base.Add(10 * time.Second), To: base.Add(20 * time.Second)})
	if narrow.CandidateBlocks >= all.CandidateBlocks {
		t.Fatalf("time window did not prune blocks: %d vs %d",
			narrow.CandidateBlocks, all.CandidateBlocks)
	}
	future := db.Explain(Query{From: base.Add(1e6 * time.Second)})
	if future.CandidateBlocks != 0 {
		t.Fatalf("future window still reads %d blocks", future.CandidateBlocks)
	}
}

// TestPlannerMatchesReferenceFilter is the correctness contract: for every
// query shape — including ones where the covered fast path skips Match
// entirely — the indexed scan returns byte-identical results to the naive
// full-scan + Match reference.
func TestPlannerMatchesReferenceFilter(t *testing.T) {
	db := plannerFixture(t)
	every, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_000_000, 0)
	queries := []Query{
		{},
		{Device: "Bulk"},
		{Device: "Rare"},
		{Device: "NoSuchDevice"},
		{Key: "Rare.unique"},
		{Key: "Bulk.cmd3"},
		{Run: "run-rare"},
		{Procedure: "P1"},
		{Device: "Rare", Key: "Rare.probe"},
		{Device: "Bulk", Run: "run-rare"}, // contradictory: empty
		{From: base.Add(30 * time.Second), To: base.Add(300 * time.Second)},
		{Device: "Bulk", From: base.Add(100 * time.Second), To: base.Add(200 * time.Second)},
	}
	for _, q := range queries {
		var want []store.Record
		for _, r := range every {
			if q.Match(r) {
				want = append(want, r)
			}
		}
		got, err := db.Collect(q)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if !bytes.Equal(encodePayload(nil, want), encodePayload(nil, got)) {
			t.Fatalf("query %+v: indexed scan %d records, reference %d", q, len(got), len(want))
		}
		// The iterator path agrees with Collect.
		var itGot []store.Record
		it := db.Scan(q)
		for it.Next() {
			itGot = append(itGot, it.Record())
		}
		if err := it.Err(); err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if !bytes.Equal(encodePayload(nil, want), encodePayload(nil, itGot)) {
			t.Fatalf("query %+v: iterator %d records, reference %d", q, len(itGot), len(want))
		}
	}
}

// TestPlannerMatchesReferenceAfterCompaction re-runs the reference check on
// a compacted store: rebuilt posting lists, merged blocks, and recomputed
// purity metadata must not change a single result.
func TestPlannerMatchesReferenceAfterCompaction(t *testing.T) {
	db := plannerFixture(t)
	every, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{}, {Device: "Rare"}, {Key: "Rare.unique"}, {Run: "run-bulk"},
		{Device: "Bulk", Key: "Bulk.cmd1"},
	} {
		var want []store.Record
		for _, r := range every {
			if q.Match(r) {
				want = append(want, r)
			}
		}
		got, err := db.Collect(q)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if !bytes.Equal(encodePayload(nil, want), encodePayload(nil, got)) {
			t.Fatalf("post-compaction query %+v: %d records, reference %d", q, len(got), len(want))
		}
	}
	// Compaction merges homogeneous runs into mixed blocks, so coverage may
	// shrink — but the planner must still prune and still drive off a list.
	pl := db.Explain(Query{Device: "Rare"})
	if pl.Drivers["device"] == 0 && pl.Drivers["scan"] == 0 {
		t.Fatalf("no driver after compaction: %+v", pl.Drivers)
	}
}

func TestIteratorCloseReleasesSnapshot(t *testing.T) {
	db := plannerFixture(t)
	it := db.Scan(Query{})
	if !it.Next() {
		t.Fatal("empty store")
	}
	it.Close()
	// Close is idempotent and ends iteration.
	it.Close()
	if it.Next() {
		t.Fatal("Next after Close")
	}
	// All snapshot references are back: a compaction can retire and unlink
	// every sealed source immediately.
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.mu.RLock()
	retired := len(db.retired)
	db.mu.RUnlock()
	if retired != 0 {
		t.Fatalf("%d retired segments still pinned after iterator Close", retired)
	}
}
