package tracedb

import (
	"os"
	"path/filepath"
	"testing"
)

// writeThreeBatches builds a single-segment store of three 20-record blocks
// and returns the segment path plus the block frame boundaries (file offsets
// at which each block ends) and the expected records.
func writeThreeBatches(t *testing.T, dir string) (segPath string, ends []int64, total int) {
	t.Helper()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(60)
	ingest(t, db, recs, 20)
	if db.Segments() != 1 {
		t.Fatalf("%d segments, want 1", db.Segments())
	}
	for _, m := range db.segs[0].index.blocks {
		ends = append(ends, m.off+blockHeaderSize+int64(m.payloadLen))
	}
	if len(ends) != 3 {
		t.Fatalf("%d blocks, want 3", len(ends))
	}
	segPath = db.segs[0].path
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return segPath, ends, len(recs)
}

// reopenAndCheck reopens the store and asserts it holds exactly the first
// wantRecords synthetic records with intact sequence numbers, then appends
// one more record and checks numbering resumed.
func reopenAndCheck(t *testing.T, dir string, wantRecords int) {
	t.Helper()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer db.Close()
	got, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, expected(testRecords(wantRecords)))

	// Sequence numbering resumes after the highest surviving record.
	if err := db.AppendBatch(testRecords(1)); err != nil {
		t.Fatal(err)
	}
	got, err = db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != wantRecords+1 || got[len(got)-1].Seq != uint64(wantRecords) {
		t.Fatalf("after resume: %d records, last seq %d; want %d records, last seq %d",
			len(got), got[len(got)-1].Seq, wantRecords+1, wantRecords)
	}
}

// TestRecoveryTornTailWrite simulates a crash mid-batch: a block header and
// part of its payload reach the disk, the rest doesn't. Reopening must
// recover every fully-flushed block, truncate the torn bytes, and resume.
func TestRecoveryTornTailWrite(t *testing.T) {
	dir := t.TempDir()
	segPath, _, total := writeThreeBatches(t, dir)

	// Append a torn fourth block: a plausible header announcing a 500-byte
	// payload of which only 17 bytes landed.
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0, 0, 1, 244, 0xde, 0xad, 0xbe, 0xef}
	torn = append(torn, make([]byte, 17)...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Opening truncates the torn bytes off the file.
	probe, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Errorf("torn tail not truncated: %d -> %d bytes (torn %d)",
			before.Size(), after.Size(), len(torn))
	}

	reopenAndCheck(t, dir, total)
}

// TestRecoveryTruncatedMidBlock cuts the file inside the last block: the
// two complete blocks survive, the torn one is dropped.
func TestRecoveryTruncatedMidBlock(t *testing.T) {
	dir := t.TempDir()
	segPath, ends, _ := writeThreeBatches(t, dir)
	if err := os.Truncate(segPath, ends[2]-7); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, 40)
}

// TestRecoveryCorruptMiddleBlock flips one payload byte in the second
// block: recovery keeps the first block and drops everything from the
// corruption on.
func TestRecoveryCorruptMiddleBlock(t *testing.T) {
	dir := t.TempDir()
	segPath, ends, _ := writeThreeBatches(t, dir)
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := ends[0] + blockHeaderSize + 3 // inside block 2's payload
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, pos); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, 20)
}

// TestRecoveryHeaderOnlyAndGarbageFiles covers the degenerate torn states:
// an empty file, a partial magic header, and a file full of garbage all
// recover to an empty segment without a panic.
func TestRecoveryHeaderOnlyAndGarbageFiles(t *testing.T) {
	for name, content := range map[string][]byte{
		"empty":   nil,
		"partial": []byte(segMagic[:3]),
		"garbage": []byte("this is not a tracedb segment at all"),
		"header":  []byte(segMagic),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(segmentPath(dir, 0), content, 0o644); err != nil {
				t.Fatal(err)
			}
			db, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if db.Len() != 0 {
				t.Errorf("recovered %d records from %s file", db.Len(), name)
			}
			if err := db.AppendBatch(testRecords(2)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveryMultiSegment breaks only the last of several segments: the
// earlier segments must be untouched.
func TestRecoveryMultiSegment(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(1200)
	ingest(t, db, recs, 60)
	nseg := db.Segments()
	if nseg < 3 {
		t.Fatalf("%d segments, want >= 3", nseg)
	}
	last := db.segs[nseg-1]
	lastPath := last.path
	inLast := last.index.count
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy the last segment's first block header.
	f, err := os.OpenFile(lastPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, int64(len(segMagic))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, expected(testRecords(len(recs)-inLast)))
}

// TestRecoveryIgnoresForeignFiles checks Open only adopts seg-%08d.seg
// files.
func TestRecoveryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "seg-1.seg", "seg-000000001.seg", "seg-00000001.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Segments() != 1 {
		t.Errorf("%d segments, want just the fresh one", db.Segments())
	}
}
