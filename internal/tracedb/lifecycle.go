package tracedb

import (
	"sync/atomic"
	"time"
)

// LifecycleOptions configures the storage lifecycle engine: background
// compaction of fragmented segments and retention of old data. The zero
// value disables everything — the store stays append-only, exactly the
// pre-lifecycle behavior.
type LifecycleOptions struct {
	// Interval is the cadence of the background maintenance loop
	// (retention, then compaction). Zero disables the loop; Compact and
	// Retain can still be called manually (radquery -mode compact). The
	// loop ticks on wall time regardless of Options.Clock; retention's age
	// horizon uses Options.Clock, so virtual-clock campaigns age out
	// virtually.
	Interval time.Duration
	// CompactBlockBytes is the payload size the compactor re-batches
	// records into. Larger blocks amortize per-block overhead (header,
	// CRC, read syscall, index entry) but coarsen the posting lists and
	// time index — a block is the unit of pruning, so a very large block
	// almost always contains any given command type and selective queries
	// degrade toward full scans. The default, DefaultCompactBlockBytes,
	// is dense enough to collapse small-flush debris by orders of
	// magnitude while keeping rare-key and time-window pruning effective.
	CompactBlockBytes int64
	// CompactFragBytes marks a sealed segment fragmented — a compaction
	// source — when its average block payload is below this. Defaults to
	// a quarter of the compacted block size, so freshly compacted
	// segments are never re-selected as sources.
	CompactFragBytes int64
	// RetainMaxAge retires whole sealed segments whose newest record is
	// older than this relative to Options.Clock.Now(). Zero keeps
	// everything.
	RetainMaxAge time.Duration
	// RetainMaxBytes retires the oldest sealed segments while the store's
	// committed bytes exceed this. Zero is unlimited.
	RetainMaxBytes int64
}

// DefaultCompactBlockBytes is the compactor's default re-batch target.
const DefaultCompactBlockBytes = 64 << 10

// DefaultCompactFragBytes is the default fragmentation threshold.
const DefaultCompactFragBytes = DefaultCompactBlockBytes / 4

func (o LifecycleOptions) blockBytes() int64 {
	if o.CompactBlockBytes > 0 {
		return o.CompactBlockBytes
	}
	return DefaultCompactBlockBytes
}

func (o LifecycleOptions) fragBytes() int64 {
	if o.CompactFragBytes > 0 {
		return o.CompactFragBytes
	}
	return o.blockBytes() / 4
}

// lifecycleStats are the always-maintained lifecycle and planner counters;
// Observe exposes them, and Lifecycle()/radquery -mode info read them
// directly.
type lifecycleStats struct {
	compactions     atomic.Uint64
	blocksMerged    atomic.Uint64 // source blocks consumed by compaction
	bytesReclaimed  atomic.Uint64 // committed bytes freed by compaction + retention
	segmentsRetired atomic.Uint64
	recordsDropped  atomic.Uint64 // records dropped by retention

	plannerDevice atomic.Uint64
	plannerKey    atomic.Uint64
	plannerRun    atomic.Uint64
	plannerProc   atomic.Uint64
	plannerScan   atomic.Uint64
}

// plannerPick counts one per-segment driving-list choice.
func (st *lifecycleStats) plannerPick(field string) {
	switch field {
	case "device":
		st.plannerDevice.Add(1)
	case "key":
		st.plannerKey.Add(1)
	case "run":
		st.plannerRun.Add(1)
	case "procedure":
		st.plannerProc.Add(1)
	default:
		st.plannerScan.Add(1)
	}
}

// RetainStats summarizes one Retain pass.
type RetainStats struct {
	SegmentsRetired int
	RecordsDropped  int
	BytesReclaimed  int64
	// Horizon is the age cut-off applied (zero when no age policy is set).
	Horizon time.Time
}

// Retain applies the configured retention policies: the leading run of
// sealed segments whose newest record is older than RetainMaxAge is
// retired whole, then the oldest sealed segments are retired while the
// committed bytes exceed RetainMaxBytes. The active segment is never
// touched, deletion is whole-segment only (no partial rewrites), survivors
// are always a contiguous sequence suffix, and retired files are unlinked
// only after the last in-flight snapshot drains — a concurrent
// snapshot-then-follow tail keeps reading the files it planned. The
// maximum retired sequence number is durably recorded (see persistSeqFloor)
// before any segment is dropped, so numbering never regresses on reopen.
func (db *DB) Retain() (RetainStats, error) {
	db.lcMu.Lock()
	defer db.lcMu.Unlock()
	var stats RetainStats
	pol := db.opts.Lifecycle
	if pol.RetainMaxAge <= 0 && pol.RetainMaxBytes <= 0 {
		return stats, nil
	}
	horizonN := int64(0)
	hasAge := pol.RetainMaxAge > 0
	if hasAge {
		stats.Horizon = db.clock.Now().Add(-pol.RetainMaxAge)
		horizonN = stats.Horizon.UnixNano()
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return stats, ErrClosed
	}
	victim := make(map[*segment]bool)
	sealed := db.segs[:len(db.segs)-1]
	if hasAge {
		// Age retirement takes only a prefix of the sealed segments,
		// stopping at the first one with a record inside the horizon:
		// Record.Time need not be monotonic across segments, and carving an
		// expired segment out of the middle would tear a hole in the
		// sequence order, breaking the gap-free survivor guarantee. Empty
		// sealed segments hold no records, so reclaiming them within the
		// prefix can never create a gap.
		for _, s := range sealed {
			if s.index.count == 0 {
				victim[s] = true
				continue
			}
			if _, maxN := s.index.timeSpan(); maxN >= horizonN {
				break
			}
			victim[s] = true
		}
	}
	if pol.RetainMaxBytes > 0 {
		var total int64
		for _, s := range db.segs {
			if !victim[s] {
				total += s.size
			}
		}
		for _, s := range sealed {
			if total <= pol.RetainMaxBytes {
				break
			}
			if victim[s] {
				continue
			}
			victim[s] = true
			total -= s.size
		}
	}
	if len(victim) == 0 {
		db.mu.Unlock()
		return stats, nil
	}
	// Persist the sequence floor before the victims disappear: if retention
	// retires every record-bearing segment while the active segment is
	// empty, a reopen would otherwise restart numbering at zero, and
	// stream.Tail's duplicate boundary plus any seq-keyed consumer would
	// misclassify fresh records as already seen.
	floor := db.seqFloor
	for s := range victim {
		if s.index.count > 0 && s.index.maxSeq+1 > floor {
			floor = s.index.maxSeq + 1
		}
	}
	if floor > db.seqFloor {
		if err := persistSeqFloor(db.dir, floor); err != nil {
			db.mu.Unlock()
			return stats, err
		}
		db.seqFloor = floor
	}
	keep := make([]*segment, 0, len(db.segs)-len(victim))
	var victims []*segment
	for _, s := range db.segs {
		if victim[s] {
			victims = append(victims, s)
			stats.SegmentsRetired++
			stats.RecordsDropped += s.index.count
			stats.BytesReclaimed += s.size
			s.retired.Store(true)
			db.retired = append(db.retired, s)
			continue
		}
		keep = append(keep, s)
	}
	db.segs = keep
	db.pruneRetiredLocked()
	db.mu.Unlock()

	for _, s := range victims {
		s.release() // drop the DB's ownership reference
	}
	db.lcStats.segmentsRetired.Add(uint64(stats.SegmentsRetired))
	db.lcStats.recordsDropped.Add(uint64(stats.RecordsDropped))
	db.lcStats.bytesReclaimed.Add(uint64(stats.BytesReclaimed))
	return stats, nil
}

// Maintain runs one full lifecycle pass — retention first (freeing bytes),
// then compaction (densifying what remains) — and is what the background
// loop executes each tick.
func (db *DB) Maintain() (RetainStats, CompactStats, error) {
	rs, err := db.Retain()
	if err != nil {
		return rs, CompactStats{}, err
	}
	cs, err := db.Compact()
	return rs, cs, err
}

// lifecycleLoop is the background maintenance goroutine, started by Open
// when Lifecycle.Interval > 0 and stopped by Close.
func (db *DB) lifecycleLoop() {
	defer close(db.lcDone)
	t := time.NewTicker(db.opts.Lifecycle.Interval)
	defer t.Stop()
	for {
		select {
		case <-db.lcStop:
			return
		case <-t.C:
			if _, _, err := db.Maintain(); err != nil {
				if err == ErrClosed {
					return
				}
				// Maintenance is advisory: an IO error leaves the store
				// exactly as durable as before the pass; retry next tick.
			}
		}
	}
}

// stopLifecycle halts the background loop, if one is running; safe to call
// more than once.
func (db *DB) stopLifecycle() {
	db.lcOnce.Do(func() {
		if db.lcStop != nil {
			close(db.lcStop)
			<-db.lcDone
		}
	})
}

// BlockSizeSummary condenses the store's block payload-size distribution.
type BlockSizeSummary struct {
	Blocks     int
	MinBytes   int64
	AvgBytes   int64
	MaxBytes   int64
	Fragmented int // blocks with payload below the fragmentation threshold
}

// LifecycleInfo is the storage-lifecycle state radquery -mode info reports.
type LifecycleInfo struct {
	Segments          int
	CompactedSegments int // current segments produced by the compactor
	Records           int // committed records (staged appends excluded)
	LiveBytes         int64
	// RetiredBytes are bytes in segments already retired but still pinned
	// by in-flight snapshots; ExpiredBytes are bytes the current retention
	// policy would reclaim on the next pass.
	RetiredBytes int64
	ExpiredBytes int64
	Blocks       BlockSizeSummary
	// RetentionHorizon is the current age cut-off (zero without an age
	// policy).
	RetentionHorizon time.Time
	// Totals over the store's lifetime (process lifetime — counters reset
	// on Open).
	Compactions     uint64
	BlocksMerged    uint64
	BytesReclaimed  uint64
	SegmentsRetired uint64
	RecordsDropped  uint64
}

// Lifecycle reports the store's lifecycle state: live versus reclaimable
// bytes, the block-size distribution, the retention horizon, and the
// engine's lifetime totals.
func (db *DB) Lifecycle() LifecycleInfo {
	pol := db.opts.Lifecycle
	fragBytes := pol.fragBytes()
	var info LifecycleInfo
	var horizonN int64
	if pol.RetainMaxAge > 0 {
		info.RetentionHorizon = db.clock.Now().Add(-pol.RetainMaxAge)
		horizonN = info.RetentionHorizon.UnixNano()
	}

	db.mu.RLock()
	info.Segments = len(db.segs)
	var payloadSum int64
	// sealedLeft holds the sizes, oldest first, of the sealed segments the
	// age policy would not expire — the pool the byte budget draws from.
	var sealedLeft []int64
	agePrefix := pol.RetainMaxAge > 0
	for si, s := range db.segs {
		if s.compacted {
			info.CompactedSegments++
		}
		info.Records += s.index.count
		info.LiveBytes += s.size
		if si < len(db.segs)-1 {
			// Mirror Retain's age policy exactly: only a prefix of the
			// sealed segments expires, stopping at the first one with a
			// record inside the horizon.
			expired := false
			if agePrefix {
				if s.index.count == 0 {
					expired = true
				} else if _, maxN := s.index.timeSpan(); maxN < horizonN {
					expired = true
				} else {
					agePrefix = false
				}
			}
			if expired {
				info.ExpiredBytes += s.size
			} else {
				sealedLeft = append(sealedLeft, s.size)
			}
		}
		for i := range s.index.blocks {
			p := int64(s.index.blocks[i].payloadLen)
			if info.Blocks.Blocks == 0 || p < info.Blocks.MinBytes {
				info.Blocks.MinBytes = p
			}
			if p > info.Blocks.MaxBytes {
				info.Blocks.MaxBytes = p
			}
			if p < fragBytes {
				info.Blocks.Fragmented++
			}
			payloadSum += p
			info.Blocks.Blocks++
		}
	}
	for _, s := range db.retired {
		if s.refs.Load() > 0 {
			info.RetiredBytes += s.size
		}
	}
	db.mu.RUnlock()
	// The byte budget retires whole sealed segments oldest-first and never
	// touches the active segment; simulate exactly that, so the estimate
	// never counts active-segment bytes Retain cannot reclaim.
	if pol.RetainMaxBytes > 0 {
		total := info.LiveBytes - info.ExpiredBytes
		for _, sz := range sealedLeft {
			if total <= pol.RetainMaxBytes {
				break
			}
			info.ExpiredBytes += sz
			total -= sz
		}
	}
	if info.Blocks.Blocks > 0 {
		info.Blocks.AvgBytes = payloadSum / int64(info.Blocks.Blocks)
	}
	info.Compactions = db.lcStats.compactions.Load()
	info.BlocksMerged = db.lcStats.blocksMerged.Load()
	info.BytesReclaimed = db.lcStats.bytesReclaimed.Load()
	info.SegmentsRetired = db.lcStats.segmentsRetired.Load()
	info.RecordsDropped = db.lcStats.recordsDropped.Load()
	return info
}
