package tracedb

import (
	"math"
	"sort"
	"time"

	"rad/internal/parallel"
	"rad/internal/store"
)

// Query selects records. The zero value matches everything; every set field
// must match (conjunction). Time bounds are inclusive on both ends and
// compare against Record.Time; a zero From or To leaves that end unbounded.
// These are exactly the query shapes the analyses consume: time-range,
// per-device, per-command-type, and per-procedure/per-run slices.
type Query struct {
	From, To  time.Time
	Device    string
	Key       string // command type, Record.Key() = "Device.Name"
	Procedure string
	Run       string
}

// Match reports whether r satisfies the query — the same predicate the
// indexed scan applies, exported so in-memory stores can run the identical
// filter (the query-parity contract with store.MemStore).
func (q Query) Match(r store.Record) bool {
	if q.Device != "" && r.Device != q.Device {
		return false
	}
	if q.Key != "" && r.Key() != q.Key {
		return false
	}
	if q.Procedure != "" && r.Procedure != q.Procedure {
		return false
	}
	if q.Run != "" && r.Run != q.Run {
		return false
	}
	if !q.From.IsZero() && r.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && r.Time.After(q.To) {
		return false
	}
	return true
}

// timeBounds returns the query's time window in UnixNano with open ends
// widened to the full int64 range, for block pruning.
func (q Query) timeBounds() (fromN, toN int64) {
	fromN, toN = math.MinInt64, math.MaxInt64
	if !q.From.IsZero() {
		fromN = q.From.UnixNano()
	}
	if !q.To.IsZero() {
		toN = q.To.UnixNano()
	}
	return fromN, toN
}

// segPlan is one segment's share of a snapshot scan plan: the candidate
// blocks selected by the index at snapshot time.
type segPlan struct {
	seg    *segment
	blocks []blockMeta
}

// plan snapshots the scan state for q under the read lock: per-segment
// candidate blocks plus the matching staged records. Blocks committed after
// the snapshot are not seen — iterators read a consistent prefix even while
// ingest continues.
func (db *DB) plan(q Query) (plans []segPlan, tail []store.Record) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, s := range db.segs {
		if s.index.count == 0 {
			continue
		}
		if blocks := s.index.candidates(q); len(blocks) > 0 {
			plans = append(plans, segPlan{seg: s, blocks: blocks})
		}
	}
	for i := range db.pending {
		if q.Match(db.pending[i]) {
			tail = append(tail, db.pending[i])
		}
	}
	return plans, tail
}

// Iterator streams the records matching a query in sequence order. It is
// not safe for concurrent use, but any number of iterators may run
// concurrently with each other and with the writer.
type Iterator struct {
	q     Query
	plans []segPlan
	tail  []store.Record
	si    int // current segment plan
	bi    int // next block within it
	cur   []store.Record
	ci    int
	rec   store.Record
	err   error
}

// Scan returns an iterator over the records matching q at snapshot time, in
// sequence order. The candidate blocks are selected from the per-segment
// indexes; non-matching blocks are never read or decoded.
func (db *DB) Scan(q Query) *Iterator {
	plans, tail := db.plan(q)
	return &Iterator{q: q, plans: plans, tail: tail}
}

// Next advances to the next matching record, reporting whether one exists.
// It returns false once the snapshot is exhausted or a read error occurred.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.ci < len(it.cur) {
			it.rec = it.cur[it.ci]
			it.ci++
			return true
		}
		if it.si >= len(it.plans) {
			if len(it.tail) > 0 {
				it.cur, it.ci = it.tail, 0
				it.tail = nil
				continue
			}
			return false
		}
		p := it.plans[it.si]
		if it.bi >= len(p.blocks) {
			it.si++
			it.bi = 0
			continue
		}
		m := p.blocks[it.bi]
		it.bi++
		recs, err := p.seg.readBlock(m)
		if err != nil {
			it.err = err
			return false
		}
		k := 0
		for i := range recs {
			if it.q.Match(recs[i]) {
				recs[k] = recs[i]
				k++
			}
		}
		it.cur, it.ci = recs[:k], 0
	}
}

// Record returns the record positioned by the last successful Next.
func (it *Iterator) Record() store.Record { return it.rec }

// Err returns the first read error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Collect materializes the records matching q in sequence order, fanning
// the block reads out across segments on the shared worker pool. The result
// is identical to draining Scan(q) at the same snapshot.
func (db *DB) Collect(q Query) ([]store.Record, error) {
	plans, tail := db.plan(q)
	per, err := parallel.Map(plans, 0, func(_ int, p segPlan) ([]store.Record, error) {
		var out []store.Record
		for _, m := range p.blocks {
			recs, err := p.seg.readBlock(m)
			if err != nil {
				return nil, err
			}
			for i := range recs {
				if q.Match(recs[i]) {
					out = append(out, recs[i])
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	total := len(tail)
	for _, s := range per {
		total += len(s)
	}
	out := make([]store.Record, 0, total)
	for _, s := range per {
		out = append(out, s...)
	}
	return append(out, tail...), nil
}

// CountByCommand returns the number of records per command type
// ("Device.Name") — the Fig. 5(a) distribution — answered from the
// per-segment indexes without touching the record blocks.
func (db *DB) CountByCommand() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := make(map[string]int)
	for _, s := range db.segs {
		for k, n := range s.index.keyCounts {
			m[k] += n
		}
	}
	for i := range db.pending {
		m[db.pending[i].Key()]++
	}
	return m
}

// CountByDevice returns the number of records per device, answered from the
// per-segment indexes.
func (db *DB) CountByDevice() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := make(map[string]int)
	for _, s := range db.segs {
		for k, n := range s.index.deviceCounts {
			m[k] += n
		}
	}
	for i := range db.pending {
		m[db.pending[i].Device]++
	}
	return m
}

// Runs returns the distinct supervised run identifiers, sorted — the keys
// of the per-segment run posting lists.
func (db *DB) Runs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := make(map[string]bool)
	for _, s := range db.segs {
		for run := range s.index.byRun {
			set[run] = true
		}
	}
	for i := range db.pending {
		if db.pending[i].Run != "" {
			set[db.pending[i].Run] = true
		}
	}
	out := make([]string, 0, len(set))
	for run := range set {
		out = append(out, run)
	}
	sort.Strings(out)
	return out
}

// Span returns the earliest and latest Record.Time in the store; ok is
// false when the store is empty.
func (db *DB) Span() (first, last time.Time, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	minN, maxN := int64(math.MaxInt64), int64(math.MinInt64)
	for _, s := range db.segs {
		if s.index.count == 0 {
			continue
		}
		lo, hi := s.index.timeSpan()
		if lo < minN {
			minN = lo
		}
		if hi > maxN {
			maxN = hi
		}
	}
	for i := range db.pending {
		n := db.pending[i].Time.UnixNano()
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if minN > maxN {
		return time.Time{}, time.Time{}, false
	}
	return time.Unix(0, minN), time.Unix(0, maxN), true
}
