package tracedb

import (
	"math"
	"sort"
	"time"

	"rad/internal/parallel"
	"rad/internal/store"
)

// Query selects records. The zero value matches everything; every set field
// must match (conjunction). Time bounds are inclusive on both ends and
// compare against Record.Time; a zero From or To leaves that end unbounded.
// These are exactly the query shapes the analyses consume: time-range,
// per-device, per-command-type, and per-procedure/per-run slices.
type Query struct {
	From, To  time.Time
	Device    string
	Key       string // command type, Record.Key() = "Device.Name"
	Procedure string
	Run       string
	// MinSeq restricts the result to records with Seq >= MinSeq — the
	// resume predicate of a reconnecting tail (stream.Server replays
	// [MinSeq, now) from the store). Zero (sequence numbers start at zero)
	// excludes nothing, keeping the zero Query's match-everything contract.
	MinSeq uint64
}

// Match reports whether r satisfies the query — the same predicate the
// indexed scan applies, exported so in-memory stores can run the identical
// filter (the query-parity contract with store.MemStore).
func (q Query) Match(r store.Record) bool {
	if r.Seq < q.MinSeq {
		return false
	}
	if q.Device != "" && r.Device != q.Device {
		return false
	}
	if q.Key != "" && r.Key() != q.Key {
		return false
	}
	if q.Procedure != "" && r.Procedure != q.Procedure {
		return false
	}
	if q.Run != "" && r.Run != q.Run {
		return false
	}
	if !q.From.IsZero() && r.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && r.Time.After(q.To) {
		return false
	}
	return true
}

// timeBounds returns the query's time window in UnixNano with open ends
// widened to the full int64 range, for block pruning.
func (q Query) timeBounds() (fromN, toN int64) {
	fromN, toN = math.MinInt64, math.MaxInt64
	if !q.From.IsZero() {
		fromN = q.From.UnixNano()
	}
	if !q.To.IsZero() {
		toN = q.To.UnixNano()
	}
	return fromN, toN
}

// segPlan is one segment's share of a snapshot scan plan: the candidate
// blocks selected by the planner at snapshot time, with a coverage flag per
// block marking the ones whose records all provably match (no per-record
// re-filter needed). The plan holds a reference on its segment so a
// retiring compaction or retention pass cannot unlink the file underneath
// the scan.
type segPlan struct {
	seg     *segment
	blocks  []blockMeta
	covered []bool
}

// planSegment runs the selectivity planner over one segment's index:
// posting lists of the set filters are ordered by length (shortest — most
// selective — first), the shortest list drives the scan, the remaining
// lists are intersected away block-granular, the sparse time index prunes
// what survives, and the residual per-record predicates are left to the
// block scan — skipped entirely for blocks whose metadata proves full
// coverage. driver is the driving field ("scan" when no filter applies,
// "" when the segment is pruned wholesale).
func planSegment(ix *segmentIndex, q Query, fromN, toN int64) (blocks []blockMeta, covered []bool, driver string) {
	if q.MinSeq > 0 && ix.maxSeq < q.MinSeq {
		// Sequence numbers are monotone across the store, so a resume scan
		// prunes every segment sealed before the resume point wholesale.
		return nil, nil, ""
	}
	lists, ok := ix.postingLists(q)
	if !ok {
		return nil, nil, ""
	}
	emit := func(bi int32) {
		m := ix.blocks[bi]
		if m.maxTimeN < fromN || m.minTimeN > toN {
			return
		}
		if m.maxSeq < q.MinSeq {
			return
		}
		blocks = append(blocks, m)
		covered = append(covered, m.covers(q, fromN, toN))
	}
	if len(lists) == 0 {
		for bi := range ix.blocks {
			emit(int32(bi))
		}
		return blocks, covered, "scan"
	}
	ids := lists[0].list
	for _, l := range lists[1:] {
		ids = intersect(ids, l.list)
		if len(ids) == 0 {
			return nil, nil, lists[0].field
		}
	}
	for _, bi := range ids {
		emit(bi)
	}
	return blocks, covered, lists[0].field
}

// plan snapshots the scan state for q under the read lock: per-segment
// candidate blocks plus the matching staged records. Blocks committed after
// the snapshot are not seen — iterators read a consistent prefix even while
// ingest continues. Every planned segment is acquired; the caller must
// release the plans (Iterator does so on exhaustion or Close).
func (db *DB) plan(q Query) (plans []segPlan, tail []store.Record) {
	fromN, toN := q.timeBounds()
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, s := range db.segs {
		if s.index.count == 0 {
			continue
		}
		blocks, covered, driver := planSegment(&s.index, q, fromN, toN)
		if driver != "" {
			db.lcStats.plannerPick(driver)
		}
		if len(blocks) > 0 {
			s.acquire()
			plans = append(plans, segPlan{seg: s, blocks: blocks, covered: covered})
		}
	}
	for i := range db.pending {
		if q.Match(db.pending[i]) {
			tail = append(tail, db.pending[i])
		}
	}
	return plans, tail
}

// releasePlans drops the snapshot references a plan holds.
func releasePlans(plans []segPlan) {
	for i := range plans {
		plans[i].seg.release()
	}
}

// QueryPlan is the planner's explanation of how a query executes against
// the current store state — the radquery -explain surface. Counts aggregate
// over every segment.
type QueryPlan struct {
	// Segments holding records, and how many the planner eliminated
	// wholesale (a filter value absent from the segment, or every candidate
	// block time-pruned).
	Segments       int
	SegmentsPruned int
	// Drivers counts segments by their driving choice: the most selective
	// posting-list field ("device", "key", "run", "procedure") or "scan"
	// when the query carries no set filter.
	Drivers map[string]int
	// FilterBlocks sums, per filter field, the posting-list lengths the
	// planner weighed — the selectivity estimates.
	FilterBlocks map[string]int
	// TotalBlocks is the store's block count; CandidateBlocks is what the
	// scan will actually read; CoveredBlocks of those are provably
	// all-matching, so their per-record re-filter is skipped.
	TotalBlocks     int
	CandidateBlocks int
	CoveredBlocks   int
	// CandidateRecords upper-bounds the scan's result set; StagedTail is
	// the matching staged (not yet flushed) records.
	CandidateRecords int
	StagedTail       int
}

// Explain runs the planner for q without reading any block and reports what
// a Scan would do: driver choices, selectivity estimates, and candidate
// versus covered block counts.
func (db *DB) Explain(q Query) QueryPlan {
	pl := QueryPlan{Drivers: make(map[string]int), FilterBlocks: make(map[string]int)}
	fromN, toN := q.timeBounds()
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, s := range db.segs {
		if s.index.count == 0 {
			continue
		}
		pl.Segments++
		pl.TotalBlocks += len(s.index.blocks)
		lists, ok := s.index.postingLists(q)
		if !ok {
			pl.SegmentsPruned++
			continue
		}
		for _, l := range lists {
			pl.FilterBlocks[l.field] += len(l.list)
		}
		blocks, covered, driver := planSegment(&s.index, q, fromN, toN)
		if len(blocks) == 0 {
			pl.SegmentsPruned++
			continue
		}
		pl.Drivers[driver]++
		pl.CandidateBlocks += len(blocks)
		for i := range blocks {
			pl.CandidateRecords += int(blocks[i].count)
			if covered[i] {
				pl.CoveredBlocks++
			}
		}
	}
	for i := range db.pending {
		if q.Match(db.pending[i]) {
			pl.StagedTail++
		}
	}
	return pl
}

// Iterator streams the records matching a query in sequence order. It is
// not safe for concurrent use, but any number of iterators may run
// concurrently with each other, with the writer, and with the lifecycle
// engine: the snapshot holds references on its segments, so files retired
// by compaction or retention stay readable until this iterator drains or is
// closed.
type Iterator struct {
	q        Query
	plans    []segPlan
	tail     []store.Record
	si       int // current segment plan
	bi       int // next block within it
	cur      []store.Record
	ci       int
	rec      store.Record
	err      error
	released bool
}

// Scan returns an iterator over the records matching q at snapshot time, in
// sequence order. The candidate blocks are selected from the per-segment
// indexes; non-matching blocks are never read or decoded. An abandoned
// iterator (not drained to exhaustion) must be Closed, or segment files
// retired while it was in flight are never reclaimed.
func (db *DB) Scan(q Query) *Iterator {
	plans, tail := db.plan(q)
	return &Iterator{q: q, plans: plans, tail: tail}
}

// Next advances to the next matching record, reporting whether one exists.
// It returns false once the snapshot is exhausted or a read error occurred;
// either way the snapshot's segment references are released.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.ci < len(it.cur) {
			it.rec = it.cur[it.ci]
			it.ci++
			return true
		}
		if it.si >= len(it.plans) {
			if len(it.tail) > 0 {
				it.cur, it.ci = it.tail, 0
				it.tail = nil
				continue
			}
			it.release()
			return false
		}
		p := it.plans[it.si]
		if it.bi >= len(p.blocks) {
			it.si++
			it.bi = 0
			continue
		}
		m := p.blocks[it.bi]
		full := p.covered[it.bi]
		it.bi++
		recs, err := p.seg.readBlock(m)
		if err != nil {
			it.err = err
			it.release()
			return false
		}
		if full {
			// Fast path: the block's index metadata proves every record
			// matches, so the per-record re-filter is skipped.
			it.cur, it.ci = recs, 0
			continue
		}
		k := 0
		for i := range recs {
			if it.q.Match(recs[i]) {
				recs[k] = recs[i]
				k++
			}
		}
		it.cur, it.ci = recs[:k], 0
	}
}

// Record returns the record positioned by the last successful Next.
func (it *Iterator) Record() store.Record { return it.rec }

// Err returns the first read error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's snapshot references early and ends the
// iteration: Next reports false afterwards. It is required when a scan is
// abandoned before exhaustion (e.g. a limit was reached) and harmless — a
// no-op — after the iterator drained naturally.
func (it *Iterator) Close() {
	it.release()
	it.cur, it.tail = nil, nil
	it.si = len(it.plans)
}

func (it *Iterator) release() {
	if it.released {
		return
	}
	it.released = true
	releasePlans(it.plans)
}

// collectChunk is one unit of Collect's fan-out: a run of candidate blocks
// within a single segment, sized by payload so dense compacted stores (few
// segments, big blocks) parallelize as well as fragmented ones.
type collectChunk struct {
	seg     *segment
	blocks  []blockMeta
	covered []bool
}

// collectChunkBytes is the target decoded payload per parallel work unit.
const collectChunkBytes = 1 << 20

// Collect materializes the records matching q in sequence order, fanning
// the block reads out across payload-sized chunks on the shared worker
// pool. The result is identical to draining Scan(q) at the same snapshot.
func (db *DB) Collect(q Query) ([]store.Record, error) {
	plans, tail := db.plan(q)
	defer releasePlans(plans)
	var chunks []collectChunk
	for _, p := range plans {
		start, payload := 0, int64(0)
		for i := range p.blocks {
			payload += int64(p.blocks[i].payloadLen)
			if payload >= collectChunkBytes {
				chunks = append(chunks, collectChunk{p.seg, p.blocks[start : i+1], p.covered[start : i+1]})
				start, payload = i+1, 0
			}
		}
		if start < len(p.blocks) {
			chunks = append(chunks, collectChunk{p.seg, p.blocks[start:], p.covered[start:]})
		}
	}
	per, err := parallel.Map(chunks, 0, func(_ int, c collectChunk) ([]store.Record, error) {
		var out []store.Record
		for i, m := range c.blocks {
			recs, err := c.seg.readBlock(m)
			if err != nil {
				return nil, err
			}
			if c.covered[i] {
				out = append(out, recs...)
				continue
			}
			for j := range recs {
				if q.Match(recs[j]) {
					out = append(out, recs[j])
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	total := len(tail)
	for _, s := range per {
		total += len(s)
	}
	out := make([]store.Record, 0, total)
	for _, s := range per {
		out = append(out, s...)
	}
	return append(out, tail...), nil
}

// CountByCommand returns the number of records per command type
// ("Device.Name") — the Fig. 5(a) distribution — answered from the
// per-segment indexes without touching the record blocks.
func (db *DB) CountByCommand() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := make(map[string]int)
	for _, s := range db.segs {
		for k, n := range s.index.keyCounts {
			m[k] += n
		}
	}
	for i := range db.pending {
		m[db.pending[i].Key()]++
	}
	return m
}

// CountByDevice returns the number of records per device, answered from the
// per-segment indexes.
func (db *DB) CountByDevice() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := make(map[string]int)
	for _, s := range db.segs {
		for k, n := range s.index.deviceCounts {
			m[k] += n
		}
	}
	for i := range db.pending {
		m[db.pending[i].Device]++
	}
	return m
}

// Runs returns the distinct supervised run identifiers, sorted — the keys
// of the per-segment run posting lists.
func (db *DB) Runs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := make(map[string]bool)
	for _, s := range db.segs {
		for run := range s.index.byRun {
			set[run] = true
		}
	}
	for i := range db.pending {
		if db.pending[i].Run != "" {
			set[db.pending[i].Run] = true
		}
	}
	out := make([]string, 0, len(set))
	for run := range set {
		out = append(out, run)
	}
	sort.Strings(out)
	return out
}

// Span returns the earliest and latest Record.Time in the store; ok is
// false when the store is empty.
func (db *DB) Span() (first, last time.Time, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	minN, maxN := int64(math.MaxInt64), int64(math.MinInt64)
	for _, s := range db.segs {
		if s.index.count == 0 {
			continue
		}
		lo, hi := s.index.timeSpan()
		if lo < minN {
			minN = lo
		}
		if hi > maxN {
			maxN = hi
		}
	}
	for i := range db.pending {
		n := db.pending[i].Time.UnixNano()
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if minN > maxN {
		return time.Time{}, time.Time{}, false
	}
	return time.Unix(0, minN), time.Unix(0, maxN), true
}
