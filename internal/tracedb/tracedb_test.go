package tracedb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"rad/internal/store"
)

// testRecord builds a deterministic synthetic record; i spreads records
// across devices, command types, runs, and a monotonically increasing
// timeline.
func testRecord(i int) store.Record {
	devices := []string{"C9", "UR3e", "IKA", "Tecan", "Quantos"}
	names := []string{"MVNG", "ARM", "Q", "IN_PV_4", "start_dosing", "MOVE"}
	r := store.Record{
		Time:      time.Unix(1_700_000_000+int64(i)*3, int64(i%7)*1000),
		Device:    devices[i%len(devices)],
		Name:      names[i%len(names)],
		Procedure: store.UnknownProcedure,
		Mode:      "REMOTE",
	}
	r.EndTime = r.Time.Add(5 * time.Millisecond)
	if i%4 == 0 {
		r.Args = []string{fmt.Sprint(i), "fast"}
	}
	if i%11 == 0 {
		r.Run = fmt.Sprintf("run-%d", i%3)
		r.Procedure = "P1"
	}
	if i%53 == 0 {
		r.Exception = "collision fault"
	} else {
		r.Response = "ok"
	}
	return r
}

func testRecords(n int) []store.Record {
	out := make([]store.Record, n)
	for i := range out {
		out[i] = testRecord(i)
	}
	return out
}

// sameRecords compares record slices field-by-field, comparing times by
// instant (the decoder restores wall-clock nanos, not locations).
func sameRecords(t *testing.T, got, want []store.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Seq != w.Seq ||
			g.Time.UnixNano() != w.Time.UnixNano() ||
			g.EndTime.UnixNano() != w.EndTime.UnixNano() ||
			g.Device != w.Device || g.Name != w.Name ||
			!reflect.DeepEqual(g.Args, w.Args) ||
			g.Response != w.Response || g.Exception != w.Exception ||
			g.Procedure != w.Procedure || g.Run != w.Run || g.Mode != w.Mode {
			t.Fatalf("record %d mismatch:\n got  %+v\n want %+v", i, g, w)
		}
	}
}

// filterSeq applies MemStore-style brute force to the expected record set.
func filterSeq(recs []store.Record, pred func(store.Record) bool) []store.Record {
	var out []store.Record
	for _, r := range recs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ingest appends recs in blocks of batch via AppendBatch.
func ingest(t *testing.T, db *DB, recs []store.Record, batch int) {
	t.Helper()
	for start := 0; start < len(recs); start += batch {
		end := start + batch
		if end > len(recs) {
			end = len(recs)
		}
		if err := db.AppendBatch(recs[start:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// expected returns the input records with the sequence numbers the DB
// assigns on ingestion.
func expected(recs []store.Record) []store.Record {
	out := make([]store.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Seq = uint64(i)
	}
	return out
}

func TestRoundTripRotationAndQueries(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment threshold forces many rotations.
	db, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(2000)
	ingest(t, db, recs, 64)
	want := expected(recs)

	if db.Segments() < 3 {
		t.Errorf("only %d segments, rotation never triggered", db.Segments())
	}
	if db.Len() != len(recs) {
		t.Errorf("Len = %d, want %d", db.Len(), len(recs))
	}

	check := func(db *DB) {
		t.Helper()
		got, err := db.Collect(Query{})
		if err != nil {
			t.Fatal(err)
		}
		sameRecords(t, got, want)

		queries := []Query{
			{Device: "C9"},
			{Device: "Quantos"},
			{Key: "Tecan.Q"},
			{Run: "run-0"},
			{Procedure: "P1"},
			{From: want[500].Time, To: want[1500].Time},
			{From: want[500].Time, To: want[1500].Time, Device: "IKA"},
			{Device: "nope"},
			{Key: "C9.Q"}, // device exists, key never occurs together
		}
		for _, q := range queries {
			got, err := db.Collect(q)
			if err != nil {
				t.Fatalf("%+v: %v", q, err)
			}
			sameRecords(t, got, filterSeq(want, q.Match))

			// The iterator must agree with Collect.
			var scanned []store.Record
			it := db.Scan(q)
			for it.Next() {
				scanned = append(scanned, it.Record())
			}
			if it.Err() != nil {
				t.Fatalf("%+v: %v", q, it.Err())
			}
			sameRecords(t, scanned, got)
		}

		wantCmd := make(map[string]int)
		wantDev := make(map[string]int)
		for _, r := range want {
			wantCmd[r.Key()]++
			wantDev[r.Device]++
		}
		if got := db.CountByCommand(); !reflect.DeepEqual(got, wantCmd) {
			t.Errorf("CountByCommand = %v, want %v", got, wantCmd)
		}
		if got := db.CountByDevice(); !reflect.DeepEqual(got, wantDev) {
			t.Errorf("CountByDevice = %v, want %v", got, wantDev)
		}
		if got := db.Runs(); !reflect.DeepEqual(got, []string{"run-0", "run-1", "run-2"}) {
			t.Errorf("Runs = %v", got)
		}
		first, last, ok := db.Span()
		if !ok || first.UnixNano() != want[0].Time.UnixNano() ||
			last.UnixNano() != want[len(want)-1].Time.UnixNano() {
			t.Errorf("Span = %v..%v ok=%t", first, last, ok)
		}
	}

	check(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything must survive a reopen, answered from the recovered index.
	db2, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2)
}

func TestStagedAppendsVisibleAndFlushed(t *testing.T) {
	db, err := Open(t.TempDir(), Options{BlockRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	recs := testRecords(7)
	for _, r := range recs {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	want := expected(recs)

	// Below the staging threshold: nothing committed, but readers see it.
	got, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, want)
	if n := db.Len(); n != 7 {
		t.Errorf("Len = %d, want 7", n)
	}
	got, err = db.Collect(Query{Device: want[1].Device})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, filterSeq(want, Query{Device: want[1].Device}.Match))

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, want)
}

func TestSequenceResumeAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, db, testRecords(10), 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.AppendBatch(testRecords(3)); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 13 {
		t.Fatalf("got %d records, want 13", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d — numbering did not resume", i, r.Seq)
		}
	}
}

func TestClosedDBRejectsOperations(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(testRecord(0)); err != ErrClosed {
		t.Errorf("Append on closed DB: %v, want ErrClosed", err)
	}
	if err := db.AppendBatch(testRecords(2)); err != ErrClosed {
		t.Errorf("AppendBatch on closed DB: %v, want ErrClosed", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Errorf("Flush on closed DB: %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestConcurrentReadersDuringIngest exercises the reader/writer contract
// under the race detector: while one writer appends batches, concurrent
// readers must always observe a consistent prefix — records 0..k-1 with
// contiguous sequence numbers.
func TestConcurrentReadersDuringIngest(t *testing.T) {
	db, err := Open(t.TempDir(), Options{SegmentBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const total, batch = 3000, 50
	recs := testRecords(total)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for start := 0; start < total; start += batch {
			if err := db.AppendBatch(recs[start : start+batch]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var got []store.Record
				var err error
				if w%2 == 0 {
					got, err = db.Collect(Query{})
				} else {
					it := db.Scan(Query{Device: "C9"})
					for it.Next() {
						got = append(got, it.Record())
					}
					err = it.Err()
				}
				if err != nil {
					t.Error(err)
					return
				}
				last := int64(-1)
				for _, r := range got {
					if int64(r.Seq) <= last {
						t.Errorf("non-monotonic seq %d after %d", r.Seq, last)
						return
					}
					last = int64(r.Seq)
				}
			}
		}(w)
	}
	<-done
	wg.Wait()

	got, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, expected(recs))
}

// TestBatcherFlushBoundary checks the intended producer wiring: a
// store.Batcher in front of the DB lands each flush as one block.
func TestBatcherFlushBoundary(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b := store.NewBatcher(db, 32)
	recs := testRecords(100)
	for _, r := range recs {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, expected(recs))
	// 100 records at batch size 32 = 4 flushes = 4 blocks.
	if nb := len(db.segs[0].index.blocks); nb != 4 {
		t.Errorf("%d blocks on disk, want 4 (one per Batcher flush)", nb)
	}
}

// TestIndexedScanReadsFewerBlocks verifies the posting lists actually prune
// block reads — the structural property behind BenchmarkTraceDBScanIndexed.
func TestIndexedScanReadsFewerBlocks(t *testing.T) {
	db, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Confine a rare command type to a narrow stripe of blocks.
	recs := testRecords(4096)
	for i := 1000; i < 1064; i++ {
		recs[i].Device = "Quantos"
		recs[i].Name = "tare"
	}
	ingest(t, db, recs, 64)

	all := 0
	for _, s := range db.segs {
		all += len(s.index.blocks)
	}
	plans, _ := db.plan(Query{Key: "Quantos.tare"})
	cand := 0
	for _, p := range plans {
		cand += len(p.blocks)
	}
	if cand == 0 || cand*4 > all {
		t.Errorf("indexed scan selects %d of %d blocks; want a small fraction", cand, all)
	}
	got, err := db.Collect(Query{Key: "Quantos.tare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Errorf("indexed scan returned %d records, want 64", len(got))
	}
}
