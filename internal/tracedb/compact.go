package tracedb

import (
	"fmt"
	"os"

	"rad/internal/store"
)

// CompactStats summarizes one Compact call (which may run several merge
// steps until no candidate run remains).
type CompactStats struct {
	Compactions int // merge steps executed
	SegmentsIn  int // source segments consumed
	SegmentsOut int // compacted segments produced (one per step)
	BlocksIn    int
	BlocksOut   int
	Records     int
	BytesIn     int64 // committed file bytes consumed
	BytesOut    int64 // committed file bytes produced
}

// compactHook, when non-nil, is invoked at the compactor's crash-window
// boundaries ("temp-written": output fsynced, rename pending; "renamed":
// output durable under its final name, in-memory swap pending). A non-nil
// error aborts the step with no cleanup — exactly the state a crash at that
// point leaves on disk — so the recovery tests can exercise both windows.
var compactHook func(stage string) error

// Compact merges runs of fragmented sealed segments — segments whose
// average block payload is far below the target block size, the debris of
// small Batcher flushes — into dense, freshly indexed segments. It runs
// concurrently with the writer and with readers: sources are immutable
// while compaction reads them, the rewritten segment is swapped in under
// the write lock (copy-on-write), and retired source files are unlinked
// only once the last in-flight snapshot drains.
//
// Crash safety: the output is written and fsynced under a .tmp name, then
// renamed into place. A crash before the rename leaves only the temp file,
// which Open deletes; a crash after it leaves the compacted file alongside
// its sources, and Open discards the sources as covered duplicates.
func (db *DB) Compact() (CompactStats, error) {
	db.lcMu.Lock()
	defer db.lcMu.Unlock()
	var stats CompactStats
	for {
		step, ok, err := db.compactOnce()
		if err != nil {
			return stats, err
		}
		if !ok {
			// Sources with no snapshot in flight drained during the loop;
			// drop them from the retired bookkeeping now.
			db.mu.Lock()
			db.pruneRetiredLocked()
			db.mu.Unlock()
			return stats, nil
		}
		stats.Compactions++
		stats.SegmentsIn += step.SegmentsIn
		stats.SegmentsOut++
		stats.BlocksIn += step.BlocksIn
		stats.BlocksOut += step.BlocksOut
		stats.Records += step.Records
		stats.BytesIn += step.BytesIn
		stats.BytesOut += step.BytesOut
	}
}

// fragmented reports whether a sealed segment is a compaction source: it
// holds records and its average block payload is below the fragmentation
// threshold.
func fragmented(s *segment, fragBytes int64) bool {
	if s.index.count == 0 || len(s.index.blocks) == 0 {
		return false
	}
	var payload int64
	for i := range s.index.blocks {
		payload += int64(s.index.blocks[i].payloadLen)
	}
	return payload/int64(len(s.index.blocks)) < fragBytes
}

// compactOnce selects and merges one run of fragmented segments. ok is
// false when no candidate run exists.
func (db *DB) compactOnce() (stats CompactStats, ok bool, err error) {
	fragBytes := db.opts.Lifecycle.fragBytes()
	blockBytes := db.opts.Lifecycle.blockBytes()

	// Select the first maximal run of consecutive fragmented sealed
	// segments whose combined payload fits one output segment, and pin the
	// sources with snapshot references so retention in another process
	// cycle cannot unlink them mid-read. Compacted segments are archival —
	// they take no further writes — so they pack denser than live write
	// segments: up to four write-segments' payload per output file, which
	// is what lets a run of full-but-fragmented segments collapse into
	// fewer files rather than being rewritten one-for-one.
	maxPayload := 4 * db.opts.SegmentBytes
	var srcs []*segment
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return stats, false, ErrClosed
	}
	sealed := db.segs[:len(db.segs)-1]
	payloadOf := func(s *segment) int64 {
		var p int64
		for i := range s.index.blocks {
			p += int64(s.index.blocks[i].payloadLen)
		}
		return p
	}
	for i := 0; i < len(sealed) && srcs == nil; i++ {
		if !fragmented(sealed[i], fragBytes) {
			continue
		}
		var run []*segment
		var payload int64
		blocksIn := 0
		for j := i; j < len(sealed); j++ {
			s := sealed[j]
			if !fragmented(s, fragBytes) {
				break
			}
			p := payloadOf(s)
			if len(run) > 0 && payload+p > maxPayload {
				break
			}
			run = append(run, s)
			payload += p
			blocksIn += len(s.index.blocks)
		}
		// A run earns a rewrite when it merges files, or — for a lone
		// plain segment — when re-blocking likely reduces the block count.
		// A lone compacted segment is never re-selected: estOut derives
		// from encoded bytes while the rewrite splits batches on the
		// conservative recordSizeEstimate, so a fresh compactor output can
		// keep both its block count and its range-derived file name —
		// re-selecting it would livelock the maintenance loop and rename
		// the rewrite over its own source.
		estOut := int(payload/blockBytes) + 1
		if len(run) >= 2 || (!run[0].compacted && blocksIn > estOut) {
			srcs = run
		} else {
			i += len(run) - 1
		}
	}
	if srcs == nil {
		db.mu.RUnlock()
		return stats, false, nil
	}
	for _, s := range srcs {
		s.acquire()
	}
	db.mu.RUnlock()
	defer func() {
		for _, s := range srcs {
			s.release()
		}
	}()

	// Read every source block (sources are sealed, so no lock is needed)
	// and rewrite the records as dense target-size blocks under a temp
	// name, rebuilding tight posting lists and time bounds as we go.
	lo, hi := srcs[0].id, srcs[len(srcs)-1].hi
	finalPath := compactedPath(db.dir, lo, hi)
	for _, s := range srcs {
		if s.path == finalPath {
			// Impossible by selection (only a multi-segment run can start
			// with a compacted segment, and then hi exceeds its range), but
			// renaming the output over a live source would unlink the fresh
			// data when the source retires — refuse outright.
			return stats, false, fmt.Errorf("tracedb: compaction output %s would overwrite its own source", finalPath)
		}
	}
	tmpPath := finalPath + tmpSuffix
	out, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return stats, false, fmt.Errorf("tracedb: create compaction temp: %w", err)
	}
	cleanup := func(e error) (CompactStats, bool, error) {
		out.Close()
		os.Remove(tmpPath)
		return stats, false, e
	}
	if _, err := out.WriteAt([]byte(segMagic), 0); err != nil {
		return cleanup(fmt.Errorf("tracedb: write compaction header: %w", err))
	}
	ns := &segment{id: lo, hi: hi, path: finalPath, f: out, compacted: true,
		size: int64(len(segMagic)), index: newSegmentIndex()}
	ns.refs.Store(1)

	var batch []store.Record
	var batchBytes int
	var encBuf []byte
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		encBuf = encodePayload(encBuf[:0], batch)
		if err := ns.appendBlock(encBuf, batch); err != nil {
			return err
		}
		stats.BlocksOut++
		batch, batchBytes = batch[:0], 0
		return nil
	}
	for _, s := range srcs {
		stats.SegmentsIn++
		stats.BlocksIn += len(s.index.blocks)
		stats.BytesIn += s.size
		for _, m := range s.index.blocks {
			recs, err := s.readBlock(m)
			if err != nil {
				return cleanup(fmt.Errorf("tracedb: compaction read: %w", err))
			}
			for i := range recs {
				est := recordSizeEstimate(recs[i])
				if int64(batchBytes+est) > blockBytes && len(batch) > 0 {
					if err := flushBatch(); err != nil {
						return cleanup(err)
					}
				}
				batch = append(batch, recs[i])
				batchBytes += est
				stats.Records++
			}
		}
	}
	if err := flushBatch(); err != nil {
		return cleanup(err)
	}
	if err := out.Sync(); err != nil {
		return cleanup(fmt.Errorf("tracedb: sync compaction temp: %w", err))
	}
	stats.BytesOut = ns.size

	if compactHook != nil {
		if err := compactHook("temp-written"); err != nil {
			return stats, false, err // simulated crash: leave the temp file
		}
	}
	if err := os.Rename(tmpPath, finalPath); err != nil {
		return cleanup(fmt.Errorf("tracedb: install compacted segment: %w", err))
	}
	syncDir(db.dir)
	if compactHook != nil {
		if err := compactHook("renamed"); err != nil {
			return stats, false, err // simulated crash: sources still live
		}
	}

	// Swap: splice the compacted segment in place of its sources under the
	// write lock, then retire the sources. Readers planned before the swap
	// keep their references; new plans see only the compacted segment.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		out.Close()
		// The renamed file is durable and consistent; the next Open adopts
		// it and discards the covered sources.
		return stats, false, ErrClosed
	}
	i0 := -1
	for i, s := range db.segs {
		if s == srcs[0] {
			i0 = i
			break
		}
	}
	if i0 < 0 || i0+len(srcs) > len(db.segs) {
		db.mu.Unlock()
		return cleanup(fmt.Errorf("tracedb: compaction sources vanished"))
	}
	for i, s := range srcs {
		if db.segs[i0+i] != s {
			db.mu.Unlock()
			return cleanup(fmt.Errorf("tracedb: compaction sources reordered"))
		}
	}
	segs := make([]*segment, 0, len(db.segs)-len(srcs)+1)
	segs = append(segs, db.segs[:i0]...)
	segs = append(segs, ns)
	segs = append(segs, db.segs[i0+len(srcs):]...)
	db.segs = segs
	for _, s := range srcs {
		s.retired.Store(true)
		db.retired = append(db.retired, s)
	}
	db.pruneRetiredLocked()
	db.mu.Unlock()

	// Drop the DB's ownership reference on each source (the deferred
	// release drops the selection reference); the files unlink once the
	// last in-flight snapshot drains.
	for _, s := range srcs {
		s.release()
	}

	db.lcStats.compactions.Add(1)
	db.lcStats.blocksMerged.Add(uint64(stats.BlocksIn))
	db.lcStats.segmentsRetired.Add(uint64(stats.SegmentsIn))
	if d := stats.BytesIn - stats.BytesOut; d > 0 {
		db.lcStats.bytesReclaimed.Add(uint64(d))
	}
	return stats, true, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss;
// errors are ignored (the rename itself is already atomic on crash-free
// filesystems, and recovery tolerates a missing file).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// pruneRetiredLocked drops drained entries from the retired list so a
// long-lived store does not accumulate bookkeeping. Caller holds db.mu.
func (db *DB) pruneRetiredLocked() {
	k := 0
	for _, s := range db.retired {
		if s.refs.Load() > 0 {
			db.retired[k] = s
			k++
		}
	}
	db.retired = db.retired[:k]
}
