package tracedb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rad/internal/simclock"
	"rad/internal/store"
)

// lcRecords builds n records with deterministic devices, keys, runs, and
// strictly increasing times starting at base, i seconds apart.
func lcRecords(n int, base time.Time) []store.Record {
	devices := []string{"UR3e", "C9", "IKA", "Quantos", "Tecan"}
	recs := make([]store.Record, n)
	for i := range recs {
		dev := devices[i%len(devices)]
		recs[i] = store.Record{
			Time:      base.Add(time.Duration(i) * time.Second),
			EndTime:   base.Add(time.Duration(i)*time.Second + 50*time.Millisecond),
			Device:    dev,
			Name:      fmt.Sprintf("cmd%d", i%7),
			Args:      []string{fmt.Sprintf("a%d", i)},
			Response:  "ok",
			Procedure: fmt.Sprintf("P%d", i%3+1),
			Run:       fmt.Sprintf("run-%d", i/50),
			Mode:      "DIRECT",
		}
	}
	return recs
}

// ingestSmallBlocks appends recs in tiny batches, the shape a chatty
// Batcher leaves behind: every batch is one small on-disk block.
func ingestSmallBlocks(t testing.TB, db *DB, recs []store.Record, perBlock int) {
	t.Helper()
	for i := 0; i < len(recs); i += perBlock {
		j := i + perBlock
		if j > len(recs) {
			j = len(recs)
		}
		if err := db.AppendBatch(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
}

// canonical renders a record set in the store's canonical block encoding —
// the byte-identity oracle for before/after comparisons.
func canonical(t testing.TB, recs []store.Record) []byte {
	t.Helper()
	return encodePayload(nil, recs)
}

func collectAll(t testing.TB, db *DB) []store.Record {
	t.Helper()
	recs, err := db.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestCompactMergesSmallBlocks(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	recs := lcRecords(2000, time.Unix(1000, 0))
	ingestSmallBlocks(t, db, recs, 4) // 500 tiny blocks over many segments
	before := collectAll(t, db)
	if len(before) != len(recs) {
		t.Fatalf("ingested %d records, collected %d", len(recs), len(before))
	}
	segsBefore := db.Segments()
	blocksBefore := db.indexBlocks()

	stats, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compactions == 0 {
		t.Fatalf("no compaction ran over %d segments / %d blocks", segsBefore, blocksBefore)
	}
	if stats.Records != len(recs)-stats.Records && stats.Records == 0 {
		t.Fatalf("compaction rewrote no records")
	}
	if db.indexBlocks() >= blocksBefore {
		t.Fatalf("blocks did not shrink: %d -> %d", blocksBefore, db.indexBlocks())
	}
	if db.Segments() >= segsBefore {
		t.Fatalf("segments did not shrink: %d -> %d", segsBefore, db.Segments())
	}

	after := collectAll(t, db)
	if !bytes.Equal(canonical(t, before), canonical(t, after)) {
		t.Fatalf("query results changed across compaction: %d vs %d records", len(before), len(after))
	}

	// Durability: reopen and compare again; the covered sources are gone.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reopened := collectAll(t, db2)
	if !bytes.Equal(canonical(t, before), canonical(t, reopened)) {
		t.Fatalf("reopened store differs after compaction")
	}
	// Ingest continues cleanly after a compaction: sequence numbers resume.
	if err := db2.AppendBatch(lcRecords(8, time.Unix(5000, 0))); err != nil {
		t.Fatal(err)
	}
	if got := db2.Len(); got != len(recs)+8 {
		t.Fatalf("post-compaction append: Len %d, want %d", got, len(recs)+8)
	}
}

func TestCompactIdempotentWhenDense(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestSmallBlocks(t, db, lcRecords(1000, time.Unix(1000, 0)), 4)
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	stats, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compactions != 0 {
		t.Fatalf("second compaction re-ran %d steps on a dense store", stats.Compactions)
	}
}

// TestCompactKeepsSnapshotReadable pins the copy-on-write contract: an
// iterator planned before a compaction drains the pre-compaction bytes it
// planned, the retired source files are unlinked only after it finishes,
// and the results are byte-identical to a pre-compaction scan.
func TestCompactKeepsSnapshotReadable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs := lcRecords(1500, time.Unix(1000, 0))
	ingestSmallBlocks(t, db, recs, 4)
	want := canonical(t, collectAll(t, db))

	// Record the source segment paths, then open the snapshot.
	db.mu.RLock()
	var paths []string
	for _, s := range db.segs[:len(db.segs)-1] {
		paths = append(paths, s.path)
	}
	db.mu.RUnlock()
	it := db.Scan(Query{})
	if !it.Next() {
		t.Fatal("empty snapshot")
	}

	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// The snapshot still pins the retired sources on disk.
	pinned := 0
	for _, p := range paths {
		if _, err := os.Stat(p); err == nil {
			pinned++
		}
	}
	if pinned == 0 {
		t.Fatalf("all %d source files unlinked under a live snapshot", len(paths))
	}

	got := []store.Record{it.Record()}
	for it.Next() {
		got = append(got, it.Record())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("snapshot read after compaction: %v", err)
	}
	if !bytes.Equal(want, canonical(t, got)) {
		t.Fatalf("snapshot drained different records after compaction")
	}
	// Drained: the retired sources are gone now.
	for _, p := range paths {
		if _, err := os.Stat(p); err == nil {
			t.Fatalf("retired segment %s still on disk after snapshot drained", p)
		}
	}
}

// TestCompactCrashBeforeRenameRecovers simulates dying after the compacted
// temp file is written but before the rename: the temp is debris, the
// sources are authoritative, and reopening loses nothing.
func TestCompactCrashBeforeRenameRecovers(t *testing.T) {
	testCompactCrash(t, "temp-written")
}

// TestCompactCrashAfterRenameRecovers simulates dying after the rename but
// before the sources are unlinked: the compacted segment is authoritative
// and the covered sources are discarded, not double-counted.
func TestCompactCrashAfterRenameRecovers(t *testing.T) {
	testCompactCrash(t, "renamed")
}

func testCompactCrash(t *testing.T, stage string) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	recs := lcRecords(1200, time.Unix(1000, 0))
	ingestSmallBlocks(t, db, recs, 4)
	want := canonical(t, collectAll(t, db))

	boom := errors.New("simulated crash")
	compactHook = func(s string) error {
		if s == stage {
			return boom
		}
		return nil
	}
	defer func() { compactHook = nil }()
	if _, err := db.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want simulated crash", err)
	}
	compactHook = nil
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if stage == "temp-written" {
		// The crash window left a temp file behind.
		tmps, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix))
		if len(tmps) == 0 {
			t.Fatalf("crash at %q left no temp file", stage)
		}
	} else {
		// The crash window left the compacted file alongside its sources.
		cpts, _ := filepath.Glob(filepath.Join(dir, "seg-*-*.seg"))
		if len(cpts) == 0 {
			t.Fatalf("crash at %q left no compacted file", stage)
		}
	}

	db2, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatalf("recovery after crash at %q: %v", stage, err)
	}
	defer db2.Close()
	got := canonical(t, collectAll(t, db2))
	if !bytes.Equal(want, got) {
		t.Fatalf("store differs after crash at %q: %d vs %d bytes", stage, len(want), len(got))
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix))
	if len(tmps) != 0 {
		t.Fatalf("recovery left temp debris: %v", tmps)
	}
	// The store compacts cleanly after recovery.
	if _, err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, collectAll(t, db2))) {
		t.Fatalf("store differs after post-recovery compaction")
	}
}

func TestRetainMaxAge(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(1_000_000, 0)
	clock := simclock.NewVirtual(base.Add(3000 * time.Second))
	db, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Clock:        clock,
		Lifecycle:    LifecycleOptions{RetainMaxAge: 1000 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs := lcRecords(2000, base) // spans [base, base+2000s); horizon is base+2000s
	ingestSmallBlocks(t, db, recs, 4)
	before := collectAll(t, db)

	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired == 0 || stats.RecordsDropped == 0 {
		t.Fatalf("retention retired nothing: %+v", stats)
	}
	horizon := base.Add(2000 * time.Second)
	if !stats.Horizon.Equal(horizon) {
		t.Fatalf("horizon %v, want %v", stats.Horizon, horizon)
	}

	after := collectAll(t, db)
	if len(after)+stats.RecordsDropped != len(recs) {
		t.Fatalf("dropped %d + kept %d != %d ingested", stats.RecordsDropped, len(after), len(recs))
	}
	// Whole-segment deletion drops a prefix of the sequence order: the
	// survivors are exactly the suffix of the pre-retention contents,
	// byte-identical — no gap, no mutation.
	want := before[len(before)-len(after):]
	if !bytes.Equal(canonical(t, want), canonical(t, after)) {
		t.Fatalf("survivors are not the ingested suffix")
	}
	for i := 1; i < len(after); i++ {
		if after[i].Seq != after[i-1].Seq+1 {
			t.Fatalf("retention tore a seq gap inside survivors: %d -> %d", after[i-1].Seq, after[i].Seq)
		}
	}

	// Reopen: the retired segments stay gone.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reopened := collectAll(t, db2)
	if !bytes.Equal(canonical(t, after), canonical(t, reopened)) {
		t.Fatalf("reopened store differs after retention")
	}
}

func TestRetainMaxBytes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Lifecycle:    LifecycleOptions{RetainMaxBytes: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs := lcRecords(3000, time.Unix(1000, 0))
	ingestSmallBlocks(t, db, recs, 8)
	before := db.sizeBytes()
	if before <= 64<<10 {
		t.Fatalf("store too small to exercise the byte budget: %d", before)
	}

	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired == 0 {
		t.Fatal("byte-budget retention retired nothing")
	}
	if got := db.sizeBytes(); got > 64<<10 {
		t.Fatalf("store still %d bytes after retention (budget %d)", got, 64<<10)
	}
	after := collectAll(t, db)
	for i := 1; i < len(after); i++ {
		if after[i].Seq != after[i-1].Seq+1 {
			t.Fatalf("seq gap inside survivors: %d -> %d", after[i-1].Seq, after[i].Seq)
		}
	}
	// The active segment is never retired: the newest records survive.
	if after[len(after)-1].Seq != uint64(len(recs)-1) {
		t.Fatalf("newest record lost: tail seq %d, want %d", after[len(after)-1].Seq, len(recs)-1)
	}
}

func TestRetainNoPolicyIsNoop(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestSmallBlocks(t, db, lcRecords(100, time.Unix(1000, 0)), 10)
	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired != 0 || stats.RecordsDropped != 0 {
		t.Fatalf("no-policy retention did work: %+v", stats)
	}
}

// TestRetainKeepsSnapshotReadable: retention under a live snapshot defers
// the unlink until the snapshot drains, and the snapshot sees every record
// it planned — the gap-free guarantee a concurrent tail relies on.
func TestRetainKeepsSnapshotReadable(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(1_000_000, 0)
	clock := simclock.NewVirtual(base.Add(3000 * time.Second))
	db, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Clock:        clock,
		Lifecycle:    LifecycleOptions{RetainMaxAge: 500 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs := lcRecords(2000, base)
	ingestSmallBlocks(t, db, recs, 4)
	want := canonical(t, collectAll(t, db))

	it := db.Scan(Query{})
	if !it.Next() {
		t.Fatal("empty snapshot")
	}
	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired == 0 {
		t.Fatal("retention retired nothing under snapshot")
	}
	got := []store.Record{it.Record()}
	for it.Next() {
		got = append(got, it.Record())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("snapshot read after retention: %v", err)
	}
	if !bytes.Equal(want, canonical(t, got)) {
		t.Fatalf("snapshot lost records to retention: %d of %d", len(got), len(recs))
	}
	// New scans see only the survivors.
	if fresh := collectAll(t, db); len(fresh) != len(recs)-stats.RecordsDropped {
		t.Fatalf("fresh scan sees %d records, want %d", len(fresh), len(recs)-stats.RecordsDropped)
	}
}

func TestLifecycleBackgroundLoop(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Lifecycle:    LifecycleOptions{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := lcRecords(2000, time.Unix(1000, 0))
	ingestSmallBlocks(t, db, recs, 4)
	blocksBefore := db.indexBlocks()

	deadline := time.Now().Add(5 * time.Second)
	for db.lcStats.compactions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if db.lcStats.compactions.Load() == 0 {
		t.Fatal("background loop never compacted")
	}
	if err := db.Close(); err != nil { // stops the loop; must not deadlock
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := len(collectAll(t, db2)); got != len(recs) {
		t.Fatalf("background compaction lost records: %d of %d", got, len(recs))
	}
	if db2.indexBlocks() >= blocksBefore {
		t.Fatalf("background compaction did not densify: %d -> %d blocks", blocksBefore, db2.indexBlocks())
	}
}

func TestLifecycleInfo(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(1_000_000, 0)
	// Horizon lands at base+1500s: the oldest sealed segments expire but
	// fragmented sealed survivors remain for the compactor.
	clock := simclock.NewVirtual(base.Add(2500 * time.Second))
	db, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Clock:        clock,
		Lifecycle:    LifecycleOptions{RetainMaxAge: 1000 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestSmallBlocks(t, db, lcRecords(2000, base), 4)

	info := db.Lifecycle()
	if info.Records != 2000 {
		t.Fatalf("info.Records = %d", info.Records)
	}
	if info.Blocks.Fragmented == 0 || info.Blocks.AvgBytes >= DefaultCompactFragBytes {
		t.Fatalf("small-flush store not seen as fragmented: %+v", info.Blocks)
	}
	if info.ExpiredBytes == 0 {
		t.Fatal("age policy reports nothing expired")
	}
	if info.RetentionHorizon.IsZero() {
		t.Fatal("retention horizon missing")
	}

	if _, _, err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	info = db.Lifecycle()
	if info.Compactions == 0 && info.SegmentsRetired == 0 {
		t.Fatalf("lifecycle totals empty after Maintain: %+v", info)
	}
	if info.CompactedSegments == 0 {
		t.Fatalf("no compacted segment live after Maintain")
	}
}

// TestCompactLoneCompactedNotReselected pins the livelock fix: with the
// fragmentation threshold raised to the block target, every segment —
// including a fresh compactor output — looks fragmented, and because the
// rewrite splits batches on the conservative recordSizeEstimate the output
// can keep the same block count (and the same range-derived file name) as
// its input. A lone compacted segment must therefore never be selected
// again: re-compacting it would loop forever under lcMu (deadlocking
// Close) and rename the rewrite over its own source, unlinking the live
// file when the source retires.
func TestCompactLoneCompactedNotReselected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		SegmentBytes: 16 << 10,
		Lifecycle: LifecycleOptions{
			CompactBlockBytes: 64 << 10,
			CompactFragBytes:  64 << 10, // everything qualifies as fragmented
		},
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs := lcRecords(1500, time.Unix(1000, 0))
	ingestSmallBlocks(t, db, recs, 4)
	want := canonical(t, collectAll(t, db))

	type result struct {
		stats CompactStats
		err   error
	}
	run := func() result {
		done := make(chan result, 1)
		go func() {
			stats, err := db.Compact()
			done <- result{stats, err}
		}()
		select {
		case r := <-done:
			return r
		case <-time.After(30 * time.Second):
			t.Fatal("Compact livelocked re-selecting its own output")
			panic("unreachable")
		}
	}
	if r := run(); r.err != nil {
		t.Fatal(r.err)
	} else if r.stats.Compactions == 0 {
		t.Fatal("first compaction pass did nothing")
	}
	// A second pass finds nothing: lone compacted survivors stay put.
	if r := run(); r.err != nil {
		t.Fatal(r.err)
	} else if r.stats.Compactions != 0 {
		t.Fatalf("lone compacted segment re-selected: %+v", r.stats)
	}
	if !bytes.Equal(want, canonical(t, collectAll(t, db))) {
		t.Fatal("records changed across compaction passes")
	}

	// Durability: nothing was renamed over a live source, so a reopen sees
	// every record.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !bytes.Equal(want, canonical(t, collectAll(t, db2))) {
		t.Fatal("reopened store lost records after repeated compaction")
	}
}

// TestRetainAgePrefixOnly: Record.Time is not monotonic across segments —
// a replayed campaign can land old timestamps after new ones — so age
// retention must stop at the first sealed segment inside the horizon
// rather than carving expired segments out of the middle, which would tear
// a sequence gap into the survivors.
func TestRetainAgePrefixOnly(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(1_000_000, 0)
	clock := simclock.NewVirtual(base.Add(5000 * time.Second))
	db, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Clock:        clock,
		Lifecycle:    LifecycleOptions{RetainMaxAge: 2000 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// First and last thirds sit past the horizon (base+3000s); the middle
	// third is fresh. Only leading expired segments may be retired.
	recs := lcRecords(2100, base)
	for i := 700; i < 1400; i++ {
		recs[i].Time = base.Add(4000 * time.Second)
		recs[i].EndTime = recs[i].Time.Add(50 * time.Millisecond)
	}
	ingestSmallBlocks(t, db, recs, 4)

	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired == 0 {
		t.Fatal("no leading expired segment retired")
	}
	after := collectAll(t, db)
	if len(after) == 0 {
		t.Fatal("retention dropped everything")
	}
	if got, want := after[len(after)-1].Seq, uint64(len(recs)-1); got != want {
		t.Fatalf("newest record lost: tail seq %d, want %d", got, want)
	}
	for i := 1; i < len(after); i++ {
		if after[i].Seq != after[i-1].Seq+1 {
			t.Fatalf("age retention tore a seq gap: %d -> %d", after[i-1].Seq, after[i].Seq)
		}
	}
}

// TestRetainPersistsSeqFloor: retention that retires every record-bearing
// segment while the active segment is empty (its tail was torn and
// truncated on a prior open) must not let sequence numbering restart at
// zero on reopen — the floor persisted at retirement time keeps seqs
// strictly increasing across the store's whole history.
func TestRetainPersistsSeqFloor(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(1_000_000, 0)
	db, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ingestSmallBlocks(t, db, lcRecords(1000, base), 4)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the active segment down to its bare header: its records are
	// lost, so recovery's max surviving seq undershoots the true maximum.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	activePath := ""
	maxID := -1
	for _, e := range entries {
		if lo, _, compacted, ok := parseSegmentName(e.Name()); ok && !compacted && lo > maxID {
			maxID, activePath = lo, filepath.Join(dir, e.Name())
		}
	}
	if err := os.Truncate(activePath, int64(len(segMagic))); err != nil {
		t.Fatal(err)
	}

	clock := simclock.NewVirtual(base.Add(1_000_000 * time.Second))
	db2, err := Open(dir, Options{
		SegmentBytes: 16 << 10,
		Clock:        clock,
		Lifecycle:    LifecycleOptions{RetainMaxAge: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	surviving := collectAll(t, db2)
	if len(surviving) == 0 {
		t.Fatal("truncation left nothing to retire")
	}
	wantSeq := surviving[len(surviving)-1].Seq + 1
	stats, err := db2.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsDropped != len(surviving) {
		t.Fatalf("retention dropped %d of %d records", stats.RecordsDropped, len(surviving))
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := Open(dir, Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if err := db3.AppendBatch(lcRecords(1, base.Add(2_000_000*time.Second))); err != nil {
		t.Fatal(err)
	}
	got := collectAll(t, db3)
	if len(got) != 1 || got[0].Seq != wantSeq {
		t.Fatalf("post-retention reopen assigned seq %d (%d records), want %d",
			got[0].Seq, len(got), wantSeq)
	}
}

// TestLifecycleInfoByteBudgetSealedOnly: the byte-policy reclaim estimate
// mirrors Retain, which only ever retires sealed segments — a store whose
// budget overage lives entirely in the active segment has nothing
// reclaimable, and -mode info must say so.
func TestLifecycleInfoByteBudgetSealedOnly(t *testing.T) {
	db, err := Open(t.TempDir(), Options{
		Lifecycle: LifecycleOptions{RetainMaxBytes: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Default 4MB rotation: everything lands in the single active segment.
	ingestSmallBlocks(t, db, lcRecords(500, time.Unix(1000, 0)), 10)
	if db.Segments() != 1 {
		t.Fatalf("expected a single active segment, have %d", db.Segments())
	}
	info := db.Lifecycle()
	if info.LiveBytes <= 1024 {
		t.Fatalf("store under budget: %d bytes", info.LiveBytes)
	}
	if info.ExpiredBytes != 0 {
		t.Fatalf("ExpiredBytes = %d counts the untouchable active segment", info.ExpiredBytes)
	}
	stats, err := db.Retain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsRetired != 0 {
		t.Fatalf("retention touched the active segment: %+v", stats)
	}
}

func TestParseSegmentName(t *testing.T) {
	cases := []struct {
		name      string
		lo, hi    int
		compacted bool
		ok        bool
	}{
		{"seg-00000000.seg", 0, 0, false, true},
		{"seg-00000042.seg", 42, 42, false, true},
		{"seg-00000003-00000007.seg", 3, 7, true, true},
		{"seg-00000005-00000005.seg", 5, 5, true, true},
		{"seg-00000007-00000003.seg", 0, 0, false, false}, // inverted range
		{"seg-42.seg", 0, 0, false, false},
		{"seg-00000001.seg.tmp", 0, 0, false, false},
		{"seg-00000003-00000007.seg.tmp", 0, 0, false, false},
		{"other.txt", 0, 0, false, false},
	}
	for _, c := range cases {
		lo, hi, compacted, ok := parseSegmentName(c.name)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi || compacted != c.compacted)) {
			t.Errorf("parseSegmentName(%q) = (%d,%d,%v,%v), want (%d,%d,%v,%v)",
				c.name, lo, hi, compacted, ok, c.lo, c.hi, c.compacted, c.ok)
		}
	}
}
