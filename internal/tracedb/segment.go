package tracedb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"rad/internal/store"
)

// segment is one on-disk file of record blocks plus its in-memory index.
// The writer appends blocks at the committed tail of the active (last)
// segment with WriteAt; readers use ReadAt at offsets below the committed
// size, so concurrent reads never race the writer. Sealed segments (all but
// the last) are immutable until the lifecycle engine retires them.
//
// Lifecycle: refs counts the owners of the segment — the DB itself plus
// every in-flight scan snapshot that planned blocks from it. Compaction and
// retention retire a segment by dropping the DB's reference; the file is
// closed, and unlinked, only when the last snapshot drains, so an iterator
// opened before a compaction keeps reading the pre-compaction bytes it
// planned (copy-on-write segment swap).
type segment struct {
	id    int // lowest plain-segment id this file covers
	hi    int // highest covered id; == id unless the file was compacted
	path  string
	f     *os.File
	size  int64 // committed bytes, including the magic header
	index segmentIndex

	refs      atomic.Int32 // DB ownership + in-flight snapshots
	retired   atomic.Bool  // unlink (not just close) once refs drains
	compacted bool         // produced by the compactor (range-named file)
}

// acquire adds a snapshot reference; the segment's file stays open (and on
// disk) until a matching release.
func (s *segment) acquire() { s.refs.Add(1) }

// release drops one reference. When the last reference drains the file is
// closed, and removed if the segment was retired by compaction or
// retention. Close/remove errors are ignored: release races DB.Close by
// design, and both double-close and double-unlink are harmless.
func (s *segment) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	s.f.Close()
	if s.retired.Load() {
		os.Remove(s.path)
	}
}

// segmentPath returns the file name of plain segment id inside dir.
func segmentPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.seg", id))
}

// compactedPath returns the file name of a compacted segment covering plain
// ids [lo, hi] inside dir.
func compactedPath(dir string, lo, hi int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d-%08d.seg", lo, hi))
}

// tmpSuffix marks in-progress compaction outputs; Open deletes leftovers.
const tmpSuffix = ".tmp"

// parseSegmentName extracts the covered id range from a segment file name:
// seg-%08d.seg (a plain segment, lo == hi) or seg-%08d-%08d.seg (a
// compacted segment covering [lo, hi]). compacted reports which form
// matched.
func parseSegmentName(name string) (lo, hi int, compacted, ok bool) {
	if strings.HasSuffix(name, tmpSuffix) {
		return 0, 0, false, false
	}
	if _, err := fmt.Sscanf(name, "seg-%d-%d.seg", &lo, &hi); err == nil {
		if fmt.Sprintf("seg-%08d-%08d.seg", lo, hi) == name && lo <= hi {
			return lo, hi, true, true
		}
		return 0, 0, false, false
	}
	if _, err := fmt.Sscanf(name, "seg-%d.seg", &lo); err == nil {
		if fmt.Sprintf("seg-%08d.seg", lo) == name {
			return lo, lo, false, true
		}
	}
	return 0, 0, false, false
}

// createSegment creates a fresh plain segment file and writes its magic
// header.
func createSegment(dir string, id int) (*segment, error) {
	path := segmentPath(dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tracedb: create segment: %w", err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracedb: write segment header: %w", err)
	}
	s := &segment{
		id: id, hi: id, path: path, f: f,
		size:  int64(len(segMagic)),
		index: newSegmentIndex(),
	}
	s.refs.Store(1)
	return s, nil
}

// openSegment opens an existing segment file and recovers it: it scans the
// blocks in order, verifying each length and CRC32C and decoding each
// payload, stops at the first torn or corrupted block, truncates the file
// there, and rebuilds the in-memory index from the surviving blocks. A file
// with a missing or damaged magic header holds no committed records and is
// reset to an empty segment.
func openSegment(path string, lo, hi int, compacted bool) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("tracedb: open segment: %w", err)
	}
	s := &segment{id: lo, hi: hi, path: path, f: f, compacted: compacted, index: newSegmentIndex()}
	s.refs.Store(1)

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracedb: stat segment: %w", err)
	}
	fileSize := st.Size()

	hdr := make([]byte, len(segMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != segMagic {
		// Torn before the header finished: nothing was committed. Reset the
		// file to a valid empty segment.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("tracedb: reset torn segment: %w", err)
		}
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("tracedb: rewrite segment header: %w", err)
		}
		s.size = int64(len(segMagic))
		return s, nil
	}

	off := int64(len(segMagic))
	var bh [blockHeaderSize]byte
	for {
		if off+blockHeaderSize > fileSize {
			break // torn inside a block header
		}
		if _, err := f.ReadAt(bh[:], off); err != nil {
			break
		}
		payloadLen := int64(binary.BigEndian.Uint32(bh[0:4]))
		wantCRC := binary.BigEndian.Uint32(bh[4:8])
		if payloadLen == 0 || payloadLen > MaxBlockBytes {
			break // corrupted length field
		}
		if off+blockHeaderSize+payloadLen > fileSize {
			break // torn inside the payload
		}
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, off+blockHeaderSize); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			break // corrupted payload
		}
		recs, err := decodePayload(payload)
		if err != nil {
			break // checksum collision with a structurally broken payload
		}
		s.index.addBlock(off, int(payloadLen), wantCRC, recs)
		off += blockHeaderSize + payloadLen
	}
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("tracedb: truncate torn tail: %w", err)
		}
	}
	s.size = off
	return s, nil
}

// appendBlock writes recs (whose canonical payload encoding is payload) as
// one checksummed block at the committed tail. The committed size and index
// advance only after the whole frame is on the file, so a failed or partial
// write leaves the committed state untouched and the next Open truncates
// the debris.
func (s *segment) appendBlock(payload []byte, recs []store.Record) error {
	frame := make([]byte, blockHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	crc := crc32.Checksum(payload, castagnoli)
	binary.BigEndian.PutUint32(frame[4:8], crc)
	copy(frame[blockHeaderSize:], payload)
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		return fmt.Errorf("tracedb: append block: %w", err)
	}
	s.index.addBlock(s.size, len(payload), crc, recs)
	s.size += int64(len(frame))
	return nil
}

// readBlock reads one committed block, re-verifies its checksum against the
// indexed CRC, and decodes its records.
func (s *segment) readBlock(m blockMeta) ([]store.Record, error) {
	payload := make([]byte, m.payloadLen)
	if _, err := s.f.ReadAt(payload, m.off+blockHeaderSize); err != nil {
		return nil, fmt.Errorf("tracedb: read block at %d: %w", m.off, err)
	}
	if crc32.Checksum(payload, castagnoli) != m.crc {
		return nil, fmt.Errorf("tracedb: block at %d: checksum mismatch", m.off)
	}
	recs, err := decodePayload(payload)
	if err != nil {
		return nil, fmt.Errorf("tracedb: block at %d: %w", m.off, err)
	}
	return recs, nil
}
