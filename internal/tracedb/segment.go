package tracedb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"rad/internal/store"
)

// segment is one append-only on-disk file of record blocks plus its
// in-memory index. The writer appends blocks at the committed tail with
// WriteAt; readers use ReadAt at offsets below the committed size, so
// concurrent reads never race the writer.
type segment struct {
	id    int
	path  string
	f     *os.File
	size  int64 // committed bytes, including the magic header
	index segmentIndex
}

// segmentPath returns the file name of segment id inside dir.
func segmentPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.seg", id))
}

// parseSegmentID extracts the id from a segment file name, reporting whether
// the name matches the seg-%08d.seg pattern.
func parseSegmentID(name string) (int, bool) {
	var id int
	if _, err := fmt.Sscanf(name, "seg-%d.seg", &id); err != nil {
		return 0, false
	}
	return id, fmt.Sprintf("seg-%08d.seg", id) == name
}

// createSegment creates a fresh segment file and writes its magic header.
func createSegment(dir string, id int) (*segment, error) {
	path := segmentPath(dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tracedb: create segment: %w", err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracedb: write segment header: %w", err)
	}
	return &segment{
		id: id, path: path, f: f,
		size:  int64(len(segMagic)),
		index: newSegmentIndex(),
	}, nil
}

// openSegment opens an existing segment file and recovers it: it scans the
// blocks in order, verifying each length and CRC32C and decoding each
// payload, stops at the first torn or corrupted block, truncates the file
// there, and rebuilds the in-memory index from the surviving blocks. A file
// with a missing or damaged magic header holds no committed records and is
// reset to an empty segment.
func openSegment(path string, id int) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("tracedb: open segment: %w", err)
	}
	s := &segment{id: id, path: path, f: f, index: newSegmentIndex()}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracedb: stat segment: %w", err)
	}
	fileSize := st.Size()

	hdr := make([]byte, len(segMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != segMagic {
		// Torn before the header finished: nothing was committed. Reset the
		// file to a valid empty segment.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("tracedb: reset torn segment: %w", err)
		}
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("tracedb: rewrite segment header: %w", err)
		}
		s.size = int64(len(segMagic))
		return s, nil
	}

	off := int64(len(segMagic))
	var bh [blockHeaderSize]byte
	for {
		if off+blockHeaderSize > fileSize {
			break // torn inside a block header
		}
		if _, err := f.ReadAt(bh[:], off); err != nil {
			break
		}
		payloadLen := int64(binary.BigEndian.Uint32(bh[0:4]))
		wantCRC := binary.BigEndian.Uint32(bh[4:8])
		if payloadLen == 0 || payloadLen > MaxBlockBytes {
			break // corrupted length field
		}
		if off+blockHeaderSize+payloadLen > fileSize {
			break // torn inside the payload
		}
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, off+blockHeaderSize); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			break // corrupted payload
		}
		recs, err := decodePayload(payload)
		if err != nil {
			break // checksum collision with a structurally broken payload
		}
		s.index.addBlock(off, int(payloadLen), wantCRC, recs)
		off += blockHeaderSize + payloadLen
	}
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("tracedb: truncate torn tail: %w", err)
		}
	}
	s.size = off
	return s, nil
}

// appendBlock writes recs (whose canonical payload encoding is payload) as
// one checksummed block at the committed tail. The committed size and index
// advance only after the whole frame is on the file, so a failed or partial
// write leaves the committed state untouched and the next Open truncates
// the debris.
func (s *segment) appendBlock(payload []byte, recs []store.Record) error {
	frame := make([]byte, blockHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	crc := crc32.Checksum(payload, castagnoli)
	binary.BigEndian.PutUint32(frame[4:8], crc)
	copy(frame[blockHeaderSize:], payload)
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		return fmt.Errorf("tracedb: append block: %w", err)
	}
	s.index.addBlock(s.size, len(payload), crc, recs)
	s.size += int64(len(frame))
	return nil
}

// readBlock reads one committed block, re-verifies its checksum against the
// indexed CRC, and decodes its records.
func (s *segment) readBlock(m blockMeta) ([]store.Record, error) {
	payload := make([]byte, m.payloadLen)
	if _, err := s.f.ReadAt(payload, m.off+blockHeaderSize); err != nil {
		return nil, fmt.Errorf("tracedb: read block at %d: %w", m.off, err)
	}
	if crc32.Checksum(payload, castagnoli) != m.crc {
		return nil, fmt.Errorf("tracedb: block at %d: checksum mismatch", m.off)
	}
	recs, err := decodePayload(payload)
	if err != nil {
		return nil, fmt.Errorf("tracedb: block at %d: %w", m.off, err)
	}
	return recs, nil
}
