package tracedb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rad/internal/parallel"
	"rad/internal/simclock"
	"rad/internal/store"
)

// Options tunes a DB. The zero value selects the defaults.
type Options struct {
	// SegmentBytes is the size threshold at which the active segment is
	// rotated; a block never spans segments, so a segment may exceed the
	// threshold by at most one block. It also caps how much source payload
	// one compaction step merges into a single output segment. Defaults to
	// DefaultSegmentBytes.
	SegmentBytes int64
	// BlockRecords is the number of per-record Append calls staged before
	// they are automatically flushed as one block. Defaults to
	// store.DefaultBatchSize. AppendBatch always lands as its own block
	// (the store.Batcher flush boundary) regardless of this setting.
	BlockRecords int
	// Clock is the time source for observability timings (recovery,
	// append, and flush latency histograms — see Observe) and for the
	// retention age horizon. It never affects the append path. Defaults to
	// the real clock; campaigns under a virtual clock pass theirs so the
	// timing metrics and retention horizon stay deterministic.
	Clock simclock.Clock
	// Lifecycle configures background compaction and retention; the zero
	// value keeps the store append-only.
	Lifecycle LifecycleOptions
}

// DefaultSegmentBytes is the default segment rotation threshold.
const DefaultSegmentBytes = 4 << 20

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("tracedb: database is closed")

// DB is an embedded, persistent trace store. It implements store.Sink and
// store.BatchSink, assigning sequence numbers exactly like MemStore, so it
// drops in as the middlebox's primary sink. One writer and any number of
// concurrent readers are safe; readers observe a consistent snapshot taken
// at Scan/Collect time (committed blocks plus the staged per-record
// appends). The lifecycle engine (Compact, Retain, and the background loop
// armed by Options.Lifecycle.Interval) rewrites and retires segments
// concurrently with both.
type DB struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	segs     []*segment
	retired  []*segment     // retired but still pinned by in-flight snapshots
	pending  []store.Record // staged per-record appends, not yet in a block
	encBuf   []byte         // reusable payload encode buffer (writer-only)
	nextSeq  uint64
	seqFloor uint64 // persisted lower bound for nextSeq (see Retain)
	closed   bool
	onCommit func(recs []store.Record)

	// Lifecycle engine state: lcMu single-flights Compact/Retain, lcStats
	// are the always-on counters, lcStop/lcDone bracket the background
	// loop.
	lcMu    sync.Mutex
	lcStats lifecycleStats
	lcStop  chan struct{}
	lcDone  chan struct{}
	lcOnce  sync.Once

	// Observability (see obs.go). obs is nil until Observe; the write path
	// pays one nil check per call when unobserved. recovery is the wall
	// (or virtual) time Open spent CRC-verifying the existing segments.
	obs      *dbObs
	clock    simclock.Clock
	recovery time.Duration
}

var (
	_ store.Sink      = (*DB)(nil)
	_ store.BatchSink = (*DB)(nil)
	_ store.Notifier  = (*DB)(nil)
)

// segFile is one segment file discovered during recovery.
type segFile struct {
	name      string
	lo, hi    int
	compacted bool
}

// recoverDirEntries lists the segment files of dir in id order, deleting
// compaction debris first: .tmp outputs whose rename never happened, and
// segments wholly covered by a compacted segment (the crash window between
// the compactor's rename and the source unlink).
func recoverDirEntries(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracedb: %w", err)
	}
	var files []segFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A half-written compaction output: its sources are intact, so
			// the temp is pure debris.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if lo, hi, compacted, ok := parseSegmentName(name); ok {
			files = append(files, segFile{name: name, lo: lo, hi: hi, compacted: compacted})
		}
	}
	// Discard files covered by a (necessarily complete — it was renamed
	// into place) compacted segment. A plain segment with the same id range
	// as a compacted one is the pre-compaction original.
	covered := func(a, b segFile) bool {
		if a.name == b.name || !b.compacted {
			return false
		}
		if b.lo <= a.lo && a.hi <= b.hi {
			return a.lo != b.lo || a.hi != b.hi || !a.compacted
		}
		return false
	}
	kept := files[:0]
	for _, a := range files {
		superseded := false
		for _, b := range files {
			if covered(a, b) {
				superseded = true
				break
			}
		}
		if superseded {
			os.Remove(filepath.Join(dir, a.name))
			continue
		}
		kept = append(kept, a)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].lo < kept[j].lo })
	return kept, nil
}

// seqFloorFile is the sidecar recording the lowest sequence number the next
// Open may assign: retention writes it before retiring segments so that
// dropping every record-bearing segment can never rewind the numbering.
const seqFloorFile = "seqfloor"

// loadSeqFloor reads the persisted sequence floor; a missing or unreadable
// file means no retention has ever retired records (floor zero).
func loadSeqFloor(dir string) uint64 {
	b, err := os.ReadFile(filepath.Join(dir, seqFloorFile))
	if err != nil {
		return 0
	}
	floor, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0
	}
	return floor
}

// persistSeqFloor durably installs a new sequence floor (tmp + fsync +
// rename + directory sync, like a compacted segment). Retention calls it
// before any victim segment is dropped, so a crash at any point leaves
// either the old floor with the victims intact or the new floor — never a
// store that re-issues retired sequence numbers.
func persistSeqFloor(dir string, floor uint64) error {
	path := filepath.Join(dir, seqFloorFile)
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("tracedb: create seq floor: %w", err)
	}
	if _, err = fmt.Fprintf(f, "%d\n", floor); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracedb: write seq floor: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracedb: install seq floor: %w", err)
	}
	syncDir(dir)
	return nil
}

// Open opens (or creates) the store in dir, recovering every segment:
// half-finished compaction temps are discarded, segments superseded by a
// completed compaction are dropped, blocks are CRC-verified in parallel
// across segments, a torn tail is truncated, and sequence numbering resumes
// after the highest recovered record — never below the floor persisted by
// retention. When Options.Lifecycle.Interval is set, the background
// maintenance loop starts immediately.
func Open(dir string, opts Options) (*DB, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.BlockRecords <= 0 {
		opts.BlockRecords = store.DefaultBatchSize
	}
	if opts.Clock == nil {
		opts.Clock = simclock.Real{}
	}
	recoverStart := opts.Clock.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracedb: %w", err)
	}
	files, err := recoverDirEntries(dir)
	if err != nil {
		return nil, err
	}

	segs, err := parallel.Map(files, 0, func(_ int, sf segFile) (*segment, error) {
		return openSegment(filepath.Join(dir, sf.name), sf.lo, sf.hi, sf.compacted)
	})
	if err != nil {
		for _, s := range segs {
			if s != nil {
				s.f.Close()
			}
		}
		return nil, err
	}

	db := &DB{dir: dir, opts: opts, segs: segs, clock: opts.Clock}
	for _, s := range segs {
		if s.index.count > 0 && s.index.maxSeq+1 > db.nextSeq {
			db.nextSeq = s.index.maxSeq + 1
		}
	}
	// Retention may have retired every record-bearing segment; the floor it
	// persisted keeps sequence numbering monotonic across that plus a
	// reopen (a regression would break every seq-deduplicating consumer).
	db.seqFloor = loadSeqFloor(dir)
	if db.seqFloor > db.nextSeq {
		db.nextSeq = db.seqFloor
	}
	if len(db.segs) == 0 {
		s, err := createSegment(dir, 0)
		if err != nil {
			return nil, err
		}
		db.segs = append(db.segs, s)
	}
	db.recovery = opts.Clock.Now().Sub(recoverStart)
	if opts.Lifecycle.Interval > 0 {
		db.lcStop = make(chan struct{})
		db.lcDone = make(chan struct{})
		go db.lifecycleLoop()
	}
	return db, nil
}

// Dir returns the store's directory.
func (db *DB) Dir() string { return db.dir }

// SetOnCommit installs the commit hook (see store.Notifier): it fires
// exactly once per record, in sequence order, under the write lock, as soon
// as the record is visible to readers (staged appends are already visible to
// Scan/Collect, so the hook fires at staging time, not at block flush).
func (db *DB) SetOnCommit(fn func(recs []store.Record)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.onCommit = fn
}

// Append assigns the next sequence number and stages the record; staged
// records are flushed as one block every Options.BlockRecords appends, on
// Flush, or on Close. Staged records are already visible to readers.
func (db *DB) Append(r store.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if o := db.obs; o != nil {
		start := db.clock.Now()
		err := db.appendLocked(r)
		o.appendRecord.Observe(db.clock.Now().Sub(start))
		return err
	}
	return db.appendLocked(r)
}

func (db *DB) appendLocked(r store.Record) error {
	if db.closed {
		return ErrClosed
	}
	r.Seq = db.nextSeq
	db.nextSeq++
	db.pending = append(db.pending, r)
	if db.onCommit != nil {
		db.onCommit(db.pending[len(db.pending)-1:])
	}
	if len(db.pending) >= db.opts.BlockRecords {
		return db.flushLocked()
	}
	return nil
}

// AppendBatch assigns consecutive sequence numbers in slice order and writes
// the whole batch as one block — the store.Batcher flush boundary maps 1:1
// onto on-disk blocks. Any staged per-record appends are flushed first so
// sequence order and storage order agree.
func (db *DB) AppendBatch(recs []store.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if o := db.obs; o != nil {
		start := db.clock.Now()
		err := db.appendBatchLocked(recs)
		o.appendBatch.Observe(db.clock.Now().Sub(start))
		return err
	}
	return db.appendBatchLocked(recs)
}

func (db *DB) appendBatchLocked(recs []store.Record) error {
	if db.closed {
		return ErrClosed
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	block := make([]store.Record, len(recs))
	copy(block, recs)
	for i := range block {
		block[i].Seq = db.nextSeq
		db.nextSeq++
	}
	if err := db.appendBlockLocked(block); err != nil {
		return err
	}
	if db.onCommit != nil {
		db.onCommit(block)
	}
	return nil
}

// Flush writes any staged per-record appends to disk as one block.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

// Sync flushes staged records and fsyncs every segment file.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	for _, s := range db.segs {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("tracedb: sync %s: %w", s.path, err)
		}
	}
	return nil
}

// Close stops the lifecycle loop, flushes staged records, syncs, and closes
// every segment file — including retired segments still pinned by in-flight
// snapshots, whose iterators will surface read errors rather than holding
// the files open. Further operations return ErrClosed.
func (db *DB) Close() error {
	db.stopLifecycle()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	first := db.flushLocked()
	for _, s := range db.segs {
		if err := s.f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("tracedb: sync %s: %w", s.path, err)
		}
		if err := s.f.Close(); err != nil && first == nil {
			first = fmt.Errorf("tracedb: close %s: %w", s.path, err)
		}
	}
	for _, s := range db.retired {
		// Force the cleanup a drained release would have done; racing
		// releases double-close/double-remove harmlessly.
		s.f.Close()
		os.Remove(s.path)
	}
	db.retired = nil
	db.closed = true
	return first
}

// flushLocked writes the staged records as one block. On success the staging
// buffer is reset; on failure it is kept so no acknowledged record is
// silently dropped before the caller sees the error.
func (db *DB) flushLocked() error {
	if len(db.pending) == 0 {
		return nil
	}
	var start time.Time
	if db.obs != nil {
		start = db.clock.Now()
	}
	if err := db.appendBlockLocked(db.pending); err != nil {
		return err
	}
	if o := db.obs; o != nil {
		o.flush.Observe(db.clock.Now().Sub(start))
	}
	db.pending = db.pending[:0]
	return nil
}

// appendBlockLocked writes recs (sequence numbers already assigned) as one
// block, rotating the active segment at the size threshold and splitting
// batches whose payload would exceed the soft block cap.
func (db *DB) appendBlockLocked(recs []store.Record) error {
	start, sz := 0, 0
	for i := range recs {
		rs := recordSizeEstimate(recs[i])
		if sz+rs > targetBlockBytes && i > start {
			if err := db.writeOneBlockLocked(recs[start:i]); err != nil {
				return err
			}
			start, sz = i, 0
		}
		sz += rs
	}
	return db.writeOneBlockLocked(recs[start:])
}

func (db *DB) writeOneBlockLocked(recs []store.Record) error {
	if len(recs) == 0 {
		return nil
	}
	active := db.segs[len(db.segs)-1]
	if active.size >= db.opts.SegmentBytes && active.index.count > 0 {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("tracedb: sync rotated segment: %w", err)
		}
		next, err := createSegment(db.dir, active.hi+1)
		if err != nil {
			return err
		}
		db.segs = append(db.segs, next)
		active = next
	}
	db.encBuf = encodePayload(db.encBuf[:0], recs)
	if err := active.appendBlock(db.encBuf, recs); err != nil {
		return err
	}
	if o := db.obs; o != nil {
		o.blocksWritten.Add(1)
		o.bytesWritten.Add(uint64(blockHeaderSize + len(db.encBuf)))
	}
	return nil
}

// Len returns the number of records in the store, staged ones included.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := len(db.pending)
	for _, s := range db.segs {
		n += s.index.count
	}
	return n
}

// Segments returns the number of on-disk segment files.
func (db *DB) Segments() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.segs)
}

// NextSeq returns the sequence number the next appended record will be
// assigned — one past the newest record, the exclusive upper bound of what
// a resume scan can replay.
func (db *DB) NextSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nextSeq
}

// SeqFloor returns the persisted retention floor: every record with a
// lower sequence number has been (or may have been) discarded by Retain,
// so a resume from below it cannot be honored exactly (see
// wire.EventResumeGap).
func (db *DB) SeqFloor() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.seqFloor
}
