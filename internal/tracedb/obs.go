package tracedb

import (
	"sync/atomic"
	"time"

	"rad/internal/obs"
)

// dbObs is the DB's observability state: the write-path histograms plus
// the block-write totals. It is built once by Observe; a nil dbObs (the
// default) keeps every metric branch to one pointer check.
type dbObs struct {
	appendRecord  *obs.Histogram // Append end-to-end, lock held
	appendBatch   *obs.Histogram // AppendBatch end-to-end, lock held
	flush         *obs.Histogram // staged-block encode+write
	blocksWritten atomic.Uint64
	bytesWritten  atomic.Uint64
}

// Observe registers the store's metrics into reg and arms the write-path
// timing histograms. Timings use Options.Clock (the real clock unless a
// campaign injected its virtual one), so observed virtual-clock campaigns
// stay deterministic. Size and occupancy metrics are pull-based: they read
// the store under its read lock only when the registry renders.
//
// Call once, before serving writes; the write path reads the installed
// state without further synchronization.
func (db *DB) Observe(reg *obs.Registry) {
	o := &dbObs{}
	reg.SetHelp("rad_tracedb_append_seconds", "Sink append latency (lock acquisition excluded), by append shape.")
	o.appendRecord = reg.Histogram("rad_tracedb_append_seconds", nil, "op", "record")
	o.appendBatch = reg.Histogram("rad_tracedb_append_seconds", nil, "op", "batch")
	reg.SetHelp("rad_tracedb_flush_seconds", "Time to encode and write one staged block.")
	o.flush = reg.Histogram("rad_tracedb_flush_seconds", nil)

	reg.SetHelp("rad_tracedb_blocks_written_total", "Blocks committed to segment files.")
	reg.CounterFunc("rad_tracedb_blocks_written_total", o.blocksWritten.Load)
	reg.SetHelp("rad_tracedb_bytes_written_total", "Bytes committed to segment files, framing included.")
	reg.CounterFunc("rad_tracedb_bytes_written_total", o.bytesWritten.Load)

	reg.SetHelp("rad_tracedb_recovery_seconds", "Time Open spent scanning and CRC-verifying existing segments.")
	reg.GaugeFunc("rad_tracedb_recovery_seconds", func() float64 { return db.recovery.Seconds() })
	reg.SetHelp("rad_tracedb_segments", "On-disk segment files.")
	reg.GaugeFunc("rad_tracedb_segments", func() float64 { return float64(db.Segments()) })
	reg.SetHelp("rad_tracedb_records", "Records in the store, staged appends included.")
	reg.GaugeFunc("rad_tracedb_records", func() float64 { return float64(db.Len()) })
	reg.SetHelp("rad_tracedb_bytes", "Committed segment bytes across all segments.")
	reg.GaugeFunc("rad_tracedb_bytes", func() float64 { return float64(db.sizeBytes()) })
	reg.SetHelp("rad_tracedb_index_blocks", "Block-index entries across all segments.")
	reg.GaugeFunc("rad_tracedb_index_blocks", func() float64 { return float64(db.indexBlocks()) })
	reg.SetHelp("rad_tracedb_pending_records", "Staged per-record appends awaiting their block flush.")
	reg.GaugeFunc("rad_tracedb_pending_records", func() float64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return float64(len(db.pending))
	})

	// Lifecycle engine and query planner: the counters live on the DB (they
	// back radquery -mode info too); the registry just exposes them.
	reg.SetHelp("rad_tracedb_compactions_total", "Compaction merge steps completed.")
	reg.CounterFunc("rad_tracedb_compactions_total", db.lcStats.compactions.Load)
	reg.SetHelp("rad_tracedb_compact_blocks_merged_total", "Source blocks consumed by compaction.")
	reg.CounterFunc("rad_tracedb_compact_blocks_merged_total", db.lcStats.blocksMerged.Load)
	reg.SetHelp("rad_tracedb_lifecycle_bytes_reclaimed_total", "Committed bytes freed by compaction and retention.")
	reg.CounterFunc("rad_tracedb_lifecycle_bytes_reclaimed_total", db.lcStats.bytesReclaimed.Load)
	reg.SetHelp("rad_tracedb_segments_retired_total", "Segments retired by compaction and retention.")
	reg.CounterFunc("rad_tracedb_segments_retired_total", db.lcStats.segmentsRetired.Load)
	reg.SetHelp("rad_tracedb_retain_records_dropped_total", "Records dropped by retention.")
	reg.CounterFunc("rad_tracedb_retain_records_dropped_total", db.lcStats.recordsDropped.Load)
	reg.SetHelp("rad_tracedb_planner_driver_total", "Per-segment driving-list choices by the query planner.")
	reg.CounterFunc("rad_tracedb_planner_driver_total", db.lcStats.plannerDevice.Load, "field", "device")
	reg.CounterFunc("rad_tracedb_planner_driver_total", db.lcStats.plannerKey.Load, "field", "key")
	reg.CounterFunc("rad_tracedb_planner_driver_total", db.lcStats.plannerRun.Load, "field", "run")
	reg.CounterFunc("rad_tracedb_planner_driver_total", db.lcStats.plannerProc.Load, "field", "procedure")
	reg.CounterFunc("rad_tracedb_planner_driver_total", db.lcStats.plannerScan.Load, "field", "scan")

	db.mu.Lock()
	db.obs = o
	db.mu.Unlock()
}

// sizeBytes sums the committed bytes across segments.
func (db *DB) sizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, s := range db.segs {
		n += s.size
	}
	return n
}

// indexBlocks counts the block-index entries across segments.
func (db *DB) indexBlocks() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, s := range db.segs {
		n += len(s.index.blocks)
	}
	return n
}

// Recovery reports how long Open spent recovering the existing segments.
func (db *DB) Recovery() time.Duration { return db.recovery }
