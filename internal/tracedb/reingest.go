package tracedb

import (
	"rad/internal/store"
)

// Reingest drains a dead-letter queue into the store: each pending spill
// file lands as one batch (one on-disk block), in spill order, with fresh
// sequence numbers, and is deleted only after its block is appended. Run
// it on recovery — e.g. when the middlebox reopens its store after the
// disk came back — to fold spilled trace batches back into the queryable
// campaign. It returns the number of records re-ingested.
func (db *DB) Reingest(q *store.DeadLetterQueue) (int, error) {
	return q.Drain(db.AppendBatch)
}
