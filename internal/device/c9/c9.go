// Package c9 simulates the C9: North Robotics' controller box driving the
// four-axis N9 robot arm and the Fisherbrand mini-centrifuge. The paper
// treats both as a single logical device because they share the controller
// (§III).
//
// The protocol is the terse four-letter command language visible in
// Fig. 5(a): ARM starts an arm motion, MVNG polls the per-axis moving
// states, MOVE drives a single axis, CURR reads an axis current, and so on.
// Motions are asynchronous — ARM returns as soon as the controller accepts
// the command and clients poll MVNG until all axes are stationary — which is
// why joystick traces are dominated by ARM/MVNG alternations (Fig. 5b).
package c9

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"rad/internal/device"
)

// NumAxes is the number of axes on the N9 arm (four-axis gantry arm).
const NumAxes = 4

// Device latency envelope: command processing takes a few milliseconds
// (Fig. 4: DIRECT-mode response times sit below 10 ms).
const (
	baseLatency   = 2 * time.Millisecond
	jitterLatency = 3 * time.Millisecond
)

// C9 is the simulated controller. It is safe for concurrent use.
type C9 struct {
	env *device.Env

	mu           sync.Mutex
	connected    bool
	axes         [NumAxes]float64 // positions, mm
	target       [NumAxes]float64
	moveUntil    time.Time
	speed        float64 // mm/s
	gripperLen   float64
	elbowBias    float64
	gripperOpen  bool
	centrifugeOn bool
	fault        string
}

var (
	_ device.Device    = (*C9)(nil)
	_ device.Faultable = (*C9)(nil)
)

// New returns a C9 simulator using the given environment.
func New(env *device.Env) *C9 {
	return &C9{env: env, speed: 150}
}

// Name implements device.Device.
func (c *C9) Name() string { return device.C9 }

// InjectFault arms a hardware fault: the next motion command reports it.
func (c *C9) InjectFault(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fault = reason
}

// ClearFault disarms any armed fault.
func (c *C9) ClearFault() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fault = ""
}

// Moving reports whether any axis is still in motion.
func (c *C9) Moving() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.movingLocked()
}

func (c *C9) movingLocked() bool {
	return c.env.Clock.Now().Before(c.moveUntil)
}

// settleLocked completes a finished motion by committing target positions.
func (c *C9) settleLocked() {
	if !c.movingLocked() {
		c.axes = c.target
	}
}

// Exec implements device.Device.
func (c *C9) Exec(cmd device.Command) (string, error) {
	c.env.Spend(baseLatency, jitterLatency)
	c.mu.Lock()
	defer c.mu.Unlock()

	if cmd.Name == device.Init {
		c.connected = true
		c.target = c.axes
		return "ok", nil
	}
	if !c.connected {
		return "", fmt.Errorf("C9 %s: %w", cmd.Name, device.ErrNotConnected)
	}
	c.settleLocked()

	switch cmd.Name {
	case "ARM":
		return c.arm(cmd.Args)
	case "MVNG":
		states := make([]string, NumAxes)
		moving := c.movingLocked()
		for i := range states {
			if moving {
				states[i] = "1"
			} else {
				states[i] = "0"
			}
		}
		return strings.Join(states, " "), nil
	case "MOVE":
		return c.moveAxis(cmd.Args)
	case "CURR":
		return c.axisCurrent(cmd.Args)
	case "POSN":
		return c.axisPosition(cmd.Args)
	case "JLEN":
		v, err := oneFloat(cmd.Args)
		if err != nil {
			return "", err
		}
		c.gripperLen = v
		return "ok", nil
	case "SPED":
		v, err := oneFloat(cmd.Args)
		if err != nil || v <= 0 {
			return "", fmt.Errorf("C9 SPED %v: %w", cmd.Args, device.ErrBadArgs)
		}
		c.speed = v
		return "ok", nil
	case "BIAS":
		v, err := oneFloat(cmd.Args)
		if err != nil {
			return "", err
		}
		c.elbowBias = v
		return "ok", nil
	case "GRIP":
		if len(cmd.Args) != 1 || (cmd.Args[0] != "open" && cmd.Args[0] != "close") {
			return "", fmt.Errorf("C9 GRIP %v: %w", cmd.Args, device.ErrBadArgs)
		}
		c.gripperOpen = cmd.Args[0] == "open"
		return "ok", nil
	case "HOME":
		if c.fault != "" {
			return "", c.fireFaultLocked()
		}
		var zero [NumAxes]float64
		c.startMoveLocked(zero)
		return "ok", nil
	case "OUTP":
		c.centrifugeOn = !c.centrifugeOn
		if c.centrifugeOn {
			return "1", nil
		}
		return "0", nil
	default:
		return "", fmt.Errorf("C9 %s: %w", cmd.Name, device.ErrUnknownCommand)
	}
}

func (c *C9) arm(args []string) (string, error) {
	if len(args) < 3 || len(args) > NumAxes {
		return "", fmt.Errorf("C9 ARM wants 3-%d coordinates, got %d: %w", NumAxes, len(args), device.ErrBadArgs)
	}
	if c.fault != "" {
		return "", c.fireFaultLocked()
	}
	target := c.axes
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return "", fmt.Errorf("C9 ARM arg %q: %w", a, device.ErrBadArgs)
		}
		target[i] = v
	}
	c.startMoveLocked(target)
	return "ok", nil
}

func (c *C9) moveAxis(args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("C9 MOVE wants axis and position: %w", device.ErrBadArgs)
	}
	axis, err := strconv.Atoi(args[0])
	if err != nil || axis < 0 || axis >= NumAxes {
		return "", fmt.Errorf("C9 MOVE axis %q: %w", args[0], device.ErrBadArgs)
	}
	pos, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return "", fmt.Errorf("C9 MOVE position %q: %w", args[1], device.ErrBadArgs)
	}
	if c.fault != "" {
		return "", c.fireFaultLocked()
	}
	target := c.axes
	target[axis] = pos
	c.startMoveLocked(target)
	return "ok", nil
}

func (c *C9) axisCurrent(args []string) (string, error) {
	axis, err := oneAxis(args)
	if err != nil {
		return "", err
	}
	// Idle axes draw a small holding current; moving axes draw more, with
	// measurement noise on top.
	cur := 0.12
	if c.movingLocked() {
		cur = 0.85 + 0.001*c.speed
	}
	cur += c.env.Noise(0.02)
	_ = axis
	return strconv.FormatFloat(cur, 'f', 3, 64), nil
}

func (c *C9) axisPosition(args []string) (string, error) {
	axis, err := oneAxis(args)
	if err != nil {
		return "", err
	}
	return strconv.FormatFloat(c.axes[axis], 'f', 2, 64), nil
}

// startMoveLocked begins an asynchronous motion toward target.
func (c *C9) startMoveLocked(target [NumAxes]float64) {
	dist := 0.0
	for i := range target {
		dist = math.Max(dist, math.Abs(target[i]-c.axes[i]))
	}
	dur := time.Duration(dist / c.speed * float64(time.Second))
	c.target = target
	c.moveUntil = c.env.Clock.Now().Add(dur)
}

// fireFaultLocked consumes the armed fault and returns it as the error.
func (c *C9) fireFaultLocked() error {
	reason := c.fault
	return &device.FaultError{Device: device.C9, Reason: reason}
}

func oneFloat(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 argument, got %d: %w", len(args), device.ErrBadArgs)
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("argument %q: %w", args[0], device.ErrBadArgs)
	}
	return v, nil
}

func oneAxis(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 axis argument: %w", device.ErrBadArgs)
	}
	axis, err := strconv.Atoi(args[0])
	if err != nil || axis < 0 || axis >= NumAxes {
		return 0, fmt.Errorf("axis %q: %w", args[0], device.ErrBadArgs)
	}
	return axis, nil
}
