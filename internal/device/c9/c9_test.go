package c9

import (
	"errors"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/simclock"
)

func newTestC9() (*C9, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	c := New(device.NewEnv(clock, 1))
	return c, clock
}

func exec(t *testing.T, d device.Device, name string, args ...string) string {
	t.Helper()
	v, err := d.Exec(device.Command{Device: d.Name(), Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func TestRequiresInit(t *testing.T) {
	c, _ := newTestC9()
	_, err := c.Exec(device.Command{Name: "MVNG"})
	if !errors.Is(err, device.ErrNotConnected) {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
	exec(t, c, device.Init)
	if got := exec(t, c, "MVNG"); got != "0 0 0 0" {
		t.Errorf("MVNG after init = %q", got)
	}
}

func TestArmMotionLifecycle(t *testing.T) {
	c, clock := newTestC9()
	exec(t, c, device.Init)
	exec(t, c, "SPED", "100")
	exec(t, c, "ARM", "100", "50", "25")
	if got := exec(t, c, "MVNG"); got != "1 1 1 1" {
		t.Errorf("MVNG during motion = %q, want all moving", got)
	}
	// 100 mm at 100 mm/s = 1 s; advance past it.
	clock.Advance(2 * time.Second)
	if got := exec(t, c, "MVNG"); got != "0 0 0 0" {
		t.Errorf("MVNG after motion = %q, want all stationary", got)
	}
	if got := exec(t, c, "POSN", "0"); got != "100.00" {
		t.Errorf("POSN(0) = %q, want 100.00", got)
	}
	if got := exec(t, c, "POSN", "3"); got != "0.00" {
		t.Errorf("POSN(3) = %q, want 0.00 (unspecified axis)", got)
	}
}

func TestArmValidatesArgs(t *testing.T) {
	c, _ := newTestC9()
	exec(t, c, device.Init)
	cases := [][]string{
		{},
		{"1"},
		{"1", "2"},
		{"1", "2", "3", "4", "5"},
		{"1", "2", "notanumber"},
	}
	for _, args := range cases {
		_, err := c.Exec(device.Command{Name: "ARM", Args: args})
		if !errors.Is(err, device.ErrBadArgs) {
			t.Errorf("ARM(%v): want ErrBadArgs, got %v", args, err)
		}
	}
}

func TestMoveSingleAxis(t *testing.T) {
	c, clock := newTestC9()
	exec(t, c, device.Init)
	exec(t, c, "MOVE", "2", "42.5")
	clock.Advance(5 * time.Second)
	if got := exec(t, c, "POSN", "2"); got != "42.50" {
		t.Errorf("POSN(2) = %q", got)
	}
	if _, err := c.Exec(device.Command{Name: "MOVE", Args: []string{"9", "1"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("MOVE bad axis: %v", err)
	}
}

func TestCurrentHigherWhileMoving(t *testing.T) {
	c, clock := newTestC9()
	exec(t, c, device.Init)
	idle := exec(t, c, "CURR", "0")
	exec(t, c, "ARM", "200", "0", "0")
	moving := exec(t, c, "CURR", "0")
	clock.Advance(10 * time.Second)
	if idle >= moving { // lexicographic works here: "0.1xx" < "0.9xx"
		t.Errorf("idle current %s should be below moving current %s", idle, moving)
	}
}

func TestSettersAndCentrifuge(t *testing.T) {
	c, _ := newTestC9()
	exec(t, c, device.Init)
	exec(t, c, "JLEN", "12.5")
	exec(t, c, "BIAS", "-0.4")
	exec(t, c, "GRIP", "open")
	exec(t, c, "GRIP", "close")
	if _, err := c.Exec(device.Command{Name: "GRIP", Args: []string{"sideways"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("GRIP sideways: %v", err)
	}
	if got := exec(t, c, "OUTP", "1"); got != "1" {
		t.Errorf("first OUTP = %q, want 1 (on)", got)
	}
	if got := exec(t, c, "OUTP", "1"); got != "0" {
		t.Errorf("second OUTP = %q, want 0 (off)", got)
	}
	if _, err := c.Exec(device.Command{Name: "SPED", Args: []string{"-5"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("SPED -5: %v", err)
	}
}

func TestHomeReturnsAllAxes(t *testing.T) {
	c, clock := newTestC9()
	exec(t, c, device.Init)
	exec(t, c, "ARM", "50", "60", "70")
	clock.Advance(10 * time.Second)
	exec(t, c, "HOME")
	clock.Advance(10 * time.Second)
	for axis := 0; axis < NumAxes; axis++ {
		if got := exec(t, c, "POSN", itoa(axis)); got != "0.00" {
			t.Errorf("axis %d after HOME = %q", axis, got)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	c, _ := newTestC9()
	exec(t, c, device.Init)
	c.InjectFault("collision with Quantos front door")
	_, err := c.Exec(device.Command{Name: "ARM", Args: []string{"10", "0", "0"}})
	var fe *device.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want FaultError, got %v", err)
	}
	if fe.Device != device.C9 {
		t.Errorf("fault device = %q", fe.Device)
	}
	// Fault persists until cleared.
	if _, err := c.Exec(device.Command{Name: "HOME"}); err == nil {
		t.Error("fault should persist")
	}
	c.ClearFault()
	exec(t, c, "ARM", "10", "0", "0")
}

func TestUnknownCommand(t *testing.T) {
	c, _ := newTestC9()
	exec(t, c, device.Init)
	_, err := c.Exec(device.Command{Name: "WARP"})
	if !errors.Is(err, device.ErrUnknownCommand) {
		t.Errorf("want ErrUnknownCommand, got %v", err)
	}
}

func TestExecChargesLatencyToClock(t *testing.T) {
	c, clock := newTestC9()
	before := clock.Now()
	exec(t, c, device.Init)
	d := clock.Now().Sub(before)
	if d < baseLatency || d > baseLatency+jitterLatency {
		t.Errorf("init latency = %v, want in [%v, %v)", d, baseLatency, baseLatency+jitterLatency)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
