// Package device defines the common model for the Hein Lab's CPS devices:
// the command/response types exchanged across the data-collection boundary,
// the Device interface implemented by every simulator, the shared simulation
// environment (clock + seeded randomness), and the catalog of the 52 command
// types that appear in the Robotic Arm Dataset (Fig. 5a).
//
// The paper traces five logical devices — C9 (the N9 robot arm and the
// centrifuge behind North Robotics' controller box), UR3e, IKA, Tecan, and
// Quantos — each exposing a small device-specific command language. The
// subpackages device/c9, device/ur3e, device/ika, device/tecan, and
// device/quantos implement protocol-faithful simulators for them.
package device

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"rad/internal/simclock"
)

// Device names as they appear in the dataset.
const (
	C9      = "C9"
	UR3e    = "UR3e"
	IKA     = "IKA"
	Tecan   = "Tecan"
	Quantos = "Quantos"
)

// Names lists the five logical devices in Fig. 5(a) legend order
// (descending trace-object count).
func Names() []string {
	return []string{C9, Tecan, IKA, UR3e, Quantos}
}

// Init is the command name used for device construction. The Hein Lab's
// Python stack logs __init__ accesses when a device class is instantiated;
// the simulators log the same event when a session opens.
const Init = "__init__"

// Command is a single device access crossing the data-collection boundary:
// one method call on a virtualized class in RATracer terms.
type Command struct {
	Device string   `json:"device"`
	Name   string   `json:"name"`
	Args   []string `json:"args,omitempty"`
}

// String renders the command the way the dataset's human-readable trace
// format does: DEVICE.NAME(arg1, arg2, ...).
func (c Command) String() string {
	return c.Device + "." + c.Name + "(" + strings.Join(c.Args, ", ") + ")"
}

// Device is the interface every simulated CPS device implements. Exec
// processes one command synchronously and returns the device's response
// value. Errors model device-reported faults (bad arguments, hardware
// faults, collisions); they are traced like any other response, matching the
// paper's logging of exceptions.
type Device interface {
	// Name returns the device's dataset name (one of the constants above).
	Name() string
	// Exec handles a single command and returns its response value.
	Exec(cmd Command) (string, error)
}

// Faultable is implemented by devices that support fault injection. The
// supervised anomalies in RAD are physical crashes (e.g. the Quantos front
// door hitting the UR3e); procedures inject those faults through this
// interface so the resulting traces carry crash signatures.
type Faultable interface {
	// InjectFault arms a fault. The device reports it on subsequent relevant
	// commands until ClearFault is called.
	InjectFault(reason string)
	// ClearFault disarms any armed fault.
	ClearFault()
}

// Sentinel errors shared by the device simulators.
var (
	// ErrUnknownCommand is returned for a command name the device does not
	// implement.
	ErrUnknownCommand = errors.New("device: unknown command")
	// ErrBadArgs is returned when a command's arguments cannot be parsed or
	// are out of range.
	ErrBadArgs = errors.New("device: bad arguments")
	// ErrNotConnected is returned when a command other than __init__ arrives
	// before the device session was initialized.
	ErrNotConnected = errors.New("device: not connected")
)

// FaultError is the error reported when an armed fault fires — the simulated
// analog of a robot collision or hardware crash. Traces record it in the
// exception field.
type FaultError struct {
	Device string
	Reason string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("%s: hardware fault: %s", e.Device, e.Reason)
}

// Env is the shared simulation environment injected into every device: the
// clock that response latencies are charged to and a seeded PRNG for jitter
// and measurement noise. Using an injected clock lets the same device code
// run in real time (Fig. 4 latency runs) and virtual time (three-month
// campaign generation).
//
// Env is safe for concurrent use: devices may be driven from several
// middlebox connections at once, and math/rand/v2.Rand is not itself
// thread-safe.
type Env struct {
	Clock simclock.Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// NewEnv builds an Env from a clock and a deterministic seed.
func NewEnv(clock simclock.Clock, seed uint64) *Env {
	return &Env{
		Clock: clock,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Spend charges base plus uniform jitter in [0, jitter) to the clock,
// modelling the device's command-processing latency.
func (e *Env) Spend(base, jitter time.Duration) {
	d := base
	if jitter > 0 {
		e.mu.Lock()
		d += time.Duration(e.rng.Int64N(int64(jitter)))
		e.mu.Unlock()
	}
	e.Clock.Sleep(d)
}

// Noise returns a sample from a zero-mean normal distribution with the given
// standard deviation, used for simulated sensor readings.
func (e *Env) Noise(stddev float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rng.NormFloat64() * stddev
}
