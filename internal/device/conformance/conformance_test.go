// Package conformance holds cross-device property tests: invariants every
// simulator must satisfy for arbitrary valid inputs (testing/quick), plus
// catalog-conformance checks that every one of the 52 commands is actually
// executable on its device.
package conformance

import (
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
	"rad/internal/simclock"
)

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// TestC9ArmReachesAnyValidTarget: for any target in the workspace, ARM is
// accepted, MVNG eventually reports stationary, and POSN equals the target.
func TestC9ArmReachesAnyValidTarget(t *testing.T) {
	prop := func(xRaw, yRaw, zRaw int16) bool {
		clock := simclock.NewVirtual(time.Unix(0, 0))
		dev := c9.New(device.NewEnv(clock, 1))
		if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
			return false
		}
		x := float64(xRaw%300) + 0.5
		y := float64(yRaw%200) + 0.5
		z := float64(zRaw%50) + 0.5
		if _, err := dev.Exec(device.Command{Name: "ARM", Args: []string{f(x), f(y), f(z)}}); err != nil {
			return false
		}
		clock.Advance(time.Hour)
		if v, err := dev.Exec(device.Command{Name: "MVNG"}); err != nil || v != "0 0 0 0" {
			return false
		}
		got, err := dev.Exec(device.Command{Name: "POSN", Args: []string{"0"}})
		if err != nil {
			return false
		}
		want := strconv.FormatFloat(x, 'f', 2, 64)
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTecanAnyValidMoveCompletes: any plunger position in range is accepted
// and the pump returns to idle after enough time.
func TestTecanAnyValidMoveCompletes(t *testing.T) {
	prop := func(posRaw uint16, velRaw uint16) bool {
		clock := simclock.NewVirtual(time.Unix(0, 0))
		dev := tecan.New(device.NewEnv(clock, 1))
		if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
			return false
		}
		vel := 5 + float64(velRaw%5700)
		pos := float64(posRaw % 6001)
		if _, err := dev.Exec(device.Command{Name: "V", Args: []string{f(vel)}}); err != nil {
			return false
		}
		if _, err := dev.Exec(device.Command{Name: "A", Args: []string{f(pos)}}); err != nil {
			return false
		}
		clock.Advance(time.Hour)
		v, err := dev.Exec(device.Command{Name: "Q"})
		return err == nil && v == "`"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestIKAConvergesToAnySetpoint: any speed setpoint in range is reached
// within tolerance after spin-up.
func TestIKAConvergesToAnySetpoint(t *testing.T) {
	prop := func(raw uint16) bool {
		clock := simclock.NewVirtual(time.Unix(0, 0))
		dev := ika.New(device.NewEnv(clock, 1))
		if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
			return false
		}
		set := 50 + float64(raw%1400)
		if _, err := dev.Exec(device.Command{Name: "OUT_SP_4", Args: []string{f(set)}}); err != nil {
			return false
		}
		if _, err := dev.Exec(device.Command{Name: "START_4"}); err != nil {
			return false
		}
		clock.Advance(2 * time.Minute)
		v, err := dev.Exec(device.Command{Name: "IN_PV_4"})
		if err != nil {
			return false
		}
		got, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return false
		}
		diff := got - set
		if diff < 0 {
			diff = -diff
		}
		return diff < set*0.05+10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuantosDosesWithinTolerance: any target mass doses within ±10%.
func TestQuantosDosesWithinTolerance(t *testing.T) {
	prop := func(raw uint16, seed uint64) bool {
		clock := simclock.NewVirtual(time.Unix(0, 0))
		dev := quantos.New(device.NewEnv(clock, seed))
		for _, step := range [][]string{
			{device.Init}, {"lock_dosing_pin_position"},
		} {
			if _, err := dev.Exec(device.Command{Name: step[0], Args: step[1:]}); err != nil {
				return false
			}
		}
		target := 5 + float64(raw%200)
		if _, err := dev.Exec(device.Command{Name: "target_mass", Args: []string{f(target)}}); err != nil {
			return false
		}
		v, err := dev.Exec(device.Command{Name: "start_dosing"})
		if err != nil {
			return false
		}
		dosed, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return false
		}
		return dosed > target*0.9 && dosed < target*1.1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEveryCatalogCommandExecutable: all 52 commands run successfully on
// their device given valid arguments and preconditions.
func TestEveryCatalogCommandExecutable(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	devices := map[string]device.Device{
		device.C9:      c9.New(device.NewEnv(clock, 1)),
		device.UR3e:    ur3e.New(device.NewEnv(clock, 2), nil),
		device.IKA:     ika.New(device.NewEnv(clock, 3)),
		device.Tecan:   tecan.New(device.NewEnv(clock, 4)),
		device.Quantos: quantos.New(device.NewEnv(clock, 5)),
	}
	args := map[string][]string{
		"C9.ARM": {"10", "20", "5"}, "C9.MOVE": {"0", "30"}, "C9.CURR": {"1"},
		"C9.POSN": {"2"}, "C9.JLEN": {"95"}, "C9.SPED": {"150"}, "C9.BIAS": {"0.2"},
		"C9.GRIP": {"open"}, "C9.OUTP": {"1"},
		"UR3e.move_joints":      {"0.1", "-1.2", "0.3", "-1.4", "0.1", "0"},
		"UR3e.move_to_location": {"L1"}, "UR3e.move_circular": {"L2"},
		"Tecan.A": {"1000"}, "Tecan.P": {"10"}, "Tecan.V": {"1200"}, "Tecan.I": {"2"},
		"Tecan.k": {"5"}, "Tecan.L": {"14"},
		"IKA.OUT_SP_1": {"60"}, "IKA.OUT_SP_4": {"300"},
		"Quantos.front_door": {"close"}, "Quantos.move_z_axis": {"200"},
		"Quantos.set_home_direction": {"1"}, "Quantos.target_mass": {"30"},
	}
	// Dependencies: g before G; pin locked + door closed + target before
	// dosing. Run init first for every device, then commands in an order
	// that satisfies device preconditions.
	order := map[string]int{
		"Tecan.g":                            -1, // before G
		"Quantos.lock_dosing_pin_position":   -1,
		"Quantos.start_dosing":               1, // after target/lock/close
		"Quantos.unlock_dosing_pin_position": 2, // after dosing
	}
	specs := device.Catalog()
	for _, dev := range devices {
		if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
			t.Fatalf("%s init: %v", dev.Name(), err)
		}
	}
	// Stable-sort the catalog by the precedence above.
	sorted := append([]device.CommandSpec(nil), specs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && order[sorted[j].Key()] < order[sorted[j-1].Key()]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, spec := range sorted {
		if spec.Name == device.Init {
			continue // already executed
		}
		dev := devices[spec.Device]
		if _, err := dev.Exec(device.Command{Name: spec.Name, Args: args[spec.Key()]}); err != nil {
			t.Errorf("catalog command %s failed: %v", spec.Key(), err)
		}
		clock.Advance(30 * time.Second) // settle asynchronous motions
	}
}
