package device

// CommandSpec describes one of the 52 command types observed in the command
// dataset (Fig. 5a). Readable is the human-readable name the paper prints in
// parentheses for non-intuitive command names.
type CommandSpec struct {
	Device   string
	Name     string
	Readable string
	// Mutating reports whether the command changes device state (used by the
	// rule-based IDS to distinguish reads from actuations).
	Mutating bool
}

// Key returns the canonical "Device.Name" identifier for the command type.
func (s CommandSpec) Key() string { return s.Device + "." + s.Name }

// Catalog returns the full 52-command catalog, grouped by device in Fig. 5(a)
// order. A handful of names are only partially legible in the paper's figure;
// DESIGN.md §4 documents the approximation (per-device totals and all legible
// names are preserved).
func Catalog() []CommandSpec {
	return []CommandSpec{
		// UR3e (6 command types).
		{UR3e, "move_joints", "move_joints", true},
		{UR3e, "move_to_location", "move_to_location", true},
		{UR3e, "open_gripper", "open_gripper", true},
		{UR3e, Init, "init UR3Arm", true},
		{UR3e, "close_gripper", "close_gripper", true},
		{UR3e, "move_circular", "move_circular", true},

		// Tecan Cavro XLP6000 syringe pump (11 command types).
		{Tecan, "Q", "get_status", false},
		{Tecan, "P", "set_distance", true},
		{Tecan, "V", "set_velocity", true},
		{Tecan, "I", "set_valve_position", true},
		{Tecan, "A", "set_position", true},
		{Tecan, Init, "init Tecan", true},
		{Tecan, "G", "stop_batch_command", true},
		{Tecan, "g", "start_batch_command", true},
		{Tecan, "k", "set_dead_volume", true},
		{Tecan, "L", "set_slope_code", true},
		{Tecan, "Z", "set_home_position", true},

		// IKA C-MAG HS7 stirrer/heater (13 command types).
		{IKA, "IN_PV_4", "read_stirring_speed", false},
		{IKA, "IN_SP_4", "read_rated_speed", false},
		{IKA, "IN_NAME", "read_device_name", false},
		{IKA, "IN_SP_1", "read_rated_temperature", false},
		{IKA, "STOP_4", "stop_the_motor", true},
		{IKA, "STOP_1", "stop_the_heater", true},
		{IKA, "IN_PV_1", "read_external_sensor", false},
		{IKA, "IN_PV_2", "read_hotplate_sensor", false},
		{IKA, Init, "init IKA", true},
		{IKA, "OUT_SP_4", "set_speed", true},
		{IKA, "START_4", "start_the_motor", true},
		{IKA, "START_1", "start_the_heater", true},
		{IKA, "OUT_SP_1", "set_temperature", true},

		// C9 controller: N9 robot arm + centrifuge (12 command types).
		{C9, "MVNG", "get_axes_moving_states", false},
		{C9, "OUTP", "toggle_centrifuge", true},
		{C9, "ARM", "move_arm", true},
		{C9, "BIAS", "set_elbow_bias", true},
		{C9, "CURR", "get_axis_current", false},
		{C9, "SPED", "set_speed", true},
		{C9, "HOME", "home_n9", true},
		{C9, Init, "init C9", true},
		{C9, "JLEN", "set_gripper_length", true},
		{C9, "MOVE", "move_axis", true},
		{C9, "GRIP", "set_gripper", true},
		{C9, "POSN", "get_axis_position", false},

		// Quantos balance + Arduino z-stage (10 command types).
		{Quantos, Init, "init Quantos", true},
		{Quantos, "front_door", "set_door_position", true},
		{Quantos, "home_z_stage", "home_z_stage", true},
		{Quantos, "zero", "zero_balance_reading", true},
		{Quantos, "set_home_direction", "set_home_direction", true},
		{Quantos, "start_dosing", "start_dosing", true},
		{Quantos, "target_mass", "target_mass", true},
		{Quantos, "move_z_axis", "move_z_axis", true},
		{Quantos, "lock_dosing_pin_position", "lock_dosing_pin_position", true},
		{Quantos, "unlock_dosing_pin_position", "unlock_dosing_pin_position", true},
	}
}

// CatalogByKey indexes the catalog by "Device.Name".
func CatalogByKey() map[string]CommandSpec {
	cat := Catalog()
	m := make(map[string]CommandSpec, len(cat))
	for _, s := range cat {
		m[s.Key()] = s
	}
	return m
}

// CommandsFor returns the command specs belonging to one device, in catalog
// order.
func CommandsFor(deviceName string) []CommandSpec {
	var out []CommandSpec
	for _, s := range Catalog() {
		if s.Device == deviceName {
			out = append(out, s)
		}
	}
	return out
}
