package ika

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/simclock"
)

func newTestIKA() (*IKA, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	return New(device.NewEnv(clock, 1)), clock
}

func exec(t *testing.T, d device.Device, name string, args ...string) string {
	t.Helper()
	v, err := d.Exec(device.Command{Device: d.Name(), Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRequiresInit(t *testing.T) {
	k, _ := newTestIKA()
	if _, err := k.Exec(device.Command{Name: "IN_NAME"}); !errors.Is(err, device.ErrNotConnected) {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
}

func TestDeviceName(t *testing.T) {
	k, _ := newTestIKA()
	exec(t, k, device.Init)
	if got := exec(t, k, "IN_NAME"); got != "C-MAG HS7" {
		t.Errorf("IN_NAME = %q", got)
	}
}

func TestStirringSpeedRampsTowardSetpoint(t *testing.T) {
	k, clock := newTestIKA()
	exec(t, k, device.Init)
	exec(t, k, "OUT_SP_4", "300")
	if got := parse(t, exec(t, k, "IN_SP_4")); got != 300 {
		t.Errorf("IN_SP_4 = %v, want 300", got)
	}
	// Motor off: actual speed stays near zero.
	clock.Advance(time.Minute)
	if got := parse(t, exec(t, k, "IN_PV_4")); got > 20 {
		t.Errorf("speed %v with motor off", got)
	}
	exec(t, k, "START_4")
	clock.Advance(30 * time.Second) // 6 time constants
	if got := parse(t, exec(t, k, "IN_PV_4")); got < 280 || got > 320 {
		t.Errorf("speed %v after spin-up, want ≈300", got)
	}
	exec(t, k, "STOP_4")
	clock.Advance(time.Minute)
	if got := parse(t, exec(t, k, "IN_PV_4")); got > 20 {
		t.Errorf("speed %v after stop, want ≈0", got)
	}
}

func TestHeaterDynamics(t *testing.T) {
	k, clock := newTestIKA()
	exec(t, k, device.Init)
	exec(t, k, "OUT_SP_1", "80")
	exec(t, k, "START_1")
	clock.Advance(20 * time.Minute) // many thermal time constants
	hot := parse(t, exec(t, k, "IN_PV_2"))
	if hot < 75 || hot > 85 {
		t.Errorf("hotplate %v after heating, want ≈80", hot)
	}
	ext := parse(t, exec(t, k, "IN_PV_1"))
	if ext >= hot {
		t.Errorf("external sensor %v should lag hotplate %v", ext, hot)
	}
	exec(t, k, "STOP_1")
	clock.Advance(time.Hour)
	cooled := parse(t, exec(t, k, "IN_PV_2"))
	if cooled > 30 {
		t.Errorf("hotplate %v after an hour off, want ≈ambient", cooled)
	}
}

func TestSetpointValidation(t *testing.T) {
	k, _ := newTestIKA()
	exec(t, k, device.Init)
	bad := []struct {
		cmd string
		arg string
	}{
		{"OUT_SP_4", "-1"}, {"OUT_SP_4", "9999"}, {"OUT_SP_4", "abc"},
		{"OUT_SP_1", "-10"}, {"OUT_SP_1", "1000"},
	}
	for _, b := range bad {
		if _, err := k.Exec(device.Command{Name: b.cmd, Args: []string{b.arg}}); !errors.Is(err, device.ErrBadArgs) {
			t.Errorf("%s(%s): want ErrBadArgs, got %v", b.cmd, b.arg, err)
		}
	}
	if _, err := k.Exec(device.Command{Name: "OUT_SP_4"}); !errors.Is(err, device.ErrBadArgs) {
		t.Error("OUT_SP_4 with no args should fail")
	}
}

func TestUnknownCommand(t *testing.T) {
	k, _ := newTestIKA()
	exec(t, k, device.Init)
	if _, err := k.Exec(device.Command{Name: "EXPLODE"}); !errors.Is(err, device.ErrUnknownCommand) {
		t.Errorf("want ErrUnknownCommand, got %v", err)
	}
}

func TestAllCatalogCommandsImplemented(t *testing.T) {
	k, _ := newTestIKA()
	exec(t, k, device.Init)
	argsFor := map[string][]string{
		"OUT_SP_1": {"60"},
		"OUT_SP_4": {"250"},
	}
	for _, spec := range device.CommandsFor(device.IKA) {
		if spec.Name == device.Init {
			continue
		}
		if _, err := k.Exec(device.Command{Name: spec.Name, Args: argsFor[spec.Name]}); err != nil {
			t.Errorf("catalog command %s failed: %v", spec.Name, err)
		}
	}
}
