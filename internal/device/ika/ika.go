// Package ika simulates the IKA C-MAG HS 7 magnetic stirrer and heater. The
// device speaks the NAMUR-style serial protocol visible in Fig. 5(a):
// IN_PV_x reads process values, IN_SP_x reads setpoints, OUT_SP_x writes
// setpoints, and START/STOP_x control the heater (channel 1) and the stirrer
// motor (channel 4).
//
// The simulator keeps first-order thermal and mechanical dynamics: the
// stirring speed relaxes toward its setpoint within seconds when the motor
// runs, and the hotplate temperature relaxes toward its setpoint over
// minutes while heating (and toward ambient while off), using the injected
// clock so virtual-time campaigns behave like real ones.
package ika

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"rad/internal/device"
)

const (
	baseLatency   = 3 * time.Millisecond
	jitterLatency = 4 * time.Millisecond

	ambientC     = 22.0
	speedTau     = 5.0   // seconds to close ~63% of a stirring-speed step
	heatTau      = 120.0 // seconds for the hotplate thermal time constant
	maxSpeedRPM  = 1500
	maxTempC     = 500
	deviceString = "C-MAG HS7"
)

// IKA is the simulated stirrer/heater. It is safe for concurrent use.
type IKA struct {
	env *device.Env

	mu        sync.Mutex
	connected bool
	motorOn   bool
	heaterOn  bool
	speedSet  float64 // rpm
	tempSet   float64 // °C
	speed     float64 // actual rpm
	plateTemp float64 // actual hotplate °C
	lastStep  time.Time
}

var _ device.Device = (*IKA)(nil)

// New returns an IKA simulator.
func New(env *device.Env) *IKA {
	return &IKA{env: env, plateTemp: ambientC, lastStep: env.Clock.Now()}
}

// Name implements device.Device.
func (k *IKA) Name() string { return device.IKA }

// Exec implements device.Device.
func (k *IKA) Exec(cmd device.Command) (string, error) {
	k.env.Spend(baseLatency, jitterLatency)
	k.mu.Lock()
	defer k.mu.Unlock()

	if cmd.Name == device.Init {
		k.connected = true
		k.lastStep = k.env.Clock.Now()
		return "ok", nil
	}
	if !k.connected {
		return "", fmt.Errorf("IKA %s: %w", cmd.Name, device.ErrNotConnected)
	}
	k.stepLocked()

	switch cmd.Name {
	case "IN_NAME":
		return deviceString, nil
	case "IN_PV_1":
		// External (medium) sensor lags the hotplate.
		return fmtVal(ambientC+0.8*(k.plateTemp-ambientC)+k.env.Noise(0.1), 1), nil
	case "IN_PV_2":
		return fmtVal(k.plateTemp+k.env.Noise(0.1), 1), nil
	case "IN_PV_4":
		return fmtVal(math.Max(0, k.speed+k.env.Noise(1.0)), 0), nil
	case "IN_SP_1":
		return fmtVal(k.tempSet, 1), nil
	case "IN_SP_4":
		return fmtVal(k.speedSet, 0), nil
	case "OUT_SP_1":
		v, err := oneFloat(cmd.Args)
		if err != nil || v < 0 || v > maxTempC {
			return "", fmt.Errorf("IKA OUT_SP_1 %v: %w", cmd.Args, device.ErrBadArgs)
		}
		k.tempSet = v
		return "ok", nil
	case "OUT_SP_4":
		v, err := oneFloat(cmd.Args)
		if err != nil || v < 0 || v > maxSpeedRPM {
			return "", fmt.Errorf("IKA OUT_SP_4 %v: %w", cmd.Args, device.ErrBadArgs)
		}
		k.speedSet = v
		return "ok", nil
	case "START_1":
		k.heaterOn = true
		return "ok", nil
	case "STOP_1":
		k.heaterOn = false
		return "ok", nil
	case "START_4":
		k.motorOn = true
		return "ok", nil
	case "STOP_4":
		k.motorOn = false
		return "ok", nil
	default:
		return "", fmt.Errorf("IKA %s: %w", cmd.Name, device.ErrUnknownCommand)
	}
}

// stepLocked advances the first-order dynamics to the current clock time.
func (k *IKA) stepLocked() {
	now := k.env.Clock.Now()
	dt := now.Sub(k.lastStep).Seconds()
	k.lastStep = now
	if dt <= 0 {
		return
	}
	speedTarget := 0.0
	if k.motorOn {
		speedTarget = k.speedSet
	}
	k.speed += (speedTarget - k.speed) * relax(dt, speedTau)

	tempTarget := ambientC
	if k.heaterOn {
		tempTarget = k.tempSet
	}
	k.plateTemp += (tempTarget - k.plateTemp) * relax(dt, heatTau)
}

// relax returns the first-order step fraction 1 - exp(-dt/tau).
func relax(dt, tau float64) float64 { return 1 - math.Exp(-dt/tau) }

func fmtVal(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

func oneFloat(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 argument, got %d: %w", len(args), device.ErrBadArgs)
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("argument %q: %w", args[0], device.ErrBadArgs)
	}
	return v, nil
}
