// Package quantos simulates the Mettler Toledo Quantos automated dosing
// balance together with the Arduino-controlled stepper motor that the Hein
// Lab added for z-axis control (the paper folds the stepper into the Quantos
// device, §III).
//
// The commands mirror Fig. 5(a): front_door opens/closes the draft shield,
// start_dosing doses solid toward target_mass, zero tares the balance, and
// home_z_stage/move_z_axis drive the Arduino stepper. The front door is the
// component involved in two of RAD's three supervised anomalies (the door
// crashed into the robot in runs 16 and 17), so it is the fault-injection
// point here.
package quantos

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"rad/internal/device"
)

const (
	baseLatency   = 4 * time.Millisecond
	jitterLatency = 5 * time.Millisecond

	// doseRateMgPerSec is the simulated solid dosing rate.
	doseRateMgPerSec = 2.5
	// zTravelPerSec is the stepper's travel speed in steps/s.
	zTravelPerSec = 400.0
	maxZ          = 2000.0
)

// Quantos is the simulated dosing balance. It is safe for concurrent use.
type Quantos struct {
	env *device.Env

	mu         sync.Mutex
	connected  bool
	doorOpen   bool
	zPos       float64
	zTarget    float64
	zHomeDir   int // +1 or -1
	pinLocked  bool
	targetMass float64 // mg
	dosedMass  float64 // mg currently on the balance
	tareOffset float64 // mg subtracted by zero
	busyUntil  time.Time
	fault      string
}

var (
	_ device.Device    = (*Quantos)(nil)
	_ device.Faultable = (*Quantos)(nil)
)

// New returns a Quantos simulator.
func New(env *device.Env) *Quantos {
	return &Quantos{env: env, zHomeDir: 1}
}

// Name implements device.Device.
func (q *Quantos) Name() string { return device.Quantos }

// InjectFault arms a hardware fault on the next door or dosing command.
func (q *Quantos) InjectFault(reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.fault = reason
}

// ClearFault disarms any armed fault.
func (q *Quantos) ClearFault() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.fault = ""
}

// DoorOpen reports the front door state.
func (q *Quantos) DoorOpen() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.doorOpen
}

// Exec implements device.Device.
func (q *Quantos) Exec(cmd device.Command) (string, error) {
	q.env.Spend(baseLatency, jitterLatency)
	q.mu.Lock()
	defer q.mu.Unlock()

	if cmd.Name == device.Init {
		q.connected = true
		return "ok", nil
	}
	if !q.connected {
		return "", fmt.Errorf("Quantos %s: %w", cmd.Name, device.ErrNotConnected)
	}
	if q.env.Clock.Now().Before(q.busyUntil) {
		// The Quantos serial interface blocks while an operation is in
		// progress; model that by waiting it out.
		q.env.Clock.Sleep(q.busyUntil.Sub(q.env.Clock.Now()))
	}
	q.zPos = q.zTarget

	switch cmd.Name {
	case "front_door":
		if len(cmd.Args) != 1 || (cmd.Args[0] != "open" && cmd.Args[0] != "close") {
			return "", fmt.Errorf("Quantos front_door %v: %w", cmd.Args, device.ErrBadArgs)
		}
		if q.fault != "" {
			return "", &device.FaultError{Device: device.Quantos, Reason: q.fault}
		}
		q.doorOpen = cmd.Args[0] == "open"
		q.busyUntil = q.env.Clock.Now().Add(1500 * time.Millisecond)
		return "ok", nil
	case "home_z_stage":
		q.zTarget = 0
		q.busyUntil = q.env.Clock.Now().Add(time.Duration(q.zPos / zTravelPerSec * float64(time.Second)))
		return "ok", nil
	case "move_z_axis":
		v, err := oneFloat(cmd.Args)
		if err != nil || v < 0 || v > maxZ {
			return "", fmt.Errorf("Quantos move_z_axis %v: %w", cmd.Args, device.ErrBadArgs)
		}
		dist := v - q.zPos
		if dist < 0 {
			dist = -dist
		}
		q.zTarget = v
		q.busyUntil = q.env.Clock.Now().Add(time.Duration(dist / zTravelPerSec * float64(time.Second)))
		return "ok", nil
	case "set_home_direction":
		if len(cmd.Args) != 1 || (cmd.Args[0] != "1" && cmd.Args[0] != "-1") {
			return "", fmt.Errorf("Quantos set_home_direction %v: %w", cmd.Args, device.ErrBadArgs)
		}
		q.zHomeDir, _ = strconv.Atoi(cmd.Args[0])
		return "ok", nil
	case "zero":
		q.tareOffset = q.dosedMass
		return "0.000", nil
	case "target_mass":
		v, err := oneFloat(cmd.Args)
		if err != nil || v <= 0 {
			return "", fmt.Errorf("Quantos target_mass %v: %w", cmd.Args, device.ErrBadArgs)
		}
		q.targetMass = v
		return "ok", nil
	case "start_dosing":
		return q.doseLocked()
	case "lock_dosing_pin_position":
		q.pinLocked = true
		return "ok", nil
	case "unlock_dosing_pin_position":
		q.pinLocked = false
		return "ok", nil
	default:
		return "", fmt.Errorf("Quantos %s: %w", cmd.Name, device.ErrUnknownCommand)
	}
}

// doseLocked runs a dosing cycle: doses toward the target mass at the
// configured rate, returning the weighed amount.
func (q *Quantos) doseLocked() (string, error) {
	if q.fault != "" {
		return "", &device.FaultError{Device: device.Quantos, Reason: q.fault}
	}
	if q.targetMass <= 0 {
		return "", fmt.Errorf("Quantos start_dosing before target_mass: %w", device.ErrBadArgs)
	}
	if q.doorOpen {
		return "", fmt.Errorf("Quantos start_dosing with front door open: %w", device.ErrBadArgs)
	}
	if !q.pinLocked {
		return "", fmt.Errorf("Quantos start_dosing with dosing pin unlocked: %w", device.ErrBadArgs)
	}
	// Dosing overshoots or undershoots by a small percentage, as real
	// powder dosing does.
	dosed := q.targetMass * (1 + q.env.Noise(0.02))
	if dosed < 0 {
		dosed = 0
	}
	q.dosedMass += dosed
	q.env.Clock.Sleep(time.Duration(dosed / doseRateMgPerSec * float64(time.Second)))
	reading := q.dosedMass - q.tareOffset
	return strconv.FormatFloat(reading, 'f', 3, 64), nil
}

func oneFloat(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 argument, got %d: %w", len(args), device.ErrBadArgs)
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("argument %q: %w", args[0], device.ErrBadArgs)
	}
	return v, nil
}
