package quantos

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/simclock"
)

func newTestQuantos() (*Quantos, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	return New(device.NewEnv(clock, 1)), clock
}

func exec(t *testing.T, d device.Device, name string, args ...string) string {
	t.Helper()
	v, err := d.Exec(device.Command{Device: d.Name(), Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func TestRequiresInit(t *testing.T) {
	q, _ := newTestQuantos()
	if _, err := q.Exec(device.Command{Name: "zero"}); !errors.Is(err, device.ErrNotConnected) {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
}

func TestDoorStateTracked(t *testing.T) {
	q, _ := newTestQuantos()
	exec(t, q, device.Init)
	exec(t, q, "front_door", "open")
	if !q.DoorOpen() {
		t.Error("door should be open")
	}
	exec(t, q, "front_door", "close")
	if q.DoorOpen() {
		t.Error("door should be closed")
	}
	if _, err := q.Exec(device.Command{Name: "front_door", Args: []string{"ajar"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("front_door ajar: %v", err)
	}
}

func TestDosingWorkflow(t *testing.T) {
	q, clock := newTestQuantos()
	exec(t, q, device.Init)
	exec(t, q, "lock_dosing_pin_position")
	exec(t, q, "target_mass", "50")
	before := clock.Now()
	got := exec(t, q, "start_dosing")
	dosed, err := strconv.ParseFloat(got, 64)
	if err != nil {
		t.Fatalf("dose response %q: %v", got, err)
	}
	// ±2% dosing tolerance with noise; allow generous bounds.
	if dosed < 45 || dosed > 55 {
		t.Errorf("dosed %v mg, want ≈50", dosed)
	}
	// 50 mg at 2.5 mg/s ≈ 20 s of dosing time.
	if elapsed := clock.Now().Sub(before); elapsed < 10*time.Second {
		t.Errorf("dosing advanced clock by only %v", elapsed)
	}
	// Taring resets the reading; further dosing is measured from zero.
	exec(t, q, "zero")
	got2 := exec(t, q, "start_dosing")
	d2, _ := strconv.ParseFloat(got2, 64)
	if d2 < 45 || d2 > 55 {
		t.Errorf("post-tare dose reading %v, want ≈50", d2)
	}
}

func TestDosingPreconditions(t *testing.T) {
	q, _ := newTestQuantos()
	exec(t, q, device.Init)

	// No target mass yet.
	exec(t, q, "lock_dosing_pin_position")
	if _, err := q.Exec(device.Command{Name: "start_dosing"}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("dosing without target: %v", err)
	}
	exec(t, q, "target_mass", "25")

	// Door open blocks dosing.
	exec(t, q, "front_door", "open")
	if _, err := q.Exec(device.Command{Name: "start_dosing"}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("dosing with door open: %v", err)
	}
	exec(t, q, "front_door", "close")

	// Unlocked pin blocks dosing.
	exec(t, q, "unlock_dosing_pin_position")
	if _, err := q.Exec(device.Command{Name: "start_dosing"}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("dosing with pin unlocked: %v", err)
	}
	exec(t, q, "lock_dosing_pin_position")
	exec(t, q, "start_dosing")
}

func TestZStage(t *testing.T) {
	q, clock := newTestQuantos()
	exec(t, q, device.Init)
	exec(t, q, "set_home_direction", "-1")
	exec(t, q, "move_z_axis", "800")
	clock.Advance(10 * time.Second)
	exec(t, q, "home_z_stage")
	if _, err := q.Exec(device.Command{Name: "move_z_axis", Args: []string{"99999"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("z overrange: %v", err)
	}
	if _, err := q.Exec(device.Command{Name: "set_home_direction", Args: []string{"2"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("bad home direction: %v", err)
	}
}

func TestFrontDoorFault(t *testing.T) {
	q, _ := newTestQuantos()
	exec(t, q, device.Init)
	q.InjectFault("front door crashed into UR3e")
	_, err := q.Exec(device.Command{Name: "front_door", Args: []string{"open"}})
	var fe *device.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want FaultError, got %v", err)
	}
	// Dosing also blocked while the fault stands.
	exec(t, q, "lock_dosing_pin_position")
	exec(t, q, "target_mass", "10")
	if _, err := q.Exec(device.Command{Name: "start_dosing"}); err == nil {
		t.Error("dosing should fail while fault armed")
	}
	q.ClearFault()
	exec(t, q, "front_door", "open")
}

func TestTargetMassValidation(t *testing.T) {
	q, _ := newTestQuantos()
	exec(t, q, device.Init)
	for _, arg := range []string{"0", "-5", "abc"} {
		if _, err := q.Exec(device.Command{Name: "target_mass", Args: []string{arg}}); !errors.Is(err, device.ErrBadArgs) {
			t.Errorf("target_mass(%s): %v", arg, err)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	q, _ := newTestQuantos()
	exec(t, q, device.Init)
	if _, err := q.Exec(device.Command{Name: "levitate"}); !errors.Is(err, device.ErrUnknownCommand) {
		t.Errorf("want ErrUnknownCommand, got %v", err)
	}
}

func TestAllCatalogCommandsImplemented(t *testing.T) {
	q, _ := newTestQuantos()
	exec(t, q, device.Init)
	argsFor := map[string][]string{
		"front_door":         {"close"},
		"move_z_axis":        {"100"},
		"set_home_direction": {"1"},
		"target_mass":        {"30"},
	}
	// Order matters: configure before dosing.
	order := []string{
		"front_door", "home_z_stage", "zero", "set_home_direction",
		"move_z_axis", "lock_dosing_pin_position", "target_mass",
		"start_dosing", "unlock_dosing_pin_position",
	}
	for _, name := range order {
		if _, err := q.Exec(device.Command{Name: name, Args: argsFor[name]}); err != nil {
			t.Errorf("catalog command %s failed: %v", name, err)
		}
	}
}
