package device

import (
	"testing"
	"time"

	"rad/internal/simclock"
)

func TestCatalogHas52Commands(t *testing.T) {
	cat := Catalog()
	if len(cat) != 52 {
		t.Fatalf("catalog has %d commands, paper reports 52", len(cat))
	}
}

func TestCatalogKeysUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Catalog() {
		k := s.Key()
		if seen[k] {
			t.Errorf("duplicate catalog key %q", k)
		}
		seen[k] = true
	}
}

func TestCatalogPerDeviceCounts(t *testing.T) {
	want := map[string]int{C9: 12, UR3e: 6, IKA: 13, Tecan: 11, Quantos: 10}
	got := make(map[string]int)
	for _, s := range Catalog() {
		got[s.Device]++
	}
	for dev, n := range want {
		if got[dev] != n {
			t.Errorf("%s: got %d command types, want %d", dev, got[dev], n)
		}
	}
}

func TestCatalogEveryDeviceHasInit(t *testing.T) {
	hasInit := make(map[string]bool)
	for _, s := range Catalog() {
		if s.Name == Init {
			hasInit[s.Device] = true
		}
	}
	for _, dev := range Names() {
		if !hasInit[dev] {
			t.Errorf("%s: catalog missing %s", dev, Init)
		}
	}
}

func TestCommandsForFiltersAndPreservesOrder(t *testing.T) {
	cmds := CommandsFor(Tecan)
	if len(cmds) != 11 {
		t.Fatalf("Tecan: got %d commands, want 11", len(cmds))
	}
	if cmds[0].Name != "Q" {
		t.Errorf("first Tecan command = %q, want Q (catalog order)", cmds[0].Name)
	}
	for _, c := range cmds {
		if c.Device != Tecan {
			t.Errorf("CommandsFor(Tecan) returned %q", c.Device)
		}
	}
}

func TestCatalogByKeyLookup(t *testing.T) {
	m := CatalogByKey()
	s, ok := m["C9.ARM"]
	if !ok {
		t.Fatal("C9.ARM missing from catalog index")
	}
	if s.Readable != "move_arm" {
		t.Errorf("C9.ARM readable = %q, want move_arm", s.Readable)
	}
	if !s.Mutating {
		t.Error("C9.ARM should be mutating")
	}
	if q := m["Tecan.Q"]; q.Mutating {
		t.Error("Tecan.Q (get_status) should not be mutating")
	}
}

func TestCommandString(t *testing.T) {
	c := Command{Device: C9, Name: "ARM", Args: []string{"10", "20"}}
	if got, want := c.String(), "C9.ARM(10, 20)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEnvSpendAdvancesVirtualClock(t *testing.T) {
	start := time.Date(2021, 9, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewVirtual(start)
	env := NewEnv(clock, 1)
	env.Spend(5*time.Millisecond, 0)
	if got := clock.Now().Sub(start); got != 5*time.Millisecond {
		t.Errorf("clock advanced %v, want 5ms", got)
	}
	env.Spend(time.Millisecond, 2*time.Millisecond)
	adv := clock.Now().Sub(start)
	if adv < 6*time.Millisecond || adv >= 8*time.Millisecond {
		t.Errorf("clock advanced %v, want in [6ms, 8ms)", adv)
	}
}

func TestEnvDeterministicBySeed(t *testing.T) {
	a := NewEnv(simclock.NewVirtual(time.Unix(0, 0)), 7)
	b := NewEnv(simclock.NewVirtual(time.Unix(0, 0)), 7)
	for i := 0; i < 100; i++ {
		if x, y := a.Noise(1.0), b.Noise(1.0); x != y {
			t.Fatalf("sample %d: %v != %v (same seed must give same stream)", i, x, y)
		}
	}
}

func TestFaultErrorMessage(t *testing.T) {
	err := &FaultError{Device: Quantos, Reason: "front door crashed into UR3e"}
	want := "Quantos: hardware fault: front door crashed into UR3e"
	if err.Error() != want {
		t.Errorf("got %q want %q", err.Error(), want)
	}
}
