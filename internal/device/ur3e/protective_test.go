package ur3e

import (
	"errors"
	"testing"
)

import (
	"rad/internal/device"
)

func TestProtectiveStopOnExcessiveSpeed(t *testing.T) {
	arm, _, _ := newTestArm()
	exec(t, arm, device.Init)

	// A move within the safety limit works.
	exec(t, arm, "move_to_location", "L1", "600")

	// A move beyond it trips the protective stop.
	_, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"L2", "900"}})
	if !errors.Is(err, ErrProtectiveStop) {
		t.Fatalf("want ErrProtectiveStop, got %v", err)
	}
	// The arm did not move.
	if got := arm.Pose(); got[0] == -0.40 {
		t.Error("arm moved despite the protective stop")
	}

	// Everything is refused until re-initialization — including safe moves
	// and gripper commands.
	if _, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"L1"}}); !errors.Is(err, ErrProtectiveStop) {
		t.Errorf("post-stop move: %v", err)
	}
	if _, err := arm.Exec(device.Command{Name: "open_gripper"}); !errors.Is(err, ErrProtectiveStop) {
		t.Errorf("post-stop gripper: %v", err)
	}

	// Re-initialization clears the stop.
	exec(t, arm, device.Init)
	exec(t, arm, "move_to_location", "L1")
}

// TestSpeedAttackBeyondLimitIsSelfDefeating documents the physical backstop:
// an aggressive speed attack trips the safety system, which both halts the
// process and leaves an exception trail in the trace.
func TestSpeedAttackBeyondLimitIsSelfDefeating(t *testing.T) {
	arm, _, _ := newTestArm()
	exec(t, arm, device.Init)
	// The attacker triples a 250 mm/s move: 750 > 600 trips the stop.
	_, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"L3", "750"}})
	if !errors.Is(err, ErrProtectiveStop) {
		t.Fatalf("want ErrProtectiveStop, got %v", err)
	}
}
