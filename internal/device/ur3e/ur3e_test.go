package ur3e

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/power"
	"rad/internal/robot"
	"rad/internal/simclock"
)

func newTestArm() (*UR3e, *power.Monitor, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	mon := power.NewMonitor(power.DefaultModel(), clock, 7)
	arm := New(device.NewEnv(clock, 1), mon)
	return arm, mon, clock
}

func exec(t *testing.T, d device.Device, name string, args ...string) string {
	t.Helper()
	v, err := d.Exec(device.Command{Device: d.Name(), Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func TestRequiresInit(t *testing.T) {
	arm, _, _ := newTestArm()
	_, err := arm.Exec(device.Command{Name: "open_gripper"})
	if !errors.Is(err, device.ErrNotConnected) {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
}

func TestMoveToLocationAdvancesClockAndRecordsPower(t *testing.T) {
	arm, mon, clock := newTestArm()
	exec(t, arm, device.Init)
	before := clock.Now()
	exec(t, arm, "move_to_location", "L1")
	if got := clock.Now().Sub(before); got < 100*time.Millisecond {
		t.Errorf("move advanced clock by only %v; UR3e moves take ~seconds", got)
	}
	if mon.Len() == 0 {
		t.Error("no power samples recorded during move")
	}
	want, _ := robot.Location("L1")
	if arm.Pose() != want {
		t.Errorf("pose = %v, want L1 %v", arm.Pose(), want)
	}
}

func TestMoveJointsExplicitAngles(t *testing.T) {
	arm, _, _ := newTestArm()
	exec(t, arm, device.Init)
	args := []string{"0.5", "-1.2", "0.3", "-1.4", "0.1", "0.0"}
	exec(t, arm, "move_joints", args...)
	got := arm.Pose()
	want := robot.Config{0.5, -1.2, 0.3, -1.4, 0.1, 0.0}
	if got != want {
		t.Errorf("pose = %v, want %v", got, want)
	}
}

func TestMoveJointsWithVelocity(t *testing.T) {
	slow, _, slowClock := newTestArm()
	fast, _, fastClock := newTestArm()
	exec(t, slow, device.Init)
	exec(t, fast, device.Init)
	args := []string{"0.9", "-1.2", "0.35", "-1.4", "0.2", "0"}
	t0, t1 := slowClock.Now(), fastClock.Now()
	exec(t, slow, "move_joints", append(args, "100")...)
	exec(t, fast, "move_joints", append(args, "250")...)
	if slowClock.Now().Sub(t0) <= fastClock.Now().Sub(t1) {
		t.Error("100 mm/s move should take longer than 250 mm/s")
	}
}

func TestMoveArgValidation(t *testing.T) {
	arm, _, _ := newTestArm()
	exec(t, arm, device.Init)
	bad := [][]string{
		{},
		{"1", "2", "3"},
		{"1", "2", "3", "4", "5", "bogus"},
		{"1", "2", "3", "4", "5", "6", "-100"},
		{"1", "2", "3", "4", "5", "6", "7", "8"},
	}
	for _, args := range bad {
		if _, err := arm.Exec(device.Command{Name: "move_joints", Args: args}); !errors.Is(err, device.ErrBadArgs) {
			t.Errorf("move_joints(%v): want ErrBadArgs, got %v", args, err)
		}
	}
	if _, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"narnia"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("unknown location: %v", err)
	}
	if _, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"L1", "0"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("zero velocity: %v", err)
	}
}

func TestGripperControlsPayload(t *testing.T) {
	arm, mon, _ := newTestArm()
	exec(t, arm, device.Init)
	arm.SetNextPayload(0.5)
	if mon.Payload() != 0 {
		t.Error("payload should be 0 before gripping")
	}
	exec(t, arm, "close_gripper")
	if mon.Payload() != 0.5 {
		t.Errorf("payload after close = %v, want 0.5", mon.Payload())
	}
	exec(t, arm, "open_gripper")
	if mon.Payload() != 0 {
		t.Errorf("payload after open = %v, want 0", mon.Payload())
	}
	arm.SetNextPayload(-1)
	exec(t, arm, "close_gripper")
	if mon.Payload() != 0 {
		t.Errorf("negative payload clamped: got %v", mon.Payload())
	}
}

func TestMoveCircularSlowerThanDirect(t *testing.T) {
	direct, _, dc := newTestArm()
	circular, _, cc := newTestArm()
	exec(t, direct, device.Init)
	exec(t, circular, device.Init)
	t0, t1 := dc.Now(), cc.Now()
	exec(t, direct, "move_to_location", "L2")
	exec(t, circular, "move_circular", "L2")
	if cc.Now().Sub(t1) <= dc.Now().Sub(t0) {
		t.Error("circular arc should take longer than the direct move")
	}
}

func TestFaultOnMotion(t *testing.T) {
	arm, _, _ := newTestArm()
	exec(t, arm, device.Init)
	arm.InjectFault("Quantos front door crashed into UR3e")
	_, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"quantos_tray"}})
	var fe *device.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want FaultError, got %v", err)
	}
	arm.ClearFault()
	exec(t, arm, "move_to_location", "quantos_tray")
}

func TestWorksWithoutMonitor(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	arm := New(device.NewEnv(clock, 1), nil)
	exec(t, arm, device.Init)
	before := clock.Now()
	exec(t, arm, "move_to_location", "L3")
	if clock.Now().Sub(before) < 100*time.Millisecond {
		t.Error("move without monitor should still advance the clock")
	}
	exec(t, arm, "close_gripper") // no panic with nil monitor
}

func TestUnknownCommand(t *testing.T) {
	arm, _, _ := newTestArm()
	exec(t, arm, device.Init)
	if _, err := arm.Exec(device.Command{Name: "fly"}); !errors.Is(err, device.ErrUnknownCommand) {
		t.Errorf("want ErrUnknownCommand, got %v", err)
	}
}

func ExampleUR3e() {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	mon := power.NewMonitor(power.DefaultModel(), clock, 7)
	arm := New(device.NewEnv(clock, 1), mon)
	_, _ = arm.Exec(device.Command{Name: device.Init})
	v, _ := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"storage_rack"}})
	fmt.Println(v, mon.Len() > 0)
	// Output: ok true
}
