// Package ur3e simulates the Universal Robots UR3e six-axis arm: the six
// command types traced in RAD (move_joints, move_to_location, open_gripper,
// close_gripper, move_circular, __init__) and the real-time power telemetry
// that the paper's §VI analyses use.
//
// Unlike the C9's asynchronous protocol, UR3e moves are synchronous — the
// Python urx calls block until the motion completes — so Exec advances the
// simulation clock by the motion's duration while the attached power.Monitor
// records one 122-property sample every 40 ms.
package ur3e

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"rad/internal/device"
	"rad/internal/power"
	"rad/internal/robot"
)

const (
	baseLatency   = 1 * time.Millisecond
	jitterLatency = 2 * time.Millisecond

	// MaxSafeVelocityMMS is the tool-speed safety limit: commanding a move
	// faster than this trips a protective stop, as a real UR arm's safety
	// system would. The arm stays stopped until re-initialized.
	MaxSafeVelocityMMS = 600
)

// ErrProtectiveStop is returned for motion commands while the arm is in a
// protective stop, and (wrapped) for the command that tripped it.
var ErrProtectiveStop = errors.New("UR3e: protective stop")

// UR3e is the simulated arm. It is safe for concurrent use.
type UR3e struct {
	env     *device.Env
	monitor *power.Monitor

	mu          sync.Mutex
	connected   bool
	pose        robot.Config
	gripperOpen bool
	// nextPayload is the mass (kg) of whatever object sits under the
	// gripper: set by the procedure as physical context, it becomes the
	// carried payload when the gripper closes. Weights are not command
	// arguments (§VI) — they are an artifact of the object lifted.
	nextPayload float64
	fault       string
	// protectiveStop latches when a command exceeds the safety limits;
	// only __init__ clears it.
	protectiveStop bool
}

var (
	_ device.Device    = (*UR3e)(nil)
	_ device.Faultable = (*UR3e)(nil)
)

// New returns a UR3e simulator. The monitor may be nil when power telemetry
// is not being collected (the paper collects power data only from the UR3e,
// and only when the monitoring module is enabled).
func New(env *device.Env, monitor *power.Monitor) *UR3e {
	home, _ := robot.Location("home")
	return &UR3e{env: env, monitor: monitor, pose: home, gripperOpen: true}
}

// Name implements device.Device.
func (u *UR3e) Name() string { return device.UR3e }

// Monitor returns the attached power monitor (nil if none).
func (u *UR3e) Monitor() *power.Monitor { return u.monitor }

// Pose returns the arm's current joint configuration.
func (u *UR3e) Pose() robot.Config {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.pose
}

// SetNextPayload records the mass (kg) of the object the gripper would pick
// up on its next close — procedure-level physical context, not a command.
func (u *UR3e) SetNextPayload(kg float64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if kg < 0 {
		kg = 0
	}
	u.nextPayload = kg
}

// InjectFault arms a hardware fault on the next motion command.
func (u *UR3e) InjectFault(reason string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.fault = reason
}

// ClearFault disarms any armed fault.
func (u *UR3e) ClearFault() {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.fault = ""
}

// Exec implements device.Device.
func (u *UR3e) Exec(cmd device.Command) (string, error) {
	u.env.Spend(baseLatency, jitterLatency)
	u.mu.Lock()
	defer u.mu.Unlock()

	if cmd.Name == device.Init {
		u.connected = true
		u.protectiveStop = false
		return "ok", nil
	}
	if !u.connected {
		return "", fmt.Errorf("UR3e %s: %w", cmd.Name, device.ErrNotConnected)
	}
	if u.protectiveStop {
		return "", fmt.Errorf("%w: re-initialize to resume", ErrProtectiveStop)
	}

	switch cmd.Name {
	case "move_joints":
		target, vel, err := parseJointArgs(cmd.Args)
		if err != nil {
			return "", err
		}
		return u.moveLocked(target, vel, 1.0)
	case "move_to_location":
		target, vel, err := parseLocationArgs(cmd.Args)
		if err != nil {
			return "", err
		}
		return u.moveLocked(target, vel, 1.0)
	case "move_circular":
		// A circular (process) move through an arc to the named location:
		// same endpoints, longer path, executed at reduced effective speed.
		target, vel, err := parseLocationArgs(cmd.Args)
		if err != nil {
			return "", err
		}
		return u.moveLocked(target, vel, 0.7)
	case "open_gripper":
		u.gripperOpen = true
		if u.monitor != nil {
			u.monitor.SetPayload(0)
		}
		return "ok", nil
	case "close_gripper":
		u.gripperOpen = false
		if u.monitor != nil {
			u.monitor.SetPayload(u.nextPayload)
		}
		return "ok", nil
	default:
		return "", fmt.Errorf("UR3e %s: %w", cmd.Name, device.ErrUnknownCommand)
	}
}

// moveLocked plans and executes a synchronous move. velScale < 1 slows the
// motion (used for circular arcs).
func (u *UR3e) moveLocked(target robot.Config, velMMS, velScale float64) (string, error) {
	if u.fault != "" {
		reason := u.fault
		return "", &device.FaultError{Device: device.UR3e, Reason: reason}
	}
	if velMMS > MaxSafeVelocityMMS {
		// The safety system refuses the motion and latches a protective
		// stop — the physically observable consequence of a speed attack.
		u.protectiveStop = true
		return "", fmt.Errorf("%w: commanded %.0f mm/s exceeds the %d mm/s safety limit",
			ErrProtectiveStop, velMMS, MaxSafeVelocityMMS)
	}
	mv, err := robot.NewMove(u.pose, target, robot.LinearToAngular(velMMS)*velScale, robot.DefaultAccel)
	if err != nil {
		return "", fmt.Errorf("UR3e move: %w", err)
	}
	if u.monitor != nil {
		u.monitor.RecordMove(mv)
	} else {
		u.env.Clock.Sleep(time.Duration(mv.Duration() * float64(time.Second)))
	}
	u.pose = target
	return "ok", nil
}

// parseJointArgs parses move_joints arguments: six joint angles followed by
// an optional linear velocity in mm/s.
func parseJointArgs(args []string) (robot.Config, float64, error) {
	var cfg robot.Config
	if len(args) != robot.NumJoints && len(args) != robot.NumJoints+1 {
		return cfg, 0, fmt.Errorf("UR3e move_joints wants %d angles [+velocity], got %d: %w",
			robot.NumJoints, len(args), device.ErrBadArgs)
	}
	for i := 0; i < robot.NumJoints; i++ {
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return cfg, 0, fmt.Errorf("UR3e joint angle %q: %w", args[i], device.ErrBadArgs)
		}
		cfg[i] = v
	}
	vel := robot.DefaultVelocityMMS
	if len(args) == robot.NumJoints+1 {
		v, err := strconv.ParseFloat(args[robot.NumJoints], 64)
		if err != nil || v <= 0 {
			return cfg, 0, fmt.Errorf("UR3e velocity %q: %w", args[robot.NumJoints], device.ErrBadArgs)
		}
		vel = v
	}
	return cfg, vel, nil
}

// parseLocationArgs parses move_to_location/move_circular arguments: a named
// waypoint followed by an optional linear velocity in mm/s.
func parseLocationArgs(args []string) (robot.Config, float64, error) {
	var cfg robot.Config
	if len(args) != 1 && len(args) != 2 {
		return cfg, 0, fmt.Errorf("UR3e wants location [+velocity], got %d args: %w", len(args), device.ErrBadArgs)
	}
	cfg, ok := robot.Location(args[0])
	if !ok {
		return cfg, 0, fmt.Errorf("UR3e unknown location %q: %w", args[0], device.ErrBadArgs)
	}
	vel := robot.DefaultVelocityMMS
	if len(args) == 2 {
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil || v <= 0 {
			return cfg, 0, fmt.Errorf("UR3e velocity %q: %w", args[1], device.ErrBadArgs)
		}
		vel = v
	}
	return cfg, vel, nil
}
