package tecan

import (
	"errors"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/simclock"
)

func newTestPump() (*Tecan, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	return New(device.NewEnv(clock, 1)), clock
}

func exec(t *testing.T, d device.Device, name string, args ...string) string {
	t.Helper()
	v, err := d.Exec(device.Command{Device: d.Name(), Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func TestRequiresInit(t *testing.T) {
	p, _ := newTestPump()
	if _, err := p.Exec(device.Command{Name: "Q"}); !errors.Is(err, device.ErrNotConnected) {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
}

func TestStatusPollingDuringMove(t *testing.T) {
	p, clock := newTestPump()
	exec(t, p, device.Init)
	if got := exec(t, p, "Q"); got != statusIdle {
		t.Errorf("idle status = %q, want %q", got, statusIdle)
	}
	exec(t, p, "V", "1000")
	exec(t, p, "A", "3000") // 3000 increments at 1000/s = 3s
	if got := exec(t, p, "Q"); got != statusBusy {
		t.Errorf("status during move = %q, want %q", got, statusBusy)
	}
	clock.Advance(5 * time.Second)
	if got := exec(t, p, "Q"); got != statusIdle {
		t.Errorf("status after move = %q, want %q", got, statusIdle)
	}
}

func TestRelativePickupAndOverrun(t *testing.T) {
	p, clock := newTestPump()
	exec(t, p, device.Init)
	exec(t, p, "A", "5000")
	clock.Advance(time.Minute)
	exec(t, p, "P", "500")
	clock.Advance(time.Minute)
	// 5000 + 500 = 5500 is fine, another 1000 overruns the 6000 limit.
	if _, err := p.Exec(device.Command{Name: "P", Args: []string{"1000"}}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("overrun P: want ErrBadArgs, got %v", err)
	}
}

func TestHomeCommand(t *testing.T) {
	p, clock := newTestPump()
	exec(t, p, device.Init)
	exec(t, p, "A", "2000")
	clock.Advance(time.Minute)
	exec(t, p, "Z")
	if got := exec(t, p, "Q"); got != statusBusy {
		t.Errorf("Z should start a motion, status = %q", got)
	}
	clock.Advance(time.Minute)
	if got := exec(t, p, "Q"); got != statusIdle {
		t.Errorf("after homing, status = %q", got)
	}
}

func TestParameterValidation(t *testing.T) {
	p, _ := newTestPump()
	exec(t, p, device.Init)
	bad := []struct {
		cmd  string
		args []string
	}{
		{"A", []string{"-1"}}, {"A", []string{"6001"}}, {"A", nil},
		{"V", []string{"4"}}, {"V", []string{"5801"}},
		{"I", []string{"0"}}, {"I", []string{"10"}},
		{"k", []string{"-1"}}, {"k", []string{"32"}},
		{"L", []string{"0"}}, {"L", []string{"21"}},
		{"P", []string{"-5"}},
	}
	for _, b := range bad {
		if _, err := p.Exec(device.Command{Name: b.cmd, Args: b.args}); !errors.Is(err, device.ErrBadArgs) {
			t.Errorf("%s(%v): want ErrBadArgs, got %v", b.cmd, b.args, err)
		}
	}
	// Valid settings succeed.
	exec(t, p, "V", "1400")
	exec(t, p, "I", "2")
	exec(t, p, "k", "5")
	exec(t, p, "L", "14")
}

func TestBatchRecordsAndExecutes(t *testing.T) {
	p, clock := newTestPump()
	exec(t, p, device.Init)
	exec(t, p, "V", "1000")
	before := clock.Now()
	exec(t, p, "g")
	exec(t, p, "A", "1000")
	exec(t, p, "I", "3")
	exec(t, p, "A", "0")
	// Queued commands have no effect yet (aside from protocol latency).
	if clock.Now().Sub(before) > 100*time.Millisecond {
		t.Error("queued batch commands should not execute eagerly")
	}
	exec(t, p, "G")
	// Executing the batch moves 1000 up and 1000 back at 1000/s → ≈2s.
	elapsed := clock.Now().Sub(before)
	if elapsed < 1500*time.Millisecond {
		t.Errorf("batch execution advanced clock by %v, want ≈2s", elapsed)
	}
	if got := exec(t, p, "Q"); got != statusIdle {
		t.Errorf("after batch, status = %q", got)
	}
}

func TestStopBatchWithoutStartFails(t *testing.T) {
	p, _ := newTestPump()
	exec(t, p, device.Init)
	if _, err := p.Exec(device.Command{Name: "G"}); !errors.Is(err, device.ErrBadArgs) {
		t.Errorf("G without g: want ErrBadArgs, got %v", err)
	}
}

func TestUnknownCommand(t *testing.T) {
	p, _ := newTestPump()
	exec(t, p, device.Init)
	if _, err := p.Exec(device.Command{Name: "X"}); !errors.Is(err, device.ErrUnknownCommand) {
		t.Errorf("want ErrUnknownCommand, got %v", err)
	}
}

func TestBusyAccessor(t *testing.T) {
	p, clock := newTestPump()
	exec(t, p, device.Init)
	if p.Busy() {
		t.Error("fresh pump reported busy")
	}
	exec(t, p, "A", "3000")
	if !p.Busy() {
		t.Error("pump not busy during move")
	}
	clock.Advance(time.Minute)
	if p.Busy() {
		t.Error("pump busy after move completed")
	}
}
