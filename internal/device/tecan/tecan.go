// Package tecan simulates the Tecan Cavro XLP 6000 syringe pump. The pump
// speaks a single-letter serial protocol (Fig. 5a): Q polls status, A moves
// the plunger to an absolute position, P picks up a relative distance, V
// sets the plunger velocity, I switches the valve, Z homes, k/L configure
// dead volume and slope, and g/G record and execute a batch of commands.
//
// Plunger motions are asynchronous: a move command returns immediately and Q
// reports busy ("@") until the motion completes, which is why solubility
// traces show long runs of Q commands (the QQQQ n-grams of Fig. 5b).
package tecan

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"rad/internal/device"
)

const (
	baseLatency   = 2 * time.Millisecond
	jitterLatency = 2 * time.Millisecond

	// Plunger coordinate space and limits of the XLP 6000.
	maxPosition = 6000
	maxVelocity = 5800
	minVelocity = 5
	numValves   = 9
	maxDeadVol  = 31
	maxSlope    = 20

	// Status bytes: '`' idle with no error, '@' busy (per the Cavro OEM
	// protocol's status-byte convention).
	statusIdle = "`"
	statusBusy = "@"
)

// Tecan is the simulated pump. It is safe for concurrent use.
type Tecan struct {
	env *device.Env

	mu        sync.Mutex
	connected bool
	position  float64 // plunger increments, 0..6000
	target    float64
	velocity  float64 // increments/s
	valve     int
	deadVol   int
	slope     int
	busyUntil time.Time
	batching  bool
	batch     []device.Command
}

var _ device.Device = (*Tecan)(nil)

// New returns a Tecan simulator.
func New(env *device.Env) *Tecan {
	return &Tecan{env: env, velocity: 1400, valve: 1, slope: 14}
}

// Name implements device.Device.
func (p *Tecan) Name() string { return device.Tecan }

// Busy reports whether the plunger is still moving.
func (p *Tecan) Busy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busyLocked()
}

func (p *Tecan) busyLocked() bool { return p.env.Clock.Now().Before(p.busyUntil) }

func (p *Tecan) settleLocked() {
	if !p.busyLocked() {
		p.position = p.target
	}
}

// Exec implements device.Device.
func (p *Tecan) Exec(cmd device.Command) (string, error) {
	p.env.Spend(baseLatency, jitterLatency)
	p.mu.Lock()
	defer p.mu.Unlock()

	if cmd.Name == device.Init {
		p.connected = true
		p.target = p.position
		return statusIdle, nil
	}
	if !p.connected {
		return "", fmt.Errorf("Tecan %s: %w", cmd.Name, device.ErrNotConnected)
	}
	p.settleLocked()

	// While recording a batch, everything except Q, g and G is queued.
	if p.batching && cmd.Name != "Q" && cmd.Name != "g" && cmd.Name != "G" {
		p.batch = append(p.batch, cmd)
		return statusIdle, nil
	}

	switch cmd.Name {
	case "Q":
		if p.busyLocked() {
			return statusBusy, nil
		}
		return statusIdle, nil
	case "A":
		v, err := oneFloat(cmd.Args)
		if err != nil || v < 0 || v > maxPosition {
			return "", fmt.Errorf("Tecan A %v: %w", cmd.Args, device.ErrBadArgs)
		}
		p.startMoveLocked(v)
		return statusIdle, nil
	case "P":
		v, err := oneFloat(cmd.Args)
		if err != nil || v < 0 {
			return "", fmt.Errorf("Tecan P %v: %w", cmd.Args, device.ErrBadArgs)
		}
		tgt := p.position + v
		if tgt > maxPosition {
			return "", fmt.Errorf("Tecan P overruns plunger (%v + %v): %w", p.position, v, device.ErrBadArgs)
		}
		p.startMoveLocked(tgt)
		return statusIdle, nil
	case "V":
		v, err := oneFloat(cmd.Args)
		if err != nil || v < minVelocity || v > maxVelocity {
			return "", fmt.Errorf("Tecan V %v: %w", cmd.Args, device.ErrBadArgs)
		}
		p.velocity = v
		return statusIdle, nil
	case "I":
		n, err := oneInt(cmd.Args)
		if err != nil || n < 1 || n > numValves {
			return "", fmt.Errorf("Tecan I %v: %w", cmd.Args, device.ErrBadArgs)
		}
		p.valve = n
		return statusIdle, nil
	case "Z":
		p.startMoveLocked(0)
		return statusIdle, nil
	case "k":
		n, err := oneInt(cmd.Args)
		if err != nil || n < 0 || n > maxDeadVol {
			return "", fmt.Errorf("Tecan k %v: %w", cmd.Args, device.ErrBadArgs)
		}
		p.deadVol = n
		return statusIdle, nil
	case "L":
		n, err := oneInt(cmd.Args)
		if err != nil || n < 1 || n > maxSlope {
			return "", fmt.Errorf("Tecan L %v: %w", cmd.Args, device.ErrBadArgs)
		}
		p.slope = n
		return statusIdle, nil
	case "g":
		p.batching = true
		p.batch = p.batch[:0]
		return statusIdle, nil
	case "G":
		if !p.batching {
			return "", fmt.Errorf("Tecan G without g: %w", device.ErrBadArgs)
		}
		p.batching = false
		return p.runBatchLocked()
	default:
		return "", fmt.Errorf("Tecan %s: %w", cmd.Name, device.ErrUnknownCommand)
	}
}

// startMoveLocked begins an asynchronous plunger motion.
func (p *Tecan) startMoveLocked(target float64) {
	dist := target - p.position
	if dist < 0 {
		dist = -dist
	}
	dur := time.Duration(dist / p.velocity * float64(time.Second))
	p.target = target
	p.busyUntil = p.env.Clock.Now().Add(dur)
}

// runBatchLocked replays the queued batch synchronously: each queued motion
// completes (advancing the clock) before the next starts.
func (p *Tecan) runBatchLocked() (string, error) {
	cmds := p.batch
	p.batch = nil
	for _, cmd := range cmds {
		// Re-dispatch the queued command outside batching mode. Unlock is
		// unnecessary: we call the internal handlers directly.
		switch cmd.Name {
		case "A", "P", "Z":
			var tgt float64
			switch cmd.Name {
			case "A":
				v, err := oneFloat(cmd.Args)
				if err != nil || v < 0 || v > maxPosition {
					return "", fmt.Errorf("Tecan batch A %v: %w", cmd.Args, device.ErrBadArgs)
				}
				tgt = v
			case "P":
				v, err := oneFloat(cmd.Args)
				if err != nil || v < 0 || p.position+v > maxPosition {
					return "", fmt.Errorf("Tecan batch P %v: %w", cmd.Args, device.ErrBadArgs)
				}
				tgt = p.position + v
			case "Z":
				tgt = 0
			}
			p.startMoveLocked(tgt)
			// Batches execute synchronously: wait out the motion.
			p.env.Clock.Sleep(p.busyUntil.Sub(p.env.Clock.Now()))
			p.settleLocked()
		case "V":
			if v, err := oneFloat(cmd.Args); err == nil && v >= minVelocity && v <= maxVelocity {
				p.velocity = v
			}
		case "I":
			if n, err := oneInt(cmd.Args); err == nil && n >= 1 && n <= numValves {
				p.valve = n
			}
		case "k":
			if n, err := oneInt(cmd.Args); err == nil && n >= 0 && n <= maxDeadVol {
				p.deadVol = n
			}
		case "L":
			if n, err := oneInt(cmd.Args); err == nil && n >= 1 && n <= maxSlope {
				p.slope = n
			}
		}
	}
	return statusIdle, nil
}

func oneFloat(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 argument, got %d: %w", len(args), device.ErrBadArgs)
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("argument %q: %w", args[0], device.ErrBadArgs)
	}
	return v, nil
}

func oneInt(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 argument, got %d: %w", len(args), device.ErrBadArgs)
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return 0, fmt.Errorf("argument %q: %w", args[0], device.ErrBadArgs)
	}
	return n, nil
}
