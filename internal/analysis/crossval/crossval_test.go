package crossval

import "testing"

func TestKFoldPaperConfiguration(t *testing.T) {
	// §V-B: 25 runs, five groups of five.
	folds := KFold(25, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	for i, fold := range folds {
		if len(fold.Test) != 5 {
			t.Errorf("fold %d test size = %d, want 5", i, len(fold.Test))
		}
		if len(fold.Train) != 20 {
			t.Errorf("fold %d train size = %d, want 20", i, len(fold.Train))
		}
	}
}

func TestKFoldEveryIndexTestedExactlyOnce(t *testing.T) {
	folds := KFold(25, 5, 42)
	seen := make(map[int]int)
	for _, fold := range folds {
		for _, idx := range fold.Test {
			seen[idx]++
		}
	}
	if len(seen) != 25 {
		t.Fatalf("only %d distinct indices tested", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("index %d tested %d times", idx, n)
		}
	}
}

func TestKFoldTrainTestDisjoint(t *testing.T) {
	for _, fold := range KFold(23, 5, 7) {
		inTest := make(map[int]bool)
		for _, idx := range fold.Test {
			inTest[idx] = true
		}
		for _, idx := range fold.Train {
			if inTest[idx] {
				t.Fatalf("index %d in both train and test", idx)
			}
		}
		if len(fold.Train)+len(fold.Test) != 23 {
			t.Errorf("fold covers %d indices", len(fold.Train)+len(fold.Test))
		}
	}
}

func TestKFoldUnevenSplit(t *testing.T) {
	folds := KFold(7, 3, 1)
	sizes := []int{len(folds[0].Test), len(folds[1].Test), len(folds[2].Test)}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 2 {
		t.Errorf("test sizes = %v, want [3 2 2]", sizes)
	}
}

func TestKFoldDeterministicBySeed(t *testing.T) {
	a := KFold(25, 5, 9)
	b := KFold(25, 5, 9)
	for i := range a {
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("same seed produced different folds")
			}
		}
	}
	c := KFold(25, 5, 10)
	same := true
	for i := range a {
		for j := range a[i].Test {
			if a[i].Test[j] != c[i].Test[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical folds (suspicious)")
	}
}

func TestKFoldDegenerate(t *testing.T) {
	if KFold(5, 1, 1) != nil {
		t.Error("k<2 should give nil")
	}
	if KFold(2, 5, 1) != nil {
		t.Error("n<k should give nil")
	}
}
