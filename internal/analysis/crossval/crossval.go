// Package crossval implements the seeded k-fold cross-validation protocol of
// §V-B: shuffle the runs, divide them into k groups, and hold each group out
// once as the test set.
package crossval

import "math/rand/v2"

// Fold is one train/test split of sample indices.
type Fold struct {
	Train []int
	Test  []int
}

// KFold shuffles indices 0..n-1 with the seeded PRNG and splits them into k
// folds. The first n%k folds receive one extra sample. It returns nil when
// k < 2 or n < k.
func KFold(n, k int, seed uint64) []Fold {
	if k < 2 || n < k {
		return nil
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	perm := rng.Perm(n)

	// Slice the permutation into k contiguous groups.
	groups := make([][]int, k)
	base, extra := n/k, n%k
	pos := 0
	for g := 0; g < k; g++ {
		size := base
		if g < extra {
			size++
		}
		groups[g] = perm[pos : pos+size]
		pos += size
	}

	folds := make([]Fold, k)
	for g := 0; g < k; g++ {
		test := make([]int, len(groups[g]))
		copy(test, groups[g])
		var train []int
		for og, other := range groups {
			if og == g {
				continue
			}
			train = append(train, other...)
		}
		folds[g] = Fold{Train: train, Test: test}
	}
	return folds
}
