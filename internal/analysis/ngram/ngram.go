// Package ngram implements the n-gram language modelling used in §V: n-gram
// frequency counting (Fig. 5b), conditional n-gram probabilities with
// Laplace smoothing, and the length-normalized perplexity score of §V-B used
// to classify unexpected procedure variations.
package ngram

import (
	"math"
	"sort"
	"strings"

	"rad/internal/parallel"
)

// Count is one n-gram with its number of occurrences.
type Count struct {
	Gram  []string
	Times int
}

// Key renders the n-gram in the paper's figure style: commands joined by '_'.
func (c Count) Key() string { return strings.Join(c.Gram, "_") }

// TopK returns the k most frequent n-grams of size n across the sequences,
// most frequent first; ties break lexicographically for determinism. Large
// corpora are counted concurrently on GOMAXPROCS workers; the result is
// identical to a serial count.
func TopK(seqs [][]string, n, k int) []Count {
	return TopKParallel(seqs, n, k, 0)
}

// parallelGramFloor is the corpus size (in scorable n-gram positions) below
// which counting stays serial: splitting tiny corpora costs more than it
// saves.
const parallelGramFloor = 1 << 14

// TopKParallel is TopK with an explicit worker bound (<= 0 selects
// GOMAXPROCS). Every worker count produces identical output.
func TopKParallel(seqs [][]string, n, k, workers int) []Count {
	if n <= 0 || k <= 0 {
		return nil
	}
	counts := CountGrams(seqs, n, workers)
	if len(counts) == 0 {
		return nil
	}
	all := make([]Count, 0, len(counts))
	for key, times := range counts {
		all = append(all, Count{Gram: strings.Split(key, "\x00"), Times: times})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Times != all[j].Times {
			return all[i].Times > all[j].Times
		}
		return all[i].Key() < all[j].Key()
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// gramChunk is one worker-sized slice of one sequence. Chunks overlap by
// n-1 tokens so that no n-gram spanning a cut is lost and none is counted
// twice: chunk [lo, hi) owns exactly the grams starting in [lo, hi-n+1).
type gramChunk struct {
	seq      []string
	overlaps bool // not the final chunk of its sequence
}

// splitGramChunks cuts the corpus into roughly equal-work chunks for
// counting. A sequence shorter than the chunk size stays whole.
func splitGramChunks(seqs [][]string, n, chunkSize int) []gramChunk {
	var chunks []gramChunk
	for _, seq := range seqs {
		for lo := 0; lo < len(seq); lo += chunkSize {
			hi := lo + chunkSize + n - 1
			if hi >= len(seq) {
				chunks = append(chunks, gramChunk{seq: seq[lo:]})
				break
			}
			chunks = append(chunks, gramChunk{seq: seq[lo:hi], overlaps: true})
		}
	}
	return chunks
}

// countInto tallies the chunk's n-grams into counts. Overlapping chunks own
// only the grams that start before their overlap region.
func (c gramChunk) countInto(n int, counts map[string]int) {
	limit := len(c.seq)
	if c.overlaps {
		limit -= n - 1
	}
	for i := 0; i+n <= len(c.seq) && i < limit; i++ {
		counts[strings.Join(c.seq[i:i+n], "\x00")]++
	}
}

// CountGrams counts every n-gram across the sequences, fanning the corpus
// out over at most workers goroutines (<= 0 selects GOMAXPROCS) with
// per-worker local maps that are summed at the end. Summation is
// commutative, so the returned map is identical for every worker count.
func CountGrams(seqs [][]string, n, workers int) map[string]int {
	if n <= 0 {
		return map[string]int{}
	}
	total := 0
	for _, seq := range seqs {
		if len(seq) >= n {
			total += len(seq) - n + 1
		}
	}
	workers = parallel.Workers(workers)
	if workers == 1 || total < parallelGramFloor {
		counts := make(map[string]int)
		for _, seq := range seqs {
			gramChunk{seq: seq}.countInto(n, counts)
		}
		return counts
	}
	// Aim for a few chunks per worker so a skewed chunk cannot straggle.
	chunkSize := total/(workers*4) + 1
	chunks := splitGramChunks(seqs, n, chunkSize)
	locals, _ := parallel.Map(chunks, workers, func(_ int, c gramChunk) (map[string]int, error) {
		local := make(map[string]int)
		c.countInto(n, local)
		return local, nil
	})
	merged := make(map[string]int)
	for _, local := range locals {
		for key, times := range local {
			merged[key] += times
		}
	}
	return merged
}

// Model is an n-gram language model with Laplace (add-alpha) smoothing over
// the training vocabulary.
type Model struct {
	n     int
	alpha float64
	vocab map[string]struct{}
	// context counts and context→next counts.
	ctx  map[string]int
	next map[string]int
}

// Train fits an order-n model on the training sequences. alpha is the
// Laplace smoothing constant (alpha <= 0 selects 1, plain add-one smoothing,
// which keeps unseen transitions finite — a requirement when scoring
// anomalous sequences containing patterns absent from training).
func Train(seqs [][]string, n int, alpha float64) *Model {
	if n < 1 {
		n = 1
	}
	if alpha <= 0 {
		alpha = 1
	}
	m := &Model{
		n: n, alpha: alpha,
		vocab: make(map[string]struct{}),
		ctx:   make(map[string]int),
		next:  make(map[string]int),
	}
	for _, seq := range seqs {
		for _, tok := range seq {
			m.vocab[tok] = struct{}{}
		}
		for i := 0; i+n <= len(seq); i++ {
			context := strings.Join(seq[i:i+n-1], "\x00")
			m.ctx[context]++
			m.next[context+"\x00"+seq[i+n-1]]++
		}
	}
	return m
}

// Order returns the model's n.
func (m *Model) Order() int { return m.n }

// VocabSize returns the training vocabulary size.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Prob returns the smoothed conditional probability P(next | context). The
// context must have length n-1; longer contexts use their last n-1 items.
func (m *Model) Prob(context []string, next string) float64 {
	if len(context) > m.n-1 {
		context = context[len(context)-(m.n-1):]
	}
	key := strings.Join(context, "\x00")
	v := float64(len(m.vocab))
	if v == 0 {
		return 0
	}
	num := float64(m.next[key+"\x00"+next]) + m.alpha
	den := float64(m.ctx[key]) + m.alpha*v
	return num / den
}

// LogProb returns the total log probability of the sequence under the model,
// scoring positions n through len(seq) as in §V-B. It also returns the
// number of scored positions.
func (m *Model) LogProb(seq []string) (logp float64, scored int) {
	for i := m.n - 1; i < len(seq); i++ {
		p := m.Prob(seq[i-(m.n-1):i], seq[i])
		logp += math.Log(p)
		scored++
	}
	return logp, scored
}

// Perplexity returns the length-normalized inverse probability of the
// sequence: (∏ 1/P(ci|context))^(1/scored). Lower suggests a benign trace,
// higher an anomaly (§V-B). Sequences too short to score return +Inf: a
// procedure that stopped almost immediately is maximally surprising.
func (m *Model) Perplexity(seq []string) float64 {
	logp, scored := m.LogProb(seq)
	if scored == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logp / float64(scored))
}
