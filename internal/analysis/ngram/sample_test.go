package ngram

import (
	"math/rand/v2"
	"testing"
)

func alternating(n int) []string {
	out := make([]string, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = "ARM"
		} else {
			out[i] = "MVNG"
		}
	}
	return out
}

func TestMostLikelyFollowsLearnedPattern(t *testing.T) {
	m := Train([][]string{alternating(100)}, 2, 0.1)
	got := m.MostLikely([]string{"ARM"}, 6)
	want := []string{"ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG", "ARM"}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("synthesized %v, want %v", got, want)
		}
	}
}

func TestMostLikelyDeterministic(t *testing.T) {
	m := Train([][]string{alternating(50), {"Q", "Q", "Q", "A"}}, 3, 0.1)
	a := m.MostLikely([]string{"Q", "Q"}, 10)
	b := m.MostLikely([]string{"Q", "Q"}, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MostLikely not deterministic")
		}
	}
}

func TestSampleStaysMostlyInDistribution(t *testing.T) {
	m := Train([][]string{alternating(200)}, 2, 0.01)
	rng := rand.New(rand.NewPCG(1, 2))
	out := m.Sample(rng, []string{"ARM"}, 200)
	if len(out) != 201 {
		t.Fatalf("len %d", len(out))
	}
	// With tiny smoothing the learned alternation dominates: most ARM
	// tokens should be followed by MVNG.
	follows := 0
	total := 0
	for i := 0; i+1 < len(out); i++ {
		if out[i] == "ARM" {
			total++
			if out[i+1] == "MVNG" {
				follows++
			}
		}
	}
	if total == 0 || float64(follows)/float64(total) < 0.9 {
		t.Errorf("P(MVNG|ARM) in samples = %d/%d, want ≈1", follows, total)
	}
}

func TestSampleEdgeCases(t *testing.T) {
	m := Train([][]string{{"A", "B"}}, 2, 1)
	if got := m.Sample(nil, []string{"A"}, 5); len(got) != 1 {
		t.Errorf("nil rng: %v", got)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	if got := m.Sample(rng, []string{"A"}, 0); len(got) != 1 {
		t.Errorf("n=0: %v", got)
	}
	empty := Train(nil, 2, 1)
	if got := empty.Sample(rng, []string{"A"}, 3); len(got) != 1 {
		t.Errorf("empty vocab: %v", got)
	}
	if got := empty.MostLikely([]string{"A"}, 3); len(got) != 1 {
		t.Errorf("empty vocab most-likely: %v", got)
	}
}

func TestSamplePrefixNotMutated(t *testing.T) {
	m := Train([][]string{alternating(20)}, 2, 0.1)
	prefix := []string{"ARM"}
	rng := rand.New(rand.NewPCG(3, 4))
	_ = m.Sample(rng, prefix, 5)
	_ = m.MostLikely(prefix, 5)
	if len(prefix) != 1 || prefix[0] != "ARM" {
		t.Error("prefix mutated")
	}
}
