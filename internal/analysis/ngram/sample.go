package ngram

import (
	"math/rand/v2"
	"sort"
)

// This file implements the program-synthesis use case §V motivates: "program
// synthesis, generating a sequence of low-level commands from a high-level
// specification". A trained command language model can extend a prefix with
// plausible continuations — sampling from the learned distribution or
// following its most likely path.

// Sample extends prefix with n tokens drawn from the model's smoothed
// conditional distribution. The returned slice is the full sequence
// (prefix + continuation). A nil rng or empty vocabulary returns the prefix
// unchanged.
func (m *Model) Sample(rng *rand.Rand, prefix []string, n int) []string {
	if rng == nil || len(m.vocab) == 0 || n <= 0 {
		return append([]string(nil), prefix...)
	}
	vocab := m.vocabList()
	out := append([]string(nil), prefix...)
	for k := 0; k < n; k++ {
		ctx := context(out, m.n-1)
		r := rng.Float64()
		acc := 0.0
		pick := vocab[len(vocab)-1]
		for _, tok := range vocab {
			acc += m.Prob(ctx, tok)
			if r < acc {
				pick = tok
				break
			}
		}
		out = append(out, pick)
	}
	return out
}

// MostLikely extends prefix with n tokens by greedily following the model's
// argmax continuation — the skeleton of the procedure the model has learned.
// Ties break lexicographically for determinism.
func (m *Model) MostLikely(prefix []string, n int) []string {
	if len(m.vocab) == 0 || n <= 0 {
		return append([]string(nil), prefix...)
	}
	vocab := m.vocabList()
	out := append([]string(nil), prefix...)
	for k := 0; k < n; k++ {
		ctx := context(out, m.n-1)
		best, bestP := "", -1.0
		for _, tok := range vocab {
			if p := m.Prob(ctx, tok); p > bestP || (p == bestP && tok < best) {
				best, bestP = tok, p
			}
		}
		out = append(out, best)
	}
	return out
}

// vocabList returns the vocabulary in sorted order for deterministic
// iteration.
func (m *Model) vocabList() []string {
	out := make([]string, 0, len(m.vocab))
	for tok := range m.vocab {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// context returns the last w tokens of seq.
func context(seq []string, w int) []string {
	if len(seq) <= w {
		return seq
	}
	return seq[len(seq)-w:]
}
