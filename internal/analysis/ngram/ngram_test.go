package ngram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	seqs := [][]string{
		{"ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG"},
		{"Q", "Q", "Q"},
	}
	top := TopK(seqs, 2, 3)
	if len(top) != 3 {
		t.Fatalf("got %d n-grams", len(top))
	}
	if top[0].Key() != "ARM_MVNG" || top[0].Times != 3 {
		t.Errorf("top bigram = %s ×%d, want ARM_MVNG ×3", top[0].Key(), top[0].Times)
	}
	// MVNG_ARM ×2 and Q_Q ×2 tie; lexicographic order breaks it.
	if top[1].Key() != "MVNG_ARM" || top[2].Key() != "Q_Q" {
		t.Errorf("tie order: %s, %s", top[1].Key(), top[2].Key())
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK(nil, 2, 5) != nil {
		t.Error("nil seqs should give nil")
	}
	if TopK([][]string{{"A"}}, 2, 5) != nil {
		t.Error("sequence shorter than n should give nil")
	}
	if TopK([][]string{{"A", "B"}}, 0, 5) != nil {
		t.Error("n=0 should give nil")
	}
	if TopK([][]string{{"A", "B"}}, 2, 0) != nil {
		t.Error("k=0 should give nil")
	}
	got := TopK([][]string{{"A", "B", "C"}}, 3, 10)
	if len(got) != 1 || got[0].Key() != "A_B_C" {
		t.Errorf("trigram of exact-length seq: %v", got)
	}
}

func TestModelProbabilitiesSumToOne(t *testing.T) {
	seqs := [][]string{{"A", "B", "A", "B", "A", "C"}}
	m := Train(seqs, 2, 1)
	vocab := []string{"A", "B", "C"}
	for _, ctx := range vocab {
		sum := 0.0
		for _, next := range vocab {
			sum += m.Prob([]string{ctx}, next)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("P(·|%s) sums to %v", ctx, sum)
		}
	}
}

func TestModelFavorsSeenTransitions(t *testing.T) {
	m := Train([][]string{{"A", "B", "A", "B", "A", "B"}}, 2, 1)
	pSeen := m.Prob([]string{"A"}, "B")
	pUnseen := m.Prob([]string{"A"}, "A")
	if pSeen <= pUnseen {
		t.Errorf("P(B|A)=%v should exceed P(A|A)=%v", pSeen, pUnseen)
	}
}

func TestPerplexityLowerForFamiliarSequence(t *testing.T) {
	train := [][]string{
		{"ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG"},
		{"ARM", "MVNG", "MVNG", "ARM", "MVNG", "ARM", "MVNG", "MVNG"},
	}
	for _, n := range []int{2, 3, 4} {
		m := Train(train, n, 1)
		familiar := m.Perplexity([]string{"ARM", "MVNG", "ARM", "MVNG", "ARM", "MVNG"})
		weird := m.Perplexity([]string{"MVNG", "MVNG", "MVNG", "ARM", "ARM", "ARM"})
		if familiar >= weird {
			t.Errorf("n=%d: familiar ppl %v should be below weird ppl %v", n, familiar, weird)
		}
	}
}

func TestPerplexityShortSequenceIsInf(t *testing.T) {
	m := Train([][]string{{"A", "B", "C", "D"}}, 3, 1)
	if got := m.Perplexity([]string{"A"}); !math.IsInf(got, 1) {
		t.Errorf("too-short sequence ppl = %v, want +Inf", got)
	}
	if got := m.Perplexity(nil); !math.IsInf(got, 1) {
		t.Errorf("empty sequence ppl = %v, want +Inf", got)
	}
}

func TestLogProbScoredPositions(t *testing.T) {
	m := Train([][]string{{"A", "B", "C", "D", "E"}}, 3, 1)
	_, scored := m.LogProb([]string{"A", "B", "C", "D", "E"})
	if scored != 3 { // positions 3..5
		t.Errorf("scored = %d, want 3", scored)
	}
}

func TestTrainDefaults(t *testing.T) {
	m := Train([][]string{{"A", "B"}}, 0, -1)
	if m.Order() != 1 {
		t.Errorf("order = %d, want clamped to 1", m.Order())
	}
	if m.VocabSize() != 2 {
		t.Errorf("vocab = %d", m.VocabSize())
	}
}

func TestLongContextUsesSuffix(t *testing.T) {
	m := Train([][]string{{"A", "B", "C", "A", "B", "C"}}, 2, 1)
	short := m.Prob([]string{"B"}, "C")
	long := m.Prob([]string{"X", "Y", "B"}, "C")
	if short != long {
		t.Errorf("long context %v != suffix context %v", long, short)
	}
}

// Property: perplexity is always >= 1 for sequences over the training
// vocabulary (it is a normalized inverse probability).
func TestPerplexityAtLeastOneProperty(t *testing.T) {
	vocab := []string{"A", "B", "C", "D"}
	m := Train([][]string{{"A", "B", "C", "D", "A", "B", "C", "D", "A", "C"}}, 2, 1)
	f := func(idxs []uint8) bool {
		if len(idxs) < 2 {
			return true
		}
		seq := make([]string, len(idxs))
		for i, ix := range idxs {
			seq[i] = vocab[int(ix)%len(vocab)]
		}
		return m.Perplexity(seq) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: perplexity never exceeds the smoothed worst case (alpha=1 gives
// P >= 1/(count+V) bounded below by 1/(maxCtx+V)), so it is always finite
// for scorable sequences.
func TestPerplexityFiniteProperty(t *testing.T) {
	m := Train([][]string{{"A", "B", "A", "C"}}, 2, 1)
	f := func(idxs []uint8) bool {
		if len(idxs) < 2 {
			return true
		}
		vocab := []string{"A", "B", "C", "Z"} // Z unseen in training
		seq := make([]string, len(idxs))
		for i, ix := range idxs {
			seq[i] = vocab[int(ix)%len(vocab)]
		}
		return !math.IsInf(m.Perplexity(seq), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
