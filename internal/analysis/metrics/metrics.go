// Package metrics implements the binary-classification metrics of Table I:
// accuracy, weighted accuracy (true positives weighted 2×, footnote 3),
// precision, recall, and F1 score over a confusion matrix.
package metrics

// Confusion is a binary confusion matrix. Positives are anomalies.
type Confusion struct {
	TP, TN, FP, FN int
}

// Tally builds a confusion matrix from parallel prediction/truth slices.
// Slices of different lengths tally only the common prefix.
func Tally(predicted, actual []bool) Confusion {
	n := len(predicted)
	if len(actual) < n {
		n = len(actual)
	}
	var c Confusion
	for i := 0; i < n; i++ {
		switch {
		case predicted[i] && actual[i]:
			c.TP++
		case !predicted[i] && !actual[i]:
			c.TN++
		case predicted[i] && !actual[i]:
			c.FP++
		default:
			c.FN++
		}
	}
	return c
}

// Add returns the element-wise sum of two confusion matrices (used to
// aggregate across cross-validation folds).
func (c Confusion) Add(o Confusion) Confusion {
	return Confusion{TP: c.TP + o.TP, TN: c.TN + o.TN, FP: c.FP + o.FP, FN: c.FN + o.FN}
}

// Total returns the number of classified samples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// WeightedAccuracy weights the true-positive count 2× over true negatives
// (Table I footnote: anomaly detection cares more about catching anomalies):
// (2·TP + TN) / (2·(TP+FN) + TN + FP).
func (c Confusion) WeightedAccuracy() float64 {
	den := 2*(c.TP+c.FN) + c.TN + c.FP
	if den == 0 {
		return 0
	}
	return float64(2*c.TP+c.TN) / float64(den)
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
