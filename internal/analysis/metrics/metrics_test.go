package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestTableIBigram reproduces the paper's Table I bigram column arithmetic:
// TP=3, TN=13, FP=9, FN=0 → accuracy 64%, weighted 67.85%, precision 0.25,
// F1 0.4.
func TestTableIBigram(t *testing.T) {
	c := Confusion{TP: 3, TN: 13, FP: 9, FN: 0}
	if got := c.Accuracy(); !almost(got, 0.64) {
		t.Errorf("accuracy = %v, want 0.64", got)
	}
	if got := c.WeightedAccuracy(); math.Abs(got-0.6785) > 1e-3 {
		t.Errorf("weighted accuracy = %v, want ≈0.6785", got)
	}
	if got := c.Precision(); !almost(got, 0.25) {
		t.Errorf("precision = %v, want 0.25", got)
	}
	if got := c.Recall(); !almost(got, 1.0) {
		t.Errorf("recall = %v, want 1.0", got)
	}
	if got := c.F1(); !almost(got, 0.4) {
		t.Errorf("F1 = %v, want 0.4", got)
	}
}

// TestTableITrigram checks the trigram column: TP=3, TN=18, FP=4, FN=0.
func TestTableITrigram(t *testing.T) {
	c := Confusion{TP: 3, TN: 18, FP: 4, FN: 0}
	if got := c.Accuracy(); !almost(got, 0.84) {
		t.Errorf("accuracy = %v, want 0.84", got)
	}
	if got := c.WeightedAccuracy(); math.Abs(got-0.8571) > 1e-3 {
		t.Errorf("weighted accuracy = %v, want ≈0.8571", got)
	}
	if got := c.Precision(); math.Abs(got-3.0/7) > 1e-9 {
		t.Errorf("precision = %v, want 3/7", got)
	}
	if got := c.F1(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("F1 = %v, want 0.6", got)
	}
}

func TestTally(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	act := []bool{true, false, false, true, true}
	c := Tally(pred, act)
	want := Confusion{TP: 2, TN: 1, FP: 1, FN: 1}
	if c != want {
		t.Errorf("Tally = %+v, want %+v", c, want)
	}
	// Length mismatch tallies the common prefix.
	c = Tally([]bool{true}, []bool{true, false})
	if c.Total() != 1 {
		t.Errorf("mismatched lengths total = %d", c.Total())
	}
}

func TestAdd(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	b := Confusion{TP: 10, TN: 20, FP: 30, FN: 40}
	got := a.Add(b)
	want := Confusion{TP: 11, TN: 22, FP: 33, FN: 44}
	if got != want {
		t.Errorf("Add = %+v", got)
	}
}

func TestZeroMatrixSafe(t *testing.T) {
	var c Confusion
	for name, v := range map[string]float64{
		"accuracy": c.Accuracy(), "weighted": c.WeightedAccuracy(),
		"precision": c.Precision(), "recall": c.Recall(), "f1": c.F1(),
	} {
		if v != 0 {
			t.Errorf("%s of empty matrix = %v", name, v)
		}
	}
}

func TestPerfectClassifier(t *testing.T) {
	c := Confusion{TP: 5, TN: 20}
	if c.Accuracy() != 1 || c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 || c.WeightedAccuracy() != 1 {
		t.Errorf("perfect classifier metrics: %+v", c)
	}
}
