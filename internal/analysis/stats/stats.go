// Package stats implements the descriptive statistics used by the
// evaluation harness: mean/stddev, quartiles with the box-plot geometry of
// Fig. 4 (IQR, 1.5·IQR whiskers, outliers), and the Pearson correlation
// coefficient used for the Fig. 7(b) solid-invariance claim.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation, or NaN for empty input.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy/pandas default).
// It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Box holds the box-plot statistics of Fig. 4: quartiles, the IQR, whiskers
// at Q1−1.5·IQR and Q3+1.5·IQR clamped to observed data, and the outliers
// beyond them.
type Box struct {
	Min, Max    float64
	Q1, Med, Q3 float64
	IQR         float64
	LoWhisker   float64
	HiWhisker   float64
	Outliers    []float64
	Mean        float64
	N           int
}

// BoxStats computes Box for the sample. It returns a zero Box for empty
// input (N == 0 distinguishes it).
func BoxStats(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	b := Box{
		Min: sorted[0], Max: sorted[len(sorted)-1],
		Q1:   quantileSorted(sorted, 0.25),
		Med:  quantileSorted(sorted, 0.50),
		Q3:   quantileSorted(sorted, 0.75),
		Mean: Mean(sorted),
		N:    len(sorted),
	}
	b.IQR = b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*b.IQR
	hiFence := b.Q3 + 1.5*b.IQR

	// Whiskers extend to the most extreme data points inside the fences.
	b.LoWhisker, b.HiWhisker = b.Q1, b.Q3
	for _, v := range sorted {
		if v >= loFence {
			b.LoWhisker = v
			break
		}
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= hiFence {
			b.HiWhisker = sorted[i]
			break
		}
	}
	for _, v := range sorted {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, or NaN when lengths differ, are empty, or a series is constant.
func Pearson(a, b []float64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return math.NaN()
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(da*db)
}

// MaxAbs returns the largest absolute value in the series (0 for empty).
func MaxAbs(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > best {
			best = a
		}
	}
	return best
}

// Resample linearly resamples xs to length n (n >= 2), used to compare
// series of different durations (e.g. velocity-stretched current traces).
// It returns nil when xs is empty or n < 2.
func Resample(xs []float64, n int) []float64 {
	if len(xs) == 0 || n < 2 {
		return nil
	}
	if len(xs) == 1 {
		out := make([]float64, n)
		for i := range out {
			out[i] = xs[0]
		}
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(xs)-1) / float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = xs[lo]
			continue
		}
		frac := pos - float64(lo)
		out[i] = xs[lo]*(1-frac) + xs[hi]*frac
	}
	return out
}
