package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5) {
		t.Errorf("mean = %v", got)
	}
	if got := Std(xs); !almost(got, 2) {
		t.Errorf("std = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestBoxStats(t *testing.T) {
	// Latencies with one clear outlier, like a Fig. 4 REMOTE box.
	xs := []float64{4, 5, 5, 6, 6, 6, 7, 7, 8, 35}
	b := BoxStats(xs)
	if b.N != 10 {
		t.Fatalf("N = %d", b.N)
	}
	if b.Med != 6 {
		t.Errorf("median = %v", b.Med)
	}
	if b.Q1 > b.Med || b.Med > b.Q3 {
		t.Error("quartile ordering broken")
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 35 {
		t.Errorf("outliers = %v, want [35]", b.Outliers)
	}
	if b.HiWhisker >= 35 {
		t.Errorf("upper whisker %v should exclude the outlier", b.HiWhisker)
	}
	if b.LoWhisker != 4 {
		t.Errorf("lower whisker = %v, want 4", b.LoWhisker)
	}
	empty := BoxStats(nil)
	if empty.N != 0 {
		t.Error("empty box should have N=0")
	}
}

func TestBoxStatsNoOutliers(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if len(b.Outliers) != 0 {
		t.Errorf("outliers = %v", b.Outliers)
	}
	if b.LoWhisker != 1 || b.HiWhisker != 5 {
		t.Errorf("whiskers = %v..%v, want 1..5", b.LoWhisker, b.HiWhisker)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if got := Pearson(a, b); !almost(got, 1) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{10, 8, 6, 4, 2}
	if got := Pearson(a, c); !almost(got, -1) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson(a, []float64{1, 1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
	if !math.IsNaN(Pearson(a, []float64{1, 2})) {
		t.Error("length mismatch should give NaN")
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2, 1}); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v", got)
	}
}

func TestResample(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	up := Resample(xs, 7)
	if len(up) != 7 {
		t.Fatalf("len = %d", len(up))
	}
	if up[0] != 0 || up[6] != 3 {
		t.Errorf("endpoints = %v, %v", up[0], up[6])
	}
	if !almost(up[3], 1.5) {
		t.Errorf("midpoint = %v, want 1.5", up[3])
	}
	if Resample(nil, 5) != nil {
		t.Error("empty input")
	}
	if Resample(xs, 1) != nil {
		t.Error("n<2")
	}
	constant := Resample([]float64{7}, 4)
	for _, v := range constant {
		if v != 7 {
			t.Errorf("single-point resample = %v", constant)
		}
	}
}

// Property: quartiles are ordered, whiskers are ordered and within the data
// range, and no outlier lies inside the whiskers. (Whiskers are actual data
// points clamped to the 1.5·IQR fences, so with a small sample whose extreme
// values are outliers a whisker can legitimately sit inside the
// *interpolated* quartile — quartile-bracketing is not an invariant.)
func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		b := BoxStats(xs)
		if !(b.Q1 <= b.Med && b.Med <= b.Q3) {
			return false
		}
		if !(b.Min <= b.LoWhisker && b.LoWhisker <= b.HiWhisker && b.HiWhisker <= b.Max) {
			return false
		}
		for _, o := range b.Outliers {
			if o >= b.LoWhisker && o <= b.HiWhisker {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonBoundedSymmetricProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		half := len(raw) / 2
		a := make([]float64, half)
		b := make([]float64, half)
		for i := 0; i < half; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[half+i])
		}
		r1, r2 := Pearson(a, b), Pearson(b, a)
		if math.IsNaN(r1) {
			return math.IsNaN(r2)
		}
		return almost(r1, r2) && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
