// Package tfidf implements the TF-IDF fingerprinting of §V-A: normalized
// term frequencies scaled by inverse document frequency, compared with
// cosine similarity. Documents are procedure runs; terms are command names.
package tfidf

import (
	"math"
	"sort"

	"rad/internal/parallel"
)

// Vectorizer holds the IDF weights fitted on a corpus of runs.
type Vectorizer struct {
	idf  map[string]float64
	nDoc int
}

// Fit computes smoothed inverse document frequencies over the corpus,
// sklearn-style: idf(t) = ln((1+N)/(1+df(t))) + 1. Smoothing keeps terms
// that appear in every document from vanishing entirely and terms unseen at
// fit time finite.
func Fit(docs [][]string) *Vectorizer {
	df := make(map[string]int)
	for _, doc := range docs {
		seen := make(map[string]struct{})
		for _, term := range doc {
			if _, ok := seen[term]; !ok {
				seen[term] = struct{}{}
				df[term]++
			}
		}
	}
	v := &Vectorizer{idf: make(map[string]float64, len(df)), nDoc: len(docs)}
	for term, n := range df {
		v.idf[term] = math.Log(float64(1+len(docs))/float64(1+n)) + 1
	}
	return v
}

// IDF returns the fitted inverse document frequency for a term. Terms unseen
// during Fit get the maximum idf (ln(1+N) + 1), as a fully novel term.
func (v *Vectorizer) IDF(term string) float64 {
	if w, ok := v.idf[term]; ok {
		return w
	}
	return math.Log(float64(1+v.nDoc)) + 1
}

// Transform computes the run's TF-IDF vector following §V-A: (i) count each
// command, (ii) normalize counts to sum to one, (iii) scale by IDF. The
// resulting sparse vector is not length-normalized; Cosine handles that.
func (v *Vectorizer) Transform(doc []string) map[string]float64 {
	if len(doc) == 0 {
		return map[string]float64{}
	}
	tf := make(map[string]float64)
	for _, term := range doc {
		tf[term]++
	}
	out := make(map[string]float64, len(tf))
	n := float64(len(doc))
	for term, count := range tf {
		out[term] = count / n * v.IDF(term)
	}
	return out
}

// Cosine returns the cosine similarity of two sparse vectors, in [0, 1] for
// non-negative weights. Zero vectors have similarity 0.
func Cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for term, x := range a {
		na += x * x
		if y, ok := b[term]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// SimilarityMatrix fits a vectorizer on the runs and returns all pairwise
// cosine similarities — Fig. 6's 25×25 matrix for RAD's supervised runs.
// Rows are computed on GOMAXPROCS workers; the result is identical to a
// serial computation.
func SimilarityMatrix(docs [][]string) [][]float64 {
	return SimilarityMatrixParallel(docs, 0)
}

// SimilarityMatrixParallel is SimilarityMatrix with an explicit worker bound
// (<= 0 selects GOMAXPROCS). Workers fill the upper triangle — each row i
// owns the cells j >= i, so no two workers touch the same cell — and a
// serial pass mirrors it onto the lower triangle afterwards.
func SimilarityMatrixParallel(docs [][]string, workers int) [][]float64 {
	v := Fit(docs)
	vecs, _ := parallel.Map(docs, workers, func(_ int, doc []string) (map[string]float64, error) {
		return v.Transform(doc), nil
	})
	m := make([][]float64, len(docs))
	_ = parallel.ForEach(len(docs), workers, func(i int) error {
		m[i] = make([]float64, len(docs))
		for j := i; j < len(docs); j++ {
			m[i][j] = Cosine(vecs[i], vecs[j])
		}
		return nil
	})
	for i := range m {
		for j := 0; j < i; j++ {
			m[i][j] = m[j][i]
		}
	}
	return m
}

// TopTerms returns the k highest-weighted terms of a vector, for fingerprint
// inspection; ties break lexicographically.
func TopTerms(vec map[string]float64, k int) []string {
	type tw struct {
		term string
		w    float64
	}
	all := make([]tw, 0, len(vec))
	for term, w := range vec {
		all = append(all, tw{term, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].term < all[j].term
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.term
	}
	return out
}
