package tfidf

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCosineIdenticalAndOrthogonal(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	if got := Cosine(a, a); !almost(got, 1) {
		t.Errorf("self similarity = %v", got)
	}
	b := map[string]float64{"z": 3}
	if got := Cosine(a, b); got != 0 {
		t.Errorf("orthogonal similarity = %v", got)
	}
	if got := Cosine(a, map[string]float64{}); got != 0 {
		t.Errorf("empty vector similarity = %v", got)
	}
}

func TestTransformNormalizesCounts(t *testing.T) {
	docs := [][]string{
		{"ARM", "ARM", "MVNG", "Q"},
		{"Q", "Q", "Q", "V"},
	}
	v := Fit(docs)
	vec := v.Transform(docs[0])
	// ARM appears 2/4 of the doc; its tf is 0.5 before idf scaling.
	idfARM := v.IDF("ARM")
	if !almost(vec["ARM"], 0.5*idfARM) {
		t.Errorf("ARM weight = %v, want %v", vec["ARM"], 0.5*idfARM)
	}
	if len(v.Transform(nil)) != 0 {
		t.Error("empty doc should give empty vector")
	}
}

func TestIDFRareTermsWeighMore(t *testing.T) {
	docs := [][]string{
		{"common", "rare"},
		{"common"},
		{"common"},
		{"common"},
	}
	v := Fit(docs)
	if v.IDF("rare") <= v.IDF("common") {
		t.Errorf("idf(rare)=%v should exceed idf(common)=%v", v.IDF("rare"), v.IDF("common"))
	}
	// Unknown terms get the maximum idf.
	if v.IDF("never_seen") < v.IDF("rare") {
		t.Error("unseen term should have at least the rarest idf")
	}
}

func TestSimilarityMatrixProperties(t *testing.T) {
	docs := [][]string{
		{"ARM", "MVNG", "ARM", "MVNG"},
		{"ARM", "MVNG", "MVNG", "ARM"},
		{"Q", "V", "A", "Q"},
	}
	m := SimilarityMatrix(docs)
	if len(m) != 3 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := range m {
		if !almost(m[i][i], 1) {
			t.Errorf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
		for j := range m[i] {
			if !almost(m[i][j], m[j][i]) {
				t.Errorf("asymmetry at [%d][%d]", i, j)
			}
			if m[i][j] < -1e-12 || m[i][j] > 1+1e-12 {
				t.Errorf("similarity out of range: %v", m[i][j])
			}
		}
	}
	// Same-command docs are far more similar than disjoint-command docs.
	if m[0][1] < 0.9 {
		t.Errorf("similar docs score %v", m[0][1])
	}
	if m[0][2] > 0.1 {
		t.Errorf("disjoint docs score %v", m[0][2])
	}
}

func TestTopTerms(t *testing.T) {
	vec := map[string]float64{"a": 0.1, "b": 0.9, "c": 0.5}
	got := TopTerms(vec, 2)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("TopTerms = %v", got)
	}
	if got := TopTerms(vec, 10); len(got) != 3 {
		t.Errorf("TopTerms overflow k = %v", got)
	}
}

// Property: cosine similarity is symmetric and bounded for arbitrary
// non-negative sparse vectors.
func TestCosineSymmetricBoundedProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := make(map[string]float64)
		b := make(map[string]float64)
		terms := []string{"t0", "t1", "t2", "t3", "t4"}
		for i, x := range xs {
			a[terms[i%len(terms)]] += float64(x)
		}
		for i, y := range ys {
			b[terms[i%len(terms)]] += float64(y)
		}
		s1, s2 := Cosine(a, b), Cosine(b, a)
		return almost(s1, s2) && s1 >= -1e-12 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
