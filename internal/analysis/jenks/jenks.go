// Package jenks implements Jenks natural breaks optimization [Jenks 1967],
// the 1-D clustering the paper uses in §V-B to split perplexity scores into
// the two classes benign and anomalous.
//
// The algorithm chooses class boundaries minimizing the sum of within-class
// squared deviations from the class means (equivalently, maximizing the
// goodness-of-variance fit). For the two-class case used here an exact O(n²)
// scan over break positions suffices; the general k-class case uses the
// classic dynamic program.
package jenks

import (
	"math"
	"sort"
)

// Breaks returns the k-1 break values partitioning data into k natural
// classes, using the Jenks-Fisher dynamic program. Each break value is the
// smallest element of the class above the break. It returns nil when the
// input has fewer than k points or k < 2.
func Breaks(data []float64, k int) []float64 {
	n := len(data)
	if k < 2 || n < k {
		return nil
	}
	sorted := make([]float64, n)
	copy(sorted, data)
	sort.Float64s(sorted)

	// Prefix sums for O(1) within-class variance of any range.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	// ssd(i, j) = sum of squared deviations of sorted[i:j] (half-open).
	ssd := func(i, j int) float64 {
		cnt := float64(j - i)
		if cnt <= 0 {
			return 0
		}
		sum := prefix[j] - prefix[i]
		sumSq := prefixSq[j] - prefixSq[i]
		return sumSq - sum*sum/cnt
	}

	// dp[c][j] = minimal total SSD splitting sorted[0:j] into c classes.
	const inf = math.MaxFloat64
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for c := range dp {
		dp[c] = make([]float64, n+1)
		cut[c] = make([]int, n+1)
		for j := range dp[c] {
			dp[c][j] = inf
		}
	}
	dp[0][0] = 0
	for c := 1; c <= k; c++ {
		for j := c; j <= n; j++ {
			for i := c - 1; i < j; i++ {
				if dp[c-1][i] == inf {
					continue
				}
				if cost := dp[c-1][i] + ssd(i, j); cost < dp[c][j] {
					dp[c][j] = cost
					cut[c][j] = i
				}
			}
		}
	}

	// Walk the cuts back to break values.
	breaks := make([]float64, 0, k-1)
	j := n
	for c := k; c > 1; c-- {
		i := cut[c][j]
		breaks = append(breaks, sorted[i])
		j = i
	}
	// Reverse into ascending order.
	for l, r := 0, len(breaks)-1; l < r; l, r = l+1, r-1 {
		breaks[l], breaks[r] = breaks[r], breaks[l]
	}
	return breaks
}

// Split2 performs the paper's two-class split: it returns the break value
// and a boolean per input marking membership in the upper class (the
// anomalous class for perplexity scores, where higher means more
// surprising). Inputs that are +Inf always land in the upper class.
//
// ok is false when the input has fewer than two finite distinct values to
// split, in which case everything is classified lower (no evidence of two
// populations).
func Split2(data []float64) (upper []bool, breakValue float64, ok bool) {
	upper = make([]bool, len(data))
	finite := make([]float64, 0, len(data))
	for _, v := range data {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			finite = append(finite, v)
		}
	}
	distinct := make(map[float64]struct{}, len(finite))
	for _, v := range finite {
		distinct[v] = struct{}{}
	}
	if len(distinct) < 2 {
		// Still flag infinities as anomalous: an unscorable trace is
		// maximally surprising.
		for i, v := range data {
			upper[i] = math.IsInf(v, 1)
		}
		return upper, math.NaN(), false
	}
	brs := Breaks(finite, 2)
	if len(brs) != 1 {
		return upper, math.NaN(), false
	}
	breakValue = brs[0]
	for i, v := range data {
		upper[i] = math.IsInf(v, 1) || v >= breakValue
	}
	return upper, breakValue, true
}
