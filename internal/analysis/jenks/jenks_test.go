package jenks

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBreaksTwoObviousClusters(t *testing.T) {
	data := []float64{1, 1.1, 0.9, 1.05, 10, 10.2, 9.8}
	brs := Breaks(data, 2)
	if len(brs) != 1 {
		t.Fatalf("breaks = %v", brs)
	}
	if brs[0] < 2 || brs[0] > 10 {
		t.Errorf("break at %v, want between clusters", brs[0])
	}
}

func TestBreaksThreeClusters(t *testing.T) {
	data := []float64{1, 1.2, 5, 5.1, 4.9, 20, 20.5}
	brs := Breaks(data, 3)
	if len(brs) != 2 {
		t.Fatalf("breaks = %v", brs)
	}
	if !(brs[0] > 1.2 && brs[0] <= 5 && brs[1] > 5.1 && brs[1] <= 20) {
		t.Errorf("breaks = %v", brs)
	}
}

func TestBreaksDegenerateInputs(t *testing.T) {
	if Breaks([]float64{1, 2}, 1) != nil {
		t.Error("k<2 should give nil")
	}
	if Breaks([]float64{1}, 2) != nil {
		t.Error("n<k should give nil")
	}
	if got := Breaks([]float64{3, 1}, 2); len(got) != 1 || got[0] != 3 {
		t.Errorf("two points: %v", got)
	}
}

func TestSplit2SeparatesPerplexities(t *testing.T) {
	// Benign perplexities cluster low; anomalies spike.
	scores := []float64{2.1, 2.3, 1.9, 2.2, 2.0, 8.5, 9.1, 2.4}
	upper, breakVal, ok := Split2(scores)
	if !ok {
		t.Fatal("split failed")
	}
	want := []bool{false, false, false, false, false, true, true, false}
	for i := range want {
		if upper[i] != want[i] {
			t.Errorf("score %v classified upper=%v, want %v (break %v)", scores[i], upper[i], want[i], breakVal)
		}
	}
}

func TestSplit2HandlesInfinity(t *testing.T) {
	scores := []float64{2.0, 2.1, math.Inf(1), 8.0, 2.2}
	upper, _, ok := Split2(scores)
	if !ok {
		t.Fatal("split failed")
	}
	if !upper[2] {
		t.Error("+Inf must always classify anomalous")
	}
	if !upper[3] {
		t.Error("8.0 should be in the upper class")
	}
}

func TestSplit2AllEqual(t *testing.T) {
	upper, _, ok := Split2([]float64{3, 3, 3, 3})
	if ok {
		t.Error("constant data cannot split")
	}
	for i, u := range upper {
		if u {
			t.Errorf("index %d classified upper on constant data", i)
		}
	}
}

func TestSplit2OnlyInfinities(t *testing.T) {
	upper, _, ok := Split2([]float64{math.Inf(1), math.Inf(1)})
	if ok {
		t.Error("no finite data cannot split")
	}
	if !upper[0] || !upper[1] {
		t.Error("infinities still classify anomalous")
	}
}

func TestSplit2Empty(t *testing.T) {
	upper, _, ok := Split2(nil)
	if ok || len(upper) != 0 {
		t.Errorf("empty input: %v, %v", upper, ok)
	}
}

// Property: the 2-class split never puts a value in the upper class that is
// smaller than a value in the lower class.
func TestSplit2MonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 3 {
			return true
		}
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r) / 100
		}
		upper, _, ok := Split2(data)
		if !ok {
			return true
		}
		maxLower, minUpper := math.Inf(-1), math.Inf(1)
		for i, u := range upper {
			if u {
				minUpper = math.Min(minUpper, data[i])
			} else {
				maxLower = math.Max(maxLower, data[i])
			}
		}
		return maxLower <= minUpper
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the dynamic program's 2-class split minimizes total within-class
// SSD over all possible cut positions (checked against brute force).
func TestBreaks2OptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.IntN(20)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64() * 10
		}
		brs := Breaks(data, 2)
		if len(brs) != 1 {
			t.Fatalf("trial %d: breaks = %v", trial, brs)
		}
		sorted := append([]float64(nil), data...)
		sortFloats(sorted)
		best := math.Inf(1)
		for cut := 1; cut < n; cut++ {
			if s := ssd(sorted[:cut]) + ssd(sorted[cut:]); s < best {
				best = s
			}
		}
		// Find the SSD of the returned break.
		cutIdx := 0
		for i, v := range sorted {
			if v == brs[0] {
				cutIdx = i
				break
			}
		}
		got := ssd(sorted[:cutIdx]) + ssd(sorted[cutIdx:])
		if got > best+1e-9 {
			t.Errorf("trial %d: dp ssd %v > brute force %v", trial, got, best)
		}
	}
}

func ssd(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
