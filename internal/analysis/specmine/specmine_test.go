package specmine

import (
	"strings"
	"testing"
)

func seq(s string) []string { return strings.Fields(s) }

func TestMineFoldsTandemRepeats(t *testing.T) {
	// init, then a 3-command loop body ×4, then a closer.
	in := seq("init A B C A B C A B C A B C done")
	spec := Mine(in, Options{})
	if len(spec) != 3 {
		t.Fatalf("spec has %d elements: %s", len(spec), spec)
	}
	if !spec[0].Literal() || spec[0].Block[0] != "init" {
		t.Errorf("element 0: %+v", spec[0])
	}
	loop := spec[1]
	if len(loop.Block) != 3 || loop.Min != 4 || loop.Max != 4 {
		t.Errorf("loop element: %+v", loop)
	}
	if !spec[2].Literal() || spec[2].Block[0] != "done" {
		t.Errorf("element 2: %+v", spec[2])
	}
	if got := spec.String(); !strings.Contains(got, "repeat ×4 { A B C }") {
		t.Errorf("pseudocode:\n%s", got)
	}
}

func TestMinePrefersLargestCover(t *testing.T) {
	// "A A A A" could fold as ×4 of [A]; "A B A B" as ×2 of [A B].
	spec := Mine(seq("A A A A"), Options{})
	if len(spec) != 1 || spec[0].Min != 4 || len(spec[0].Block) != 1 {
		t.Errorf("A×4: %+v", spec)
	}
	spec = Mine(seq("A B A B"), Options{})
	if len(spec) != 1 || spec[0].Min != 2 || len(spec[0].Block) != 2 {
		t.Errorf("(A B)×2: %+v", spec)
	}
}

func TestMineRoundTripCommands(t *testing.T) {
	in := seq("x A B A B A B y y y z")
	spec := Mine(in, Options{})
	got := spec.Commands()
	if strings.Join(got, " ") != strings.Join(in, " ") {
		t.Errorf("round trip:\n in:  %v\n out: %v", in, got)
	}
}

func TestMineEmptyAndMaxBlock(t *testing.T) {
	if got := Mine(nil, Options{}); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
	// With MaxBlock 1 only single-command repeats fold.
	spec := Mine(seq("A B A B"), Options{MaxBlock: 1})
	if len(spec) != 4 {
		t.Errorf("maxblock=1: %v", spec)
	}
}

func TestMergeWidensBounds(t *testing.T) {
	a := Mine(seq("init A B A B done"), Options{})
	b := Mine(seq("init A B A B A B A B done"), Options{})
	merged, ok := Merge([]Spec{a, b})
	if !ok {
		t.Fatalf("structurally identical runs failed to merge:\na=%s\nb=%s", a, b)
	}
	loop := merged[1]
	if loop.Min != 2 || loop.Max != 4 {
		t.Errorf("merged loop bounds %d..%d, want 2..4", loop.Min, loop.Max)
	}
	if !strings.Contains(merged.String(), "repeat ×2..4 { A B }") {
		t.Errorf("pseudocode:\n%s", merged)
	}
}

func TestMergeRejectsDivergentStructure(t *testing.T) {
	a := Mine(seq("init A A A done"), Options{})
	b := Mine(seq("init B B B done"), Options{})
	if _, ok := Merge([]Spec{a, b}); ok {
		t.Error("divergent runs merged")
	}
	if _, ok := Merge(nil); ok {
		t.Error("empty merge succeeded")
	}
}

func TestCoverage(t *testing.T) {
	in := seq("x A B A B A B y")
	spec := Mine(in, Options{})
	cov := Coverage(in, spec)
	if cov < 0.7 || cov > 0.8 { // 6 of 8 commands in the loop
		t.Errorf("coverage %v, want 0.75", cov)
	}
	if Coverage(nil, spec) != 0 {
		t.Error("empty coverage")
	}
}

func TestTopBlocks(t *testing.T) {
	seqs := [][]string{
		seq("Q Q Q Q A B A B"),
		seq("Q Q Q C"),
	}
	top := TopBlocks(seqs, Options{}, 2)
	if len(top) != 2 {
		t.Fatalf("top blocks: %v", top)
	}
	if top[0].Block[0] != "Q" {
		t.Errorf("most-covering block = %v, want Q polling", top[0].Block)
	}
}

// TestMineRealisticProcedure mines the loop structure out of a lab-like
// trace: a polling loop inside a per-vial loop.
func TestMineRealisticProcedure(t *testing.T) {
	var in []string
	in = append(in, "init", "HOME")
	for v := 0; v < 3; v++ {
		in = append(in, "GRIP", "ARM")
		for p := 0; p < 4; p++ {
			in = append(in, "MVNG")
		}
		in = append(in, "GRIP")
	}
	spec := Mine(in, Options{})
	if cov := Coverage(in, spec); cov < 0.5 {
		t.Errorf("loop coverage %v for a loop-structured trace:\n%s", cov, spec)
	}
	// The per-vial loop (the largest cover: the whole GRIP ARM MVNG×4 GRIP
	// body repeated three times) must be recovered.
	found := false
	for _, e := range spec {
		if e.Min == 3 && len(e.Block) == 7 && e.Block[0] == "GRIP" {
			found = true
		}
	}
	if !found {
		t.Errorf("per-vial ×3 loop not mined:\n%s", spec)
	}
}
