// Package specmine implements the specification-mining use case §V
// motivates: "deriving a high-level program specification from low-level
// commands". Given command sequences of one procedure type, it recovers a
// compact structural specification: the repeated blocks (loop bodies), how
// often they iterate, and the glue commands between them — the shape a
// human would write down as the procedure's pseudocode.
package specmine

import (
	"fmt"
	"sort"
	"strings"
)

// Element is one piece of a mined specification: either a literal command
// or a block repeated Min..Max times.
type Element struct {
	// Block is the repeated command subsequence (length 1 for a literal).
	Block []string
	// Min and Max bound the observed consecutive repetitions.
	Min, Max int
}

// Literal reports whether the element is a single non-repeated command.
func (e Element) Literal() bool { return e.Min == 1 && e.Max == 1 && len(e.Block) == 1 }

// String renders the element as pseudocode.
func (e Element) String() string {
	body := strings.Join(e.Block, " ")
	if e.Literal() {
		return body
	}
	if e.Min == e.Max {
		return fmt.Sprintf("repeat ×%d { %s }", e.Min, body)
	}
	return fmt.Sprintf("repeat ×%d..%d { %s }", e.Min, e.Max, body)
}

// Spec is a mined specification: a sequence of elements.
type Spec []Element

// String renders the specification as one pseudocode line per element.
func (s Spec) String() string {
	lines := make([]string, len(s))
	for i, e := range s {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// Commands expands the specification back into a command sequence using
// each block's minimum repetition count — a canonical witness run.
func (s Spec) Commands() []string {
	var out []string
	for _, e := range s {
		for k := 0; k < e.Min; k++ {
			out = append(out, e.Block...)
		}
	}
	return out
}

// Options tune mining.
type Options struct {
	// MaxBlock is the longest block length considered (default 8).
	MaxBlock int
}

// Mine recovers a specification from one command sequence by folding tandem
// repeats: at each position it chooses the block length whose consecutive
// repetition covers the most commands, preferring shorter blocks on ties
// (the tightest loop). Repeated calls over runs of the same procedure can
// be merged with Merge.
func Mine(seq []string, opts Options) Spec {
	if opts.MaxBlock <= 0 {
		opts.MaxBlock = 8
	}
	var spec Spec
	i := 0
	for i < len(seq) {
		bestLen, bestReps := 1, 1
		bestCover := 1
		for blockLen := 1; blockLen <= opts.MaxBlock && i+blockLen <= len(seq); blockLen++ {
			reps := 1
			for {
				start := i + reps*blockLen
				if start+blockLen > len(seq) || !equal(seq[i:i+blockLen], seq[start:start+blockLen]) {
					break
				}
				reps++
			}
			if cover := reps * blockLen; reps > 1 && cover > bestCover {
				bestLen, bestReps, bestCover = blockLen, reps, cover
			}
		}
		block := append([]string(nil), seq[i:i+bestLen]...)
		spec = append(spec, Element{Block: block, Min: bestReps, Max: bestReps})
		i += bestLen * bestReps
	}
	return mergeAdjacentLiterals(spec)
}

// mergeAdjacentLiterals keeps the spec readable by leaving literals as-is
// (they are already minimal); kept as a hook for future simplification.
func mergeAdjacentLiterals(spec Spec) Spec { return spec }

// Merge combines specifications mined from multiple runs of the same
// procedure: elements that align structurally (same block) widen their
// repetition bounds; structurally divergent runs return ok=false.
func Merge(specs []Spec) (Spec, bool) {
	if len(specs) == 0 {
		return nil, false
	}
	out := append(Spec(nil), specs[0]...)
	for _, other := range specs[1:] {
		if len(other) != len(out) {
			return nil, false
		}
		for i := range out {
			if !equal(out[i].Block, other[i].Block) {
				return nil, false
			}
			if other[i].Min < out[i].Min {
				out[i].Min = other[i].Min
			}
			if other[i].Max > out[i].Max {
				out[i].Max = other[i].Max
			}
		}
	}
	return out, true
}

// Coverage reports how much of the sequence the spec's repeated blocks
// explain: commands inside repeat-blocks divided by total commands. High
// coverage means the procedure is loop-structured (as the lab's closed-loop
// screens are).
func Coverage(seq []string, spec Spec) float64 {
	if len(seq) == 0 {
		return 0
	}
	inLoops := 0
	for _, e := range spec {
		if !e.Literal() && e.Max > 1 {
			inLoops += e.Min * len(e.Block)
		}
	}
	return float64(inLoops) / float64(len(seq))
}

// TopBlocks returns the k most frequent repeated blocks across sequences,
// by total commands covered — a corpus-level summary of the procedures'
// building blocks.
func TopBlocks(seqs [][]string, opts Options, k int) []Element {
	cover := make(map[string]*Element)
	for _, seq := range seqs {
		for _, e := range Mine(seq, opts) {
			if e.Literal() || e.Max <= 1 {
				continue
			}
			key := strings.Join(e.Block, "\x00")
			if prev, ok := cover[key]; ok {
				prev.Min += e.Min // accumulate total repetitions as Min
				if e.Max > prev.Max {
					prev.Max = e.Max
				}
			} else {
				cp := e
				cp.Block = append([]string(nil), e.Block...)
				cover[key] = &cp
			}
		}
	}
	out := make([]Element, 0, len(cover))
	for _, e := range cover {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Min*len(out[i].Block), out[j].Min*len(out[j].Block)
		if ci != cj {
			return ci > cj
		}
		return strings.Join(out[i].Block, " ") < strings.Join(out[j].Block, " ")
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
