// Package attack generates anomalous traces for IDS benchmarking — the
// paper's open problem in §VII: "we need to generate many more anomalous
// traces for testing, or for benchmarking other IDS. However, doing so in a
// manner that does not destroy equipment remains an open question." With a
// simulated lab, equipment is free: this package implements a
// man-in-the-middle interceptor on the lab-computer → middlebox path and six
// attack families drawn from the threat models of the work the paper cites
// (command injection, replay [Pu et al.], speed attacks [Wu et al.],
// parameter tampering, reordering, and command suppression), plus a scenario
// runner that produces labelled attacked runs and an evaluation harness for
// detectors.
package attack

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"

	"rad/internal/tracer"
	"rad/internal/wire"
)

// Kind identifies an attack family.
type Kind int

const (
	// Injection issues extra commands of the attacker's choosing between
	// the victim's commands.
	Injection Kind = iota + 1
	// Replay re-sends previously observed commands at the wrong time
	// (Pu et al.'s replay threat model, translated to the command channel).
	Replay
	// SpeedTamper multiplies every velocity-bearing argument (C9 SPED,
	// UR3e move velocities) — Wu et al.'s robot speed attack.
	SpeedTamper
	// ParameterTamper rewrites safety-relevant numeric arguments (dosing
	// target masses, heater setpoints) to dangerous values.
	ParameterTamper
	// Reorder swaps adjacent commands in flight.
	Reorder
	// Drop suppresses matching commands (e.g. stop commands never reach the
	// device) while forging success replies to the victim.
	Drop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Injection:
		return "injection"
	case Replay:
		return "replay"
	case SpeedTamper:
		return "speed-tamper"
	case ParameterTamper:
		return "parameter-tamper"
	case Reorder:
		return "reorder"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all attack families.
func Kinds() []Kind {
	return []Kind{Injection, Replay, SpeedTamper, ParameterTamper, Reorder, Drop}
}

// Config parameterizes an interceptor.
type Config struct {
	Kind Kind
	// StartAfter is the number of victim exec commands observed before the
	// attack becomes active.
	StartAfter int
	// Intensity is the per-command attack probability (defaults to 0.3 for
	// the probabilistic kinds).
	Intensity float64
	// Factor scales tampered numeric arguments (defaults: 3.0 for
	// SpeedTamper, 10.0 for ParameterTamper).
	Factor float64
	// Seed drives the attacker's randomness.
	Seed uint64
}

// Event records one attacker action, the ground truth an IDS benchmark
// scores against.
type Event struct {
	Kind Kind
	// AtCommand is the victim command index the action coincided with.
	AtCommand int
	// Detail describes the action (injected command, tampered argument, …).
	Detail string
}

// Interceptor is a man-in-the-middle on the tracing transport: it forwards
// the victim's requests to the real middlebox transport, applying the
// configured attack once active. It implements tracer.Transport.
type Interceptor struct {
	next tracer.Transport
	cfg  Config

	mu      sync.Mutex
	rng     *rand.Rand
	seen    int            // victim exec commands observed
	history []wire.Request // recorded prefix, for Replay
	pending *wire.Request  // buffered request, for Reorder
	events  []Event
	// lastProc/lastRun are the victim's current trace labels; a MITM that
	// can inject commands can trivially copy the victim's metadata, so
	// injected and replayed commands blend into the victim's run in the
	// middlebox log.
	lastProc string
	lastRun  string
}

var _ tracer.Transport = (*Interceptor)(nil)

// New wraps a transport with an attack.
func New(next tracer.Transport, cfg Config) *Interceptor {
	if cfg.Intensity <= 0 {
		cfg.Intensity = 0.3
	}
	if cfg.Factor <= 0 {
		switch cfg.Kind {
		case ParameterTamper:
			cfg.Factor = 10
		default:
			cfg.Factor = 3
		}
	}
	return &Interceptor{
		next: next,
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed+0x5eed, cfg.Seed^0x9e3779b97f4a7c15)),
	}
}

// Events returns the attacker's action log (ground truth).
func (a *Interceptor) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, len(a.events))
	copy(out, a.events)
	return out
}

// Close flushes any buffered (reordered) request and closes the inner
// transport.
func (a *Interceptor) Close() error {
	a.mu.Lock()
	pending := a.pending
	a.pending = nil
	a.mu.Unlock()
	if pending != nil {
		_, _ = a.next.RoundTrip(*pending)
	}
	return a.next.Close()
}

// RoundTrip implements tracer.Transport. Only exec requests are attacked;
// pings and DIRECT-mode trace uploads pass through untouched.
func (a *Interceptor) RoundTrip(req wire.Request) (wire.Reply, error) {
	if req.Op != wire.OpExec {
		return a.next.RoundTrip(req)
	}
	a.mu.Lock()
	a.seen++
	seen := a.seen
	a.lastProc, a.lastRun = req.Procedure, req.Run
	active := seen > a.cfg.StartAfter
	if a.cfg.Kind == Replay && !active {
		a.history = append(a.history, req)
	}
	a.mu.Unlock()

	if !active {
		return a.next.RoundTrip(req)
	}
	switch a.cfg.Kind {
	case Injection:
		a.maybeInject(seen)
		return a.next.RoundTrip(req)
	case Replay:
		a.maybeReplay(seen)
		return a.next.RoundTrip(req)
	case SpeedTamper:
		return a.next.RoundTrip(a.tamperSpeed(req, seen))
	case ParameterTamper:
		return a.next.RoundTrip(a.tamperParams(req, seen))
	case Reorder:
		return a.reorder(req, seen)
	case Drop:
		return a.drop(req, seen)
	default:
		return a.next.RoundTrip(req)
	}
}

// maybeInject sends attacker-chosen commands before the victim's.
func (a *Interceptor) maybeInject(seen int) {
	a.mu.Lock()
	fire := a.rng.Float64() < a.cfg.Intensity
	var inj wire.Request
	if fire {
		// The attacker probes and actuates: toggling the centrifuge, moving
		// axes, opening the Quantos door.
		choices := []wire.Request{
			{Op: wire.OpExec, Device: "C9", Name: "OUTP", Args: []string{"1"}},
			{Op: wire.OpExec, Device: "C9", Name: "MOVE", Args: []string{strconv.Itoa(a.rng.IntN(4)), f(a.rng.Float64() * 200)}},
			{Op: wire.OpExec, Device: "C9", Name: "HOME"},
			{Op: wire.OpExec, Device: "Quantos", Name: "front_door", Args: []string{"open"}},
			{Op: wire.OpExec, Device: "IKA", Name: "OUT_SP_1", Args: []string{f(200 + a.rng.Float64()*100)}},
		}
		inj = choices[a.rng.IntN(len(choices))]
		inj.Procedure, inj.Run = a.lastProc, a.lastRun
		a.events = append(a.events, Event{Kind: Injection, AtCommand: seen,
			Detail: inj.Device + "." + inj.Name})
	}
	a.mu.Unlock()
	if fire {
		_, _ = a.next.RoundTrip(inj)
	}
}

// maybeReplay re-sends a recorded command.
func (a *Interceptor) maybeReplay(seen int) {
	a.mu.Lock()
	fire := len(a.history) > 0 && a.rng.Float64() < a.cfg.Intensity
	var rep wire.Request
	if fire {
		rep = a.history[a.rng.IntN(len(a.history))]
		rep.Procedure, rep.Run = a.lastProc, a.lastRun
		a.events = append(a.events, Event{Kind: Replay, AtCommand: seen,
			Detail: rep.Device + "." + rep.Name})
	}
	a.mu.Unlock()
	if fire {
		_, _ = a.next.RoundTrip(rep)
	}
}

// tamperSpeed scales velocity arguments in flight.
func (a *Interceptor) tamperSpeed(req wire.Request, seen int) wire.Request {
	tampered := false
	out := req
	out.Args = append([]string(nil), req.Args...)
	switch {
	case req.Device == "C9" && req.Name == "SPED" && len(out.Args) == 1:
		out.Args[0] = scale(out.Args[0], a.cfg.Factor)
		tampered = true
	case req.Device == "UR3e" && (req.Name == "move_to_location" || req.Name == "move_circular") && len(out.Args) == 2:
		out.Args[1] = scale(out.Args[1], a.cfg.Factor)
		tampered = true
	case req.Device == "UR3e" && req.Name == "move_joints" && len(out.Args) == 7:
		out.Args[6] = scale(out.Args[6], a.cfg.Factor)
		tampered = true
	}
	if tampered {
		a.mu.Lock()
		a.events = append(a.events, Event{Kind: SpeedTamper, AtCommand: seen,
			Detail: req.Device + "." + req.Name + " ×" + f(a.cfg.Factor)})
		a.mu.Unlock()
	}
	return out
}

// tamperParams rewrites safety-relevant setpoints.
func (a *Interceptor) tamperParams(req wire.Request, seen int) wire.Request {
	tampered := false
	out := req
	out.Args = append([]string(nil), req.Args...)
	switch {
	case req.Device == "Quantos" && req.Name == "target_mass" && len(out.Args) == 1:
		out.Args[0] = scale(out.Args[0], a.cfg.Factor)
		tampered = true
	case req.Device == "IKA" && (req.Name == "OUT_SP_1" || req.Name == "OUT_SP_4") && len(out.Args) == 1:
		out.Args[0] = scale(out.Args[0], a.cfg.Factor)
		tampered = true
	case req.Device == "Tecan" && req.Name == "A" && len(out.Args) == 1:
		out.Args[0] = scale(out.Args[0], a.cfg.Factor)
		tampered = true
	}
	if tampered {
		a.mu.Lock()
		a.events = append(a.events, Event{Kind: ParameterTamper, AtCommand: seen,
			Detail: req.Device + "." + req.Name + " ×" + f(a.cfg.Factor)})
		a.mu.Unlock()
	}
	return out
}

// reorder buffers every other command and sends the pair swapped.
func (a *Interceptor) reorder(req wire.Request, seen int) (wire.Reply, error) {
	a.mu.Lock()
	if a.pending == nil {
		if a.rng.Float64() < a.cfg.Intensity {
			// Hold this request; it will be sent after its successor.
			held := req
			a.pending = &held
			a.events = append(a.events, Event{Kind: Reorder, AtCommand: seen,
				Detail: req.Device + "." + req.Name + " delayed"})
			a.mu.Unlock()
			// Forge an immediate success to the victim.
			return wire.Reply{ID: req.ID, Value: "ok"}, nil
		}
		a.mu.Unlock()
		return a.next.RoundTrip(req)
	}
	held := *a.pending
	a.pending = nil
	a.mu.Unlock()
	// Send the newer request first, then the held one.
	reply, err := a.next.RoundTrip(req)
	_, _ = a.next.RoundTrip(held)
	return reply, err
}

// drop suppresses stop/safety commands, forging success replies.
func (a *Interceptor) drop(req wire.Request, seen int) (wire.Reply, error) {
	victim := (req.Device == "IKA" && (req.Name == "STOP_1" || req.Name == "STOP_4")) ||
		(req.Device == "Tecan" && req.Name == "G") ||
		(req.Device == "UR3e" && req.Name == "open_gripper")
	if !victim {
		return a.next.RoundTrip(req)
	}
	a.mu.Lock()
	fire := a.rng.Float64() < a.cfg.Intensity*2
	if fire {
		a.events = append(a.events, Event{Kind: Drop, AtCommand: seen,
			Detail: req.Device + "." + req.Name + " suppressed"})
	}
	a.mu.Unlock()
	if !fire {
		return a.next.RoundTrip(req)
	}
	return wire.Reply{ID: req.ID, Value: "ok"}, nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// scale multiplies a numeric argument string, leaving unparsable arguments
// untouched.
func scale(arg string, factor float64) string {
	v, err := strconv.ParseFloat(arg, 64)
	if err != nil {
		return arg
	}
	return strconv.FormatFloat(v*factor, 'f', -1, 64)
}
