package attack

import (
	"strings"
	"testing"

	"rad/internal/procedure"
	"rad/internal/wire"
)

// fakeTransport records forwarded requests and answers "ok".
type fakeTransport struct {
	sent []wire.Request
}

func (f *fakeTransport) RoundTrip(req wire.Request) (wire.Reply, error) {
	f.sent = append(f.sent, req)
	return wire.Reply{ID: req.ID, Value: "ok"}, nil
}

func (f *fakeTransport) Close() error { return nil }

func exec(dev, name string, args ...string) wire.Request {
	return wire.Request{Op: wire.OpExec, Device: dev, Name: name, Args: args,
		Procedure: "P2", Run: "victim"}
}

func TestKindsStringAndList(t *testing.T) {
	if len(Kinds()) != 6 {
		t.Fatalf("%d attack kinds", len(Kinds()))
	}
	for _, k := range Kinds() {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestInactiveBeforeStartAfter(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: Injection, StartAfter: 100, Intensity: 1, Seed: 1})
	for i := 0; i < 50; i++ {
		if _, err := a.RoundTrip(exec("C9", "MVNG")); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Events()) != 0 {
		t.Errorf("%d events before StartAfter", len(a.Events()))
	}
	if len(next.sent) != 50 {
		t.Errorf("forwarded %d, want 50", len(next.sent))
	}
}

func TestInjectionAddsCommandsWithVictimLabels(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: Injection, StartAfter: 0, Intensity: 1, Seed: 1})
	for i := 0; i < 10; i++ {
		if _, err := a.RoundTrip(exec("C9", "MVNG")); err != nil {
			t.Fatal(err)
		}
	}
	events := a.Events()
	if len(events) != 10 {
		t.Fatalf("%d injection events at intensity 1", len(events))
	}
	if len(next.sent) != 20 {
		t.Errorf("forwarded %d requests, want 20 (victim + injected)", len(next.sent))
	}
	injected := 0
	for _, req := range next.sent {
		if req.Name != "MVNG" {
			injected++
			if req.Run != "victim" || req.Procedure != "P2" {
				t.Fatalf("injected request lacks spoofed labels: %+v", req)
			}
		}
	}
	if injected != 10 {
		t.Errorf("injected = %d", injected)
	}
}

func TestReplayResendsRecordedPrefix(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: Replay, StartAfter: 3, Intensity: 1, Seed: 1})
	prefix := []wire.Request{
		exec("C9", "ARM", "1", "2", "3"),
		exec("C9", "GRIP", "close"),
		exec("Tecan", "A", "100"),
	}
	for _, req := range prefix {
		if _, err := a.RoundTrip(req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := a.RoundTrip(exec("C9", "MVNG")); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Events()) != 5 {
		t.Fatalf("%d replay events", len(a.Events()))
	}
	// Every replayed command must be one of the recorded prefix.
	recorded := map[string]bool{"ARM": true, "GRIP": true, "A": true}
	replayed := 0
	for _, req := range next.sent[3:] {
		if req.Name != "MVNG" {
			replayed++
			if !recorded[req.Name] {
				t.Errorf("replayed %q was never recorded", req.Name)
			}
		}
	}
	if replayed != 5 {
		t.Errorf("replayed = %d", replayed)
	}
}

func TestSpeedTamperScalesVelocities(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: SpeedTamper, StartAfter: 0, Factor: 3, Seed: 1})
	cases := []wire.Request{
		exec("C9", "SPED", "100"),
		exec("UR3e", "move_to_location", "L1", "200"),
		exec("UR3e", "move_joints", "1", "2", "3", "4", "5", "6", "150"),
		exec("C9", "MVNG"), // untouched
	}
	for _, req := range cases {
		if _, err := a.RoundTrip(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := next.sent[0].Args[0]; got != "300" {
		t.Errorf("SPED tampered to %q", got)
	}
	if got := next.sent[1].Args[1]; got != "600" {
		t.Errorf("move velocity tampered to %q", got)
	}
	if got := next.sent[2].Args[6]; got != "450" {
		t.Errorf("move_joints velocity tampered to %q", got)
	}
	if len(a.Events()) != 3 {
		t.Errorf("%d tamper events", len(a.Events()))
	}
	// The original request must not be mutated (defensive copy).
	if cases[0].Args[0] != "100" {
		t.Error("tamper mutated the victim's request")
	}
}

func TestParameterTamperTargets(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: ParameterTamper, StartAfter: 0, Factor: 10, Seed: 1})
	if _, err := a.RoundTrip(exec("Quantos", "target_mass", "50")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RoundTrip(exec("IKA", "OUT_SP_1", "40")); err != nil {
		t.Fatal(err)
	}
	if got := next.sent[0].Args[0]; got != "500" {
		t.Errorf("target_mass tampered to %q", got)
	}
	if got := next.sent[1].Args[0]; got != "400" {
		t.Errorf("OUT_SP_1 tampered to %q", got)
	}
}

func TestDropSuppressesStops(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: Drop, StartAfter: 0, Intensity: 1, Seed: 1})
	reply, err := a.RoundTrip(exec("IKA", "STOP_4"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Value != "ok" {
		t.Errorf("forged reply = %+v", reply)
	}
	if len(next.sent) != 0 {
		t.Error("suppressed command was forwarded")
	}
	// Non-safety commands pass through.
	if _, err := a.RoundTrip(exec("IKA", "IN_PV_4")); err != nil {
		t.Fatal(err)
	}
	if len(next.sent) != 1 {
		t.Error("benign command not forwarded")
	}
}

func TestReorderSwapsAndFlushesOnClose(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: Reorder, StartAfter: 0, Intensity: 1, Seed: 1})
	if _, err := a.RoundTrip(exec("C9", "ARM", "1", "2", "3")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RoundTrip(exec("C9", "MVNG")); err != nil {
		t.Fatal(err)
	}
	// ARM was held; MVNG went first, then the held ARM.
	if len(next.sent) < 2 || next.sent[0].Name != "MVNG" || next.sent[1].Name != "ARM" {
		names := []string{}
		for _, r := range next.sent {
			names = append(names, r.Name)
		}
		t.Fatalf("delivery order = %v, want [MVNG ARM ...]", names)
	}
	// A held request at close time is flushed.
	if _, err := a.RoundTrip(exec("C9", "HOME")); err != nil {
		t.Fatal(err)
	}
	before := len(next.sent)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if len(next.sent) != before+1 {
		t.Error("held request not flushed on close")
	}
}

func TestPingAndTracePassThroughUntouched(t *testing.T) {
	next := &fakeTransport{}
	a := New(next, Config{Kind: Injection, StartAfter: 0, Intensity: 1, Seed: 1})
	if _, err := a.RoundTrip(wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RoundTrip(wire.Request{Op: wire.OpTrace, Device: "C9", Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 0 {
		t.Error("non-exec traffic attacked")
	}
}

func TestScenarioRunEndToEnd(t *testing.T) {
	out, err := Run(Scenario{Name: "t", Procedure: procedure.P2,
		Attack: Config{Kind: Injection, StartAfter: 10, Intensity: 0.5, Seed: 3}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Attacked() {
		t.Fatal("injection scenario produced no events")
	}
	if len(out.Records) == 0 {
		t.Fatal("no trace records")
	}
	// The trace contains more commands than the victim issued (injections
	// blend into the victim's run label).
	if len(out.Records) <= out.VictimResult.Commands {
		t.Errorf("trace %d records vs victim %d commands; injections missing from trace",
			len(out.Records), out.VictimResult.Commands)
	}
	if len(out.Sequence()) != len(out.Records) {
		t.Error("sequence length mismatch")
	}
}

func TestScenarioBenignControl(t *testing.T) {
	out, err := Run(Scenario{Name: "control", Procedure: procedure.P2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attacked() {
		t.Error("benign control has attack events")
	}
	if out.VictimResult.Err != nil {
		t.Errorf("benign control failed: %v", out.VictimResult.Err)
	}
}

func TestStandardSuiteShape(t *testing.T) {
	suite := StandardSuite(1)
	if len(suite) != 7 {
		t.Fatalf("suite has %d scenarios, want control + 6 attacks", len(suite))
	}
	if suite[0].Attack.Kind != 0 {
		t.Error("first scenario should be the benign control")
	}
	seen := map[Kind]bool{}
	for _, sc := range suite[1:] {
		seen[sc.Attack.Kind] = true
	}
	if len(seen) != 6 {
		t.Errorf("suite covers %d kinds", len(seen))
	}
}
