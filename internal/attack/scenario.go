package attack

import (
	"fmt"

	"rad/internal/procedure"
	"rad/internal/store"
	"rad/internal/tracer"
)

// Scenario describes one attacked run for benchmarking.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Procedure is the victim workload (procedure.P1/P2/P3/Joystick).
	Procedure string
	// Attack configures the interceptor. A zero Kind runs the scenario
	// benign (the control).
	Attack Config
	// Seed drives both the victim's and the lab's randomness.
	Seed uint64
}

// Outcome is one executed scenario: the run's traced command records, the
// attacker's ground-truth events, and the victim's view of the run.
type Outcome struct {
	Scenario Scenario
	// Records are the run's trace records in stream order (including
	// attacker-injected commands, which a MITM blends into the victim's
	// labels).
	Records []store.Record
	// Events is the attacker's action log (empty for benign controls).
	Events []Event
	// VictimResult is what the victim's script observed.
	VictimResult procedure.Result
}

// Sequence returns the run's command-name sequence.
func (o Outcome) Sequence() []string {
	out := make([]string, len(o.Records))
	for i, r := range o.Records {
		out[i] = r.Name
	}
	return out
}

// Attacked reports whether the scenario actually carried an attack (some
// probabilistic attacks may not fire within a short run).
func (o Outcome) Attacked() bool { return len(o.Events) > 0 }

// Run executes the scenario in a fresh virtual lab and returns its outcome.
func Run(sc Scenario) (Outcome, error) {
	var interceptor *Interceptor
	wrap := func(next tracer.Transport) tracer.Transport { return next }
	if sc.Attack.Kind != 0 {
		wrap = func(next tracer.Transport) tracer.Transport {
			cfg := sc.Attack
			if cfg.Seed == 0 {
				cfg.Seed = sc.Seed ^ 0xa77ac4
			}
			interceptor = New(next, cfg)
			return interceptor
		}
	}
	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Seed: sc.Seed, WrapTransport: wrap,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("attack: build lab: %w", err)
	}
	defer vl.Close()

	run := "scenario-" + sc.Name
	opts := procedure.Options{Run: run, Seed: sc.Seed + 1}
	var res procedure.Result
	switch sc.Procedure {
	case procedure.P1:
		res = procedure.RunSolubilityN9(vl.Lab, opts)
	case procedure.P2:
		res = procedure.RunSolubilityN9UR(vl.Lab, opts)
	case procedure.P3:
		res = procedure.RunCrystalSolubility(vl.Lab, opts)
	default:
		res = procedure.RunJoystick(vl.Lab, opts, 30)
	}
	// Tampered commands can push devices into error states the script treats
	// as fatal; that is itself an observable consequence of the attack, so
	// the run is kept either way.
	out := Outcome{Scenario: sc, Records: vl.Sink.ByRun(run), VictimResult: res}
	if interceptor != nil {
		out.Events = interceptor.Events()
	}
	return out, nil
}

// StandardSuite returns one benign control plus one scenario per attack
// family against the P2 workload — the benchmark set radids evaluates
// detectors on.
func StandardSuite(seed uint64) []Scenario {
	out := []Scenario{{Name: "benign-control", Procedure: procedure.P2, Seed: seed}}
	for i, kind := range Kinds() {
		out = append(out, Scenario{
			Name:      kind.String(),
			Procedure: procedure.P2,
			Attack:    Config{Kind: kind, StartAfter: 20, Seed: seed + uint64(i)*31},
			Seed:      seed + uint64(i)*17,
		})
	}
	return out
}
