// Package procedure implements the Hein Lab workloads whose traces make up
// RAD (§IV): the four supervised procedure types — P1 Automated Solubility
// with N9, P2 Automated Solubility with N9 and UR3e, P3 Crystal Solubility,
// P4 Joystick Movements — the two controlled power experiments P5 (velocity
// sweep) and P6 (payload sweep), and the filler prototyping sessions that
// account for the dataset's "unknown procedure" bulk.
//
// Procedures execute against virtualized devices from a tracer.Session, so
// the same scripts run over a real TCP middlebox (Fig. 4 latency runs) or an
// in-process middlebox under a virtual clock (dataset generation).
package procedure

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
	"rad/internal/middlebox"
	"rad/internal/power"
	"rad/internal/serial"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/tracer"
)

// Procedure type labels as used in the dataset.
const (
	P1       = "P1" // Automated Solubility with N9
	P2       = "P2" // Automated Solubility with N9 and UR3e
	P3       = "P3" // Crystal Solubility
	Joystick = "P4" // Joystick Movements
	P5       = "P5" // UR3e movements with different velocities
	P6       = "P6" // UR3e movements with different payload weights
)

// HumanName returns the paper's descriptive name for a procedure label.
func HumanName(label string) string {
	switch label {
	case P1:
		return "Automated Solubility with N9"
	case P2:
		return "Automated Solubility with N9 and UR3e"
	case P3:
		return "Crystal Solubility"
	case Joystick:
		return "Joystick Movements"
	case P5:
		return "UR3e movements with different velocities"
	case P6:
		return "UR3e movements with different payload weights"
	default:
		return label
	}
}

// Lab bundles everything a procedure script needs: the virtualized devices
// it sends commands through, the raw simulators for physical context (fault
// injection, payload mass), and the clock/randomness of the simulation.
type Lab struct {
	// Virtualized devices (the RATracer interception layer).
	C9      device.Device
	UR3e    device.Device
	IKA     device.Device
	Tecan   device.Device
	Quantos device.Device

	// Raw simulators, for physical context that is not a command.
	RawC9      *c9.C9
	RawUR3e    *ur3e.UR3e
	RawIKA     *ika.IKA
	RawTecan   *tecan.Tecan
	RawQuantos *quantos.Quantos

	Clock   simclock.Clock
	RNG     *rand.Rand
	Session *tracer.Session
	Monitor *power.Monitor // UR3e power telemetry (may be nil)
}

// Faultable returns the raw device's fault-injection interface, if the named
// device supports it.
func (l *Lab) Faultable(name string) (device.Faultable, bool) {
	switch name {
	case device.C9:
		return l.RawC9, l.RawC9 != nil
	case device.UR3e:
		return l.RawUR3e, l.RawUR3e != nil
	case device.Quantos:
		return l.RawQuantos, l.RawQuantos != nil
	default:
		return nil, false
	}
}

// Device returns the virtualized device by dataset name.
func (l *Lab) Device(name string) (device.Device, bool) {
	switch name {
	case device.C9:
		return l.C9, l.C9 != nil
	case device.UR3e:
		return l.UR3e, l.UR3e != nil
	case device.IKA:
		return l.IKA, l.IKA != nil
	case device.Tecan:
		return l.Tecan, l.Tecan != nil
	case device.Quantos:
		return l.Quantos, l.Quantos != nil
	default:
		return nil, false
	}
}

// VirtualLabConfig configures NewVirtualLab.
type VirtualLabConfig struct {
	// Start is the virtual campaign start instant.
	Start time.Time
	// Seed drives every random stream in the lab.
	Seed uint64
	// Network is the emulated lab network between tracer and middlebox.
	Network middlebox.NetworkProfile
	// WithPower attaches a power monitor to the UR3e.
	WithPower bool
	// WrapTransport, when set, wraps the lab-computer → middlebox transport
	// before the tracing session is built — the hook a man-in-the-middle
	// attack interceptor (internal/attack) or a measurement shim uses.
	WrapTransport func(tracer.Transport) tracer.Transport
	// SerialDevices routes the serially attached instruments (C9, IKA,
	// Tecan, Quantos) through their emulated serial stacks (Fig. 2's
	// physical layer): the middlebox holds a serial driver client and the
	// device simulator runs behind a firmware adapter on the far end of a
	// baud-timed link. The UR3e keeps its direct (TCP/RTDE-style)
	// attachment, as in the real lab.
	SerialDevices bool
}

// VirtualLab is a complete in-process deployment: five simulated devices
// registered on a middlebox core, a virtual clock, and a REMOTE-mode tracing
// session — the configuration the Hein Lab converged on (§III).
type VirtualLab struct {
	Lab   *Lab
	Core  *middlebox.Core
	Sink  *store.MemStore
	Clock *simclock.Virtual

	// serial-stack lifecycle (SerialDevices only).
	ports []*serial.Port
	fw    sync.WaitGroup
}

// NewVirtualLab assembles a virtual-time lab. Callers own Close on the
// session (via VirtualLab.Close).
func NewVirtualLab(cfg VirtualLabConfig) (*VirtualLab, error) {
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2021, 9, 1, 9, 0, 0, 0, time.UTC)
	}
	clock := simclock.NewVirtual(cfg.Start)
	sink := store.NewMemStore()
	core := middlebox.NewCore(clock, sink)

	var monitor *power.Monitor
	if cfg.WithPower {
		monitor = power.NewMonitor(power.DefaultModel(), clock, cfg.Seed^0x5bf0)
	}

	vlab := &VirtualLab{Core: core, Sink: sink, Clock: clock}

	rawC9 := c9.New(device.NewEnv(clock, cfg.Seed+1))
	rawUR := ur3e.New(device.NewEnv(clock, cfg.Seed+2), monitor)
	rawIKA := ika.New(device.NewEnv(clock, cfg.Seed+3))
	rawTecan := tecan.New(device.NewEnv(clock, cfg.Seed+4))
	rawQuantos := quantos.New(device.NewEnv(clock, cfg.Seed+5))
	// The UR3e attaches directly (its real protocol is TCP, not serial).
	core.Register(rawUR)
	serialSide := []device.Device{rawC9, rawIKA, rawTecan, rawQuantos}
	if cfg.SerialDevices {
		for _, d := range serialSide {
			labEnd, devEnd := serial.Pipe(clock, clock, serial.DefaultBaud)
			fw := serial.NewFirmware(d, devEnd)
			vlab.ports = append(vlab.ports, labEnd, devEnd)
			vlab.fw.Add(1)
			go func() {
				defer vlab.fw.Done()
				fw.Serve()
			}()
			core.Register(serial.NewClient(d.Name(), labEnd))
		}
	} else {
		for _, d := range serialSide {
			core.Register(d)
		}
	}

	var transport tracer.Transport = tracer.NewLocalTransport(core, clock, cfg.Network, cfg.Seed+6)
	if cfg.WrapTransport != nil {
		transport = cfg.WrapTransport(transport)
	}
	sess := tracer.NewSession(transport, clock, tracer.Config{DefaultMode: tracer.ModeRemote})

	lab := &Lab{
		RawC9: rawC9, RawUR3e: rawUR, RawIKA: rawIKA, RawTecan: rawTecan, RawQuantos: rawQuantos,
		Clock: clock, RNG: rand.New(rand.NewPCG(cfg.Seed+7, cfg.Seed^0x2545f4914f6cdd1d)),
		Session: sess, Monitor: monitor,
	}
	var err error
	if lab.C9, err = sess.Virtual(device.C9); err != nil {
		return nil, fmt.Errorf("procedure: virtualize C9: %w", err)
	}
	if lab.UR3e, err = sess.Virtual(device.UR3e); err != nil {
		return nil, fmt.Errorf("procedure: virtualize UR3e: %w", err)
	}
	if lab.IKA, err = sess.Virtual(device.IKA); err != nil {
		return nil, fmt.Errorf("procedure: virtualize IKA: %w", err)
	}
	if lab.Tecan, err = sess.Virtual(device.Tecan); err != nil {
		return nil, fmt.Errorf("procedure: virtualize Tecan: %w", err)
	}
	if lab.Quantos, err = sess.Virtual(device.Quantos); err != nil {
		return nil, fmt.Errorf("procedure: virtualize Quantos: %w", err)
	}
	vlab.Lab = lab
	return vlab, nil
}

// Close shuts the tracing session down, tears any serial links, and waits
// for their firmware loops to exit.
func (v *VirtualLab) Close() error {
	err := v.Lab.Session.Close()
	for _, p := range v.ports {
		_ = p.Close()
	}
	v.fw.Wait()
	return err
}
