package procedure

import (
	"time"
)

// RunJoystick executes a P4 joystick session: a user drives the N9 arm with
// continuous button presses to lift, uncap, and place vials. The joystick
// API translates each held button into a stream of ARM commands interleaved
// with MVNG polls — the source of Fig. 5(b)'s dominant ARM/MVNG n-grams —
// with occasional CURR/MOVE axis nudges and JLEN gripper adjustments.
//
// presses is the number of button presses; 0 uses a typical session length.
func RunJoystick(lab *Lab, opts Options, presses int) Result {
	s := newScript(lab, Joystick, opts)
	return s.finish(s.joystickBody(presses))
}

func (s *script) joystickBody(presses int) error {
	if presses <= 0 {
		presses = 30 + s.rng.IntN(20)
	}
	if err := s.mustExec(s.lab.C9, "__init__"); err != nil {
		return err
	}
	if err := s.joystickPresses(presses); err != nil {
		return err
	}
	return nil
}

// joystickPresses emits the command stream of the given number of button
// presses. It is shared with RunSolubilityN9's joystick-prefix option
// (run 12 used the joystick to move N9 to its start position).
func (s *script) joystickPresses(presses int) error {
	rng := s.rng
	pos := [3]float64{0, 0, 0}
	for p := 0; p < presses; p++ {
		// Held button: a burst of ARM commands stepping toward the target,
		// with MVNG polls woven in while the arm chases the setpoints.
		burst := 2 + rng.IntN(6)
		axis := rng.IntN(3)
		step := (rng.Float64()*8 + 2) * float64(1-2*rng.IntN(2)) // ±2..10 mm
		for k := 0; k < burst; k++ {
			pos[axis] += step
			if _, err := s.exec(s.lab.C9, "ARM", f(pos[0]), f(pos[1]), f(pos[2])); err != nil {
				return err
			}
			if rng.Float64() < 0.6 {
				if _, err := s.exec(s.lab.C9, "MVNG"); err != nil {
					return err
				}
			}
			s.think(s.jitterDur(40*time.Millisecond, 1.0))
		}
		// Button released: poll until the arm settles.
		polls := 1 + rng.IntN(3)
		for k := 0; k < polls; k++ {
			if _, err := s.exec(s.lab.C9, "MVNG"); err != nil {
				return err
			}
			s.think(s.jitterDur(60*time.Millisecond, 0.5))
		}
		// Occasional fine-positioning: read an axis current, nudge the axis.
		if rng.Float64() < 0.18 {
			axis := rng.IntN(4)
			if _, err := s.exec(s.lab.C9, "CURR", i(axis)); err != nil {
				return err
			}
			if _, err := s.exec(s.lab.C9, "MOVE", i(axis), f(rng.Float64()*50)); err != nil {
				return err
			}
			if _, err := s.exec(s.lab.C9, "MVNG"); err != nil {
				return err
			}
		}
		// Occasional gripper-length change before the next press.
		if rng.Float64() < 0.10 {
			if _, err := s.exec(s.lab.C9, "JLEN", f(80+rng.Float64()*40)); err != nil {
				return err
			}
		}
		s.think(s.jitterDur(300*time.Millisecond, 1.0))
		// Mid-session distractions: the operator occasionally stops to poke
		// at other devices.
		if p > 0 && p%12 == 0 {
			if err := s.maybeQuirk(); err != nil {
				return err
			}
		}
	}
	return nil
}
