package procedure

// This file implements the controlled power experiments of §VI: P5 moves
// the UR3e between two fixed locations at different commanded velocities
// (Fig. 7c) and P6 moves payloads of different weights (Fig. 7d). Both keep
// every other argument constant so the current profiles isolate one factor.

// RunVelocityTest executes one P5 trial: move the arm L0→L1 and back at
// opts.VelocityMMS with no payload.
func RunVelocityTest(lab *Lab, opts Options) Result {
	s := newScript(lab, P5, opts)
	return s.finish(s.velocityBody())
}

func (s *script) velocityBody() error {
	if err := s.mustExec(s.lab.UR3e, "__init__"); err != nil {
		return err
	}
	vel := s.velocity()
	if err := s.mustExec(s.lab.UR3e, "move_to_location", "L0", f(vel)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.UR3e, "move_to_location", "L1", f(vel)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.UR3e, "move_to_location", "L0", f(vel)); err != nil {
		return err
	}
	return nil
}

// RunWeightTest executes one P6 trial: pick a payload of opts.PayloadKg at
// the storage rack, carry it to the Quantos tray at the default velocity,
// and set it down.
func RunWeightTest(lab *Lab, opts Options) Result {
	s := newScript(lab, P6, opts)
	return s.finish(s.weightBody())
}

func (s *script) weightBody() error {
	if err := s.mustExec(s.lab.UR3e, "__init__"); err != nil {
		return err
	}
	vel := s.velocity()
	if err := s.mustExec(s.lab.UR3e, "move_to_location", "storage_rack", f(vel)); err != nil {
		return err
	}
	s.lab.RawUR3e.SetNextPayload(s.opts.PayloadKg)
	if err := s.mustExec(s.lab.UR3e, "close_gripper"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.UR3e, "move_to_location", "quantos_tray", f(vel)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.UR3e, "open_gripper"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.UR3e, "move_to_location", "home", f(vel)); err != nil {
		return err
	}
	return nil
}
