package procedure

import (
	"errors"
	"math/rand/v2"
	"strconv"
	"strings"
	"time"

	"rad/internal/device"
	"rad/internal/tracer"
)

// CrashPlan schedules a physical crash partway through a procedure — the
// mechanism behind RAD's three supervised anomalies (runs 16, 17, and 22).
type CrashPlan struct {
	// Device names the device whose next relevant command reports the fault.
	Device string
	// Reason is the fault description, e.g. "Quantos front door crashed
	// into UR3e".
	Reason string
	// AfterCommands arms the fault once this many commands have executed.
	AfterCommands int
}

// Options tune a supervised procedure run; the defaults produce a complete,
// benign execution.
type Options struct {
	// Run is the run label recorded in every trace (e.g. "run-17").
	Run string
	// Vials is the number of vials screened (loop iterations). Zero means
	// the procedure's default.
	Vials int
	// Solid selects the solid dosed in solubility runs; it changes how many
	// dissolution iterations each vial needs, but not robot trajectories
	// (the Fig. 7b invariance).
	Solid string
	// VelocityMMS overrides the arm velocity for UR3e moves (P5 uses this).
	VelocityMMS float64
	// PayloadKg is the vial+payload mass the UR3e carries (P6 uses this).
	PayloadKg float64
	// JoystickPrefix prepends a joystick positioning session of the given
	// number of button presses (run 12 used the joystick to move N9 to its
	// starting position).
	JoystickPrefix int
	// StopAfterCommands terminates the run silently once this many commands
	// have executed — an operator stopping the process on the lab computer
	// (run 18's wrong gripper configuration; run 12's solid shortage). Zero
	// disables.
	StopAfterCommands int
	// StopBeforeDosing terminates a solubility run just before its first
	// Quantos dosing cycle — run 12 ran out of solid and "executed none of
	// the Quantos and Tecan commands" of the automated screen.
	StopBeforeDosing bool
	// Seed, when nonzero, gives the run its own private random stream so an
	// identically-configured run issues an identical command sequence
	// regardless of surrounding lab activity. Zero uses the lab's shared
	// stream.
	Seed uint64
	// Quirks injects this many benign operator detours at phase boundaries:
	// short bursts of manual checks (position reads, settings queries,
	// re-taring) that interrupt the script's regular rhythm. Real lab runs
	// are full of such irregularities; they are what gives the perplexity
	// IDS its false positives (§V-B: "our models raise too many false
	// positives").
	Quirks int
	// Unsupervised drops the procedure label: the run is logged as "unknown
	// procedure" like the bulk of the three-month campaign (§IV).
	Unsupervised bool
	// Crash schedules an anomaly.
	Crash *CrashPlan
}

// Stopped is the sentinel termination cause for operator-stopped runs.
var Stopped = errors.New("procedure: stopped by operator")

// Result summarizes a procedure run.
type Result struct {
	Procedure string
	Run       string
	// Commands is the number of commands the run issued.
	Commands int
	// Anomalous marks runs that ended in a physical crash. Operator-stopped
	// runs are benign (§IV).
	Anomalous bool
	// Err is the termination cause: nil for complete runs, Stopped for
	// operator stops, the device fault for crashes.
	Err error
}

// script is the execution context threaded through a procedure body. It
// counts commands, arms scheduled crashes, detects stop conditions, and
// aborts the body via errStop/errCrashed sentinels.
type script struct {
	lab  *Lab
	opts Options
	res  Result
	rng  *rand.Rand

	commands int
	crashErr error
}

var (
	errStop    = errors.New("procedure: stop requested")
	errCrashed = errors.New("procedure: crashed")
)

func newScript(lab *Lab, label string, opts Options) *script {
	// Supervised runs label every trace they produce; unsupervised activity
	// (label == "") is logged as "unknown procedure" by the middlebox.
	if opts.Unsupervised {
		label = ""
		opts.Run = ""
	}
	lab.Session.SetLabels(label, opts.Run)
	rng := lab.RNG
	if opts.Seed != 0 {
		rng = rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x6a09e667f3bcc909))
	}
	return &script{lab: lab, opts: opts, rng: rng, res: Result{Procedure: label, Run: opts.Run}}
}

// exec issues one command through a virtualized device, handling crash
// arming, operator stops, and fault detection.
func (s *script) exec(dev device.Device, name string, args ...string) (string, error) {
	if s.opts.Crash != nil && s.commands == s.opts.Crash.AfterCommands {
		if f, ok := s.lab.Faultable(s.opts.Crash.Device); ok {
			f.InjectFault(s.opts.Crash.Reason)
		}
	}
	v, err := dev.Exec(device.Command{Device: dev.Name(), Name: name, Args: args})
	s.commands++
	if err != nil && isHardwareFault(err) {
		s.crashErr = err
		return v, errCrashed
	}
	if s.opts.StopAfterCommands > 0 && s.commands >= s.opts.StopAfterCommands {
		return v, errStop
	}
	return v, err
}

// mustExec is exec for commands whose device-level errors a script treats as
// fatal (they still propagate crash/stop sentinels).
func (s *script) mustExec(dev device.Device, name string, args ...string) error {
	_, err := s.exec(dev, name, args...)
	return err
}

// isHardwareFault recognizes a device fault both locally (DIRECT mode) and
// through the middlebox (REMOTE mode, where errors arrive as strings).
func isHardwareFault(err error) bool {
	var fe *device.FaultError
	if errors.As(err, &fe) {
		return true
	}
	var re *tracer.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, "hardware fault")
	}
	return false
}

// finish converts a body error into the run Result, running the crash
// epilogue for anomalies.
func (s *script) finish(err error) Result {
	switch {
	case err == nil:
		// Completed normally.
	case errors.Is(err, errStop):
		s.res.Err = Stopped
	case errors.Is(err, errCrashed):
		s.res.Anomalous = true
		s.res.Err = s.crashErr
		s.crashEpilogue()
	default:
		s.res.Err = err
	}
	s.res.Commands = s.commands
	s.lab.Session.SetLabels("", "")
	return s.res
}

// crashEpilogue emits the operator's emergency response after a physical
// crash: an immediate status storm, emergency stops across every actuating
// device, repeated recovery attempts against the crashed hardware (which
// keep failing and logging exceptions), and finally a re-initialization
// attempt before the process is killed. The resulting command orderings
// (stops interleaved with cross-device polls and re-inits) occur nowhere in
// benign traces, which is what gives anomalous runs their perplexity
// signature (§V-B) while remaining a small enough share of the run that its
// TF-IDF fingerprint stays procedure-like (§V-A, run 22).
func (s *script) crashEpilogue() {
	emit := func(dev device.Device, name string, args ...string) {
		_, _ = dev.Exec(device.Command{Device: dev.Name(), Name: name, Args: args})
		s.commands++
	}
	// Status storm: is anything still moving? What are the axes drawing?
	for k := 0; k < 4; k++ {
		emit(s.lab.C9, "MVNG")
		emit(s.lab.C9, "CURR", i(k%4))
	}
	// Frantic recovery: the operator interleaves emergency stops, status
	// polls, and recovery attempts against the crashed hardware in no
	// particular order until deciding to kill the process. Every crash
	// unfolds differently (the interleaving is drawn from the run's own
	// random stream), and recovery commands against faulted hardware keep
	// failing and logging exceptions.
	// The pool is weighted toward the everyday C9 status commands: a crash
	// response is mostly frantic polling with recovery actions mixed in, so
	// an anomalous run's command *frequencies* stay close to a normal trace
	// (TF-IDF, Fig. 6 run 22) while its command *orderings* are like nothing
	// in the benign corpus (perplexity, Table I).
	actions := []func(){
		func() { emit(s.lab.C9, "MVNG") },
		func() { emit(s.lab.C9, "MVNG") },
		func() { emit(s.lab.C9, "MVNG") },
		func() { emit(s.lab.C9, "MVNG") },
		func() { emit(s.lab.C9, "CURR", i(s.rng.IntN(4))) },
		func() { emit(s.lab.C9, "CURR", i(s.rng.IntN(4))) },
		func() { emit(s.lab.C9, "CURR", i(s.rng.IntN(4))) },
		func() { emit(s.lab.C9, "HOME") },
		func() { emit(s.lab.C9, "HOME") },
		func() { emit(s.lab.C9, "GRIP", "open") },
		func() { emit(s.lab.IKA, "STOP_4") },
		func() { emit(s.lab.IKA, "STOP_1") },
		func() { emit(s.lab.Tecan, "Q") },
		func() { emit(s.lab.Tecan, "Q") },
		func() { emit(s.lab.Tecan, "A", "0") },
		func() { emit(s.lab.Quantos, "front_door", "close") },
		func() { emit(s.lab.Quantos, "zero") },
		func() { emit(s.lab.Quantos, "unlock_dosing_pin_position") },
	}
	// The recovery session scales with how much of the run was underway: a
	// crash minutes into a screen gets a quick check-and-kill, a crash at
	// the end of an hour-long screen gets a full cleanup attempt.
	steps := s.commands / 3
	if steps < 15 {
		steps = 15
	}
	if steps > 75 {
		steps = 75
	}
	steps += s.rng.IntN(8)
	for k := 0; k < steps; k++ {
		actions[s.rng.IntN(len(actions))]()
	}
	// Last resort: power-cycle and re-init the crashed devices, then give up.
	emit(s.lab.C9, "__init__")
	emit(s.lab.Quantos, "__init__")
	emit(s.lab.C9, "MVNG")
	emit(s.lab.C9, "HOME")
	emit(s.lab.C9, "MVNG")
	s.think(30 * time.Second)
}

// maybeQuirk emits one benign operator detour if the run has quirk budget
// left: the operator pauses the script mentally and pokes at the devices —
// reading positions and settings, re-taring the balance, adjusting the
// gripper — before resuming. The commands are ordinary; their ordering is
// what a model trained on clean runs finds surprising.
func (s *script) maybeQuirk() error {
	if s.opts.Quirks <= 0 {
		return nil
	}
	s.opts.Quirks--
	type action struct {
		dev  string
		name string
		args []string
	}
	// The operator's checks are rituals — the same short sub-sequences every
	// time (read the axes, read the stirrer settings, inspect the pump
	// configuration, re-tare) — executed in whatever order occurs to them.
	// Structured-but-unusual behaviour like this is precisely what trips a
	// low-order model: the individual bigrams are rare against the
	// procedure's bulk, while a trigram model recognizes the ritual from
	// other runs (Table I: false positives shrink from bigram to trigram).
	rituals := [][]action{
		{
			// Axis inspection: rare reads sandwiched between the everyday
			// MVNG poll. A bigram sees each MVNG followed by something it
			// almost never follows MVNG with; a trigram sees the ritual's
			// own two-command contexts repeat across quirky runs.
			{device.C9, "POSN", []string{"0"}},
			{device.C9, "MVNG", nil},
			{device.C9, "POSN", []string{"1"}},
			{device.C9, "MVNG", nil},
			{device.C9, "CURR", []string{"0"}},
			{device.C9, "MVNG", nil},
			{device.C9, "JLEN", []string{f(95)}},
		},
		{
			// Stirrer settings check around the routine speed poll.
			{device.IKA, "IN_NAME", nil},
			{device.IKA, "IN_PV_4", nil},
			{device.IKA, "IN_SP_4", nil},
			{device.IKA, "IN_PV_4", nil},
			{device.IKA, "IN_SP_1", nil},
		},
		{
			// Pump configuration check around the routine status poll.
			{device.Tecan, "k", []string{i(5)}},
			{device.Tecan, "Q", nil},
			{device.Tecan, "L", []string{i(14)}},
			{device.Tecan, "Q", nil},
		},
		{
			{device.Quantos, "zero", nil},
			{device.Quantos, "set_home_direction", []string{"1"}},
			{device.Quantos, "zero", nil},
		},
	}
	nBlocks := 2 + s.rng.IntN(2)
	for b := 0; b < nBlocks; b++ {
		block := rituals[s.rng.IntN(len(rituals))]
		for _, a := range block {
			dev, ok := s.lab.Device(a.dev)
			if !ok {
				continue
			}
			// Quirk targets may not be initialized in every procedure; the
			// resulting traced error is part of the mess.
			if _, err := s.exec(dev, a.name, a.args...); err != nil {
				if errors.Is(err, errStop) || errors.Is(err, errCrashed) {
					return err
				}
			}
			s.think(s.jitterDur(500*time.Millisecond, 1.0))
		}
	}
	return nil
}

// think advances the clock for non-device work (image analysis, operator
// reaction, waiting on chemistry).
func (s *script) think(d time.Duration) { s.lab.Clock.Sleep(d) }

// jitterDur returns d scaled by a uniform factor in [1, 1+frac).
func (s *script) jitterDur(d time.Duration, frac float64) time.Duration {
	return d + time.Duration(s.rng.Float64()*frac*float64(d))
}

// f formats a float argument.
func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// i formats an int argument.
func i(v int) string { return strconv.Itoa(v) }
