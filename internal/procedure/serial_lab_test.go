package procedure

import (
	"strings"
	"testing"

	"rad/internal/device"
	"rad/internal/store"
)

// TestSerialLabRunsFullProcedure drives a complete P1 screen with the
// serially attached instruments running behind their emulated serial stacks
// — the full Fig. 2 pipeline: script → session → middlebox → serial driver →
// baud-timed link → firmware → device simulator.
func TestSerialLabRunsFullProcedure(t *testing.T) {
	vl, err := NewVirtualLab(VirtualLabConfig{Seed: 4, SerialDevices: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := vl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	res := RunSolubilityN9(vl.Lab, Options{Run: "serial-run", Solid: "NABH4", Vials: 1})
	if res.Err != nil {
		t.Fatalf("P1 over serial: %v", res.Err)
	}
	recs := vl.Sink.ByRun("serial-run")
	if len(recs) != res.Commands {
		t.Errorf("traced %d records for %d commands", len(recs), res.Commands)
	}
	// Multi-word responses survive the line protocol.
	foundMVNG := false
	for _, r := range recs {
		if r.Name == "MVNG" && strings.Count(r.Response, " ") == 3 {
			foundMVNG = true
		}
	}
	if !foundMVNG {
		t.Error("no well-formed MVNG response crossed the serial link")
	}
}

// TestSerialLabErrorsPropagate checks that device errors cross the serial
// protocol, the middlebox, and the tracer as exceptions.
func TestSerialLabErrorsPropagate(t *testing.T) {
	vl, err := NewVirtualLab(VirtualLabConfig{Seed: 4, SerialDevices: true})
	if err != nil {
		t.Fatal(err)
	}
	defer vl.Close()

	if _, err := vl.Lab.Tecan.Exec(device.Command{Name: device.Init}); err != nil {
		t.Fatal(err)
	}
	// An out-of-range plunger move fails on the device, crosses the firmware
	// as ERR, and surfaces at the script as an error.
	if _, err := vl.Lab.Tecan.Exec(device.Command{Name: "A", Args: []string{"99999"}}); err == nil {
		t.Fatal("expected device error through the serial stack")
	}
	bad := vl.Sink.Filter(func(r store.Record) bool { return r.Exception != "" })
	if len(bad) != 1 {
		t.Errorf("%d exception records, want 1", len(bad))
	}
}

// TestSerialLabMatchesDirectLabBehaviour runs the same seeded procedure on a
// direct lab and a serial lab: the command sequences must be identical (the
// transport must be semantically transparent).
func TestSerialLabMatchesDirectLabBehaviour(t *testing.T) {
	runOn := func(serialDevices bool) []string {
		vl, err := NewVirtualLab(VirtualLabConfig{Seed: 9, SerialDevices: serialDevices})
		if err != nil {
			t.Fatal(err)
		}
		defer vl.Close()
		res := RunCrystalSolubility(vl.Lab, Options{Run: "x", Seed: 77, Vials: 1})
		if res.Err != nil {
			t.Fatalf("run (serial=%v): %v", serialDevices, res.Err)
		}
		return vl.Sink.CommandSequence(nil)
	}
	direct := runOn(false)
	overSerial := runOn(true)
	if len(direct) != len(overSerial) {
		t.Fatalf("sequence lengths differ: direct %d, serial %d", len(direct), len(overSerial))
	}
	for i := range direct {
		if direct[i] != overSerial[i] {
			t.Fatalf("sequences diverge at %d: %s vs %s", i, direct[i], overSerial[i])
		}
	}
}
