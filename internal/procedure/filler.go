package procedure

import (
	"fmt"
	"time"

	"rad/internal/device"
)

// This file implements the unsupervised activity that makes up the bulk of
// the command dataset: "many short scripts for prototyping or for trying out
// new libraries" (§IV), run over the three-month collection period without
// procedure labels. FillDevice issues an exact number of commands against
// one device so the campaign generator can land on the per-device totals the
// paper reports for Fig. 5(a).

// FillDevice runs unsupervised prototyping activity against the named device
// until exactly n commands (including the session's __init__) have been
// issued. It returns the number of commands issued.
//
// The command mix mirrors what prototyping sessions look like per device:
// dominated by status polling (MVNG for the C9, Q for the Tecan, IN_PV_* for
// the IKA) with actuation sprinkled in.
func FillDevice(lab *Lab, deviceName string, n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	dev, ok := lab.Device(deviceName)
	if !ok {
		return 0, fmt.Errorf("procedure: unknown device %q", deviceName)
	}
	s := newScript(lab, "", Options{})
	if err := s.mustExec(dev, "__init__"); err != nil {
		return s.commands, fmt.Errorf("procedure: fill %s init: %w", deviceName, err)
	}
	for s.commands < n {
		var err error
		switch deviceName {
		case device.C9:
			err = s.fillC9Step()
		case device.UR3e:
			err = s.fillURStep(n - s.commands)
		case device.IKA:
			err = s.fillIKAStep()
		case device.Tecan:
			err = s.fillTecanStep(n - s.commands)
		case device.Quantos:
			err = s.fillQuantosStep(n - s.commands)
		default:
			return s.commands, fmt.Errorf("procedure: unknown device %q", deviceName)
		}
		if err != nil {
			return s.commands, fmt.Errorf("procedure: fill %s: %w", deviceName, err)
		}
	}
	return s.commands, nil
}

// fillC9Step issues one C9 command chosen from the prototyping mix.
func (s *script) fillC9Step() error {
	rng := s.rng
	switch p := rng.Float64(); {
	case p < 0.58:
		_, err := s.exec(s.lab.C9, "MVNG")
		return err
	case p < 0.74:
		return s.mustExec(s.lab.C9, "ARM",
			f(rng.Float64()*250), f(rng.Float64()*150-75), f(rng.Float64()*40))
	case p < 0.82:
		_, err := s.exec(s.lab.C9, "CURR", i(rng.IntN(4)))
		return err
	case p < 0.88:
		return s.mustExec(s.lab.C9, "MOVE", i(rng.IntN(4)), f(rng.Float64()*100))
	case p < 0.92:
		_, err := s.exec(s.lab.C9, "POSN", i(rng.IntN(4)))
		return err
	case p < 0.95:
		return s.mustExec(s.lab.C9, "JLEN", f(80+rng.Float64()*40))
	case p < 0.97:
		return s.mustExec(s.lab.C9, "SPED", f(100+rng.Float64()*150))
	case p < 0.98:
		return s.mustExec(s.lab.C9, "BIAS", f(rng.Float64()*0.5))
	case p < 0.99:
		return s.mustExec(s.lab.C9, "GRIP", pick(rng.IntN(2), "open", "close"))
	default:
		if rng.Float64() < 0.5 {
			return s.mustExec(s.lab.C9, "HOME")
		}
		return s.mustExec(s.lab.C9, "OUTP", "1")
	}
}

// fillURStep issues one or two UR3e commands (gripper actions pair up).
func (s *script) fillURStep(budget int) error {
	rng := s.rng
	locs := []string{"home", "L0", "L1", "L2", "camera_station", "above_rack"}
	switch p := rng.Float64(); {
	case p < 0.45:
		return s.mustExec(s.lab.UR3e, "move_to_location", locs[rng.IntN(len(locs))])
	case p < 0.75:
		return s.mustExec(s.lab.UR3e, "move_joints",
			f(rng.Float64()-0.5), f(-1.5+rng.Float64()*0.6), f(rng.Float64()*0.8),
			f(-1.6+rng.Float64()*0.6), f(rng.Float64()*0.4-0.2), f(rng.Float64()*0.3))
	case p < 0.85:
		return s.mustExec(s.lab.UR3e, "move_circular", locs[rng.IntN(len(locs))])
	default:
		if budget >= 2 {
			if err := s.mustExec(s.lab.UR3e, "close_gripper"); err != nil {
				return err
			}
			return s.mustExec(s.lab.UR3e, "open_gripper")
		}
		return s.mustExec(s.lab.UR3e, "open_gripper")
	}
}

// fillIKAStep issues one IKA command from the monitoring-heavy mix.
func (s *script) fillIKAStep() error {
	rng := s.rng
	s.think(s.jitterDur(2*time.Second, 1.0))
	switch p := rng.Float64(); {
	case p < 0.35:
		_, err := s.exec(s.lab.IKA, "IN_PV_4")
		return err
	case p < 0.55:
		_, err := s.exec(s.lab.IKA, "IN_PV_1")
		return err
	case p < 0.72:
		_, err := s.exec(s.lab.IKA, "IN_PV_2")
		return err
	case p < 0.78:
		_, err := s.exec(s.lab.IKA, "IN_SP_4")
		return err
	case p < 0.83:
		_, err := s.exec(s.lab.IKA, "IN_SP_1")
		return err
	case p < 0.86:
		_, err := s.exec(s.lab.IKA, "IN_NAME")
		return err
	case p < 0.91:
		return s.mustExec(s.lab.IKA, "OUT_SP_4", f(rng.Float64()*800))
	case p < 0.94:
		return s.mustExec(s.lab.IKA, "OUT_SP_1", f(rng.Float64()*120))
	case p < 0.96:
		return s.mustExec(s.lab.IKA, "START_4")
	case p < 0.98:
		return s.mustExec(s.lab.IKA, "STOP_4")
	case p < 0.99:
		return s.mustExec(s.lab.IKA, "START_1")
	default:
		return s.mustExec(s.lab.IKA, "STOP_1")
	}
}

// fillTecanStep issues one or more Tecan commands (batches consume several).
func (s *script) fillTecanStep(budget int) error {
	rng := s.rng
	switch p := rng.Float64(); {
	case p < 0.55:
		_, err := s.exec(s.lab.Tecan, "Q")
		s.think(s.jitterDur(300*time.Millisecond, 0.5))
		return err
	case p < 0.68:
		return s.mustExec(s.lab.Tecan, "A", f(rng.Float64()*5000))
	case p < 0.74:
		return s.mustExec(s.lab.Tecan, "V", f(200+rng.Float64()*3000))
	case p < 0.80:
		return s.mustExec(s.lab.Tecan, "I", i(1+rng.IntN(9)))
	case p < 0.84:
		return s.mustExec(s.lab.Tecan, "Z")
	case p < 0.87:
		return s.mustExec(s.lab.Tecan, "k", i(rng.IntN(32)))
	case p < 0.90:
		return s.mustExec(s.lab.Tecan, "L", i(1+rng.IntN(20)))
	case p < 0.93:
		_, err := s.exec(s.lab.Tecan, "P", f(rng.Float64()*100))
		// P can legitimately overrun the plunger during prototyping; the
		// error is traced (as it would be in the lab) and the session
		// continues.
		if err != nil && !isHardwareFault(err) {
			return nil
		}
		return err
	default:
		if budget >= 4 {
			if err := s.mustExec(s.lab.Tecan, "g"); err != nil {
				return err
			}
			if err := s.mustExec(s.lab.Tecan, "A", f(rng.Float64()*3000)); err != nil {
				return err
			}
			if err := s.mustExec(s.lab.Tecan, "G"); err != nil {
				return err
			}
			return nil
		}
		_, err := s.exec(s.lab.Tecan, "Q")
		return err
	}
}

// fillQuantosStep issues one or more Quantos commands; dosing runs the full
// precondition chain.
func (s *script) fillQuantosStep(budget int) error {
	rng := s.rng
	switch p := rng.Float64(); {
	case p < 0.25:
		return s.mustExec(s.lab.Quantos, "zero")
	case p < 0.45:
		return s.mustExec(s.lab.Quantos, "front_door", pick(rng.IntN(2), "open", "close"))
	case p < 0.60:
		return s.mustExec(s.lab.Quantos, "move_z_axis", f(rng.Float64()*1500))
	case p < 0.70:
		return s.mustExec(s.lab.Quantos, "home_z_stage")
	case p < 0.78:
		return s.mustExec(s.lab.Quantos, "target_mass", f(10+rng.Float64()*80))
	case p < 0.84:
		return s.mustExec(s.lab.Quantos, "set_home_direction", pick(rng.IntN(2), "1", "-1"))
	case p < 0.90:
		return s.mustExec(s.lab.Quantos, "lock_dosing_pin_position")
	case p < 0.96:
		return s.mustExec(s.lab.Quantos, "unlock_dosing_pin_position")
	default:
		if budget >= 5 {
			if err := s.mustExec(s.lab.Quantos, "front_door", "close"); err != nil {
				return err
			}
			if err := s.mustExec(s.lab.Quantos, "lock_dosing_pin_position"); err != nil {
				return err
			}
			if err := s.mustExec(s.lab.Quantos, "target_mass", f(20+rng.Float64()*30)); err != nil {
				return err
			}
			if err := s.mustExec(s.lab.Quantos, "start_dosing"); err != nil {
				return err
			}
			return s.mustExec(s.lab.Quantos, "unlock_dosing_pin_position")
		}
		return s.mustExec(s.lab.Quantos, "zero")
	}
}

func pick(idx int, options ...string) string { return options[idx] }
