package procedure

import (
	"time"
)

// Solids used in the solubility screens, with the typical number of
// dissolution iterations each needs (more solvent additions for the less
// soluble solids). The solid changes loop counts — not robot trajectories —
// which is the basis of the Fig. 7(b) invariance claim.
var solidIterations = map[string]int{
	"NABH4":     2,
	"CSTI":      3,
	"GENTISTIC": 4,
}

// defaultSolid is used when Options.Solid is empty.
const defaultSolid = "NABH4"

func (s *script) dissolutionIterations() int {
	solid := s.opts.Solid
	if solid == "" {
		solid = defaultSolid
	}
	if n, ok := solidIterations[solid]; ok {
		return n
	}
	return 2 + s.rng.IntN(3)
}

func (s *script) vials() int {
	if s.opts.Vials > 0 {
		return s.opts.Vials
	}
	return 3
}

// RunSolubilityN9 executes P1: the Hein Lab's closed-loop automated
// solubility screen using the N9 arm, Quantos, Tecan, and IKA. Per vial, the
// N9 moves the vial through the stations, the Quantos doses solid, and the
// loop adds solvent and stirs until image analysis reports dissolution.
func RunSolubilityN9(lab *Lab, opts Options) Result {
	s := newScript(lab, P1, opts)
	return s.finish(s.solubilityN9Body())
}

func (s *script) solubilityN9Body() error {
	// Run 12's quirk: the operator used the joystick to drive N9 to its
	// start position before launching the automated script.
	if s.opts.JoystickPrefix > 0 {
		if err := s.mustExec(s.lab.C9, "__init__"); err != nil {
			return err
		}
		if err := s.joystickPresses(s.opts.JoystickPrefix); err != nil {
			return err
		}
	}
	if err := s.initDevices(true, false); err != nil {
		return err
	}
	if err := s.n9Setup(); err != nil {
		return err
	}
	for v := 0; v < s.vials(); v++ {
		if err := s.n9MoveVial("rack", "quantos"); err != nil {
			return err
		}
		if s.opts.StopBeforeDosing {
			return errStop
		}
		if err := s.doseSolid(); err != nil {
			return err
		}
		if err := s.n9MoveVial("quantos", "stir"); err != nil {
			return err
		}
		if err := s.dissolutionLoop(); err != nil {
			return err
		}
		if err := s.n9MoveVial("stir", "rack"); err != nil {
			return err
		}
		if err := s.maybeQuirk(); err != nil {
			return err
		}
	}
	return nil
}

// RunSolubilityN9UR executes P2: the solubility screen extended with the
// UR3e, which performs the vial transfers (and whose power telemetry §VI
// analyzes). The script opens with the five-segment L0→L5 move_joints sweep
// of Fig. 7(a), then runs the screen with UR3e doing pick-and-place.
func RunSolubilityN9UR(lab *Lab, opts Options) Result {
	s := newScript(lab, P2, opts)
	return s.finish(s.solubilityN9URBody())
}

func (s *script) solubilityN9URBody() error {
	if err := s.initDevices(true, true); err != nil {
		return err
	}
	if err := s.n9Setup(); err != nil {
		return err
	}
	// Calibration sweep: the five move_joints segments L0→L1 … L4→L5.
	if err := s.urSweep(); err != nil {
		return err
	}
	for v := 0; v < s.vials(); v++ {
		if err := s.urMoveVial("rack", "quantos"); err != nil {
			return err
		}
		if s.opts.StopBeforeDosing {
			return errStop
		}
		if err := s.doseSolid(); err != nil {
			return err
		}
		if err := s.urMoveVial("quantos", "home"); err != nil {
			return err
		}
		if err := s.dissolutionLoop(); err != nil {
			return err
		}
		if err := s.urMoveVial("home", "rack"); err != nil {
			return err
		}
		if err := s.maybeQuirk(); err != nil {
			return err
		}
	}
	return nil
}

// RunCrystalSolubility executes P3: the crystal solubility profiling screen,
// which is dominated by thermal ramps on the IKA (heat, hold, poll the
// sensors, cool) with Tecan dispensing and N9 vial shuttling.
func RunCrystalSolubility(lab *Lab, opts Options) Result {
	s := newScript(lab, P3, opts)
	return s.finish(s.crystalBody())
}

func (s *script) crystalBody() error {
	if err := s.initDevices(false, false); err != nil {
		return err
	}
	if err := s.n9Setup(); err != nil {
		return err
	}
	for v := 0; v < s.vials(); v++ {
		if err := s.n9MoveVial("rack", "stir"); err != nil {
			return err
		}
		// Dispense solvent, then profile solubility across a heating and
		// cooling ramp while polling both temperature sensors.
		if err := s.tecanDispense(); err != nil {
			return err
		}
		if err := s.thermalRamp(75); err != nil {
			return err
		}
		if err := s.thermalRamp(25); err != nil {
			return err
		}
		if err := s.n9MoveVial("stir", "rack"); err != nil {
			return err
		}
		if err := s.maybeQuirk(); err != nil {
			return err
		}
	}
	return nil
}

// --- shared building blocks ---

// initDevices connects the devices a screen uses. withQuantos and withUR
// select the screen's station set; C9, Tecan, and IKA are always used.
func (s *script) initDevices(withQuantos, withUR bool) error {
	if s.opts.JoystickPrefix == 0 {
		if err := s.mustExec(s.lab.C9, "__init__"); err != nil {
			return err
		}
	}
	if withUR {
		if err := s.mustExec(s.lab.UR3e, "__init__"); err != nil {
			return err
		}
	}
	if withQuantos {
		if err := s.mustExec(s.lab.Quantos, "__init__"); err != nil {
			return err
		}
	}
	if err := s.mustExec(s.lab.Tecan, "__init__"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.IKA, "__init__"); err != nil {
		return err
	}
	return nil
}

// n9Setup configures the N9 before a screen: home, speed, elbow bias,
// gripper length.
func (s *script) n9Setup() error {
	if err := s.mustExec(s.lab.C9, "HOME"); err != nil {
		return err
	}
	if err := s.pollMVNG(3); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.C9, "SPED", f(150)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.C9, "BIAS", f(0.2)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.C9, "JLEN", f(95)); err != nil {
		return err
	}
	return nil
}

// stations maps station names to N9 workspace coordinates.
var stations = map[string][3]float64{
	"rack":    {120, 40, 10},
	"quantos": {260, -80, 35},
	"stir":    {180, 140, 20},
}

// n9MoveVial picks a vial at from and places it at to using the C9 arm:
// ARM moves with MVNG polling and gripper actions.
func (s *script) n9MoveVial(from, to string) error {
	src, dst := stations[from], stations[to]
	steps := [][3]float64{src, dst}
	if err := s.mustExec(s.lab.C9, "GRIP", "open"); err != nil {
		return err
	}
	for n, p := range steps {
		if err := s.mustExec(s.lab.C9, "ARM", f(p[0]), f(p[1]), f(p[2])); err != nil {
			return err
		}
		if err := s.pollMVNG(2 + s.rng.IntN(3)); err != nil {
			return err
		}
		if n == 0 {
			if err := s.mustExec(s.lab.C9, "GRIP", "close"); err != nil {
				return err
			}
		}
	}
	if err := s.mustExec(s.lab.C9, "GRIP", "open"); err != nil {
		return err
	}
	return nil
}

// urSweep runs the five-segment L0→L5 move_joints calibration sweep.
func (s *script) urSweep() error {
	vel := s.velocity()
	for _, loc := range []string{"L0", "L1", "L2", "L3", "L4", "L5"} {
		if err := s.mustExec(s.lab.UR3e, "move_to_location", loc, f(vel)); err != nil {
			return err
		}
	}
	return nil
}

// urMoveVial transfers a vial with the UR3e. The vial's mass becomes the
// arm's payload while the gripper is closed.
func (s *script) urMoveVial(from, to string) error {
	waypoints := map[string][]string{
		"rack":    {"above_rack", "storage_rack"},
		"quantos": {"above_quantos", "quantos_tray"},
		"home":    {"home"},
	}
	vel := s.velocity()
	// Physical context: the vial's mass becomes the payload on grip. When
	// the raw simulator lives on the far side of a middlebox (REMOTE-only
	// deployments such as cmd/radtrace), the lab computer has no handle to
	// it — exactly as in the real lab, where mass is physics, not software.
	if s.lab.RawUR3e != nil {
		s.lab.RawUR3e.SetNextPayload(s.payload())
	}
	for _, loc := range waypoints[from] {
		if err := s.mustExec(s.lab.UR3e, "move_to_location", loc, f(vel)); err != nil {
			return err
		}
	}
	if err := s.mustExec(s.lab.UR3e, "close_gripper"); err != nil {
		return err
	}
	for _, loc := range waypoints[to] {
		if err := s.mustExec(s.lab.UR3e, "move_to_location", loc, f(vel)); err != nil {
			return err
		}
	}
	if err := s.mustExec(s.lab.UR3e, "open_gripper"); err != nil {
		return err
	}
	return nil
}

func (s *script) velocity() float64 {
	if s.opts.VelocityMMS > 0 {
		return s.opts.VelocityMMS
	}
	return 200
}

func (s *script) payload() float64 {
	if s.opts.PayloadKg > 0 {
		return s.opts.PayloadKg
	}
	return 0.020 // an empty 20 mL vial
}

// doseSolid runs the Quantos dosing station: open the door for vial
// placement, dose toward the target mass, read the result.
func (s *script) doseSolid() error {
	if err := s.mustExec(s.lab.Quantos, "front_door", "open"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "move_z_axis", f(400)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "front_door", "close"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "lock_dosing_pin_position"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "zero"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "target_mass", f(30+s.rng.Float64()*40)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "start_dosing"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "unlock_dosing_pin_position"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Quantos, "front_door", "open"); err != nil {
		return err
	}
	return nil
}

// tecanDispense adds solvent: set velocity, select the solvent valve, move
// the plunger, and poll status until idle.
func (s *script) tecanDispense() error {
	if err := s.mustExec(s.lab.Tecan, "V", f(1200)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Tecan, "I", i(1+s.rng.IntN(3))); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.Tecan, "A", f(500+s.rng.Float64()*2000)); err != nil {
		return err
	}
	polls := 2 + s.rng.IntN(4)
	for k := 0; k < polls; k++ {
		if _, err := s.exec(s.lab.Tecan, "Q"); err != nil {
			return err
		}
		s.think(s.jitterDur(400*time.Millisecond, 0.5))
	}
	return nil
}

// stirAndCheck stirs the vial and polls the stirring speed, then waits for
// image analysis.
func (s *script) stirAndCheck() error {
	if err := s.mustExec(s.lab.IKA, "OUT_SP_4", f(300)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.IKA, "START_4"); err != nil {
		return err
	}
	polls := 3 + s.rng.IntN(3)
	for k := 0; k < polls; k++ {
		if _, err := s.exec(s.lab.IKA, "IN_PV_4"); err != nil {
			return err
		}
		s.think(s.jitterDur(2*time.Second, 0.5))
	}
	if err := s.mustExec(s.lab.IKA, "STOP_4"); err != nil {
		return err
	}
	s.think(s.jitterDur(3*time.Second, 0.5)) // computer-vision dissolution check
	return nil
}

// dissolutionLoop adds solvent and stirs until the solid dissolves (the
// iteration count depends on the solid).
func (s *script) dissolutionLoop() error {
	for it := 0; it < s.dissolutionIterations(); it++ {
		if err := s.tecanDispense(); err != nil {
			return err
		}
		if err := s.stirAndCheck(); err != nil {
			return err
		}
	}
	return nil
}

// thermalRamp drives the hotplate toward targetC while stirring gently and
// polling both temperature sensors.
func (s *script) thermalRamp(targetC float64) error {
	if err := s.mustExec(s.lab.IKA, "OUT_SP_1", f(targetC)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.IKA, "START_1"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.IKA, "OUT_SP_4", f(150)); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.IKA, "START_4"); err != nil {
		return err
	}
	polls := 4 + s.rng.IntN(4)
	for k := 0; k < polls; k++ {
		if _, err := s.exec(s.lab.IKA, "IN_PV_1"); err != nil {
			return err
		}
		if _, err := s.exec(s.lab.IKA, "IN_PV_2"); err != nil {
			return err
		}
		s.think(s.jitterDur(20*time.Second, 0.5))
	}
	if err := s.mustExec(s.lab.IKA, "STOP_1"); err != nil {
		return err
	}
	if err := s.mustExec(s.lab.IKA, "STOP_4"); err != nil {
		return err
	}
	return nil
}

// pollMVNG polls the C9 moving states n times with short gaps.
func (s *script) pollMVNG(n int) error {
	for k := 0; k < n; k++ {
		if _, err := s.exec(s.lab.C9, "MVNG"); err != nil {
			return err
		}
		s.think(s.jitterDur(100*time.Millisecond, 0.5))
	}
	return nil
}
