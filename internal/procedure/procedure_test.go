package procedure

import (
	"errors"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/middlebox"
	"rad/internal/store"
)

func newLab(t *testing.T, withPower bool) *VirtualLab {
	t.Helper()
	vl, err := NewVirtualLab(VirtualLabConfig{Seed: 1, Network: middlebox.LANProfile(), WithPower: withPower})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := vl.Close(); err != nil {
			t.Errorf("close lab: %v", err)
		}
	})
	return vl
}

func devicesUsed(recs []store.Record) map[string]int {
	m := make(map[string]int)
	for _, r := range recs {
		m[r.Device]++
	}
	return m
}

func TestJoystickRunOnlyC9(t *testing.T) {
	vl := newLab(t, false)
	res := RunJoystick(vl.Lab, Options{Run: "run-0"}, 10)
	if res.Err != nil || res.Anomalous {
		t.Fatalf("joystick run failed: %+v", res)
	}
	recs := vl.Sink.ByRun("run-0")
	if len(recs) == 0 {
		t.Fatal("no traces recorded")
	}
	if len(recs) != res.Commands {
		t.Errorf("traced %d commands, result says %d", len(recs), res.Commands)
	}
	for _, r := range recs {
		if r.Device != device.C9 {
			t.Fatalf("joystick touched %s", r.Device)
		}
		if r.Procedure != Joystick {
			t.Fatalf("procedure label %q", r.Procedure)
		}
	}
}

func TestJoystickDominatedByArmAndMvng(t *testing.T) {
	vl := newLab(t, false)
	RunJoystick(vl.Lab, Options{Run: "run-0"}, 25)
	byCmd := make(map[string]int)
	for _, r := range vl.Sink.ByRun("run-0") {
		byCmd[r.Name]++
	}
	total := 0
	for _, n := range byCmd {
		total += n
	}
	if frac := float64(byCmd["ARM"]+byCmd["MVNG"]) / float64(total); frac < 0.7 {
		t.Errorf("ARM+MVNG fraction = %v, want > 0.7 (joystick streams)", frac)
	}
}

func TestSolubilityN9CompleteRun(t *testing.T) {
	vl := newLab(t, false)
	res := RunSolubilityN9(vl.Lab, Options{Run: "run-13", Solid: "CSTI"})
	if res.Err != nil || res.Anomalous {
		t.Fatalf("P1 run failed: %+v", res)
	}
	used := devicesUsed(vl.Sink.ByRun("run-13"))
	if used[device.C9] == 0 || used[device.Quantos] == 0 || used[device.Tecan] == 0 || used[device.IKA] == 0 {
		t.Errorf("P1 device usage = %v, want C9+Quantos+Tecan+IKA", used)
	}
	if used[device.UR3e] != 0 {
		t.Errorf("P1 must not use the UR3e, got %d commands", used[device.UR3e])
	}
}

func TestSolubilityN9URUsesUR3e(t *testing.T) {
	vl := newLab(t, true)
	res := RunSolubilityN9UR(vl.Lab, Options{Run: "run-19"})
	if res.Err != nil || res.Anomalous {
		t.Fatalf("P2 run failed: %+v", res)
	}
	used := devicesUsed(vl.Sink.ByRun("run-19"))
	if used[device.UR3e] == 0 {
		t.Error("P2 must use the UR3e")
	}
	if vl.Lab.Monitor.Len() == 0 {
		t.Error("P2 with power monitoring recorded no samples")
	}
}

func TestCrystalSolubilityThermalHeavy(t *testing.T) {
	vl := newLab(t, false)
	res := RunCrystalSolubility(vl.Lab, Options{Run: "run-21"})
	if res.Err != nil || res.Anomalous {
		t.Fatalf("P3 run failed: %+v", res)
	}
	byCmd := make(map[string]int)
	for _, r := range vl.Sink.ByRun("run-21") {
		byCmd[r.Name]++
	}
	if byCmd["IN_PV_1"] == 0 || byCmd["IN_PV_2"] == 0 || byCmd["START_1"] == 0 {
		t.Errorf("P3 should poll temperature sensors and run the heater: %v", byCmd)
	}
	if byCmd["start_dosing"] != 0 {
		t.Errorf("P3 should not dose with the Quantos")
	}
}

func TestCrashMarksRunAnomalous(t *testing.T) {
	vl := newLab(t, false)
	res := RunSolubilityN9(vl.Lab, Options{
		Run: "run-16",
		Crash: &CrashPlan{
			Device: device.Quantos, Reason: "front door crashed into the robot", AfterCommands: 20,
		},
	})
	if !res.Anomalous {
		t.Fatalf("crash run not anomalous: %+v", res)
	}
	if res.Err == nil || errors.Is(res.Err, Stopped) {
		t.Errorf("crash termination cause = %v", res.Err)
	}
	// The exception must appear in the trace.
	found := false
	for _, r := range vl.Sink.ByRun("run-16") {
		if r.Exception != "" {
			found = true
		}
	}
	if !found {
		t.Error("crash exception not traced")
	}
	// The run stops shortly after the crash (epilogue only).
	complete := RunSolubilityN9(newLab(t, false).Lab, Options{Run: "x"})
	if res.Commands >= complete.Commands {
		t.Errorf("crashed run issued %d commands, complete run %d", res.Commands, complete.Commands)
	}
}

func TestOperatorStopIsBenign(t *testing.T) {
	vl := newLab(t, false)
	res := RunSolubilityN9UR(vl.Lab, Options{Run: "run-18", StopAfterCommands: 25})
	if res.Anomalous {
		t.Error("operator stop must not be anomalous")
	}
	if !errors.Is(res.Err, Stopped) {
		t.Errorf("termination cause = %v, want Stopped", res.Err)
	}
	if res.Commands < 25 || res.Commands > 30 {
		t.Errorf("stopped run issued %d commands, want ≈25", res.Commands)
	}
}

func TestJoystickPrefixChangesP1Profile(t *testing.T) {
	vl := newLab(t, false)
	res := RunSolubilityN9(vl.Lab, Options{Run: "run-12", JoystickPrefix: 40, StopAfterCommands: 260})
	if res.Anomalous {
		t.Error("run 12 is benign")
	}
	byCmd := make(map[string]int)
	total := 0
	for _, r := range vl.Sink.ByRun("run-12") {
		byCmd[r.Name]++
		total++
	}
	if frac := float64(byCmd["ARM"]+byCmd["MVNG"]) / float64(total); frac < 0.5 {
		t.Errorf("run 12 ARM+MVNG fraction = %v, want joystick-like (> 0.5)", frac)
	}
	if byCmd["start_dosing"] != 0 || byCmd["target_mass"] != 0 {
		t.Error("run 12 stopped before dosing; must contain no dosing commands")
	}
}

func TestVelocityAndWeightTests(t *testing.T) {
	vl := newLab(t, true)
	res := RunVelocityTest(vl.Lab, Options{Run: "p5", VelocityMMS: 250})
	if res.Err != nil {
		t.Fatalf("P5: %+v", res)
	}
	if vl.Lab.Monitor.Len() == 0 {
		t.Fatal("P5 recorded no power samples")
	}
	before := vl.Lab.Monitor.Len()
	res = RunWeightTest(vl.Lab, Options{Run: "p6", PayloadKg: 1.0})
	if res.Err != nil {
		t.Fatalf("P6: %+v", res)
	}
	if vl.Lab.Monitor.Len() <= before {
		t.Error("P6 recorded no power samples")
	}
}

func TestFillDeviceExactCount(t *testing.T) {
	vl := newLab(t, false)
	for _, tc := range []struct {
		dev string
		n   int
	}{
		{device.C9, 100},
		{device.Tecan, 57},
		{device.IKA, 43},
		{device.UR3e, 21},
		{device.Quantos, 38},
	} {
		got, err := FillDevice(vl.Lab, tc.dev, tc.n)
		if err != nil {
			t.Fatalf("FillDevice(%s): %v", tc.dev, err)
		}
		if got != tc.n {
			t.Errorf("FillDevice(%s, %d) issued %d", tc.dev, tc.n, got)
		}
	}
	byDev := vl.Sink.CountByDevice()
	if byDev[device.C9] != 100 || byDev[device.Tecan] != 57 || byDev[device.IKA] != 43 ||
		byDev[device.UR3e] != 21 || byDev[device.Quantos] != 38 {
		t.Errorf("per-device counts = %v", byDev)
	}
	for _, r := range vl.Sink.All() {
		if r.Procedure != store.UnknownProcedure {
			t.Fatalf("filler trace labelled %q", r.Procedure)
		}
	}
}

func TestFillDeviceZeroAndUnknown(t *testing.T) {
	vl := newLab(t, false)
	if n, err := FillDevice(vl.Lab, device.C9, 0); n != 0 || err != nil {
		t.Errorf("FillDevice(0) = %d, %v", n, err)
	}
	if _, err := FillDevice(vl.Lab, "Toaster", 5); err == nil {
		t.Error("unknown device should error")
	}
}

func TestRunsAreDeterministicBySeed(t *testing.T) {
	seqFor := func() []string {
		vl, err := NewVirtualLab(VirtualLabConfig{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		defer vl.Close()
		RunSolubilityN9UR(vl.Lab, Options{Run: "r"})
		return vl.Sink.CommandSequence(nil)
	}
	a, b := seqFor(), seqFor()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestHumanNames(t *testing.T) {
	if HumanName(P1) != "Automated Solubility with N9" {
		t.Error("P1 name")
	}
	if HumanName("other") != "other" {
		t.Error("fallback name")
	}
}

func TestP2CommandBudgetNearPaper(t *testing.T) {
	// §VI: P2 "includes a sequence of 58 commands, a majority of which are
	// UR3e move commands". Our P2 with one vial should be in that ballpark.
	vl := newLab(t, false)
	res := RunSolubilityN9UR(vl.Lab, Options{Run: "r", Vials: 1, Solid: "NABH4"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Commands < 40 || res.Commands > 90 {
		t.Errorf("P2 single-vial run = %d commands, want ≈58", res.Commands)
	}
}

func TestVirtualLabDefaults(t *testing.T) {
	vl, err := NewVirtualLab(VirtualLabConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer vl.Close()
	if vl.Clock.Now().Before(time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("default start time not applied")
	}
	if vl.Lab.Monitor != nil {
		t.Error("power monitor attached without WithPower")
	}
}
