package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/middlebox"
	"rad/internal/obs/span"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// TestFleetTracedCampaignDigests pins the acceptance guarantee that the
// span flight recorder never perturbs the dataset: a fault-injected fleet
// campaign with tracing on produces per-tenant digests byte-identical to
// the untraced run and to a traced rerun. Trace ids live outside the
// record codec and the digest, so this holds by construction — the test
// keeps it that way.
func TestFleetTracedCampaignDigests(t *testing.T) {
	const seed, tenants, requests = 42, 6, 60

	untraced := digests(t, CampaignConfig{Tenants: tenants, Requests: requests, Seed: seed, Faults: true})

	rec := span.NewRecorder(span.Config{Seed: seed, BufferPerShard: 1024})
	traced := digests(t, CampaignConfig{Tenants: tenants, Requests: requests, Seed: seed, Faults: true, Spans: rec})
	for id, d := range untraced {
		if traced[id] != d {
			t.Fatalf("tenant %s: tracing changed the digest\n  untraced %s\n  traced   %s", id, d, traced[id])
		}
	}
	if st := rec.Stats(); st.Recorded == 0 {
		t.Fatal("traced campaign recorded no spans — the recorder was not wired through")
	}
	// The recorder tags spans per tenant, so the router-facing rollups see
	// every lab.
	rollups := rec.Rollup()
	byTenant := make(map[string]span.TenantRollup, len(rollups))
	for _, r := range rollups {
		byTenant[r.Tenant] = r
	}
	for i := 0; i < tenants; i++ {
		if byTenant[TenantID(i)].Spans == 0 {
			t.Fatalf("tenant %s has no spans in the rollup", TenantID(i))
		}
	}

	// A traced rerun with a fresh recorder reproduces both the digests and
	// the span accounting (seeded id stream, deterministic sampler).
	rec2 := span.NewRecorder(span.Config{Seed: seed, BufferPerShard: 1024})
	again := digests(t, CampaignConfig{Tenants: tenants, Requests: requests, Seed: seed, Faults: true, Spans: rec2})
	for id, d := range traced {
		if again[id] != d {
			t.Fatalf("tenant %s: traced rerun digest moved\n  %s\n  %s", id, d, again[id])
		}
	}
	if a, b := rec.Stats().Recorded, rec2.Stats().Recorded; a != b {
		t.Fatalf("traced reruns recorded different span counts: %d vs %d", a, b)
	}
}

// TestFleetTracedMixedWireDigests drives a mixed v1 JSON / v2 binary client
// pair through ONE traced fleet listener — each protocol on its own tenant
// so per-tenant record streams stay single-writer — and asserts the whole
// thing is byte-reproducible: rerunning the storm yields identical
// per-tenant digests, with the server stitching wire, exec, and trace-
// context spans the entire time. v1 clients cannot carry trace context
// (the JSON codec predates it), so their trees root at the server.
func TestFleetTracedMixedWireDigests(t *testing.T) {
	runStorm := func() (map[string]string, *span.Recorder) {
		rec := span.NewRecorder(span.Config{Seed: 7, BufferPerShard: 1024})
		mems := &sync.Map{}
		r, err := NewRouter(Config{Spans: rec, Factory: func(id string) (*Resources, error) {
			clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
			mem := store.NewMemStore()
			mems.Store(id, mem)
			core := middlebox.NewCore(clock, mem)
			core.SetSpans(rec, id)
			core.Register(c9.New(device.NewEnv(clock, TenantSeed(1, id))))
			return &Resources{Core: core}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		srv := middlebox.NewHandlerServer(r, middlebox.NetworkProfile{}, 1)
		srv.SetSpans(rec)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		clients := []struct {
			proto  wire.Proto
			tenant string
		}{
			{wire.ProtoV1, "lab-json"},
			{wire.ProtoV2, "lab-binary"},
		}
		var wg sync.WaitGroup
		errs := make(chan error, len(clients))
		for ci, cl := range clients {
			wg.Add(1)
			go func(ci int, proto wire.Proto, tenant string) {
				defer wg.Done()
				conn, wc, err := wire.Dial(addr, proto, nil)
				if err != nil {
					errs <- err
					return
				}
				defer conn.Close()
				exec := func(id uint64, name string, args ...string) error {
					req := wire.Request{
						ID: id, Op: wire.OpExec, Tenant: tenant,
						Device: "C9", Name: name, Args: args,
						Run: "storm-" + tenant,
					}
					if proto == wire.ProtoV2 {
						// Client-side trace context: only the v2 codec can
						// carry it, exactly like Tenant/ResumeFrom.
						req.TraceID, req.SpanID = uint64(1000+id), uint64(2000+id)
					}
					if err := wc.WriteFrame(req); err != nil {
						return err
					}
					var rep wire.Reply
					return wc.ReadFrame(&rep)
				}
				if err := exec(0, device.Init); err != nil {
					errs <- fmt.Errorf("client %d init: %w", ci, err)
					return
				}
				for i := 1; i <= 20; i++ {
					if err := exec(uint64(i), "MVNG"); err != nil {
						errs <- fmt.Errorf("client %d exec %d: %w", ci, i, err)
						return
					}
				}
			}(ci, cl.proto, cl.tenant)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		out := make(map[string]string)
		mems.Range(func(k, v any) bool {
			out[k.(string)] = recordsDigest(v.(*store.MemStore).All())
			return true
		})
		return out, rec
	}

	first, rec := runStorm()
	if len(first) != 2 {
		t.Fatalf("expected 2 tenant stores, got %d", len(first))
	}

	// The server stitched trees for both protocols: every root is a
	// server.request span with a middlebox.exec child, and the v2 client's
	// remote context made its roots children of the client's span ids.
	stitched, remoteParented := 0, 0
	for _, root := range rec.Roots(span.Filter{Limit: 0}) {
		if root.Span.Name != "server.request" {
			continue
		}
		for _, c := range root.Children {
			if c.Span.Name == "middlebox.exec" {
				stitched++
			}
		}
		if root.Span.ParentID >= 2000 && root.Span.ParentID <= 2020 {
			remoteParented++
		}
	}
	if stitched == 0 {
		t.Fatal("no server.request root has a middlebox.exec child — trees did not stitch")
	}
	if remoteParented == 0 {
		t.Fatal("no server root adopted the v2 client's trace context")
	}
	if rollups := rec.Rollup(); len(rollups) < 2 {
		t.Fatalf("expected per-tenant rollups for both labs, got %+v", rollups)
	}

	second, _ := runStorm()
	for id, d := range first {
		if second[id] != d {
			t.Fatalf("tenant %s: traced mixed-protocol rerun digest moved\n  %s\n  %s", id, d, second[id])
		}
	}
}
