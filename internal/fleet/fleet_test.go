package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/fault"
	"rad/internal/middlebox"
	"rad/internal/obs"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// testFactory builds a minimal single-device lab for router tests.
func testFactory(tb testing.TB) Factory {
	tb.Helper()
	return func(id string) (*Resources, error) {
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		core := middlebox.NewCore(clock, store.NewMemStore())
		core.Register(c9.New(device.NewEnv(clock, TenantSeed(7, id))))
		return &Resources{Core: core}, nil
	}
}

func execReq(id uint64, tenant string) wire.Request {
	return wire.Request{ID: id, Op: wire.OpExec, Tenant: tenant, Device: "C9", Name: device.Init}
}

func TestFleetRouterRouting(t *testing.T) {
	r, err := NewRouter(Config{Factory: testFactory(t)})
	if err != nil {
		t.Fatal(err)
	}

	// An untagged request lands on the default tenant.
	if rep := r.Handle(execReq(1, "")); rep.Error != "" {
		t.Fatalf("default tenant: %s", rep.Error)
	}
	if _, ok := r.Lookup(DefaultTenant); !ok {
		t.Fatal("default tenant not instantiated")
	}

	// Tagged requests land on their own labs.
	for i := 0; i < 3; i++ {
		id := TenantID(i)
		for j := 0; j < i+1; j++ {
			if rep := r.Handle(execReq(1, id)); rep.Error != "" {
				t.Fatalf("%s: %s", id, rep.Error)
			}
		}
	}
	st := r.Snapshot()
	if st.Tenants != 4 {
		t.Fatalf("tenants = %d, want 4", st.Tenants)
	}
	if st.Routed != 1+1+2+3 {
		t.Fatalf("routed = %d, want 7", st.Routed)
	}
	var sum uint64
	for _, ts := range st.PerTenant {
		sum += ts.Requests
		if ts.Stats.Execs != ts.Requests {
			t.Fatalf("%s: execs %d != routed %d", ts.ID, ts.Stats.Execs, ts.Requests)
		}
	}
	if sum != st.Routed {
		t.Fatalf("per-tenant sum %d != routed %d", sum, st.Routed)
	}

	// A hostile tenant ID is rejected before any lab is touched.
	for _, bad := range []string{"../escape", "a/b", strings.Repeat("x", 65), "..", "läb"} {
		rep := r.Handle(execReq(9, bad))
		if rep.Error == "" {
			t.Fatalf("tenant %q accepted", bad)
		}
	}
	if got := r.Snapshot().Rejected; got != 5 {
		t.Fatalf("rejected = %d, want 5", got)
	}
}

func TestFleetRouterTenantCap(t *testing.T) {
	r, err := NewRouter(Config{Factory: testFactory(t), MaxTenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep := r.Handle(execReq(1, "a")); rep.Error != "" {
		t.Fatal(rep.Error)
	}
	if rep := r.Handle(execReq(1, "b")); rep.Error != "" {
		t.Fatal(rep.Error)
	}
	if rep := r.Handle(execReq(1, "c")); rep.Error == "" {
		t.Fatal("third tenant admitted past MaxTenants=2")
	}
	// Existing tenants keep serving at the cap.
	if rep := r.Handle(execReq(2, "a")); rep.Error != "" {
		t.Fatal(rep.Error)
	}
}

func TestFleetRouterFactoryFailureSticky(t *testing.T) {
	boom := errors.New("no lab for you")
	calls := 0
	r, err := NewRouter(Config{Factory: func(id string) (*Resources, error) {
		calls++
		return nil, boom
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if rep := r.Handle(execReq(1, "broken")); !strings.Contains(rep.Error, boom.Error()) {
			t.Fatalf("reply error = %q", rep.Error)
		}
	}
	if calls != 1 {
		t.Fatalf("factory ran %d times for a failing tenant, want 1", calls)
	}
	if got := r.Snapshot().Tenants; got != 0 {
		t.Fatalf("failed tenant counted as instantiated: %d", got)
	}
}

// TestFleetRouterConcurrentCreate hammers one cold tenant ID from many
// goroutines: exactly one lab must be built, every request served by it.
func TestFleetRouterConcurrentCreate(t *testing.T) {
	var built sync.Map
	var builds int32
	var mu sync.Mutex
	r, err := NewRouter(Config{Factory: func(id string) (*Resources, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		res, err := testFactory(t)(id)
		if err == nil {
			built.Store(id, res.Core)
		}
		return res, err
	}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if rep := r.Handle(execReq(uint64(i), "shared")); rep.Error != "" {
					t.Error(rep.Error)
					return
				}
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("factory ran %d times for one tenant", builds)
	}
	st := r.Snapshot()
	if st.Routed != workers*50 {
		t.Fatalf("routed = %d, want %d", st.Routed, workers*50)
	}
}

// TestFleetObsRollups checks the fleet metrics render with per-tenant
// labels without disturbing routing.
func TestFleetObsRollups(t *testing.T) {
	reg := obs.NewRegistry()
	dlqRoot := t.TempDir()
	r, err := NewRouter(Config{Registry: reg, Factory: func(id string) (*Resources, error) {
		res, err := testFactory(t)(id)
		if err != nil {
			return nil, err
		}
		dlq, err := store.OpenTenantDLQ(dlqRoot, id)
		if err != nil {
			return nil, err
		}
		res.DLQ = dlq
		return res, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if rep := r.Handle(execReq(1, TenantID(i))); rep.Error != "" {
			t.Fatal(rep.Error)
		}
	}
	if err := r.Handle(execReq(1, TenantID(0))); err.Error != "" {
		t.Fatal(err.Error)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"rad_fleet_tenants 3",
		"rad_fleet_routed_total 4",
		`rad_fleet_tenant_requests_total{tenant="lab-0000"} 2`,
		`rad_store_drained_records_total{tenant="lab-0001"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestFleetSnapshotWhileServing aggregates fleet snapshots concurrently
// with live traffic across many tenants — the "without stopping the world"
// guarantee, checked under -race.
func TestFleetSnapshotWhileServing(t *testing.T) {
	r, err := NewRouter(Config{Factory: testFactory(t)})
	if err != nil {
		t.Fatal(err)
	}
	const tenants, perTenant = 32, 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < perTenant; j++ {
				if rep := r.Handle(execReq(uint64(j), id)); rep.Error != "" {
					t.Error(rep.Error)
					return
				}
			}
		}(TenantID(i))
	}
	go func() { wg.Wait(); close(done) }()
	var last Stats
	for serving := true; serving; {
		select {
		case <-done:
			serving = false
		default:
		}
		st := r.Snapshot()
		if st.Routed < last.Routed || st.Tenants < last.Tenants {
			t.Fatalf("snapshot went backwards: %+v after %+v", st, last)
		}
		last = st
	}
	st := r.Snapshot()
	if st.Tenants != tenants {
		t.Fatalf("tenants = %d, want %d", st.Tenants, tenants)
	}
	if st.Routed != tenants*perTenant {
		t.Fatalf("routed = %d, want %d", st.Routed, tenants*perTenant)
	}
}

// fleetBenchRouter builds a router whose tenants mirror the single-tenant
// BenchmarkExecObserved rig: C9 on a virtual clock, no sink, hardened
// policy.
func fleetBenchRouter(tb testing.TB) *Router {
	tb.Helper()
	r, err := NewRouter(Config{Factory: func(id string) (*Resources, error) {
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		core := middlebox.NewCore(clock, nil)
		core.Register(c9.New(device.NewEnv(clock, 1)))
		core.SetExecPolicy(middlebox.ExecPolicy{
			Timeout: 20 * time.Second,
			Retries: 2,
			Breaker: fault.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Minute},
		})
		return &Resources{Core: core}, nil
	}})
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// BenchmarkFleetExec prices the router on the exec hot path at increasing
// tenant counts, round-robining requests across the fleet. The acceptance
// bound (EXPERIMENTS.md) is per-exec cost within 2x of the single-tenant
// BenchmarkExecObserved baseline at 100 tenants.
func BenchmarkFleetExec(b *testing.B) {
	for _, tenants := range []int{1, 16, 100} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			r := fleetBenchRouter(b)
			ids := make([]string, tenants)
			for i := range ids {
				ids[i] = TenantID(i)
				if rep := r.Handle(execReq(1, ids[i])); rep.Error != "" {
					b.Fatalf("init %s: %s", ids[i], rep.Error)
				}
			}
			req := wire.Request{ID: 2, Op: wire.OpExec, Device: "C9", Name: "MVNG"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.Tenant = ids[i%tenants]
				if rep := r.Handle(req); rep.Error != "" {
					b.Fatal(rep.Error)
				}
			}
		})
	}
}
