package fleet

import "rad/internal/obs"

// observe registers the fleet-wide rollup metrics. Every callback is a
// pull-based mirror of an atomic the router already maintains — rendering
// the fleet's metrics costs the tenants nothing.
func (r *Router) observe(reg *obs.Registry) {
	reg.SetHelp("rad_fleet_tenants", "Lab instances the router has instantiated.")
	reg.GaugeFunc("rad_fleet_tenants", func() float64 { return float64(r.tenants.Load()) })
	reg.SetHelp("rad_fleet_routed_total", "Requests routed to a tenant core.")
	reg.CounterFunc("rad_fleet_routed_total", r.routed.Load)
	reg.SetHelp("rad_fleet_rejected_total", "Requests refused before reaching a core (bad tenant id, tenant cap, factory failure).")
	reg.CounterFunc("rad_fleet_rejected_total", r.rejected.Load)
}

// observeTenant registers one tenant's child metrics at creation time:
// its routed-request counter and, when the lab spills to a dead-letter
// queue, the per-tenant spill/drain outcome counters (ISSUE 7 satellite —
// recoveries get tenant-labelled visibility, not just spills).
func (r *Router) observeTenant(t *Tenant, res *Resources) {
	reg := r.cfg.Registry
	reg.SetHelp("rad_fleet_tenant_requests_total", "Requests routed to this tenant.")
	reg.CounterFunc("rad_fleet_tenant_requests_total", t.requests.Load, "tenant", t.ID)
	if spans := r.cfg.Spans; spans != nil {
		// Gauges, not counters: the flight recorder is a bounded ring, so a
		// tenant's buffered-span population rises and falls with eviction.
		reg.SetHelp("rad_fleet_tenant_spans", "Tenant spans currently buffered in the flight recorder.")
		reg.GaugeFunc("rad_fleet_tenant_spans", func() float64 {
			return float64(spans.TenantStats(t.ID).Spans)
		}, "tenant", t.ID)
		reg.SetHelp("rad_fleet_tenant_span_errors", "Buffered tenant spans with a non-ok outcome.")
		reg.GaugeFunc("rad_fleet_tenant_span_errors", func() float64 {
			return float64(spans.TenantStats(t.ID).Errors)
		}, "tenant", t.ID)
	}
	if dlq := res.DLQ; dlq != nil {
		reg.CounterFunc("rad_store_spilled_batches_total", func() uint64 {
			return dlq.Stats().SpilledBatches
		}, "tenant", t.ID)
		reg.CounterFunc("rad_store_spilled_records_total", func() uint64 {
			return dlq.Stats().SpilledRecords
		}, "tenant", t.ID)
		dlq.Observe(reg, "tenant", t.ID)
	}
}
