package fleet

// Fleet-layer session-resilience tests: router drain and tenant-tagged
// resilient tails across a stream-listener restart. Test names
// deliberately match the CI resilience shakeout's -run filter
// (Resume|Reconnect|Drain|Heartbeat).

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// streamFactory builds tenants with a live broker over a persistent store,
// the shape radmiddlebox -fleet -stream -store runs.
func streamFactory(tb testing.TB, drained *atomic.Int32) Factory {
	tb.Helper()
	return func(id string) (*Resources, error) {
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		db, err := tracedb.Open(tb.TempDir(), tracedb.Options{})
		if err != nil {
			return nil, err
		}
		broker := stream.NewBroker()
		broker.AttachStore(db)
		res := &Resources{Core: tenantCore(clock, db, id), Broker: broker, DB: db}
		if drained != nil {
			res.Drain = func(ctx context.Context) error {
				drained.Add(1)
				broker.Close()
				return db.Flush()
			}
		}
		res.Close = func() error { broker.Close(); return db.Close() }
		return res, nil
	}
}

func tenantCore(clock *simclock.Virtual, sink store.Sink, id string) *middlebox.Core {
	core := middlebox.NewCore(clock, sink)
	core.Register(c9.New(device.NewEnv(clock, TenantSeed(7, id))))
	return core
}

// TestFleetRouterDrainQuiescesTenants: Drain visits every tenant — custom
// hooks run, brokers close (their subscribers' tails end), and stores
// flush — and a second Close stays a harmless teardown.
func TestFleetRouterDrainQuiescesTenants(t *testing.T) {
	var drained atomic.Int32
	r, err := NewRouter(Config{Factory: streamFactory(t, &drained)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	tenants := []string{"lab-a", "lab-b", "lab-c"}
	for i, id := range tenants {
		if reply := r.Handle(execReq(uint64(i), id)); reply.Error != "" {
			t.Fatalf("exec %s: %s", id, reply.Error)
		}
	}
	// A live subscriber on one tenant's broker: drain must end its feed.
	broker, _, err := r.ResolveStream("lab-a")
	if err != nil {
		t.Fatal(err)
	}
	sub := broker.Subscribe(stream.SubOptions{Name: "draintest", Buffer: 8})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := int(drained.Load()); got != len(tenants) {
		t.Fatalf("drain hooks ran for %d tenants, want %d", got, len(tenants))
	}
	if _, ok := sub.Recv(); ok {
		t.Fatal("subscriber still live after fleet drain")
	}
}

// TestFleetRouterDrainHonorsContext: a tenant hook that outlives the
// budget makes Drain return the context error instead of hanging.
func TestFleetRouterDrainHonorsContext(t *testing.T) {
	r, err := NewRouter(Config{Factory: func(id string) (*Resources, error) {
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		res := &Resources{Core: tenantCore(clock, store.NewMemStore(), id)}
		res.Drain = func(ctx context.Context) error {
			<-ctx.Done() // a lab that refuses to quiesce
			return ctx.Err()
		}
		return res, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if reply := r.Handle(execReq(1, "stuck")); reply.Error != "" {
		t.Fatal(reply.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := r.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want deadline exceeded", err)
	}
}

// TestFleetRouterDrainReleasesGoroutines: build/route/drain/close cycles
// across multi-tenant routers return to the baseline goroutine count.
func TestFleetRouterDrainReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		r, err := NewRouter(Config{Factory: streamFactory(t, nil)})
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range []string{"a", "b", "c", "d"} {
			if reply := r.Handle(execReq(uint64(i), id)); reply.Error != "" {
				t.Fatal(reply.Error)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := r.Drain(ctx); err != nil {
			t.Fatalf("round %d drain: %v", round, err)
		}
		cancel()
		if err := r.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestReconnectTenantTailAcrossListenerRestart: a tenant-tagged
// ResilientTail subscribed through the fleet resolver survives the stream
// listener dying and coming back — it renegotiates, resumes from its
// cursor, and sees each tenant record exactly once.
func TestReconnectTenantTailAcrossListenerRestart(t *testing.T) {
	r, err := NewRouter(Config{Factory: streamFactory(t, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Instantiate the tenant and find its store so the test can append.
	if reply := r.Handle(execReq(1, "lab-x")); reply.Error != "" {
		t.Fatal(reply.Error)
	}
	_, db, err := r.ResolveStream("lab-x")
	if err != nil {
		t.Fatal(err)
	}
	first := db.NextSeq() // device-init records are already in the store

	srv := stream.NewServer(nil, nil)
	srv.SetTenantResolver(r.ResolveStream)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rt := stream.NewResilientTail(stream.ResilientConfig{
		Addr:      addr,
		Subscribe: wire.Subscribe{Name: "tenant-tail", Tenant: "lab-x", ResumeFrom: first, Policy: wire.PolicyBlock},
		Seed:      7,
	})
	defer rt.Close()

	appendTenant := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	next := first
	recvTrace := func() {
		t.Helper()
		for {
			ev, err := rt.Recv()
			if err != nil {
				t.Fatalf("tenant tail recv (want seq %d): %v", next, err)
			}
			if ev.Kind != wire.EventTrace {
				continue
			}
			if ev.Record.Seq != next {
				t.Fatalf("seq %d delivered, want %d", ev.Record.Seq, next)
			}
			next++
			return
		}
	}

	appendTenant(4)
	for i := 0; i < 4; i++ {
		recvTrace()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	appendTenant(4)
	srv2 := stream.NewServer(nil, nil)
	srv2.SetTenantResolver(r.ResolveStream)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	for i := 0; i < 4; i++ {
		recvTrace()
	}
	if st := rt.Stats(); st.Reconnects == 0 || st.Delivered != 8 {
		t.Fatalf("stats %+v, want a reconnect and 8 delivered", st)
	}
}
