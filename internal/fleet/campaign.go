package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/device/ika"
	"rad/internal/device/quantos"
	"rad/internal/device/tecan"
	"rad/internal/device/ur3e"
	"rad/internal/fault"
	"rad/internal/middlebox"
	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/wire"
)

// Campaign drives hundreds of concurrent tenant workloads through one
// fleet Router, each lab on its own virtual clock with its own
// deterministic seed.
//
// Determinism is the point: every piece of state a tenant's trace depends
// on — clock, devices, fault wrappers, driver PRNG, store, dead-letter
// queue — is per-tenant, and each tenant's seed derives purely from the
// campaign seed and the tenant's ID (never from creation order), so one
// tenant's output is byte-identical no matter how many co-tenants run, in
// what order, or on how many OS threads. The only shared state is the
// router's striped table and the atomic rollups, which carry no
// randomness.
type Campaign struct {
	cfg    CampaignConfig
	Router *Router
	labs   *sync.Map // tenant ID -> *campaignLab, for the heal/drain phase

	stopOnce sync.Once
	stop     chan struct{}
}

// CampaignConfig parameterizes a fleet campaign.
type CampaignConfig struct {
	// Tenants is the number of concurrent labs (default 8).
	Tenants int
	// Requests is the per-tenant command count after device init
	// (default 50).
	Requests int
	// Seed is the campaign seed; each tenant's seed is derived from it and
	// the tenant's ID.
	Seed uint64
	// Faults, when true, runs each lab under the chaos fault profile with
	// a flaky store spilling to a per-tenant dead-letter queue; the drive
	// then heals every lab and drains its dead letters back, asserting
	// at-least-once recovery.
	Faults bool
	// DLQRoot is the directory tenant DLQs are namespaced under; required
	// when Faults is set.
	DLQRoot string
	// Registry, when set, receives fleet rollups and per-tenant child
	// metrics.
	Registry *obs.Registry
	// Spans, when set, attaches the span flight recorder to every tenant
	// core. Tracing must not perturb the dataset: span ids and ring state
	// live outside the record codec and digests, so a traced campaign's
	// per-tenant digests are byte-identical to an untraced one's.
	Spans *span.Recorder
}

// TenantResult is one lab's campaign outcome.
type TenantResult struct {
	ID       string
	Stopped  bool   // storm cut short by Campaign.Stop (heal/drain still ran)
	Requests int    // requests issued (device inits included)
	Records  int    // records in the lab's store after DLQ drain
	Lost     int    // Requests - Records (0 on success)
	Spilled  uint64 // records that detoured through the dead-letter queue
	Drained  uint64 // records drained back after healing
	Digest   string // sha256 over the lab's full record log
	Err      error  // factory/drain failure, nil on success
}

// CampaignResult aggregates every lab's outcome.
type CampaignResult struct {
	Tenants []TenantResult // sorted by ID (the order tenants were named)
	Records int
	Lost    int
	Fleet   Stats
}

// campaignLab is the per-tenant state the factory builds and the driver
// heals after the storm.
type campaignLab struct {
	clock *simclock.Virtual
	mem   *store.MemStore
	flaky *fault.FlakySink
	dlq   *store.DeadLetterQueue
	devs  []*fault.FaultyDevice
}

// campaignEpoch anchors every lab's virtual clock; the instant is
// arbitrary but must be constant for reproducibility.
var campaignEpoch = time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC)

// campaignDevices and campaignCommands mirror the chaos soak's command
// mix: a blend of read-only (retriable) and mutating commands from each
// device's real catalog.
var campaignDevices = []string{"C9", "IKA", "Quantos", "Tecan", "UR3e"}

var campaignCommands = map[string][][]string{
	"C9":      {{"MVNG"}, {"POSN", "0"}, {"CURR", "0"}, {"SPED", "20"}, {"GRIP", "1"}, {"HOME"}},
	"IKA":     {{"IN_NAME"}, {"IN_PV_4"}, {"IN_SP_4"}, {"OUT_SP_4", "300"}, {"START_4"}, {"STOP_4"}},
	"Tecan":   {{"Q"}, {"V", "1000"}, {"I", "1"}, {"O", "1"}, {"Z"}},
	"Quantos": {{"zero"}, {"target_mass", "12.5"}, {"home_z_stage"}, {"move_z_axis", "10"}},
	"UR3e":    {{"open_gripper"}, {"close_gripper"}, {"move_joints", "10", "20", "30", "40", "50", "60"}},
}

// TenantID names the i-th campaign lab.
func TenantID(i int) string { return fmt.Sprintf("lab-%04d", i) }

// TenantSeed derives a lab's seed from the campaign seed and its ID alone
// — a pure function of (seed, id), independent of creation order or
// co-tenant count, which is what makes per-tenant reruns byte-identical
// under any interleaving.
func TenantSeed(campaignSeed uint64, id string) uint64 {
	x := campaignSeed ^ fnv1a(id)
	// splitmix64 finalizer: adjacent campaign seeds must not produce
	// correlated tenant streams.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Stop asks every tenant driver to end its storm after the in-flight
// request: the graceful-drain half of a SIGTERM. Drivers still heal their
// labs, drain their dead-letter queues, and digest their records, so a
// stopped campaign reports a complete (just shorter) result. Idempotent
// and safe before/during/after Run.
func (c *Campaign) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
}
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 50
	}
	if cfg.Faults && cfg.DLQRoot == "" {
		return nil, fmt.Errorf("fleet: campaign with faults needs a DLQRoot for the per-tenant dead-letter queues")
	}
	c := &Campaign{cfg: cfg, stop: make(chan struct{})}
	labs := &sync.Map{} // tenant ID -> *campaignLab
	router, err := NewRouter(Config{
		Factory:    func(id string) (*Resources, error) { return c.buildLab(id, labs) },
		MaxTenants: cfg.Tenants + 1, // + the default tenant, should anyone dial untagged
		Registry:   cfg.Registry,
		Spans:      cfg.Spans,
	})
	if err != nil {
		return nil, err
	}
	c.Router = router
	c.labs = labs
	return c, nil
}

// buildLab is the campaign's tenant factory: one virtual clock, five
// fault-wrapped devices initialized while healthy, a store behind
// dead-letter failover when faults are on, and the hardened exec policy.
func (c *Campaign) buildLab(id string, labs *sync.Map) (*Resources, error) {
	seed := TenantSeed(c.cfg.Seed, id)
	lab := &campaignLab{
		clock: simclock.NewVirtual(campaignEpoch),
		mem:   store.NewMemStore(),
	}

	var sink store.Sink = lab.mem
	res := &Resources{}
	if c.cfg.Faults {
		dlq, err := store.OpenTenantDLQ(c.cfg.DLQRoot, id)
		if err != nil {
			return nil, err
		}
		lab.dlq = dlq
		res.DLQ = dlq
		lab.flaky = fault.WrapSink(lab.mem, fault.Profile{SinkErrProb: 0.10}, seed^0xa5a5)
		sink = store.NewFailoverSink(lab.flaky, dlq)
	}

	core := middlebox.NewCore(lab.clock, sink)
	core.SetSpans(c.cfg.Spans, id)
	for i, name := range campaignDevices {
		env := device.NewEnv(lab.clock, seed+uint64(i))
		var dev device.Device
		switch name {
		case "C9":
			dev = c9.New(env)
		case "IKA":
			dev = ika.New(env)
		case "Tecan":
			dev = tecan.New(env)
		case "Quantos":
			dev = quantos.New(env)
		case "UR3e":
			dev = ur3e.New(env, nil)
		}
		f := fault.WrapDevice(dev, lab.clock, fault.None(), seed+100+uint64(i))
		lab.devs = append(lab.devs, f)
		core.Register(f)
	}
	core.SetExecPolicy(middlebox.ExecPolicy{
		Timeout:   20 * time.Second,
		Retries:   2,
		RetrySeed: seed,
		Breaker:   fault.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Minute, Probes: 1},
	})
	res.Core = core
	labs.Store(id, lab)
	return res, nil
}

// Run drives every tenant's workload concurrently through the router and
// returns the per-tenant outcomes. Each tenant is driven by one goroutine
// issuing its requests sequentially — the lab's virtual clock makes the
// whole workload run in microseconds of wall time regardless of how much
// virtual time the storm consumes.
func (c *Campaign) Run() (*CampaignResult, error) {
	results := make([]TenantResult, c.cfg.Tenants)
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.runTenant(TenantID(i))
		}(i)
	}
	wg.Wait()

	out := &CampaignResult{Tenants: results, Fleet: c.Router.Snapshot()}
	var firstErr error
	for _, r := range results {
		out.Records += r.Records
		out.Lost += r.Lost
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: tenant %s: %w", r.ID, r.Err)
		}
	}
	return out, firstErr
}

// runTenant executes one lab's full workload: init the devices while the
// lab is healthy, unleash the fault profile, drive the seeded command
// stream, then heal the store and drain the dead letters back in.
func (c *Campaign) runTenant(id string) TenantResult {
	res := TenantResult{ID: id}
	seed := TenantSeed(c.cfg.Seed, id)

	// First tenant-tagged request instantiates the lab through the router,
	// exactly as a wire peer would.
	reqID := uint64(0)
	exec := func(dev, name string, args ...string) wire.Reply {
		reqID++
		return c.Router.Handle(wire.Request{
			ID: reqID, Op: wire.OpExec, Tenant: id,
			Device: dev, Name: name, Args: args,
			Run: "fleet-" + id,
		})
	}

	for _, name := range campaignDevices {
		if r := exec(name, device.Init); r.Error != "" {
			res.Err = fmt.Errorf("%s init: %s", name, r.Error)
			return res
		}
		res.Requests++
	}
	v, ok := c.labs.Load(id)
	if !ok {
		res.Err = fmt.Errorf("lab not built")
		return res
	}
	lab := v.(*campaignLab)

	if c.cfg.Faults {
		profile := fault.Chaos()
		profile.SinkErrProb = 0 // the sink has its own wrapper
		for _, f := range lab.devs {
			f.SetProfile(profile)
		}
	}

	driver := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	for i := 0; i < c.cfg.Requests; i++ {
		select {
		case <-c.stop:
			// Graceful drain: stop issuing new work, but fall through to the
			// heal/DLQ-drain/digest phase so every request already issued is
			// still accounted for — the zero-loss invariant holds over the
			// shortened storm.
			res.Stopped = true
		default:
		}
		if res.Stopped {
			break
		}
		name := campaignDevices[driver.IntN(len(campaignDevices))]
		cmds := campaignCommands[name]
		cmd := cmds[driver.IntN(len(cmds))]
		exec(name, cmd[0], cmd[1:]...)
		res.Requests++
	}

	// The storm passes: heal the store and fold the dead letters back in.
	if lab.flaky != nil {
		lab.flaky.SetProfile(fault.None())
	}
	if lab.dlq != nil {
		drained, err := lab.dlq.Drain(lab.mem.AppendBatch)
		if err != nil {
			res.Err = fmt.Errorf("drain: %w", err)
			return res
		}
		res.Drained = uint64(drained)
		res.Spilled = lab.dlq.Stats().SpilledRecords
	}

	res.Records = lab.mem.Len()
	res.Lost = res.Requests - res.Records
	res.Digest = recordsDigest(lab.mem.All())
	return res
}

// recordsDigest hashes a lab's complete record log — the byte-level
// identity the determinism guarantee is stated over.
func recordsDigest(recs []store.Record) string {
	h := sha256.New()
	for _, r := range recs {
		fmt.Fprintf(h, "%d|%d|%d|%s|%s|%v|%s|%s|%s|%s\n",
			r.Seq, r.Time.UnixNano(), r.EndTime.UnixNano(),
			r.Device, r.Name, r.Args, r.Response, r.Exception, r.Mode, r.Run)
	}
	return hex.EncodeToString(h.Sum(nil))
}
