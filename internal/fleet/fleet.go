// Package fleet multiplexes many independent lab middleboxes — each with
// its own devices, exec policies, circuit breakers, fault wrappers, and
// stream broker — behind one wire listener.
//
// The paper deploys one middlebox per robotic-arm lab (Fig. 1); the fleet
// router breaks that assumption so a single process can serve thousands of
// labs: requests carry an optional tenant ID (wire.Request.Tenant, zero-
// value compatible with every pre-fleet peer), and the Router resolves it
// through a striped-lock tenant table to a lazily-instantiated
// middlebox.Core. Per-tenant state is deliberately cheap — command
// catalogs are shared process-wide, wire buffers are pooled, dead letters
// land in per-tenant subdirectories of one DLQ root — and every
// aggregation path (Snapshot, the obs render callbacks) reads lock-free
// tenant state, so observing the fleet never stops, or even slows, a lab.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rad/internal/middlebox"
	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// DefaultTenant names the lab an untagged request reaches: a v1 or v2
// single-tenant peer that has never heard of tenancy keeps talking to "its"
// middlebox unchanged.
const DefaultTenant = "default"

// DefaultMaxTenants bounds how many labs one router will lazily
// instantiate. Tenant IDs arrive off the wire, so an unbounded table would
// let a hostile peer allocate a lab per garbage ID.
const DefaultMaxTenants = 4096

// stripeCount shards the tenant table. Power of two so the stripe pick is
// a mask, sized so that even a few hundred concurrently-active tenants
// rarely collide on a stripe lock.
const stripeCount = 64

// Resources is everything one tenant lab owns. Core is mandatory; the rest
// are optional capabilities the router exposes when present.
type Resources struct {
	// Core serves the tenant's exec/trace/ping traffic.
	Core *middlebox.Core
	// Broker, when set, is the tenant's live-stream fan-out
	// (stream.Server.SetTenantResolver routes tenant-tagged subscriptions
	// to it).
	Broker *stream.Broker
	// DB, when set, serves snapshot-then-follow tails for the tenant.
	DB *tracedb.DB
	// DLQ, when set, is the tenant's dead-letter queue; the router exports
	// its spill/drain counters under a tenant label.
	DLQ *store.DeadLetterQueue
	// Drain, when set, gracefully quiesces the lab (Router.Drain calls it
	// before the default broker/DB flush).
	Drain func(ctx context.Context) error
	// Close, when set, tears the lab down (Router.Close calls it).
	Close func() error
}

// Factory builds a tenant's resources on first use. It runs outside the
// tenant-table locks, so a slow factory (opening a tracedb, say) delays
// only requests for that tenant, never the rest of the fleet.
type Factory func(tenant string) (*Resources, error)

// Config parameterizes a Router.
type Config struct {
	// Factory instantiates tenants; required.
	Factory Factory
	// MaxTenants caps the number of instantiated tenants
	// (DefaultMaxTenants when 0); requests for new tenants past the cap
	// are rejected, existing tenants keep serving.
	MaxTenants int
	// Registry, when set, receives fleet rollups and per-tenant child
	// metrics as tenants come to life.
	Registry *obs.Registry
	// Spans, when set, is the process-wide span flight recorder. The router
	// itself records nothing — tenant Cores stamp spans with their tenant id
	// via the Factory — but a registered recorder gives each tenant a
	// buffered-span rollup gauge pair (spans, errors) next to its request
	// counter, so "which lab is tracing hot/failing" is one scrape away.
	Spans *span.Recorder
}

// Tenant is one instantiated lab: its resources plus routing accounting.
// The struct is created as a placeholder under the stripe lock and
// initialized exactly once outside it.
type Tenant struct {
	ID string

	once sync.Once
	// res is published atomically when the factory succeeds, so lock-free
	// walkers (Snapshot, the obs callbacks) can observe the tenant without
	// participating in the once. err is only read on the request path,
	// after once.Do's happens-before edge.
	res atomic.Pointer[Resources]
	err error

	requests atomic.Uint64 // requests routed to this tenant
}

// Resources returns the tenant's initialized resources (nil if the factory
// failed or has not finished).
func (t *Tenant) Resources() *Resources { return t.res.Load() }

// stripe is one shard of the tenant table.
type stripe struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// Router implements middlebox.Handler by resolving each request's tenant
// ID to its lab. Safe for concurrent use by any number of connections.
type Router struct {
	cfg     Config
	stripes [stripeCount]stripe

	// Fleet-wide rollups. Plain atomics — never a lock — so the hot path
	// and the obs render callbacks cannot serialize tenants.
	tenants  atomic.Int64  // instantiated tenants (factory succeeded)
	routed   atomic.Uint64 // requests successfully routed to a core
	rejected atomic.Uint64 // invalid tenant ID, cap hit, or factory failure
	draining atomic.Bool   // Drain or Close has begun
}

// NewRouter builds a fleet router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("fleet: Config.Factory is required")
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	r := &Router{cfg: cfg}
	for i := range r.stripes {
		r.stripes[i].tenants = make(map[string]*Tenant)
	}
	if cfg.Registry != nil {
		r.observe(cfg.Registry)
	}
	return r, nil
}

// fnv1a hashes a tenant ID for stripe selection (and, in campaign.go, for
// order-independent per-tenant seeds).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (r *Router) stripe(id string) *stripe {
	return &r.stripes[fnv1a(id)&(stripeCount-1)]
}

// tenant resolves (instantiating if needed) the lab for id. The fast path
// is one stripe read-lock and a map hit; the slow path inserts a
// placeholder under the stripe write-lock and runs the factory outside it.
func (r *Router) tenant(id string) (*Tenant, error) {
	s := r.stripe(id)
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		s.mu.Lock()
		if t = s.tenants[id]; t == nil {
			// The cap counts placeholders too (counted down again on
			// factory failure), so a hostile peer cannot race N goroutines
			// past it.
			if r.tenants.Add(1) > int64(r.cfg.MaxTenants) {
				r.tenants.Add(-1)
				s.mu.Unlock()
				return nil, fmt.Errorf("fleet: tenant limit reached (%d)", r.cfg.MaxTenants)
			}
			t = &Tenant{ID: id}
			s.tenants[id] = t
		}
		s.mu.Unlock()
	}
	t.once.Do(func() {
		res, err := r.cfg.Factory(id)
		if err == nil && (res == nil || res.Core == nil) {
			err = fmt.Errorf("fleet: factory returned no core for tenant %q", id)
		}
		if err != nil {
			t.err = err
			r.tenants.Add(-1)
			// Leave the failed placeholder in the table: it answers every
			// subsequent request for this tenant with the same error
			// instead of hammering a failing factory.
			return
		}
		if r.cfg.Registry != nil {
			r.observeTenant(t, res)
		}
		t.res.Store(res)
	})
	if t.err != nil {
		return nil, t.err
	}
	return t, nil
}

// Handle implements middlebox.Handler: resolve the request's tenant and
// delegate to its core. An empty tenant is the default lab, so a
// single-tenant client needs no change to talk to a fleet listener.
func (r *Router) Handle(req wire.Request) wire.Reply {
	id := req.Tenant
	if id == "" {
		id = DefaultTenant
	} else if !store.ValidTenantID(id) {
		r.rejected.Add(1)
		return wire.Reply{ID: req.ID, Error: fmt.Sprintf("fleet: invalid tenant id %q", req.Tenant)}
	}
	t, err := r.tenant(id)
	if err != nil {
		r.rejected.Add(1)
		return wire.Reply{ID: req.ID, Error: err.Error()}
	}
	t.requests.Add(1)
	r.routed.Add(1)
	return t.res.Load().Core.Handle(req)
}

// ResolveStream adapts the router to stream.TenantResolver so one tail
// listener serves every tenant's live feed.
func (r *Router) ResolveStream(tenant string) (*stream.Broker, *tracedb.DB, error) {
	if !store.ValidTenantID(tenant) {
		return nil, nil, fmt.Errorf("invalid tenant id")
	}
	t, err := r.tenant(tenant)
	if err != nil {
		return nil, nil, err
	}
	res := t.res.Load()
	if res.Broker == nil {
		return nil, nil, fmt.Errorf("no live stream")
	}
	return res.Broker, res.DB, nil
}

// Lookup returns the tenant if it is already instantiated, without
// creating it.
func (r *Router) Lookup(id string) (*Tenant, bool) {
	s := r.stripe(id)
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil || t.res.Load() == nil {
		return nil, false
	}
	return t, true
}

// walk visits every initialized tenant. Each stripe's lock is held only
// long enough to copy its slice of tenant pointers; the visit itself runs
// lock-free, so walking never blocks routing.
func (r *Router) walk(fn func(*Tenant, *Resources)) {
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.RLock()
		batch := make([]*Tenant, 0, len(s.tenants))
		for _, t := range s.tenants {
			batch = append(batch, t)
		}
		s.mu.RUnlock()
		for _, t := range batch {
			if res := t.res.Load(); res != nil {
				fn(t, res)
			}
		}
	}
}

// TenantStats is one lab's slice of a fleet snapshot.
type TenantStats struct {
	ID       string
	Requests uint64 // requests the router sent this tenant
	Stats    middlebox.Stats
}

// Stats is a point-in-time fleet snapshot.
type Stats struct {
	Tenants   int    // instantiated tenants
	Routed    uint64 // requests routed to any tenant
	Rejected  uint64 // requests refused before reaching a core
	PerTenant []TenantStats
}

// Snapshot aggregates every tenant's middlebox.Snapshot without stopping
// the world: the rollups are atomic loads, the tenant walk copies pointers
// under brief per-stripe read locks, and each Core.Snapshot is itself
// lock-free (the copy-on-write device registry), so hundreds of tenants
// keep executing at full speed while the fleet is observed.
func (r *Router) Snapshot() Stats {
	st := Stats{
		Tenants:  int(r.tenants.Load()),
		Routed:   r.routed.Load(),
		Rejected: r.rejected.Load(),
	}
	r.walk(func(t *Tenant, res *Resources) {
		st.PerTenant = append(st.PerTenant, TenantStats{
			ID:       t.ID,
			Requests: t.requests.Load(),
			Stats:    res.Core.Snapshot(),
		})
	})
	sort.Slice(st.PerTenant, func(i, j int) bool { return st.PerTenant[i].ID < st.PerTenant[j].ID })
	return st
}

// Drain gracefully quiesces every tenant: the tenant's own Drain hook when
// it has one, else the default — close the lab's broker (detaching its
// subscribers so their tails flush) and flush its trace store to disk.
// Tenants are drained in walk order until ctx expires; the remainder are
// skipped (Close still tears them down). Returns the first tenant error,
// or ctx.Err() when the deadline cut the drain short.
func (r *Router) Drain(ctx context.Context) error {
	r.draining.Store(true)
	var first error
	expired := false
	r.walk(func(t *Tenant, res *Resources) {
		if expired || ctx.Err() != nil {
			expired = true
			return
		}
		var err error
		switch {
		case res.Drain != nil:
			err = res.Drain(ctx)
		default:
			if res.Broker != nil {
				res.Broker.Close()
			}
			if res.DB != nil {
				err = res.DB.Flush()
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("fleet: drain tenant %s: %w", t.ID, err)
		}
	})
	if first != nil {
		return first
	}
	if expired {
		return ctx.Err()
	}
	return nil
}

// Draining reports whether Drain (or Close) has begun — the fleet
// contribution to a drain-aware /healthz.
func (r *Router) Draining() bool { return r.draining.Load() }

// Rollups summarizes the flight recorder's buffered spans by tenant, when
// the router was configured with one — the per-lab trace view next to
// Snapshot's per-lab exec view.
func (r *Router) Rollups() []span.TenantRollup {
	if r.cfg.Spans == nil {
		return nil
	}
	return r.cfg.Spans.Rollup()
}

// Close tears down every tenant that defined a Close, returning the first
// error. The router itself needs no teardown.
func (r *Router) Close() error {
	r.draining.Store(true)
	var first error
	r.walk(func(t *Tenant, res *Resources) {
		if res.Close != nil {
			if err := res.Close(); err != nil && first == nil {
				first = err
			}
		}
	})
	return first
}

var _ middlebox.Handler = (*Router)(nil)
var _ stream.TenantResolver = (*Router)(nil).ResolveStream
