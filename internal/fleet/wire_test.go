package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/wire"
)

// TestFleetMixedWireVersions runs a mixed client fleet — v1 JSON, v2
// binary, tenant-tagged and untagged — against ONE fleet listener
// concurrently. Tagged clients must land on their own labs, untagged
// clients on the default lab, and no record may cross a tenant boundary.
func TestFleetMixedWireVersions(t *testing.T) {
	mems := &sync.Map{} // tenant ID -> *store.MemStore
	r, err := NewRouter(Config{Factory: func(id string) (*Resources, error) {
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		mem := store.NewMemStore()
		mems.Store(id, mem)
		core := middlebox.NewCore(clock, mem)
		core.Register(c9.New(device.NewEnv(clock, TenantSeed(1, id))))
		return &Resources{Core: core}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := middlebox.NewHandlerServer(r, middlebox.NetworkProfile{}, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Six concurrent clients: (protocol × tenant tag) combinations, every
	// one uploading DIRECT-mode traces stamped with its own client label.
	clients := []struct {
		proto  wire.Proto
		tenant string
	}{
		{wire.ProtoV1, ""},         // legacy v1, knows nothing of tenancy
		{wire.ProtoV2, ""},         // upgraded peer, still single-tenant
		{wire.ProtoV1, "lab-0001"}, // v1 JSON with the tenant field
		{wire.ProtoV2, "lab-0001"}, // v2 binary with the tenant tag
		{wire.ProtoV2, "lab-0002"},
		{wire.ProtoAuto, "lab-0002"},
	}
	const uploads = 16

	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	for ci, cl := range clients {
		wg.Add(1)
		go func(ci int, proto wire.Proto, tenant string) {
			defer wg.Done()
			conn, wc, err := wire.Dial(addr, proto, nil)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", ci, err)
				return
			}
			defer conn.Close()
			for i := 0; i < uploads; i++ {
				req := wire.Request{
					ID: uint64(i), Op: wire.OpTrace, Tenant: tenant,
					Device: "C9", Name: "ARM",
					Args:       []string{fmt.Sprintf("client-%d", ci)},
					Value:      "ok",
					StartNanos: int64(1000 + i), EndNanos: int64(2000 + i),
					Run: fmt.Sprintf("client-%d", ci),
				}
				if err := wc.WriteFrame(req); err != nil {
					errs <- fmt.Errorf("client %d upload %d: %w", ci, i, err)
					return
				}
				var rep wire.Reply
				if err := wc.ReadFrame(&rep); err != nil {
					errs <- fmt.Errorf("client %d upload %d: read reply: %w", ci, i, err)
					return
				}
				if rep.Error != "" {
					errs <- fmt.Errorf("client %d upload %d: server error %q", ci, i, rep.Error)
					return
				}
			}
		}(ci, cl.proto, cl.tenant)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every lab holds exactly its own clients' records and nobody else's.
	wantByTenant := map[string]map[string]int{
		DefaultTenant: {"client-0": uploads, "client-1": uploads},
		"lab-0001":    {"client-2": uploads, "client-3": uploads},
		"lab-0002":    {"client-4": uploads, "client-5": uploads},
	}
	for tenant, want := range wantByTenant {
		v, ok := mems.Load(tenant)
		if !ok {
			t.Fatalf("tenant %s was never instantiated", tenant)
		}
		got := make(map[string]int)
		for _, rec := range v.(*store.MemStore).All() {
			got[rec.Run]++
		}
		if len(got) != len(want) {
			t.Fatalf("tenant %s holds runs %v, want %v", tenant, got, want)
		}
		for run, n := range want {
			if got[run] != n {
				t.Fatalf("tenant %s: run %s has %d records, want %d", tenant, run, got[run], n)
			}
		}
	}
	st := r.Snapshot()
	if st.Tenants != 3 {
		t.Fatalf("router instantiated %d tenants, want 3", st.Tenants)
	}
	if st.Routed != uint64(len(clients)*uploads) {
		t.Fatalf("routed = %d, want %d", st.Routed, len(clients)*uploads)
	}
}

// TestFleetStreamTenantRouting wires the router into a stream tail
// listener: a tenant-tagged Subscribe must receive exactly its own lab's
// live records, an untagged one the default lab's, and a tenant the
// resolver refuses gets a precise error event.
func TestFleetStreamTenantRouting(t *testing.T) {
	r, err := NewRouter(Config{Factory: func(id string) (*Resources, error) {
		clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
		mem := store.NewMemStore()
		broker := stream.NewBroker()
		core := middlebox.NewCore(clock, mem)
		core.AttachBroker(broker)
		core.Register(c9.New(device.NewEnv(clock, TenantSeed(1, id))))
		return &Resources{Core: core, Broker: broker, Close: func() error { broker.Close(); return nil }}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	tailSrv := stream.NewServer(nil, nil) // no default broker: tenant-only listener
	tailSrv.SetTenantResolver(r.ResolveStream)
	addr, err := tailSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tailSrv.Close()

	// Instantiate two labs, then subscribe to one of them.
	for _, id := range []string{"lab-0001", "lab-0002"} {
		if rep := r.Handle(wire.Request{ID: 1, Op: wire.OpExec, Tenant: id, Device: "C9", Name: device.Init}); rep.Error != "" {
			t.Fatalf("%s init: %s", id, rep.Error)
		}
	}
	cl, err := stream.DialProto(addr, wire.Subscribe{Tenant: "lab-0001", Buffer: 64}, wire.ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Give the subscription time to attach before publishing.
	time.Sleep(50 * time.Millisecond)

	// Traffic on both labs; only lab-0001's must reach the tailer.
	for i := 0; i < 5; i++ {
		for _, id := range []string{"lab-0001", "lab-0002"} {
			req := wire.Request{ID: uint64(10 + i), Op: wire.OpExec, Tenant: id, Device: "C9", Name: "MVNG", Run: "run-" + id}
			if rep := r.Handle(req); rep.Error != "" {
				t.Fatalf("%s exec: %s", id, rep.Error)
			}
		}
	}
	for i := 0; i < 5; i++ {
		ev, err := cl.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.Record == nil || ev.Record.Run != "run-lab-0001" {
			t.Fatalf("event %d leaked across tenants: %+v", i, ev)
		}
	}

	// A lab without a broker (or a refused tenant) is a precise error.
	bad, err := stream.DialProto(addr, wire.Subscribe{Tenant: "../escape"}, wire.ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Recv(); err == nil {
		t.Fatal("hostile tenant subscription was accepted")
	}
}
