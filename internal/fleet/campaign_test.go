package fleet

import (
	"runtime"
	"testing"
	"time"
)

// digests runs a campaign and returns each tenant's digest by ID, failing
// the test on any lost record or tenant error.
func digests(t *testing.T, cfg CampaignConfig) map[string]string {
	t.Helper()
	cfg.DLQRoot = t.TempDir()
	c, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(res.Tenants))
	for _, tr := range res.Tenants {
		if tr.Lost != 0 {
			t.Fatalf("tenant %s lost %d of %d records", tr.ID, tr.Lost, tr.Requests)
		}
		out[tr.ID] = tr.Digest
	}
	return out
}

// TestFleetTenantDeterminism is the heart of the isolation guarantee: the
// same tenant seed produces byte-identical records regardless of how many
// co-tenants run alongside it, at what concurrency, in which creation
// order. Run under -race by the fleet CI shakeout.
func TestFleetTenantDeterminism(t *testing.T) {
	const seed, requests = 42, 120

	// Baseline: 4 tenants.
	a := digests(t, CampaignConfig{Tenants: 4, Requests: requests, Seed: seed, Faults: true})

	// Same campaign again: identical digests (byte-reproducible per seed).
	b := digests(t, CampaignConfig{Tenants: 4, Requests: requests, Seed: seed, Faults: true})
	for id, d := range a {
		if b[id] != d {
			t.Fatalf("tenant %s: same config produced different digests\n  %s\n  %s", id, d, b[id])
		}
	}

	// 6x the co-tenants, saturating GOMAXPROCS with different
	// interleavings: the original 4 tenants' digests must not move.
	c := digests(t, CampaignConfig{Tenants: 24, Requests: requests, Seed: seed, Faults: true})
	for id, d := range a {
		if c[id] != d {
			t.Fatalf("tenant %s: digest changed when co-tenants were added\n  %s\n  %s", id, d, c[id])
		}
	}

	// Sanity: the extra tenants are real, distinct workloads.
	seen := make(map[string]bool)
	for _, d := range c {
		if seen[d] {
			t.Fatal("two tenants produced identical digests — seeds are not independent")
		}
		seen[d] = true
	}

	// A different campaign seed is a different fleet.
	d := digests(t, CampaignConfig{Tenants: 4, Requests: requests, Seed: seed + 1, Faults: true})
	for id := range a {
		if d[id] == a[id] {
			t.Fatalf("tenant %s: different campaign seed produced an identical digest", id)
		}
	}

	// Fewer-core interleaving: determinism must not depend on parallelism.
	prev := runtime.GOMAXPROCS(2)
	e := digests(t, CampaignConfig{Tenants: 4, Requests: requests, Seed: seed, Faults: true})
	runtime.GOMAXPROCS(prev)
	for id, dg := range a {
		if e[id] != dg {
			t.Fatalf("tenant %s: digest changed with GOMAXPROCS=2", id)
		}
	}
}

// TestFleetCampaignHundredsOfTenants is the ISSUE 7 acceptance campaign: a
// 200+-tenant concurrent fleet on simclock completes with zero lost
// records under the chaos fault profile (per-tenant DLQ detours included),
// and every tenant's output is byte-reproducible per seed.
func TestFleetCampaignHundredsOfTenants(t *testing.T) {
	const tenants, requests, seed = 220, 40, 1022

	start := time.Now()
	a := digests(t, CampaignConfig{Tenants: tenants, Requests: requests, Seed: seed, Faults: true})
	elapsed := time.Since(start)
	if len(a) != tenants {
		t.Fatalf("campaign ran %d tenants, want %d", len(a), tenants)
	}
	t.Logf("%d tenants × %d requests in %v", tenants, requests, elapsed)

	// Byte-reproducible per tenant seed: rerun the whole fleet and compare
	// every digest.
	b := digests(t, CampaignConfig{Tenants: tenants, Requests: requests, Seed: seed, Faults: true})
	for id, d := range a {
		if b[id] != d {
			t.Fatalf("tenant %s: rerun produced a different digest", id)
		}
	}
}

// TestFleetCampaignFaultAccounting checks the failure-path bookkeeping at
// fleet scale: the storm actually spilled somewhere, every spill was
// drained back, and the router's aggregate view is consistent with the
// per-tenant outcomes.
func TestFleetCampaignFaultAccounting(t *testing.T) {
	cfg := CampaignConfig{Tenants: 32, Requests: 100, Seed: 7, Faults: true, DLQRoot: t.TempDir()}
	c, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	var spilled, drained uint64
	for _, tr := range res.Tenants {
		if tr.Lost != 0 {
			t.Fatalf("tenant %s lost %d records", tr.ID, tr.Lost)
		}
		if tr.Spilled != tr.Drained {
			t.Fatalf("tenant %s: spilled %d, drained %d", tr.ID, tr.Spilled, tr.Drained)
		}
		spilled += tr.Spilled
		drained += tr.Drained
	}
	if spilled == 0 {
		t.Fatal("no tenant ever spilled — the flaky sink never fired")
	}
	if res.Lost != 0 {
		t.Fatalf("fleet lost %d records", res.Lost)
	}
	if res.Fleet.Tenants != cfg.Tenants {
		t.Fatalf("router saw %d tenants, want %d", res.Fleet.Tenants, cfg.Tenants)
	}
	want := uint64(cfg.Tenants * (cfg.Requests + len(campaignDevices)))
	if res.Fleet.Routed != want {
		t.Fatalf("routed %d requests, want %d", res.Fleet.Routed, want)
	}
	t.Logf("32 tenants: %d records, %d spilled through per-tenant DLQs, %d drained back", res.Records, spilled, drained)
}
