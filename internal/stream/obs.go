package stream

import (
	"strconv"

	"rad/internal/obs"
)

// brokerObs holds the broker's registry handle for the dynamic
// per-subscriber metric lifecycle.
type brokerObs struct {
	reg *obs.Registry
}

// Observe registers the broker's metrics into reg: lifetime publish and
// delivery totals (which survive subscriber churn) plus per-subscriber
// delivery counters and ring-occupancy gauges that are registered at
// Subscribe time and unregistered when the subscriber detaches —
// the standard per-connection child-metric pattern. Everything is
// pull-based except the two lifetime atomics the Recv/drop paths already
// pay for.
func (b *Broker) Observe(reg *obs.Registry) {
	reg.SetHelp("rad_stream_published_total", "Trace events offered to the fan-out.")
	reg.CounterFunc("rad_stream_published_total", b.published.Load)
	reg.SetHelp("rad_stream_delivered_total", "Events handed to consumers, all subscribers ever.")
	reg.CounterFunc("rad_stream_delivered_total", b.delivered.Load)
	reg.SetHelp("rad_stream_dropped_total", "Events shed under DropOldest, all subscribers ever.")
	reg.CounterFunc("rad_stream_dropped_total", b.dropped.Load)
	reg.SetHelp("rad_stream_subscribers", "Live subscribers attached to the broker.")
	reg.GaugeFunc("rad_stream_subscribers", func() float64 {
		b.mu.RLock()
		defer b.mu.RUnlock()
		return float64(len(b.subs))
	})

	b.mu.Lock()
	defer b.mu.Unlock()
	b.obs = &brokerObs{reg: reg}
	for _, s := range b.subs {
		b.observeSubLocked(s)
	}
}

// Observe registers the resilient tail's delivery accounting into reg as
// pull-based child metrics, optionally tagged with caller-supplied labels
// (e.g. "tenant", "lab-a") so a process running several tails keeps them
// apart. Every read snapshots Stats under the tail's own mutex — no new
// state, no write-path cost.
func (rt *ResilientTail) Observe(reg *obs.Registry, labels ...string) {
	reg.SetHelp("rad_stream_tail_reconnects_total", "Successful tail re-subscriptions after the first connect.")
	reg.CounterFunc("rad_stream_tail_reconnects_total", func() uint64 {
		return rt.Stats().Reconnects
	}, labels...)
	reg.SetHelp("rad_stream_tail_duplicates_total", "Re-delivered records suppressed by the tail's seq cursor.")
	reg.CounterFunc("rad_stream_tail_duplicates_total", func() uint64 {
		return rt.Stats().Duplicates
	}, labels...)
	reg.SetHelp("rad_stream_tail_gap_records_total", "Records lost to retention across all resume gaps.")
	reg.CounterFunc("rad_stream_tail_gap_records_total", func() uint64 {
		return rt.Stats().GapRecords
	}, labels...)
	reg.SetHelp("rad_stream_tail_delivered_total", "Trace records the tail handed to its consumer.")
	reg.CounterFunc("rad_stream_tail_delivered_total", func() uint64 {
		return rt.Stats().Delivered
	}, labels...)
	reg.SetHelp("rad_stream_tail_last_seq", "Highest trace seq delivered by the tail.")
	reg.GaugeFunc("rad_stream_tail_last_seq", func() float64 {
		return float64(rt.Stats().LastSeq)
	}, labels...)
}

// observeSubLocked registers one subscriber's child metrics. Caller holds
// b.mu; the subscriber is not yet receiving concurrent offers through this
// broker registration, so writing s.obsLabels is safe.
func (b *Broker) observeSubLocked(s *Subscriber) {
	reg := b.obs.reg
	id := strconv.FormatUint(b.nextSubID.Add(1), 10)
	s.obsLabels = []string{"name", s.name, "id", id}
	reg.SetHelp("rad_stream_subscriber_buffered", "Events waiting in the subscriber's ring.")
	reg.GaugeFunc("rad_stream_subscriber_buffered", func() float64 {
		return float64(s.Stats().Buffered)
	}, s.obsLabels...)
	reg.CounterFunc("rad_stream_subscriber_delivered_total", func() uint64 {
		return s.Stats().Delivered
	}, s.obsLabels...)
	reg.CounterFunc("rad_stream_subscriber_dropped_total", func() uint64 {
		return s.Stats().Dropped
	}, s.obsLabels...)
}

// unobserveSub drops a detached subscriber's child metrics.
func (o *brokerObs) unobserveSub(s *Subscriber) {
	if s.obsLabels == nil {
		return
	}
	o.reg.Unregister("rad_stream_subscriber_buffered", s.obsLabels...)
	o.reg.Unregister("rad_stream_subscriber_delivered_total", s.obsLabels...)
	o.reg.Unregister("rad_stream_subscriber_dropped_total", s.obsLabels...)
	s.obsLabels = nil
}
