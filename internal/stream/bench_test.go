package stream_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/ids"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// BenchmarkBrokerFanout measures the publish hot path against 1, 8, and 64
// actively-draining subscribers (EXPERIMENTS.md records the numbers).
func BenchmarkBrokerFanout(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			broker := stream.NewBroker()
			defer broker.Close()
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub := broker.Subscribe(stream.SubOptions{Buffer: 1024})
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, ok := sub.Recv(); !ok {
							return
						}
					}
				}()
			}
			r := store.Record{Device: "C9", Name: "MVNG"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Seq = uint64(i)
				broker.Publish(r)
			}
			b.StopTimer()
			broker.Close()
			wg.Wait()
		})
	}
}

// BenchmarkPublishBaseline is the no-subscriber floor every fan-out number
// compares against.
func BenchmarkPublishBaseline(b *testing.B) {
	broker := stream.NewBroker()
	defer broker.Close()
	r := store.Record{Device: "C9", Name: "MVNG"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		broker.Publish(r)
	}
}

// BenchmarkPublishStalledSubscriber measures the acceptance bound: with one
// completely stalled drop-oldest subscriber, the publish path must stay
// within ~10% of the no-subscriber baseline (a slow tailer costs shedding,
// not throughput).
func BenchmarkPublishStalledSubscriber(b *testing.B) {
	broker := stream.NewBroker()
	defer broker.Close()
	broker.Subscribe(stream.SubOptions{Name: "stalled", Buffer: 1024}) // never Recvs
	r := store.Record{Device: "C9", Name: "MVNG"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		broker.Publish(r)
	}
}

// BenchmarkTraceHotPath measures the acceptance bound where it matters: the
// middlebox's trace hot path — an exec request handled end to end (device
// execution + tracedb commit) — with no broker, with an idle broker, and
// with one completely stalled drop-oldest subscriber. The
// stalled-subscriber figure must stay within ~10% of the no-subscriber one:
// a dead tailer costs the lab shedding, not command throughput.
func BenchmarkTraceHotPath(b *testing.B) {
	variants := []struct {
		name    string
		stalled bool
		broker  bool
	}{
		{name: "no-broker"},
		{name: "idle-broker", broker: true},
		{name: "stalled-subscriber", broker: true, stalled: true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			db, err := tracedb.Open(b.TempDir(), tracedb.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			clock := simclock.NewVirtual(time.Unix(0, 0))
			core := middlebox.NewCore(clock, db)
			core.Register(c9.New(device.NewEnv(clock, 1)))
			if v.broker {
				broker := stream.NewBroker()
				defer broker.Close()
				core.AttachBroker(broker)
				if v.stalled {
					broker.Subscribe(stream.SubOptions{Name: "stalled", Buffer: 1024})
				}
			}
			init := wire.Request{Op: wire.OpExec, Device: "C9", Name: "__init__"}
			if rep := core.Handle(init); rep.Error != "" {
				b.Fatal(rep.Error)
			}
			req := wire.Request{Op: wire.OpExec, Device: "C9", Name: "MVNG"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := core.Handle(req); rep.Error != "" {
					b.Fatal(rep.Error)
				}
			}
		})
	}
}

// BenchmarkStreamIDSObserve measures per-record online detection latency —
// the streaming-IDS figure EXPERIMENTS.md records.
func BenchmarkStreamIDSObserve(b *testing.B) {
	train := make([][]string, 4)
	names := []string{"HOME", "MVNG", "GRIP", "RLSE", "ARM"}
	for i := range train {
		seq := make([]string, 400)
		for j := range seq {
			seq[j] = names[(i+j)%len(names)]
		}
		train[i] = seq
	}
	det, err := ids.TrainPerplexity(train, 2)
	if err != nil {
		b.Fatal(err)
	}
	online, err := stream.NewIDS(stream.IDSConfig{Detector: det, Window: 32})
	if err != nil {
		b.Fatal(err)
	}
	r := store.Record{Device: "C9"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		r.Name = names[i%len(names)]
		online.Observe(r)
	}
}
