package stream_test

import (
	"io"
	"testing"
	"time"

	"rad/internal/attack"
	"rad/internal/ids"
	"rad/internal/procedure"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/tracer"
	"rad/internal/wire"
)

// benignP2Sequences runs the P2 workload in fresh virtual labs and returns
// the per-run command sequences — the online detector's training corpus.
func benignP2Sequences(t *testing.T, seeds ...uint64) [][]string {
	t.Helper()
	var seqs [][]string
	for _, seed := range seeds {
		vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		run := "train"
		procedure.RunSolubilityN9UR(vl.Lab, procedure.Options{Run: run, Seed: seed + 1})
		recs := vl.Sink.ByRun(run)
		seq := make([]string, len(recs))
		for i, r := range recs {
			seq[i] = r.Name
		}
		seqs = append(seqs, seq)
		vl.Close()
	}
	return seqs
}

func trainOnline(t *testing.T) *ids.PerplexityDetector {
	t.Helper()
	det, err := ids.TrainPerplexity(benignP2Sequences(t, 100, 101, 102, 103), 2)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestStreamIDSCleanRunRaisesNoAlerts drives a benign P2 run through a live
// middlebox with the online detector consuming the broker feed: the
// perplexity scorer must stay silent end to end.
func TestStreamIDSCleanRunRaisesNoAlerts(t *testing.T) {
	det := trainOnline(t)

	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{Seed: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer vl.Close()

	broker := stream.NewBroker()
	vl.Core.AttachBroker(broker)
	run := "clean-eval"
	sub := broker.Subscribe(stream.SubOptions{
		Filter: tracedb.Query{Run: run}, Buffer: 1 << 14, Policy: stream.Block,
	})

	res := procedure.RunSolubilityN9UR(vl.Lab, procedure.Options{Run: run, Seed: 201})
	if res.Err != nil {
		t.Fatalf("benign run failed: %v", res.Err)
	}
	broker.Close() // no more publishes; the detector drains the ring

	det2, err := stream.NewIDS(stream.IDSConfig{Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	n := det2.Run(sub)
	if n == 0 {
		t.Fatal("online detector saw no records")
	}
	if alerts := det2.Alerts(); len(alerts) != 0 {
		t.Errorf("clean run raised %d alerts; first: %+v", len(alerts), alerts[0])
	}
	if det2.Processed() != n {
		t.Errorf("Processed = %d, Run returned %d", det2.Processed(), n)
	}
}

// TestStreamIDSDetectsInjectionOverStream is the online end-to-end
// acceptance: an Injection MITM attacks a live P2 run, the middlebox
// publishes every committed record, and the detector — consuming the feed
// over the TCP stream path, exactly as radwatch -ids does — must raise at
// least one perplexity alert with the scored window attached.
func TestStreamIDSDetectsInjectionOverStream(t *testing.T) {
	det := trainOnline(t)

	var interceptor *attack.Interceptor
	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Seed: 300,
		WrapTransport: func(next tracer.Transport) tracer.Transport {
			interceptor = attack.New(next, attack.Config{
				Kind: attack.Injection, StartAfter: 20, Intensity: 0.5, Seed: 7,
			})
			return interceptor
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vl.Close()

	broker := stream.NewBroker()
	defer broker.Close()
	vl.Core.AttachBroker(broker)
	srv := stream.NewServer(broker, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	run := "attacked-eval"
	client, err := stream.Dial(addr, wire.Subscribe{
		Name: "online-ids", Run: run, Policy: wire.PolicyBlock, Buffer: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	online, err := stream.NewIDS(stream.IDSConfig{Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	// The detector consumes the TCP feed concurrently with the run, as a
	// real watcher would.
	readerDone := make(chan error, 1)
	go func() {
		for {
			ev, err := client.Recv()
			if err != nil {
				readerDone <- err
				return
			}
			if ev.Kind != wire.EventTrace {
				continue
			}
			online.Observe(*ev.Record)
		}
	}()

	procedure.RunSolubilityN9UR(vl.Lab, procedure.Options{Run: run, Seed: 301})
	if len(interceptor.Events()) == 0 {
		t.Fatal("the interceptor never attacked; the scenario proves nothing")
	}

	// Wait until every committed run record has crossed the wire, then shut
	// the stream down.
	expected := uint64(len(vl.Sink.ByRun(run)))
	waitFor(t, func() bool { return online.Processed() >= expected })
	srv.Close()
	if err := <-readerDone; err != io.EOF && err != nil {
		// The server closing the connection mid-read surfaces as a read
		// error on some platforms; either way the reader has everything.
		t.Logf("reader ended with: %v", err)
	}

	alerts := online.Alerts()
	if len(alerts) == 0 {
		t.Fatalf("injection attack raised no alerts over %d records (threshold %.3f)",
			online.Processed(), online.Threshold())
	}
	for _, a := range alerts {
		if a.Source != "perplexity" {
			continue
		}
		if a.Score <= a.Threshold {
			t.Errorf("alert score %.3f not above threshold %.3f", a.Score, a.Threshold)
		}
		if len(a.Window) == 0 {
			t.Error("perplexity alert carries no scored window")
		}
	}
	t.Logf("injection: %d alerts over %d records (threshold %.3f)",
		len(alerts), online.Processed(), online.Threshold())
}

// waitFor polls cond until it holds or a deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestStreamIDSRuleAlerts exercises the rule-engine side of the online
// detector on a synthetic feed: commands on an uninitialized device and
// commands outside the catalog must raise structured rule alerts.
func TestStreamIDSRuleAlerts(t *testing.T) {
	det, err := ids.TrainPerplexity([][]string{{"HOME", "MVNG", "GRIP", "MVNG", "HOME"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	online, err := stream.NewIDS(stream.IDSConfig{Detector: det, Rules: ids.NewRuleEngine(0)})
	if err != nil {
		t.Fatal(err)
	}

	alerts := online.Observe(store.Record{Seq: 1, Device: "C9", Name: "MVNG"})
	found := false
	for _, a := range alerts {
		if a.Source == "rule:uninitialized-device" {
			found = true
			if a.Seq != 1 || a.Device != "C9" {
				t.Errorf("rule alert misattributed: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("no uninitialized-device rule alert in %+v", alerts)
	}

	alerts = online.Observe(store.Record{Seq: 2, Device: "C9", Name: "NOT_A_COMMAND"})
	found = false
	for _, a := range alerts {
		if a.Source == "rule:unknown-command" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unknown-command rule alert in %+v", alerts)
	}
}

// TestStreamIDSOnAlertCallback checks the synchronous alert hook fires once
// per alert, after the alert is recorded.
func TestStreamIDSOnAlertCallback(t *testing.T) {
	det, err := ids.TrainPerplexity([][]string{{"A", "B", "A", "B", "A", "B"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var hooked []stream.Alert
	online, err := stream.NewIDS(stream.IDSConfig{
		Detector: det, Window: 4,
		OnAlert: func(a stream.Alert) { hooked = append(hooked, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A run of never-seen commands drives the window perplexity far above
	// the calibrated threshold.
	for i, name := range []string{"A", "B", "Z", "Q", "Z", "Q", "Z", "Q"} {
		online.Observe(store.Record{Seq: uint64(i), Device: "C9", Name: name})
	}
	alerts := online.Alerts()
	if len(alerts) == 0 {
		t.Fatal("anomalous feed raised no alerts")
	}
	if len(hooked) != len(alerts) {
		t.Errorf("hook fired %d times for %d alerts", len(hooked), len(alerts))
	}
}
