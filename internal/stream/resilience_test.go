package stream_test

// Session-resilience tests: exactly-once resume, heartbeat supervision,
// auto-reconnecting tails, and graceful drain. Test names deliberately
// match the CI resilience shakeout's -run filter
// (Resume|Reconnect|Drain|Heartbeat).

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"rad/internal/obs"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// openDB returns a small-segment store so a handful of appends spans
// several sealed segments (rich ground for retention tests).
func openDB(t *testing.T, opts tracedb.Options) *tracedb.DB {
	t.Helper()
	db, err := tracedb.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func appendN(t *testing.T, db *tracedb.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerResumeFromSeq: a subscriber resuming from seq k replays
// exactly [k, head) from the store, then follows live — no gaps, no
// duplicates, for both protocol versions.
func TestServerResumeFromSeq(t *testing.T) {
	for name, proto := range map[string]wire.Proto{"v1": wire.ProtoV1, "v2": wire.ProtoV2} {
		t.Run(name, func(t *testing.T) {
			db := openDB(t, tracedb.Options{})
			broker := stream.NewBroker()
			defer broker.Close()
			broker.AttachStore(db)
			_, addr := startServer(t, broker, db)
			appendN(t, db, 10)

			client, err := stream.DialProto(addr, wire.Subscribe{
				ResumeFrom: 6, Policy: wire.PolicyBlock,
			}, proto)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			for want := uint64(6); want < 10; want++ {
				ev, err := client.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if ev.Kind != wire.EventTrace || ev.Record.Seq != want {
					t.Fatalf("resume replay: kind=%s seq=%d, want trace seq %d", ev.Kind, ev.Record.Seq, want)
				}
			}
			ev, err := client.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Kind != wire.EventSnapshotEnd {
				t.Fatalf("after resume replay got %s, want %s", ev.Kind, wire.EventSnapshotEnd)
			}
			// The live feed continues from the head, still gap-free.
			appendN(t, db, 2)
			for want := uint64(10); want < 12; want++ {
				ev, err := client.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if ev.Kind != wire.EventTrace || ev.Record.Seq != want {
					t.Fatalf("live after resume: kind=%s seq=%d, want trace seq %d", ev.Kind, ev.Record.Seq, want)
				}
			}
		})
	}
}

// TestServerResumeBeyondHeadRefused: a resume point past the store head is
// a protocol error (the client's cursor is from a different store), not a
// silent empty replay.
func TestServerResumeBeyondHeadRefused(t *testing.T) {
	db := openDB(t, tracedb.Options{})
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	_, addr := startServer(t, broker, db)
	appendN(t, db, 3)

	client, err := stream.Dial(addr, wire.Subscribe{ResumeFrom: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Recv()
	var se *stream.SubscribeError
	if !errors.As(err, &se) {
		t.Fatalf("resume beyond head: err = %v, want *SubscribeError", err)
	}
	if !strings.Contains(se.Error(), "beyond the store head") {
		t.Fatalf("refusal does not name the cause: %v", se)
	}
}

// TestServerResumeBeforeFloorDegrades: a resume point that retention has
// already retired degrades gracefully — an explicit resume-gap notice with
// the exact loss count, then a full snapshot of what survives — rather
// than erroring or silently skipping.
func TestServerResumeBeforeFloorDegrades(t *testing.T) {
	db := openDB(t, tracedb.Options{
		SegmentBytes: 2 << 10,
		Lifecycle:    tracedb.LifecycleOptions{RetainMaxBytes: 4 << 10},
	})
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	_, addr := startServer(t, broker, db)

	// Small flushed batches so the tiny segments actually rotate and seal;
	// only sealed segments are retention candidates.
	for i := 0; i < 20; i++ {
		batch := make([]store.Record, 10)
		for j := range batch {
			batch[j] = store.Record{Device: "C9", Name: "MVNG", Args: []string{strings.Repeat("x", 64)}}
		}
		if err := db.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Retain(); err != nil {
		t.Fatal(err)
	}
	floor := db.SeqFloor()
	if floor == 0 {
		t.Fatal("retention never raised the seq floor — segment sizing is off")
	}

	resumeFrom := uint64(1)
	client, err := stream.Dial(addr, wire.Subscribe{ResumeFrom: resumeFrom, Policy: wire.PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ev, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != wire.EventResumeGap {
		t.Fatalf("first event %s, want %s", ev.Kind, wire.EventResumeGap)
	}
	if ev.Gap != floor-resumeFrom {
		t.Fatalf("gap notice %d, want floor %d - resume %d = %d", ev.Gap, floor, resumeFrom, floor-resumeFrom)
	}
	// The full snapshot that follows starts exactly at the floor.
	ev, err = client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != wire.EventTrace || ev.Record.Seq != floor {
		t.Fatalf("post-gap snapshot starts at %s seq %d, want trace seq %d", ev.Kind, ev.Record.Seq, floor)
	}
}

// TestHeartbeatReapsSilentSubscriber: a raw v2 subscriber that never
// answers pings is declared half-open and reaped — its ring, metrics
// child, and goroutines go with it.
func TestHeartbeatReapsSilentSubscriber(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	srv := stream.NewServer(broker, nil)
	srv.SetHeartbeat(stream.HeartbeatConfig{Interval: 20 * time.Millisecond})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw wire conn, not a stream.Client: it subscribes and then goes
	// silent — no pongs, no reads. Only the heartbeat can detect this.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wc, err := wire.ClientV2(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(wire.Subscribe{Op: wire.OpSubscribe, Name: "mute"}); err != nil {
		t.Fatal(err)
	}
	waitForSubscriber(t, broker, 1)
	waitForNoSubscribers(t, broker)
}

// TestHeartbeatPongingClientStaysAlive: a stream.Client auto-answers pings
// inside Recv, so an event-less but healthy connection survives many
// heartbeat intervals.
func TestHeartbeatPongingClientStaysAlive(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	srv := stream.NewServer(broker, nil)
	srv.SetHeartbeat(stream.HeartbeatConfig{Interval: 10 * time.Millisecond})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := stream.DialProto(addr, wire.Subscribe{Name: "alive", Policy: wire.PolicyBlock}, wire.ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	// Recv in the background: it answers pings while waiting for events.
	got := make(chan wire.Event, 1)
	go func() {
		ev, err := client.Recv()
		if err == nil {
			got <- ev
		}
		close(got)
	}()
	// Ten heartbeat intervals of silence, then one event: the subscription
	// must still be there to deliver it.
	time.Sleep(100 * time.Millisecond)
	if n := len(broker.Stats()); n != 1 {
		t.Fatalf("ponging subscriber reaped: %d live subscribers", n)
	}
	broker.Publish(rec(1, "C9", "MVNG"))
	select {
	case ev, ok := <-got:
		if !ok || ev.Record == nil || ev.Record.Seq != 1 {
			t.Fatalf("event lost after heartbeat silence: %+v ok=%t", ev, ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event never delivered")
	}
}

// TestHeartbeatV1ClientUnaffected: heartbeats are v2-only; a v1 subscriber
// on the same heartbeat-enabled listener keeps its legacy supervision and
// keeps receiving events.
func TestHeartbeatV1ClientUnaffected(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	srv := stream.NewServer(broker, nil)
	srv.SetHeartbeat(stream.HeartbeatConfig{Interval: 10 * time.Millisecond})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := stream.DialProto(addr, wire.Subscribe{Name: "legacy", Policy: wire.PolicyBlock}, wire.ProtoV1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	time.Sleep(50 * time.Millisecond) // several intervals: must not be pinged or reaped
	broker.Publish(rec(7, "C9", "MVNG"))
	ev, err := client.Recv()
	if err != nil {
		t.Fatalf("v1 recv on heartbeat-enabled server: %v", err)
	}
	if ev.Record == nil || ev.Record.Seq != 7 {
		t.Fatalf("v1 event: %+v", ev)
	}
}

// TestReconnectResilientTailResumesAcrossRestart: the server dies and
// comes back on the same address; a ResilientTail redials, resumes from
// its cursor, and its caller sees one continuous exactly-once stream.
func TestReconnectResilientTailResumesAcrossRestart(t *testing.T) {
	db := openDB(t, tracedb.Options{})
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	srv := stream.NewServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rt := stream.NewResilientTail(stream.ResilientConfig{
		Addr:      addr,
		Subscribe: wire.Subscribe{Name: "survivor", Snapshot: true, Policy: wire.PolicyBlock},
		Seed:      42,
	})
	defer rt.Close()

	appendN(t, db, 5)
	next := uint64(0)
	recvTrace := func() {
		t.Helper()
		for {
			ev, err := rt.Recv()
			if err != nil {
				t.Fatalf("resilient recv (want seq %d): %v", next, err)
			}
			if ev.Kind != wire.EventTrace {
				continue
			}
			if ev.Record.Seq != next {
				t.Fatalf("seq %d delivered, want %d", ev.Record.Seq, next)
			}
			next++
			return
		}
	}
	for i := 0; i < 5; i++ {
		recvTrace()
	}

	// Kill the server, append while it is down, restart on the same port.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	appendN(t, db, 5)
	srv2 := stream.NewServer(broker, db)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	for i := 0; i < 5; i++ {
		recvTrace()
	}
	st := rt.Stats()
	if st.Reconnects == 0 {
		t.Fatal("tail never reconnected — the restart was not exercised")
	}
	if st.Delivered != 10 || st.LastSeq != 9 {
		t.Fatalf("stats %+v, want 10 delivered through seq 9", st)
	}
}

// TestReconnectGivesUpAfterMaxAttempts: with no server at all, a bounded
// tail surfaces the dial error instead of retrying forever.
func TestReconnectGivesUpAfterMaxAttempts(t *testing.T) {
	rt := stream.NewResilientTail(stream.ResilientConfig{
		Addr:        "127.0.0.1:1", // reserved port: connection refused
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Seed:        1,
	})
	defer rt.Close()
	_, err := rt.Recv()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("bounded tail returned %v, want the dial error", err)
	}
}

// TestReconnectChurnUnregistersSubscriberMetrics: churn N subscribers
// through abrupt disconnects; every per-subscriber obs child must be
// unregistered at the reap point — a dead connection may not leak gauges.
func TestReconnectChurnUnregistersSubscriberMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.Observe(reg)
	srv := stream.NewServer(broker, nil)
	srv.SetHeartbeat(stream.HeartbeatConfig{Interval: 20 * time.Millisecond})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for round := 0; round < 3; round++ {
		var clients []*stream.Client
		for i := 0; i < 4; i++ {
			c, err := stream.Dial(addr, wire.Subscribe{Name: "churn"})
			if err != nil {
				t.Fatal(err)
			}
			clients = append(clients, c)
		}
		waitForSubscriber(t, broker, 4)
		broker.Publish(rec(uint64(round), "C9", "MVNG"))
		// Abrupt close — no unsubscribe handshake, the server must notice.
		for _, c := range clients {
			_ = c.Close()
		}
		waitForNoSubscribers(t, broker)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "rad_stream_subscriber_") {
		t.Fatalf("per-subscriber metrics survived churn:\n%s", sb.String())
	}
}

// TestServerDrainFlushesSubscriberRings: events buffered in a subscriber's
// ring at drain time still reach the client before its connection closes —
// drain loses nothing that was already accepted.
func TestServerDrainFlushesSubscriberRings(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	srv := stream.NewServer(broker, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := stream.Dial(addr, wire.Subscribe{Name: "drainee", Policy: wire.PolicyBlock, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	const n = 32
	for i := 0; i < n; i++ {
		broker.Publish(rec(uint64(i), "C9", "MVNG"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	for want := uint64(0); want < n; want++ {
		ev, err := client.Recv()
		if err != nil {
			t.Fatalf("drain lost events: recv %d: %v", want, err)
		}
		if ev.Record == nil || ev.Record.Seq != want {
			t.Fatalf("drain delivered %+v, want seq %d", ev, want)
		}
	}
	// After the flush the stream ends cleanly.
	if _, err := client.Recv(); err == nil {
		t.Fatal("stream still open after drain flushed everything")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServerDrainNoGoroutineLeak: repeated serve/subscribe/drain cycles
// (heartbeats on) return the process to its baseline goroutine count —
// supervision, pumps, and connection readers all exit.
func TestServerDrainNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		broker := stream.NewBroker()
		srv := stream.NewServer(broker, nil)
		srv.SetHeartbeat(stream.HeartbeatConfig{Interval: 10 * time.Millisecond})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var clients []*stream.Client
		for i := 0; i < 4; i++ {
			c, err := stream.Dial(addr, wire.Subscribe{Name: "leakcheck"})
			if err != nil {
				t.Fatal(err)
			}
			clients = append(clients, c)
		}
		waitForSubscriber(t, broker, 4)
		broker.Publish(rec(uint64(round), "C9", "MVNG"))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Drain(ctx); err != nil {
			t.Fatalf("round %d drain: %v", round, err)
		}
		cancel()
		for _, c := range clients {
			_ = c.Close()
		}
		broker.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
