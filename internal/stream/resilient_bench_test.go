package stream_test

import (
	"testing"
	"time"

	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// Session-resilience cost benchmarks (EXPERIMENTS.md records the numbers):
// what the resilient tail's cursor accounting costs on the steady-state
// delivery path, what a live heartbeat adds, and how long one full
// kill-to-resume reconnect cycle takes end to end.

// recvSource is the common Recv surface of Client and ResilientTail.
type recvSource interface {
	Recv() (wire.Event, error)
	Close() error
}

// benchTailDelivery streams b.N stored records through a snapshot
// subscription and measures per-record delivery cost over real TCP.
func benchTailDelivery(b *testing.B, heartbeat time.Duration, open func(addr string) (recvSource, error)) {
	db, err := tracedb.Open(b.TempDir(), tracedb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	srv := stream.NewServer(broker, db)
	if heartbeat > 0 {
		srv.SetHeartbeat(stream.HeartbeatConfig{Interval: heartbeat})
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < b.N; i++ {
		if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	src, err := open(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	for got := 0; got < b.N; {
		ev, err := src.Recv()
		if err != nil {
			b.Fatal(err)
		}
		if ev.Kind == wire.EventTrace {
			got++
		}
	}
}

// BenchmarkResilientTailDelivery compares the plain client against the
// resilient tail (seq-cursor dedup accounting on every record) and against
// a resilient tail whose server heartbeats every 5ms — the worst-case
// supervision chatter, far hotter than any production interval.
func BenchmarkResilientTailDelivery(b *testing.B) {
	req := wire.Subscribe{Name: "bench", Snapshot: true, Policy: wire.PolicyBlock, Buffer: 1024}
	b.Run("plain", func(b *testing.B) {
		benchTailDelivery(b, 0, func(addr string) (recvSource, error) {
			return stream.DialProto(addr, req, wire.ProtoAuto)
		})
	})
	b.Run("resilient", func(b *testing.B) {
		benchTailDelivery(b, 0, func(addr string) (recvSource, error) {
			return stream.NewResilientTail(stream.ResilientConfig{Addr: addr, Subscribe: req, Seed: 1}), nil
		})
	})
	b.Run("resilient-heartbeat-5ms", func(b *testing.B) {
		benchTailDelivery(b, 5*time.Millisecond, func(addr string) (recvSource, error) {
			return stream.NewResilientTail(stream.ResilientConfig{Addr: addr, Subscribe: req, Seed: 1}), nil
		})
	})
}

// BenchmarkReconnectResumeCycle measures one full outage round trip: the
// listener is hard-killed and restarted, one record lands while the tail
// is redialing, and the iteration ends when the resumed tail delivers it.
// The cost is dominated by the jittered backoff (1-8ms here) plus the
// renegotiated handshake and the [cursor, head) replay query.
func BenchmarkReconnectResumeCycle(b *testing.B) {
	db, err := tracedb.Open(b.TempDir(), tracedb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	srv := stream.NewServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}

	rt := stream.NewResilientTail(stream.ResilientConfig{
		Addr:        addr,
		Subscribe:   wire.Subscribe{Name: "bench", Snapshot: true, Policy: wire.PolicyBlock},
		Seed:        1,
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})
	defer rt.Close()

	next := uint64(0)
	step := func() {
		if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
			b.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			b.Fatal(err)
		}
		for {
			ev, err := rt.Recv()
			if err != nil {
				b.Fatal(err)
			}
			if ev.Kind != wire.EventTrace {
				continue
			}
			if ev.Record.Seq != next {
				b.Fatalf("seq %d delivered, want %d", ev.Record.Seq, next)
			}
			next++
			return
		}
	}
	step() // prime the first connection before the clock starts

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		srv = stream.NewServer(broker, db)
		if _, err := srv.Start(addr); err != nil {
			b.Fatalf("restart on %s: %v", addr, err)
		}
		step()
	}
	b.StopTimer()
	_ = srv.Close()
	if st := rt.Stats(); st.Reconnects < uint64(b.N) {
		b.Fatalf("only %d reconnects across %d cycles", st.Reconnects, b.N)
	}
}
