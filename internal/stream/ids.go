package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rad/internal/analysis/jenks"
	"rad/internal/ids"
	"rad/internal/store"
)

// Alert is one structured online-IDS finding: which record (by sequence
// number) tripped which detector, the scored window, the thresholds in
// force, and the commands that produced the score.
type Alert struct {
	// Seq and Time identify the triggering record.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Source is "perplexity" or "rule:<name>".
	Source string `json:"source"`
	Device string `json:"device"`
	Key    string `json:"key"` // command type "Device.Name"
	// Score and Threshold are the window perplexity and the calibrated
	// alert threshold (perplexity alerts; zero for rule alerts).
	Score     float64 `json:"score,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// JenksBreak is the Jenks natural-breaks split over the recent
	// window-score history at alert time — the §V-B batch threshold
	// recomputed online for context. Zero when the history is not yet
	// separable into two classes.
	JenksBreak float64 `json:"jenksBreak,omitempty"`
	// Window holds the scored command window (perplexity alerts).
	Window []string `json:"window,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

// IDSConfig configures an online detector.
type IDSConfig struct {
	// Detector is the trained perplexity model (required).
	Detector *ids.PerplexityDetector
	// Window is the sliding-window size in commands (see
	// PerplexityDetector.NewStream for the default/minimum behaviour).
	Window int
	// Rules optionally runs the middlebox rule engine over the same feed.
	// The engine is stateful (initialization ordering, rate windows), so it
	// must be fresh and must see the stream from its start.
	Rules *ids.RuleEngine
	// History bounds the rolling window-score population the online Jenks
	// break is computed over; <= 0 selects 256.
	History int
	// OnAlert, when set, is called synchronously for every alert (after it
	// is recorded).
	OnAlert func(Alert)
}

// IDS is the online intrusion detector: a sliding-window streaming
// perplexity scorer plus (optionally) the rule engine, consuming a live
// record feed and accumulating structured alerts in its own store.
//
// Observe is the synchronous core — one record in, zero or more alerts out —
// so the same detector runs over a broker subscription (Run), a network tail
// (radwatch -ids), or a replayed slice of records. Observe is not safe for
// concurrent callers; Alerts and Processed are.
type IDS struct {
	win     *ids.Stream
	rules   *ids.RuleEngine
	onAlert func(Alert)

	history []float64 // rolling window scores, ring-ordered
	histAt  int
	histCap int

	mu        sync.Mutex
	alerts    []Alert
	processed uint64
}

// ErrNoDetector is returned when IDSConfig.Detector is nil.
var ErrNoDetector = errors.New("stream: IDSConfig.Detector is required")

// NewIDS builds an online detector. The stream threshold is calibrated on
// same-sized windows over the detector's training data (the shared
// WindowScores path), exactly as the offline ablations score them.
func NewIDS(cfg IDSConfig) (*IDS, error) {
	if cfg.Detector == nil {
		return nil, ErrNoDetector
	}
	if cfg.History <= 0 {
		cfg.History = 256
	}
	return &IDS{
		win:     cfg.Detector.NewStream(cfg.Window),
		rules:   cfg.Rules,
		onAlert: cfg.OnAlert,
		history: make([]float64, 0, cfg.History),
		histCap: cfg.History,
	}, nil
}

// Threshold returns the calibrated streaming alert threshold.
func (d *IDS) Threshold() float64 { return d.win.Threshold() }

// Observe feeds one record through the rule engine and the sliding-window
// scorer, returning any alerts it raised (already recorded in the store).
func (d *IDS) Observe(rec store.Record) []Alert {
	var out []Alert
	if d.rules != nil {
		for _, v := range d.rules.Check(rec) {
			out = append(out, Alert{
				Seq: rec.Seq, Time: rec.EndTime,
				Source: "rule:" + v.Rule,
				Device: rec.Device, Key: rec.Key(),
				Detail: v.Detail,
			})
		}
	}

	score, alert := d.win.Observe(rec.Name)
	if score == score { // record finite window scores in the rolling history
		d.pushScore(score)
	}
	if alert {
		out = append(out, Alert{
			Seq: rec.Seq, Time: rec.EndTime,
			Source: "perplexity",
			Device: rec.Device, Key: rec.Key(),
			Score: score, Threshold: d.win.Threshold(),
			JenksBreak: d.jenksBreak(),
			Window:     d.win.Window(),
			Detail: fmt.Sprintf("window perplexity %.3f exceeds threshold %.3f",
				score, d.win.Threshold()),
		})
	}

	d.mu.Lock()
	d.processed++
	d.alerts = append(d.alerts, out...)
	d.mu.Unlock()
	if d.onAlert != nil {
		for _, a := range out {
			d.onAlert(a)
		}
	}
	return out
}

// Run consumes a broker subscription until it closes, observing every trace
// event. Power events are ignored. It returns the number of records
// processed.
func (d *IDS) Run(sub *Subscriber) uint64 {
	var n uint64
	for {
		ev, ok := sub.Recv()
		if !ok {
			return n
		}
		if ev.Kind != KindTrace {
			continue
		}
		d.Observe(ev.Record)
		n++
	}
}

// Reset clears the sliding window (e.g. at a procedure boundary); alerts
// and counters are kept.
func (d *IDS) Reset() { d.win.Reset() }

// Alerts returns a copy of every alert raised so far, in stream order.
func (d *IDS) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Alert, len(d.alerts))
	copy(out, d.alerts)
	return out
}

// Processed returns the number of records observed.
func (d *IDS) Processed() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.processed
}

// pushScore appends a window score to the bounded rolling history.
func (d *IDS) pushScore(s float64) {
	if len(d.history) < d.histCap {
		d.history = append(d.history, s)
		return
	}
	d.history[d.histAt] = s
	d.histAt = (d.histAt + 1) % d.histCap
}

// jenksBreak computes the two-class natural-breaks split over the rolling
// score history; zero when the history holds no separable structure.
func (d *IDS) jenksBreak() float64 {
	if len(d.history) < 2 {
		return 0
	}
	scores := make([]float64, len(d.history))
	copy(scores, d.history)
	if _, breakVal, ok := jenks.Split2(scores); ok {
		return breakVal
	}
	return 0
}
