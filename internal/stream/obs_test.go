package stream

import (
	"strings"
	"testing"

	"rad/internal/obs"
	"rad/internal/store"
)

// TestObsStreamBrokerMetrics: lifetime publish/deliver/drop totals survive
// subscriber churn, and per-subscriber child metrics appear at Subscribe
// and vanish at Close.
func TestObsStreamBrokerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBroker()
	b.Observe(reg)

	sub := b.Subscribe(SubOptions{Name: "tail-1", Buffer: 4, Policy: DropOldest})
	for i := 0; i < 10; i++ {
		b.Publish(store.Record{Seq: uint64(i), Device: "C9", Name: "MVNG"})
	}
	// Ring of 4 absorbed 10 events: 6 dropped, 4 drainable.
	for {
		if _, ok := sub.TryRecv(); !ok {
			break
		}
	}

	counters := make(map[string]uint64)
	for _, c := range reg.Snapshot().Counters {
		if c.Labels["id"] == "" {
			counters[c.Name] = c.Value
		}
	}
	if counters["rad_stream_published_total"] != 10 {
		t.Errorf("published = %d, want 10", counters["rad_stream_published_total"])
	}
	if counters["rad_stream_delivered_total"] != 4 {
		t.Errorf("delivered = %d, want 4", counters["rad_stream_delivered_total"])
	}
	if counters["rad_stream_dropped_total"] != 6 {
		t.Errorf("dropped = %d, want 6", counters["rad_stream_dropped_total"])
	}

	// Per-subscriber child metrics are present while attached...
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `rad_stream_subscriber_delivered_total{id="1",name="tail-1"}`) {
		t.Fatalf("per-subscriber counter missing:\n%s", sb.String())
	}

	// ...and unregistered at Close, while lifetime totals persist.
	sub.Close()
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "rad_stream_subscriber_delivered_total{") {
		t.Fatal("per-subscriber metrics survived Close")
	}
	if !strings.Contains(sb.String(), "rad_stream_delivered_total 4") {
		t.Fatalf("lifetime delivered total lost after Close:\n%s", sb.String())
	}
}

// TestObsStreamSubscribeBeforeObserve: subscribers attached before Observe
// get their child metrics when Observe runs.
func TestObsStreamSubscribeBeforeObserve(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Name: "early", Buffer: 2})
	defer sub.Close()
	b.Observe(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `name="early"`) {
		t.Fatalf("pre-Observe subscriber has no child metrics:\n%s", sb.String())
	}
}
