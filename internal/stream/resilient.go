package stream

// ResilientTail is the self-healing consumer of the session-resilience
// layer: a tail client that survives the server vanishing. It tracks the
// highest trace sequence number it has delivered, and when the connection
// dies it redials with jittered exponential backoff, renegotiates the
// protocol version, and resumes from lastSeq+1 (Subscribe.ResumeFrom) —
// so its caller observes one continuous, gap-free, duplicate-free record
// stream across any number of server restarts. The paper's three-month
// collection campaign is the motivating consumer: the pipeline must
// self-heal rather than page a human.
//
// Degradations are surfaced, never silent: a resume that predates the
// store's retention floor yields the server's EventResumeGap notice (and
// the gap total in Stats), and a resume the server cannot honor at all
// (e.g. a crash lost the unsynced tail of the store) falls back to a full
// re-subscribe with the already-delivered prefix deduplicated locally.

import (
	"errors"
	"io"
	"math/rand/v2"
	"sync"
	"time"

	"rad/internal/fault"
	"rad/internal/wire"
)

// ResilientConfig parameterizes a ResilientTail.
type ResilientConfig struct {
	// Addr is the stream listener to dial (and redial).
	Addr string
	// Subscribe is the base subscription: filters, snapshot, policy,
	// tenant. Op is set by the dialer; ResumeFrom is managed by the tail
	// itself on reconnects.
	Subscribe wire.Subscribe
	// Proto selects the wire protocol; the default (wire.ProtoAuto)
	// renegotiates on every redial, so the tail keeps working even if the
	// restarted server speaks a different version set.
	Proto wire.Proto
	// BackoffBase/BackoffMax shape the jittered exponential redial backoff
	// (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts bounds consecutive failed reconnect attempts before Recv
	// gives up and returns the dial error; 0 retries forever.
	MaxAttempts int
	// Seed seeds the backoff-jitter PRNG, making the redial schedule
	// reproducible (the internal/fault PCG convention).
	Seed uint64
	// IdleTimeout, when set, bounds how long a Recv waits for any frame
	// (events or heartbeat pings) before declaring the connection half-open
	// and redialing. Pair it with the server's heartbeat interval: any
	// value comfortably above it turns a silent half-open connection into a
	// reconnect instead of a hang.
	IdleTimeout time.Duration
}

// ResilientStats is a ResilientTail's delivery accounting.
type ResilientStats struct {
	Reconnects uint64 // successful re-subscriptions after the first
	Duplicates uint64 // re-delivered records suppressed by the seq cursor
	GapRecords uint64 // records lost to retention (sum of resume-gap notices)
	Delivered  uint64 // trace records handed to the caller
	LastSeq    uint64 // highest delivered trace seq (valid once Delivered > 0)
}

// ResilientTail is an auto-reconnecting tail subscription. Recv is safe
// for one consumer goroutine; Close and Stats may be called concurrently.
type ResilientTail struct {
	cfg ResilientConfig
	rng *rand.Rand

	mu     sync.Mutex
	client *Client
	closed bool
	done   chan struct{}

	everConnected bool
	got           bool   // at least one trace record delivered
	lastSeq       uint64 // highest delivered trace seq
	fullResync    bool   // next connect re-subscribes from scratch
	stats         ResilientStats
}

// NewResilientTail builds the tail; the first connection is dialed lazily
// by the first Recv.
func NewResilientTail(cfg ResilientConfig) *ResilientTail {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &ResilientTail{
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		done: make(chan struct{}),
	}
}

var errTailClosed = errors.New("stream: resilient tail closed")

// connect dials and subscribes, resuming from the seq cursor when one
// exists (unless a failed resume demanded a full resync).
func (rt *ResilientTail) connect() (*Client, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, errTailClosed
	}
	req := rt.cfg.Subscribe
	if rt.got && !rt.fullResync {
		req.ResumeFrom = rt.lastSeq + 1
		req.Snapshot = false // resume implies snapshot-then-follow server-side
	}
	rt.mu.Unlock()

	c, err := DialProto(rt.cfg.Addr, req, rt.cfg.Proto)
	if err != nil {
		return nil, err
	}
	if rt.cfg.IdleTimeout > 0 {
		c.SetIdleTimeout(rt.cfg.IdleTimeout)
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		_ = c.Close()
		return nil, errTailClosed
	}
	if rt.everConnected {
		rt.stats.Reconnects++
	}
	rt.everConnected = true
	rt.fullResync = false
	rt.client = c
	rt.mu.Unlock()
	return c, nil
}

// current returns the live client, connecting if there is none.
func (rt *ResilientTail) current() (*Client, error) {
	rt.mu.Lock()
	c := rt.client
	closed := rt.closed
	rt.mu.Unlock()
	if closed {
		return nil, errTailClosed
	}
	if c != nil {
		return c, nil
	}
	return rt.connect()
}

// drop discards a dead client so the next Recv redials.
func (rt *ResilientTail) drop(c *Client) {
	_ = c.Close()
	rt.mu.Lock()
	if rt.client == c {
		rt.client = nil
	}
	rt.mu.Unlock()
}

// sleep waits out one backoff delay; false means the tail was closed.
func (rt *ResilientTail) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-rt.done:
		return false
	}
}

// Recv returns the next event, reconnecting and resuming across
// connection failures. Trace records arrive exactly once, in sequence
// order per subscription; EventResumeGap and EventSnapshotEnd frames pass
// through so the caller sees degradations and replay boundaries. It
// returns io.EOF after Close, a *SubscribeError when the server refuses a
// fresh subscription outright, and the last transport error once
// MaxAttempts consecutive reconnects have failed.
func (rt *ResilientTail) Recv() (wire.Event, error) {
	attempt := 0
	for {
		c, err := rt.current()
		if err == nil {
			var ev wire.Event
			ev, err = c.Recv()
			if err == nil {
				attempt = 0
				if !rt.note(&ev) {
					continue // duplicate suppressed by the seq cursor
				}
				return ev, nil
			}
			rt.drop(c)
		}
		if errors.Is(err, errTailClosed) {
			return wire.Event{}, io.EOF
		}
		var se *SubscribeError
		if errors.As(err, &se) {
			rt.mu.Lock()
			resuming := rt.got && !rt.fullResync
			if resuming {
				// The server refused the resume point (a crash may have lost
				// the store's unsynced tail). Degrade to a full re-subscribe;
				// the seq cursor deduplicates the re-delivered prefix.
				rt.fullResync = true
				rt.mu.Unlock()
				continue
			}
			rt.mu.Unlock()
			return wire.Event{}, err // a fresh subscription was refused: permanent
		}
		attempt++
		if rt.cfg.MaxAttempts > 0 && attempt >= rt.cfg.MaxAttempts {
			return wire.Event{}, err
		}
		if !rt.sleep(fault.Backoff(attempt-1, rt.cfg.BackoffBase, rt.cfg.BackoffMax, rt.rng)) {
			return wire.Event{}, io.EOF
		}
	}
}

// note updates the seq cursor and stats for one received event; it
// reports whether the event should reach the caller (duplicates do not).
func (rt *ResilientTail) note(ev *wire.Event) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	switch ev.Kind {
	case wire.EventTrace:
		seq := ev.Record.Seq
		if rt.got && seq <= rt.lastSeq {
			rt.stats.Duplicates++
			return false
		}
		rt.got = true
		rt.lastSeq = seq
		rt.stats.Delivered++
		rt.stats.LastSeq = seq
		return true
	case wire.EventResumeGap:
		rt.stats.GapRecords += ev.Gap
		return true
	default:
		return true
	}
}

// Stats snapshots the tail's delivery accounting.
func (rt *ResilientTail) Stats() ResilientStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// Close stops the tail: any blocked Recv (including one sleeping out a
// backoff) returns io.EOF. Idempotent.
func (rt *ResilientTail) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	c := rt.client
	rt.client = nil
	close(rt.done)
	rt.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
	return nil
}
