package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rad/internal/obs"
	"rad/internal/obs/span"
	"rad/internal/store"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// Server exposes a broker's live feed over TCP: one Subscribe frame in, a
// stream of Event frames out (the wire-protocol tail of wire/stream.go).
// Each connection gets its own broker subscription, so the overflow policy
// and drop accounting are per-tailer; a stalled client under drop-oldest
// costs the middlebox nothing but that client's own ring.
//
// Like the middlebox listener, the tail listener negotiates each
// connection's protocol version on accept: v1 JSON tailers and v2 binary
// tailers share the listener, distinguished by the connection preamble.
type Server struct {
	broker   *Broker
	db       *tracedb.DB // snapshot source; nil disables snapshot-then-follow
	proto    wire.Proto
	wireM    *wire.Metrics
	spans    *span.Recorder
	resolver TenantResolver // nil: single-tenant listener
	hb       HeartbeatConfig

	mu sync.Mutex
	ln net.Listener
	// conns tracks every accepted connection from the moment it lands —
	// value nil until its subscription attaches — so Close can sever a
	// client that dies (or stalls) mid-negotiation instead of waiting on
	// it forever.
	conns  map[net.Conn]*Subscriber
	closed bool
	wg     sync.WaitGroup
}

// maxSubscriberBuffer caps a client-requested ring so one tail cannot pin
// unbounded memory on the middlebox.
const maxSubscriberBuffer = 1 << 16

// NewServer wraps broker; db (which may be nil) serves Subscribe.Snapshot
// replays.
func NewServer(broker *Broker, db *tracedb.DB) *Server {
	return &Server{broker: broker, db: db, conns: make(map[net.Conn]*Subscriber)}
}

// SetProtocol restricts which wire protocol versions the tail listener
// accepts; the default (wire.ProtoAuto) negotiates per connection. Call
// before Start.
func (s *Server) SetProtocol(p wire.Proto) { s.proto = p }

// Observe registers per-protocol wire metrics in reg (shared with any
// other listener observing the same registry). Call before Start.
func (s *Server) Observe(reg *obs.Registry) { s.wireM = wire.NewMetrics(reg) }

// SetSpans attaches a span flight recorder: every traced record delivered
// to a tailer gets a "stream.deliver" child span under the record's exec
// span, closing the trace tree's last hop. Call before Start.
func (s *Server) SetSpans(r *span.Recorder) { s.spans = r }

// Draining reports whether Drain (or Close) has begun — the stream
// listener's contribution to a drain-aware /healthz.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// TenantResolver maps a tenant-tagged Subscribe frame to that tenant's
// broker and snapshot store (db may be nil: snapshot-then-follow disabled
// for that tenant). Returning an error rejects the subscription with a
// precise EventError instead of silently serving the wrong lab's feed.
type TenantResolver func(tenant string) (*Broker, *tracedb.DB, error)

// SetTenantResolver makes the tail listener fleet-aware: subscriptions
// carrying a tenant ID are routed through r to their own lab's broker,
// while untagged subscriptions keep flowing to the server's default
// broker — a pre-fleet tailer needs no change. Call before Start.
func (s *Server) SetTenantResolver(r TenantResolver) { s.resolver = r }

// HeartbeatConfig parameterizes connection liveness supervision.
type HeartbeatConfig struct {
	// Interval between server → client pings. Zero disables heartbeats
	// (the pre-liveness behaviour).
	Interval time.Duration
	// Timeout is the extra grace beyond Interval the server allows for the
	// pong before declaring the connection half-open and reaping it;
	// non-positive defaults to Interval.
	Timeout time.Duration
}

// grace returns the effective pong deadline slack.
func (hb HeartbeatConfig) grace() time.Duration {
	if hb.Timeout > 0 {
		return hb.Timeout
	}
	return hb.Interval
}

// SetHeartbeat enables liveness probing of tail connections: every
// Interval the server pings, and a connection that fails to pong within
// Interval+Timeout is reaped — its subscriber detached, its metrics
// unregistered, its goroutines collected — instead of holding a slot until
// the next write discovers the corpse. Only v2 peers are probed; the v1
// protocol has no control frames, so v1 connections keep the
// read-anything-means-dead watcher (and die on the next write, as they
// always have). Call before Start.
func (s *Server) SetHeartbeat(hb HeartbeatConfig) { s.hb = hb }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background,
// returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("stream: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = nil // tracked before negotiation; see Server.conns
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	wc, err := wire.Accept(conn, s.proto, s.wireM)
	if err != nil {
		return // connection died mid-negotiation: nothing to tell anyone
	}
	var req wire.Subscribe
	if err := wc.ReadFrame(&req); err != nil {
		if wc.Version() == wire.V2 && !errors.Is(err, io.EOF) {
			// The peer completed the v2 handshake, so it can decode an
			// error frame: report the malformed subscribe precisely
			// instead of closing silently.
			_ = wc.WriteFrame(wire.Event{Kind: wire.EventError,
				Error: fmt.Sprintf("stream: bad subscribe frame: %v", err)})
		}
		return
	}
	if err := req.Validate(); err != nil {
		_ = wc.WriteFrame(wire.Event{Kind: wire.EventError, Error: err.Error()})
		return
	}
	broker, db := s.broker, s.db
	if req.Tenant != "" {
		if s.resolver == nil {
			_ = wc.WriteFrame(wire.Event{Kind: wire.EventError,
				Error: fmt.Sprintf("stream: tenant %q requested but this listener is single-tenant", req.Tenant)})
			return
		}
		var err error
		broker, db, err = s.resolver(req.Tenant)
		if err != nil {
			_ = wc.WriteFrame(wire.Event{Kind: wire.EventError,
				Error: fmt.Sprintf("stream: tenant %q: %v", req.Tenant, err)})
			return
		}
	}
	if (req.Snapshot || req.ResumeFrom > 0) && db == nil {
		_ = wc.WriteFrame(wire.Event{Kind: wire.EventError,
			Error: "stream: snapshot requested but the middlebox has no persistent store"})
		return
	}
	opts := subOptions(req, conn)
	tc := &tailConn{wc: wc, tenant: req.Tenant}

	if req.ResumeFrom > 0 {
		// Exactly-once resume: replay [ResumeFrom, now) from the store via
		// snapshot-then-follow, pushing the seq predicate down into both the
		// snapshot scan and the live-feed filter. The store head and the
		// retention floor bound what is replayable.
		if head := db.NextSeq(); req.ResumeFrom > head {
			_ = tc.write(wire.Event{Kind: wire.EventError,
				Error: fmt.Sprintf("stream: resume from seq %d is beyond the store head %d", req.ResumeFrom, head)})
			return
		}
		if floor := db.SeqFloor(); req.ResumeFrom < floor {
			// The resume point predates retention: say exactly how many
			// records are unrecoverable, then degrade to a full snapshot of
			// what the store still holds.
			if tc.write(wire.Event{Kind: wire.EventResumeGap, Gap: floor - req.ResumeFrom}) != nil {
				return
			}
		} else {
			opts.Filter.MinSeq = req.ResumeFrom
		}
		s.serveTail(conn, wc, tc, broker, db, opts)
		return
	}
	if req.Snapshot {
		s.serveTail(conn, wc, tc, broker, db, opts)
		return
	}
	sub := broker.Subscribe(opts)
	if !s.track(conn, sub) {
		sub.Close()
		return
	}
	defer s.untrack(conn, sub)
	s.supervise(conn, wc, tc, sub)
	s.pump(tc, sub, 0)
}

// tailConn serializes writes to one tail connection. A wire.Conn is not
// safe for concurrent use of the same direction, and with heartbeats the
// write direction gains a second writer: the pinger goroutine interleaving
// control frames with the pump's events.
type tailConn struct {
	mu sync.Mutex
	wc *wire.Conn
	// tenant is the subscription's tenant tag, carried onto delivery spans.
	tenant string
}

func (tc *tailConn) write(v any) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.wc.WriteFrame(v)
}

// supervise watches one subscribed connection for death. A v2 peer under a
// heartbeat regime is actively probed: pings every interval, a read
// deadline covering the expected pong, and reaping on the first missed
// deadline — which detects a half-open connection (peer gone, TCP none the
// wiser) that would otherwise leak the subscriber and its goroutines until
// the next write. v1 peers, whose protocol has no control frames, keep the
// passive watcher: any read completing means the conversation is over.
func (s *Server) supervise(conn net.Conn, wc *wire.Conn, tc *tailConn, sub *Subscriber) {
	if wc.Version() == wire.V2 && s.hb.Interval > 0 {
		s.superviseHeartbeat(conn, wc, tc, sub)
		return
	}
	s.watchConn(conn, sub)
}

// watchConn closes sub as soon as the client's connection dies. The tail
// protocol is server-push after the Subscribe frame, so any read
// completing — EOF, a reset, or a protocol-violating extra byte — means
// the conversation is over. Without the watcher a dead tailer is only
// discovered on the next write: a quiet feed would leave its subscriber
// registered (and a Block-policy ring able to stall the producer)
// indefinitely.
func (s *Server) watchConn(conn net.Conn, sub *Subscriber) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var buf [1]byte
		_, _ = conn.Read(buf[:])
		sub.Close() // wakes the pump's Recv; untrack detaches the ring
	}()
}

// superviseHeartbeat runs the active liveness pair for one v2 connection:
// a pinger writing probes every interval and a reader that demands each
// pong inside interval+grace. Either side failing reaps the subscriber at
// that moment — the reap point where the ring detaches and (through
// detach) its per-subscriber obs metrics unregister.
func (s *Server) superviseHeartbeat(conn net.Conn, wc *wire.Conn, tc *tailConn, sub *Subscriber) {
	hb := s.hb
	deadline := hb.Interval + hb.grace()
	done := make(chan struct{})
	s.wg.Add(2)
	go func() { // reader: the client's only legal frames after Subscribe are pongs
		defer s.wg.Done()
		defer close(done)
		defer sub.Close()
		for {
			_ = conn.SetReadDeadline(time.Now().Add(deadline))
			var pong wire.Pong
			if err := wc.ReadFrame(&pong); err != nil {
				return // timeout (half-open), EOF, or a protocol violation
			}
		}
	}()
	go func() { // pinger
		defer s.wg.Done()
		t := time.NewTicker(hb.Interval)
		defer t.Stop()
		var seq uint64
		for {
			select {
			case <-t.C:
				seq++
				if tc.write(&wire.Ping{Seq: seq}) != nil {
					sub.Close()
					return
				}
			case <-done:
				return
			}
		}
	}()
}

// serveTail runs the snapshot-then-follow protocol: history, the
// snapshot-end marker, then the live feed — against the resolved tenant's
// broker and store.
func (s *Server) serveTail(conn net.Conn, wc *wire.Conn, tc *tailConn, broker *Broker, db *tracedb.DB, opts SubOptions) {
	tail := broker.Tail(db, opts)
	// Close the whole tail, not just its subscriber: a client that dies
	// mid-snapshot abandons the iterator, and an unreleased iterator pins
	// segment files the lifecycle engine has retired.
	defer tail.Close()
	if !s.track(conn, tail.Subscriber()) {
		return
	}
	defer s.untrack(conn, tail.Subscriber())
	s.supervise(conn, wc, tc, tail.Subscriber())

	err := tail.Snapshot(func(r store.Record) error {
		rec := r
		return tc.write(wire.Event{Kind: wire.EventTrace, Record: &rec})
	})
	if err != nil {
		_ = tc.write(wire.Event{Kind: wire.EventError, Error: err.Error()})
		return
	}
	if tc.write(wire.Event{Kind: wire.EventSnapshotEnd}) != nil {
		return
	}
	var reported uint64
	for {
		ev, ok := tail.Recv()
		if !ok {
			return
		}
		if s.writeEvent(tc, ev, tail.Subscriber(), &reported) != nil {
			return
		}
	}
}

// pump forwards live events until the client disconnects or the subscriber
// closes.
func (s *Server) pump(tc *tailConn, sub *Subscriber, reportedDrops uint64) {
	for {
		ev, ok := sub.Recv()
		if !ok {
			return
		}
		if s.writeEvent(tc, ev, sub, &reportedDrops) != nil {
			return
		}
	}
}

// writeEvent frames one event, attaching the number of events shed since the
// previous frame so the client's drop accounting stays exact. Traced records
// carry their trace context onto the frame (so the tailer can stitch), and a
// successful delivery records a "stream.deliver" child span — the last hop
// of the record's trace tree.
func (s *Server) writeEvent(tc *tailConn, ev Event, sub *Subscriber, reported *uint64) error {
	frame := wire.Event{}
	switch ev.Kind {
	case KindTrace:
		rec := ev.Record
		frame.Kind = wire.EventTrace
		frame.Record = &rec
		frame.TraceID, frame.SpanID = rec.TraceID, rec.SpanID
	case KindPower:
		sample := ev.Sample
		frame.Kind = wire.EventPower
		frame.Sample = &sample
	default:
		return nil
	}
	if dropped := sub.Stats().Dropped; dropped > *reported {
		frame.Dropped = dropped - *reported
		*reported = dropped
	}
	err := tc.write(frame)
	if err == nil && frame.TraceID != 0 && s.spans.Enabled() {
		// A point event at the record's own timestamp: the stream layer has
		// no injected clock (deliveries are wall-time anyway), and what the
		// tree needs is which subscriber got the record, not a duration.
		rec := ev.Record
		sp := span.Span{TraceID: frame.TraceID, SpanID: s.spans.NewID(), ParentID: frame.SpanID,
			Name: "stream.deliver", Tenant: tc.tenant, Start: rec.EndTime, End: rec.EndTime}
		sp.SetAttr("subscriber", sub.name)
		s.spans.Record(sp)
	}
	return err
}

// track registers a connection's subscriber for shutdown; it reports false
// when the server is already closed.
func (s *Server) track(conn net.Conn, sub *Subscriber) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = sub
	return true
}

func (s *Server) untrack(conn net.Conn, sub *Subscriber) {
	sub.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the listener, closes every live tail, and waits for the
// connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for conn, sub := range s.conns {
		if sub != nil {
			sub.Close() // unblocks Recv
		}
		// A nil sub is a connection still negotiating or awaiting its
		// subscribe frame; closing the conn unblocks that read.
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Drain is graceful shutdown: stop accepting, detach every subscriber from
// its broker (no new events enter the rings), let each pump flush its
// already-buffered events to its client, and wait for the connection
// goroutines — up to ctx's deadline, after which the remaining connections
// are severed Close-style. It returns nil when every tail flushed in time,
// ctx.Err() otherwise. Close afterwards is a harmless no-op.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for conn, sub := range s.conns {
		if sub != nil {
			// Detaching (not severing) lets Recv drain the ring: the pump
			// writes out the buffered backlog, then exits on ring empty.
			sub.Close()
		} else {
			// Still negotiating: nothing buffered to flush.
			_ = conn.Close()
		}
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// subOptions maps a validated Subscribe frame onto broker options.
func subOptions(req wire.Subscribe, conn net.Conn) SubOptions {
	opts := SubOptions{
		Name:   req.Name,
		Buffer: req.Buffer,
		Power:  req.Power,
		Filter: tracedb.Query{
			Device: req.Device, Key: req.Key,
			Procedure: req.Procedure, Run: req.Run,
		},
	}
	if opts.Name == "" {
		opts.Name = conn.RemoteAddr().String()
	}
	if opts.Buffer > maxSubscriberBuffer {
		opts.Buffer = maxSubscriberBuffer
	}
	if req.Policy == wire.PolicyBlock {
		opts.Policy = Block
	}
	return opts
}

// SubscribeError is a subscription failure the server reported explicitly
// (an EventError frame): the request itself was refused — bad tenant,
// missing store, resume point beyond the head. It is permanent for the
// request as sent, which is how ResilientTail tells "redial the same
// subscription" from "this subscription will never work".
type SubscribeError struct {
	Msg string
}

func (e *SubscribeError) Error() string { return "stream: subscription failed: " + e.Msg }

// Client is the tail-consumer side: it dials a stream listener, sends the
// Subscribe frame, and decodes Event frames.
type Client struct {
	conn net.Conn
	wc   *wire.Conn
	idle time.Duration
}

// Dial connects to a stream listener over the v1 JSON protocol and
// subscribes. The request's Op is set for the caller.
func Dial(addr string, req wire.Subscribe) (*Client, error) {
	return DialProto(addr, req, wire.ProtoV1)
}

// DialProto is Dial with an explicit protocol selector: wire.ProtoAuto
// negotiates v2 with an upgraded listener and falls back to v1, wire.ProtoV2
// fails unless the listener speaks the binary protocol.
func DialProto(addr string, req wire.Subscribe, proto wire.Proto) (*Client, error) {
	conn, wc, err := wire.Dial(addr, proto, nil)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	req.Op = wire.OpSubscribe
	if err := wc.WriteFrame(req); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: send subscribe: %w", err)
	}
	return &Client{conn: conn, wc: wc}, nil
}

// Protocol reports the wire protocol version the subscription negotiated.
func (c *Client) Protocol() wire.Version { return c.wc.Version() }

// SetIdleTimeout bounds how long Recv will wait for any frame from the
// server before reporting the connection dead. Against a heartbeating
// server (set it comfortably above the ping interval) this is the client
// half of liveness: a half-open connection surfaces as a timeout error
// instead of a Recv that blocks forever. Zero (the default) never times
// out.
func (c *Client) SetIdleTimeout(d time.Duration) { c.idle = d }

// Recv reads the next event frame, transparently answering the server's
// liveness pings. A server-reported subscription failure is surfaced as a
// *SubscribeError; io.EOF means the server closed the stream.
func (c *Client) Recv() (wire.Event, error) {
	for {
		if c.idle > 0 {
			_ = c.conn.SetReadDeadline(time.Now().Add(c.idle))
		}
		var tf wire.TailFrame
		if err := c.wc.ReadFrame(&tf); err != nil {
			return wire.Event{}, err
		}
		if tf.Ping != nil {
			// Recv is the connection's only reader and (post-subscribe) only
			// writer, so the pong needs no extra synchronization.
			if err := c.wc.WriteFrame(&wire.Pong{Seq: tf.Ping.Seq}); err != nil {
				return wire.Event{}, err
			}
			continue
		}
		ev := *tf.Event
		if ev.Kind == wire.EventError {
			return wire.Event{}, &SubscribeError{Msg: ev.Error}
		}
		return ev, nil
	}
}

// Close terminates the subscription by closing the connection.
func (c *Client) Close() error { return c.conn.Close() }
