package stream

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"rad/internal/store"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// Server exposes a broker's live feed over TCP: one Subscribe frame in, a
// stream of Event frames out (the wire-protocol tail of wire/stream.go).
// Each connection gets its own broker subscription, so the overflow policy
// and drop accounting are per-tailer; a stalled client under drop-oldest
// costs the middlebox nothing but that client's own ring.
type Server struct {
	broker *Broker
	db     *tracedb.DB // snapshot source; nil disables snapshot-then-follow

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]*Subscriber
	closed bool
	wg     sync.WaitGroup
}

// maxSubscriberBuffer caps a client-requested ring so one tail cannot pin
// unbounded memory on the middlebox.
const maxSubscriberBuffer = 1 << 16

// NewServer wraps broker; db (which may be nil) serves Subscribe.Snapshot
// replays.
func NewServer(broker *Broker, db *tracedb.DB) *Server {
	return &Server{broker: broker, db: db, conns: make(map[net.Conn]*Subscriber)}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background,
// returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("stream: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	var req wire.Subscribe
	if err := wire.ReadFrame(conn, &req); err != nil {
		return
	}
	if err := req.Validate(); err != nil {
		_ = wire.WriteFrame(conn, wire.Event{Kind: wire.EventError, Error: err.Error()})
		return
	}
	if req.Snapshot && s.db == nil {
		_ = wire.WriteFrame(conn, wire.Event{Kind: wire.EventError,
			Error: "stream: snapshot requested but the middlebox has no persistent store"})
		return
	}
	opts := subOptions(req, conn)

	if req.Snapshot {
		s.serveTail(conn, opts)
		return
	}
	sub := s.broker.Subscribe(opts)
	if !s.track(conn, sub) {
		sub.Close()
		return
	}
	defer s.untrack(conn, sub)
	s.watchConn(conn, sub)
	s.pump(conn, sub, 0)
}

// watchConn closes sub as soon as the client's connection dies. The tail
// protocol is server-push after the Subscribe frame, so any read
// completing — EOF, a reset, or a protocol-violating extra byte — means
// the conversation is over. Without the watcher a dead tailer is only
// discovered on the next write: a quiet feed would leave its subscriber
// registered (and a Block-policy ring able to stall the producer)
// indefinitely.
func (s *Server) watchConn(conn net.Conn, sub *Subscriber) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var buf [1]byte
		_, _ = conn.Read(buf[:])
		sub.Close() // wakes the pump's Recv; untrack detaches the ring
	}()
}

// serveTail runs the snapshot-then-follow protocol: history, the
// snapshot-end marker, then the live feed.
func (s *Server) serveTail(conn net.Conn, opts SubOptions) {
	tail := s.broker.Tail(s.db, opts)
	if !s.track(conn, tail.Subscriber()) {
		tail.Close()
		return
	}
	defer s.untrack(conn, tail.Subscriber())
	s.watchConn(conn, tail.Subscriber())

	err := tail.Snapshot(func(r store.Record) error {
		rec := r
		return wire.WriteFrame(conn, wire.Event{Kind: wire.EventTrace, Record: &rec})
	})
	if err != nil {
		_ = wire.WriteFrame(conn, wire.Event{Kind: wire.EventError, Error: err.Error()})
		return
	}
	if wire.WriteFrame(conn, wire.Event{Kind: wire.EventSnapshotEnd}) != nil {
		return
	}
	var reported uint64
	for {
		ev, ok := tail.Recv()
		if !ok {
			return
		}
		if s.writeEvent(conn, ev, tail.Subscriber(), &reported) != nil {
			return
		}
	}
}

// pump forwards live events until the client disconnects or the subscriber
// closes.
func (s *Server) pump(conn net.Conn, sub *Subscriber, reportedDrops uint64) {
	for {
		ev, ok := sub.Recv()
		if !ok {
			return
		}
		if s.writeEvent(conn, ev, sub, &reportedDrops) != nil {
			return
		}
	}
}

// writeEvent frames one event, attaching the number of events shed since the
// previous frame so the client's drop accounting stays exact.
func (s *Server) writeEvent(conn net.Conn, ev Event, sub *Subscriber, reported *uint64) error {
	frame := wire.Event{}
	switch ev.Kind {
	case KindTrace:
		rec := ev.Record
		frame.Kind = wire.EventTrace
		frame.Record = &rec
	case KindPower:
		sample := ev.Sample
		frame.Kind = wire.EventPower
		frame.Sample = &sample
	default:
		return nil
	}
	if dropped := sub.Stats().Dropped; dropped > *reported {
		frame.Dropped = dropped - *reported
		*reported = dropped
	}
	return wire.WriteFrame(conn, frame)
}

// track registers a connection's subscriber for shutdown; it reports false
// when the server is already closed.
func (s *Server) track(conn net.Conn, sub *Subscriber) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = sub
	return true
}

func (s *Server) untrack(conn net.Conn, sub *Subscriber) {
	sub.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the listener, closes every live tail, and waits for the
// connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn, sub := range s.conns {
		sub.Close() // unblocks Recv
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// subOptions maps a validated Subscribe frame onto broker options.
func subOptions(req wire.Subscribe, conn net.Conn) SubOptions {
	opts := SubOptions{
		Name:   req.Name,
		Buffer: req.Buffer,
		Power:  req.Power,
		Filter: tracedb.Query{
			Device: req.Device, Key: req.Key,
			Procedure: req.Procedure, Run: req.Run,
		},
	}
	if opts.Name == "" {
		opts.Name = conn.RemoteAddr().String()
	}
	if opts.Buffer > maxSubscriberBuffer {
		opts.Buffer = maxSubscriberBuffer
	}
	if req.Policy == wire.PolicyBlock {
		opts.Policy = Block
	}
	return opts
}

// Client is the tail-consumer side: it dials a stream listener, sends the
// Subscribe frame, and decodes Event frames.
type Client struct {
	conn net.Conn
}

// Dial connects to a stream listener and subscribes. The request's Op is
// set for the caller.
func Dial(addr string, req wire.Subscribe) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	req.Op = wire.OpSubscribe
	if err := wire.WriteFrame(conn, req); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: send subscribe: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Recv reads the next event frame. A server-reported subscription failure
// is surfaced as an error; io.EOF means the server closed the stream.
func (c *Client) Recv() (wire.Event, error) {
	var ev wire.Event
	if err := wire.ReadFrame(c.conn, &ev); err != nil {
		return wire.Event{}, err
	}
	if ev.Kind == wire.EventError {
		return wire.Event{}, fmt.Errorf("stream: subscription failed: %s", ev.Error)
	}
	return ev, nil
}

// Close terminates the subscription by closing the connection.
func (c *Client) Close() error { return c.conn.Close() }
