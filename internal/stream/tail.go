package stream

import (
	"rad/internal/store"
	"rad/internal/tracedb"
)

// Tail is a snapshot-then-follow subscription: it replays every matching
// record already committed to a tracedb store (in sequence order), then
// switches to the live feed with no gaps and no duplicates.
//
// The handoff invariant rests on two orderings:
//
//  1. The subscriber registers with the broker BEFORE the snapshot is
//     planned, so every record committed after registration is buffered in
//     its ring while the snapshot drains.
//  2. The store's commit hook publishes a record only once it is visible to
//     readers, so every record the subscriber missed (published before
//     registration) is guaranteed to be in the snapshot.
//
// Records committed in the window between registration and the snapshot plan
// appear in both; Recv discards them by comparing sequence numbers against
// the snapshot boundary. Use the Block policy for a lossless tail (the
// gap-free guarantee); under DropOldest a tail that falls behind loses live
// events like any other subscriber, with the loss counted.
type Tail struct {
	sub      *Subscriber
	it       *tracedb.Iterator
	boundary uint64 // highest snapshot seq + 1; live events below it are duplicates
	snapDone bool
	dups     uint64
}

// Tail opens a snapshot-then-follow subscription over db. Call Snapshot to
// drain the historical records, then Recv for live events; Close when done.
func (b *Broker) Tail(db *tracedb.DB, opts SubOptions) *Tail {
	sub := b.Subscribe(opts)   // 1: live events start buffering now
	it := db.Scan(opts.Filter) // 2: snapshot covers everything committed before 1
	return &Tail{sub: sub, it: it}
}

// Snapshot streams every historical record (already filtered, in sequence
// order) to fn and records the live-handoff boundary. It returns fn's first
// error, or the snapshot scan's read error, if any. Must be called (to
// completion) before Recv.
func (t *Tail) Snapshot(fn func(store.Record) error) error {
	for t.it.Next() {
		r := t.it.Record()
		t.boundary = r.Seq + 1
		if err := fn(r); err != nil {
			return err
		}
	}
	t.snapDone = true
	return t.it.Err()
}

// Recv returns the next live event. Trace events that were already replayed
// by Snapshot are skipped (counted in Duplicates); ok is false once the
// subscriber is closed and drained.
func (t *Tail) Recv() (Event, bool) {
	for {
		ev, ok := t.sub.Recv()
		if !ok {
			return Event{}, false
		}
		if ev.Kind == KindTrace && ev.Record.Seq < t.boundary {
			t.dups++
			continue
		}
		return ev, true
	}
}

// Duplicates reports how many live events Recv discarded as already
// delivered by the snapshot — the size of the registration-to-plan overlap.
func (t *Tail) Duplicates() uint64 { return t.dups }

// Subscriber exposes the underlying live subscription (for Stats).
func (t *Tail) Subscriber() *Subscriber { return t.sub }

// Close detaches the live subscription and releases the snapshot iterator's
// segment references, so a tail abandoned mid-snapshot does not pin files
// the store's lifecycle engine has retired.
func (t *Tail) Close() {
	t.sub.Close()
	t.it.Close()
}
