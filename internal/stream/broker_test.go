package stream_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rad/internal/power"
	"rad/internal/simclock"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
)

func rec(seq uint64, dev, name string) store.Record {
	return store.Record{Seq: seq, Device: dev, Name: name}
}

func TestPublishDeliversInOrder(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	sub := b.Subscribe(stream.SubOptions{Name: "t"})

	for i := 0; i < 100; i++ {
		b.Publish(rec(uint64(i), "C9", "MVNG"))
	}
	for i := 0; i < 100; i++ {
		ev, ok := sub.Recv()
		if !ok {
			t.Fatalf("closed after %d events", i)
		}
		if ev.Kind != stream.KindTrace || ev.Record.Seq != uint64(i) {
			t.Fatalf("event %d: kind=%d seq=%d", i, ev.Kind, ev.Record.Seq)
		}
	}
	if _, ok := sub.TryRecv(); ok {
		t.Error("extra event buffered")
	}
	if got := b.Published(); got != 100 {
		t.Errorf("Published = %d, want 100", got)
	}
}

func TestFilterAppliesAtPublish(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	sub := b.Subscribe(stream.SubOptions{Filter: tracedb.Query{Device: "UR3e"}})

	b.Publish(rec(0, "C9", "MVNG"))
	b.Publish(rec(1, "UR3e", "movej"))
	b.Publish(rec(2, "IKA", "start"))
	b.Publish(rec(3, "UR3e", "movel"))

	for _, want := range []uint64{1, 3} {
		ev, ok := sub.TryRecv()
		if !ok || ev.Record.Seq != want {
			t.Fatalf("got (%v, %v), want seq %d", ev.Record.Seq, ok, want)
		}
	}
	if _, ok := sub.TryRecv(); ok {
		t.Error("filtered event slipped through")
	}
	st := sub.Stats()
	if st.Dropped != 0 {
		t.Errorf("filtered events counted as drops: %d", st.Dropped)
	}
}

func TestPowerEventsGated(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	plain := b.Subscribe(stream.SubOptions{Name: "plain"})
	powered := b.Subscribe(stream.SubOptions{Name: "powered", Power: true})

	b.PublishPower(power.Sample{})
	if _, ok := plain.TryRecv(); ok {
		t.Error("power event reached a subscriber that did not opt in")
	}
	ev, ok := powered.TryRecv()
	if !ok || ev.Kind != stream.KindPower {
		t.Fatalf("power subscriber got (%v, %v)", ev.Kind, ok)
	}
}

func TestDropOldestExactAccounting(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	sub := b.Subscribe(stream.SubOptions{Buffer: 8}) // DropOldest default

	const published = 100
	for i := 0; i < published; i++ {
		b.Publish(rec(uint64(i), "C9", "MVNG"))
	}
	st := sub.Stats()
	if st.Dropped != published-8 {
		t.Errorf("Dropped = %d, want %d", st.Dropped, published-8)
	}
	if st.Buffered != 8 {
		t.Errorf("Buffered = %d, want 8", st.Buffered)
	}
	if !st.Lagging {
		t.Error("subscriber with drops not reported lagging")
	}
	// The ring holds the newest 8 events, oldest-first.
	for want := uint64(published - 8); want < published; want++ {
		ev, ok := sub.TryRecv()
		if !ok || ev.Record.Seq != want {
			t.Fatalf("got (%d, %v), want %d", ev.Record.Seq, ok, want)
		}
	}
	st = sub.Stats()
	if st.Delivered+st.Dropped != published {
		t.Errorf("delivered %d + dropped %d != published %d", st.Delivered, st.Dropped, published)
	}
}

func TestBlockPolicyIsLossless(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	sub := b.Subscribe(stream.SubOptions{Buffer: 4, Policy: stream.Block})

	const total = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			b.Publish(rec(uint64(i), "C9", "MVNG"))
		}
	}()
	for i := 0; i < total; i++ {
		ev, ok := sub.Recv()
		if !ok {
			t.Errorf("closed after %d events", i)
			return
		}
		if ev.Record.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Record.Seq)
			return
		}
	}
	<-done
	if st := sub.Stats(); st.Dropped != 0 {
		t.Errorf("Block subscriber dropped %d", st.Dropped)
	}
}

func TestCloseUnblocksBlockedPublisher(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	sub := b.Subscribe(stream.SubOptions{Buffer: 1, Policy: stream.Block})

	b.Publish(rec(0, "C9", "MVNG")) // fills the ring
	published := make(chan struct{})
	go func() {
		b.Publish(rec(1, "C9", "MVNG")) // blocks on the full ring
		close(published)
	}()
	time.Sleep(10 * time.Millisecond) // let the publisher reach the wait
	sub.Close()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher still blocked after subscriber Close")
	}
}

func TestBrokerCloseDrainsBufferedEvents(t *testing.T) {
	b := stream.NewBroker()
	sub := b.Subscribe(stream.SubOptions{})
	b.Publish(rec(0, "C9", "MVNG"))
	b.Publish(rec(1, "C9", "MVNG"))
	b.Close()

	for want := uint64(0); want < 2; want++ {
		ev, ok := sub.Recv()
		if !ok || ev.Record.Seq != want {
			t.Fatalf("drain got (%d, %v), want %d", ev.Record.Seq, ok, want)
		}
	}
	if _, ok := sub.Recv(); ok {
		t.Error("Recv reported an event after the ring drained")
	}
	// Publishes and subscriptions after Close are inert.
	b.Publish(rec(2, "C9", "MVNG"))
	late := b.Subscribe(stream.SubOptions{})
	if _, ok := late.Recv(); ok {
		t.Error("post-Close subscriber received an event")
	}
}

func TestStalledSubscriberDoesNotStallPublisher(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	b.Subscribe(stream.SubOptions{Name: "stalled", Buffer: 4}) // never Recvs

	done := make(chan struct{})
	go func() {
		for i := 0; i < 50000; i++ {
			b.Publish(rec(uint64(i), "C9", "MVNG"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publishing stalled behind a dead drop-oldest subscriber")
	}
}

// TestSoakProducersAndSlowSubscribers is the race/soak stress test: several
// producers fan into a mix of Block and DropOldest subscribers, some
// deliberately slow. Under -race it must neither deadlock nor lose events
// for Block subscribers, and DropOldest accounting must stay exact
// (delivered + dropped == published).
func TestSoakProducersAndSlowSubscribers(t *testing.T) {
	const (
		producers   = 4
		perProducer = 2000
		total       = producers * perProducer
	)
	b := stream.NewBroker()
	defer b.Close()

	type consumer struct {
		sub      *stream.Subscriber
		received int
		block    bool
	}
	var consumers []*consumer
	for i := 0; i < 3; i++ {
		consumers = append(consumers, &consumer{
			sub:   b.Subscribe(stream.SubOptions{Name: fmt.Sprintf("block-%d", i), Buffer: 64, Policy: stream.Block}),
			block: true,
		})
	}
	for i := 0; i < 3; i++ {
		consumers = append(consumers, &consumer{
			sub: b.Subscribe(stream.SubOptions{Name: fmt.Sprintf("slow-%d", i), Buffer: 32}),
		})
	}

	var consumerWG sync.WaitGroup
	for ci, c := range consumers {
		consumerWG.Add(1)
		go func(ci int, c *consumer) {
			defer consumerWG.Done()
			for {
				_, ok := c.sub.Recv()
				if !ok {
					return
				}
				c.received++
				if !c.block && c.received%64 == 0 {
					time.Sleep(time.Millisecond) // deliberately fall behind
				}
			}
		}(ci, c)
	}

	var producerWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		producerWG.Add(1)
		go func(p int) {
			defer producerWG.Done()
			for i := 0; i < perProducer; i++ {
				b.Publish(rec(uint64(p*perProducer+i), "C9", "MVNG"))
			}
		}(p)
	}
	producerWG.Wait()
	b.Close() // consumers drain their rings, then exit
	consumerWG.Wait()

	for _, c := range consumers {
		st := c.sub.Stats()
		if c.block {
			if c.received != total || st.Dropped != 0 {
				t.Errorf("%s: received %d (dropped %d), want %d lossless",
					st.Name, c.received, st.Dropped, total)
			}
		} else {
			if int(st.Delivered)+int(st.Dropped) != total {
				t.Errorf("%s: delivered %d + dropped %d != published %d",
					st.Name, st.Delivered, st.Dropped, total)
			}
			if c.received != int(st.Delivered) {
				t.Errorf("%s: consumer saw %d, stats say delivered %d",
					st.Name, c.received, st.Delivered)
			}
		}
	}
}

func TestBrokerStatsSnapshotsEverySubscriber(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	b.Subscribe(stream.SubOptions{Name: "a"})
	b.Subscribe(stream.SubOptions{Name: "b", Buffer: 2})
	b.Publish(rec(0, "C9", "MVNG"))

	stats := b.Stats()
	if len(stats) != 2 {
		t.Fatalf("%d subscriber stats", len(stats))
	}
	names := map[string]bool{}
	for _, s := range stats {
		names[s.Name] = true
		if s.Buffered != 1 {
			t.Errorf("%s buffered %d, want 1", s.Name, s.Buffered)
		}
	}
	if !names["a"] || !names["b"] {
		t.Errorf("stats names = %v", names)
	}
}

func TestNilBrokerIsInert(t *testing.T) {
	var b *stream.Broker
	b.Publish(rec(0, "C9", "MVNG")) // must not panic
	b.PublishBatch([]store.Record{rec(1, "C9", "MVNG")})
	b.PublishPower(power.Sample{})
	if b.Published() != 0 || b.Stats() != nil {
		t.Error("nil broker reported activity")
	}
}

func TestMemStoreCommitHookPublishes(t *testing.T) {
	b := stream.NewBroker()
	defer b.Close()
	ms := store.NewMemStore()
	b.AttachStore(ms)
	sub := b.Subscribe(stream.SubOptions{})

	if err := ms.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
		t.Fatal(err)
	}
	batch := []store.Record{
		{Device: "C9", Name: "GRIP"},
		{Device: "UR3e", Name: "movej"},
	}
	if err := ms.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	for want := uint64(0); want < 3; want++ {
		ev, ok := sub.TryRecv()
		if !ok {
			t.Fatalf("missing event %d", want)
		}
		if ev.Record.Seq != want {
			t.Errorf("event has seq %d, want %d (authoritative store numbering)", ev.Record.Seq, want)
		}
	}
}

func TestMonitorBridgePublishesPowerSamples(t *testing.T) {
	// The monitor's live feed is bridged on a goroutine; publish a few
	// samples through a real monitor and stop the bridge.
	b := stream.NewBroker()
	defer b.Close()
	sub := b.Subscribe(stream.SubOptions{Power: true, Policy: stream.Block, Buffer: 64})

	m := power.NewMonitor(power.DefaultModel(), simclock.NewVirtual(time.Unix(0, 0)), 1)
	stop := b.AttachMonitor(m, 16)
	m.RecordQuiescent(200 * time.Millisecond) // a few idle samples at 25 Hz
	// The bridge goroutine races the assertions; stopping it first drains it.
	stop()

	got := 0
	for {
		ev, ok := sub.TryRecv()
		if !ok {
			break
		}
		if ev.Kind == stream.KindPower {
			got++
		}
	}
	if got == 0 {
		t.Error("no power samples reached the subscriber")
	}
}
