package stream_test

import (
	"io"
	"testing"
	"time"

	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

func startServer(t *testing.T, broker *stream.Broker, db *tracedb.DB) (*stream.Server, string) {
	t.Helper()
	srv := stream.NewServer(broker, db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestServerLiveTailOverTCP(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{Name: "test-tail"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	go func() {
		for i := 0; i < 20; i++ {
			broker.Publish(rec(uint64(i), "C9", "MVNG"))
		}
	}()
	for i := 0; i < 20; i++ {
		ev, err := client.Recv()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Kind != wire.EventTrace || ev.Record == nil || ev.Record.Seq != uint64(i) {
			t.Fatalf("event %d: kind=%s record=%+v", i, ev.Kind, ev.Record)
		}
	}
}

func TestServerFilterPushdown(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{Device: "UR3e"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	go func() {
		devs := []string{"C9", "UR3e", "IKA", "UR3e"}
		for i, d := range devs {
			broker.Publish(rec(uint64(i), d, "cmd"))
		}
	}()
	for _, want := range []uint64{1, 3} {
		ev, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Record.Device != "UR3e" || ev.Record.Seq != want {
			t.Fatalf("filtered stream delivered %+v, want UR3e seq %d", ev.Record, want)
		}
	}
}

func TestServerSnapshotThenFollow(t *testing.T) {
	db, err := tracedb.Open(t.TempDir(), tracedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)
	_, addr := startServer(t, broker, db)

	for i := 0; i < 10; i++ {
		if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
			t.Fatal(err)
		}
	}

	client, err := stream.Dial(addr, wire.Subscribe{Snapshot: true, Policy: wire.PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Ten history records, then the snapshot-end marker.
	for want := uint64(0); want < 10; want++ {
		ev, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != wire.EventTrace || ev.Record.Seq != want {
			t.Fatalf("snapshot event: kind=%s seq=%d, want trace seq %d", ev.Kind, ev.Record.Seq, want)
		}
	}
	ev, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != wire.EventSnapshotEnd {
		t.Fatalf("after snapshot got %s, want %s", ev.Kind, wire.EventSnapshotEnd)
	}

	// A record committed now arrives live, with the store's seq.
	if err := db.Append(store.Record{Device: "UR3e", Name: "movej"}); err != nil {
		t.Fatal(err)
	}
	ev, err = client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != wire.EventTrace || ev.Record.Seq != 10 {
		t.Fatalf("live event: kind=%s seq=%d, want trace seq 10", ev.Kind, ev.Record.Seq)
	}
}

func TestServerRejectsSnapshotWithoutStore(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Recv(); err == nil || err == io.EOF {
		t.Fatalf("snapshot without store: err = %v, want subscription failure", err)
	}
}

func TestServerRejectsInvalidSubscribe(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{Policy: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Recv(); err == nil || err == io.EOF {
		t.Fatalf("invalid policy: err = %v, want subscription failure", err)
	}
}

func TestServerReportsDropDeltas(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	// A tiny ring with the default drop-oldest policy: publishing far more
	// events than the ring holds before the client reads anything forces
	// drops, and the server must report the exact shed count across the
	// frames it does deliver.
	client, err := stream.Dial(addr, wire.Subscribe{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	const published = 5000
	for i := 0; i < published; i++ {
		broker.Publish(rec(uint64(i), "C9", "MVNG"))
	}
	var got, dropped uint64
	deadline := time.After(10 * time.Second)
	for got+dropped < published {
		select {
		case <-deadline:
			t.Fatalf("accounted for %d of %d events", got+dropped, published)
		default:
		}
		ev, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != wire.EventTrace {
			continue
		}
		got++
		dropped += ev.Dropped
	}
	if got+dropped != published {
		t.Fatalf("delivered %d + dropped %d != published %d", got, dropped, published)
	}
	t.Logf("slow tail: %d delivered, %d dropped (exact)", got, dropped)
}

func TestServerCloseEndsStreams(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	srv, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err == nil {
		t.Fatal("Recv succeeded after server close")
	}
}

// waitForSubscriber blocks until the broker has n live subscribers — the
// server registers a connection's subscription asynchronously to Dial.
func waitForSubscriber(t *testing.T, b *stream.Broker, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.Stats()) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("broker never reached %d subscribers", n)
}

// waitForNoSubscribers is waitForSubscriber's inverse: it blocks until every
// subscription has been torn down.
func waitForNoSubscribers(t *testing.T, b *stream.Broker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.Stats()) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("subscribers never unregistered: %+v", b.Stats())
}

// TestServerDeadConnUnregistersQuietFeed kills a tailer's connection while
// the feed is quiet. Without the connection watchdog the subscription would
// linger until the next publish tried to write; with it, the dead tailer is
// unregistered promptly.
func TestServerDeadConnUnregistersQuietFeed(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	waitForSubscriber(t, broker, 1)
	_ = client.Close() // nothing published yet: only the watchdog notices
	waitForNoSubscribers(t, broker)

	// The broker still works for the next tailer.
	client2, err := stream.Dial(addr, wire.Subscribe{Name: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	waitForSubscriber(t, broker, 1)
	broker.Publish(rec(1, "C9", "MVNG"))
	if ev, err := client2.Recv(); err != nil || ev.Record == nil || ev.Record.Seq != 1 {
		t.Fatalf("survivor recv = %+v, %v", ev, err)
	}
}

// TestServerDeadConnMidStream kills the connection in the middle of an
// active stream — some frames consumed, more in flight — and checks the
// subscription is torn down and a Block-policy ring cannot stall the
// producer afterwards.
func TestServerDeadConnMidStream(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	client, err := stream.Dial(addr, wire.Subscribe{Name: "doomed", Policy: wire.PolicyBlock, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitForSubscriber(t, broker, 1)

	for i := 0; i < 3; i++ {
		broker.Publish(rec(uint64(i), "C9", "MVNG"))
	}
	if _, err := client.Recv(); err != nil { // mid-frame: one consumed, two buffered
		t.Fatal(err)
	}
	_ = client.Close()
	waitForNoSubscribers(t, broker)

	// With the dead Block-policy subscriber gone, publishing cannot stall.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			broker.Publish(rec(uint64(10+i), "C9", "MVNG"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish stalled on a dead subscriber")
	}
}
