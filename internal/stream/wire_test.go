package stream_test

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
	"rad/internal/wire"
)

// TestWireMixedVersionTail subscribes a v1 tailer, a v2 tailer, and an
// auto-negotiating tailer to the same listener, publishes one feed, and
// requires every client to see identical events — the protocol version must
// be invisible above the framing.
func TestWireMixedVersionTail(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	protos := []wire.Proto{wire.ProtoV1, wire.ProtoV2, wire.ProtoAuto}
	wantVersion := []wire.Version{wire.V1, wire.V2, wire.V2}
	clients := make([]*stream.Client, len(protos))
	for i, p := range protos {
		c, err := stream.DialProto(addr, wire.Subscribe{Name: p.String()}, p)
		if err != nil {
			t.Fatalf("client %d (%s): %v", i, p, err)
		}
		defer c.Close()
		if c.Protocol() != wantVersion[i] {
			t.Fatalf("client %d negotiated %s, want %s", i, c.Protocol(), wantVersion[i])
		}
		clients[i] = c
	}
	waitForSubscriber(t, broker, len(clients))

	const events = 16
	go func() {
		for i := 0; i < events; i++ {
			broker.Publish(store.Record{
				Seq: uint64(i), Time: time.Unix(0, int64(1000+i)).UTC(),
				Device: "UR3e", Name: "move_joints",
				Args: []string{"0.5", "ünïcödé"}, Response: "ok", Run: "mixed-tail",
			})
		}
	}()

	// Collect per client, then compare the streams as JSON.
	streams := make([][]string, len(clients))
	for ci, c := range clients {
		for i := 0; i < events; i++ {
			ev, err := c.Recv()
			if err != nil {
				t.Fatalf("client %d event %d: %v", ci, i, err)
			}
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			streams[ci] = append(streams[ci], string(b))
		}
	}
	for ci := 1; ci < len(streams); ci++ {
		for i := range streams[0] {
			if streams[ci][i] != streams[0][i] {
				t.Errorf("event %d diverges between %s and %s:\n %s\n %s",
					i, protos[0], protos[ci], streams[0][i], streams[ci][i])
			}
		}
	}
}

// TestWireV2BadSubscribeGetsEventError pins the satellite fix: a peer that
// completes the v2 handshake and then sends a malformed subscribe gets a
// precise EventError frame back, not a silent close.
func TestWireV2BadSubscribeGetsEventError(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc, err := wire.ClientV2(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A well-formed v2 frame of the wrong type: decodes as garbage for a
	// Subscribe, so the server must answer with the decode error.
	if err := wc.WriteFrame(wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	var ev wire.Event
	if err := wc.ReadFrame(&ev); err != nil {
		t.Fatalf("want an EventError frame, read failed: %v", err)
	}
	if ev.Kind != wire.EventError || !strings.Contains(ev.Error, "bad subscribe frame") {
		t.Fatalf("got %+v, want EventError mentioning the bad subscribe", ev)
	}
}

// TestWireV1BadSubscribeStillSilent: a v1 peer never negotiated anything,
// so the server cannot know the garbage was meant as a subscribe — the
// pre-v2 behaviour (close without a reply) is preserved.
func TestWireV1BadSubscribeStillSilent(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, "not a subscribe"); err != nil {
		t.Fatal(err)
	}
	var ev wire.Event
	if err := wire.ReadFrame(conn, &ev); err == nil {
		t.Fatalf("v1 garbage got a reply frame: %+v", ev)
	}
}

// TestWireStreamCloseSeversPreSubscribeConn: connections are tracked from
// the moment they land, so Close cannot be held hostage by a client that
// connected and then went quiet before (or during) negotiation.
func TestWireStreamCloseSeversPreSubscribeConn(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	srv, addr := startServer(t, broker, nil)

	// Three stalls at different protocol stages: nothing sent, a partial v2
	// preamble, and a full handshake with no subscribe.
	quiet, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()
	partial, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()
	if _, err := partial.Write([]byte{'R', 'A'}); err != nil {
		t.Fatal(err)
	}
	shaken, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer shaken.Close()
	if _, err := wire.ClientV2(shaken, nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on pre-subscribe connections")
	}
}

// TestWireStreamDeadConnDuringNegotiation: a client that dies mid-handshake
// must cost the server nothing — the next subscriber is served normally.
func TestWireStreamDeadConnDuringNegotiation(t *testing.T) {
	broker := stream.NewBroker()
	defer broker.Close()
	_, addr := startServer(t, broker, nil)

	dying, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dying.Write([]byte{'R', 'A', 'D'}); err != nil {
		t.Fatal(err)
	}
	_ = dying.Close()

	client, err := stream.DialProto(addr, wire.Subscribe{Name: "survivor"}, wire.ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitForSubscriber(t, broker, 1)
	broker.Publish(rec(7, "C9", "MVNG"))
	if ev, err := client.Recv(); err != nil || ev.Record == nil || ev.Record.Seq != 7 {
		t.Fatalf("survivor recv = %+v, %v", ev, err)
	}
}

// TestWireV2SnapshotThenFollow runs the full snapshot-then-follow protocol
// over the binary framing, with records that exercise the codec's time and
// args paths end to end through the tracedb.
func TestWireV2SnapshotThenFollow(t *testing.T) {
	db, broker, addr := snapshotFixture(t)
	defer broker.Close()

	client, err := stream.DialProto(addr, wire.Subscribe{Snapshot: true, Policy: wire.PolicyBlock}, wire.ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Protocol() != wire.V2 {
		t.Fatalf("negotiated %s, want v2", client.Protocol())
	}
	for want := uint64(0); want < 5; want++ {
		ev, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != wire.EventTrace || ev.Record.Seq != want {
			t.Fatalf("snapshot event %d: %+v", want, ev)
		}
		if len(ev.Record.Args) != 2 || ev.Record.Args[1] != "ünïcödé" {
			t.Fatalf("snapshot record %d args mangled: %+v", want, ev.Record.Args)
		}
	}
	if ev, err := client.Recv(); err != nil || ev.Kind != wire.EventSnapshotEnd {
		t.Fatalf("want snapshot end, got %+v, %v", ev, err)
	}
	if err := db.Append(store.Record{Device: "UR3e", Name: "movej"}); err != nil {
		t.Fatal(err)
	}
	if ev, err := client.Recv(); err != nil || ev.Kind != wire.EventTrace || ev.Record.Seq != 5 {
		t.Fatalf("live event after snapshot: %+v, %v", ev, err)
	}
}

func snapshotFixture(t *testing.T) (db *tracedb.DB, broker *stream.Broker, addr string) {
	t.Helper()
	tdb, err := tracedb.Open(t.TempDir(), tracedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tdb.Close() })
	broker = stream.NewBroker()
	broker.AttachStore(tdb)
	_, addr = startServer(t, broker, tdb)
	for i := 0; i < 5; i++ {
		if err := tdb.Append(store.Record{
			Time: time.Unix(0, int64(1000+i)).UTC(), Device: "C9", Name: "MVNG",
			Args: []string{"x", "ünïcödé"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tdb, broker, addr
}
