package stream_test

import (
	"errors"
	"testing"
	"time"

	dataset "rad/internal/rad"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
)

// TestChaosTailDuringCompactRetain is the lifecycle soak: the campaign is
// ingested through deliberately small flushes (maximum fragmentation) while
// THREE things run concurrently — the producer, a snapshot-then-follow tail
// attached mid-campaign, and a lifecycle goroutine hammering Compact and
// byte-budget Retain the whole time. The tail must deliver a gap-free,
// duplicate-free contiguous sequence range even as the segments under its
// snapshot are being rewritten, retired, and unlinked; a single use of an
// unlinked file would surface as a snapshot read error.
func TestChaosTailDuringCompactRetain(t *testing.T) {
	scale := 1.0
	if testing.Short() {
		scale = 0.05
	}
	ds, err := dataset.Generate(dataset.Config{Seed: 11, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.Store.All()
	total := len(recs)
	if !testing.Short() && total != dataset.TotalTraceObjects {
		t.Fatalf("campaign has %d records, want %d", total, dataset.TotalTraceObjects)
	}

	db, err := tracedb.Open(t.TempDir(), tracedb.Options{
		SegmentBytes: 128 << 10, // many small segments: rich retire/compact churn
		Lifecycle:    tracedb.LifecycleOptions{RetainMaxBytes: 2 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)

	// Lifecycle chaos: compact + retain in a tight loop until told to stop.
	lcStop := make(chan struct{})
	lcDone := make(chan struct{})
	go func() {
		defer close(lcDone)
		for {
			select {
			case <-lcStop:
				return
			default:
			}
			if _, err := db.Compact(); err != nil && !errors.Is(err, tracedb.ErrClosed) {
				t.Errorf("chaos compact: %v", err)
				return
			}
			if _, err := db.Retain(); err != nil && !errors.Is(err, tracedb.ErrClosed) {
				t.Errorf("chaos retain: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Producer: tiny flushes, signal once a third of the campaign is in.
	const flush = 48
	attachAfter := total / 3
	attached := make(chan struct{})
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		signalled := false
		for off := 0; off < total; off += flush {
			end := off + flush
			if end > total {
				end = total
			}
			if err := db.AppendBatch(recs[off:end]); err != nil {
				t.Errorf("append at %d: %v", off, err)
				return
			}
			if !signalled && end >= attachAfter {
				signalled = true
				close(attached)
			}
		}
	}()

	<-attached
	tail := broker.Tail(db, stream.SubOptions{
		Name: "lifecycle-chaos", Buffer: 8192, Policy: stream.Block,
	})
	defer tail.Close()

	// By attach time retention may have trimmed an old-segment prefix; the
	// tail's contract is a contiguous, exactly-once range from the first
	// snapshot sequence to the end of the campaign.
	seen := make([]bool, total)
	deliver := func(r store.Record, source string) {
		if r.Seq >= uint64(total) {
			t.Fatalf("%s delivered out-of-range seq %d", source, r.Seq)
		}
		if seen[r.Seq] {
			t.Fatalf("%s delivered seq %d twice", source, r.Seq)
		}
		seen[r.Seq] = true
	}

	first := uint64(total)
	prev := int64(-1)
	snapshotted := 0
	err = tail.Snapshot(func(r store.Record) error {
		if r.Seq < first {
			first = r.Seq
		}
		if prev >= 0 && r.Seq != uint64(prev)+1 {
			t.Fatalf("snapshot seq gap under lifecycle churn: %d -> %d", prev, r.Seq)
		}
		prev = int64(r.Seq)
		deliver(r, "snapshot")
		snapshotted++
		return nil
	})
	if err != nil {
		t.Fatalf("snapshot read error (unlinked segment used?): %v", err)
	}

	received := snapshotted
	want := total - int(first)
	for received < want {
		ev, ok := tail.Recv()
		if !ok {
			t.Fatalf("tail closed after %d/%d records", received, want)
		}
		if ev.Kind != stream.KindTrace {
			continue
		}
		deliver(ev.Record, "live")
		received++
	}
	<-prodDone
	close(lcStop)
	<-lcDone
	if t.Failed() {
		t.FailNow()
	}

	for seq := int(first); seq < total; seq++ {
		if !seen[seq] {
			t.Fatalf("seq %d never delivered", seq)
		}
	}
	if st := tail.Subscriber().Stats(); st.Dropped != 0 {
		t.Errorf("Block tail dropped %d events", st.Dropped)
	}

	// The store itself ends consistent: the survivors are a contiguous seq
	// suffix (whole-segment retention, no record-level tearing), every one
	// already delivered to the tail, and within the byte budget once the
	// final retain pass has run.
	if _, err := db.Retain(); err != nil {
		t.Fatal(err)
	}
	left, err := db.Collect(tracedb.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(left) == 0 {
		t.Fatal("retention emptied the store (active segment must survive)")
	}
	for i := 1; i < len(left); i++ {
		if left[i].Seq != left[i-1].Seq+1 {
			t.Fatalf("survivor seq gap: %d -> %d", left[i-1].Seq, left[i].Seq)
		}
	}
	if tailSeq := left[len(left)-1].Seq; tailSeq != uint64(total-1) {
		t.Fatalf("newest record lost: tail seq %d, want %d", tailSeq, total-1)
	}
	info := db.Lifecycle()
	if info.Compactions == 0 && info.SegmentsRetired == 0 {
		t.Error("soak ran no lifecycle work — chaos loop never engaged")
	}
	t.Logf("chaos soak: %d snapshot + %d live (first seq %d), %d dup overlap; lifecycle: %d compactions, %d segments retired, %d records dropped",
		snapshotted, received-snapshotted, first, tail.Duplicates(),
		info.Compactions, info.SegmentsRetired, info.RecordsDropped)
}
