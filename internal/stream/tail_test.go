package stream_test

import (
	"sync"
	"testing"

	dataset "rad/internal/rad"
	"rad/internal/store"
	"rad/internal/stream"
	"rad/internal/tracedb"
)

// TestTailHandoffGapFreeFullCampaign is the acceptance test for
// snapshot-then-follow: the full 128,785-record campaign is appended to a
// tracedb in batches while a subscriber attaches mid-campaign. The tail must
// deliver every sequence number exactly once — snapshot plus live feed, no
// gaps, no duplicates — using the store's own segment seq numbering.
func TestTailHandoffGapFreeFullCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign generation in -short mode")
	}
	ds, err := dataset.Generate(dataset.Config{Seed: 11, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.Store.All()
	total := len(recs)
	if total != dataset.TotalTraceObjects {
		t.Fatalf("campaign has %d records, want %d", total, dataset.TotalTraceObjects)
	}

	db, err := tracedb.Open(t.TempDir(), tracedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)

	const chunk = 1024
	attachAfter := total / 3 // mid-campaign

	// Producer: append the campaign in blocks; signal once a third is in.
	attached := make(chan struct{})
	var produced sync.WaitGroup
	produced.Add(1)
	go func() {
		defer produced.Done()
		signalled := false
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			if err := db.AppendBatch(recs[off:end]); err != nil {
				t.Errorf("append batch at %d: %v", off, err)
				return
			}
			if !signalled && end >= attachAfter {
				signalled = true
				close(attached)
				// Give the consumer a moment to attach mid-stream; the
				// correctness argument does not depend on this timing, it
				// just makes the test exercise a genuinely concurrent
				// handoff rather than an after-the-fact replay.
			}
		}
	}()

	<-attached
	tail := broker.Tail(db, stream.SubOptions{
		Name: "campaign-tail", Buffer: 4096, Policy: stream.Block,
	})
	defer tail.Close()

	seen := make([]bool, total)
	record := func(r store.Record, source string) {
		if r.Seq >= uint64(total) {
			t.Fatalf("%s delivered out-of-range seq %d", source, r.Seq)
		}
		if seen[r.Seq] {
			t.Fatalf("%s delivered seq %d twice", source, r.Seq)
		}
		seen[r.Seq] = true
	}

	var snapshotted int
	err = tail.Snapshot(func(r store.Record) error {
		record(r, "snapshot")
		snapshotted++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snapshotted < attachAfter/2 {
		t.Errorf("snapshot replayed only %d records before a mid-campaign attach", snapshotted)
	}

	received := snapshotted
	for received < total {
		ev, ok := tail.Recv()
		if !ok {
			t.Fatalf("tail closed after %d/%d records", received, total)
		}
		if ev.Kind != stream.KindTrace {
			continue
		}
		record(ev.Record, "live")
		received++
	}
	produced.Wait()

	for seq, ok := range seen {
		if !ok {
			t.Fatalf("seq %d never delivered", seq)
		}
	}
	if st := tail.Subscriber().Stats(); st.Dropped != 0 {
		t.Errorf("Block tail dropped %d events", st.Dropped)
	}
	t.Logf("campaign handoff: %d snapshot + %d live, %d overlap duplicates discarded",
		snapshotted, received-snapshotted, tail.Duplicates())
}

// TestTailAfterQuiescentStore covers the degenerate handoff: everything is
// already committed, nothing arrives live.
func TestTailAfterQuiescentStore(t *testing.T) {
	db, err := tracedb.Open(t.TempDir(), tracedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)

	for i := 0; i < 50; i++ {
		if err := db.Append(store.Record{Device: "C9", Name: "MVNG"}); err != nil {
			t.Fatal(err)
		}
	}

	tail := broker.Tail(db, stream.SubOptions{Buffer: 64, Policy: stream.Block})
	defer tail.Close()
	var want uint64
	err = tail.Snapshot(func(r store.Record) error {
		if r.Seq != want {
			t.Fatalf("snapshot seq %d, want %d", r.Seq, want)
		}
		want++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want != 50 {
		t.Fatalf("snapshot replayed %d records, want 50", want)
	}
	// The 50 committed records were published before the subscriber existed,
	// so its ring holds nothing — no overlap, no duplicates. A fresh live
	// record comes straight through.
	if err := db.Append(store.Record{Device: "UR3e", Name: "movej"}); err != nil {
		t.Fatal(err)
	}
	ev, ok := tail.Recv()
	if !ok || ev.Record.Seq != 50 {
		t.Fatalf("live event after snapshot: (%d, %v), want seq 50", ev.Record.Seq, ok)
	}
	if tail.Duplicates() != 0 {
		t.Errorf("discarded %d duplicates, want 0 (no overlap window)", tail.Duplicates())
	}
}

// TestTailFilterConsistency checks that the snapshot and the live side apply
// the same filter, so a filtered tail is gap-free over the matching subset.
func TestTailFilterConsistency(t *testing.T) {
	db, err := tracedb.Open(t.TempDir(), tracedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	broker := stream.NewBroker()
	defer broker.Close()
	broker.AttachStore(db)

	devs := []string{"C9", "UR3e", "IKA"}
	for i := 0; i < 30; i++ {
		if err := db.Append(store.Record{Device: devs[i%3], Name: "cmd"}); err != nil {
			t.Fatal(err)
		}
	}
	tail := broker.Tail(db, stream.SubOptions{
		Filter: tracedb.Query{Device: "UR3e"}, Buffer: 64, Policy: stream.Block,
	})
	defer tail.Close()

	var got []uint64
	if err := tail.Snapshot(func(r store.Record) error {
		if r.Device != "UR3e" {
			t.Errorf("snapshot leaked %s record", r.Device)
		}
		got = append(got, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("snapshot matched %d records, want 10", len(got))
	}
	for i := 0; i < 6; i++ {
		if err := db.Append(store.Record{Device: devs[i%3], Name: "cmd"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		ev, ok := tail.Recv()
		if !ok || ev.Record.Device != "UR3e" {
			t.Fatalf("live event %d: (%s, %v)", i, ev.Record.Device, ok)
		}
	}
}
