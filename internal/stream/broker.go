// Package stream is the live fan-out layer between the middlebox's trace
// commit path and its online consumers: a bounded pub/sub broker that
// publishes every committed store.Record (and power sample) to any number of
// subscribers, each with its own bounded ring buffer and explicit overflow
// policy. It is the serving substrate the paper's purpose implies — IDS
// researchers watching the lab live instead of mining completed campaigns —
// and the attachment point for the online detectors in ids.go.
//
// Design rules:
//
//   - The trace hot path is sacred. Under the default DropOldest policy a
//     publisher never waits on a subscriber: a slow tailer loses its oldest
//     buffered events (with exact loss accounting) and the middlebox keeps
//     its throughput.
//   - Lossless consumers opt into Block, accepting that they backpressure
//     the producer; the online IDS and the gap-free handoff tests use it.
//   - Publish order equals sequence order. The broker is fed from a
//     store.Notifier commit hook, which fires under the store's lock, so
//     subscribers observe records exactly as the store sequenced them —
//     the invariant snapshot-then-follow (tail.go) is built on.
package stream

import (
	"sync"
	"sync/atomic"

	"rad/internal/power"
	"rad/internal/store"
	"rad/internal/tracedb"
)

// Kind discriminates the event union.
type Kind uint8

const (
	// KindTrace events carry a committed trace record.
	KindTrace Kind = iota
	// KindPower events carry one UR3e power-telemetry sample.
	KindPower
)

// Event is one published item: a trace record or a power sample.
type Event struct {
	Kind   Kind
	Record store.Record // valid when Kind == KindTrace
	Sample power.Sample // valid when Kind == KindPower
}

// Policy selects a subscriber's overflow behaviour.
type Policy uint8

const (
	// DropOldest (the default) sheds the oldest buffered event when the
	// ring is full, counting the drop. Publishers never block.
	DropOldest Policy = iota
	// Block makes publishers wait for ring space — lossless, but a stalled
	// consumer stalls the producer (and, through the commit hook, the trace
	// hot path). Reserve it for consumers that must see every record.
	Block
)

// DefaultBuffer is the ring capacity used when SubOptions.Buffer is not
// positive.
const DefaultBuffer = 1024

// SubOptions configures a subscription.
type SubOptions struct {
	// Name labels the subscriber in Stats (e.g. a remote address).
	Name string
	// Buffer is the ring capacity; <= 0 selects DefaultBuffer.
	Buffer int
	// Policy is the overflow behaviour when the ring is full.
	Policy Policy
	// Filter restricts trace events to those matching the query (the same
	// conjunctive predicate the tracedb indexed scan applies; the zero
	// value matches everything). Filtering happens at publish time, before
	// buffering — non-matching events cost the subscriber nothing.
	Filter tracedb.Query
	// Power opts into power-sample events (trace filters do not apply to
	// them).
	Power bool
}

// Broker fans committed events out to subscribers. Safe for concurrent use;
// a nil *Broker ignores publishes, so producers can hold one unconditionally.
type Broker struct {
	mu     sync.RWMutex
	subs   []*Subscriber
	closed bool

	published atomic.Uint64 // trace events offered to the fan-out

	// Lifetime delivery accounting across all subscribers, including ones
	// that have since detached (per-subscriber counters die with the
	// subscriber; these never go backwards, so they can be exported as
	// Prometheus counters — see obs.go).
	delivered atomic.Uint64
	dropped   atomic.Uint64

	// obs, when set by Observe, registers per-subscriber metrics as
	// subscriptions come and go. nextSubID uniquifies their "id" label.
	obs       *brokerObs
	nextSubID atomic.Uint64
}

// NewBroker returns an empty broker.
func NewBroker() *Broker { return &Broker{} }

// AttachStore wires the broker to a sequencing sink's commit hook: every
// record the sink commits is published with its assigned sequence number, in
// sequence order. Both store.MemStore and tracedb.DB implement
// store.Notifier.
func (b *Broker) AttachStore(n store.Notifier) {
	n.SetOnCommit(b.PublishBatch)
}

// AttachMonitor bridges a power monitor's live sample feed into the broker
// on a background goroutine. The returned stop function cancels the bridge
// and waits for it to drain.
func (b *Broker) AttachMonitor(m *power.Monitor, buffer int) (stop func()) {
	sub := m.Subscribe(buffer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range sub.C() {
			b.PublishPower(s)
		}
	}()
	return func() {
		sub.Cancel()
		<-done
	}
}

// Publish offers one committed trace record to every subscriber.
func (b *Broker) Publish(rec store.Record) {
	if b == nil {
		return
	}
	b.published.Add(1)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.subs) == 0 {
		return
	}
	ev := Event{Kind: KindTrace, Record: rec}
	for _, s := range b.subs {
		s.offer(&ev)
	}
}

// PublishBatch offers a batch of committed records in slice order. It is the
// store.Notifier commit-hook shape; the slice is not retained.
func (b *Broker) PublishBatch(recs []store.Record) {
	if b == nil || len(recs) == 0 {
		return
	}
	b.published.Add(uint64(len(recs)))
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.subs) == 0 {
		return
	}
	var ev Event
	for i := range recs {
		ev = Event{Kind: KindTrace, Record: recs[i]}
		for _, s := range b.subs {
			s.offer(&ev)
		}
	}
}

// PublishPower offers one power sample to the subscribers that opted in.
func (b *Broker) PublishPower(s power.Sample) {
	if b == nil {
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.subs) == 0 {
		return
	}
	ev := Event{Kind: KindPower, Sample: s}
	for _, sub := range b.subs {
		sub.offer(&ev)
	}
}

// Published returns the number of trace events offered to the fan-out so
// far.
func (b *Broker) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Subscribe attaches a new subscriber. Events published after Subscribe
// returns are guaranteed to reach its ring (subject to the overflow policy).
func (b *Broker) Subscribe(opts SubOptions) *Subscriber {
	if opts.Buffer <= 0 {
		opts.Buffer = DefaultBuffer
	}
	s := &Subscriber{
		broker: b,
		name:   opts.Name,
		policy: opts.Policy,
		filter: opts.Filter,
		power:  opts.Power,
		buf:    make([]Event, opts.Buffer),
	}
	s.cond = sync.NewCond(&s.mu)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s.closed = true
		return s
	}
	b.subs = append(b.subs, s)
	if b.obs != nil {
		b.observeSubLocked(s)
	}
	return s
}

// Stats snapshots every live subscriber's counters.
func (b *Broker) Stats() []SubscriberStats {
	if b == nil {
		return nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]SubscriberStats, 0, len(b.subs))
	for _, s := range b.subs {
		out = append(out, s.Stats())
	}
	return out
}

// Close closes every subscriber and rejects future subscriptions. Publishes
// after Close are no-ops.
func (b *Broker) Close() {
	b.mu.Lock()
	subs := b.subs
	b.subs = nil
	b.closed = true
	o := b.obs
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
		if o != nil {
			o.unobserveSub(s)
		}
	}
}

// detach removes s from the fan-out list.
func (b *Broker) detach(s *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, other := range b.subs {
		if other == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			if b.obs != nil {
				b.obs.unobserveSub(s)
			}
			return
		}
	}
}

// SubscriberStats is one subscriber's delivery accounting.
type SubscriberStats struct {
	Name      string
	Delivered uint64 // events handed to the consumer
	Dropped   uint64 // events shed under DropOldest
	Buffered  int    // events waiting in the ring right now
	Capacity  int    // ring capacity
	Lagging   bool   // ring at least half full (or events already shed)
}

// Subscriber is one consumer's bounded ring buffer. Recv is safe for a
// single consumer goroutine; offers may come from any number of publishers.
type Subscriber struct {
	broker *Broker
	name   string
	policy Policy
	filter tracedb.Query
	power  bool

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []Event // ring storage
	head, n   int
	closed    bool
	delivered uint64
	dropped   uint64

	// obsLabels, when the broker is observed, holds this subscriber's
	// metric label pairs so detach can unregister its per-subscriber
	// metrics (see obs.go).
	obsLabels []string
}

// offer enqueues one event, applying the filter and the overflow policy. The
// event is copied into the ring; the pointer is not retained (publishers
// reuse the pointee across subscribers).
func (s *Subscriber) offer(ev *Event) {
	switch ev.Kind {
	case KindTrace:
		if !s.filter.Match(ev.Record) {
			return
		}
	case KindPower:
		if !s.power {
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.policy == Block && s.n == len(s.buf) && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return
	}
	if s.n == len(s.buf) { // full under DropOldest: shed the oldest
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		if s.broker != nil {
			s.broker.dropped.Add(1)
		}
	}
	s.buf[(s.head+s.n)%len(s.buf)] = *ev
	s.n++
	s.cond.Broadcast()
}

// Recv blocks until an event is available or the subscriber is closed; ok is
// false only when the subscriber is closed and its ring fully drained.
func (s *Subscriber) Recv() (ev Event, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.n == 0 {
		return Event{}, false
	}
	ev = s.buf[s.head]
	s.buf[s.head] = Event{} // release references held by the slot
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	s.delivered++
	if s.broker != nil {
		s.broker.delivered.Add(1)
	}
	s.cond.Broadcast()
	return ev, true
}

// TryRecv is Recv without blocking: ok is false when the ring is empty.
func (s *Subscriber) TryRecv() (ev Event, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	ev = s.buf[s.head]
	s.buf[s.head] = Event{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	s.delivered++
	if s.broker != nil {
		s.broker.delivered.Add(1)
	}
	s.cond.Broadcast()
	return ev, true
}

// Stats snapshots the subscriber's counters.
func (s *Subscriber) Stats() SubscriberStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubscriberStats{
		Name:      s.name,
		Delivered: s.delivered,
		Dropped:   s.dropped,
		Buffered:  s.n,
		Capacity:  len(s.buf),
		Lagging:   2*s.n >= len(s.buf) || s.dropped > 0,
	}
}

// Close detaches the subscriber from the broker and wakes any blocked
// publishers and receivers. Events already buffered remain drainable with
// Recv/TryRecv until the ring is empty. Idempotent.
func (s *Subscriber) Close() {
	s.markClosed()
	if s.broker != nil {
		s.broker.detach(s)
	}
}

// markClosed flips the closed flag and wakes every waiter. Blocked
// publishers re-check the flag and drop the event; pending Recv calls drain
// the remaining ring contents, then report closure.
func (s *Subscriber) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
