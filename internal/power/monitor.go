package power

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"rad/internal/robot"
	"rad/internal/simclock"
)

// Monitor is the RATracer power-monitoring module (Fig. 3, bottom): it
// samples the simulated UR3e's 122 RTDE properties every 40 ms while the arm
// moves and, optionally, while it idles. The paper stores quiescent-period
// entries only on days with activity; callers control that by choosing when
// to call RecordQuiescent.
//
// A Monitor is safe for concurrent use; the UR3e device simulator drives it
// from whatever goroutine serves the command.
type Monitor struct {
	model Model
	clock simclock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	samples  []Sample
	payload  float64 // currently carried payload, kg
	lastPose robot.Config
	subs     []*Subscription
}

// NewMonitor creates a monitor with the given current model, clock, and
// deterministic seed. The arm is assumed to start at the "home" pose.
func NewMonitor(model Model, clock simclock.Clock, seed uint64) *Monitor {
	home, _ := robot.Location("home")
	return &Monitor{
		model:    model,
		clock:    clock,
		rng:      rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb)),
		lastPose: home,
	}
}

// SetPayload records the mass (kg) currently carried by the gripper. Weights
// are not command arguments (§VI) — they are an artifact of what the arm
// picked up — so the monitor tracks them out of band, exactly as physics
// would.
func (m *Monitor) SetPayload(kg float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if kg < 0 {
		kg = 0
	}
	m.payload = kg
}

// Payload returns the currently tracked payload mass in kg.
func (m *Monitor) Payload() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.payload
}

// Pose returns the arm's last known joint configuration.
func (m *Monitor) Pose() robot.Config {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastPose
}

// RecordMove executes the move in simulated time: it advances the clock by
// the move's duration, appends one sample per 40 ms tick, and updates the
// tracked pose. It returns the half-open index range [start, end) of the
// appended samples so callers can attribute them to a command instance.
func (m *Monitor) RecordMove(mv *robot.Move) (start, end int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start = len(m.samples)
	dur := mv.Duration()
	for t := 0.0; t < dur; t += SamplePeriod {
		m.appendLocked(mv.StateAt(t))
		m.clock.Sleep(time.Duration(SamplePeriod * float64(time.Second)))
	}
	m.appendLocked(mv.StateAt(dur))
	m.lastPose = mv.To
	return start, len(m.samples)
}

// RecordQuiescent appends idle samples (arm at rest at its last pose) for
// the given duration, advancing the clock.
func (m *Monitor) RecordQuiescent(d time.Duration) (start, end int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start = len(m.samples)
	ticks := int(d.Seconds() / SamplePeriod)
	state := robot.State{Pos: m.lastPose}
	for i := 0; i < ticks; i++ {
		m.appendLocked(state)
		m.clock.Sleep(time.Duration(SamplePeriod * float64(time.Second)))
	}
	return start, len(m.samples)
}

// Samples returns a copy of all recorded samples.
func (m *Monitor) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Len returns the number of recorded samples.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Reset discards all recorded samples; pose and payload are kept.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = nil
}

// appendLocked builds the full 122-property record for one kinematic state
// and appends it. Caller holds m.mu.
func (m *Monitor) appendLocked(s robot.State) {
	v := make([]float64, NumProperties)
	set := func(name string, val float64) {
		if i, ok := propertyIndex[name]; ok {
			v[i] = val
		}
	}
	for j := 0; j < robot.NumJoints; j++ {
		cur := m.model.Current(j, s, m.payload) + m.rng.NormFloat64()*m.model.Joints[j].NoiseStd
		mom := m.model.Moment(j, s, m.payload)
		set(fmt.Sprintf("actual_q_%d", j), s.Pos[j]+m.rng.NormFloat64()*1e-4)
		set(fmt.Sprintf("actual_qd_%d", j), s.Vel[j]+m.rng.NormFloat64()*1e-3)
		set(fmt.Sprintf("actual_qdd_%d", j), s.Acc[j]+m.rng.NormFloat64()*1e-3)
		set(fmt.Sprintf("actual_current_%d", j), cur)
		set(fmt.Sprintf("joint_moment_%d", j), mom)
		set(fmt.Sprintf("joint_temperature_%d", j), 27.5+0.5*math.Abs(s.Vel[j])+m.rng.NormFloat64()*0.05)
		set(fmt.Sprintf("joint_voltage_%d", j), 48+m.rng.NormFloat64()*0.1)
		set(fmt.Sprintf("target_q_%d", j), s.Pos[j])
		set(fmt.Sprintf("target_qd_%d", j), s.Vel[j])
		set(fmt.Sprintf("target_current_%d", j), m.model.Current(j, s, m.payload))
	}
	// Crude but consistent TCP proxy: planar forward kinematics from the
	// first three joints at the effective reach.
	reachM := robot.EffectiveReachMM / 1000
	x := reachM * math.Cos(s.Pos[0]) * math.Cos(s.Pos[1]+s.Pos[2])
	y := reachM * math.Sin(s.Pos[0]) * math.Cos(s.Pos[1]+s.Pos[2])
	z := 0.3 + reachM*math.Sin(s.Pos[1]+s.Pos[2])
	set("actual_tcp_pose_0", x)
	set("actual_tcp_pose_1", y)
	set("actual_tcp_pose_2", z)
	set("actual_tcp_pose_3", s.Pos[3])
	set("actual_tcp_pose_4", s.Pos[4])
	set("actual_tcp_pose_5", s.Pos[5])
	speed := reachM * math.Hypot(s.Vel[0], s.Vel[1]+s.Vel[2])
	set("actual_tcp_speed_0", speed)
	set("actual_tcp_force_2", -gravity*m.payload)
	set("target_tcp_pose_0", x)
	set("target_tcp_pose_1", y)
	set("target_tcp_pose_2", z)
	set("target_tcp_speed_0", speed)

	now := m.clock.Now()
	set("timestamp_s", float64(now.UnixNano())/1e9)
	totalCur := 0.0
	for j := 0; j < robot.NumJoints; j++ {
		totalCur += math.Abs(v[propertyIndex[fmt.Sprintf("actual_current_%d", j)]])
	}
	set("robot_voltage", 48+m.rng.NormFloat64()*0.2)
	set("robot_current", 0.5+totalCur)
	set("robot_momentum", math.Abs(s.Vel[0])+math.Abs(s.Vel[1]))
	set("payload_mass", m.payload)
	set("payload_cog_z", 0.05)
	set("speed_scaling", 1)
	set("target_speed_fraction", 1)
	set("runtime_state", 2) // PLAYING
	set("safety_status", 1) // NORMAL
	set("robot_mode", 7)    // RUNNING
	for j := 0; j < robot.NumJoints; j++ {
		set(fmt.Sprintf("joint_mode_%d", j), 253) // RUNNING
	}
	set("tool_accelerometer_z", -gravity)
	set("elbow_position_x", x/2)
	set("elbow_position_y", y/2)
	set("elbow_position_z", 0.25)
	set("tool_output_voltage", 24)
	set("tcp_force_scalar", gravity*m.payload)

	sample := Sample{Time: now, Values: v}
	m.samples = append(m.samples, sample)
	m.publishLocked(sample)
}
