// Package power simulates the UR3e's real-time power telemetry: the
// joint-current model that underlies the paper's §VI analyses, the
// 122-property sample schema of the robot's real-time monitoring API, and a
// 25 Hz monitor that records samples while the arm moves or idles.
//
// The paper's power dataset was collected through the UR3e RTDE interface at
// 25 Hz (one entry every 40 ms, 122 physical properties per entry). This
// package substitutes a physics-inspired model for the physical robot:
// per-joint current is the sum of an inertial term (∝ angular acceleration ×
// effective inertia, payload included), a viscous term (∝ angular velocity),
// a gravity-load term (∝ torque needed to hold the pose under payload), and
// band-limited sensor noise. Those four terms are what produce the paper's
// observations: trajectory-specific repeatable signatures (Fig. 7a),
// solid-invariance (Fig. 7b), amplitude ∝ velocity with time stretching
// (Fig. 7c), and amplitude growth with payload (Fig. 7d).
package power

import (
	"math"

	"rad/internal/robot"
)

// SamplePeriod is the power-monitoring tick: the paper records one entry
// every 40 ms (25 Hz).
const SamplePeriod = 0.040

// JointParams are the current-model coefficients for one joint.
type JointParams struct {
	// Inertia is the joint's effective link inertia (kg·m^2) with no payload.
	Inertia float64
	// PayloadLever is the squared lever arm (m^2) converting payload mass to
	// additional inertia seen at this joint.
	PayloadLever float64
	// KAccel converts torque-producing acceleration into measured current.
	KAccel float64
	// KVel is the viscous/back-EMF coefficient converting angular velocity
	// into current.
	KVel float64
	// KGrav converts the gravity-holding torque into current. Zero for the
	// base joint, whose axis is vertical.
	KGrav float64
	// KExt scales how strongly the arm's extension (a function of the
	// shoulder and elbow angles) modulates this joint's effective inertia.
	// The base joint sees the full lever-arm effect: a stretched-out arm has
	// far more inertia about the vertical axis than a folded one, which is
	// what makes each waypoint pair's current signature unique (Fig. 7a).
	KExt float64
	// KCor is the Coriolis/centrifugal coupling coefficient: current induced
	// by the product of this joint's velocity and the shoulder+elbow
	// velocities, modulated by extension.
	KCor float64
	// NoiseStd is the sensor-noise standard deviation (same units as the
	// reported current).
	NoiseStd float64
}

// Model holds per-joint parameters for all six UR3e joints.
type Model struct {
	Joints [robot.NumJoints]JointParams
}

// DefaultModel returns coefficients tuned so that joint-1 currents for the
// paper's default 200 mm/s vial moves span roughly −1.5 to +2.5 (the paper's
// Fig. 7 y-axis, labelled mA), with the base joint free of gravity load.
func DefaultModel() Model {
	return Model{Joints: [robot.NumJoints]JointParams{
		// Joint 1: base rotation (vertical axis — no gravity term, maximal
		// extension sensitivity).
		{Inertia: 0.45, PayloadLever: 0.22, KAccel: 2.8, KVel: 0.9, KGrav: 0.0, KExt: 1.0, KCor: 0.9, NoiseStd: 0.03},
		// Joint 2: shoulder (largest gravity load).
		{Inertia: 0.60, PayloadLever: 0.12, KAccel: 2.4, KVel: 0.8, KGrav: 0.9, KExt: 0.4, KCor: 0.4, NoiseStd: 0.05},
		// Joint 3: elbow.
		{Inertia: 0.30, PayloadLever: 0.07, KAccel: 2.2, KVel: 0.7, KGrav: 0.6, KExt: 0.3, KCor: 0.3, NoiseStd: 0.04},
		// Joints 4–6: wrist.
		{Inertia: 0.08, PayloadLever: 0.03, KAccel: 1.8, KVel: 0.5, KGrav: 0.25, KExt: 0.1, KCor: 0.1, NoiseStd: 0.03},
		{Inertia: 0.06, PayloadLever: 0.02, KAccel: 1.6, KVel: 0.5, KGrav: 0.15, KExt: 0.1, KCor: 0.1, NoiseStd: 0.03},
		{Inertia: 0.04, PayloadLever: 0.01, KAccel: 1.5, KVel: 0.4, KGrav: 0.05, KExt: 0.05, KCor: 0.05, NoiseStd: 0.02},
	}}
}

// gravity acceleration (m/s^2).
const gravity = 9.81

// Current returns the noise-free current drawn by joint j in the given
// kinematic state while carrying payloadKg. Panics are avoided by clamping j.
func (m Model) Current(j int, s robot.State, payloadKg float64) float64 {
	if j < 0 {
		j = 0
	}
	if j >= robot.NumJoints {
		j = robot.NumJoints - 1
	}
	p := m.Joints[j]
	// Arm extension: how far the tool is from the base axis, as a function
	// of the shoulder and elbow angles. Inertia about a joint grows with the
	// square of that lever arm, so the effective inertia is modulated
	// between (1-KExt) and 1 of its stretched-out value.
	ext := math.Cos(s.Pos[1] + s.Pos[2])
	extMod := 1 - p.KExt*(1-ext*ext)*0.7
	inertia := (p.Inertia + payloadKg*p.PayloadLever) * extMod
	inertial := p.KAccel * inertia * s.Acc[j]
	viscous := p.KVel * s.Vel[j]
	// Coriolis/centrifugal coupling: radial motion (shoulder+elbow) while
	// this joint rotates induces torque proportional to the velocity product.
	coriolis := p.KCor * s.Vel[j] * (s.Vel[1] + s.Vel[2]) * ext
	// Gravity torque depends on how far the link hangs from vertical; use
	// the joint's own angle relative to the hanging-down reference, with the
	// payload adding to the supported mass.
	grav := p.KGrav * (1 + 0.8*payloadKg) * gravity / 10 * math.Cos(s.Pos[j])
	return inertial + viscous + coriolis + grav
}

// Moment returns the modelled joint torque (N·m) for the RTDE joint_moment
// field: the same physics without the current conversion constants.
func (m Model) Moment(j int, s robot.State, payloadKg float64) float64 {
	if j < 0 || j >= robot.NumJoints {
		return 0
	}
	p := m.Joints[j]
	inertia := p.Inertia + payloadKg*p.PayloadLever
	return inertia*s.Acc[j] + p.KGrav*(1+0.8*payloadKg)*gravity*0.1*math.Cos(s.Pos[j])
}
