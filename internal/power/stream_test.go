package power

import (
	"testing"
	"time"
)

func TestSubscriptionReceivesLiveSamples(t *testing.T) {
	m, _ := newTestMonitor(1)
	sub := m.Subscribe(1024)
	defer sub.Cancel()

	mv := testMove(t, "L0", "L1", 200)
	start, end := m.RecordMove(mv)
	want := end - start

	got := 0
	deadline := time.After(2 * time.Second)
	for got < want {
		select {
		case s, ok := <-sub.C():
			if !ok {
				t.Fatal("channel closed early")
			}
			if len(s.Values) != NumProperties {
				t.Fatalf("streamed sample has %d values", len(s.Values))
			}
			got++
		case <-deadline:
			t.Fatalf("received %d/%d samples", got, want)
		}
	}
	if sub.Dropped() != 0 {
		t.Errorf("dropped %d with a large buffer", sub.Dropped())
	}
}

func TestSubscriptionBackpressureDropsNotBlocks(t *testing.T) {
	m, _ := newTestMonitor(1)
	sub := m.Subscribe(1) // tiny buffer, nobody reading
	defer sub.Cancel()

	mv := testMove(t, "L0", "L1", 200)
	start, end := m.RecordMove(mv) // must not deadlock
	produced := uint64(end - start)
	if sub.Dropped() != produced-1 {
		t.Errorf("dropped %d of %d samples with buffer 1 and no reader", sub.Dropped(), produced)
	}
}

func TestSubscriptionCancelClosesChannel(t *testing.T) {
	m, _ := newTestMonitor(1)
	sub := m.Subscribe(4)
	sub.Cancel()
	if _, ok := <-sub.C(); ok {
		t.Error("channel open after cancel")
	}
	// Recording after cancel must not panic or deliver.
	m.RecordMove(testMove(t, "L0", "L1", 200))
}

func TestMultipleSubscribersIndependent(t *testing.T) {
	m, _ := newTestMonitor(1)
	a := m.Subscribe(1024)
	b := m.Subscribe(1)
	defer a.Cancel()
	defer b.Cancel()

	m.RecordQuiescent(time.Second) // 25 samples
	if got := len(a.C()); got != 25 {
		t.Errorf("subscriber a buffered %d, want 25", got)
	}
	if b.Dropped() != 24 {
		t.Errorf("subscriber b dropped %d, want 24", b.Dropped())
	}
}
