package power

import "sync"

// This file adds the subscription face of the UR3e's real-time interface:
// the paper's power-monitoring module runs `while True: data =
// rtde.receive(...)` at 25 Hz (Fig. 3, bottom). Subscribers receive every
// sample the monitor records, as the RTDE socket would deliver them.

// Subscription is one consumer of the live sample feed.
type Subscription struct {
	mon *Monitor
	ch  chan Sample
	// dropped counts samples lost to a slow consumer.
	mu      sync.Mutex
	dropped uint64
}

// Subscribe attaches a live consumer with the given buffer capacity
// (minimum 1). A consumer that falls behind loses samples rather than
// stalling the robot — exactly how a real-time telemetry socket behaves —
// and the loss is counted.
func (m *Monitor) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{mon: m, ch: make(chan Sample, buffer)}
	m.mu.Lock()
	m.subs = append(m.subs, sub)
	m.mu.Unlock()
	return sub
}

// C returns the sample feed. The channel closes when the subscription is
// cancelled.
func (s *Subscription) C() <-chan Sample { return s.ch }

// Dropped reports how many samples were lost to backpressure.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscription and closes its channel.
func (s *Subscription) Cancel() {
	m := s.mon
	m.mu.Lock()
	for i, other := range m.subs {
		if other == s {
			m.subs = append(m.subs[:i], m.subs[i+1:]...)
			close(s.ch)
			break
		}
	}
	m.mu.Unlock()
}

// publishLocked delivers one sample to every subscriber without blocking.
// Caller holds m.mu.
func (m *Monitor) publishLocked(sample Sample) {
	for _, sub := range m.subs {
		select {
		case sub.ch <- sample:
		default:
			sub.mu.Lock()
			sub.dropped++
			sub.mu.Unlock()
		}
	}
}
