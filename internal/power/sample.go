package power

import (
	"fmt"
	"time"

	"rad/internal/robot"
)

// NumProperties is the number of physical properties in each power-dataset
// entry; the paper's RTDE capture records 122 properties every 40 ms (§IV).
const NumProperties = 122

// propertyNames is the canonical ordering of the 122 properties. It mirrors
// the UR RTDE output recipe the paper used: per-joint actual/target
// kinematics, currents, moments, temperatures and voltages, TCP pose/speed/
// force vectors, and controller-level scalars.
var propertyNames = buildPropertyNames()

func buildPropertyNames() []string {
	names := make([]string, 0, NumProperties)
	perJoint := []string{
		"actual_q", "actual_qd", "actual_qdd", "actual_current", "joint_moment",
		"joint_temperature", "joint_voltage", "target_q", "target_qd", "target_current",
	}
	for _, base := range perJoint {
		for j := 0; j < robot.NumJoints; j++ {
			names = append(names, fmt.Sprintf("%s_%d", base, j))
		}
	}
	vec6 := []string{"actual_tcp_pose", "actual_tcp_speed", "actual_tcp_force",
		"target_tcp_pose", "target_tcp_speed"}
	for _, base := range vec6 {
		for k := 0; k < 6; k++ {
			names = append(names, fmt.Sprintf("%s_%d", base, k))
		}
	}
	singles := []string{
		"timestamp_s", "robot_voltage", "robot_current", "robot_momentum",
		"payload_mass", "payload_cog_x", "payload_cog_y", "payload_cog_z",
		"speed_scaling", "target_speed_fraction", "runtime_state", "safety_status",
		"robot_mode", "output_int_register_0",
	}
	names = append(names, singles...)
	for j := 0; j < robot.NumJoints; j++ {
		names = append(names, fmt.Sprintf("joint_mode_%d", j))
	}
	tri := []string{"tool_accelerometer", "elbow_position", "elbow_velocity"}
	for _, base := range tri {
		for _, ax := range []string{"x", "y", "z"} {
			names = append(names, base+"_"+ax)
		}
	}
	names = append(names, "tool_output_voltage", "tool_output_current", "tcp_force_scalar")
	return names
}

// PropertyNames returns the canonical names of the 122 properties, in the
// order their values appear in Sample.Values.
func PropertyNames() []string {
	out := make([]string, len(propertyNames))
	copy(out, propertyNames)
	return out
}

// propertyIndex maps a property name to its position in Sample.Values.
var propertyIndex = func() map[string]int {
	m := make(map[string]int, len(propertyNames))
	for i, n := range propertyNames {
		m[n] = i
	}
	return m
}()

// Sample is one power-dataset entry: a timestamp plus the 122 property
// values.
type Sample struct {
	Time   time.Time
	Values []float64
}

// Property returns the named property's value, reporting whether the name is
// part of the schema.
func (s Sample) Property(name string) (float64, bool) {
	i, ok := propertyIndex[name]
	if !ok || i >= len(s.Values) {
		return 0, false
	}
	return s.Values[i], true
}

// JointCurrent returns the actual current of joint j (0-based). The paper's
// §VI figures plot "joint 1", the base joint, which is index 0 here.
func (s Sample) JointCurrent(j int) float64 {
	v, _ := s.Property(fmt.Sprintf("actual_current_%d", j))
	return v
}

// JointVelocity returns the actual angular velocity of joint j.
func (s Sample) JointVelocity(j int) float64 {
	v, _ := s.Property(fmt.Sprintf("actual_qd_%d", j))
	return v
}

// CurrentSeries extracts the joint-j current time series from samples.
func CurrentSeries(samples []Sample, joint int) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.JointCurrent(joint)
	}
	return out
}
