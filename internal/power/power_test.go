package power

import (
	"fmt"
	"math"
	"testing"
	"time"

	"rad/internal/robot"
	"rad/internal/simclock"
)

func TestPropertyNamesCountAndUniqueness(t *testing.T) {
	names := PropertyNames()
	if len(names) != NumProperties {
		t.Fatalf("schema has %d properties, paper reports %d", len(names), NumProperties)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate property %q", n)
		}
		seen[n] = true
	}
}

func TestSamplePropertyLookup(t *testing.T) {
	s := Sample{Values: make([]float64, NumProperties)}
	s.Values[propertyIndex["actual_current_0"]] = 1.5
	if got := s.JointCurrent(0); got != 1.5 {
		t.Errorf("JointCurrent(0) = %v, want 1.5", got)
	}
	if _, ok := s.Property("no_such_property"); ok {
		t.Error("unknown property resolved")
	}
	if _, ok := s.Property("actual_qd_3"); !ok {
		t.Error("actual_qd_3 should resolve")
	}
}

func testMove(t *testing.T, from, to string, vmms float64) *robot.Move {
	t.Helper()
	a, ok := robot.Location(from)
	if !ok {
		t.Fatalf("location %s missing", from)
	}
	b, ok := robot.Location(to)
	if !ok {
		t.Fatalf("location %s missing", to)
	}
	mv, err := robot.NewMove(a, b, robot.LinearToAngular(vmms), robot.DefaultAccel)
	if err != nil {
		t.Fatal(err)
	}
	return mv
}

func newTestMonitor(seed uint64) (*Monitor, *simclock.Virtual) {
	clock := simclock.NewVirtual(time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC))
	return NewMonitor(DefaultModel(), clock, seed), clock
}

func TestRecordMoveSamplesAt25Hz(t *testing.T) {
	m, clock := newTestMonitor(1)
	mv := testMove(t, "L0", "L1", 200)
	before := clock.Now()
	start, end := m.RecordMove(mv)
	if start != 0 {
		t.Errorf("start = %d, want 0", start)
	}
	wantTicks := int(math.Ceil(mv.Duration()/SamplePeriod)) + 1
	if got := end - start; got < wantTicks-1 || got > wantTicks+1 {
		t.Errorf("recorded %d samples, want ≈%d", got, wantTicks)
	}
	elapsed := clock.Now().Sub(before).Seconds()
	if elapsed < mv.Duration()-SamplePeriod || elapsed > mv.Duration()+2*SamplePeriod {
		t.Errorf("clock advanced %vs for a %vs move", elapsed, mv.Duration())
	}
	if got := m.Pose(); got != mv.To {
		t.Errorf("pose after move = %v, want %v", got, mv.To)
	}
}

func TestRecordMoveDeterministicBySeed(t *testing.T) {
	a, _ := newTestMonitor(42)
	b, _ := newTestMonitor(42)
	mv := testMove(t, "L1", "L2", 200)
	mv2 := testMove(t, "L1", "L2", 200)
	a.RecordMove(mv)
	b.RecordMove(mv2)
	sa, sb := a.Samples(), b.Samples()
	if len(sa) != len(sb) {
		t.Fatalf("sample counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].JointCurrent(0) != sb[i].JointCurrent(0) {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
}

func TestCurrentSignatureRepeatable(t *testing.T) {
	// Same trajectory on two different noise seeds → highly correlated
	// currents (the Fig. 7a repeatability claim).
	a, _ := newTestMonitor(1)
	b, _ := newTestMonitor(2)
	a.RecordMove(testMove(t, "L0", "L1", 200))
	b.RecordMove(testMove(t, "L0", "L1", 200))
	ca := CurrentSeries(a.Samples(), 0)
	cb := CurrentSeries(b.Samples(), 0)
	if len(ca) != len(cb) {
		t.Fatalf("lengths differ: %d vs %d", len(ca), len(cb))
	}
	if r := pearson(ca, cb); r < 0.95 {
		t.Errorf("same-trajectory correlation = %v, want > 0.95", r)
	}
}

func TestDifferentSegmentsDistinctSignatures(t *testing.T) {
	a, _ := newTestMonitor(1)
	b, _ := newTestMonitor(1)
	a.RecordMove(testMove(t, "L0", "L1", 200))
	b.RecordMove(testMove(t, "L2", "L3", 200))
	ca := CurrentSeries(a.Samples(), 0)
	cb := CurrentSeries(b.Samples(), 0)
	n := min(len(ca), len(cb))
	if r := pearson(ca[:n], cb[:n]); r > 0.9 {
		t.Errorf("different segments correlate at %v; signatures should differ", r)
	}
}

func TestVelocityScalesAmplitudeAndStretchesTime(t *testing.T) {
	slow, _ := newTestMonitor(1)
	fast, _ := newTestMonitor(1)
	slow.RecordMove(testMove(t, "L0", "L1", 100))
	fast.RecordMove(testMove(t, "L0", "L1", 250))
	cs := CurrentSeries(slow.Samples(), 0)
	cf := CurrentSeries(fast.Samples(), 0)
	if len(cs) <= len(cf) {
		t.Errorf("100 mm/s trace (%d ticks) should be longer than 250 mm/s (%d ticks)",
			len(cs), len(cf))
	}
	if maxAbs(cf) <= maxAbs(cs) {
		t.Errorf("250 mm/s amplitude %v should exceed 100 mm/s amplitude %v",
			maxAbs(cf), maxAbs(cs))
	}
}

func TestPayloadRaisesCurrent(t *testing.T) {
	amps := make([]float64, 0, 3)
	for _, kg := range []float64{0.020, 0.500, 1.000} {
		m, _ := newTestMonitor(1)
		m.SetPayload(kg)
		m.RecordMove(testMove(t, "L0", "L1", 200))
		amps = append(amps, maxAbs(CurrentSeries(m.Samples(), 0)))
	}
	if !(amps[0] < amps[1] && amps[1] < amps[2]) {
		t.Errorf("amplitudes should grow with payload, got %v", amps)
	}
}

func TestSetPayloadClampsNegative(t *testing.T) {
	m, _ := newTestMonitor(1)
	m.SetPayload(-5)
	if got := m.Payload(); got != 0 {
		t.Errorf("negative payload stored as %v, want 0", got)
	}
}

func TestRecordQuiescentLowCurrent(t *testing.T) {
	m, clock := newTestMonitor(1)
	before := clock.Now()
	start, end := m.RecordQuiescent(2 * time.Second)
	if end-start != 50 {
		t.Errorf("2 s quiescent = %d samples, want 50", end-start)
	}
	if got := clock.Now().Sub(before); got != 2*time.Second {
		t.Errorf("clock advanced %v, want 2s", got)
	}
	for i, s := range m.Samples() {
		if v := math.Abs(s.JointVelocity(0)); v > 0.05 {
			t.Errorf("quiescent sample %d has velocity %v", i, v)
		}
	}
}

func TestResetClearsSamplesKeepsPose(t *testing.T) {
	m, _ := newTestMonitor(1)
	mv := testMove(t, "L0", "L1", 200)
	m.RecordMove(mv)
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("after Reset, Len = %d", m.Len())
	}
	if m.Pose() != mv.To {
		t.Error("Reset should not move the arm")
	}
}

func TestEverySampleHasFullSchema(t *testing.T) {
	m, _ := newTestMonitor(1)
	m.RecordMove(testMove(t, "L3", "L4", 200))
	for i, s := range m.Samples() {
		if len(s.Values) != NumProperties {
			t.Fatalf("sample %d has %d values, want %d", i, len(s.Values), NumProperties)
		}
	}
}

func TestMomentTracksPayload(t *testing.T) {
	model := DefaultModel()
	var s robot.State
	s.Pos[1] = 0 // horizontal: maximum gravity torque on the shoulder
	m0 := model.Moment(1, s, 0)
	m1 := model.Moment(1, s, 1.0)
	if m1 <= m0 {
		t.Errorf("shoulder moment with 1 kg (%v) should exceed unloaded (%v)", m1, m0)
	}
	if got := model.Moment(-1, s, 0); got != 0 {
		t.Errorf("out-of-range joint moment = %v, want 0", got)
	}
}

func TestBaseJointHasNoGravityTerm(t *testing.T) {
	model := DefaultModel()
	var rest robot.State // at rest, arbitrary pose
	rest.Pos = [robot.NumJoints]float64{0.7, -1.2, 0.5, -1.0, 0.3, 0.1}
	if got := model.Current(0, rest, 0); math.Abs(got) > 1e-9 {
		t.Errorf("base joint current at rest = %v, want 0 (vertical axis)", got)
	}
	if got := model.Current(1, rest, 0); math.Abs(got) < 1e-6 {
		t.Errorf("shoulder joint current at rest = %v, want nonzero gravity load", got)
	}
}

func TestModelClampsJointIndex(t *testing.T) {
	model := DefaultModel()
	var s robot.State
	s.Acc[0] = 1
	s.Acc[robot.NumJoints-1] = 1
	if got, want := model.Current(-3, s, 0), model.Current(0, s, 0); got != want {
		t.Errorf("negative joint index: got %v want %v", got, want)
	}
	if got, want := model.Current(99, s, 0), model.Current(robot.NumJoints-1, s, 0); got != want {
		t.Errorf("overflow joint index: got %v want %v", got, want)
	}
}

func maxAbs(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > best {
			best = a
		}
	}
	return best
}

func pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func ExamplePropertyNames() {
	names := PropertyNames()
	fmt.Println(len(names), names[0])
	// Output: 122 actual_q_0
}
