package experiments

import (
	"rad/internal/analysis/tfidf"
	"rad/internal/rad"
)

// Fig6Result is the 25×25 pairwise TF-IDF cosine-similarity matrix over the
// supervised runs, in Fig. 6 ID order (0–11 Joystick, 12–16 P1, 17–20 P2,
// 21–24 P3).
type Fig6Result struct {
	Matrix [][]float64
	Runs   []rad.RunInfo
}

// Fig6SimilarityMatrix reproduces Fig. 6 following §V-A's recipe: count
// commands per run, normalize to sum one, scale by TF-IDF, and compute all
// pairwise cosine similarities.
func Fig6SimilarityMatrix(ds *rad.Dataset) Fig6Result {
	seqs, _ := ds.SupervisedSequences()
	return Fig6Result{
		Matrix: tfidf.SimilarityMatrix(seqs),
		Runs:   ds.Runs,
	}
}

// BlockMean returns the mean similarity between two ID ranges (inclusive),
// excluding the diagonal — used to check Fig. 6's block structure, e.g. the
// joystick block IDs 0–11 or the truncated P2 pair 17–18.
func (f Fig6Result) BlockMean(aLo, aHi, bLo, bHi int) float64 {
	sum, n := 0.0, 0
	for i := aLo; i <= aHi; i++ {
		for j := bLo; j <= bHi; j++ {
			if i == j {
				continue
			}
			sum += f.Matrix[i][j]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
