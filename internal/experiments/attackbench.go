package experiments

import (
	"fmt"
	"strings"

	"rad/internal/attack"
	"rad/internal/ids"
	"rad/internal/procedure"
	"rad/internal/store"
)

// This file extends the paper's evaluation along its own future-work axis
// (§VII): benchmarking IDS against generated anomalous traces. It runs the
// standard attack suite (internal/attack) against the P2 workload and scores
// two detectors on every scenario: the paper's name-only perplexity IDS and
// the argument-aware variant the paper calls for ("our immediate goals are
// to bring command arguments into the fold").

// AttackBenchRow is one scenario's outcome.
type AttackBenchRow struct {
	Scenario string
	// Events is the number of attacker actions that actually fired.
	Events int
	// NameScore/ArgScore are the run perplexities under each detector, with
	// the corresponding thresholds.
	NameScore     float64
	NameThreshold float64
	NameFlagged   bool
	ArgScore      float64
	ArgThreshold  float64
	ArgFlagged    bool
}

// AttackBenchmark trains both detectors on benign P2 runs, executes the
// standard attack suite, and reports per-scenario detection.
func AttackBenchmark(seed uint64, order int) ([]AttackBenchRow, error) {
	if order <= 0 {
		order = 3
	}
	// Training corpus: benign P2 runs with varied seeds/solids/vials.
	trainRuns, err := benignP2Corpus(seed, 10)
	if err != nil {
		return nil, err
	}
	nameSeqs := make([][]string, len(trainRuns))
	for i, run := range trainRuns {
		nameSeqs[i] = ids.NameSequence(run)
	}
	nameDet, err := ids.TrainPerplexity(nameSeqs, order)
	if err != nil {
		return nil, err
	}
	argDet, err := ids.TrainArgAwarePerplexity(trainRuns, order, 0)
	if err != nil {
		return nil, err
	}

	var rows []AttackBenchRow
	for _, sc := range attack.StandardSuite(seed + 1000) {
		out, err := attack.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		nameScore := nameDet.Score(out.Sequence())
		argScore := argDet.ScoreRecords(out.Records)
		rows = append(rows, AttackBenchRow{
			Scenario:      sc.Name,
			Events:        len(out.Events),
			NameScore:     nameScore,
			NameThreshold: nameDet.Threshold(),
			NameFlagged:   nameScore > nameDet.Threshold(),
			ArgScore:      argScore,
			ArgThreshold:  argDet.Threshold(),
			ArgFlagged:    argScore > argDet.Threshold(),
		})
	}
	return rows, nil
}

// benignP2Corpus produces n benign P2 record streams on fresh labs.
func benignP2Corpus(seed uint64, n int) ([][]store.Record, error) {
	solids := []string{"NABH4", "CSTI", "GENTISTIC"}
	out := make([][]store.Record, 0, n)
	for i := 0; i < n; i++ {
		vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{Seed: seed + uint64(i)*13})
		if err != nil {
			return nil, err
		}
		run := fmt.Sprintf("train-%d", i)
		res := procedure.RunSolubilityN9UR(vl.Lab, procedure.Options{
			Run: run, Seed: seed + uint64(i)*7 + 1,
			Solid: solids[i%len(solids)], Vials: 1 + i%3,
		})
		recs := vl.Sink.ByRun(run)
		cerr := vl.Close()
		if res.Err != nil {
			return nil, fmt.Errorf("training run %d: %w", i, res.Err)
		}
		if cerr != nil {
			return nil, cerr
		}
		out = append(out, recs)
	}
	return out, nil
}

// RenderAttackBench formats the benchmark as a table.
func RenderAttackBench(rows []AttackBenchRow) string {
	var b strings.Builder
	b.WriteString("Attack benchmark — P2 workload, trigram perplexity IDS\n")
	b.WriteString("(name-only = the paper's §V-B detector; arg-aware = §VII's \"bring command arguments into the fold\")\n")
	fmt.Fprintf(&b, "%-18s %7s %12s %9s %12s %9s\n",
		"scenario", "events", "name-ppl", "flagged", "arg-ppl", "flagged")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %7d %12.3f %9v %12.3f %9v\n",
			r.Scenario, r.Events, r.NameScore, r.NameFlagged, r.ArgScore, r.ArgFlagged)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "thresholds: name %.3f, arg-aware %.3f\n",
			rows[0].NameThreshold, rows[0].ArgThreshold)
	}
	return b.String()
}
