package experiments

import (
	"strings"
	"testing"
)

// TestAttackBenchmarkShape asserts the benchmark's headline findings: the
// benign control passes both detectors, every attack family is caught by at
// least the argument-aware detector, and the speed-tamper attack — which
// leaves the command-name sequence untouched — separates the two detectors.
func TestAttackBenchmarkShape(t *testing.T) {
	rows, err := AttackBenchmark(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want control + 6 attacks", len(rows))
	}
	byName := map[string]AttackBenchRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}

	control := byName["benign-control"]
	if control.NameFlagged || control.ArgFlagged {
		t.Errorf("benign control flagged: %+v", control)
	}
	if control.Events != 0 {
		t.Errorf("benign control has %d events", control.Events)
	}

	for _, name := range []string{"injection", "replay", "speed-tamper", "parameter-tamper", "reorder", "drop"} {
		r := byName[name]
		if r.Events == 0 {
			t.Errorf("%s: attack never fired", name)
			continue
		}
		if !r.ArgFlagged {
			t.Errorf("%s: argument-aware detector missed it (%.3f <= %.3f)",
				name, r.ArgScore, r.ArgThreshold)
		}
	}

	// The paper's §VII motivation, demonstrated: a pure argument tamper is
	// invisible to the name-only detector.
	st := byName["speed-tamper"]
	if st.NameFlagged {
		t.Errorf("speed-tamper flagged by name-only detector (%.3f > %.3f); the attack should be invisible to names",
			st.NameScore, st.NameThreshold)
	}
	if !st.ArgFlagged {
		t.Errorf("speed-tamper missed by argument-aware detector")
	}

	out := RenderAttackBench(rows)
	if !strings.Contains(out, "speed-tamper") || !strings.Contains(out, "thresholds") {
		t.Errorf("render output incomplete:\n%s", out)
	}
}

// TestAttackBenchmarkInvalidOrderDefaults ensures order <= 0 falls back.
func TestAttackBenchmarkInvalidOrderDefaults(t *testing.T) {
	rows, err := AttackBenchmark(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
}
