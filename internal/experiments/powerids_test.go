package experiments

import (
	"strings"
	"testing"
)

// TestPowerIDSBenchmark asserts the RQ3 claims quantitatively: benign
// repeats of enrolled motions are recognized, while velocity changes,
// hidden payloads, and unknown trajectories are flagged — all from joint-1
// currents alone.
func TestPowerIDSBenchmark(t *testing.T) {
	rows, err := PowerIDSBenchmark(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d probes, want 9 (5 repeats + 2 velocities + payload + unknown)", len(rows))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("probe %q: expected anomalous=%v, detector said %v (%s)",
				r.Probe, r.Expect, r.Match.Anomalous, r.Match.Reason)
		}
	}
	// The hidden payload must be caught by amplitude, not shape: the
	// trajectory is identical to the enrolled one.
	for _, r := range rows {
		if r.Probe == "L0-L1 with hidden 1 kg" {
			if r.Match.Label != "L0-L1" || r.Match.Correlation < 0.95 {
				t.Errorf("payload probe should still match L0-L1's shape: %+v", r.Match)
			}
			if !strings.Contains(r.Match.Reason, "amplitude") {
				t.Errorf("payload probe flagged for %q, want an amplitude reason", r.Match.Reason)
			}
		}
	}
	out := RenderPowerIDS(rows)
	if !strings.Contains(out, "correct verdicts: 9/9") {
		t.Errorf("render:\n%s", out)
	}
}
