package experiments

import (
	"fmt"
	"math"
	"strings"
)

// This file renders experiment results as text in the shape of the paper's
// tables and figures, for cmd/radbench and EXPERIMENTS.md.

// RenderFig4 formats the response-time experiment as one row of box-plot
// statistics per (mode, sequence).
func RenderFig4(res Fig4Result) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — N9 ARM response time (ms) per button-press sequence\n")
	fmt.Fprintf(&b, "%-8s %-4s %8s %8s %8s %8s %8s %9s\n",
		"mode", "seq", "Q1", "median", "Q3", "whisk-hi", "mean", "outliers")
	for _, mode := range res.Modes {
		for i, box := range mode.Boxes {
			fmt.Fprintf(&b, "%-8s %-4d %8.2f %8.2f %8.2f %8.2f %8.2f %9d\n",
				mode.Mode, i+1, box.Q1, box.Med, box.Q3, box.HiWhisker, box.Mean, len(box.Outliers))
		}
		fmt.Fprintf(&b, "%-8s overall mean: %.2f ms\n", mode.Mode, mode.Mean)
	}
	return b.String()
}

// RenderFig5a formats the command-wise distribution with per-device legend
// totals.
func RenderFig5a(res Fig5aResult) string {
	var b strings.Builder
	b.WriteString("Fig. 5(a) — command-wise distribution of trace objects\n")
	fmt.Fprintf(&b, "total trace objects: %d\n", res.Total)
	b.WriteString("legend: ")
	first := true
	for dev, n := range res.DeviceTotals {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (%d)", dev, n)
		first = false
	}
	b.WriteString("\n")
	maxCount := 0
	for _, cc := range res.Commands {
		if cc.Count > maxCount {
			maxCount = cc.Count
		}
	}
	curDev := ""
	for _, cc := range res.Commands {
		if cc.Device != curDev {
			curDev = cc.Device
			fmt.Fprintf(&b, "-- %s --\n", curDev)
		}
		name := cc.Name
		if cc.Readable != cc.Name {
			name = fmt.Sprintf("%s (%s)", cc.Name, cc.Readable)
		}
		fmt.Fprintf(&b, "  %-42s %8d %s\n", name, cc.Count, bar(cc.Count, maxCount, 30))
	}
	return b.String()
}

// RenderFig5b formats the top n-gram lists.
func RenderFig5b(tables []NGramTable) string {
	var b strings.Builder
	b.WriteString("Fig. 5(b) — top n-grams in RAD\n")
	for _, tbl := range tables {
		fmt.Fprintf(&b, "-- %d-grams --\n", tbl.N)
		for _, c := range tbl.Top {
			fmt.Fprintf(&b, "  %-60s %8d\n", c.Key(), c.Times)
		}
	}
	return b.String()
}

// RenderFig6 draws the 25×25 similarity matrix as a text heatmap.
func RenderFig6(res Fig6Result) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — pairwise TF-IDF similarity of the 25 supervised runs\n")
	b.WriteString("(0–11 Joystick/P4, 12–16 P1, 17–20 P2, 21–24 P3; darker = more similar)\n    ")
	for j := range res.Matrix {
		fmt.Fprintf(&b, "%3d", j)
	}
	b.WriteString("\n")
	for i, row := range res.Matrix {
		marker := " "
		if res.Runs[i].Anomalous {
			marker = "*"
		}
		fmt.Fprintf(&b, "%2d%s ", i, marker)
		for _, v := range row {
			b.WriteString(" " + heatChar(v) + " ")
		}
		fmt.Fprintf(&b, "  %s %s\n", res.Runs[i].Procedure, res.Runs[i].Note)
	}
	b.WriteString("(* = anomalous run; scale: ' ' <0.5, '.' <0.65, ':' <0.8, 'o' <0.9, 'O' <0.97, '#' ≥0.97)\n")
	return b.String()
}

func heatChar(v float64) string {
	switch {
	case v >= 0.97:
		return "#"
	case v >= 0.9:
		return "O"
	case v >= 0.8:
		return "o"
	case v >= 0.65:
		return ":"
	case v >= 0.5:
		return "."
	default:
		return " "
	}
}

// RenderTableI formats Table I exactly as the paper lays it out.
func RenderTableI(rows []TableIRow) string {
	name := func(n int) string {
		switch n {
		case 2:
			return "Bigram"
		case 3:
			return "Trigram"
		case 4:
			return "Four-gram"
		default:
			return fmt.Sprintf("%d-gram", n)
		}
	}
	var b strings.Builder
	b.WriteString("Table I — perplexity + Jenks anomaly classification (5-fold CV)\n")
	fmt.Fprintf(&b, "%-28s", "Metrics")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12s", name(r.N))
	}
	b.WriteString("\n")
	writeRow := func(label string, f func(TableIRow) string) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%12s", f(r))
		}
		b.WriteString("\n")
	}
	writeRow("Accuracy", func(r TableIRow) string { return fmt.Sprintf("%.0f%%", r.Accuracy*100) })
	writeRow("Weighted accuracy", func(r TableIRow) string { return fmt.Sprintf("%.2f%%", r.WeightedAccuracy*100) })
	writeRow("Precision", func(r TableIRow) string { return fmt.Sprintf("%.2f", r.Precision) })
	writeRow("Recall", func(r TableIRow) string { return fmt.Sprintf("%.2f", r.Recall) })
	writeRow("F1 score", func(r TableIRow) string { return fmt.Sprintf("%.2f", r.F1) })
	writeRow("True positives (negatives)", func(r TableIRow) string {
		return fmt.Sprintf("%d (%d)", r.Confusion.TP, r.Confusion.TN)
	})
	writeRow("False positives (negatives)", func(r TableIRow) string {
		return fmt.Sprintf("%d (%d)", r.Confusion.FP, r.Confusion.FN)
	})
	return b.String()
}

// RenderSeries draws labelled current series as sparklines with summary
// numbers, the text rendition of the Fig. 7 subplots.
func RenderSeries(title string, series []Series) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %-12s %4d ticks (%5.2f s)  peak %6.3f  %s\n",
			s.Label, len(s.Current), s.Duration(), maxAbsOf(s.Current), sparkline(s.Current, 60))
	}
	return b.String()
}

// RenderCorrelationMatrix formats a labelled correlation matrix.
func RenderCorrelationMatrix(title string, labels []string, m [][]float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, l := range labels {
		fmt.Fprintf(&b, "%10s", l)
	}
	b.WriteString("\n")
	for i, row := range m {
		fmt.Fprintf(&b, "%-12s", labels[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%10.4f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func maxAbsOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > best {
			best = a
		}
	}
	return best
}

// sparkline downsamples xs to width characters using a small glyph ramp
// spanning [-max, +max].
func sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("_.-~^*")
	limit := maxAbsOf(xs)
	if limit == 0 {
		limit = 1
	}
	var out []rune
	step := float64(len(xs)) / float64(width)
	if step < 1 {
		step = 1
	}
	for pos := 0.0; int(pos) < len(xs) && len(out) < width; pos += step {
		v := xs[int(pos)]
		idx := int((v + limit) / (2 * limit) * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		out = append(out, ramp[idx])
	}
	return string(out)
}

// bar renders a proportional bar of at most width characters.
func bar(v, max, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := v * width / max
	if n == 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}
