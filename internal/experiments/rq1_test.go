package experiments

import (
	"strings"
	"testing"
)

// TestRQ1Classification pins the RQ1 result: nearly every run is identified,
// and the single systematic confusion is run 12 — the P1 run that used the
// joystick and stopped before dosing, which Fig. 6 already shows clustering
// with the joystick block.
func TestRQ1Classification(t *testing.T) {
	ds := dataset(t)
	res, err := RQ1Classification(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 25 {
		t.Fatalf("classified %d runs", res.Total)
	}
	if res.Correct < 24 {
		t.Errorf("only %d/25 identified", res.Correct)
	}
	for _, r := range res.Rows {
		if r.Correct {
			continue
		}
		if r.ID != 12 {
			t.Errorf("unexpected misclassification: run %d (%s → %s)", r.ID, r.Truth, r.Predicted)
		}
		if r.Predicted != "P4" {
			t.Errorf("run 12 classified as %s, want P4 (joystick-like)", r.Predicted)
		}
	}
	out := RenderRQ1(res)
	if !strings.Contains(out, "correct: 24/25") && !strings.Contains(out, "correct: 25/25") {
		t.Errorf("render:\n%s", out)
	}
}
