// Package experiments implements one harness per table and figure in the
// paper's evaluation: each function regenerates the corresponding result
// against the simulated substrate and returns it in a structured form that
// cmd/radbench renders in the paper's format and EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"strconv"
	"time"

	"rad/internal/analysis/stats"
	"rad/internal/device"
	"rad/internal/device/c9"
	"rad/internal/middlebox"
	"rad/internal/simclock"
	"rad/internal/tracer"
)

// Fig4Config sizes the response-time experiment. The paper replays six
// joystick button-press sequences per mode.
type Fig4Config struct {
	// Sequences is the number of button-press sequences (paper: 6).
	Sequences int
	// CommandsPerSequence is the number of ARM commands per sequence.
	CommandsPerSequence int
	// Seed drives jitter.
	Seed uint64
	// Modes limits which deployment modes run (nil = all three).
	Modes []string
}

// Fig4Mode holds one deployment mode's per-sequence response-time box plots.
type Fig4Mode struct {
	Mode string
	// Boxes has one entry per button-press sequence; values in
	// milliseconds, the paper's y-axis.
	Boxes []stats.Box
	// Mean is the mode's overall average response time in ms.
	Mean float64
}

// Fig4Result is the data behind Fig. 4's box plots.
type Fig4Result struct {
	Modes []Fig4Mode
}

// Fig4 deployment mode names.
const (
	ModeDirect = "DIRECT"
	ModeRemote = "REMOTE"
	ModeCloud  = "CLOUD"
)

// Fig4ResponseTime measures the response time of the N9's ARM command under
// the three deployments of Fig. 4: DIRECT (device local, trace upload off
// the latency path), REMOTE (command round-trips through the middlebox over
// real TCP with a LAN profile), and CLOUD (the same path with the Azure
// WAN profile of footnote 1). All three run over the loopback interface in
// real time; the emulated network profiles supply the LAN/WAN character.
func Fig4ResponseTime(cfg Fig4Config) (Fig4Result, error) {
	if cfg.Sequences <= 0 {
		cfg.Sequences = 6
	}
	if cfg.CommandsPerSequence <= 0 {
		cfg.CommandsPerSequence = 30
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = []string{ModeDirect, ModeRemote, ModeCloud}
	}
	var out Fig4Result
	for _, mode := range modes {
		m, err := fig4Mode(mode, cfg)
		if err != nil {
			return Fig4Result{}, err
		}
		out.Modes = append(out.Modes, m)
	}
	return out, nil
}

func fig4Mode(mode string, cfg Fig4Config) (Fig4Mode, error) {
	clock := simclock.Real{}
	core := middlebox.NewCore(clock, nil) // latency run: no trace sink needed
	arm := c9.New(device.NewEnv(clock, cfg.Seed+1))
	core.Register(arm)

	var profile middlebox.NetworkProfile
	switch mode {
	case ModeDirect, ModeRemote:
		profile = middlebox.LANProfile()
	case ModeCloud:
		profile = middlebox.CloudProfile()
	default:
		return Fig4Mode{}, fmt.Errorf("experiments: unknown Fig4 mode %q", mode)
	}

	srv := middlebox.NewServer(core, profile, cfg.Seed+2)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return Fig4Mode{}, err
	}
	defer srv.Close()

	transport, err := tracer.DialTCP(addr)
	if err != nil {
		return Fig4Mode{}, err
	}
	sessMode := tracer.ModeRemote
	if mode == ModeDirect {
		sessMode = tracer.ModeDirect
	}
	sess := tracer.NewSession(transport, clock, tracer.Config{DefaultMode: sessMode})
	defer sess.Close()

	var local *c9.C9
	if mode == ModeDirect {
		// DIRECT: the device stays wired to the lab computer.
		local = c9.New(device.NewEnv(clock, cfg.Seed+3))
		sess.AttachLocal(local)
	}
	dev, err := sess.Virtual(device.C9)
	if err != nil {
		return Fig4Mode{}, err
	}
	if _, err := dev.Exec(device.Command{Name: device.Init}); err != nil {
		return Fig4Mode{}, err
	}

	result := Fig4Mode{Mode: mode}
	var all []float64
	for seq := 0; seq < cfg.Sequences; seq++ {
		lat := make([]float64, 0, cfg.CommandsPerSequence)
		for k := 0; k < cfg.CommandsPerSequence; k++ {
			x := strconv.Itoa((seq*7 + k) % 200)
			start := time.Now()
			if _, err := dev.Exec(device.Command{Name: "ARM", Args: []string{x, "0", "0"}}); err != nil {
				return Fig4Mode{}, fmt.Errorf("experiments: fig4 ARM: %w", err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			lat = append(lat, ms)
		}
		result.Boxes = append(result.Boxes, stats.BoxStats(lat))
		all = append(all, lat...)
	}
	result.Mean = stats.Mean(all)
	return result, nil
}
