package experiments

import (
	"fmt"
	"strings"

	"rad/internal/ids"
	"rad/internal/rad"
)

// This file implements the ablation studies DESIGN.md commits to: the
// smoothing constant and model order of the perplexity IDS, the space the
// Jenks split runs in, and the streaming detector's window size. Each
// ablation runs against the dataset's 25 supervised runs, the same corpus as
// Table I.

// SmoothingRow is one smoothing constant's Table I summary (trigram).
type SmoothingRow struct {
	Alpha    float64
	Recall   float64
	Accuracy float64
	FP       int
	FN       int
}

// AblationSmoothing sweeps the add-α smoothing constant at order 3. Large α
// flattens the distribution (short benign runs with rare-but-seen
// transitions get crushed toward the anomaly class); tiny α over-rewards
// memorized transitions. DefaultAlpha sits in the basin where recall stays
// perfect.
func AblationSmoothing(ds *rad.Dataset, alphas []float64) []SmoothingRow {
	if len(alphas) == 0 {
		alphas = []float64{1.0, 0.5, 0.1, 0.01, 0.001}
	}
	rows := make([]SmoothingRow, 0, len(alphas))
	for _, alpha := range alphas {
		res := TableIPerplexityIDS(ds, TableIConfig{Orders: []int{3}, Alpha: alpha})
		r := res[0]
		rows = append(rows, SmoothingRow{
			Alpha: alpha, Recall: r.Recall, Accuracy: r.Accuracy,
			FP: r.Confusion.FP, FN: r.Confusion.FN,
		})
	}
	return rows
}

// JenksSpaceRow compares the two clustering spaces for one model order.
type JenksSpaceRow struct {
	N                        int
	LogRecall, LinearRecall  float64
	LogAccuracy, LinAccuracy float64
}

// AblationJenksSpace compares Jenks clustering on log-perplexity (the
// default) against raw perplexity for every model order. In linear space a
// single extreme run (run 17, which crashed almost immediately) forms its
// own class and masks the other two anomalies.
func AblationJenksSpace(ds *rad.Dataset) []JenksSpaceRow {
	logRows := TableIPerplexityIDS(ds, TableIConfig{})
	linRows := TableIPerplexityIDS(ds, TableIConfig{LinearJenks: true})
	out := make([]JenksSpaceRow, 0, len(logRows))
	for i := range logRows {
		out = append(out, JenksSpaceRow{
			N:         logRows[i].N,
			LogRecall: logRows[i].Recall, LinearRecall: linRows[i].Recall,
			LogAccuracy: logRows[i].Accuracy, LinAccuracy: linRows[i].Accuracy,
		})
	}
	return out
}

// WindowRow summarizes one streaming window size over the 25 supervised
// runs.
type WindowRow struct {
	Window int
	// Detected counts anomalous runs alerted on (of 3).
	Detected int
	// FalseAlerts counts benign runs that alerted.
	FalseAlerts int
	// MeanDelay is the mean number of commands between a detected run's
	// first attacker-visible command breach and the alert, over detected
	// runs (NaN-free: -1 when nothing was detected).
	MeanDelay float64
}

// AblationStreamWindow sweeps the streaming detector's window size. Small
// windows alert fast but carry noisy estimates; large windows smooth the
// estimate but dilute a short attack and delay the alert.
func AblationStreamWindow(ds *rad.Dataset, windows []int) ([]WindowRow, error) {
	if len(windows) == 0 {
		windows = []int{16, 32, 64, 128}
	}
	seqs, anomalous := ds.SupervisedSequences()
	var benign [][]string
	for i, seq := range seqs {
		if !anomalous[i] {
			benign = append(benign, seq)
		}
	}
	det, err := ids.TrainPerplexity(benign, 3)
	if err != nil {
		return nil, err
	}
	rows := make([]WindowRow, 0, len(windows))
	for _, w := range windows {
		row := WindowRow{Window: w, MeanDelay: -1}
		totalDelay, detected := 0, 0
		for i, seq := range seqs {
			stream := det.NewStream(w)
			alertAt := -1
			for pos, cmd := range seq {
				if _, alert := stream.Observe(cmd); alert {
					alertAt = pos
					break
				}
			}
			switch {
			case alertAt >= 0 && anomalous[i]:
				row.Detected++
				detected++
				totalDelay += len(seq) - alertAt
			case alertAt >= 0:
				row.FalseAlerts++
			}
		}
		if detected > 0 {
			row.MeanDelay = float64(totalDelay) / float64(detected)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblations formats all three ablation studies.
func RenderAblations(smoothing []SmoothingRow, jenksSpace []JenksSpaceRow, windowRows []WindowRow) string {
	var b strings.Builder
	b.WriteString("Ablation — add-α smoothing constant (trigram Table I)\n")
	fmt.Fprintf(&b, "%10s %8s %10s %4s %4s\n", "alpha", "recall", "accuracy", "FP", "FN")
	for _, r := range smoothing {
		fmt.Fprintf(&b, "%10.3f %8.2f %9.0f%% %4d %4d\n", r.Alpha, r.Recall, r.Accuracy*100, r.FP, r.FN)
	}
	b.WriteString("\nAblation — Jenks clustering space (log vs. linear perplexity)\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "order", "log recall", "lin recall", "log acc", "lin acc")
	for _, r := range jenksSpace {
		fmt.Fprintf(&b, "%10d %12.2f %12.2f %11.0f%% %11.0f%%\n",
			r.N, r.LogRecall, r.LinearRecall, r.LogAccuracy*100, r.LinAccuracy*100)
	}
	b.WriteString("\nAblation — streaming window size (trigram, 25 supervised runs)\n")
	fmt.Fprintf(&b, "%10s %10s %13s %12s\n", "window", "detected", "false alerts", "mean commands-left-at-alert")
	for _, r := range windowRows {
		fmt.Fprintf(&b, "%10d %8d/3 %13d %12.1f\n", r.Window, r.Detected, r.FalseAlerts, r.MeanDelay)
	}
	return b.String()
}
