package experiments

import (
	"fmt"
	"strings"

	"rad/internal/device"
	"rad/internal/ids"
)

// This file makes §VI's RQ3 quantitative: "can we use power monitoring to
// identify the same kinds of patterns identified via command tracing?" The
// benchmark enrols the joint-1 current signatures of known motions into the
// power detector, then replays benign repeats and manipulated variants
// (velocity changes, hidden payloads, unknown trajectories) and scores the
// detector's verdicts. None of the probes touch the command stream — the
// detector sees currents only, which is the side channel's whole point.

// PowerIDSRow is one probe's outcome.
type PowerIDSRow struct {
	Probe string
	// Expect is the ground truth: should the detector flag it?
	Expect bool
	Match  ids.Match
	// Correct reports Match.Anomalous == Expect.
	Correct bool
}

// PowerIDSBenchmark enrols the five Fig. 7(a) segments at the default
// velocity, then probes the detector.
func PowerIDSBenchmark(seed uint64) ([]PowerIDSRow, error) {
	det := ids.NewPowerDetector()

	// Enrolment: each L_i → L_{i+1} segment at the default velocity.
	enrol, err := segmentCurrents(seed, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: powerids enrolment: %w", err)
	}
	for i, cur := range enrol {
		det.Learn(fmt.Sprintf("L%d-L%d", i, i+1), cur)
	}

	var rows []PowerIDSRow
	score := func(probe string, expectAnomalous bool, cur []float64) error {
		m, err := det.Classify(cur)
		if err != nil {
			return err
		}
		rows = append(rows, PowerIDSRow{
			Probe: probe, Expect: expectAnomalous, Match: m,
			Correct: m.Anomalous == expectAnomalous,
		})
		return nil
	}

	// Benign repeats on a different day (fresh sensor noise).
	repeats, err := segmentCurrents(seed+991, 0, 0)
	if err != nil {
		return nil, err
	}
	for i, cur := range repeats {
		if err := score(fmt.Sprintf("repeat L%d-L%d", i, i+1), false, cur); err != nil {
			return nil, err
		}
	}

	// Velocity manipulation: the same segments driven at half and 1.5×
	// speed (a speed attack's physical effect — invisible to command names,
	// visible in the current's amplitude and duration).
	for _, vel := range []float64{100, 300} {
		fast, err := segmentCurrents(seed+5, vel, 0)
		if err != nil {
			return nil, err
		}
		if err := score(fmt.Sprintf("L0-L1 at %.0f mm/s", vel), true, fast[0]); err != nil {
			return nil, err
		}
	}

	// Hidden payload: the first segment carrying 1 kg nobody declared.
	loaded, err := segmentCurrents(seed+7, 0, 1.0)
	if err != nil {
		return nil, err
	}
	if err := score("L0-L1 with hidden 1 kg", true, loaded[0]); err != nil {
		return nil, err
	}

	// Unknown trajectory: a motion the detector never saw.
	unknown, err := strayCurrent(seed + 9)
	if err != nil {
		return nil, err
	}
	if err := score("unknown trajectory", true, unknown); err != nil {
		return nil, err
	}
	return rows, nil
}

// segmentCurrents executes the five L0..L5 segments and returns their
// joint-1 currents. velMMS == 0 uses the default velocity; payloadKg > 0 is
// gripped before the sweep.
func segmentCurrents(seed uint64, velMMS, payloadKg float64) ([][]float64, error) {
	vl, arm, err := powerLab(seed)
	if err != nil {
		return nil, err
	}
	defer vl.Close()
	if payloadKg > 0 {
		vl.Lab.RawUR3e.SetNextPayload(payloadKg)
		if _, err := arm.Exec(device.Command{Name: "close_gripper"}); err != nil {
			return nil, err
		}
	}
	if _, err := capture(vl, moveTo(arm, "L0", velMMS)); err != nil {
		return nil, err
	}
	var out [][]float64
	for i := 1; i <= 5; i++ {
		cur, err := capture(vl, moveTo(arm, fmt.Sprintf("L%d", i), velMMS))
		if err != nil {
			return nil, err
		}
		out = append(out, cur)
	}
	return out, nil
}

// strayCurrent records a trajectory outside the enrolled set.
func strayCurrent(seed uint64) ([]float64, error) {
	vl, arm, err := powerLab(seed)
	if err != nil {
		return nil, err
	}
	defer vl.Close()
	if _, err := capture(vl, moveTo(arm, "camera_station", 0)); err != nil {
		return nil, err
	}
	return capture(vl, func() error {
		if err := moveTo(arm, "quantos_tray", 0)(); err != nil {
			return err
		}
		return moveTo(arm, "above_rack", 0)()
	})
}

// RenderPowerIDS formats the benchmark.
func RenderPowerIDS(rows []PowerIDSRow) string {
	var b strings.Builder
	b.WriteString("Power side-channel IDS benchmark (RQ3) — joint-1 currents only\n")
	fmt.Fprintf(&b, "%-24s %8s %-10s %8s %8s %-9s %s\n",
		"probe", "expect", "best match", "r", "amp", "verdict", "reason")
	correct := 0
	for _, r := range rows {
		verdict := "benign"
		if r.Match.Anomalous {
			verdict = "ANOMALY"
		}
		expect := "benign"
		if r.Expect {
			expect = "anomaly"
		}
		if r.Correct {
			correct++
		}
		fmt.Fprintf(&b, "%-24s %8s %-10s %8.3f %8.2f %-9s %s\n",
			r.Probe, expect, r.Match.Label, r.Match.Correlation, r.Match.AmplitudeRatio,
			verdict, r.Match.Reason)
	}
	fmt.Fprintf(&b, "correct verdicts: %d/%d\n", correct, len(rows))
	return b.String()
}
