package experiments

import (
	"testing"

	"rad/internal/analysis/stats"
	"rad/internal/power"
	"rad/internal/robot"
)

// TestAllJointsRepeatable checks the paper's closing §VI claim: "while the
// results shown here are for only one of the six UR3e joints, we observe
// similar correlations in the current profiles collected from the other
// five joints." Two executions of the same move must correlate strongly on
// every joint that actually moves.
func TestAllJointsRepeatable(t *testing.T) {
	captureJoints := func(seed uint64) [][]float64 {
		vl, arm, err := powerLab(seed)
		if err != nil {
			t.Fatal(err)
		}
		defer vl.Close()
		if _, err := capture(vl, moveTo(arm, "L0", 0)); err != nil {
			t.Fatal(err)
		}
		vl.Lab.Monitor.Reset()
		if _, err := capture(vl, moveTo(arm, "L1", 0)); err != nil {
			t.Fatal(err)
		}
		samples := vl.Lab.Monitor.Samples()
		out := make([][]float64, robot.NumJoints)
		for j := 0; j < robot.NumJoints; j++ {
			out[j] = power.CurrentSeries(samples, j)
		}
		return out
	}
	a := captureJoints(1)
	b := captureJoints(2) // different noise seed, same trajectory

	from, _ := robot.Location("L0")
	to, _ := robot.Location("L1")
	for j := 0; j < robot.NumJoints; j++ {
		excursion := to[j] - from[j]
		if excursion < 0 {
			excursion = -excursion
		}
		n := min(len(a[j]), len(b[j]))
		if n == 0 {
			t.Fatalf("joint %d: empty capture", j+1)
		}
		r := stats.Pearson(a[j][:n], b[j][:n])
		// Joints with substantial excursions must repeat strongly; joints
		// that barely move carry noise-dominated currents (their signal is
		// below the sensor floor), so only a positive correlation from their
		// gravity/coupling terms is expected.
		switch {
		case excursion >= 0.3 && r < 0.9:
			t.Errorf("joint %d (excursion %.2f rad): repeatability r=%v, want > 0.9",
				j+1, excursion, r)
		case excursion > 0 && r < 0.2:
			t.Errorf("joint %d (excursion %.2f rad): repeatability r=%v, want positive",
				j+1, excursion, r)
		}
	}
}
