package experiments

import (
	"fmt"
	"strings"

	"rad/internal/ids"
	"rad/internal/parallel"
	"rad/internal/rad"
)

// This file formalizes §V-A's RQ1 — "can we identify Hein Lab's different
// scientific procedures in the RAD?" — as a leave-one-out classification
// experiment over the 25 supervised runs: each run is classified by TF-IDF
// nearest centroid against the other 24.

// RQ1Row is one run's classification outcome.
type RQ1Row struct {
	ID         int
	Truth      string
	Predicted  string
	Similarity float64
	Correct    bool
	Note       string
}

// RQ1Result summarizes the experiment.
type RQ1Result struct {
	Rows    []RQ1Row
	Correct int
	Total   int
}

// RQ1Classification runs the leave-one-out protocol. The 25 hold-out
// iterations are independent (each trains its own classifier on the other
// 24 runs), so they fan out across GOMAXPROCS workers; rows come back in
// run-ID order regardless of worker count.
func RQ1Classification(ds *rad.Dataset) (RQ1Result, error) {
	seqs, _ := ds.SupervisedSequences()
	rows, err := parallel.Map(seqs, 0, func(i int, seq []string) (RQ1Row, error) {
		trainSeqs := make([][]string, 0, len(seqs)-1)
		trainLabels := make([]string, 0, len(seqs)-1)
		for j := range seqs {
			if j == i {
				continue
			}
			trainSeqs = append(trainSeqs, seqs[j])
			trainLabels = append(trainLabels, ds.Runs[j].Procedure)
		}
		clf, err := ids.TrainClassifier(trainSeqs, trainLabels)
		if err != nil {
			return RQ1Row{}, err
		}
		got, sim := clf.Classify(seq)
		return RQ1Row{
			ID: i, Truth: ds.Runs[i].Procedure, Predicted: got,
			Similarity: sim, Correct: got == ds.Runs[i].Procedure,
			Note: ds.Runs[i].Note,
		}, nil
	})
	if err != nil {
		return RQ1Result{}, err
	}
	res := RQ1Result{Rows: rows, Total: len(rows)}
	for _, row := range rows {
		if row.Correct {
			res.Correct++
		}
	}
	return res, nil
}

// RenderRQ1 formats the experiment, listing only the misclassifications in
// detail.
func RenderRQ1(res RQ1Result) string {
	var b strings.Builder
	b.WriteString("RQ1 — identifying procedures (leave-one-out TF-IDF nearest centroid)\n")
	fmt.Fprintf(&b, "correct: %d/%d\n", res.Correct, res.Total)
	for _, r := range res.Rows {
		if r.Correct {
			continue
		}
		fmt.Fprintf(&b, "  run %2d: %s classified as %s (sim %.2f) — %s\n",
			r.ID, r.Truth, r.Predicted, r.Similarity, r.Note)
	}
	return b.String()
}
