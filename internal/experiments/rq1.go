package experiments

import (
	"fmt"
	"strings"

	"rad/internal/ids"
	"rad/internal/rad"
)

// This file formalizes §V-A's RQ1 — "can we identify Hein Lab's different
// scientific procedures in the RAD?" — as a leave-one-out classification
// experiment over the 25 supervised runs: each run is classified by TF-IDF
// nearest centroid against the other 24.

// RQ1Row is one run's classification outcome.
type RQ1Row struct {
	ID         int
	Truth      string
	Predicted  string
	Similarity float64
	Correct    bool
	Note       string
}

// RQ1Result summarizes the experiment.
type RQ1Result struct {
	Rows    []RQ1Row
	Correct int
	Total   int
}

// RQ1Classification runs the leave-one-out protocol.
func RQ1Classification(ds *rad.Dataset) (RQ1Result, error) {
	seqs, _ := ds.SupervisedSequences()
	var res RQ1Result
	for i := range seqs {
		var trainSeqs [][]string
		var trainLabels []string
		for j := range seqs {
			if j == i {
				continue
			}
			trainSeqs = append(trainSeqs, seqs[j])
			trainLabels = append(trainLabels, ds.Runs[j].Procedure)
		}
		clf, err := ids.TrainClassifier(trainSeqs, trainLabels)
		if err != nil {
			return RQ1Result{}, err
		}
		got, sim := clf.Classify(seqs[i])
		row := RQ1Row{
			ID: i, Truth: ds.Runs[i].Procedure, Predicted: got,
			Similarity: sim, Correct: got == ds.Runs[i].Procedure,
			Note: ds.Runs[i].Note,
		}
		if row.Correct {
			res.Correct++
		}
		res.Rows = append(res.Rows, row)
		res.Total++
	}
	return res, nil
}

// RenderRQ1 formats the experiment, listing only the misclassifications in
// detail.
func RenderRQ1(res RQ1Result) string {
	var b strings.Builder
	b.WriteString("RQ1 — identifying procedures (leave-one-out TF-IDF nearest centroid)\n")
	fmt.Fprintf(&b, "correct: %d/%d\n", res.Correct, res.Total)
	for _, r := range res.Rows {
		if r.Correct {
			continue
		}
		fmt.Fprintf(&b, "  run %2d: %s classified as %s (sim %.2f) — %s\n",
			r.ID, r.Truth, r.Predicted, r.Similarity, r.Note)
	}
	return b.String()
}
