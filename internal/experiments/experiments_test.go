package experiments

import (
	"strings"
	"testing"

	"rad/internal/rad"
)

// testDataset is the shared scaled-down campaign (generation dominates test
// time, so the command-analysis tests share one).
var testDataset *rad.Dataset

func dataset(t *testing.T) *rad.Dataset {
	t.Helper()
	if testDataset == nil {
		ds, err := rad.Generate(rad.Config{Seed: 11, Scale: 0.2})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testDataset = ds
	}
	return testDataset
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time latency experiment")
	}
	res, err := Fig4ResponseTime(Fig4Config{Sequences: 2, CommandsPerSequence: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 3 {
		t.Fatalf("modes = %d", len(res.Modes))
	}
	byMode := map[string]Fig4Mode{}
	for _, m := range res.Modes {
		byMode[m.Mode] = m
		if len(m.Boxes) != 2 {
			t.Errorf("%s: %d boxes", m.Mode, len(m.Boxes))
		}
	}
	direct, remote, cloud := byMode[ModeDirect], byMode[ModeRemote], byMode[ModeCloud]
	// Paper shape: DIRECT < REMOTE (≈ +2 ms) << CLOUD (≈ 60 ms, an order of
	// magnitude above both).
	if !(direct.Mean < remote.Mean) {
		t.Errorf("DIRECT mean %v should be below REMOTE mean %v", direct.Mean, remote.Mean)
	}
	if remote.Mean-direct.Mean > 15 {
		t.Errorf("REMOTE overhead %v ms too large (paper: ≈2 ms)", remote.Mean-direct.Mean)
	}
	if cloud.Mean < 40 || cloud.Mean > 120 {
		t.Errorf("CLOUD mean %v ms, want ≈60", cloud.Mean)
	}
	if direct.Mean > 12 {
		t.Errorf("DIRECT mean %v ms, want < 10", direct.Mean)
	}
}

func TestFig5aDistribution(t *testing.T) {
	ds := dataset(t)
	res := Fig5aCommandDistribution(ds)
	if len(res.Commands) != 52 {
		t.Fatalf("%d command types, want 52", len(res.Commands))
	}
	if res.Total != ds.Store.Len() {
		t.Errorf("total %d != store %d", res.Total, ds.Store.Len())
	}
	// Legend ordering property: C9 must dominate, Quantos is smallest.
	if res.DeviceTotals["C9"] <= res.DeviceTotals["Tecan"] {
		t.Error("C9 should dominate the distribution")
	}
	if res.DeviceTotals["Quantos"] >= res.DeviceTotals["UR3e"] {
		t.Error("Quantos should be the least-traced device")
	}
	// MVNG is the C9's polling command and should lead its device.
	for _, cc := range res.Commands {
		if cc.Device == "C9" {
			if cc.Name != "MVNG" {
				t.Errorf("C9's most frequent command = %s, want MVNG", cc.Name)
			}
			break
		}
	}
}

func TestFig5bTopNGrams(t *testing.T) {
	ds := dataset(t)
	tables := Fig5bTopNGrams(ds, nil, 10)
	if len(tables) != 4 {
		t.Fatalf("%d tables, want 4 (n=2..5)", len(tables))
	}
	for i, tbl := range tables {
		if tbl.N != i+2 {
			t.Errorf("table %d has n=%d", i, tbl.N)
		}
		if len(tbl.Top) != 10 {
			t.Errorf("n=%d has %d entries", tbl.N, len(tbl.Top))
		}
	}
	// The paper's top bigrams are joystick patterns: ARM_MVNG, MVNG_ARM,
	// MVNG_MVNG and friends must dominate.
	keys := make([]string, 0, 10)
	for _, c := range tables[0].Top {
		keys = append(keys, c.Key())
	}
	joined := strings.Join(keys, " ")
	for _, want := range []string{"MVNG_MVNG", "ARM_MVNG", "MVNG_ARM"} {
		if !strings.Contains(joined, want) {
			t.Errorf("top bigrams %v missing %s", keys, want)
		}
	}
	// Tecan's Q_Q polling pattern should rank among the top bigrams too.
	if !strings.Contains(joined, "Q_Q") {
		t.Errorf("top bigrams %v missing Q_Q", keys)
	}
}

func TestFig6BlockStructure(t *testing.T) {
	ds := dataset(t)
	res := Fig6SimilarityMatrix(ds)
	if len(res.Matrix) != 25 {
		t.Fatalf("matrix size %d", len(res.Matrix))
	}
	// Diagonal is 1.
	for i := range res.Matrix {
		if res.Matrix[i][i] < 0.999 {
			t.Errorf("diagonal [%d] = %v", i, res.Matrix[i][i])
		}
	}
	// Joystick block (0–11) is mutually similar.
	joyBlock := res.BlockMean(0, 11, 0, 11)
	if joyBlock < 0.85 {
		t.Errorf("joystick block mean %v, want high", joyBlock)
	}
	// Run 12 (P1 with joystick prefix) is more similar to the joystick runs
	// than to the other P1 runs — the paper's standout observation.
	simToJoy := res.BlockMean(12, 12, 0, 11)
	simToP1 := res.BlockMean(12, 12, 13, 16)
	if simToJoy <= simToP1 {
		t.Errorf("run 12: joystick similarity %v should exceed P1 similarity %v", simToJoy, simToP1)
	}
	// Remaining P1 runs (13–16) exhibit moderately high mutual similarity.
	if p1 := res.BlockMean(13, 16, 13, 16); p1 < 0.75 {
		t.Errorf("P1 block mean %v, want mostly above 0.8", p1)
	}
	// Truncated P2 pair 17–18: similar to each other, dissimilar to the
	// complete 19–20.
	pair := res.Matrix[17][18]
	cross := res.BlockMean(17, 18, 19, 20)
	if pair < 0.85 {
		t.Errorf("17–18 similarity %v, want > 0.9", pair)
	}
	if cross >= pair-0.1 {
		t.Errorf("17/18 vs 19/20 similarity %v should sit well below the 17–18 pair %v", cross, pair)
	}
	// P3 block 21–24 is tight (0.9–0.99) even though 22 is anomalous.
	if p3 := res.BlockMean(21, 24, 21, 24); p3 < 0.85 {
		t.Errorf("P3 block mean %v, want 0.9–0.99", p3)
	}
}

func TestTableIShape(t *testing.T) {
	ds := dataset(t)
	rows := TableIPerplexityIDS(ds, TableIConfig{})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Confusion.Total() != 25 {
			t.Errorf("n=%d classified %d runs", r.N, r.Confusion.Total())
		}
		// The headline claim: perfect recall for every model size.
		if r.Recall != 1.0 {
			t.Errorf("n=%d recall = %v, want 1.0 (FN=%d)", r.N, r.Recall, r.Confusion.FN)
		}
		if r.Confusion.TP != 3 {
			t.Errorf("n=%d TP = %d, want 3", r.N, r.Confusion.TP)
		}
	}
	// The paper's ordering claims: trigram does not lose to bigram, and
	// performance slightly degrades between trigram and four-gram.
	if rows[1].Accuracy < rows[0].Accuracy {
		t.Errorf("trigram accuracy %v below bigram %v", rows[1].Accuracy, rows[0].Accuracy)
	}
	if rows[2].Accuracy > rows[1].Accuracy {
		t.Errorf("four-gram accuracy %v above trigram %v (paper: slight degradation)",
			rows[2].Accuracy, rows[1].Accuracy)
	}
}

func TestFig7aSegments(t *testing.T) {
	res, err := Fig7aSegments(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 5 {
		t.Fatalf("%d segments, want 5", len(res.Segments))
	}
	for i, r := range res.RepeatCorrelation {
		if r < 0.95 {
			t.Errorf("segment %d repeatability r=%v, want ≈1 (identical across iterations)", i, r)
		}
	}
	// Every pair of segments is distinguishable by its (shape, duration,
	// amplitude) signature, and more distinguishable than a re-run of the
	// same segment.
	for i := range res.Distinct {
		for j := range res.Distinct[i] {
			if i == j {
				continue
			}
			if !res.Distinct[i][j] {
				t.Errorf("segments %d and %d indistinguishable (r=%v)",
					i, j, res.CrossCorrelation[i][j])
			}
			if res.CrossCorrelation[i][j] > res.RepeatCorrelation[i] {
				t.Errorf("segments %d vs %d correlate (%v) above segment %d's own repeatability (%v)",
					i, j, res.CrossCorrelation[i][j], i, res.RepeatCorrelation[i])
			}
		}
	}
}

func TestFig7bSolidInvariance(t *testing.T) {
	res, err := Fig7bSolids(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solids) != 3 {
		t.Fatalf("%d solids", len(res.Solids))
	}
	for i := range res.Correlations {
		for j := range res.Correlations[i] {
			if res.Correlations[i][j] < 0.97 {
				t.Errorf("solids %s vs %s r=%v, paper reports > 0.97",
					res.Solids[i].Label, res.Solids[j].Label, res.Correlations[i][j])
			}
		}
	}
}

func TestFig7cVelocityScaling(t *testing.T) {
	res, err := Fig7cVelocities(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Velocities) != 3 {
		t.Fatalf("%d velocities", len(res.Velocities))
	}
	// Amplitude grows with velocity; the 100 mm/s trace is stretched.
	if !(res.PeakAmplitude[0] < res.PeakAmplitude[1] && res.PeakAmplitude[1] < res.PeakAmplitude[2]) {
		t.Errorf("amplitudes %v should grow with velocity", res.PeakAmplitude)
	}
	if len(res.Velocities[0].Current) <= len(res.Velocities[2].Current) {
		t.Errorf("100 mm/s trace (%d ticks) should be longer than 250 mm/s (%d)",
			len(res.Velocities[0].Current), len(res.Velocities[2].Current))
	}
}

func TestFig7dWeightScaling(t *testing.T) {
	res, err := Fig7dWeights(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weights) != 3 {
		t.Fatalf("%d weights", len(res.Weights))
	}
	if !(res.PeakAmplitude[0] < res.PeakAmplitude[1] && res.PeakAmplitude[1] < res.PeakAmplitude[2]) {
		t.Errorf("amplitudes %v should grow with payload", res.PeakAmplitude)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	ds := dataset(t)
	checks := map[string]string{
		"fig5a":  RenderFig5a(Fig5aCommandDistribution(ds)),
		"fig5b":  RenderFig5b(Fig5bTopNGrams(ds, nil, 5)),
		"fig6":   RenderFig6(Fig6SimilarityMatrix(ds)),
		"table1": RenderTableI(TableIPerplexityIDS(ds, TableIConfig{Seed: 5})),
	}
	for name, out := range checks {
		if len(out) < 100 || !strings.Contains(out, "\n") {
			t.Errorf("%s renderer output suspiciously small:\n%s", name, out)
		}
	}
	series := []Series{{Label: "x", Current: []float64{0, 1, 0, -1, 0}}}
	if out := RenderSeries("t", series); !strings.Contains(out, "x") {
		t.Errorf("series renderer: %s", out)
	}
	if out := RenderCorrelationMatrix("t", []string{"a"}, [][]float64{{1}}); !strings.Contains(out, "1.0000") {
		t.Errorf("matrix renderer: %s", out)
	}
}
