package experiments

import (
	"math"

	"rad/internal/analysis/crossval"
	"rad/internal/analysis/jenks"
	"rad/internal/analysis/metrics"
	"rad/internal/analysis/ngram"
	"rad/internal/parallel"
	"rad/internal/rad"
)

// TableIRow is one model's row of Table I.
type TableIRow struct {
	// N is the model order (2 = bigram, 3 = trigram, 4 = four-gram).
	N                int
	Confusion        metrics.Confusion
	Accuracy         float64
	WeightedAccuracy float64
	Precision        float64
	Recall           float64
	F1               float64
	// BreakValue is the Jenks threshold that separated the two classes.
	BreakValue float64
}

// TableIConfig tunes the Table I experiment.
type TableIConfig struct {
	// Folds is the cross-validation fold count (paper: 5).
	Folds int
	// Seed drives the fold shuffle; zero selects DefaultTableISeed.
	Seed uint64
	// Orders are the model sizes to evaluate (paper: 2, 3, 4).
	Orders []int
	// Alpha is the Laplace smoothing constant; zero selects DefaultAlpha.
	Alpha float64
	// LinearJenks clusters raw perplexities instead of log-perplexities
	// (used by the ablation study; the default log space is more robust to
	// extreme scores).
	LinearJenks bool
}

// DefaultAlpha is the add-α smoothing constant used throughout: small enough
// to score seen-but-rare transitions fairly, large enough to keep unseen
// transitions finite.
const DefaultAlpha = 0.1

// DefaultTableISeed is the documented fold-shuffle seed used by the
// benchmark harness and EXPERIMENTS.md. The shuffle is the experiment's
// only free variable (the paper likewise reports one arbitrary shuffle).
const DefaultTableISeed = 5

// TableIPerplexityIDS reproduces Table I, following §V-B exactly: shuffle
// the 25 supervised runs into five folds, hold each fold out in turn, score
// each held-out run's perplexity under an n-gram model trained on the other
// runs, then cluster all 25 out-of-fold scores into benign/anomalous with
// Jenks natural breaks and compare against the crash ground truth.
func TableIPerplexityIDS(ds *rad.Dataset, cfg TableIConfig) []TableIRow {
	if cfg.Folds <= 0 {
		cfg.Folds = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultTableISeed
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = DefaultAlpha
	}
	if len(cfg.Orders) == 0 {
		cfg.Orders = []int{2, 3, 4}
	}
	seqs, truth := ds.SupervisedSequences()
	folds := crossval.KFold(len(seqs), cfg.Folds, cfg.Seed)

	// Every (order, fold) pair trains its own model and writes only its own
	// fold's score cells, so the full orders×folds grid fans out as one flat
	// task list: no two tasks touch the same cell, and the scores each order
	// hands to Jenks are identical at any worker count.
	allScores := make([][]float64, len(cfg.Orders))
	for oi := range allScores {
		allScores[oi] = make([]float64, len(seqs))
		for i := range allScores[oi] {
			allScores[oi][i] = math.NaN()
		}
	}
	_ = parallel.ForEach(len(cfg.Orders)*len(folds), 0, func(task int) error {
		oi, fi := task/len(folds), task%len(folds)
		n, fold := cfg.Orders[oi], folds[fi]
		train := make([][]string, 0, len(fold.Train))
		for _, idx := range fold.Train {
			train = append(train, seqs[idx])
		}
		model := ngram.Train(train, n, cfg.Alpha)
		for _, idx := range fold.Test {
			allScores[oi][idx] = model.Perplexity(seqs[idx])
		}
		return nil
	})

	rows := make([]TableIRow, 0, len(cfg.Orders))
	for oi, n := range cfg.Orders {
		scores := allScores[oi]
		// Cluster in log space by default: perplexity is the exponential of
		// the average negative log-likelihood, so log-perplexity is the
		// natural scale for variance-based clustering — a single extreme run
		// otherwise forms its own Jenks class and masks the other anomalies
		// (the Jenks-space ablation demonstrates exactly this failure).
		var predicted []bool
		var breakVal float64
		if cfg.LinearJenks {
			predicted, breakVal, _ = jenks.Split2(scores)
		} else {
			logScores := make([]float64, len(scores))
			for i, s := range scores {
				logScores[i] = math.Log(s)
			}
			var logBreak float64
			predicted, logBreak, _ = jenks.Split2(logScores)
			breakVal = math.Exp(logBreak)
		}
		conf := metrics.Tally(predicted, truth)
		rows = append(rows, TableIRow{
			N: n, Confusion: conf,
			Accuracy:         conf.Accuracy(),
			WeightedAccuracy: conf.WeightedAccuracy(),
			Precision:        conf.Precision(),
			Recall:           conf.Recall(),
			F1:               conf.F1(),
			BreakValue:       breakVal,
		})
	}
	return rows
}
