package experiments

import (
	"strings"
	"testing"
)

func TestAblationSmoothingShape(t *testing.T) {
	ds := dataset(t)
	rows := AblationSmoothing(ds, nil)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byAlpha := map[float64]SmoothingRow{}
	for _, r := range rows {
		byAlpha[r.Alpha] = r
	}
	// The default sits in the perfect-recall basin.
	if r := byAlpha[0.1]; r.Recall != 1.0 {
		t.Errorf("alpha=0.1 recall %v, want 1.0", r.Recall)
	}
	// Plain add-one smoothing performs no better than the default — the
	// motivation for choosing a small alpha.
	if byAlpha[1.0].Accuracy > byAlpha[0.1].Accuracy {
		t.Errorf("alpha=1 accuracy %v beats alpha=0.1 %v",
			byAlpha[1.0].Accuracy, byAlpha[0.1].Accuracy)
	}
}

func TestAblationJenksSpaceShowsLinearFailure(t *testing.T) {
	ds := dataset(t)
	rows := AblationJenksSpace(ds)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	logPerfect := true
	linearWorse := false
	for _, r := range rows {
		if r.LogRecall != 1.0 {
			logPerfect = false
		}
		if r.LinearRecall < r.LogRecall {
			linearWorse = true
		}
	}
	if !logPerfect {
		t.Error("log-space recall should be 1.0 at every order")
	}
	// The documented failure mode: in linear space the extreme run 17 forms
	// its own class and masks the other anomalies for at least one order.
	if !linearWorse {
		t.Error("linear-space Jenks should lose recall at some order (run 17 masking)")
	}
}

func TestAblationStreamWindow(t *testing.T) {
	ds := dataset(t)
	rows, err := AblationStreamWindow(ds, []int{16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Detected < 2 {
			t.Errorf("window %d detected only %d/3 anomalies", r.Window, r.Detected)
		}
		if r.FalseAlerts > 6 {
			t.Errorf("window %d raised %d false alerts", r.Window, r.FalseAlerts)
		}
	}
}

func TestRenderAblations(t *testing.T) {
	ds := dataset(t)
	sm := AblationSmoothing(ds, []float64{0.1})
	js := AblationJenksSpace(ds)
	wr, err := AblationStreamWindow(ds, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAblations(sm, js, wr)
	for _, want := range []string{"smoothing", "Jenks", "window"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q section:\n%s", want, out)
		}
	}
}
