package experiments

import (
	"rad/internal/analysis/ngram"
	"rad/internal/device"
	"rad/internal/parallel"
	"rad/internal/rad"
)

// Fig5aResult is the command-wise distribution of trace objects (Fig. 5a):
// the 52 per-command counts in figure order and the per-device legend
// totals.
type Fig5aResult struct {
	Commands []rad.CommandCount
	// DeviceTotals maps device → trace-object count (the legend numbers:
	// C9 93,231, Tecan 16,279, IKA 11,448, UR3e 5,460, Quantos 2,367 at
	// full scale).
	DeviceTotals map[string]int
	Total        int
}

// Fig5aCommandDistribution computes the Fig. 5(a) distribution from a
// generated dataset.
func Fig5aCommandDistribution(ds *rad.Dataset) Fig5aResult {
	res := Fig5aResult{
		Commands:     ds.CommandDistribution(),
		DeviceTotals: ds.Store.CountByDevice(),
	}
	for _, dev := range device.Names() {
		res.Total += res.DeviceTotals[dev]
	}
	return res
}

// NGramTable is one n's top-k list for Fig. 5(b).
type NGramTable struct {
	N   int
	Top []ngram.Count
}

// Fig5bTopNGrams computes the paper's Fig. 5(b): the top-k n-grams of the
// whole command dataset for each requested n (paper: top ten for
// n ∈ {2,3,4,5}).
func Fig5bTopNGrams(ds *rad.Dataset, ns []int, k int) []NGramTable {
	if len(ns) == 0 {
		ns = []int{2, 3, 4, 5}
	}
	if k <= 0 {
		k = 10
	}
	// The paper computes n-grams over command sequences; crossing run
	// boundaries would fabricate transitions, so the dataset-wide sequence
	// is split per run/session via the unknown-procedure stream order. The
	// global stream in collection order is the closest analog of "in RAD".
	seq := ds.AllSequence()
	// The four tables are independent scans of the same sequence; fan them
	// out (each TopK additionally parallelizes its own counting on large
	// corpora).
	out, _ := parallel.Map(ns, 0, func(_ int, n int) (NGramTable, error) {
		return NGramTable{N: n, Top: ngram.TopK([][]string{seq}, n, k)}, nil
	})
	return out
}
