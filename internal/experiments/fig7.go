package experiments

import (
	"fmt"
	"math"
	"strconv"

	"rad/internal/analysis/stats"
	"rad/internal/device"
	"rad/internal/middlebox"
	"rad/internal/power"
	"rad/internal/procedure"
	"rad/internal/robot"
)

// Joint1 is the joint whose current the paper plots in Fig. 7 ("joint 1",
// the base joint — index 0 here).
const Joint1 = 0

// Series is one labelled joint-current time series at 40 ms ticks.
type Series struct {
	Label   string
	Current []float64
}

// Duration returns the series length in seconds.
func (s Series) Duration() float64 { return float64(len(s.Current)) * power.SamplePeriod }

// powerLab builds a virtual lab with power telemetry and an initialized
// UR3e, parked at the home pose.
func powerLab(seed uint64) (*procedure.VirtualLab, device.Device, error) {
	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Seed: seed, Network: middlebox.NetworkProfile{}, WithPower: true,
	})
	if err != nil {
		return nil, nil, err
	}
	arm := vl.Lab.UR3e
	if _, err := arm.Exec(device.Command{Name: device.Init}); err != nil {
		vl.Close()
		return nil, nil, err
	}
	return vl, arm, nil
}

// capture runs fn and returns the joint-1 current recorded during it.
func capture(vl *procedure.VirtualLab, fn func() error) ([]float64, error) {
	start := vl.Lab.Monitor.Len()
	if err := fn(); err != nil {
		return nil, err
	}
	samples := vl.Lab.Monitor.Samples()
	return power.CurrentSeries(samples[start:], Joint1), nil
}

func moveTo(arm device.Device, loc string, velMMS float64) func() error {
	return func() error {
		args := []string{loc}
		if velMMS > 0 {
			args = append(args, strconv.FormatFloat(velMMS, 'f', -1, 64))
		}
		_, err := arm.Exec(device.Command{Name: "move_to_location", Args: args})
		return err
	}
}

// Fig7aResult holds the five per-segment signatures of Fig. 7(a) plus their
// run-to-run repeatability.
type Fig7aResult struct {
	// Segments are the five L_i→L_{i+1} joint-1 current signatures.
	Segments []Series
	// RepeatCorrelation[i] is the Pearson correlation between the first and
	// second execution of segment i (the paper observes the signatures are
	// "identical across multiple iterations").
	RepeatCorrelation []float64
	// CrossCorrelation[i][j] compares the (resampled) signatures of
	// segments i and j.
	CrossCorrelation [][]float64
	// Distinct[i][j] reports whether segments i and j are distinguishable:
	// a signature is the triple (shape, duration, amplitude), and two
	// segments are distinct when any of the three differs materially. This
	// is the Fig. 7(a) uniqueness claim made operational.
	Distinct [][]bool
}

// Fig7aSegments reproduces Fig. 7(a): the joint-1 current profiles of the
// five move commands L0→L1 … L4→L5 of procedure P2, executed twice to
// measure repeatability.
func Fig7aSegments(seed uint64) (Fig7aResult, error) {
	vl, arm, err := powerLab(seed)
	if err != nil {
		return Fig7aResult{}, err
	}
	defer vl.Close()

	waypoints := robot.SegmentWaypoints()
	runOnce := func() ([][]float64, error) {
		if _, err := capture(vl, moveTo(arm, waypoints[0], 0)); err != nil {
			return nil, err
		}
		var segs [][]float64
		for i := 1; i < len(waypoints); i++ {
			cur, err := capture(vl, moveTo(arm, waypoints[i], 0))
			if err != nil {
				return nil, err
			}
			segs = append(segs, cur)
		}
		return segs, nil
	}
	first, err := runOnce()
	if err != nil {
		return Fig7aResult{}, fmt.Errorf("experiments: fig7a first pass: %w", err)
	}
	second, err := runOnce()
	if err != nil {
		return Fig7aResult{}, fmt.Errorf("experiments: fig7a second pass: %w", err)
	}

	res := Fig7aResult{}
	for i, cur := range first {
		res.Segments = append(res.Segments, Series{
			Label:   fmt.Sprintf("L%d-L%d", i, i+1),
			Current: cur,
		})
		n := min(len(cur), len(second[i]))
		res.RepeatCorrelation = append(res.RepeatCorrelation, stats.Pearson(cur[:n], second[i][:n]))
	}
	res.CrossCorrelation = crossCorrelation(first)
	res.Distinct = distinctness(first, res.CrossCorrelation)
	return res, nil
}

// distinctness marks segment pairs distinguishable when their time-
// normalized shapes decorrelate (r < 0.95), their durations differ by more
// than 15%, or their peak amplitudes differ by more than 20%.
func distinctness(series [][]float64, corr [][]float64) [][]bool {
	out := make([][]bool, len(series))
	for i := range series {
		out[i] = make([]bool, len(series))
		for j := range series {
			if i == j {
				continue
			}
			durI, durJ := float64(len(series[i])), float64(len(series[j]))
			ampI, ampJ := stats.MaxAbs(series[i]), stats.MaxAbs(series[j])
			durDiff := math.Abs(durI-durJ) / math.Max(durI, durJ)
			ampDiff := math.Abs(ampI-ampJ) / math.Max(ampI, ampJ)
			out[i][j] = corr[i][j] < 0.95 || durDiff > 0.15 || ampDiff > 0.20
		}
	}
	return out
}

// crossCorrelation resamples the series to a common length and correlates
// all pairs.
func crossCorrelation(series [][]float64) [][]float64 {
	const n = 100
	rs := make([][]float64, len(series))
	for i, s := range series {
		rs[i] = stats.Resample(s, n)
	}
	out := make([][]float64, len(series))
	for i := range rs {
		out[i] = make([]float64, len(rs))
		for j := range rs {
			out[i][j] = stats.Pearson(rs[i], rs[j])
		}
	}
	return out
}

// Fig7bResult holds the per-solid transfer signatures and their pairwise
// correlations (the paper reports r > 0.97: the solid does not change the
// trajectory, hence not the current).
type Fig7bResult struct {
	Solids       []Series
	Correlations [][]float64
}

// Fig7bSolids reproduces Fig. 7(b): the vial-transfer portion of P2
// (storage rack → Quantos → home) executed once per solid. Selecting a
// different solid changes downstream chemistry, not the transfer trajectory
// or payload, so the current profiles coincide up to sensor noise.
func Fig7bSolids(seed uint64) (Fig7bResult, error) {
	solids := []string{"NABH4", "CSTI", "GENTISTIC"}
	var res Fig7bResult
	var raw [][]float64
	for i, solid := range solids {
		// A fresh lab per solid keeps the runs independent (different noise
		// streams), as rerunning the physical experiment would.
		vl, arm, err := powerLab(seed + uint64(i)*101)
		if err != nil {
			return Fig7bResult{}, err
		}
		cur, err := capture(vl, func() error {
			vl.Lab.RawUR3e.SetNextPayload(0.020) // the vial
			steps := [][]string{
				{"move_to_location", "above_rack"},
				{"move_to_location", "storage_rack"},
				{"close_gripper"},
				{"move_to_location", "above_rack"},
				{"move_to_location", "above_quantos"},
				{"move_to_location", "quantos_tray"},
				{"open_gripper"},
				{"move_to_location", "home"},
			}
			for _, step := range steps {
				if _, err := arm.Exec(device.Command{Name: step[0], Args: step[1:]}); err != nil {
					return err
				}
			}
			return nil
		})
		vl.Close()
		if err != nil {
			return Fig7bResult{}, fmt.Errorf("experiments: fig7b %s: %w", solid, err)
		}
		res.Solids = append(res.Solids, Series{Label: solid, Current: cur})
		raw = append(raw, cur)
	}
	// Same trajectory → same length; correlate directly at common length.
	n := len(raw[0])
	for _, r := range raw {
		n = min(n, len(r))
	}
	res.Correlations = make([][]float64, len(raw))
	for i := range raw {
		res.Correlations[i] = make([]float64, len(raw))
		for j := range raw {
			res.Correlations[i][j] = stats.Pearson(raw[i][:n], raw[j][:n])
		}
	}
	return res, nil
}

// Fig7cResult holds the per-velocity traces of P5.
type Fig7cResult struct {
	Velocities []Series
	// PeakAmplitude per velocity (grows with velocity).
	PeakAmplitude []float64
}

// Fig7cVelocities reproduces Fig. 7(c): procedure P5 moves the arm between
// the same two locations at 100, 200, and 250 mm/s. The profiles share
// their shape; amplitude scales with velocity and the slow trace stretches
// in time.
func Fig7cVelocities(seed uint64) (Fig7cResult, error) {
	var res Fig7cResult
	for _, vel := range []float64{100, 200, 250} {
		vl, arm, err := powerLab(seed)
		if err != nil {
			return Fig7cResult{}, err
		}
		if _, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"L0"}}); err != nil {
			vl.Close()
			return Fig7cResult{}, err
		}
		cur, err := capture(vl, moveTo(arm, "L1", vel))
		vl.Close()
		if err != nil {
			return Fig7cResult{}, fmt.Errorf("experiments: fig7c %v mm/s: %w", vel, err)
		}
		res.Velocities = append(res.Velocities, Series{
			Label:   fmt.Sprintf("%.0f mm/s", vel),
			Current: cur,
		})
		res.PeakAmplitude = append(res.PeakAmplitude, stats.MaxAbs(cur))
	}
	return res, nil
}

// Fig7dResult holds the per-payload traces of P6.
type Fig7dResult struct {
	Weights []Series
	// PeakAmplitude per payload (grows with mass).
	PeakAmplitude []float64
}

// Fig7dWeights reproduces Fig. 7(d): procedure P6 carries 20 g, 500 g, and
// 1000 g payloads over the same path; heavier payloads draw more current.
func Fig7dWeights(seed uint64) (Fig7dResult, error) {
	var res Fig7dResult
	for _, kg := range []float64{0.020, 0.500, 1.000} {
		vl, arm, err := powerLab(seed)
		if err != nil {
			return Fig7dResult{}, err
		}
		// Position and grip outside the capture so the recorded window is
		// exactly the loaded carry, which is what Fig. 7(d) plots.
		if _, err := arm.Exec(device.Command{Name: "move_to_location", Args: []string{"storage_rack"}}); err != nil {
			vl.Close()
			return Fig7dResult{}, err
		}
		vl.Lab.RawUR3e.SetNextPayload(kg)
		if _, err := arm.Exec(device.Command{Name: "close_gripper"}); err != nil {
			vl.Close()
			return Fig7dResult{}, err
		}
		cur, err := capture(vl, moveTo(arm, "quantos_tray", 0))
		vl.Close()
		if err != nil {
			return Fig7dResult{}, fmt.Errorf("experiments: fig7d %v kg: %w", kg, err)
		}
		res.Weights = append(res.Weights, Series{
			Label:   fmt.Sprintf("%.0f g", kg*1000),
			Current: cur,
		})
		res.PeakAmplitude = append(res.PeakAmplitude, stats.MaxAbs(cur))
	}
	return res, nil
}
