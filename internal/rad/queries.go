package rad

import (
	"fmt"
	"sort"
	"time"

	"rad/internal/store"
)

// RunSequence returns the ordered command names of one supervised run — the
// "document" the §V analyses operate on.
func (d *Dataset) RunSequence(run string) []string {
	return d.Store.CommandSequence(func(r store.Record) bool { return r.Run == run })
}

// SupervisedSequences returns the 25 supervised command sequences and their
// anomaly ground truth, both in Fig. 6 ID order.
func (d *Dataset) SupervisedSequences() (seqs [][]string, anomalous []bool) {
	seqs = make([][]string, 0, len(d.Runs))
	anomalous = make([]bool, 0, len(d.Runs))
	for _, run := range d.Runs {
		seqs = append(seqs, d.RunSequence(run.Run))
		anomalous = append(anomalous, run.Anomalous)
	}
	return seqs, anomalous
}

// AllSequence returns the dataset-wide command-name sequence in collection
// order, used for the Fig. 5(b) n-gram distribution.
func (d *Dataset) AllSequence() []string {
	return d.Store.CommandSequence(nil)
}

// Span returns the collection campaign's first and last trace instants and
// its duration — the paper's dataset was "collected … over a three-month
// period" (§IV).
func (d *Dataset) Span() (first, last time.Time, days float64) {
	recs := d.Store.All()
	if len(recs) == 0 {
		return time.Time{}, time.Time{}, 0
	}
	first, last = recs[0].Time, recs[0].Time
	for _, r := range recs {
		if r.Time.Before(first) {
			first = r.Time
		}
		if r.Time.After(last) {
			last = r.Time
		}
	}
	return first, last, last.Sub(first).Hours() / 24
}

// CommandCount pairs a command type with its trace-object count.
type CommandCount struct {
	Device   string
	Name     string
	Readable string
	Count    int
}

// CommandDistribution returns the per-command-type counts in Fig. 5(a)
// order: grouped by device (C9, Tecan, IKA, UR3e, Quantos appear in legend
// order inside the figure's catalog grouping), most-traced devices first,
// counts descending within each device.
func (d *Dataset) CommandDistribution() []CommandCount {
	byKey := d.Store.CountByCommand()
	var out []CommandCount
	for _, dev := range deviceLegendOrder(d.Store.CountByDevice()) {
		var devCmds []CommandCount
		for _, spec := range deviceCatalog(dev) {
			devCmds = append(devCmds, CommandCount{
				Device: dev, Name: spec.Name, Readable: spec.Readable,
				Count: byKey[spec.Key()],
			})
		}
		sort.Slice(devCmds, func(i, j int) bool {
			if devCmds[i].Count != devCmds[j].Count {
				return devCmds[i].Count > devCmds[j].Count
			}
			return devCmds[i].Name < devCmds[j].Name
		})
		out = append(out, devCmds...)
	}
	return out
}

// Verify checks the dataset's structural invariants against the paper's §IV
// description: 25 supervised runs, 3 anomalies, per-device totals equal to
// the scaled targets, and every traced command type in the 52-type catalog.
func (d *Dataset) Verify() error {
	if len(d.Runs) != NumSupervisedRuns {
		return fmt.Errorf("rad: %d supervised runs, want %d", len(d.Runs), NumSupervisedRuns)
	}
	anomalies := 0
	for _, r := range d.Runs {
		if r.Anomalous {
			anomalies++
		}
	}
	if anomalies != 3 {
		return fmt.Errorf("rad: %d anomalies, want 3", anomalies)
	}
	counts := d.Store.CountByDevice()
	for dev, want := range d.Targets {
		if got := counts[dev]; got != want && got < want {
			return fmt.Errorf("rad: %s has %d trace objects, want %d", dev, got, want)
		}
	}
	catalog := catalogKeys()
	for key := range d.Store.CountByCommand() {
		if !catalog[key] {
			return fmt.Errorf("rad: traced command %s not in the 52-type catalog", key)
		}
	}
	return nil
}
