package rad

import (
	"bytes"
	"testing"

	"rad/internal/store"
)

// TestFromRecordsRoundTrip exports a generated dataset to JSONL, reads it
// back, rebuilds the Dataset view, and checks the analyses' inputs survive:
// run index, anomaly ground truth, and sequences.
func TestFromRecordsRoundTrip(t *testing.T) {
	orig := dataset(t)

	var buf bytes.Buffer
	w := store.NewJSONLWriter(&buf)
	for _, r := range orig.Store.All() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := store.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := FromRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Store.Len() != orig.Store.Len() {
		t.Errorf("loaded %d records, want %d", loaded.Store.Len(), orig.Store.Len())
	}
	if len(loaded.Runs) != len(orig.Runs) {
		t.Fatalf("loaded %d runs, want %d", len(loaded.Runs), len(orig.Runs))
	}
	for i, run := range loaded.Runs {
		want := orig.Runs[i]
		if run.ID != want.ID || run.Run != want.Run || run.Procedure != want.Procedure {
			t.Errorf("run %d: %+v, want id/run/proc of %+v", i, run, want)
		}
		if run.Anomalous != want.Anomalous {
			t.Errorf("run %d anomalous = %v, want %v", i, run.Anomalous, want.Anomalous)
		}
	}
	// The supervised sequences are identical, so Fig. 6 / Table I run
	// unchanged on the loaded view.
	origSeqs, _ := orig.SupervisedSequences()
	loadedSeqs, _ := loaded.SupervisedSequences()
	for i := range origSeqs {
		if len(origSeqs[i]) != len(loadedSeqs[i]) {
			t.Fatalf("run %d sequence length differs: %d vs %d",
				i, len(origSeqs[i]), len(loadedSeqs[i]))
		}
	}
}

func TestFromRecordsRejectsBadRunLabels(t *testing.T) {
	recs := []store.Record{{Device: "C9", Name: "MVNG", Run: "weird-label", Procedure: "P4"}}
	if _, err := FromRecords(recs); err == nil {
		t.Error("bad run label accepted")
	}
}

func TestFromRecordsEmptyIsValid(t *testing.T) {
	ds, err := FromRecords(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Store.Len() != 0 || len(ds.Runs) != 0 {
		t.Errorf("empty load: %d records, %d runs", ds.Store.Len(), len(ds.Runs))
	}
}
