// Package rad assembles the Robotic Arm Dataset: a synthetic reproduction of
// the three-month trace collection described in §IV. It generates the 25
// supervised procedure runs (12×P4 joystick, 5×P1, 4×P2, 4×P3, three of
// which end in physical crashes), the unsupervised prototyping bulk, and the
// power captures for the supervised P2 runs — landing exactly on the
// per-device trace-object totals the paper reports for Fig. 5(a).
package rad

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"rad/internal/device"
	"rad/internal/power"
	"rad/internal/procedure"
	"rad/internal/store"
)

// TotalTraceObjects is the command-dataset size the paper reports (§IV).
const TotalTraceObjects = 128785

// DeviceTargets are the per-device trace-object totals from the Fig. 5(a)
// legend. They sum to TotalTraceObjects.
func DeviceTargets() map[string]int {
	return map[string]int{
		device.C9:      93231,
		device.Tecan:   16279,
		device.IKA:     11448,
		device.UR3e:    5460,
		device.Quantos: 2367,
	}
}

// NumSupervisedRuns is the number of supervised procedure runs (§IV).
const NumSupervisedRuns = 25

// RunInfo describes one supervised run, in Fig. 6 ID order: IDs 0–11 are
// Joystick Movements (P4), 12–16 Automated Solubility with N9 (P1), 17–20
// Automated Solubility with N9 and UR3e (P2), 21–24 Crystal Solubility (P3).
type RunInfo struct {
	ID        int
	Run       string
	Procedure string
	Anomalous bool
	Commands  int
	Note      string
}

// Config configures Generate.
type Config struct {
	// Seed drives the entire campaign deterministically.
	Seed uint64
	// Scale shrinks the unsupervised bulk (and the per-device targets) for
	// fast tests: 1.0 (or 0) generates the full 128,785-object dataset. The
	// 25 supervised runs are generated at every scale.
	Scale float64
}

// Dataset is the generated RAD.
type Dataset struct {
	// Store holds the command dataset.
	Store *store.MemStore
	// Runs are the 25 supervised runs in Fig. 6 ID order.
	Runs []RunInfo
	// PowerByRun holds the UR3e power capture of each supervised P2 run.
	PowerByRun map[string][]power.Sample
	// Targets are the (possibly scaled) per-device totals the generator
	// aimed for; at scale 1.0 these are the paper's numbers.
	Targets map[string]int
}

// Generate produces the synthetic RAD.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	start := time.Date(2021, 9, 1, 9, 0, 0, 0, time.UTC)
	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Start: start, Seed: cfg.Seed, WithPower: true,
	})
	if err != nil {
		return nil, fmt.Errorf("rad: build lab: %w", err)
	}
	defer vl.Close()

	g := &generator{cfg: cfg, vl: vl, start: start,
		rng: rand.New(rand.NewPCG(cfg.Seed^0xabcd, cfg.Seed+0x1234))}
	ds := &Dataset{
		Store:      vl.Sink,
		PowerByRun: make(map[string][]power.Sample),
		Targets:    scaledTargets(cfg.Scale),
	}
	if err := g.supervised(ds); err != nil {
		return nil, err
	}
	if err := g.unsupervised(ds); err != nil {
		return nil, err
	}
	return ds, nil
}

func scaledTargets(scale float64) map[string]int {
	out := make(map[string]int, 5)
	for dev, n := range DeviceTargets() {
		out[dev] = int(math.Round(float64(n) * scale))
	}
	return out
}

type generator struct {
	cfg   Config
	vl    *procedure.VirtualLab
	start time.Time
	rng   *rand.Rand
}

// nextDay moves the campaign clock to the morning of a later day, spreading
// sessions across the three-month window.
func (g *generator) nextDay(days int) {
	now := g.vl.Clock.Now()
	target := now.Truncate(24 * time.Hour).Add(time.Duration(days)*24*time.Hour +
		time.Duration(8+g.rng.IntN(9))*time.Hour)
	g.vl.Clock.Set(target)
}

// dryRunCommands measures how many commands a run issues by executing it on
// a scratch lab with the same per-run seed. Per-run seeds make the command
// sequence independent of surrounding lab state, so the measurement places
// crash and stop points deterministically.
func (g *generator) dryRunCommands(kind string, opts procedure.Options) (int, error) {
	scratch, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{Seed: g.cfg.Seed ^ 0xdead})
	if err != nil {
		return 0, fmt.Errorf("rad: scratch lab: %w", err)
	}
	defer scratch.Close()
	res := runKind(scratch.Lab, kind, opts)
	if res.Err != nil {
		return 0, fmt.Errorf("rad: dry run %s: %w", kind, res.Err)
	}
	return res.Commands, nil
}

func runKind(lab *procedure.Lab, kind string, opts procedure.Options) procedure.Result {
	switch kind {
	case procedure.P1:
		return procedure.RunSolubilityN9(lab, opts)
	case procedure.P2:
		return procedure.RunSolubilityN9UR(lab, opts)
	case procedure.P3:
		return procedure.RunCrystalSolubility(lab, opts)
	default:
		return procedure.RunJoystick(lab, opts, 0)
	}
}

// supervised executes the 25 supervised runs in Fig. 6 ID order, injecting
// the three anomalies exactly where the paper's narrative places them.
func (g *generator) supervised(ds *Dataset) error {
	type spec struct {
		kind string
		opts procedure.Options
		note string
		// fractions of the dry-run command count at which to crash or stop
		// (0 = none).
		crashAt  float64
		crashDev string
		crashWhy string
		stopAt   float64
	}
	seed := func(id int) uint64 { return g.cfg.Seed*1000 + uint64(id) + 1 }

	// Benign runs are not sterile: several contain operator quirks (manual
	// detours between phases) — the realistic irregularities behind the
	// perplexity IDS's false positives (Table I).
	quirks := map[int]int{2: 6, 5: 3, 9: 2, 13: 4, 19: 4, 23: 3}

	specs := make([]spec, 0, NumSupervisedRuns)
	// IDs 0–11: joystick sessions of varying length.
	for id := 0; id < 12; id++ {
		specs = append(specs, spec{kind: procedure.Joystick,
			opts: procedure.Options{Seed: seed(id)},
			note: "joystick session"})
	}
	// IDs 12–16: Automated Solubility with N9.
	specs = append(specs,
		spec{kind: procedure.P1, note: "used joystick to position N9; ran out of solid before dosing",
			opts: procedure.Options{Seed: seed(12), JoystickPrefix: 40, StopBeforeDosing: true}},
		spec{kind: procedure.P1, opts: procedure.Options{Seed: seed(13), Solid: "NABH4"}},
		spec{kind: procedure.P1, opts: procedure.Options{Seed: seed(14), Solid: "CSTI"}},
		spec{kind: procedure.P1, opts: procedure.Options{Seed: seed(15), Solid: "GENTISTIC"}},
		spec{kind: procedure.P1, note: "ANOMALY: Quantos front door crashed with the robot",
			opts:    procedure.Options{Seed: seed(16), Solid: "NABH4"},
			crashAt: 0.65, crashDev: device.Quantos, crashWhy: "front door crashed with the N9 robot"},
	)
	// IDs 17–20: Automated Solubility with N9 and UR3e.
	specs = append(specs,
		spec{kind: procedure.P2, note: "ANOMALY: Quantos front door crashed into UR3e at ~10%",
			opts:    procedure.Options{Seed: seed(17), Solid: "NABH4"},
			crashAt: 0.08, crashDev: device.Quantos, crashWhy: "front door crashed into UR3e"},
		spec{kind: procedure.P2, note: "wrong gripper configuration; operator stopped at ~10%",
			opts:   procedure.Options{Seed: seed(18), Solid: "NABH4"},
			stopAt: 0.10},
		spec{kind: procedure.P2, opts: procedure.Options{Seed: seed(19), Solid: "CSTI"}},
		spec{kind: procedure.P2, opts: procedure.Options{Seed: seed(20), Solid: "GENTISTIC"}},
	)
	// IDs 21–24: Crystal Solubility.
	specs = append(specs,
		spec{kind: procedure.P3, opts: procedure.Options{Seed: seed(21)}},
		spec{kind: procedure.P3, note: "ANOMALY: arm crashed with the Tecan at the end",
			opts:    procedure.Options{Seed: seed(22)},
			crashAt: 0.97, crashDev: device.C9, crashWhy: "N9 arm crashed with the Tecan"},
		spec{kind: procedure.P3, opts: procedure.Options{Seed: seed(23)}},
		spec{kind: procedure.P3, opts: procedure.Options{Seed: seed(24)}},
	)

	for id, sp := range specs {
		sp.opts.Run = fmt.Sprintf("run-%d", id)
		sp.opts.Quirks = quirks[id]
		if sp.crashAt > 0 || sp.stopAt > 0 {
			total, err := g.dryRunCommands(sp.kind, sp.opts)
			if err != nil {
				return err
			}
			if sp.crashAt > 0 {
				sp.opts.Crash = &procedure.CrashPlan{
					Device: sp.crashDev, Reason: sp.crashWhy,
					AfterCommands: int(sp.crashAt * float64(total)),
				}
			}
			if sp.stopAt > 0 {
				sp.opts.StopAfterCommands = int(sp.stopAt * float64(total))
			}
		}

		g.nextDay(1 + g.rng.IntN(2))
		monStart := g.vl.Lab.Monitor.Len()
		res := runKind(g.vl.Lab, sp.kind, sp.opts)
		if res.Err != nil && !res.Anomalous && res.Err != procedure.Stopped {
			return fmt.Errorf("rad: supervised %s (%s): %w", sp.opts.Run, sp.kind, res.Err)
		}
		// Clear any fault the crash left armed so later activity proceeds.
		if sp.crashDev != "" {
			if fa, ok := g.vl.Lab.Faultable(sp.crashDev); ok {
				fa.ClearFault()
			}
		}
		if sp.kind == procedure.P2 {
			all := g.vl.Lab.Monitor.Samples()
			ds.PowerByRun[sp.opts.Run] = all[monStart:]
		}
		ds.Runs = append(ds.Runs, RunInfo{
			ID: id, Run: sp.opts.Run, Procedure: sp.kind,
			Anomalous: res.Anomalous, Commands: res.Commands, Note: sp.note,
		})
	}
	// The power monitor keeps recording during unsupervised activity; reset
	// it so the bulk phase does not hold tens of millions of quiescent
	// entries in memory (the paper similarly stores only a fraction of
	// quiescent samples).
	g.vl.Lab.Monitor.Reset()
	return nil
}

// unsupervised generates the campaign bulk: unlabeled screens, joystick
// prototyping, and per-device top-up sessions landing exactly on the scaled
// Fig. 5(a) totals.
func (g *generator) unsupervised(ds *Dataset) error {
	scale := g.cfg.Scale
	round := func(n float64) int { return int(math.Round(n * scale)) }

	// Structured unlabeled activity, sized to stay safely under each
	// device's target so the top-up fill is always non-negative at scale 1.
	nJoy, nP1, nP2, nP3 := round(40), round(20), round(10), round(8)
	solids := []string{"NABH4", "CSTI", "GENTISTIC"}
	for i := 0; i < nJoy; i++ {
		g.nextDay(g.rng.IntN(2))
		if res := procedure.RunJoystick(g.vl.Lab, procedure.Options{Unsupervised: true}, 0); res.Err != nil {
			return fmt.Errorf("rad: unsupervised joystick: %w", res.Err)
		}
	}
	for i := 0; i < nP1; i++ {
		g.nextDay(g.rng.IntN(2))
		opts := procedure.Options{Unsupervised: true, Solid: solids[g.rng.IntN(3)], Vials: 1 + g.rng.IntN(3)}
		if res := procedure.RunSolubilityN9(g.vl.Lab, opts); res.Err != nil {
			return fmt.Errorf("rad: unsupervised P1: %w", res.Err)
		}
	}
	for i := 0; i < nP2; i++ {
		g.nextDay(g.rng.IntN(2))
		opts := procedure.Options{Unsupervised: true, Solid: solids[g.rng.IntN(3)], Vials: 1 + g.rng.IntN(2)}
		if res := procedure.RunSolubilityN9UR(g.vl.Lab, opts); res.Err != nil {
			return fmt.Errorf("rad: unsupervised P2: %w", res.Err)
		}
		g.vl.Lab.Monitor.Reset()
	}
	for i := 0; i < nP3; i++ {
		g.nextDay(g.rng.IntN(2))
		opts := procedure.Options{Unsupervised: true, Vials: 1 + g.rng.IntN(3)}
		if res := procedure.RunCrystalSolubility(g.vl.Lab, opts); res.Err != nil {
			return fmt.Errorf("rad: unsupervised P3: %w", res.Err)
		}
	}

	// Top-up fill: land exactly on the per-device targets. At small scales
	// the structured activity may already exceed a target; the deficit
	// clamps to zero (totals are exact at scale 1, asserted in tests).
	counts := ds.Store.CountByDevice()
	for _, dev := range device.Names() {
		deficit := ds.Targets[dev] - counts[dev]
		for deficit > 0 {
			// Fill in bounded sessions: keeps the UR3e power buffer small
			// (reset between chunks) and interleaves days realistically.
			chunk := deficit
			if chunk > 2500 {
				chunk = 2500
			}
			n, err := procedure.FillDevice(g.vl.Lab, dev, chunk)
			if err != nil {
				return fmt.Errorf("rad: fill %s: %w", dev, err)
			}
			deficit -= n
			if dev == device.UR3e {
				g.vl.Lab.Monitor.Reset()
			}
			g.nextDay(g.rng.IntN(2))
		}
	}
	return nil
}
