// Package rad assembles the Robotic Arm Dataset: a synthetic reproduction of
// the three-month trace collection described in §IV. It generates the 25
// supervised procedure runs (12×P4 joystick, 5×P1, 4×P2, 4×P3, three of
// which end in physical crashes), the unsupervised prototyping bulk, and the
// power captures for the supervised P2 runs — landing exactly on the
// per-device trace-object totals the paper reports for Fig. 5(a).
//
// # Sharded generation and the canonical ordering
//
// The campaign is generated as independent shards, fanned out over a bounded
// worker pool (internal/parallel) and merged deterministically:
//
//  1. every supervised run is one shard (shards 0–24, in Fig. 6 ID order);
//  2. every structured unsupervised session (joystick, P1, P2, P3) is one
//     shard, in planning order;
//  3. each device's top-up fill stream is one shard, in device legend order.
//
// Each shard executes on its own virtual lab with a private, seed-derived
// rand/v2 stream and its own virtual clock, started at an instant assigned
// by a serial planning pass — so a shard's trace content is a pure function
// of (Config.Seed, shard ordinal) and never of scheduling. The merged
// dataset is ordered canonically: records sort by virtual timestamp, with
// ties broken by shard ordinal and then by position within the shard, and
// sequence numbers are assigned after the merge. The result is byte-identical
// for every Workers value and every GOMAXPROCS setting (asserted by the
// golden-hash regression test in rad_test.go).
package rad

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"rad/internal/device"
	"rad/internal/parallel"
	"rad/internal/power"
	"rad/internal/procedure"
	"rad/internal/store"
)

// TotalTraceObjects is the command-dataset size the paper reports (§IV).
const TotalTraceObjects = 128785

// DeviceTargets are the per-device trace-object totals from the Fig. 5(a)
// legend. They sum to TotalTraceObjects.
func DeviceTargets() map[string]int {
	return map[string]int{
		device.C9:      93231,
		device.Tecan:   16279,
		device.IKA:     11448,
		device.UR3e:    5460,
		device.Quantos: 2367,
	}
}

// NumSupervisedRuns is the number of supervised procedure runs (§IV).
const NumSupervisedRuns = 25

// RunInfo describes one supervised run, in Fig. 6 ID order: IDs 0–11 are
// Joystick Movements (P4), 12–16 Automated Solubility with N9 (P1), 17–20
// Automated Solubility with N9 and UR3e (P2), 21–24 Crystal Solubility (P3).
type RunInfo struct {
	ID        int
	Run       string
	Procedure string
	Anomalous bool
	Commands  int
	Note      string
}

// Config configures Generate.
type Config struct {
	// Seed drives the entire campaign deterministically.
	Seed uint64
	// Scale shrinks the unsupervised bulk (and the per-device targets) for
	// fast tests: 1.0 (or 0) generates the full 128,785-object dataset. The
	// 25 supervised runs are generated at every scale.
	Scale float64
	// Workers bounds how many shards generate concurrently; <= 0 selects
	// GOMAXPROCS. The output is byte-identical for every value.
	Workers int
}

// Dataset is the generated RAD.
type Dataset struct {
	// Store holds the command dataset in the canonical merged order.
	Store *store.MemStore
	// Runs are the 25 supervised runs in Fig. 6 ID order.
	Runs []RunInfo
	// PowerByRun holds the UR3e power capture of each supervised P2 run.
	PowerByRun map[string][]power.Sample
	// Targets are the (possibly scaled) per-device totals the generator
	// aimed for; at scale 1.0 these are the paper's numbers.
	Targets map[string]int
}

// shardSeed derives an independent, well-mixed PRNG seed for shard ord from
// the campaign seed (splitmix64 over a Weyl sequence, the standard recipe
// for splitting one seed into independent streams).
func shardSeed(seed, ord uint64) uint64 {
	z := seed + (ord+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// recordBefore is the canonical merge order's strict less: virtual
// timestamp only. Ties are resolved by parallel.Merge's shard-ordinal rule.
func recordBefore(a, b store.Record) bool { return a.Time.Before(b.Time) }

// Generate produces the synthetic RAD.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	workers := parallel.Workers(cfg.Workers)
	p := newPlan(cfg)

	ds := &Dataset{
		PowerByRun: make(map[string][]power.Sample),
		Targets:    scaledTargets(cfg.Scale),
	}

	// Stage 1+2: the supervised runs and the structured unsupervised
	// sessions are all independent shards; fan them out together.
	nSup, nStruct := len(p.supervised), len(p.structured)
	shards := make([][]store.Record, nSup+nStruct, nSup+nStruct+len(p.fills))
	supRes := make([]supResult, nSup)
	err := parallel.ForEach(nSup+nStruct, workers, func(i int) error {
		if i < nSup {
			res, err := p.runSupervised(p.supervised[i])
			if err != nil {
				return err
			}
			supRes[i] = res
			shards[i] = res.records
			return nil
		}
		recs, err := p.runStructured(p.structured[i-nSup])
		if err != nil {
			return err
		}
		shards[i] = recs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, res := range supRes {
		ds.Runs = append(ds.Runs, res.info)
		if res.power != nil {
			ds.PowerByRun[res.info.Run] = res.power
		}
	}

	// Stage 3: top-up fill — land exactly on the per-device targets. The
	// deficit each device shard must cover is fixed by the shards above; at
	// small scales structured activity may already exceed a target and the
	// deficit clamps to zero (totals are exact at scale 1, asserted in
	// tests).
	counts := make(map[string]int)
	for _, shard := range shards {
		for _, r := range shard {
			counts[r.Device]++
		}
	}
	fillShards, err := parallel.Map(p.fills, workers, func(_ int, f fillSpec) ([]store.Record, error) {
		return p.runFill(f, ds.Targets[f.dev]-counts[f.dev])
	})
	if err != nil {
		return nil, err
	}
	shards = append(shards, fillShards...)

	// Fan-in: canonical ordered merge, then one batched append assigning
	// the final sequence numbers.
	ds.Store = store.NewMemStore()
	if err := ds.Store.AppendBatch(parallel.Merge(shards, recordBefore)); err != nil {
		return nil, fmt.Errorf("rad: merge shards: %w", err)
	}
	return ds, nil
}

func scaledTargets(scale float64) map[string]int {
	out := make(map[string]int, 5)
	for dev, n := range DeviceTargets() {
		out[dev] = int(math.Round(float64(n) * scale))
	}
	return out
}

// --- planning ---

// supSpec is one supervised run shard, fully planned.
type supSpec struct {
	id      int
	kind    string
	opts    procedure.Options
	note    string
	labSeed uint64
	start   time.Time
	// fractions of the dry-run command count at which to crash or stop
	// (0 = none).
	crashAt  float64
	crashDev string
	crashWhy string
	stopAt   float64
}

// structSpec is one structured unsupervised session shard.
type structSpec struct {
	kind    string
	solid   string
	vials   int
	labSeed uint64
	start   time.Time
}

// fillSpec is one device's top-up stream shard.
type fillSpec struct {
	dev     string
	labSeed uint64
	start   time.Time
}

// plan is the serial planning pass: it walks the campaign calendar with the
// campaign RNG and assigns every shard its start instant, lab seed, and
// parameters. Planning consumes randomness in one fixed order, so the shard
// specs — and therefore the dataset — do not depend on how the shards are
// later scheduled.
type plan struct {
	cfg        Config
	supervised []supSpec
	structured []structSpec
	fills      []fillSpec
}

// schedule walks the campaign calendar the way the collection campaign
// spread sessions over its three-month window.
type schedule struct {
	rng *rand.Rand
	now time.Time
}

// nextDay moves the schedule to the morning of a later day. Matching the
// virtual clock's Set, time never moves backwards.
func (s *schedule) nextDay(days int) time.Time {
	target := s.now.Truncate(24 * time.Hour).Add(time.Duration(days)*24*time.Hour +
		time.Duration(8+s.rng.IntN(9))*time.Hour)
	if target.After(s.now) {
		s.now = target
	}
	return s.now
}

func newPlan(cfg Config) *plan {
	start := time.Date(2021, 9, 1, 9, 0, 0, 0, time.UTC)
	sched := &schedule{
		rng: rand.New(rand.NewPCG(cfg.Seed^0xabcd, cfg.Seed+0x1234)),
		now: start,
	}
	p := &plan{cfg: cfg}
	ord := uint64(0)
	nextSeed := func() uint64 { ord++; return shardSeed(cfg.Seed, ord) }

	// --- supervised runs (Fig. 6 ID order) ---
	runSeed := func(id int) uint64 { return cfg.Seed*1000 + uint64(id) + 1 }

	// Benign runs are not sterile: several contain operator quirks (manual
	// detours between phases) — the realistic irregularities behind the
	// perplexity IDS's false positives (Table I).
	quirks := map[int]int{2: 6, 5: 3, 9: 2, 13: 4, 19: 4, 23: 3}

	specs := make([]supSpec, 0, NumSupervisedRuns)
	// IDs 0–11: joystick sessions of varying length.
	for id := 0; id < 12; id++ {
		specs = append(specs, supSpec{kind: procedure.Joystick,
			opts: procedure.Options{Seed: runSeed(id)},
			note: "joystick session"})
	}
	// IDs 12–16: Automated Solubility with N9.
	specs = append(specs,
		supSpec{kind: procedure.P1, note: "used joystick to position N9; ran out of solid before dosing",
			opts: procedure.Options{Seed: runSeed(12), JoystickPrefix: 40, StopBeforeDosing: true}},
		supSpec{kind: procedure.P1, opts: procedure.Options{Seed: runSeed(13), Solid: "NABH4"}},
		supSpec{kind: procedure.P1, opts: procedure.Options{Seed: runSeed(14), Solid: "CSTI"}},
		supSpec{kind: procedure.P1, opts: procedure.Options{Seed: runSeed(15), Solid: "GENTISTIC"}},
		supSpec{kind: procedure.P1, note: "ANOMALY: Quantos front door crashed with the robot",
			opts:    procedure.Options{Seed: runSeed(16), Solid: "NABH4"},
			crashAt: 0.65, crashDev: device.Quantos, crashWhy: "front door crashed with the N9 robot"},
	)
	// IDs 17–20: Automated Solubility with N9 and UR3e.
	specs = append(specs,
		supSpec{kind: procedure.P2, note: "ANOMALY: Quantos front door crashed into UR3e at ~10%",
			opts:    procedure.Options{Seed: runSeed(17), Solid: "NABH4"},
			crashAt: 0.08, crashDev: device.Quantos, crashWhy: "front door crashed into UR3e"},
		supSpec{kind: procedure.P2, note: "wrong gripper configuration; operator stopped at ~10%",
			opts:   procedure.Options{Seed: runSeed(18), Solid: "NABH4"},
			stopAt: 0.10},
		supSpec{kind: procedure.P2, opts: procedure.Options{Seed: runSeed(19), Solid: "CSTI"}},
		supSpec{kind: procedure.P2, opts: procedure.Options{Seed: runSeed(20), Solid: "GENTISTIC"}},
	)
	// IDs 21–24: Crystal Solubility.
	specs = append(specs,
		supSpec{kind: procedure.P3, opts: procedure.Options{Seed: runSeed(21)}},
		supSpec{kind: procedure.P3, note: "ANOMALY: arm crashed with the Tecan at the end",
			opts:    procedure.Options{Seed: runSeed(22)},
			crashAt: 0.97, crashDev: device.C9, crashWhy: "N9 arm crashed with the Tecan"},
		supSpec{kind: procedure.P3, opts: procedure.Options{Seed: runSeed(23)}},
		supSpec{kind: procedure.P3, opts: procedure.Options{Seed: runSeed(24)}},
	)
	for id := range specs {
		specs[id].id = id
		specs[id].opts.Run = fmt.Sprintf("run-%d", id)
		specs[id].opts.Quirks = quirks[id]
		specs[id].labSeed = nextSeed()
		specs[id].start = sched.nextDay(1 + sched.rng.IntN(2))
	}
	p.supervised = specs

	// --- structured unsupervised sessions ---
	// Structured unlabeled activity, sized to stay safely under each
	// device's target so the top-up fill is always non-negative at scale 1.
	scale := p.cfg.Scale
	round := func(n float64) int { return int(math.Round(n * scale)) }
	nJoy, nP1, nP2, nP3 := round(40), round(20), round(10), round(8)
	solids := []string{"NABH4", "CSTI", "GENTISTIC"}
	for i := 0; i < nJoy; i++ {
		p.structured = append(p.structured, structSpec{kind: procedure.Joystick,
			labSeed: nextSeed(), start: sched.nextDay(sched.rng.IntN(2))})
	}
	for i := 0; i < nP1; i++ {
		p.structured = append(p.structured, structSpec{kind: procedure.P1,
			solid: solids[sched.rng.IntN(3)], vials: 1 + sched.rng.IntN(3),
			labSeed: nextSeed(), start: sched.nextDay(sched.rng.IntN(2))})
	}
	for i := 0; i < nP2; i++ {
		p.structured = append(p.structured, structSpec{kind: procedure.P2,
			solid: solids[sched.rng.IntN(3)], vials: 1 + sched.rng.IntN(2),
			labSeed: nextSeed(), start: sched.nextDay(sched.rng.IntN(2))})
	}
	for i := 0; i < nP3; i++ {
		p.structured = append(p.structured, structSpec{kind: procedure.P3,
			vials:   1 + sched.rng.IntN(3),
			labSeed: nextSeed(), start: sched.nextDay(sched.rng.IntN(2))})
	}

	// --- per-device top-up streams (device legend order) ---
	for _, dev := range device.Names() {
		p.fills = append(p.fills, fillSpec{dev: dev,
			labSeed: nextSeed(), start: sched.nextDay(1 + sched.rng.IntN(2))})
	}
	return p
}

// --- shard execution ---

// supResult is one supervised shard's output.
type supResult struct {
	info    RunInfo
	records []store.Record
	power   []power.Sample
}

// dryRunCommands measures how many commands a run issues by executing it on
// a scratch lab with the same per-run seed. Per-run seeds make the command
// sequence independent of surrounding lab state, so the measurement places
// crash and stop points deterministically.
func (p *plan) dryRunCommands(kind string, opts procedure.Options) (int, error) {
	scratch, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{Seed: p.cfg.Seed ^ 0xdead})
	if err != nil {
		return 0, fmt.Errorf("rad: scratch lab: %w", err)
	}
	defer scratch.Close()
	res := runKind(scratch.Lab, kind, opts)
	if res.Err != nil {
		return 0, fmt.Errorf("rad: dry run %s: %w", kind, res.Err)
	}
	return res.Commands, nil
}

func runKind(lab *procedure.Lab, kind string, opts procedure.Options) procedure.Result {
	switch kind {
	case procedure.P1:
		return procedure.RunSolubilityN9(lab, opts)
	case procedure.P2:
		return procedure.RunSolubilityN9UR(lab, opts)
	case procedure.P3:
		return procedure.RunCrystalSolubility(lab, opts)
	default:
		return procedure.RunJoystick(lab, opts, 0)
	}
}

// runSupervised executes one supervised run on its own shard lab, injecting
// the anomaly exactly where the paper's narrative places it.
func (p *plan) runSupervised(sp supSpec) (supResult, error) {
	if sp.crashAt > 0 || sp.stopAt > 0 {
		total, err := p.dryRunCommands(sp.kind, sp.opts)
		if err != nil {
			return supResult{}, err
		}
		if sp.crashAt > 0 {
			sp.opts.Crash = &procedure.CrashPlan{
				Device: sp.crashDev, Reason: sp.crashWhy,
				AfterCommands: int(sp.crashAt * float64(total)),
			}
		}
		if sp.stopAt > 0 {
			sp.opts.StopAfterCommands = int(sp.stopAt * float64(total))
		}
	}

	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Start: sp.start, Seed: sp.labSeed, WithPower: sp.kind == procedure.P2,
	})
	if err != nil {
		return supResult{}, fmt.Errorf("rad: build shard lab: %w", err)
	}
	defer vl.Close()

	res := runKind(vl.Lab, sp.kind, sp.opts)
	if res.Err != nil && !res.Anomalous && res.Err != procedure.Stopped {
		return supResult{}, fmt.Errorf("rad: supervised %s (%s): %w", sp.opts.Run, sp.kind, res.Err)
	}
	out := supResult{
		info: RunInfo{
			ID: sp.id, Run: sp.opts.Run, Procedure: sp.kind,
			Anomalous: res.Anomalous, Commands: res.Commands, Note: sp.note,
		},
		records: vl.Sink.All(),
	}
	if sp.kind == procedure.P2 {
		out.power = vl.Lab.Monitor.Samples()
	}
	return out, nil
}

// runStructured executes one unsupervised prototyping session on its own
// shard lab.
func (p *plan) runStructured(sp structSpec) ([]store.Record, error) {
	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Start: sp.start, Seed: sp.labSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("rad: build shard lab: %w", err)
	}
	defer vl.Close()
	opts := procedure.Options{Unsupervised: true, Solid: sp.solid, Vials: sp.vials}
	if res := runKind(vl.Lab, sp.kind, opts); res.Err != nil {
		return nil, fmt.Errorf("rad: unsupervised %s: %w", sp.kind, res.Err)
	}
	return vl.Sink.All(), nil
}

// runFill issues exactly deficit commands against one device, in bounded
// sessions spread across days like the rest of the campaign.
func (p *plan) runFill(sp fillSpec, deficit int) ([]store.Record, error) {
	if deficit <= 0 {
		return nil, nil
	}
	vl, err := procedure.NewVirtualLab(procedure.VirtualLabConfig{
		Start: sp.start, Seed: sp.labSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("rad: build shard lab: %w", err)
	}
	defer vl.Close()
	gaps := &schedule{rng: rand.New(rand.NewPCG(sp.labSeed^0xf111, sp.labSeed+0x0dd)), now: sp.start}
	for deficit > 0 {
		// Fill in bounded sessions: keeps each session realistic and
		// interleaves days like the serial campaign did.
		chunk := deficit
		if chunk > 2500 {
			chunk = 2500
		}
		n, err := procedure.FillDevice(vl.Lab, sp.dev, chunk)
		if err != nil {
			return nil, fmt.Errorf("rad: fill %s: %w", sp.dev, err)
		}
		deficit -= n
		gaps.now = vl.Clock.Now()
		vl.Clock.Set(gaps.nextDay(gaps.rng.IntN(2)))
	}
	return vl.Sink.All(), nil
}
