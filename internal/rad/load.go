package rad

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rad/internal/store"
)

// FromRecords rebuilds a Dataset view over exported trace records (e.g. read
// back from radgen's commands.jsonl), re-deriving the supervised-run index
// from the labels: run IDs from the "run-N" naming, procedure types from the
// labels, and anomaly ground truth from hardware-fault exceptions. Power
// captures are not part of the command export, so PowerByRun is empty.
//
// This closes the generate-once/analyze-many loop: a dataset written to disk
// by cmd/radgen feeds the same Fig. 5/6/Table I harnesses as a freshly
// generated one.
func FromRecords(records []store.Record) (*Dataset, error) {
	st := store.NewMemStore()
	for _, r := range records {
		if err := st.Append(r); err != nil {
			return nil, fmt.Errorf("rad: load record: %w", err)
		}
	}
	return fromStore(st)
}

// fromStore derives the run index from a populated store.
func fromStore(st *store.MemStore) (*Dataset, error) {
	ds := &Dataset{Store: st, Targets: map[string]int{}}
	for dev, n := range st.CountByDevice() {
		ds.Targets[dev] = n
	}
	type runAgg struct {
		id        int
		run       string
		proc      string
		commands  int
		anomalous bool
	}
	byRun := make(map[string]*runAgg)
	for _, r := range st.All() {
		if r.Run == "" {
			continue
		}
		agg, ok := byRun[r.Run]
		if !ok {
			id, err := runID(r.Run)
			if err != nil {
				return nil, err
			}
			agg = &runAgg{id: id, run: r.Run, proc: r.Procedure}
			byRun[r.Run] = agg
		}
		agg.commands++
		if r.Exception != "" && strings.Contains(r.Exception, "hardware fault") {
			agg.anomalous = true
		}
	}
	aggs := make([]*runAgg, 0, len(byRun))
	for _, agg := range byRun {
		aggs = append(aggs, agg)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].id < aggs[j].id })
	for _, agg := range aggs {
		ds.Runs = append(ds.Runs, RunInfo{
			ID: agg.id, Run: agg.run, Procedure: agg.proc,
			Anomalous: agg.anomalous, Commands: agg.commands,
			Note: "reconstructed from exported trace",
		})
	}
	return ds, nil
}

// runID parses the numeric suffix of a "run-N" label.
func runID(run string) (int, error) {
	const prefix = "run-"
	if !strings.HasPrefix(run, prefix) {
		return 0, fmt.Errorf("rad: run label %q is not run-N", run)
	}
	id, err := strconv.Atoi(run[len(prefix):])
	if err != nil {
		return 0, fmt.Errorf("rad: run label %q: %w", run, err)
	}
	return id, nil
}
