package rad

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"rad/internal/device"
	"rad/internal/procedure"
	"rad/internal/store"
)

// smallDataset generates a scaled-down campaign shared by the tests in this
// file (generation is the expensive part).
var smallDataset *Dataset

func dataset(t *testing.T) *Dataset {
	t.Helper()
	if smallDataset == nil {
		ds, err := Generate(Config{Seed: 7, Scale: 0.2})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		smallDataset = ds
	}
	return smallDataset
}

func TestGenerateSupervisedStructure(t *testing.T) {
	ds := dataset(t)
	if len(ds.Runs) != NumSupervisedRuns {
		t.Fatalf("%d runs, want %d", len(ds.Runs), NumSupervisedRuns)
	}
	wantProc := func(id int) string {
		switch {
		case id <= 11:
			return procedure.Joystick
		case id <= 16:
			return procedure.P1
		case id <= 20:
			return procedure.P2
		default:
			return procedure.P3
		}
	}
	for i, run := range ds.Runs {
		if run.ID != i {
			t.Errorf("run %d has ID %d", i, run.ID)
		}
		if run.Procedure != wantProc(i) {
			t.Errorf("run %d procedure = %s, want %s", i, run.Procedure, wantProc(i))
		}
	}
	// Exactly runs 16, 17, 22 are anomalous.
	for i, run := range ds.Runs {
		wantAnom := i == 16 || i == 17 || i == 22
		if run.Anomalous != wantAnom {
			t.Errorf("run %d anomalous = %v, want %v", i, run.Anomalous, wantAnom)
		}
	}
}

func TestGenerateVerifies(t *testing.T) {
	if err := dataset(t).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPerDeviceTotalsMatchScaledTargets(t *testing.T) {
	ds := dataset(t)
	counts := ds.Store.CountByDevice()
	// At scale 0.2 every scaled target exceeds the supervised + structured
	// output, so the top-up fill must land exactly on it (as it does for the
	// paper's totals at scale 1).
	for dev, want := range ds.Targets {
		if got := counts[dev]; got != want {
			t.Errorf("%s: %d trace objects, want exactly %d", dev, got, want)
		}
	}
	total := 0
	for _, dev := range device.Names() {
		total += counts[dev]
	}
	if want := TotalTraceObjects / 5; total < want-3 || total > want+3 {
		t.Errorf("total %d, want ≈%d (rounding across five devices)", total, want)
	}
}

func TestRun17And18TruncatedSimilarly(t *testing.T) {
	ds := dataset(t)
	len17 := ds.Runs[17].Commands
	len18 := ds.Runs[18].Commands
	full := ds.Runs[19].Commands
	// Run 18 stops silently at ~10%; run 17 crashes at ~10% and then carries
	// the operator's recovery session, so it is longer but still well short
	// of a complete P2.
	if len18 > full/4 {
		t.Errorf("run 18 (%d commands) should stop ~10%% into a full P2 (%d commands)", len18, full)
	}
	if len17 >= full*3/4 {
		t.Errorf("run 17 (%d commands) should remain well below a full P2 (%d commands)", len17, full)
	}
	if len18 == 0 || len17 == 0 {
		t.Error("truncated runs must still issue commands")
	}
}

func TestRun12ContainsNoDosingCommands(t *testing.T) {
	ds := dataset(t)
	for _, name := range ds.RunSequence("run-12") {
		if name == "start_dosing" || name == "target_mass" {
			t.Fatalf("run 12 contains %s; it stopped before dosing", name)
		}
	}
	seq := ds.RunSequence("run-12")
	armMvng := 0
	for _, n := range seq {
		if n == "ARM" || n == "MVNG" {
			armMvng++
		}
	}
	if frac := float64(armMvng) / float64(len(seq)); frac < 0.5 {
		t.Errorf("run 12 ARM+MVNG fraction %v, want joystick-like", frac)
	}
}

func TestAnomalousRunsCarryExceptions(t *testing.T) {
	ds := dataset(t)
	for _, id := range []int{16, 17, 22} {
		run := ds.Runs[id]
		recs := ds.Store.ByRun(run.Run)
		found := false
		for _, r := range recs {
			if r.Exception != "" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("anomalous run %d has no exception in its trace", id)
		}
	}
}

func TestRun22CrashesAtTheEnd(t *testing.T) {
	ds := dataset(t)
	// Run 22 should execute almost all of a complete P3 (runs 21/23/24).
	complete := (ds.Runs[21].Commands + ds.Runs[23].Commands + ds.Runs[24].Commands) / 3
	if got := ds.Runs[22].Commands; got < complete*3/4 {
		t.Errorf("run 22 issued %d commands, want near a complete P3 (%d)", got, complete)
	}
}

func TestPowerCapturedForP2Runs(t *testing.T) {
	ds := dataset(t)
	for _, id := range []int{17, 18, 19, 20} {
		run := ds.Runs[id]
		if len(ds.PowerByRun[run.Run]) == 0 {
			t.Errorf("no power samples for P2 %s", run.Run)
		}
	}
	if len(ds.PowerByRun) != 4 {
		t.Errorf("power captured for %d runs, want 4", len(ds.PowerByRun))
	}
}

func TestSupervisedSequencesShape(t *testing.T) {
	ds := dataset(t)
	seqs, anom := ds.SupervisedSequences()
	if len(seqs) != 25 || len(anom) != 25 {
		t.Fatalf("got %d/%d sequences/labels", len(seqs), len(anom))
	}
	nAnom := 0
	for i, a := range anom {
		if a {
			nAnom++
		}
		if len(seqs[i]) == 0 {
			t.Errorf("run %d has empty sequence", i)
		}
	}
	if nAnom != 3 {
		t.Errorf("%d anomalies in labels", nAnom)
	}
}

func TestCommandDistributionCoversCatalogOnly(t *testing.T) {
	ds := dataset(t)
	dist := ds.CommandDistribution()
	if len(dist) != 52 {
		t.Fatalf("distribution has %d entries, want 52", len(dist))
	}
	total := 0
	for _, cc := range dist {
		total += cc.Count
	}
	if total != ds.Store.Len() {
		t.Errorf("distribution total %d != store %d", total, ds.Store.Len())
	}
}

func TestUnsupervisedLabelledUnknown(t *testing.T) {
	ds := dataset(t)
	unknown := len(ds.Store.ByProcedure(store.UnknownProcedure))
	supervised := 0
	for _, run := range ds.Runs {
		supervised += run.Commands
	}
	if unknown == 0 {
		t.Fatal("no unknown-procedure records")
	}
	// Known labels + unknown + crash-epilogue commands should cover the store.
	if unknown+supervised > ds.Store.Len() {
		t.Errorf("label accounting: unknown %d + supervised %d > total %d",
			unknown, supervised, ds.Store.Len())
	}
}

func TestDeviceTargetsSumToTotal(t *testing.T) {
	sum := 0
	for _, n := range DeviceTargets() {
		sum += n
	}
	if sum != TotalTraceObjects {
		t.Fatalf("targets sum to %d, want %d", sum, TotalTraceObjects)
	}
}

// TestCampaignSpansThreeMonths asserts the §IV collection-period claim at
// full scale: the campaign covers roughly three months of virtual lab time.
func TestCampaignSpansThreeMonths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation")
	}
	ds, err := Generate(Config{Seed: 42, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, last, days := ds.Span()
	if days < 70 || days > 110 {
		t.Errorf("campaign spans %.1f days (%s → %s), want ≈90 (a three-month period)",
			days, first.Format("2006-01-02"), last.Format("2006-01-02"))
	}
}

func TestSpanEmptyDataset(t *testing.T) {
	empty := &Dataset{Store: store.NewMemStore()}
	if _, _, days := empty.Span(); days != 0 {
		t.Errorf("empty span = %v", days)
	}
}

// exportHash hashes the dataset's full CSV and JSONL exports — the bytes a
// user of radgen would actually receive.
func exportHash(t *testing.T, ds *Dataset) string {
	t.Helper()
	h := sha256.New()
	var buf bytes.Buffer
	csvw := store.NewCSVWriter(&buf)
	if err := csvw.AppendBatch(ds.Store.All()); err != nil {
		t.Fatalf("CSV export: %v", err)
	}
	h.Write(buf.Bytes())
	buf.Reset()
	jw := store.NewJSONLWriter(&buf)
	if err := jw.AppendBatch(ds.Store.All()); err != nil {
		t.Fatalf("JSONL export: %v", err)
	}
	h.Write(buf.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateParallelDeterministic is the regression test for the canonical
// ordering guarantee: the same Config must produce byte-identical CSV/JSONL
// exports whether generation runs on one worker under GOMAXPROCS=1 or on
// many workers under all CPUs.
func TestGenerateParallelDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.05}

	prev := runtime.GOMAXPROCS(1)
	cfg.Workers = 1
	serial, err := Generate(cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	want := exportHash(t, serial)

	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Store.Len() != serial.Store.Len() {
			t.Fatalf("workers=%d produced %d records, serial produced %d",
				workers, ds.Store.Len(), serial.Store.Len())
		}
		if got := exportHash(t, ds); got != want {
			t.Errorf("workers=%d export hash %s, want %s (serial)", workers, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.AllSequence(), b.AllSequence()
	if len(sa) != len(sb) {
		t.Fatalf("lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sequence diverges at %d", i)
		}
	}
}
