package rad

import (
	"sort"

	"rad/internal/device"
)

// deviceLegendOrder sorts device names by descending trace count, matching
// the Fig. 5(a) legend.
func deviceLegendOrder(counts map[string]int) []string {
	names := device.Names()
	sort.SliceStable(names, func(i, j int) bool {
		return counts[names[i]] > counts[names[j]]
	})
	return names
}

// deviceCatalog returns the catalog entries for one device.
func deviceCatalog(dev string) []device.CommandSpec {
	return device.CommandsFor(dev)
}

// catalogKeys indexes the 52 command-type keys.
func catalogKeys() map[string]bool {
	out := make(map[string]bool, 52)
	for _, spec := range device.Catalog() {
		out[spec.Key()] = true
	}
	return out
}
