package robot

import (
	"fmt"
	"math"
)

// NumJoints is the number of joints on the UR3e arm. The power dataset
// records joint-specific properties for each of the six joints (§IV).
const NumJoints = 6

// Config is a joint-space configuration: one angle (radians) per joint.
type Config [NumJoints]float64

// Sub returns the per-joint difference c - o.
func (c Config) Sub(o Config) Config {
	var d Config
	for i := range c {
		d[i] = c[i] - o[i]
	}
	return d
}

// MaxAbs returns the largest absolute joint value, and its index.
func (c Config) MaxAbs() (float64, int) {
	best, idx := 0.0, 0
	for i, v := range c {
		if a := math.Abs(v); a > best {
			best, idx = a, i
		}
	}
	return best, idx
}

// State is the kinematic state of all joints at one instant of a move.
type State struct {
	Pos [NumJoints]float64 // joint angles (rad)
	Vel [NumJoints]float64 // joint velocities (rad/s)
	Acc [NumJoints]float64 // joint accelerations (rad/s^2)
}

// Move is a synchronized joint-space motion from one configuration to
// another: the leading joint (largest excursion) follows a trapezoidal
// profile at the commanded limits and every other joint is time-scaled to
// finish simultaneously, which is how industrial controllers execute movej.
type Move struct {
	From, To Config

	lead    Profile            // profile of the leading joint
	leadD   float64            // leading distance (rad)
	deltas  Config             // signed per-joint excursions
	elapsed float64            // duration cache
	scale   [NumJoints]float64 // per-joint fraction of the leading profile
}

// NewMove plans a synchronized move between two configurations with the
// given velocity (rad/s) and acceleration (rad/s^2) limits on the leading
// joint.
func NewMove(from, to Config, vmax, amax float64) (*Move, error) {
	deltas := to.Sub(from)
	leadD, _ := deltas.MaxAbs()
	lead, err := NewProfile(leadD, vmax, amax)
	if err != nil {
		return nil, fmt.Errorf("robot: plan move: %w", err)
	}
	m := &Move{From: from, To: to, lead: lead, leadD: leadD, deltas: deltas, elapsed: lead.Duration()}
	for i, d := range deltas {
		if leadD > 0 {
			m.scale[i] = d / leadD // signed fraction, |scale| <= 1
		}
	}
	return m, nil
}

// Duration returns the move's total duration in seconds.
func (m *Move) Duration() float64 { return m.elapsed }

// StateAt returns the joint state at time t into the move. Times outside
// [0, Duration] clamp to the endpoints with zero velocity and acceleration.
func (m *Move) StateAt(t float64) State {
	var s State
	p := m.lead.Position(t)
	v := m.lead.Velocity(t)
	a := m.lead.Accel(t)
	for i := range s.Pos {
		s.Pos[i] = m.From[i] + m.scale[i]*p
		s.Vel[i] = m.scale[i] * v
		s.Acc[i] = m.scale[i] * a
	}
	return s
}

// Sample returns the move's states sampled every dt seconds, including the
// initial state at t=0 and the final resting state. dt must be positive.
func (m *Move) Sample(dt float64) []State {
	if dt <= 0 {
		return nil
	}
	n := int(math.Ceil(m.elapsed/dt)) + 1
	out := make([]State, 0, n+1)
	for t := 0.0; t < m.elapsed; t += dt {
		out = append(out, m.StateAt(t))
	}
	out = append(out, m.StateAt(m.elapsed))
	return out
}
