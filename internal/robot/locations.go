package robot

import "math"

// EffectiveReachMM is the effective lever arm used to convert the linear
// tool velocities that Hein Lab scripts command (mm/s, procedure P5) into
// leading-joint angular velocities. The UR3e has a 500 mm reach; vials are
// handled around 300 mm from the base.
const EffectiveReachMM = 300.0

// LinearToAngular converts a commanded linear tool velocity in mm/s to the
// leading-joint angular velocity in rad/s used by the move planner.
func LinearToAngular(mmPerSec float64) float64 {
	return mmPerSec / EffectiveReachMM
}

// DefaultAccel is the joint acceleration limit (rad/s^2) used when a script
// does not override it, chosen so typical vial moves last one to three
// seconds as in the lab.
const DefaultAccel = 1.2

// DefaultVelocityMMS is the linear velocity Hein Lab scripts use when the
// script does not specify one.
const DefaultVelocityMMS = 200.0

// Named joint configurations used by the paper's procedures. L0–L5 are the
// waypoints of P2's five move_joints segments (Fig. 7a); the remaining names
// are the pick-and-place waypoints of the vial-transfer portion of P2
// (Fig. 7b). Angles in radians.
var locations = map[string]Config{
	"home": {0, -math.Pi / 2, 0, -math.Pi / 2, 0, 0},

	// The five Fig. 7(a) segments L0→L1 … L4→L5. Each consecutive pair
	// differs in base-rotation magnitude and direction AND in how the arm's
	// extension (shoulder+elbow) evolves, so each segment excites the
	// joint-1 current in its own way — five visibly distinct, repeatable
	// signatures. Segment character (base Δ, extension path):
	//   L0→L1: +0.9, folded → mid
	//   L1→L2: −1.3, mid → extended
	//   L2→L3: +0.3 (shoulder-led move), extended → folded
	//   L3→L4: +1.2, folded → extended
	//   L4→L5: −0.6, extended → mid
	"L0": {0.00, -1.57, 0.00, -1.57, 0.00, 0.00},
	"L1": {0.90, -1.20, 0.35, -1.40, 0.20, 0.00},
	"L2": {-0.40, -1.50, 0.90, -1.00, -0.30, 0.25},
	"L3": {-0.10, -2.00, 0.40, -1.80, 0.45, -0.20},
	"L4": {1.10, -1.10, 0.60, -0.90, 0.10, 0.40},
	"L5": {0.50, -1.70, 0.80, -1.30, -0.50, 0.15},

	// Vial transfer waypoints (storage rack → Quantos → home).
	"storage_rack":   {1.10, -1.05, 0.50, -1.60, 0.30, 0.10},
	"above_rack":     {1.10, -1.25, 0.40, -1.50, 0.30, 0.10},
	"quantos_tray":   {-1.20, -0.95, 0.70, -1.40, -0.40, 0.00},
	"above_quantos":  {-1.20, -1.15, 0.55, -1.30, -0.40, 0.00},
	"camera_station": {0.45, -1.30, 0.25, -1.45, 0.60, -0.10},
}

// Location returns the named joint configuration, reporting whether the name
// is known.
func Location(name string) (Config, bool) {
	c, ok := locations[name]
	return c, ok
}

// LocationNames returns the waypoint names in a stable order.
func LocationNames() []string {
	return []string{
		"home", "L0", "L1", "L2", "L3", "L4", "L5",
		"storage_rack", "above_rack", "quantos_tray", "above_quantos", "camera_station",
	}
}

// SegmentWaypoints returns the ordered L0..L5 waypoints of procedure P2's
// five move_joints segments.
func SegmentWaypoints() []string {
	return []string{"L0", "L1", "L2", "L3", "L4", "L5"}
}
