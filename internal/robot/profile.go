// Package robot implements the joint-space kinematics substrate for the
// simulated UR3e arm: trapezoidal velocity profiles, synchronized
// multi-joint moves, and the named waypoints (L0–L5, storage rack, Quantos
// tray, home) used by the paper's procedures P2, P5, and P6.
//
// The power dataset analysis (§VI) rests on the physics of arm motion:
// currents follow the acceleration/cruise/deceleration phases of each move,
// so the trajectory model here is what gives the power simulator its
// characteristic, repeatable per-segment signatures (Fig. 7).
package robot

import (
	"errors"
	"fmt"
	"math"
)

// Profile is a trapezoidal velocity profile covering a scalar distance D
// with peak velocity at most Vmax and acceleration magnitude Amax. When the
// distance is too short to reach Vmax the profile degenerates to a triangle
// (accelerate halfway, decelerate halfway).
type Profile struct {
	D    float64 // total distance (always >= 0)
	Vmax float64 // commanded velocity limit (> 0)
	Amax float64 // acceleration magnitude (> 0)

	vPeak float64 // velocity actually reached
	tAcc  float64 // acceleration phase duration
	tCru  float64 // cruise phase duration
}

// NewProfile builds a trapezoidal profile. It returns an error for
// non-positive velocity or acceleration limits; a zero distance yields a
// valid zero-duration profile.
func NewProfile(dist, vmax, amax float64) (Profile, error) {
	if vmax <= 0 || amax <= 0 {
		return Profile{}, fmt.Errorf("robot: profile limits must be positive (vmax=%v, amax=%v): %w",
			vmax, amax, errBadLimit)
	}
	if dist < 0 || math.IsNaN(dist) || math.IsInf(dist, 0) {
		return Profile{}, fmt.Errorf("robot: profile distance %v invalid: %w", dist, errBadLimit)
	}
	p := Profile{D: dist, Vmax: vmax, Amax: amax}
	// Distance needed to accelerate to vmax and back to rest.
	dFull := vmax * vmax / amax
	if dist >= dFull {
		p.vPeak = vmax
		p.tAcc = vmax / amax
		p.tCru = (dist - dFull) / vmax
	} else {
		p.vPeak = math.Sqrt(dist * amax)
		p.tAcc = p.vPeak / amax
		p.tCru = 0
	}
	return p, nil
}

var errBadLimit = errors.New("robot: invalid profile parameter")

// Duration returns the total time the profile takes.
func (p Profile) Duration() float64 { return 2*p.tAcc + p.tCru }

// Peak returns the peak velocity actually reached.
func (p Profile) Peak() float64 { return p.vPeak }

// Velocity returns the profile velocity at time t (clamped to [0, Duration]).
func (p Profile) Velocity(t float64) float64 {
	switch {
	case t <= 0 || p.D == 0:
		return 0
	case t < p.tAcc:
		return p.Amax * t
	case t < p.tAcc+p.tCru:
		return p.vPeak
	case t < p.Duration():
		return p.vPeak - p.Amax*(t-p.tAcc-p.tCru)
	default:
		return 0
	}
}

// Accel returns the profile acceleration at time t.
func (p Profile) Accel(t float64) float64 {
	switch {
	case t < 0 || p.D == 0 || t >= p.Duration():
		return 0
	case t < p.tAcc:
		return p.Amax
	case t < p.tAcc+p.tCru:
		return 0
	default:
		return -p.Amax
	}
}

// Position returns the distance covered by time t, in [0, D].
func (p Profile) Position(t float64) float64 {
	switch {
	case t <= 0 || p.D == 0:
		return 0
	case t < p.tAcc:
		return 0.5 * p.Amax * t * t
	case t < p.tAcc+p.tCru:
		dAcc := 0.5 * p.Amax * p.tAcc * p.tAcc
		return dAcc + p.vPeak*(t-p.tAcc)
	case t < p.Duration():
		td := t - p.tAcc - p.tCru
		dAcc := 0.5 * p.Amax * p.tAcc * p.tAcc
		dCru := p.vPeak * p.tCru
		return dAcc + dCru + p.vPeak*td - 0.5*p.Amax*td*td
	default:
		return p.D
	}
}
