package robot

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestProfileReachesDistance(t *testing.T) {
	tests := []struct {
		name             string
		dist, vmax, amax float64
	}{
		{"trapezoid", 2.0, 0.5, 1.0},
		{"triangle", 0.1, 5.0, 1.0},
		{"exact boundary", 1.0, 1.0, 1.0}, // dFull == dist
		{"zero distance", 0, 1.0, 1.0},
		{"long cruise", 100, 0.25, 2.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := NewProfile(tt.dist, tt.vmax, tt.amax)
			if err != nil {
				t.Fatalf("NewProfile: %v", err)
			}
			if got := p.Position(p.Duration()); !almostEqual(got, tt.dist, 1e-9) {
				t.Errorf("Position(T) = %v, want %v", got, tt.dist)
			}
			if got := p.Position(p.Duration() + 100); !almostEqual(got, tt.dist, 1e-9) {
				t.Errorf("Position past end = %v, want %v", got, tt.dist)
			}
			if v := p.Velocity(p.Duration() + 1); v != 0 {
				t.Errorf("Velocity past end = %v, want 0", v)
			}
		})
	}
}

func TestProfileRejectsBadParams(t *testing.T) {
	cases := []struct{ d, v, a float64 }{
		{1, 0, 1}, {1, 1, 0}, {1, -1, 1}, {-1, 1, 1},
		{math.NaN(), 1, 1}, {math.Inf(1), 1, 1},
	}
	for _, c := range cases {
		if _, err := NewProfile(c.d, c.v, c.a); err == nil {
			t.Errorf("NewProfile(%v, %v, %v): want error", c.d, c.v, c.a)
		}
	}
}

func TestProfileVelocityNeverExceedsVmax(t *testing.T) {
	p, err := NewProfile(3.0, 0.8, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0.0; ts <= p.Duration(); ts += 0.001 {
		if v := p.Velocity(ts); v > p.Vmax+1e-12 {
			t.Fatalf("Velocity(%v) = %v exceeds vmax %v", ts, v, p.Vmax)
		}
	}
}

func TestProfileTriangularPeakBelowVmax(t *testing.T) {
	p, err := NewProfile(0.01, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Peak() >= 10 {
		t.Errorf("triangular peak %v should be below vmax", p.Peak())
	}
	wantPeak := math.Sqrt(0.01 * 1)
	if !almostEqual(p.Peak(), wantPeak, 1e-12) {
		t.Errorf("peak = %v, want %v", p.Peak(), wantPeak)
	}
}

// Property: position is monotone non-decreasing and velocity integrates to
// distance for random valid profiles.
func TestProfileMonotoneProperty(t *testing.T) {
	f := func(d8, v8, a8 uint8) bool {
		dist := float64(d8)/16 + 0.01
		vmax := float64(v8)/64 + 0.05
		amax := float64(a8)/64 + 0.05
		p, err := NewProfile(dist, vmax, amax)
		if err != nil {
			return false
		}
		prev := -1e-12
		dt := p.Duration() / 500
		if dt == 0 {
			return true
		}
		for ts := 0.0; ts <= p.Duration(); ts += dt {
			pos := p.Position(ts)
			if pos < prev-1e-9 {
				return false
			}
			prev = pos
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileVelocityIntegratesToDistance(t *testing.T) {
	p, err := NewProfile(1.7, 0.6, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Numerically integrate velocity with the trapezoid rule.
	const n = 20000
	dt := p.Duration() / n
	sum := 0.0
	for i := 0; i < n; i++ {
		t0 := float64(i) * dt
		sum += 0.5 * (p.Velocity(t0) + p.Velocity(t0+dt)) * dt
	}
	if !almostEqual(sum, 1.7, 1e-4) {
		t.Errorf("integral of velocity = %v, want 1.7", sum)
	}
}

func TestMoveEndsAtTarget(t *testing.T) {
	from, ok := Location("L0")
	if !ok {
		t.Fatal("L0 missing")
	}
	to, ok := Location("L1")
	if !ok {
		t.Fatal("L1 missing")
	}
	m, err := NewMove(from, to, 0.7, DefaultAccel)
	if err != nil {
		t.Fatal(err)
	}
	end := m.StateAt(m.Duration())
	for i := range end.Pos {
		if !almostEqual(end.Pos[i], to[i], 1e-9) {
			t.Errorf("joint %d final pos = %v, want %v", i, end.Pos[i], to[i])
		}
		if end.Vel[i] != 0 {
			t.Errorf("joint %d final vel = %v, want 0", i, end.Vel[i])
		}
	}
	start := m.StateAt(0)
	for i := range start.Pos {
		if !almostEqual(start.Pos[i], from[i], 1e-9) {
			t.Errorf("joint %d initial pos = %v, want %v", i, start.Pos[i], from[i])
		}
	}
}

func TestMoveJointsSynchronized(t *testing.T) {
	from := Config{0, 0, 0, 0, 0, 0}
	to := Config{1.0, 0.5, -0.25, 0, 0.1, 0}
	m, err := NewMove(from, to, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Halfway through, every joint should have covered the same fraction of
	// its own excursion.
	mid := m.StateAt(m.Duration() / 2)
	frac0 := (mid.Pos[0] - from[0]) / (to[0] - from[0])
	for i := 1; i < NumJoints; i++ {
		if to[i] == from[i] {
			if mid.Vel[i] != 0 {
				t.Errorf("stationary joint %d has velocity %v", i, mid.Vel[i])
			}
			continue
		}
		frac := (mid.Pos[i] - from[i]) / (to[i] - from[i])
		if !almostEqual(frac, frac0, 1e-9) {
			t.Errorf("joint %d fraction %v != leading fraction %v", i, frac, frac0)
		}
	}
}

func TestMoveZeroDistance(t *testing.T) {
	c := Config{1, 2, 3, 4, 5, 6}
	m, err := NewMove(c, c, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Duration() != 0 {
		t.Errorf("zero move duration = %v, want 0", m.Duration())
	}
	s := m.StateAt(0)
	if s.Pos != [NumJoints]float64(c) {
		t.Errorf("zero move position changed: %v", s.Pos)
	}
}

func TestMoveFasterVelocityShorterDuration(t *testing.T) {
	from, _ := Location("L0")
	to, _ := Location("L1")
	slow, err := NewMove(from, to, LinearToAngular(100), DefaultAccel)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewMove(from, to, LinearToAngular(250), DefaultAccel)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration() >= slow.Duration() {
		t.Errorf("250 mm/s duration %v should be < 100 mm/s duration %v",
			fast.Duration(), slow.Duration())
	}
}

func TestSampleIncludesEndpoints(t *testing.T) {
	from, _ := Location("L1")
	to, _ := Location("L2")
	m, err := NewMove(from, to, 0.7, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	samples := m.Sample(0.04) // the paper's 40 ms tick
	if len(samples) < 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	for i := range last.Pos {
		if !almostEqual(last.Pos[i], to[i], 1e-9) {
			t.Errorf("final sample joint %d = %v, want %v", i, last.Pos[i], to[i])
		}
	}
	if got := m.Sample(0); got != nil {
		t.Error("Sample(0) should return nil")
	}
}

func TestAllNamedLocationsResolve(t *testing.T) {
	for _, name := range LocationNames() {
		if _, ok := Location(name); !ok {
			t.Errorf("location %q not resolvable", name)
		}
	}
	if _, ok := Location("no_such_place"); ok {
		t.Error("unknown location resolved")
	}
}

func TestSegmentWaypointsAreDistinct(t *testing.T) {
	names := SegmentWaypoints()
	if len(names) != 6 {
		t.Fatalf("want 6 waypoints for 5 segments, got %d", len(names))
	}
	for i := 0; i < len(names)-1; i++ {
		a, _ := Location(names[i])
		b, _ := Location(names[i+1])
		if d, _ := b.Sub(a).MaxAbs(); d < 0.1 {
			t.Errorf("segment %s→%s excursion %v too small to produce a distinct signature",
				names[i], names[i+1], d)
		}
	}
}

func TestLinearToAngular(t *testing.T) {
	if got := LinearToAngular(300); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("LinearToAngular(300) = %v, want 1.0", got)
	}
	if LinearToAngular(100) >= LinearToAngular(200) {
		t.Error("angular velocity should grow with linear velocity")
	}
}
