package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var hits [n]atomic.Int32
			if err := ForEach(n, workers, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 8} {
		err := ForEach(50, workers, func(i int) error {
			switch i {
			case 30:
				return errB
			case 7:
				return errA
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want errA", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdered(t *testing.T) {
	in := make([]int, 257)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 5} {
		out, err := Map(in, workers, func(i, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMergeDeterministicTieBreak(t *testing.T) {
	// Two shards with equal keys: shard 0 must win every tie.
	type kv struct{ key, shard int }
	shards := [][]kv{
		{{1, 0}, {3, 0}, {3, 0}},
		{{1, 1}, {2, 1}, {3, 1}},
	}
	got := Merge(shards, func(a, b kv) bool { return a.key < b.key })
	want := []kv{{1, 0}, {1, 1}, {2, 1}, {3, 0}, {3, 0}, {3, 1}}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeEmptyShards(t *testing.T) {
	got := Merge([][]int{nil, {}, {5}, nil}, func(a, b int) bool { return a < b })
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not preserved")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Error("defaulted count must be positive")
	}
}
