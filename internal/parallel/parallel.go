// Package parallel is the repository's shared concurrency layer: a bounded
// worker pool with deterministic result ordering and a deterministic
// ordered-merge fan-in.
//
// Every concurrent kernel in the repository (sharded dataset generation,
// the n-gram/TF-IDF/perplexity analyses, the experiment harnesses) is built
// on these primitives, and all of them share one contract: the observable
// output is a pure function of the inputs — never of GOMAXPROCS, the worker
// count, or goroutine scheduling. Workers only decide *when* a shard runs;
// index order and the merge rules decide where its output lands.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines.
// All indices run even when some fail; the returned error is the non-nil
// error with the lowest index, so the result is independent of scheduling.
// With workers <= 1 (or n <= 1) the calls run inline in index order.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if done := observeCall(n, 1); done != nil {
			defer done()
		}
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if done := observeCall(n, workers); done != nil {
		defer done()
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every item on at most workers goroutines and returns the
// results in input order (out[i] = fn(i, items[i])). Like ForEach, every
// item is processed and the lowest-index error wins.
func Map[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(len(items), workers, func(i int) error {
		r, err := fn(i, items[i])
		out[i] = r
		return err
	})
	return out, err
}

// Merge is the deterministic ordered-merge fan-in: it merges k shards, each
// already sorted under less, into one sorted slice. Ties — and elements
// neither strictly less than the other — are broken by shard index and then
// by position within the shard, so the merged order is total and identical
// for every worker count that produced the shards.
func Merge[T any](shards [][]T, less func(a, b T) bool) []T {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	out := make([]T, 0, total)
	heads := make([]int, len(shards))
	for len(out) < total {
		best := -1
		for s, h := range heads {
			if h >= len(shards[s]) {
				continue
			}
			// Strict less only: on ties the earlier shard wins.
			if best < 0 || less(shards[s][h], shards[best][heads[best]]) {
				best = s
			}
		}
		out = append(out, shards[best][heads[best]])
		heads[best]++
	}
	return out
}
