package parallel

import (
	"sync/atomic"

	"rad/internal/obs"
)

// poolObs is the package's observability state: installed once by Observe,
// read with one atomic pointer load at the top of every ForEach call. The
// per-index hot loop is untouched — accounting happens at call granularity.
type poolObs struct {
	calls  *obs.Counter // ForEach/Map invocations
	tasks  *obs.Counter // indices dispatched
	active *obs.Gauge   // workers currently running
}

var pool atomic.Pointer[poolObs]

// Observe registers the worker-pool metrics into reg. Package-level
// because the pool is: every concurrent kernel in the repository funnels
// through ForEach. Call once at process start; calling again re-points the
// metrics at the new registry's counters.
func Observe(reg *obs.Registry) {
	o := &poolObs{}
	reg.SetHelp("rad_parallel_calls_total", "ForEach/Map kernel invocations.")
	o.calls = reg.Counter("rad_parallel_calls_total")
	reg.SetHelp("rad_parallel_tasks_total", "Indices dispatched across all kernel invocations.")
	o.tasks = reg.Counter("rad_parallel_tasks_total")
	reg.SetHelp("rad_parallel_active_workers", "Pool workers currently running (inline calls count as one).")
	o.active = reg.Gauge("rad_parallel_active_workers")
	pool.Store(o)
}

// observeCall accounts one ForEach invocation: n tasks on workers
// goroutines (workers == 1 for the inline path). The returned func must be
// called when the invocation finishes; it is nil when the pool is
// unobserved, so callers guard with the usual `if done != nil` idiom.
func observeCall(n, workers int) func() {
	o := pool.Load()
	if o == nil {
		return nil
	}
	o.calls.Inc()
	o.tasks.Add(uint64(n))
	o.active.Add(int64(workers))
	return func() { o.active.Add(int64(-workers)) }
}
