package parallel

import (
	"sync"
	"testing"

	"rad/internal/obs"
)

// TestObsParallelPool: ForEach accounts calls, tasks, and worker
// occupancy; the gauge returns to zero when the kernel finishes.
func TestObsParallelPool(t *testing.T) {
	reg := obs.NewRegistry()
	Observe(reg)
	defer pool.Store(nil) // don't leak package state into other tests

	var mu sync.Mutex
	seen := 0
	if err := ForEach(10, 4, func(i int) error {
		mu.Lock()
		seen++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Inline path (workers <= 1) counts too.
	if err := ForEach(3, 1, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	counters := make(map[string]uint64)
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["rad_parallel_calls_total"] != 2 {
		t.Errorf("calls = %d, want 2", counters["rad_parallel_calls_total"])
	}
	if counters["rad_parallel_tasks_total"] != 13 {
		t.Errorf("tasks = %d, want 13", counters["rad_parallel_tasks_total"])
	}
	for _, g := range snap.Gauges {
		if g.Name == "rad_parallel_active_workers" && g.Value != 0 {
			t.Errorf("active workers = %v after completion, want 0", g.Value)
		}
	}
	if seen != 10 {
		t.Fatalf("ForEach ran %d tasks, want 10", seen)
	}
}
