// Package ids implements the intrusion-detection prototypes that RAD was
// collected to support (§I, §V, §VI): a perplexity-based anomaly detector
// over command streams (the paper's §V-B pipeline, made streaming), a TF-IDF
// procedure classifier (§V-A's RQ1), a rule-based IDS of the kind the
// middlebox deploys as a first-line safeguard, and a power side-channel
// detector matching joint-current signatures (§VI).
package ids

import (
	"errors"
	"math"

	"rad/internal/analysis/jenks"
	"rad/internal/analysis/ngram"
	"rad/internal/parallel"
)

// PerplexityDetector classifies command sequences as benign or anomalous by
// their n-gram perplexity against a model trained on valid runs, with the
// decision threshold placed by Jenks natural breaks over the training
// scores (§V-B).
type PerplexityDetector struct {
	model     *ngram.Model
	threshold float64
	// train is retained so streaming detectors can calibrate their own
	// thresholds on windows of the training data (short windows score
	// systematically higher than whole sequences).
	train [][]string
}

// ErrNoTrainingData is returned when the detector cannot be trained.
var ErrNoTrainingData = errors.New("ids: no training sequences")

// TrainPerplexity fits an order-n detector on valid command sequences. The
// threshold is set from the training runs' own perplexity distribution: the
// maximum training perplexity times a small slack, so that everything the
// model has seen counts as benign.
func TrainPerplexity(train [][]string, n int) (*PerplexityDetector, error) {
	if len(train) == 0 {
		return nil, ErrNoTrainingData
	}
	model := ngram.Train(train, n, 1)
	// Scoring each training sequence is independent; fan out and take the
	// max over the per-sequence scores (a commutative reduction, so the
	// threshold is identical at any worker count).
	ppls, _ := parallel.Map(train, 0, func(_ int, seq []string) (float64, error) {
		return model.Perplexity(seq), nil
	})
	maxPPL := 0.0
	for _, p := range ppls {
		if !math.IsInf(p, 1) && p > maxPPL {
			maxPPL = p
		}
	}
	if maxPPL == 0 {
		maxPPL = 1
	}
	return &PerplexityDetector{model: model, threshold: maxPPL * 1.05, train: train}, nil
}

// Threshold returns the detector's decision threshold.
func (d *PerplexityDetector) Threshold() float64 { return d.threshold }

// SetThreshold overrides the decision threshold (e.g. with a Jenks split
// over a validation set).
func (d *PerplexityDetector) SetThreshold(t float64) { d.threshold = t }

// ScoreWindow returns the window's perplexity under the trained model. It
// is the single scoring path shared by every mode — batch classification
// over whole runs, threshold calibration, and the online streaming detector
// — so offline and online scores for identical windows are identical by
// construction (pinned by TestWindowScoreParityOfflineOnline).
func (d *PerplexityDetector) ScoreWindow(window []string) float64 {
	return d.model.Perplexity(window)
}

// Score returns the sequence's perplexity under the trained model. A whole
// sequence is just one maximal window.
func (d *PerplexityDetector) Score(seq []string) float64 {
	return d.ScoreWindow(seq)
}

// WindowScores slides a window of the given size over seq and scores every
// position through ScoreWindow. A sequence no longer than the window yields
// exactly one score (the whole sequence). This is the calibration kernel:
// NewStream's threshold and any Jenks split over window scores both consume
// it, so no smoothing or normalization logic exists anywhere else.
func (d *PerplexityDetector) WindowScores(seq []string, window int) []float64 {
	if len(seq) <= window {
		return []float64{d.ScoreWindow(seq)}
	}
	out := make([]float64, 0, len(seq)-window+1)
	for i := 0; i+window <= len(seq); i++ {
		out = append(out, d.ScoreWindow(seq[i:i+window]))
	}
	return out
}

// TrainingWindowScores scores every size-`window` slide over every training
// sequence — the population online detectors calibrate their thresholds on.
// The concatenation order is deterministic (training order, then position).
func (d *PerplexityDetector) TrainingWindowScores(window int) []float64 {
	per, _ := parallel.Map(d.train, 0, func(_ int, seq []string) ([]float64, error) {
		return d.WindowScores(seq, window), nil
	})
	var out []float64
	for _, scores := range per {
		out = append(out, scores...)
	}
	return out
}

// Anomalous reports whether the sequence scores above the threshold.
func (d *PerplexityDetector) Anomalous(seq []string) bool {
	return d.Score(seq) > d.threshold
}

// ClassifyJenks scores a batch of sequences and splits the scores into
// benign/anomalous with Jenks natural breaks, the paper's batch protocol
// (§V-B). It returns the per-sequence anomaly flags and the break value.
func (d *PerplexityDetector) ClassifyJenks(seqs [][]string) ([]bool, float64) {
	// Scores are independent per sequence; the Jenks split itself stays
	// serial (it sorts the full score vector).
	scores, _ := parallel.Map(seqs, 0, func(_ int, seq []string) (float64, error) {
		return d.Score(seq), nil
	})
	upper, breakVal, ok := jenks.Split2(scores)
	if !ok {
		// No separable structure: fall back to the trained threshold.
		for i, s := range scores {
			upper[i] = s > d.threshold
		}
		return upper, d.threshold
	}
	return upper, breakVal
}

// Stream is a real-time detector over one live command stream: it maintains
// the running perplexity of the most recent window commands and raises once
// the score exceeds the stream's window-calibrated threshold — the §V-B
// technique "adapted to real time detection" that the paper motivates.
type Stream struct {
	d         *PerplexityDetector
	window    []string
	size      int
	threshold float64
}

// NewStream creates a streaming context with the given window size (the
// number of most-recent commands scored). Sizes below the model order are
// raised to 4× the order.
//
// The stream's alert threshold is calibrated on same-sized windows slid over
// the detector's training sequences: short windows land on locally rare
// regions (a single dosing cycle, a setup phase) and score higher than whole
// runs, so the full-sequence threshold would flood a stream with alerts.
func (d *PerplexityDetector) NewStream(window int) *Stream {
	if window < d.model.Order() {
		window = d.model.Order() * 4
	}
	s := &Stream{d: d, size: window, threshold: d.threshold}
	// Calibration slides the window over every training sequence — the most
	// expensive step of stream construction. Each sequence's maximum is
	// independent; compute them concurrently and reduce serially. The
	// scoring itself is the shared WindowScores kernel, so calibration sees
	// exactly the scores the live stream will produce.
	maxima, _ := parallel.Map(d.train, 0, func(_ int, seq []string) (float64, error) {
		local := 0.0
		for _, p := range d.WindowScores(seq, window) {
			if !math.IsInf(p, 1) && p > local {
				local = p
			}
		}
		return local, nil
	})
	maxWindow := 0.0
	for _, p := range maxima {
		if p > maxWindow {
			maxWindow = p
		}
	}
	if maxWindow > 0 {
		s.threshold = maxWindow * 1.05
	}
	return s
}

// Threshold returns the stream's window-calibrated alert threshold.
func (s *Stream) Threshold() float64 { return s.threshold }

// SetThreshold overrides the alert threshold (e.g. with a Jenks break over
// the training window-score population).
func (s *Stream) SetThreshold(t float64) { s.threshold = t }

// Size returns the window size (in commands) the stream scores.
func (s *Stream) Size() int { return s.size }

// Observe feeds one command and returns the current window perplexity and
// whether it breaches the threshold. Until the window has at least one
// scorable transition the score is NaN and alert is false.
func (s *Stream) Observe(command string) (score float64, alert bool) {
	s.window = append(s.window, command)
	if len(s.window) > s.size {
		s.window = s.window[1:]
	}
	if len(s.window) <= s.d.model.Order()-1 {
		return math.NaN(), false
	}
	score = s.d.ScoreWindow(s.window)
	// Alert only on full windows: partial windows score few transitions and
	// their perplexity estimate is too noisy to act on.
	return score, len(s.window) == s.size && score > s.threshold
}

// Reset clears the stream's window (e.g. at a procedure boundary).
func (s *Stream) Reset() { s.window = s.window[:0] }
