package ids

import (
	"fmt"
	"sort"
	"strings"
)

// This file adds explainability to the perplexity detector: when a run is
// flagged, the operator needs to know *where* in the command stream the
// surprise is, not just the score. Surprise returns the transitions the
// model found least likely, which for RAD's anomalies points straight at the
// crash epilogue.

// SurprisingTransition is one scored position in a sequence.
type SurprisingTransition struct {
	// Index is the position of the transition's target command.
	Index int
	// Context is the n-1 commands preceding it.
	Context []string
	// Command is the command that surprised the model.
	Command string
	// Probability is the model's smoothed conditional probability.
	Probability float64
}

// String renders the transition for an alert message.
func (s SurprisingTransition) String() string {
	return fmt.Sprintf("#%d %s → %s (p=%.4f)",
		s.Index, strings.Join(s.Context, " "), s.Command, s.Probability)
}

// MostSurprising returns the k transitions of seq with the lowest model
// probability, most surprising first — the explanation attached to an
// anomaly alert.
func (d *PerplexityDetector) MostSurprising(seq []string, k int) []SurprisingTransition {
	if k <= 0 {
		return nil
	}
	order := d.model.Order()
	var all []SurprisingTransition
	for i := order - 1; i < len(seq); i++ {
		ctx := seq[i-(order-1) : i]
		p := d.model.Prob(ctx, seq[i])
		all = append(all, SurprisingTransition{
			Index:       i,
			Context:     append([]string(nil), ctx...),
			Command:     seq[i],
			Probability: p,
		})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Probability != all[b].Probability {
			return all[a].Probability < all[b].Probability
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Window returns a copy of the stream's current window — the commands an
// alert should display to the operator.
func (s *Stream) Window() []string {
	return append([]string(nil), s.window...)
}
