package ids

import (
	"errors"

	"rad/internal/analysis/tfidf"
)

// ProcedureClassifier answers §V-A's RQ1 — "can we identify the lab's
// different scientific procedures?" — by nearest-centroid matching over
// TF-IDF fingerprints: each known procedure type's labelled runs are
// averaged into a centroid and a new run is assigned to the most similar
// centroid by cosine similarity.
type ProcedureClassifier struct {
	vec       *tfidf.Vectorizer
	centroids map[string]map[string]float64
}

// ErrNoLabelledRuns is returned when training data is empty.
var ErrNoLabelledRuns = errors.New("ids: no labelled runs")

// TrainClassifier fits the classifier on labelled runs: parallel slices of
// command sequences and their procedure labels.
func TrainClassifier(seqs [][]string, labels []string) (*ProcedureClassifier, error) {
	if len(seqs) == 0 || len(seqs) != len(labels) {
		return nil, ErrNoLabelledRuns
	}
	vec := tfidf.Fit(seqs)
	sum := make(map[string]map[string]float64)
	count := make(map[string]int)
	for i, seq := range seqs {
		v := vec.Transform(seq)
		label := labels[i]
		if sum[label] == nil {
			sum[label] = make(map[string]float64)
		}
		for term, w := range v {
			sum[label][term] += w
		}
		count[label]++
	}
	for label, terms := range sum {
		for term := range terms {
			terms[term] /= float64(count[label])
		}
	}
	return &ProcedureClassifier{vec: vec, centroids: sum}, nil
}

// Classify returns the best-matching procedure label and its cosine
// similarity. An empty sequence returns ("", 0).
func (c *ProcedureClassifier) Classify(seq []string) (label string, similarity float64) {
	if len(seq) == 0 {
		return "", 0
	}
	v := c.vec.Transform(seq)
	best := ""
	bestSim := -1.0
	for l, centroid := range c.centroids {
		if sim := tfidf.Cosine(v, centroid); sim > bestSim || (sim == bestSim && l < best) {
			best, bestSim = l, sim
		}
	}
	if bestSim < 0 {
		return "", 0
	}
	return best, bestSim
}

// Labels returns the known procedure labels.
func (c *ProcedureClassifier) Labels() []string {
	out := make([]string, 0, len(c.centroids))
	for l := range c.centroids {
		out = append(out, l)
	}
	return out
}

// Similarity returns the cosine similarity between two runs under the
// classifier's fitted vectorizer.
func (c *ProcedureClassifier) Similarity(a, b []string) float64 {
	return tfidf.Cosine(c.vec.Transform(a), c.vec.Transform(b))
}
