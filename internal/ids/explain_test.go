package ids

import (
	"strings"
	"testing"
)

func TestMostSurprisingPinpointsTheAnomaly(t *testing.T) {
	det, err := TrainPerplexity(benignTraining(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// A benign stream with one injected burst of foreign commands.
	seq := append(repeat([]string{"ARM", "MVNG", "MVNG"}, 10),
		"OUTP", "HOME", "OUTP")
	seq = append(seq, repeat([]string{"ARM", "MVNG", "MVNG"}, 5)...)

	top := det.MostSurprising(seq, 3)
	if len(top) != 3 {
		t.Fatalf("%d transitions", len(top))
	}
	// All three most-surprising transitions must involve the injected burst
	// (positions 30-33, either as target or context edge).
	for _, tr := range top {
		if tr.Index < 29 || tr.Index > 34 {
			t.Errorf("surprising transition at %d (%s), expected inside the burst",
				tr.Index, tr)
		}
	}
	// Ordering: most surprising first.
	for i := 1; i < len(top); i++ {
		if top[i].Probability < top[i-1].Probability {
			t.Error("transitions not sorted by ascending probability")
		}
	}
	// The rendering carries the context arrow.
	if !strings.Contains(top[0].String(), "→") {
		t.Errorf("render: %s", top[0])
	}
}

func TestMostSurprisingEdgeCases(t *testing.T) {
	det, err := TrainPerplexity(benignTraining(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := det.MostSurprising([]string{"ARM", "MVNG", "ARM"}, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	if got := det.MostSurprising([]string{"ARM"}, 5); got != nil {
		t.Errorf("too-short sequence: %v", got)
	}
	// k larger than available transitions returns all of them.
	got := det.MostSurprising([]string{"ARM", "MVNG", "ARM", "MVNG"}, 99)
	if len(got) != 2 {
		t.Errorf("k overflow: %d transitions", len(got))
	}
}

func TestStreamWindowCopy(t *testing.T) {
	det, err := TrainPerplexity(benignTraining(), 2)
	if err != nil {
		t.Fatal(err)
	}
	st := det.NewStream(8)
	st.Observe("ARM")
	st.Observe("MVNG")
	w := st.Window()
	if len(w) != 2 || w[0] != "ARM" {
		t.Errorf("window = %v", w)
	}
	w[0] = "tampered"
	if st.Window()[0] != "ARM" {
		t.Error("Window returned a live reference")
	}
}
