package ids

import (
	"time"

	"rad/internal/store"
)

// This file implements another of the paper's stated next steps (§VII):
// "find ways to automatically generate labels". RAD labels only 25
// supervised runs; everything else is "unknown procedure". The AutoLabeler
// recovers labels for the unknown bulk in two steps: segment the trace
// stream into sessions at idle gaps (lab activity is bursty — a procedure
// run or prototyping session, then nothing for hours), then classify each
// session's TF-IDF fingerprint against the supervised runs, keeping the
// "unknown" label when no centroid is similar enough.

// DefaultSessionGap is the idle gap that separates two sessions: lab
// procedures poll devices at sub-minute intervals, so a quarter hour of
// silence means the session ended.
const DefaultSessionGap = 15 * time.Minute

// SegmentSessions splits records (in stream order) into sessions separated
// by idle gaps of at least gap. A non-positive gap selects
// DefaultSessionGap.
func SegmentSessions(recs []store.Record, gap time.Duration) [][]store.Record {
	if gap <= 0 {
		gap = DefaultSessionGap
	}
	var out [][]store.Record
	var cur []store.Record
	for i, r := range recs {
		if i > 0 && r.Time.Sub(recs[i-1].EndTime) >= gap && len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, r)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// LabeledSegment is one auto-labelled session.
type LabeledSegment struct {
	Records []store.Record
	// Label is the assigned procedure type, or store.UnknownProcedure when
	// no centroid was similar enough.
	Label string
	// Similarity is the winning centroid's cosine similarity.
	Similarity float64
}

// AutoLabeler assigns procedure labels to unlabelled trace segments.
type AutoLabeler struct {
	clf *ProcedureClassifier
	// MinSimilarity is the acceptance threshold; segments below it keep the
	// unknown label (default 0.75).
	MinSimilarity float64
	// Gap is the session-segmentation idle gap (default DefaultSessionGap).
	Gap time.Duration
}

// NewAutoLabeler builds a labeler from supervised runs (parallel sequences
// and procedure labels).
func NewAutoLabeler(seqs [][]string, labels []string) (*AutoLabeler, error) {
	clf, err := TrainClassifier(seqs, labels)
	if err != nil {
		return nil, err
	}
	return &AutoLabeler{clf: clf, MinSimilarity: 0.75}, nil
}

// Label segments the record stream and classifies every session.
func (al *AutoLabeler) Label(recs []store.Record) []LabeledSegment {
	sessions := SegmentSessions(recs, al.Gap)
	out := make([]LabeledSegment, 0, len(sessions))
	for _, session := range sessions {
		label, sim := al.clf.Classify(NameSequence(session))
		if sim < al.MinSimilarity || label == "" {
			label = store.UnknownProcedure
		}
		out = append(out, LabeledSegment{Records: session, Label: label, Similarity: sim})
	}
	return out
}
