package ids

import (
	"math"
	"testing"
)

// TestWindowScoreParityOfflineOnline pins the shared-scoring-path contract:
// the streaming detector's per-step window score must equal the offline
// WindowScores kernel over the same sequence, position for position, bit for
// bit — offline ablations and the online IDS must never disagree about a
// window's perplexity.
func TestWindowScoreParityOfflineOnline(t *testing.T) {
	train := [][]string{
		repeat([]string{"HOME", "MVNG", "GRIP", "RLSE"}, 20),
		repeat([]string{"HOME", "ARM", "MVNG", "GRIP", "RLSE"}, 16),
	}
	d, err := TrainPerplexity(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	const window = 8
	// An evaluation sequence mixing trained and novel commands.
	eval := append(repeat([]string{"HOME", "MVNG", "GRIP", "RLSE"}, 6),
		"ARM", "ZAP", "MVNG", "ZAP", "GRIP", "HOME", "MVNG", "GRIP", "RLSE")

	offline := d.WindowScores(eval, window)

	s := d.NewStream(window)
	if s.Size() != window {
		t.Fatalf("stream window %d, want %d", s.Size(), window)
	}
	var online []float64
	for _, cmd := range eval {
		score, _ := s.Observe(cmd)
		// The stream reports scores as soon as a transition is scorable;
		// offline WindowScores only scores full window positions. Compare
		// on the full-window positions.
		online = append(online, score)
	}
	// Online position i (0-based) holds the score of eval[i-window+1 : i+1]
	// once i >= window-1, which is offline index i-window+1.
	for i := window - 1; i < len(eval); i++ {
		got := online[i]
		want := offline[i-window+1]
		if math.IsNaN(got) {
			t.Fatalf("online score at %d is NaN", i)
		}
		if got != want {
			t.Errorf("window ending at %d: online %.12f != offline %.12f", i, got, want)
		}
	}

	// Whole-sequence parity: Score, ScoreWindow, and a WindowScores call
	// with an over-long window are the same number.
	whole := d.Score(eval)
	if got := d.ScoreWindow(eval); got != whole {
		t.Errorf("ScoreWindow %.12f != Score %.12f", got, whole)
	}
	if got := d.WindowScores(eval, len(eval)+10); len(got) != 1 || got[0] != whole {
		t.Errorf("WindowScores(oversized) = %v, want [%.12f]", got, whole)
	}
}

// TestTrainingWindowScoresMatchesStreamCalibration checks the calibration
// population: the stream threshold is the max finite training window score
// times the 1.05 slack — computed through the same kernel
// TrainingWindowScores exposes.
func TestTrainingWindowScoresMatchesStreamCalibration(t *testing.T) {
	train := [][]string{
		repeat([]string{"A", "B", "C"}, 30),
		repeat([]string{"A", "C", "B", "C"}, 25),
	}
	d, err := TrainPerplexity(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	const window = 6
	maxScore := 0.0
	for _, p := range d.TrainingWindowScores(window) {
		if !math.IsInf(p, 1) && p > maxScore {
			maxScore = p
		}
	}
	s := d.NewStream(window)
	if want := maxScore * 1.05; s.Threshold() != want {
		t.Errorf("stream threshold %.12f, want %.12f (max training window score × 1.05)",
			s.Threshold(), want)
	}
}
