package ids

import (
	"errors"
	"math"
	"testing"
	"time"

	"rad/internal/device"
	"rad/internal/store"
)

func repeat(pattern []string, times int) []string {
	out := make([]string, 0, len(pattern)*times)
	for i := 0; i < times; i++ {
		out = append(out, pattern...)
	}
	return out
}

func benignTraining() [][]string {
	// A joystick-like vocabulary wide enough that unseen transitions are
	// genuinely surprising (smoothed perplexity is bounded by vocabulary
	// size, so a two-command vocabulary cannot separate anomalies).
	return [][]string{
		repeat([]string{"ARM", "MVNG", "MVNG"}, 20),
		repeat([]string{"ARM", "MVNG", "ARM", "MVNG", "MVNG"}, 12),
		repeat([]string{"ARM", "MVNG"}, 25),
		repeat([]string{"CURR", "MOVE", "MVNG", "ARM", "MVNG"}, 10),
		repeat([]string{"JLEN", "ARM", "MVNG", "MVNG", "GRIP", "POSN", "SPED", "ARM"}, 8),
	}
}

func TestPerplexityDetectorSeparates(t *testing.T) {
	d, err := TrainPerplexity(benignTraining(), 2)
	if err != nil {
		t.Fatal(err)
	}
	benign := repeat([]string{"ARM", "MVNG", "MVNG"}, 10)
	weird := repeat([]string{"OUTP", "HOME", "BIAS", "OUTP"}, 10)
	if d.Anomalous(benign) {
		t.Errorf("benign trace flagged (score %v, threshold %v)", d.Score(benign), d.Threshold())
	}
	if !d.Anomalous(weird) {
		t.Errorf("anomalous trace missed (score %v, threshold %v)", d.Score(weird), d.Threshold())
	}
}

func TestTrainPerplexityEmpty(t *testing.T) {
	if _, err := TrainPerplexity(nil, 2); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("want ErrNoTrainingData, got %v", err)
	}
}

func TestClassifyJenksBatch(t *testing.T) {
	d, err := TrainPerplexity(benignTraining(), 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]string{
		repeat([]string{"ARM", "MVNG", "MVNG"}, 10),
		repeat([]string{"ARM", "MVNG"}, 15),
		repeat([]string{"HOME", "OUTP", "BIAS"}, 10), // anomaly
	}
	flags, breakVal := d.ClassifyJenks(batch)
	if flags[0] || flags[1] {
		t.Errorf("benign traces flagged: %v (break %v)", flags, breakVal)
	}
	if !flags[2] {
		t.Errorf("anomaly missed: %v (break %v)", flags, breakVal)
	}
}

func TestStreamingDetectorRaisesMidStream(t *testing.T) {
	d, err := TrainPerplexity(benignTraining(), 2)
	if err != nil {
		t.Fatal(err)
	}
	st := d.NewStream(12)
	// Feed benign traffic first: no alerts once warmed up.
	for i, c := range repeat([]string{"ARM", "MVNG", "MVNG"}, 8) {
		if _, alert := st.Observe(c); alert {
			t.Fatalf("false alert at benign command %d", i)
		}
	}
	// Then an injected attack pattern: alert must fire within the window.
	alerted := false
	for _, c := range repeat([]string{"OUTP", "HOME", "BIAS"}, 8) {
		if _, alert := st.Observe(c); alert {
			alerted = true
			break
		}
	}
	if !alerted {
		t.Error("stream never alerted on the injected pattern")
	}
	st.Reset()
	if score, alert := st.Observe("ARM"); alert || !math.IsNaN(score) {
		t.Error("reset stream should warm up again")
	}
}

func TestProcedureClassifier(t *testing.T) {
	joy := repeat([]string{"ARM", "MVNG", "MVNG"}, 15)
	sol := repeat([]string{"Q", "Q", "A", "V", "start_dosing", "target_mass"}, 8)
	crystal := repeat([]string{"IN_PV_1", "IN_PV_2", "START_1", "STOP_1"}, 8)
	c, err := TrainClassifier(
		[][]string{joy, joy, sol, sol, crystal},
		[]string{"P4", "P4", "P1", "P1", "P3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, sim := c.Classify(repeat([]string{"ARM", "MVNG"}, 10)); got != "P4" || sim < 0.5 {
		t.Errorf("joystick-like classified as %q (%v)", got, sim)
	}
	if got, _ := c.Classify(repeat([]string{"Q", "A", "V", "target_mass"}, 6)); got != "P1" {
		t.Errorf("solubility-like classified as %q", got)
	}
	if got, _ := c.Classify(repeat([]string{"IN_PV_1", "START_1"}, 6)); got != "P3" {
		t.Errorf("crystal-like classified as %q", got)
	}
	if got, sim := c.Classify(nil); got != "" || sim != 0 {
		t.Errorf("empty sequence: %q, %v", got, sim)
	}
	if len(c.Labels()) != 3 {
		t.Errorf("labels = %v", c.Labels())
	}
}

func TestTrainClassifierValidation(t *testing.T) {
	if _, err := TrainClassifier(nil, nil); !errors.Is(err, ErrNoLabelledRuns) {
		t.Error("empty training should fail")
	}
	if _, err := TrainClassifier([][]string{{"A"}}, []string{"x", "y"}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestClassifierSimilaritySymmetric(t *testing.T) {
	a := repeat([]string{"ARM", "MVNG"}, 5)
	b := repeat([]string{"Q", "A"}, 5)
	c, err := TrainClassifier([][]string{a, b}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if s1, s2 := c.Similarity(a, b), c.Similarity(b, a); math.Abs(s1-s2) > 1e-12 {
		t.Errorf("similarity asymmetric: %v vs %v", s1, s2)
	}
	if s := c.Similarity(a, a); math.Abs(s-1) > 1e-9 {
		t.Errorf("self similarity = %v", s)
	}
}

func rec(dev, name string, at time.Time) store.Record {
	return store.Record{Device: dev, Name: name, Time: at, EndTime: at.Add(time.Millisecond)}
}

func TestRuleEngineUnknownCommand(t *testing.T) {
	e := NewRuleEngine(0)
	t0 := time.Unix(1000, 0)
	vs := e.Scan([]store.Record{
		rec(device.C9, device.Init, t0),
		rec(device.C9, "SELF_DESTRUCT", t0.Add(time.Second)),
	})
	if len(vs) != 1 || vs[0].Rule != "unknown-command" {
		t.Errorf("violations = %+v", vs)
	}
}

func TestRuleEngineUninitializedDevice(t *testing.T) {
	e := NewRuleEngine(0)
	vs := e.Check(rec(device.UR3e, "move_joints", time.Unix(0, 0)))
	if len(vs) != 1 || vs[0].Rule != "uninitialized-device" {
		t.Errorf("violations = %+v", vs)
	}
	// After init, the same command is clean.
	e.Check(rec(device.UR3e, device.Init, time.Unix(1, 0)))
	if vs := e.Check(rec(device.UR3e, "move_joints", time.Unix(2, 0))); len(vs) != 0 {
		t.Errorf("post-init violations = %+v", vs)
	}
}

func TestRuleEngineActuationFault(t *testing.T) {
	e := NewRuleEngine(0)
	e.Check(rec(device.Quantos, device.Init, time.Unix(0, 0)))
	r := rec(device.Quantos, "front_door", time.Unix(1, 0))
	r.Exception = "Quantos: hardware fault: door crashed"
	vs := e.Check(r)
	if len(vs) != 1 || vs[0].Rule != "actuation-fault" {
		t.Errorf("violations = %+v", vs)
	}
	// A failed read is not an actuation fault.
	q := rec(device.Tecan, "Q", time.Unix(2, 0))
	q.Exception = "timeout"
	e.Check(rec(device.Tecan, device.Init, time.Unix(2, 0)))
	if vs := e.Check(q); len(vs) != 0 {
		t.Errorf("read fault flagged: %+v", vs)
	}
}

func TestRuleEngineRateLimit(t *testing.T) {
	e := NewRuleEngine(5)
	t0 := time.Unix(5000, 0)
	e.Check(rec(device.C9, device.Init, t0))
	var hits int
	for i := 0; i < 10; i++ {
		vs := e.Check(rec(device.C9, "MVNG", t0.Add(time.Duration(i)*50*time.Millisecond)))
		hits += len(vs)
	}
	if hits == 0 {
		t.Error("rate limit never fired at 10 commands in half a second")
	}
	// A new second resets the budget.
	if vs := e.Check(rec(device.C9, "MVNG", t0.Add(2*time.Second))); len(vs) != 0 {
		t.Errorf("budget did not reset: %+v", vs)
	}
}

func TestPowerDetectorMatchesAndFlags(t *testing.T) {
	p := NewPowerDetector()
	// Reference signature: one accel/decel hump.
	ref := make([]float64, 60)
	for i := range ref {
		ref[i] = math.Sin(float64(i) / 59 * math.Pi)
	}
	p.Learn("L0-L1", ref)
	if len(p.Labels()) != 1 {
		t.Fatalf("labels = %v", p.Labels())
	}

	// Same shape, slightly different sampling: matches.
	same := make([]float64, 80)
	for i := range same {
		same[i] = math.Sin(float64(i)/79*math.Pi) * 1.02
	}
	m, err := p.Classify(same)
	if err != nil {
		t.Fatal(err)
	}
	if m.Anomalous || m.Label != "L0-L1" || m.Correlation < 0.99 {
		t.Errorf("match = %+v", m)
	}

	// Same shape, doubled amplitude (heavy payload): flagged.
	heavy := make([]float64, 60)
	for i := range heavy {
		heavy[i] = 2.2 * ref[i]
	}
	m, err = p.Classify(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Anomalous || m.Label != "L0-L1" {
		t.Errorf("heavy payload not flagged: %+v", m)
	}

	// Unrelated shape: flagged as unknown trajectory.
	noise := make([]float64, 60)
	for i := range noise {
		noise[i] = math.Sin(float64(i) * 2.7)
	}
	m, err = p.Classify(noise)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Anomalous {
		t.Errorf("unknown trajectory not flagged: %+v", m)
	}
}

func TestPowerDetectorEdgeCases(t *testing.T) {
	p := NewPowerDetector()
	if _, err := p.Classify([]float64{1, 2, 3}); !errors.Is(err, ErrNoTemplates) {
		t.Errorf("want ErrNoTemplates, got %v", err)
	}
	p.Learn("too-short", []float64{1}) // ignored
	if len(p.Labels()) != 0 {
		t.Error("short template should be ignored")
	}
	p.Learn("ok", []float64{0, 1, 0})
	m, err := p.Classify([]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Anomalous {
		t.Error("empty trace should be anomalous")
	}
}
