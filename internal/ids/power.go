package ids

import (
	"errors"
	"math"

	"rad/internal/analysis/stats"
)

// PowerDetector is the §VI side-channel prototype: it learns reference
// joint-current signatures for known arm motions and flags traces whose
// shape or amplitude deviates. Because power can be captured at an outlet,
// this detector works without any RATracer-style software integration (RQ3).
type PowerDetector struct {
	// templates are reference current series per motion label, resampled to
	// a canonical length.
	templates map[string][]float64
	// amplitudes are the reference peak magnitudes per label.
	amplitudes map[string]float64
	// length of the canonical resampled template.
	resampleN int
	// MinCorrelation is the Pearson threshold below which a trace does not
	// match any known motion (default 0.9; the paper observes same-
	// trajectory correlations above 0.97).
	MinCorrelation float64
	// AmplitudeTolerance is the allowed relative peak deviation (default
	// 0.25) before a matching shape is flagged (e.g. an unexpected payload,
	// Fig. 7d, or velocity change, Fig. 7c).
	AmplitudeTolerance float64
}

// ErrNoTemplates is returned when the detector has no reference signatures.
var ErrNoTemplates = errors.New("ids: no power templates")

// NewPowerDetector creates an empty detector with the default thresholds.
func NewPowerDetector() *PowerDetector {
	return &PowerDetector{
		templates:          make(map[string][]float64),
		amplitudes:         make(map[string]float64),
		resampleN:          100,
		MinCorrelation:     0.9,
		AmplitudeTolerance: 0.25,
	}
}

// Learn stores a reference current series under a motion label. Series
// shorter than two samples are ignored.
func (p *PowerDetector) Learn(label string, current []float64) {
	if len(current) < 2 {
		return
	}
	rs := stats.Resample(current, p.resampleN)
	if rs == nil {
		return
	}
	p.templates[label] = rs
	p.amplitudes[label] = stats.MaxAbs(current)
}

// Match describes how a trace compares to the closest learned signature.
type Match struct {
	Label       string
	Correlation float64
	// AmplitudeRatio is observed peak / reference peak.
	AmplitudeRatio float64
	// Anomalous is set when no template correlates above MinCorrelation, or
	// the best match's amplitude deviates beyond AmplitudeTolerance.
	Anomalous bool
	Reason    string
}

// Classify matches a current series against the learned signatures.
func (p *PowerDetector) Classify(current []float64) (Match, error) {
	if len(p.templates) == 0 {
		return Match{}, ErrNoTemplates
	}
	rs := stats.Resample(current, p.resampleN)
	if rs == nil {
		return Match{Anomalous: true, Reason: "trace too short"}, nil
	}
	best := Match{Correlation: math.Inf(-1)}
	for label, tpl := range p.templates {
		r := stats.Pearson(rs, tpl)
		if math.IsNaN(r) {
			continue
		}
		if r > best.Correlation {
			ratio := 0.0
			if p.amplitudes[label] > 0 {
				ratio = stats.MaxAbs(current) / p.amplitudes[label]
			}
			best = Match{Label: label, Correlation: r, AmplitudeRatio: ratio}
		}
	}
	if math.IsInf(best.Correlation, -1) {
		return Match{Anomalous: true, Reason: "no comparable template"}, nil
	}
	switch {
	case best.Correlation < p.MinCorrelation:
		best.Anomalous = true
		best.Reason = "trajectory shape matches no known motion"
	case math.Abs(best.AmplitudeRatio-1) > p.AmplitudeTolerance:
		best.Anomalous = true
		best.Reason = "amplitude deviates from the reference (unexpected payload or velocity)"
	}
	return best, nil
}

// Labels returns the learned motion labels.
func (p *PowerDetector) Labels() []string {
	out := make([]string, 0, len(p.templates))
	for l := range p.templates {
		out = append(out, l)
	}
	return out
}
