package ids

import (
	"fmt"

	"rad/internal/device"
	"rad/internal/store"
)

// RuleEngine is the first-line, middlebox-resident safeguard of Fig. 1: a
// set of stateless and stateful rules over the command stream that a
// restricted-command middlebox can enforce before any learned model exists.
// The paper notes rule-based IDS alone is insufficient (no accumulated
// experience covers all attacks, §I) — this engine is the baseline the
// learned detectors are measured against.
type RuleEngine struct {
	catalog map[string]device.CommandSpec
	// initialized tracks which devices have seen __init__.
	initialized map[string]bool
	// maxRate is the per-device command budget per second (0 disables).
	maxRate float64
	lastSec map[string]int64
	inSec   map[string]int
}

// Violation is one rule hit.
type Violation struct {
	Rule   string
	Record store.Record
	Detail string
}

// NewRuleEngine builds an engine enforcing the 52-command catalog, device
// initialization ordering, and an optional per-device rate limit
// (commands/second; 0 disables).
func NewRuleEngine(maxRatePerSec float64) *RuleEngine {
	return &RuleEngine{
		catalog:     device.CatalogByKey(),
		initialized: make(map[string]bool),
		maxRate:     maxRatePerSec,
		lastSec:     make(map[string]int64),
		inSec:       make(map[string]int),
	}
}

// Check evaluates one trace record and returns any violations. The engine
// is stateful: call Check in stream order.
func (e *RuleEngine) Check(r store.Record) []Violation {
	var out []Violation

	spec, known := e.catalog[r.Key()]
	if !known {
		out = append(out, Violation{
			Rule: "unknown-command", Record: r,
			Detail: fmt.Sprintf("%s is not in the restricted command set", r.Key()),
		})
	}

	if r.Name == device.Init {
		e.initialized[r.Device] = true
	} else if !e.initialized[r.Device] {
		out = append(out, Violation{
			Rule: "uninitialized-device", Record: r,
			Detail: fmt.Sprintf("%s command before %s.__init__", r.Key(), r.Device),
		})
	}

	if known && spec.Mutating && r.Exception != "" {
		out = append(out, Violation{
			Rule: "actuation-fault", Record: r,
			Detail: fmt.Sprintf("mutating command %s raised: %s", r.Key(), r.Exception),
		})
	}

	if e.maxRate > 0 {
		sec := r.Time.Unix()
		if e.lastSec[r.Device] != sec {
			e.lastSec[r.Device] = sec
			e.inSec[r.Device] = 0
		}
		e.inSec[r.Device]++
		if float64(e.inSec[r.Device]) > e.maxRate {
			out = append(out, Violation{
				Rule: "rate-limit", Record: r,
				Detail: fmt.Sprintf("%s exceeded %.0f commands/s", r.Device, e.maxRate),
			})
		}
	}
	return out
}

// Scan runs the engine over a whole trace and returns all violations.
func (e *RuleEngine) Scan(recs []store.Record) []Violation {
	var out []Violation
	for _, r := range recs {
		out = append(out, e.Check(r)...)
	}
	return out
}
