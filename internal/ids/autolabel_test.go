package ids

import (
	"testing"
	"time"

	"rad/internal/store"
)

func timedRec(name string, at time.Time) store.Record {
	return store.Record{Device: "C9", Name: name, Time: at, EndTime: at.Add(5 * time.Millisecond)}
}

func TestSegmentSessionsSplitsAtGaps(t *testing.T) {
	t0 := time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC)
	var recs []store.Record
	// Session 1: three commands seconds apart.
	for i := 0; i < 3; i++ {
		recs = append(recs, timedRec("ARM", t0.Add(time.Duration(i)*time.Second)))
	}
	// Two hours of silence, then session 2.
	t1 := t0.Add(2 * time.Hour)
	for i := 0; i < 2; i++ {
		recs = append(recs, timedRec("Q", t1.Add(time.Duration(i)*time.Second)))
	}
	sessions := SegmentSessions(recs, 15*time.Minute)
	if len(sessions) != 2 {
		t.Fatalf("%d sessions, want 2", len(sessions))
	}
	if len(sessions[0]) != 3 || len(sessions[1]) != 2 {
		t.Errorf("session sizes %d, %d", len(sessions[0]), len(sessions[1]))
	}
}

func TestSegmentSessionsNoGap(t *testing.T) {
	t0 := time.Unix(0, 0)
	recs := []store.Record{timedRec("A", t0), timedRec("B", t0.Add(time.Second))}
	sessions := SegmentSessions(recs, 0) // default gap
	if len(sessions) != 1 {
		t.Fatalf("%d sessions", len(sessions))
	}
	if got := SegmentSessions(nil, time.Minute); got != nil {
		t.Error("empty input should give nil")
	}
}

func TestAutoLabelerAssignsAndRejects(t *testing.T) {
	joy := repeat([]string{"ARM", "MVNG", "MVNG"}, 20)
	sol := repeat([]string{"Q", "A", "V", "start_dosing", "target_mass"}, 10)
	al, err := NewAutoLabeler([][]string{joy, joy, sol, sol}, []string{"P4", "P4", "P1", "P1"})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Date(2021, 10, 1, 9, 0, 0, 0, time.UTC)
	var recs []store.Record
	// Session 1: joystick-like.
	for i, name := range repeat([]string{"ARM", "MVNG", "MVNG"}, 8) {
		recs = append(recs, timedRec(name, t0.Add(time.Duration(i)*time.Second)))
	}
	// Session 2 (next day): solubility-like.
	t1 := t0.Add(24 * time.Hour)
	for i, name := range repeat([]string{"Q", "A", "V", "target_mass"}, 6) {
		recs = append(recs, timedRec(name, t1.Add(time.Duration(i)*time.Second)))
	}
	// Session 3: gibberish unlike either procedure.
	t2 := t1.Add(24 * time.Hour)
	for i, name := range repeat([]string{"OUTP", "BIAS", "HOME", "JLEN"}, 5) {
		recs = append(recs, timedRec(name, t2.Add(time.Duration(i)*time.Second)))
	}

	segments := al.Label(recs)
	if len(segments) != 3 {
		t.Fatalf("%d segments, want 3", len(segments))
	}
	if segments[0].Label != "P4" {
		t.Errorf("segment 1 labelled %q (sim %.2f), want P4", segments[0].Label, segments[0].Similarity)
	}
	if segments[1].Label != "P1" {
		t.Errorf("segment 2 labelled %q (sim %.2f), want P1", segments[1].Label, segments[1].Similarity)
	}
	if segments[2].Label != store.UnknownProcedure {
		t.Errorf("gibberish labelled %q (sim %.2f), want unknown", segments[2].Label, segments[2].Similarity)
	}
}

func TestNewAutoLabelerValidation(t *testing.T) {
	if _, err := NewAutoLabeler(nil, nil); err == nil {
		t.Error("empty training should fail")
	}
}
