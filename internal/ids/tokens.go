package ids

import (
	"sort"
	"strconv"
	"strings"

	"rad/internal/store"
)

// This file implements the paper's stated immediate goal (§VII): "bring
// command arguments into the fold". Command names alone cannot expose a
// speed or parameter-tampering attack — the sequence of names is unchanged —
// so the ArgQuantizer turns each trace record into a token that carries its
// arguments' quantized magnitudes, with dedicated outlier buckets for values
// outside anything seen in training. An n-gram model over these tokens is
// the argument-aware variant of the §V-B detector.

// DefaultArgBuckets is the per-argument quantization resolution.
const DefaultArgBuckets = 4

// ArgQuantizer maps numeric command arguments onto training-calibrated
// quantile buckets.
type ArgQuantizer struct {
	buckets int
	// bounds[key] holds the sorted interior quantile boundaries for one
	// (device, command, argument-index) stream of numeric values.
	bounds map[string][]float64
	// seen[key] records categorical argument values observed in training.
	seen map[string]map[string]struct{}
}

func argKey(dev, name string, idx int) string {
	return dev + "." + name + "/" + strconv.Itoa(idx)
}

// FitArgQuantizer calibrates a quantizer on training records. buckets <= 1
// selects DefaultArgBuckets.
func FitArgQuantizer(recs []store.Record, buckets int) *ArgQuantizer {
	if buckets <= 1 {
		buckets = DefaultArgBuckets
	}
	numeric := make(map[string][]float64)
	categorical := make(map[string]map[string]struct{})
	for _, r := range recs {
		for i, a := range r.Args {
			key := argKey(r.Device, r.Name, i)
			if v, err := strconv.ParseFloat(a, 64); err == nil {
				numeric[key] = append(numeric[key], v)
				continue
			}
			if categorical[key] == nil {
				categorical[key] = make(map[string]struct{})
			}
			categorical[key][a] = struct{}{}
		}
	}
	q := &ArgQuantizer{buckets: buckets, bounds: make(map[string][]float64), seen: categorical}
	for key, vals := range numeric {
		sort.Float64s(vals)
		bnds := make([]float64, 0, buckets+1)
		// Interior quantiles plus the observed min/max as range guards.
		bnds = append(bnds, vals[0])
		for b := 1; b < buckets; b++ {
			pos := float64(b) / float64(buckets) * float64(len(vals)-1)
			bnds = append(bnds, vals[int(pos)])
		}
		bnds = append(bnds, vals[len(vals)-1])
		q.bounds[key] = bnds
	}
	return q
}

// argToken renders one argument: a quantile bucket ("q0".."qN-1"), an
// out-of-range marker ("lo"/"hi" — the tamper signal), a known categorical
// value, or "new" for a categorical value never seen in training.
func (q *ArgQuantizer) argToken(dev, name string, idx int, arg string) string {
	key := argKey(dev, name, idx)
	if v, err := strconv.ParseFloat(arg, 64); err == nil {
		bnds, ok := q.bounds[key]
		if !ok {
			return "num?" // numeric where training saw none
		}
		switch {
		case v < bnds[0]:
			return "lo"
		case v > bnds[len(bnds)-1]:
			return "hi"
		}
		// Interior bucket by binary search over the interior boundaries.
		interior := bnds[1 : len(bnds)-1]
		b := sort.SearchFloat64s(interior, v)
		return "q" + strconv.Itoa(b)
	}
	if vals, ok := q.seen[key]; ok {
		if _, known := vals[arg]; known {
			return arg
		}
	}
	return "new"
}

// Token renders one record as an argument-aware token:
// NAME or NAME(tok1,tok2,...).
func (q *ArgQuantizer) Token(r store.Record) string {
	if len(r.Args) == 0 {
		return r.Name
	}
	parts := make([]string, len(r.Args))
	for i, a := range r.Args {
		parts[i] = q.argToken(r.Device, r.Name, i, a)
	}
	return r.Name + "(" + strings.Join(parts, ",") + ")"
}

// Tokenize converts a record stream into the argument-aware token sequence.
func (q *ArgQuantizer) Tokenize(recs []store.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = q.Token(r)
	}
	return out
}

// NameSequence is the name-only baseline tokenization (§V's original
// representation).
func NameSequence(recs []store.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

// TrainArgAwarePerplexity fits the argument-aware variant of the perplexity
// detector: it calibrates a quantizer on the training records, tokenizes
// each training run, and trains an order-n model over the tokens. Score new
// runs with ScoreRecords.
func TrainArgAwarePerplexity(trainRuns [][]store.Record, n, buckets int) (*ArgAwareDetector, error) {
	if len(trainRuns) == 0 {
		return nil, ErrNoTrainingData
	}
	var flat []store.Record
	for _, run := range trainRuns {
		flat = append(flat, run...)
	}
	q := FitArgQuantizer(flat, buckets)
	seqs := make([][]string, len(trainRuns))
	for i, run := range trainRuns {
		seqs[i] = q.Tokenize(run)
	}
	det, err := TrainPerplexity(seqs, n)
	if err != nil {
		return nil, err
	}
	return &ArgAwareDetector{quantizer: q, detector: det}, nil
}

// ArgAwareDetector couples a fitted quantizer with a perplexity detector
// over argument-aware tokens.
type ArgAwareDetector struct {
	quantizer *ArgQuantizer
	detector  *PerplexityDetector
}

// Quantizer exposes the fitted quantizer.
func (d *ArgAwareDetector) Quantizer() *ArgQuantizer { return d.quantizer }

// Threshold returns the decision threshold.
func (d *ArgAwareDetector) Threshold() float64 { return d.detector.Threshold() }

// ScoreRecords returns the run's perplexity under the token model.
func (d *ArgAwareDetector) ScoreRecords(run []store.Record) float64 {
	return d.detector.Score(d.quantizer.Tokenize(run))
}

// Anomalous reports whether the run scores above the threshold.
func (d *ArgAwareDetector) Anomalous(run []store.Record) bool {
	return d.detector.Anomalous(d.quantizer.Tokenize(run))
}
