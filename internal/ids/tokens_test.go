package ids

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"rad/internal/store"
)

func rec2(dev, name string, args ...string) store.Record {
	return store.Record{Device: dev, Name: name, Args: args}
}

func trainingRecords() []store.Record {
	var out []store.Record
	// SPED values 100..250 — the normal velocity band.
	for v := 100; v <= 250; v += 10 {
		out = append(out, rec2("C9", "SPED", strconv.Itoa(v)))
	}
	// GRIP categorical values.
	out = append(out, rec2("C9", "GRIP", "open"), rec2("C9", "GRIP", "close"))
	// A command with no args.
	out = append(out, rec2("C9", "MVNG"))
	return out
}

func TestQuantizerBucketsInRange(t *testing.T) {
	q := FitArgQuantizer(trainingRecords(), 4)
	low := q.Token(rec2("C9", "SPED", "105"))
	high := q.Token(rec2("C9", "SPED", "245"))
	if !strings.HasPrefix(low, "SPED(q") || !strings.HasPrefix(high, "SPED(q") {
		t.Errorf("in-range tokens: %q, %q", low, high)
	}
	if low == high {
		t.Errorf("slow and fast velocities share bucket %q", low)
	}
}

func TestQuantizerOutlierBuckets(t *testing.T) {
	q := FitArgQuantizer(trainingRecords(), 4)
	if got := q.Token(rec2("C9", "SPED", "750")); got != "SPED(hi)" {
		t.Errorf("tampered 3× speed token = %q, want SPED(hi)", got)
	}
	if got := q.Token(rec2("C9", "SPED", "5")); got != "SPED(lo)" {
		t.Errorf("crawling speed token = %q, want SPED(lo)", got)
	}
}

func TestQuantizerCategoricalValues(t *testing.T) {
	q := FitArgQuantizer(trainingRecords(), 4)
	if got := q.Token(rec2("C9", "GRIP", "open")); got != "GRIP(open)" {
		t.Errorf("known categorical = %q", got)
	}
	if got := q.Token(rec2("C9", "GRIP", "sideways")); got != "GRIP(new)" {
		t.Errorf("novel categorical = %q", got)
	}
}

func TestQuantizerNoArgsAndUnknownStreams(t *testing.T) {
	q := FitArgQuantizer(trainingRecords(), 4)
	if got := q.Token(rec2("C9", "MVNG")); got != "MVNG" {
		t.Errorf("no-arg token = %q", got)
	}
	// A numeric argument on a command/index never seen numeric in training.
	if got := q.Token(rec2("C9", "NEWCMD", "42")); got != "NEWCMD(num?)" {
		t.Errorf("unknown numeric stream = %q", got)
	}
}

func TestTokenizeAndNameSequence(t *testing.T) {
	q := FitArgQuantizer(trainingRecords(), 4)
	recs := []store.Record{rec2("C9", "MVNG"), rec2("C9", "SPED", "150")}
	toks := q.Tokenize(recs)
	if len(toks) != 2 || toks[0] != "MVNG" || !strings.HasPrefix(toks[1], "SPED(") {
		t.Errorf("tokens = %v", toks)
	}
	names := NameSequence(recs)
	if names[0] != "MVNG" || names[1] != "SPED" {
		t.Errorf("names = %v", names)
	}
}

func TestArgAwareDetectorSeparatesTamperedArgs(t *testing.T) {
	// Training: a repetitive procedure with velocities in the normal band.
	var runs [][]store.Record
	for r := 0; r < 4; r++ {
		var run []store.Record
		for i := 0; i < 40; i++ {
			run = append(run,
				rec2("C9", "SPED", strconv.Itoa(100+(i%4)*50)),
				rec2("C9", "ARM", "10", "20", "30"),
				rec2("C9", "MVNG"),
			)
		}
		runs = append(runs, run)
	}
	det, err := TrainArgAwarePerplexity(runs, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A benign run in the same band.
	var benign []store.Record
	for i := 0; i < 30; i++ {
		benign = append(benign,
			rec2("C9", "SPED", strconv.Itoa(150+(i%3)*50)),
			rec2("C9", "ARM", "10", "20", "30"),
			rec2("C9", "MVNG"),
		)
	}
	if det.Anomalous(benign) {
		t.Errorf("benign run flagged (score %v, threshold %v)",
			det.ScoreRecords(benign), det.Threshold())
	}

	// The same run with every speed tripled: names identical, args wild.
	var tampered []store.Record
	for i := 0; i < 30; i++ {
		tampered = append(tampered,
			rec2("C9", "SPED", strconv.Itoa((150+(i%3)*50)*3)),
			rec2("C9", "ARM", "10", "20", "30"),
			rec2("C9", "MVNG"),
		)
	}
	if !det.Anomalous(tampered) {
		t.Errorf("speed-tampered run not flagged (score %v, threshold %v)",
			det.ScoreRecords(tampered), det.Threshold())
	}
	// The name-only baseline cannot see it.
	nameDet, err := TrainPerplexity(func() [][]string {
		out := make([][]string, len(runs))
		for i, r := range runs {
			out[i] = NameSequence(r)
		}
		return out
	}(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if nameDet.Anomalous(NameSequence(tampered)) {
		t.Error("name-only detector flagged a pure argument tamper; tokenization leak?")
	}
}

func TestTrainArgAwareEmpty(t *testing.T) {
	if _, err := TrainArgAwarePerplexity(nil, 3, 0); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("want ErrNoTrainingData, got %v", err)
	}
}

func TestQuantizerAccessors(t *testing.T) {
	runs := [][]store.Record{{rec2("C9", "SPED", "100")}, {rec2("C9", "SPED", "200")}}
	det, err := TrainArgAwarePerplexity(runs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if det.Quantizer() == nil {
		t.Error("quantizer not exposed")
	}
	if det.Threshold() <= 0 {
		t.Error("threshold not positive")
	}
}
