package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"unsafe"
)

// unsafeStringData exposes a string's backing pointer so the interning tests
// can assert two strings share one instance.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// TestWireTenantRoundTrip proves the tenant tag survives both encodings and
// that the empty tenant — the value every pre-fleet peer sends — costs zero
// bytes in both, so a v1 or v2 single-tenant peer's byte stream is unchanged.
func TestWireTenantRoundTrip(t *testing.T) {
	req := Request{ID: 7, Op: OpExec, Device: "C9", Name: "GetJointPosition", Tenant: "lab-042"}
	sub := Subscribe{Op: OpSubscribe, Device: "C9", Tenant: "lab-042"}

	t.Run("v2 request", func(t *testing.T) {
		payload, err := appendBinaryFrame(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		var got Request
		if err := decodeBinaryFrame(payload, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip: got %+v want %+v", got, req)
		}
	})

	t.Run("v2 subscribe", func(t *testing.T) {
		payload, err := appendBinaryFrame(nil, &sub)
		if err != nil {
			t.Fatal(err)
		}
		var got Subscribe
		if err := decodeBinaryFrame(payload, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, sub) {
			t.Fatalf("round trip: got %+v want %+v", got, sub)
		}
	})

	t.Run("v1 json", func(t *testing.T) {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(b, []byte(`"tenant":"lab-042"`)) {
			t.Fatalf("tenant missing from v1 frame: %s", b)
		}
		var got Request
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got.Tenant != req.Tenant {
			t.Fatalf("tenant = %q, want %q", got.Tenant, req.Tenant)
		}
	})

	t.Run("empty tenant costs zero bytes", func(t *testing.T) {
		bare := Request{ID: 7, Op: OpExec, Device: "C9", Name: "GetJointPosition"}
		with, _ := appendBinaryFrame(nil, &bare)
		tagged := bare
		tagged.Tenant = ""
		again, _ := appendBinaryFrame(nil, &tagged)
		if !bytes.Equal(with, again) {
			t.Fatal("empty tenant changed the v2 byte stream")
		}
		b, _ := json.Marshal(bare)
		if bytes.Contains(b, []byte("tenant")) {
			t.Fatalf("empty tenant appears in v1 frame: %s", b)
		}
	})
}

// TestWireTenantVocabInterning proves repeated tenant IDs on one connection
// resolve to a single shared string instance (the learned vocabulary doing
// its job) and that distinct connections learn independently.
func TestWireTenantVocabInterning(t *testing.T) {
	payload, err := appendBinaryFrame(nil, &Request{ID: 1, Op: OpExec, Tenant: "tenant-interned"})
	if err != nil {
		t.Fatal(err)
	}
	var v connVocab
	var a, b Request
	if err := decodeBinaryFrameVocab(payload, &a, &v); err != nil {
		t.Fatal(err)
	}
	if err := decodeBinaryFrameVocab(payload, &b, &v); err != nil {
		t.Fatal(err)
	}
	if a.Tenant != "tenant-interned" || b.Tenant != "tenant-interned" {
		t.Fatalf("tenants = %q, %q", a.Tenant, b.Tenant)
	}
	// Same connection → same shared instance.
	if unsafeStringData(a.Tenant) != unsafeStringData(b.Tenant) {
		t.Fatal("repeated tenant on one connection was not interned")
	}
	if len(v.words) != 1 {
		t.Fatalf("vocab holds %d words, want 1", len(v.words))
	}
	// A fresh connection learns its own copy; the first table is untouched.
	var v2 connVocab
	var c Request
	if err := decodeBinaryFrameVocab(payload, &c, &v2); err != nil {
		t.Fatal(err)
	}
	if len(v.words) != 1 || len(v2.words) != 1 {
		t.Fatalf("vocab sizes = %d, %d; want 1, 1", len(v.words), len(v2.words))
	}
}

// TestWireTenantVocabCap proves the learned vocabulary is strictly bounded:
// the connection decodes MaxConnVocab distinct tenants fine, and the very
// next new word is a hard decode error wrapping ErrVocabFull.
func TestWireTenantVocabCap(t *testing.T) {
	var v connVocab
	for i := 0; i < MaxConnVocab; i++ {
		payload, err := appendBinaryFrame(nil, &Request{ID: 1, Op: OpExec, Tenant: fmt.Sprintf("t%04d", i)})
		if err != nil {
			t.Fatal(err)
		}
		var q Request
		if err := decodeBinaryFrameVocab(payload, &q, &v); err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
	}
	if len(v.words) != MaxConnVocab {
		t.Fatalf("vocab holds %d words, want %d", len(v.words), MaxConnVocab)
	}
	// Known words still decode at the cap.
	known, _ := appendBinaryFrame(nil, &Request{ID: 1, Op: OpExec, Tenant: "t0000"})
	var q Request
	if err := decodeBinaryFrameVocab(known, &q, &v); err != nil {
		t.Fatalf("known word at cap: %v", err)
	}
	// Protocol vocabulary is exempt (static table, not learned).
	catalog, _ := appendBinaryFrame(nil, &Request{ID: 1, Op: OpExec, Tenant: "C9"})
	if err := decodeBinaryFrameVocab(catalog, &q, &v); err != nil {
		t.Fatalf("static vocab word at cap: %v", err)
	}
	// One more learned word is a strict error.
	over, _ := appendBinaryFrame(nil, &Request{ID: 1, Op: OpExec, Tenant: "one-too-many"})
	err := decodeBinaryFrameVocab(over, &q, &v)
	if !errors.Is(err, ErrVocabFull) {
		t.Fatalf("past cap: err = %v, want ErrVocabFull", err)
	}
	// Subscribe frames share the same bounded table.
	sub, _ := appendBinaryFrame(nil, &Subscribe{Op: OpSubscribe, Tenant: "another-new"})
	var s Subscribe
	if err := decodeBinaryFrameVocab(sub, &s, &v); !errors.Is(err, ErrVocabFull) {
		t.Fatalf("subscribe past cap: err = %v, want ErrVocabFull", err)
	}
}

// TestWireTenantVocabOverlongWordNotRetained proves words past the retention
// limit decode fine but never consume table slots.
func TestWireTenantVocabOverlongWordNotRetained(t *testing.T) {
	long := make([]byte, maxVocabWordLen+1)
	for i := range long {
		long[i] = 'x'
	}
	payload, err := appendBinaryFrame(nil, &Request{ID: 1, Op: OpExec, Tenant: string(long)})
	if err != nil {
		t.Fatal(err)
	}
	var v connVocab
	var q Request
	if err := decodeBinaryFrameVocab(payload, &q, &v); err != nil {
		t.Fatal(err)
	}
	if q.Tenant != string(long) {
		t.Fatal("overlong tenant mangled")
	}
	if len(v.words) != 0 {
		t.Fatalf("overlong word retained (%d entries)", len(v.words))
	}
}

// TestWireTenantConnV2 drives the tenant tag through a real negotiated v2
// connection pair, including the hostile case: a peer presenting more than
// MaxConnVocab distinct tenants gets a decode error, severing it.
func TestWireTenantConnV2(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		cc, err := ClientV2(client, nil)
		if err != nil {
			done <- err
			return
		}
		for i := 0; i < MaxConnVocab+1; i++ {
			if err := cc.WriteFrame(&Request{ID: uint64(i), Op: OpExec, Tenant: fmt.Sprintf("flood-%05d", i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	sc, err := Accept(server, ProtoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Version() != V2 {
		t.Fatalf("negotiated %v, want v2", sc.Version())
	}
	var decodeErr error
	n := 0
	for {
		var q Request
		if err := sc.ReadFrame(&q); err != nil {
			decodeErr = err
			break
		}
		n++
		if want := fmt.Sprintf("flood-%05d", n-1); q.Tenant != want {
			t.Fatalf("frame %d: tenant %q, want %q", n, q.Tenant, want)
		}
	}
	if n != MaxConnVocab {
		t.Fatalf("decoded %d frames before the cap, want %d", n, MaxConnVocab)
	}
	if !errors.Is(decodeErr, ErrVocabFull) {
		t.Fatalf("decode err = %v, want ErrVocabFull", decodeErr)
	}
	client.Close()
	<-done
}
