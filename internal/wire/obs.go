package wire

import (
	"time"

	"rad/internal/obs"
)

// codecBuckets resolve the sub-microsecond latencies the frame codecs run
// at; the default buckets start at 1µs, which would fold every v2 encode
// into one bin.
var codecBuckets = []time.Duration{
	100 * time.Nanosecond, 250 * time.Nanosecond, 500 * time.Nanosecond,
	1 * time.Microsecond, 2500 * time.Nanosecond, 5 * time.Microsecond,
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 250 * time.Microsecond, 1 * time.Millisecond,
	10 * time.Millisecond,
}

// Metrics instruments the wire layer: per-protocol connection and frame
// counters plus encode/decode latency histograms, so the protocol mix and
// the marshalling cost of a live deployment are visible on the telemetry
// endpoint. A nil *Metrics (the default everywhere) keeps every path
// uninstrumented and free.
//
// Frame timings are measured with the real clock around the marshal step
// only — never around socket I/O — so the histograms price the codec, not
// the network.
type Metrics struct {
	conns  [2]*obs.Counter // connections negotiated, by version
	rx, tx [2]*obs.Counter // frames decoded / encoded, by version
	dec    [2]*obs.Histogram
	enc    [2]*obs.Histogram
}

// NewMetrics registers the wire instruments in reg and returns the handle
// a Conn carries. Registration is idempotent per registry: the obs layer
// dedupes by name and label set, so several listeners observing the same
// registry share one set of instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{}
	reg.SetHelp("rad_wire_connections_total", "Connections negotiated, by wire protocol version.")
	reg.SetHelp("rad_wire_frames_total", "Frames moved, by wire protocol version and direction.")
	reg.SetHelp("rad_wire_decode_seconds", "Frame decode (unmarshal) latency, by wire protocol version.")
	reg.SetHelp("rad_wire_encode_seconds", "Frame encode (marshal) latency, by wire protocol version.")
	for i, v := range []Version{V1, V2} {
		ver := v.String()
		m.conns[i] = reg.Counter("rad_wire_connections_total", "version", ver)
		m.rx[i] = reg.Counter("rad_wire_frames_total", "version", ver, "dir", "rx")
		m.tx[i] = reg.Counter("rad_wire_frames_total", "version", ver, "dir", "tx")
		m.dec[i] = reg.Histogram("rad_wire_decode_seconds", codecBuckets, "version", ver)
		m.enc[i] = reg.Histogram("rad_wire_encode_seconds", codecBuckets, "version", ver)
	}
	return m
}
