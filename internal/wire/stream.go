package wire

// This file extends the wire protocol with the live-tail frames served by a
// middlebox's stream listener (internal/stream). A tail connection carries
// exactly one client → server Subscribe frame followed by a server → client
// sequence of Event frames; the client unsubscribes by closing the
// connection. Filters travel in the Subscribe frame so they are applied on
// the server side, before events are buffered for the connection — the
// pushdown that keeps a narrow tail cheap no matter how busy the lab is.

import (
	"fmt"

	"rad/internal/power"
	"rad/internal/store"
)

// OpSubscribe is the operation carried by a Subscribe frame. It shares the
// Op namespace with the request ops so a stream listener can reject a
// regular RPC frame (and vice versa) with a precise error.
const OpSubscribe Op = "subscribe"

// Subscriber overflow policies, as spelled in a Subscribe frame.
const (
	// PolicyDropOldest sheds the oldest buffered event when the tail falls
	// behind, counting the loss. The default: a slow tailer never stalls
	// the middlebox's trace hot path.
	PolicyDropOldest = "drop-oldest"
	// PolicyBlock makes the publisher wait for buffer space — lossless
	// delivery for consumers (e.g. an online IDS) that must see every
	// record, at the price of backpressure on the trace path.
	PolicyBlock = "block"
)

// Subscribe is the first (and only) frame a tail client sends.
type Subscribe struct {
	Op Op `json:"op"`
	// Name labels the subscriber in the middlebox's stream statistics;
	// empty defaults to the connection's remote address.
	Name string `json:"name,omitempty"`

	// Trace filters (conjunctive; empty matches everything).
	Device    string `json:"device,omitempty"`
	Key       string `json:"key,omitempty"` // command type "Device.Name"
	Procedure string `json:"procedure,omitempty"`
	Run       string `json:"run,omitempty"`

	// Snapshot asks for snapshot-then-follow: every matching record already
	// committed to the middlebox's trace store is replayed (in sequence
	// order, exactly once) before live delivery begins; the boundary is
	// marked with an EventSnapshotEnd frame.
	Snapshot bool `json:"snapshot,omitempty"`
	// Power includes the UR3e power-telemetry feed alongside trace events.
	Power bool `json:"power,omitempty"`

	// Policy selects the overflow behaviour (PolicyDropOldest when empty);
	// Buffer is the per-subscriber ring capacity (server-clamped).
	Policy string `json:"policy,omitempty"`
	Buffer int    `json:"buffer,omitempty"`

	// Tenant addresses one lab instance behind a fleet listener; empty means
	// the listener's default tenant (see wire.Request.Tenant).
	Tenant string `json:"tenant,omitempty"`

	// ResumeFrom, when non-zero, asks the server to resume a broken tail:
	// replay every matching record with sequence number >= ResumeFrom from
	// the persistent store, then follow live — a gap-free, duplicate-free
	// continuation for a client that already delivered [0, ResumeFrom).
	// Like Tenant, the field is zero-value compatible: pre-resume peers
	// (and fresh subscriptions) simply omit it. Sequence numbers start at
	// zero, so "resume from the beginning" is ResumeFrom=0 with Snapshot
	// set, exactly as before this field existed.
	//
	// When ResumeFrom predates the store's retention floor the server
	// cannot honor it exactly: it sends an EventResumeGap notice carrying
	// the number of unrecoverable records, then a full snapshot of what
	// retention kept — graceful degradation, never an error.
	ResumeFrom uint64 `json:"resumeFrom,omitempty"`
}

// Validate reports whether the frame is a well-formed subscription.
func (s Subscribe) Validate() error {
	if s.Op != OpSubscribe {
		return fmt.Errorf("wire: subscribe frame has op %q, want %q", s.Op, OpSubscribe)
	}
	switch s.Policy {
	case "", PolicyDropOldest, PolicyBlock:
	default:
		return fmt.Errorf("wire: unknown overflow policy %q", s.Policy)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("wire: negative buffer %d", s.Buffer)
	}
	return nil
}

// Event frame kinds.
const (
	// EventTrace carries one trace record.
	EventTrace = "trace"
	// EventPower carries one power-telemetry sample.
	EventPower = "power"
	// EventSnapshotEnd marks the end of the historical replay: every
	// subsequent trace event was committed after the subscription attached.
	EventSnapshotEnd = "snapshot-end"
	// EventError reports a subscription failure; the server closes the
	// connection after sending it.
	EventError = "error"
	// EventResumeGap warns a resuming client that Subscribe.ResumeFrom
	// predates the store's retention floor: Event.Gap records lost to
	// retention cannot be replayed, and the snapshot that follows starts at
	// the floor instead. The tail continues — degraded, and saying so.
	EventResumeGap = "resume-gap"
)

// Event is one server → client tail frame.
type Event struct {
	Kind   string        `json:"kind"`
	Record *store.Record `json:"record,omitempty"`
	Sample *power.Sample `json:"sample,omitempty"`
	// Dropped is the number of events shed for this subscriber (drop-oldest
	// policy) since the previous frame — the drop accounting a tailer needs
	// to know its view has holes.
	Dropped uint64 `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
	// Gap, on an EventResumeGap frame, is the number of records between the
	// requested resume point and the store's retention floor — replay the
	// client asked for that retention has already discarded.
	Gap uint64 `json:"gap,omitempty"`
	// TraceID/SpanID carry the trace context of the exec that produced this
	// event's record (internal/obs/span), so a tailer can stitch delivery
	// into the originating request's tree. Zero means untraced; omitted from
	// the frame entirely when zero, in both encodings.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
}

// Ping is a server → client liveness probe on a v2 tail connection; the
// client answers with a Pong echoing the sequence number. v1 has no
// liveness frames (its tail protocol predates them), which negotiation
// already handles: a server only pings peers that completed the v2
// handshake, and a v1 peer simply keeps the pre-heartbeat behaviour.
type Ping struct {
	Seq uint64 `json:"seq"`
}

// Pong is the client's answer to a Ping.
type Pong struct {
	Seq uint64 `json:"seq"`
}

// TailFrame is what a tail client reads after subscribing: either an Event
// or a liveness Ping (exactly one field is set). On a v1 connection only
// events ever arrive, so decoding a TailFrame degrades to decoding an
// Event.
type TailFrame struct {
	Event *Event
	Ping  *Ping
}
