package wire

// This file extends the wire protocol with the live-tail frames served by a
// middlebox's stream listener (internal/stream). A tail connection carries
// exactly one client → server Subscribe frame followed by a server → client
// sequence of Event frames; the client unsubscribes by closing the
// connection. Filters travel in the Subscribe frame so they are applied on
// the server side, before events are buffered for the connection — the
// pushdown that keeps a narrow tail cheap no matter how busy the lab is.

import (
	"fmt"

	"rad/internal/power"
	"rad/internal/store"
)

// OpSubscribe is the operation carried by a Subscribe frame. It shares the
// Op namespace with the request ops so a stream listener can reject a
// regular RPC frame (and vice versa) with a precise error.
const OpSubscribe Op = "subscribe"

// Subscriber overflow policies, as spelled in a Subscribe frame.
const (
	// PolicyDropOldest sheds the oldest buffered event when the tail falls
	// behind, counting the loss. The default: a slow tailer never stalls
	// the middlebox's trace hot path.
	PolicyDropOldest = "drop-oldest"
	// PolicyBlock makes the publisher wait for buffer space — lossless
	// delivery for consumers (e.g. an online IDS) that must see every
	// record, at the price of backpressure on the trace path.
	PolicyBlock = "block"
)

// Subscribe is the first (and only) frame a tail client sends.
type Subscribe struct {
	Op Op `json:"op"`
	// Name labels the subscriber in the middlebox's stream statistics;
	// empty defaults to the connection's remote address.
	Name string `json:"name,omitempty"`

	// Trace filters (conjunctive; empty matches everything).
	Device    string `json:"device,omitempty"`
	Key       string `json:"key,omitempty"` // command type "Device.Name"
	Procedure string `json:"procedure,omitempty"`
	Run       string `json:"run,omitempty"`

	// Snapshot asks for snapshot-then-follow: every matching record already
	// committed to the middlebox's trace store is replayed (in sequence
	// order, exactly once) before live delivery begins; the boundary is
	// marked with an EventSnapshotEnd frame.
	Snapshot bool `json:"snapshot,omitempty"`
	// Power includes the UR3e power-telemetry feed alongside trace events.
	Power bool `json:"power,omitempty"`

	// Policy selects the overflow behaviour (PolicyDropOldest when empty);
	// Buffer is the per-subscriber ring capacity (server-clamped).
	Policy string `json:"policy,omitempty"`
	Buffer int    `json:"buffer,omitempty"`

	// Tenant addresses one lab instance behind a fleet listener; empty means
	// the listener's default tenant (see wire.Request.Tenant).
	Tenant string `json:"tenant,omitempty"`
}

// Validate reports whether the frame is a well-formed subscription.
func (s Subscribe) Validate() error {
	if s.Op != OpSubscribe {
		return fmt.Errorf("wire: subscribe frame has op %q, want %q", s.Op, OpSubscribe)
	}
	switch s.Policy {
	case "", PolicyDropOldest, PolicyBlock:
	default:
		return fmt.Errorf("wire: unknown overflow policy %q", s.Policy)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("wire: negative buffer %d", s.Buffer)
	}
	return nil
}

// Event frame kinds.
const (
	// EventTrace carries one trace record.
	EventTrace = "trace"
	// EventPower carries one power-telemetry sample.
	EventPower = "power"
	// EventSnapshotEnd marks the end of the historical replay: every
	// subsequent trace event was committed after the subscription attached.
	EventSnapshotEnd = "snapshot-end"
	// EventError reports a subscription failure; the server closes the
	// connection after sending it.
	EventError = "error"
)

// Event is one server → client tail frame.
type Event struct {
	Kind   string        `json:"kind"`
	Record *store.Record `json:"record,omitempty"`
	Sample *power.Sample `json:"sample,omitempty"`
	// Dropped is the number of events shed for this subscriber (drop-oldest
	// policy) since the previous frame — the drop accounting a tailer needs
	// to know its view has holes.
	Dropped uint64 `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
}
