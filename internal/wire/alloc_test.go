//go:build !race

package wire

import (
	"testing"
)

// TestWireV2FrameAllocs pins the codec's ~zero-allocation claim where it is
// exact: encoding any frame into a reused buffer allocates nothing, and
// decoding a frame whose strings are protocol vocabulary allocates nothing
// (interning hands back shared instances). Frames carrying novel strings or
// slices pay only for those values. Excluded under -race: the detector's
// instrumentation shifts allocation counts.
func TestWireV2FrameAllocs(t *testing.T) {
	req := Request{ID: 42, Op: OpExec, Device: "UR3e", Name: "move_joints",
		Args: []string{"0.5", "-1.2"}, Procedure: "P2", Run: "bench"}
	rep := Reply{ID: 42, Value: "ok"}

	buf := make([]byte, 0, 512)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = appendBinaryFrame(buf[:0], &req)
		if err != nil {
			t.Fatal(err)
		}
		buf, err = appendBinaryFrame(buf, &rep)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("encode request+reply: %.1f allocs/op, want 0", n)
	}

	// A reply's strings are interned vocabulary: decoding is allocation-free.
	payload, err := appendBinaryFrame(nil, &rep)
	if err != nil {
		t.Fatal(err)
	}
	var out Reply
	if n := testing.AllocsPerRun(200, func() {
		if err := decodeBinaryFrame(payload, &out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decode reply: %.1f allocs/op, want 0", n)
	}

	// A request pays only for its novel values: the args slice, its two
	// non-vocabulary strings, and the run label — four allocations, while
	// op, device, command name, and procedure come from the intern table.
	reqPayload, err := appendBinaryFrame(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	var outReq Request
	if n := testing.AllocsPerRun(200, func() {
		if err := decodeBinaryFrame(reqPayload, &outReq); err != nil {
			t.Fatal(err)
		}
	}); n > 4 {
		t.Errorf("decode request with 3 novel strings: %.1f allocs/op, want <= 4", n)
	}
}
